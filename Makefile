GO ?= go

.PHONY: check vet build test race bench bench-json alloc-test trace-demo failover postmortem-demo shard-stress

# check is the tier-1 gate: vet, build everything, the full test suite with
# the race detector, then the failover availability claims.
check: vet build race failover

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json runs the hot-path microbenchmark suites (direct_pack_ff engine,
# PIO delivery pipeline), the DMA path-selection and collective
# algorithm-selection matrices, the rmem failover suite and the
# sharded-engine 512-node suite, and writes the BENCH_*.json
# regression-gate artifacts. See docs/PERFORMANCE.md.
bench-json:
	$(GO) run ./cmd/benchjson -dir .

# failover runs the replicated remote-memory availability claims: a node
# crash mid-workload must lose no committed write, fail no client operation
# after the failover epoch, and keep the get p99 within 3x of the crash-free
# baseline. See docs/ELASTIC.md.
failover:
	$(GO) test -run TestFailoverClaims -count=1 ./internal/rmem

# shard-stress hammers the conservative-parallel engine, the incremental
# flow solver and the 512-node workload under the race detector — the
# cross-engine determinism property tests run with real goroutine
# parallelism so window-barrier and cross-shard-queue races surface. The
# second line runs the full MPI stack and the one-sided layer on the
# sharded engine (the confined-world cross-engine property tests plus the
# engine bench rows) under the same detector.
shard-stress:
	$(GO) test -race -count=2 ./internal/sim/ ./internal/flow/ ./internal/scale/
	$(GO) test -race -count=2 -run 'TestCrossEngine' ./internal/mpi/
	$(GO) test -race -count=2 -run 'TestFenceEpochOnShardedEngine' ./internal/osc/
	$(GO) test -race -count=1 -run 'TestEngineBenchSmall' ./internal/bench/

# alloc-test runs only the allocation-pinned hot-path tests (0 allocs/op on
# pack and PIO fast paths); CI fails the bench job if these regress.
alloc-test:
	$(GO) test -run 'TestAllocs|AllocFree' -v ./internal/pack/ ./internal/sci/ ./internal/bufpool/ ./internal/obs/ ./internal/obs/flight/

# trace-demo produces a Chrome trace-event timeline from a ping-pong sweep
# (load /tmp/scimpich-trace.json in Perfetto or chrome://tracing) and
# aggregates it with tracestat. See docs/OBSERVABILITY.md.
trace-demo:
	$(GO) run ./cmd/pingpong -min 64 -max 262144 \
		-trace-out /tmp/scimpich-trace.json \
		-metrics-out /tmp/scimpich-metrics.txt
	$(GO) run ./cmd/tracestat -actors /tmp/scimpich-trace.json

# postmortem-demo crashes a node mid-workload, captures the flight-recorder
# dump at the first typed error, and renders the causal post-mortem — the
# full dump-on-failure pipeline in one command. See docs/OBSERVABILITY.md.
postmortem-demo:
	$(GO) run ./cmd/rmemserve -crash-node 1 \
		-flight-out /tmp/scimpich-flight.json
	$(GO) run ./cmd/postmortem /tmp/scimpich-flight.json
