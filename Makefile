GO ?= go

.PHONY: check vet build test race bench

# check is the tier-1 gate: vet, build everything, then the full test suite
# with the race detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
