GO ?= go

.PHONY: check vet build test race bench trace-demo

# check is the tier-1 gate: vet, build everything, then the full test suite
# with the race detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# trace-demo produces a Chrome trace-event timeline from a ping-pong sweep
# (load /tmp/scimpich-trace.json in Perfetto or chrome://tracing) and
# aggregates it with tracestat. See docs/OBSERVABILITY.md.
trace-demo:
	$(GO) run ./cmd/pingpong -min 64 -max 262144 \
		-trace-out /tmp/scimpich-trace.json \
		-metrics-out /tmp/scimpich-metrics.txt
	$(GO) run ./cmd/tracestat -actors /tmp/scimpich-trace.json
