// Distributed sparse matrix-vector multiply with one-sided communication —
// the paper's §4 motivation: "application areas with irregularly
// distributed data (e.g. sparse matrices) ... are hard to implement with
// [two-sided communication]: to enable arbitrary access to local data by
// remote processes, all processes need to repeatedly perform global
// computation or poll explicitly for incoming requests."
//
// The vector x is distributed over the ranks in windows allocated with
// AllocMem (shared SCI memory, direct remote access). Each rank owns a
// band of rows of a random-structured sparse matrix A; computing y = A*x
// requires reading remote x entries whose positions are known only to the
// reader — a natural fit for MPI_Get with fence synchronization. The result
// is verified against a serial computation.
//
//	go run ./examples/sparsemat
package main

import (
	"fmt"
	"log"
	"math"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
	"scimpich/internal/osc"
)

const (
	ranks       = 4
	globalN     = 4096 // vector length
	nnzPerRow   = 12
	localN      = globalN / ranks
	fingerprint = 0x9e3779b97f4a7c15
)

// entry is one nonzero of the matrix.
type entry struct {
	col int
	val float64
}

// rowEntries derives a deterministic pseudo-random sparsity pattern.
func rowEntries(row int) []entry {
	out := make([]entry, 0, nnzPerRow)
	h := uint64(row)*fingerprint + 1
	for k := 0; k < nnzPerRow; k++ {
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 29
		col := int(h % uint64(globalN))
		val := float64(h%1000)/997.0 + 0.5
		out = append(out, entry{col: col, val: val})
	}
	return out
}

func xInit(i int) float64 { return math.Sin(float64(i)) + 2 }

func main() {
	var checksum float64
	mpi.Run(mpi.DefaultConfig(ranks, 1), func(c *mpi.Comm) {
		me := c.Rank()
		sys := osc.NewSystem(c)

		// The distributed vector x lives in shared windows.
		xSeg := c.AllocShared(localN * 8)
		xWin := sys.CreateShared(xSeg, osc.DefaultConfig())
		local := make([]float64, localN)
		for i := range local {
			local[i] = xInit(me*localN + i)
		}
		copy(xSeg.Bytes(), mpi.Float64Bytes(local))

		// Expose-and-read epoch: everyone fences, gathers the remote x
		// entries its rows need, fences again.
		xWin.Fence()
		rows := make([][]entry, localN)
		needed := make(map[int]float64) // global col -> value (filled below)
		for r := 0; r < localN; r++ {
			rows[r] = rowEntries(me*localN + r)
			for _, e := range rows[r] {
				needed[e.col] = 0
			}
		}
		buf := make([]byte, 8)
		for col := range needed {
			owner := col / localN
			off := int64(col%localN) * 8
			xWin.Get(buf, 8, datatype.Byte, owner, off)
			needed[col] = mpi.BytesFloat64(buf)[0]
		}
		xWin.Fence()

		// Local multiply.
		y := make([]float64, localN)
		for r := 0; r < localN; r++ {
			for _, e := range rows[r] {
				y[r] += e.val * needed[e.col]
			}
		}

		// Verify every row against the closed-form x.
		for r := 0; r < localN; r++ {
			want := 0.0
			for _, e := range rowEntries(me*localN + r) {
				want += e.val * xInit(e.col)
			}
			if math.Abs(y[r]-want) > 1e-9 {
				log.Fatalf("rank %d row %d: got %v want %v", me, r, y[r], want)
			}
		}

		// Global checksum via reduction.
		sum := 0.0
		for _, v := range y {
			sum += v
		}
		recv := make([]byte, 8)
		c.Reduce(mpi.Float64Bytes([]float64{sum}), recv, 1, datatype.Float64, mpi.OpSum, 0)
		if me == 0 {
			checksum = mpi.BytesFloat64(recv)[0]
			fmt.Printf("y = A*x computed over %d ranks: checksum %.6f, stats %+v\n",
				c.Size(), checksum, xWin.Snapshot())
		}
	})
	if checksum == 0 {
		log.Fatal("checksum missing")
	}
}
