package main

import "testing"

func TestBothModelsMatchSerialReference(t *testing.T) {
	_, solTwo, _ := solve(false)
	_, solOne, _ := solve(true)
	ref := serialReference()
	for i := range ref {
		if solTwo[i] != ref[i] {
			t.Fatalf("two-sided diverges from serial reference at %d", i)
		}
		if solOne[i] != ref[i] {
			t.Fatalf("one-sided diverges from serial reference at %d", i)
		}
	}
}

func TestResidualFalls(t *testing.T) {
	res, _, _ := solve(false)
	if res <= 0 || res > 0.1 {
		t.Fatalf("final residual = %g, want small and positive", res)
	}
}
