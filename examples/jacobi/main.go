// Jacobi iteration with halo exchange — a complete mini-application
// comparing the two communication models on the same solver, the kind of
// application-level comparison the paper's conclusion calls for.
//
// A 1-D Laplace problem (fixed boundary values, zero interior) is relaxed
// by a fixed budget of Jacobi sweeps over a block-distributed grid. Each
// sweep exchanges one halo cell with each neighbour, either with two-sided
// Sendrecv or with one-sided Puts under post/start/complete/wait
// synchronization; an Allreduce tracks the residual. Both variants must
// produce bit-identical solutions and the residual must fall by orders of
// magnitude.
//
//	go run ./examples/jacobi
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
	"scimpich/internal/osc"
)

const (
	ranks   = 4
	globalN = 256
	localN  = globalN / ranks
	leftBC  = 1.0
	rightBC = 3.0
	sweeps  = 2048
)

func main() {
	res2, solTwo, tTwo := solve(false)
	res1, solOne, tOne := solve(true)
	for i := range solTwo {
		if solTwo[i] != solOne[i] {
			log.Fatalf("solutions diverge at %d: %g vs %g", i, solTwo[i], solOne[i])
		}
	}
	if res2 != res1 {
		log.Fatalf("residuals diverge: %g vs %g", res2, res1)
	}
	fmt.Printf("%d sweeps: residual %.2e; two-sided %v, one-sided (PSCW) %v\n",
		sweeps, res2, tTwo, tOne)

	// Both distributed variants must match a serial reference bit for bit:
	// the halo exchange is then provably equivalent to a single grid.
	ref := serialReference()
	for i := range ref {
		if solTwo[i] != ref[i] {
			log.Fatalf("distributed solution diverges from serial reference at %d: %g vs %g",
				i, solTwo[i], ref[i])
		}
	}
	fmt.Println("both communication models match the serial reference bit for bit")
}

// serialReference runs the same relaxation on one undistributed grid.
func serialReference() []float64 {
	cur := make([]float64, globalN+2)
	next := make([]float64, globalN+2)
	cur[0], next[0] = leftBC, leftBC
	cur[globalN+1], next[globalN+1] = rightBC, rightBC
	for it := 0; it < sweeps; it++ {
		for i := 1; i <= globalN; i++ {
			next[i] = 0.5 * (cur[i-1] + cur[i+1])
		}
		cur, next = next, cur
	}
	return cur[1 : globalN+1]
}

// solve runs the distributed Jacobi relaxation and returns the final
// residual, rank 0's gathered solution, and the virtual time.
func solve(oneSided bool) (float64, []float64, time.Duration) {
	var finalRes float64
	var solution []float64
	elapsed := mpi.Run(mpi.DefaultConfig(ranks, 1), func(c *mpi.Comm) {
		me := c.Rank()
		// Local grid with two halo cells.
		cur := make([]float64, localN+2)
		next := make([]float64, localN+2)
		if me == 0 {
			cur[0] = leftBC
			next[0] = leftBC
		}
		if me == ranks-1 {
			cur[localN+1] = rightBC
			next[localN+1] = rightBC
		}

		var win *osc.Win
		var group []int
		if oneSided {
			sys := osc.NewSystem(c)
			// The window holds the two halo cells neighbours write into:
			// [0] from the left neighbour, [1] from the right.
			win = sys.CreateShared(c.AllocShared(16), osc.DefaultConfig())
			if me > 0 {
				group = append(group, me-1)
			}
			if me < ranks-1 {
				group = append(group, me+1)
			}
		}

		left, right := me-1, me+1
		for it := 0; it < sweeps; it++ {
			// Halo exchange.
			if oneSided {
				win.Post(group)
				win.Start(group)
				if left >= 0 {
					win.Put(mpi.Float64Bytes(cur[1:2]), 8, datatype.Byte, left, 8)
				}
				if right < ranks {
					win.Put(mpi.Float64Bytes(cur[localN:localN+1]), 8, datatype.Byte, right, 0)
				}
				win.Complete(group)
				win.Wait(group)
				if left >= 0 {
					cur[0] = mpi.BytesFloat64(win.LocalBytes()[0:8])[0]
				}
				if right < ranks {
					cur[localN+1] = mpi.BytesFloat64(win.LocalBytes()[8:16])[0]
				}
			} else {
				in := make([]byte, 8)
				if left >= 0 {
					c.Sendrecv(mpi.Float64Bytes(cur[1:2]), 8, datatype.Byte, left, 0,
						in, 8, datatype.Byte, left, 0)
					cur[0] = mpi.BytesFloat64(in)[0]
				}
				if right < ranks {
					c.Sendrecv(mpi.Float64Bytes(cur[localN:localN+1]), 8, datatype.Byte, right, 0,
						in, 8, datatype.Byte, right, 0)
					cur[localN+1] = mpi.BytesFloat64(in)[0]
				}
			}

			// Sweep and local residual.
			var res float64
			for i := 1; i <= localN; i++ {
				next[i] = 0.5 * (cur[i-1] + cur[i+1])
				d := next[i] - cur[i]
				res += d * d
			}
			cur, next = next, cur
			// Boundary cells travel with the swap.
			if me == 0 {
				cur[0] = leftBC
			}
			if me == ranks-1 {
				cur[localN+1] = rightBC
			}

			// Synchronize the residual on the final sweep (checking every
			// sweep would be needless global synchronization).
			if it == sweeps-1 {
				recv := make([]byte, 8)
				c.Allreduce(mpi.Float64Bytes([]float64{res}), recv, 1, datatype.Float64, mpi.OpSum)
				if me == 0 {
					finalRes = math.Sqrt(mpi.BytesFloat64(recv)[0])
				}
			}
		}

		// Gather the interior onto rank 0.
		all := make([]byte, globalN*8)
		c.Gather(mpi.Float64Bytes(cur[1:localN+1]), localN*8, datatype.Byte, all, 0)
		if me == 0 {
			solution = mpi.BytesFloat64(all)
		}
	})
	return finalRes, solution, elapsed
}
