// Dynamic load balancing with passive-target one-sided communication — the
// paper's second §4 motivation: applications that "require dynamic load
// balancing with strongly varying task sizes (e.g. in computational
// chemistry)".
//
// Rank 0 exposes a shared counter in a window; workers repeatedly lock the
// window, fetch-and-increment the counter (MPI_Get + MPI_Put under
// MPI_Win_lock/unlock), and process the claimed task. The target never
// polls or participates — exactly the access pattern two-sided messaging
// cannot express without a server loop. Task costs vary wildly to make the
// balance visible; the run asserts every task is executed exactly once.
//
//	go run ./examples/taskqueue
package main

import (
	"fmt"
	"log"
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
	"scimpich/internal/osc"
)

const (
	ranks = 4
	tasks = 64
)

// taskCost returns the (highly irregular) virtual compute time of task t.
func taskCost(t int) time.Duration {
	h := uint64(t)*0x9e3779b97f4a7c15 + 7
	h ^= h >> 31
	return time.Duration(50+h%2000) * time.Microsecond
}

func main() {
	var done [tasks]int32
	var perRank [ranks]int
	mpi.Run(mpi.DefaultConfig(ranks, 1), func(c *mpi.Comm) {
		me := c.Rank()
		sys := osc.NewSystem(c)

		// The task counter lives in rank 0's shared window.
		seg := c.AllocShared(8)
		win := sys.CreateShared(seg, osc.DefaultConfig())
		c.Barrier()

		claimed := 0
		for {
			// Fetch-and-increment under the window lock (passive target:
			// rank 0 takes no action).
			win.Lock(0)
			buf := make([]byte, 8)
			win.Get(buf, 8, datatype.Byte, 0, 0)
			next := int(mpi.BytesFloat64(buf)[0])
			win.Put(mpi.Float64Bytes([]float64{float64(next + 1)}), 8, datatype.Byte, 0, 0)
			win.Unlock(0)

			if next >= tasks {
				break
			}
			// "Process" the task.
			c.Proc().Sleep(taskCost(next))
			done[next]++
			claimed++
		}
		perRank[me] = claimed
		c.Barrier()
	})

	total := 0
	for t, n := range done {
		if n != 1 {
			log.Fatalf("task %d executed %d times", t, n)
		}
		total += int(n)
	}
	fmt.Printf("%d tasks executed exactly once; per-rank claims: %v\n", total, perRank)
	for r, n := range perRank {
		if n == 0 {
			log.Fatalf("rank %d starved (claimed no tasks)", r)
		}
	}
}
