package main

import "testing"

func TestHaloExchangeBothEngines(t *testing.T) {
	// run() verifies every halo cell internally (log.Fatalf on mismatch);
	// this exercises both packing engines and checks the expected ordering.
	ff := run(true)
	gen := run(false)
	if ff <= 0 || gen <= 0 {
		t.Fatalf("exchange times not positive: %v %v", ff, gen)
	}
	if ff >= gen {
		t.Errorf("direct_pack_ff exchange (%v) not faster than generic (%v)", ff, gen)
	}
}
