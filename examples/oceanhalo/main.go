// Ocean-model halo exchange: the paper's motivating application (§3,
// figure 2 — "ocean models in which the decomposition of the simulation
// volume is done along the two horizontal dimensions").
//
// A global nx x ny x nz ocean grid of float64 cells is decomposed over a
// px x py process mesh. Each time step the processes exchange boundary
// planes with their four neighbours: north/south halos are contiguous rows,
// east/west halos are strided columns (one small block per row — the
// non-contiguous case the direct_pack_ff algorithm accelerates), and the
// vertical dimension makes the columns double-strided.
//
// The example runs the same exchange with the generic pack-and-send
// baseline and with direct_pack_ff and reports the virtual-time speedup,
// then verifies the halo contents cell by cell.
//
//	go run ./examples/oceanhalo
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
)

const (
	px, py = 2, 2 // process mesh (4 ranks on 2 dual nodes)
	nx, ny = 512, 512
	nz     = 16 // vertical layers
	steps  = 4
)

// cell value encodes (global x, global y, z): a verifiable fingerprint.
func cellValue(gx, gy, z int) float64 {
	return float64(gx)*1e6 + float64(gy)*1e3 + float64(z)
}

// field is one rank's subdomain, with one-cell halos in x and y.
// Layout: [x][y][z], z fastest.
type field struct {
	lx, ly int // interior cells per dimension
	data   []float64
}

func newField(lx, ly int) *field {
	return &field{lx: lx, ly: ly, data: make([]float64, (lx+2)*(ly+2)*nz)}
}

func (f *field) idx(x, y, z int) int { return (x*(f.ly+2)+y)*nz + z }

// bytes views the field as the runtime's untyped buffer.
func (f *field) bytes() []byte {
	b := make([]byte, len(f.data)*8)
	for i, v := range f.data {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

func (f *field) load(b []byte) {
	for i := range f.data {
		f.data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
}

func main() {
	ffTime := run(true)
	genTime := run(false)
	fmt.Printf("halo exchange, %d steps: direct_pack_ff %v, generic %v (speedup %.2fx)\n",
		steps, ffTime, genTime, float64(genTime)/float64(ffTime))
}

func run(useFF bool) time.Duration {
	cfg := mpi.DefaultConfig(2, 2) // 4 ranks on 2 dual-SMP nodes
	cfg.Protocol.UseFF = useFF
	var exchange time.Duration
	mpi.Run(cfg, func(c *mpi.Comm) {
		rank := c.Rank()
		cx, cy := rank%px, rank/px
		lx, ly := nx/px, ny/py
		f := newField(lx, ly)

		// Initialize the interior with global fingerprints.
		for x := 1; x <= lx; x++ {
			for y := 1; y <= ly; y++ {
				for z := 0; z < nz; z++ {
					f.data[f.idx(x, y, z)] = cellValue(cx*lx+x-1, cy*ly+y-1, z)
				}
			}
		}

		// Halo datatypes over the [x][y][z] layout (z fastest):
		// A west/east halo is one y-z plane: for fixed x, ly blocks of nz
		// doubles, contiguous — but the *target* of the exchange is a
		// strided set because x varies per element row on the north/south
		// side. North/south halos (fixed y) are lx blocks of nz doubles
		// strided by the row length: the double-strided case of figure 2.
		rowBytes := int64((ly + 2) * nz * 8)
		planeNS := datatype.Hvector(lx, nz, rowBytes, datatype.Float64).Commit()
		planeWE := datatype.Contiguous(ly*nz, datatype.Float64).Commit()

		buf := f.bytes()
		west, east := rank-1, rank+1
		if cx == 0 {
			west = -1
		}
		if cx == px-1 {
			east = -1
		}
		south, north := rank-px, rank+px
		if cy == 0 {
			south = -1
		}
		if cy == py-1 {
			north = -1
		}

		off := func(x, y, z int) int64 { return int64(f.idx(x, y, z)) * 8 }

		c.Barrier()
		start := c.WtimeDuration()
		for s := 0; s < steps; s++ {
			// East/west: contiguous y-z planes (x fixed). Both directions
			// of a phase share a tag: my east-send matches the neighbour's
			// west-receive.
			exchangePair(c, buf, planeWE, east, off(lx, 1, 0), off(lx+1, 1, 0), 10+s)
			exchangePair(c, buf, planeWE, west, off(1, 1, 0), off(0, 1, 0), 10+s)
			// North/south: strided x-z planes (y fixed): non-contiguous.
			exchangePair(c, buf, planeNS, north, off(1, ly, 0), off(1, ly+1, 0), 30+s)
			exchangePair(c, buf, planeNS, south, off(1, 1, 0), off(1, 0, 0), 30+s)
		}
		c.Barrier()
		if rank == 0 {
			exchange = c.WtimeDuration() - start
		}

		// Verify the received halos against the global fingerprints.
		f.load(buf)
		check := func(x, y int, gx, gy int) {
			for z := 0; z < nz; z++ {
				want := cellValue(gx, gy, z)
				if got := f.data[f.idx(x, y, z)]; got != want {
					log.Fatalf("rank %d: halo (%d,%d,%d) = %v, want %v", rank, x, y, z, got, want)
				}
			}
		}
		if east >= 0 {
			for y := 1; y <= ly; y++ {
				check(lx+1, y, (cx+1)*lx, cy*ly+y-1)
			}
		}
		if north >= 0 {
			for x := 1; x <= lx; x++ {
				check(x, ly+1, cx*lx+x-1, (cy+1)*ly)
			}
		}
	})
	return exchange
}

// exchangePair swaps one halo plane with a neighbour (no-op for -1).
func exchangePair(c *mpi.Comm, buf []byte, dt *datatype.Type, peer int, sendOff, recvOff int64, tag int) {
	if peer < 0 {
		return
	}
	c.Sendrecv(buf[sendOff:], 1, dt, peer, tag, buf[recvOff:], 1, dt, peer, tag)
}
