// Quickstart: the smallest complete program on the simulated SCI cluster,
// written against the public scimpich facade (no internal imports).
//
// It starts a 2-node cluster, sends a strided vector datatype from rank 0
// to rank 1 (exercising direct_pack_ff), does a one-sided put with fence
// synchronization, and prints the virtual-time costs. It then reruns the
// same program with Config.Shards = 2 — the conservative-parallel engine —
// and checks the virtual outcome is identical, byte for byte.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"scimpich"
)

func program(c *scimpich.Comm) {
	// A vector of 1024 blocks of 2 doubles every 4 doubles: half data,
	// half gaps — the shape of a boundary column in a 2-D domain.
	column := scimpich.Vector(1024, 2, 4, scimpich.Float64).Commit()

	switch c.Rank() {
	case 0:
		// Fill the strided source: value = block index.
		src := make([]byte, column.Extent())
		vals := make([]float64, 2048)
		for i := range vals {
			vals[i] = float64(i / 2)
		}
		copy(src, scimpich.Float64Bytes(vals)) // dense prefix; the type picks blocks
		t0 := c.Wtime()
		c.Send(src, 1, column, 1, 0)
		fmt.Printf("rank 0: sent %d strided bytes in %.1f µs\n",
			column.Size(), (c.Wtime()-t0)*1e6)
	case 1:
		dst := make([]byte, column.Extent())
		st := c.Recv(dst, 1, column, 0, 0)
		fmt.Printf("rank 1: received %d bytes from rank %d\n", st.Bytes, st.Source)
	}

	// One-sided: every rank exposes a window and rank 0 puts into 1.
	sys := scimpich.NewOSC(c)
	win := sys.CreateShared(c.AllocShared(4096), scimpich.DefaultOSCConfig())
	win.Fence()
	if c.Rank() == 0 {
		payload := scimpich.Float64Bytes([]float64{3.14159})
		win.Put(payload, 8, scimpich.Byte, 1, 0)
	}
	win.Fence()
	if c.Rank() == 1 {
		got := scimpich.BytesFloat64(win.LocalBytes()[:8])[0]
		fmt.Printf("rank 1: window[0] = %g after fence\n", got)
		if got != 3.14159 {
			log.Fatal("one-sided put did not arrive")
		}
	}
}

func main() {
	end := scimpich.Run(scimpich.DefaultConfig(2, 1), program)
	fmt.Printf("simulation finished at virtual time %v\n", end)

	// Same program, conservative-parallel engine: Config.Shards picks the
	// fabric, the schedule stays byte-identical.
	cfg := scimpich.DefaultConfig(2, 1)
	cfg.Shards = 2
	if sharded := scimpich.Run(cfg, program); sharded != end {
		log.Fatalf("sharded run diverged: %v != %v", sharded, end)
	}
	fmt.Println("sharded rerun (2 shards) reproduced the virtual time exactly")
}
