// Package scimpich is a Go reproduction of "Exploiting Transparent Remote
// Memory Access for Non-Contiguous- and One-Sided-Communication"
// (Worringen, Gäer, Reker — IPPS 2002): the SCI-MPICH message-passing
// runtime with the direct_pack_ff datatype engine and MPI-2 one-sided
// communication, running on a deterministic discrete-event simulation of an
// SCI-connected cluster.
//
// This package is the public facade; it re-exports the user-facing API of
// the internal packages:
//
//   - cluster construction and the MPI subset (Run, Comm, datatypes,
//     collectives) from internal/mpi and internal/datatype,
//   - one-sided communication (windows, Put/Get/Accumulate, fence / PSCW /
//     lock-unlock) from internal/osc,
//   - the experiment drivers that regenerate every table and figure of the
//     paper from internal/bench.
//
// Quick start:
//
//	cfg := scimpich.DefaultConfig(2, 1) // 2 nodes, 1 process each
//	scimpich.Run(cfg, func(c *scimpich.Comm) {
//		ty := scimpich.Vector(1024, 2, 4, scimpich.Float64).Commit()
//		if c.Rank() == 0 {
//			c.Send(buf, 1, ty, 1, 0)
//		} else {
//			c.Recv(buf, 1, ty, 0, 0)
//		}
//	})
//
// See the examples/ directory for complete programs and DESIGN.md for the
// system inventory and the per-experiment index.
package scimpich

import (
	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
	"scimpich/internal/osc"
	"scimpich/internal/sim"
)

// Cluster configuration and runtime.
type (
	// Config describes a simulated cluster (nodes, SMP width, interconnect
	// and protocol parameters). Config.Shards selects the engine: the
	// sequential oracle by default, the conservative-parallel sharded
	// engine for Shards > 1 — same virtual outcome, byte for byte.
	Config = mpi.Config
	// Comm is a rank's communicator handle.
	Comm = mpi.Comm
	// World is a wired cluster (NewWorldOn); most programs use Run and
	// never touch it.
	World = mpi.World
	// Fabric is the simulation substrate a world runs on: a set of
	// locales advancing one virtual clock (internal/sim.Fabric).
	Fabric = sim.Fabric
	// Placement assigns world ranks to fabric locales.
	Placement = mpi.Placement
	// TorusConfig parameterizes the §6-scale 3-D torus collective machine
	// (TorusWorld): a dx*dy*dz node grid running the chunked ring
	// allreduce, shardable by z-planes.
	TorusConfig = mpi.TorusConfig
	// TorusResult summarizes a completed torus run.
	TorusResult = mpi.TorusResult
	// TorusWorld is the torus collective machine.
	TorusWorld = mpi.TorusWorld
	// Status describes a completed receive.
	Status = mpi.Status
	// Request is a nonblocking operation handle.
	Request = mpi.Request
	// Op is a reduction operation.
	Op = mpi.Op
	// SharedSeg is remotely accessible memory (MPI_Alloc_mem).
	SharedSeg = mpi.SharedSeg
	// ProtocolConfig tunes the messaging protocols and the collective
	// engine (point-to-point thresholds, path policy, collective
	// algorithm choice and window sizing).
	ProtocolConfig = mpi.ProtocolConfig
	// PathPolicy selects the transfer engine of large point-to-point
	// messages.
	PathPolicy = mpi.PathPolicy
	// CollAlg selects (or forces) a collective algorithm family.
	CollAlg = mpi.CollAlg
)

// Typed errors surfaced by the checked API (SendChecked, BcastChecked,
// AllreduceChecked, ...).
type (
	// ArgumentError reports an invalid argument to an MPI call.
	ArgumentError = mpi.ArgumentError
	// ProtocolError reports a messaging-protocol violation.
	ProtocolError = mpi.ProtocolError
	// CancelledError reports a request cancelled by fault handling.
	CancelledError = mpi.CancelledError
)

// Transfer-path policies (ProtocolConfig.Path).
const (
	PathAdaptive = mpi.PathAdaptive
	PathStatic   = mpi.PathStatic
	PathPIO      = mpi.PathPIO
	PathStaged   = mpi.PathStaged
	PathDMA      = mpi.PathDMA
)

// Collective algorithm families (ProtocolConfig.Coll).
const (
	CollAuto     = mpi.CollAuto
	CollP2P      = mpi.CollP2P
	CollRecDbl   = mpi.CollRecDbl
	CollRing     = mpi.CollRing
	CollOneSided = mpi.CollOneSided
)

// Datatypes.
type (
	// Type is an MPI datatype.
	Type = datatype.Type
	// Field is one member of a struct datatype.
	Field = datatype.Field
)

// One-sided communication.
type (
	// Win is an MPI-2 window.
	Win = osc.Win
	// OSCSystem is a rank's one-sided engine.
	OSCSystem = osc.System
	// OSCConfig tunes one-sided transfer policy.
	OSCConfig = osc.Config
)

// Receive wildcards.
const (
	AnySource = mpi.AnySource
	AnyTag    = mpi.AnyTag
)

// Reduction operations.
const (
	OpSum  = mpi.OpSum
	OpProd = mpi.OpProd
	OpMax  = mpi.OpMax
	OpMin  = mpi.OpMin
)

// Predefined basic datatypes.
var (
	Byte    = datatype.Byte
	Char    = datatype.Char
	Int16   = datatype.Int16
	Int32   = datatype.Int32
	Int64   = datatype.Int64
	Float32 = datatype.Float32
	Float64 = datatype.Float64
	Double  = datatype.Double
)

// Run builds a simulated cluster and executes main once per rank, returning
// the final virtual time. Config.Shards picks the engine (see Config).
var Run = mpi.Run

// Fabric-first construction: NewFabric builds the engine Run would use for
// a Config, RunOn runs a cluster on an existing fabric, and NewWorldOn
// wires a cluster onto a fabric locale without running it — for harnesses
// that mix in extra simulation components. NewLocalFabric wraps a fresh
// sequential engine as an n-locale fabric.
var (
	NewFabric      = mpi.NewFabric
	RunOn          = mpi.RunOn
	NewWorldOn     = mpi.NewWorldOn
	NewPlacement   = mpi.NewPlacement
	NewLocalFabric = sim.NewLocalFabric
)

// The §6-scale torus collective machine, shardable by z-planes: the
// sharded fabric, the sequential oracle fabric, and the world constructor
// that runs on either.
var (
	DefaultTorusConfig = mpi.DefaultTorusConfig
	NewTorusFabric     = mpi.NewTorusFabric
	NewTorusOracle     = mpi.NewTorusOracle
	NewTorusWorldOn    = mpi.NewTorusWorldOn
)

// DefaultConfig returns a cluster configuration matching the paper's
// testbed (dual Pentium-III nodes on a 166 MHz SCI ringlet).
var DefaultConfig = mpi.DefaultConfig

// DefaultProtocol returns the SCI-MPICH-like protocol parameters
// (thresholds, path policy, collective engine defaults).
var DefaultProtocol = mpi.DefaultProtocol

// Datatype constructors (MPI_Type_*).
var (
	Contiguous = datatype.Contiguous
	Vector     = datatype.Vector
	Hvector    = datatype.Hvector
	Indexed    = datatype.Indexed
	Hindexed   = datatype.Hindexed
	StructOf   = datatype.StructOf
	Resized    = datatype.Resized
)

// NewOSC installs the one-sided communication engine on a rank.
var NewOSC = osc.NewSystem

// DefaultOSCConfig returns the calibrated one-sided transfer policy.
var DefaultOSCConfig = osc.DefaultConfig

// Typed buffer helpers.
var (
	Float64Bytes = mpi.Float64Bytes
	BytesFloat64 = mpi.BytesFloat64
	Int32Bytes   = mpi.Int32Bytes
	BytesInt32   = mpi.BytesInt32
)
