// Command noncontig regenerates the non-contiguous datatype experiments:
// Figure 7 (generic vs direct_pack_ff vs contiguous on SCI-MPICH, inter-
// and intra-node) and, with -platforms, Figure 10 (the same workload across
// the Table 1 machines) plus the Table 1 inventory itself.
//
// Usage:
//
//	noncontig [-csv] [-platforms] [-min 8] [-max 131072]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"scimpich/internal/bench"
	"scimpich/internal/platform"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	platforms := flag.Bool("platforms", false, "run the Figure 10 cross-platform comparison")
	doubleStrided := flag.Bool("2d", false, "run the double-strided (figure 2) variant")
	min := flag.Int64("min", 8, "smallest block size in bytes")
	max := flag.Int64("max", 128<<10, "largest block size in bytes")
	finish := bench.ObsFlags()
	flag.Parse()
	defer finish()

	sizes := bench.Sizes(*min, *max)
	if *doubleStrided {
		results := bench.RunNoncontig2D(sizes)
		fig := &bench.Figure{
			Title:  "Double-strided (figure 2) transfers over SCI (MiB/s)",
			XLabel: "blocksize",
			YLabel: "MiB/s",
		}
		gen := bench.Series{Label: "SCI-generic"}
		ff := bench.Series{Label: "SCI-ff"}
		for _, r := range results {
			fig.X = append(fig.X, float64(r.BlockSize))
			gen.Values = append(gen.Values, r.InterGeneric)
			ff.Values = append(ff.Values, r.InterFF)
		}
		fig.Series = []bench.Series{gen, ff}
		if *csv {
			fig.CSV(os.Stdout)
		} else {
			fig.Print(os.Stdout)
		}
		return
	}
	if *platforms {
		printTable1(os.Stdout)
		results := bench.RunPlatformNoncontig(sizes)
		fig := bench.PlatformNoncontigFigure(sizes, results)
		if *csv {
			fig.CSV(os.Stdout)
		} else {
			fig.Print(os.Stdout)
		}
		return
	}
	fig := bench.NoncontigFigure(bench.RunNoncontig(sizes))
	if *csv {
		fig.CSV(os.Stdout)
	} else {
		fig.Print(os.Stdout)
	}
}

// printTable1 reproduces the platform inventory (Table 1).
func printTable1(out *os.File) {
	fmt.Fprintln(out, "# Table 1: cluster platforms for evaluation of MPI performance")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tMachine\tInterconnect\tMPI\tOSC")
	rows := platform.All()
	for _, pl := range rows {
		osc := "no"
		if pl.OneSided {
			osc = "yes"
		}
		if pl.GetOnly {
			osc = "yes (Get only)"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n", pl.ID, pl.Machine, pl.Interconnect, pl.MPI, osc)
	}
	fmt.Fprintln(w, "M-S\tPentiumIII dual SMP\tSCI\tMP-MPICH (this repo)\tyes")
	fmt.Fprintln(w, "M-s\tPentiumIII dual SMP\tshared memory\tMP-MPICH (this repo)\tyes")
	w.Flush()
	fmt.Fprintln(out)
}
