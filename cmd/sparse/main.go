// Command sparse regenerates the one-sided communication experiments:
// Figure 9 (sparse micro-benchmark latency and bandwidth for MPI_Put and
// MPI_Get on shared and private windows) and, with -platforms, Figure 11
// (the same benchmark across the platforms that support one-sided
// communication, including the VIA reference of [15]).
//
// Usage:
//
//	sparse [-csv] [-platforms] [-min 8] [-max 65536]
package main

import (
	"flag"
	"os"

	"scimpich/internal/bench"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	platforms := flag.Bool("platforms", false, "run the Figure 11 cross-platform comparison")
	min := flag.Int64("min", 8, "smallest access size in bytes")
	max := flag.Int64("max", 64<<10, "largest access size in bytes")
	finish := bench.ObsFlags()
	flag.Parse()
	defer finish()

	sizes := bench.Sizes(*min, *max)
	emit := func(f *bench.Figure) {
		if *csv {
			f.CSV(os.Stdout)
			os.Stdout.WriteString("\n")
		} else {
			f.Print(os.Stdout)
		}
	}
	if *platforms {
		results := bench.RunPlatformSparse(sizes)
		emit(bench.PlatformSparseLatencyFigure(sizes, results))
		emit(bench.PlatformSparseFigure(sizes, results))
		return
	}
	results := bench.RunSparse(sizes)
	emit(bench.SparseLatencyFigure(results))
	emit(bench.SparseBandwidthFigure(results))
}
