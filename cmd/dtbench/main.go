// Command dtbench runs a derived-datatype benchmark suite in the spirit of
// the paper's reference [24] (Reussner, Träff, Hunzelmann: "A Benchmark for
// MPI Derived Datatypes"): representative datatype patterns transmitted
// with the generic pack-and-send engine and with direct_pack_ff, reported
// as bandwidth and as efficiency relative to the contiguous transfer.
//
// Usage:
//
//	dtbench
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"scimpich/internal/bench"
)

func main() {
	finish := bench.ObsFlags()
	flag.Parse()
	defer finish()
	results := bench.RunDTBench()
	fmt.Println("# Derived-datatype suite (cf. paper ref [24]), 2 nodes via SCI")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "pattern\tbytes\tgeneric MiB/s\tff MiB/s\tadaptive MiB/s\tcontig MiB/s\tgeneric eff\tff eff\tadaptive eff\tchosen")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\t%.2f\t%.2f\t%s\n",
			r.Name, r.Bytes, r.GenericBW, r.FFBW, r.AdaptiveBW, r.ContigBW, r.GenericEff, r.FFEff, r.AdaptiveEff, r.Chosen)
	}
	w.Flush()
}
