// Command repro regenerates the paper's entire evaluation in one run:
// every figure, both tables and the extension experiments, printed as one
// report. Expect it to take on the order of a minute.
//
// Usage:
//
//	repro [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"scimpich/internal/bench"
	"scimpich/internal/ring"
)

func main() {
	quick := flag.Bool("quick", false, "coarser sweeps (fewer sizes)")
	finish := bench.ObsFlags()
	flag.Parse()
	defer finish()
	start := time.Now()

	lo, hi := int64(8), int64(128<<10)
	if *quick {
		lo, hi = 64, 16<<10
	}
	sizes := bench.Sizes(lo, hi)
	accessSizes := bench.Sizes(8, 64<<10)
	if *quick {
		accessSizes = bench.Sizes(64, 8<<10)
	}

	section("Figure 1: raw SCI communication performance")
	raw := bench.RunRaw(bench.Sizes(8, 512<<10))
	bench.RawLatencyFigure(raw).Print(os.Stdout)
	bench.RawFigure(raw).Print(os.Stdout)

	section("Protocol sweep: ping-pong across short/eager/rendezvous")
	bench.PingPongFigure(bench.RunPingPong(sizes)).Print(os.Stdout)

	section("Figure 7: non-contiguous datatype transfers")
	bench.NoncontigFigure(bench.RunNoncontig(sizes)).Print(os.Stdout)

	section("Figure 9: sparse one-sided micro-benchmark")
	sparse := bench.RunSparse(accessSizes)
	bench.SparseLatencyFigure(sparse).Print(os.Stdout)
	bench.SparseBandwidthFigure(sparse).Print(os.Stdout)

	section("Section 4.3: strided remote-write study")
	strided := bench.RunStrided([]int64{8, 64, 256})
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "access\tmin MiB/s\tmax MiB/s\tbest stride")
	for _, e := range bench.Extremes(strided) {
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%d\n", e.AccessSize, e.MinBW, e.MaxBW, e.BestStride)
	}
	w.Flush()
	fmt.Println()

	section("Figure 10: non-contiguous datatypes across platforms")
	bench.PlatformNoncontigFigure(sizes, bench.RunPlatformNoncontig(sizes)).Print(os.Stdout)

	section("Figure 11: one-sided communication across platforms")
	ps := bench.RunPlatformSparse(accessSizes)
	bench.PlatformSparseFigure(accessSizes, ps).Print(os.Stdout)

	section("Figure 12: scaling of one-sided strided communication")
	bench.ScalingFigure(bench.RunScaling(64 << 10)).Print(os.Stdout)

	section("Table 2: scalability vs segment utilization")
	for _, mhz := range []float64{ring.DefaultLinkMHz, 200} {
		rows := bench.RunTable2(mhz)
		fmt.Printf("link frequency %.0f MHz (nominal %.0f MiB/s):\n", mhz, ring.BandwidthForMHz(mhz)/bench.MiB)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "nodes\t1 tr/seg p.node\t8 tr/seg p.node\tacc.\tload\teff.")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%.1f\t%.1f%%\t%.1f%%\n",
				r.ActiveNodes, r.PerNode1, r.PerNode8, r.Acc8, r.Load*100, r.Eff*100)
		}
		w.Flush()
		fmt.Println()
	}

	section("Extensions")
	fmt.Println("one-sided vs two-sided (paper §6):")
	cmp := bench.RunOneVsTwoSided()
	fmt.Printf("  ping-pong: two-sided %v, one-sided %v\n", cmp.TwoSidedPingPong, cmp.OneSidedPingPong)
	fmt.Printf("  busy target: two-sided %v, one-sided %v\n\n", cmp.TwoSidedBusy, cmp.OneSidedBusy)

	fmt.Println("derived-datatype suite (cf. [24]):")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  pattern\tgeneric eff\tff eff")
	for _, r := range bench.RunDTBench() {
		fmt.Fprintf(w, "  %s\t%.2f\t%.2f\n", r.Name, r.GenericEff, r.FFEff)
	}
	w.Flush()
	fmt.Println()

	fmt.Println("3D-torus scaling projection (paper §6, 200 MHz):")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  topology\tnodes\tper-node MiB/s")
	for _, r := range bench.RunTorusProjection(200) {
		fmt.Fprintf(w, "  %s\t%d\t%.1f\n", r.Topology, r.Nodes, r.PerNode)
	}
	w.Flush()

	fmt.Printf("\nreport complete in %v (wall clock)\n", time.Since(start).Round(time.Millisecond))
}

func section(title string) {
	fmt.Printf("==== %s ====\n\n", title)
}
