// Command scaling regenerates the ring-scalability experiments: Figure 12
// (per-process one-sided put bandwidth across platforms with hardware
// support) and Table 2 (per-node bandwidth versus segment utilization, ring
// load and efficiency, including the 200 MHz link-frequency rerun).
//
// Usage:
//
//	scaling [-csv] [-table2] [-mhz 166] [-access 65536]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"scimpich/internal/bench"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	table2 := flag.Bool("table2", false, "print Table 2 instead of Figure 12")
	torusProj := flag.Bool("torus", false, "print the §6 3D-torus scaling projection and the measured 512-node run")
	shards := flag.Int("shards", 8, "z-plane shard count for the measured 512-node run")
	mhz := flag.Float64("mhz", 166, "SCI link frequency for Table 2")
	access := flag.Int64("access", 64<<10, "access size for the Figure 12 workload")
	finish := bench.ObsFlags()
	flag.Parse()
	defer finish()

	if *torusProj {
		rows := bench.RunTorusProjection(200)
		fmt.Println("# §6 outlook: 512-node scaling projection (200 MHz links, distance-4 puts)")
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "topology\tnodes\tper-node MiB/s")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%.1f\n", r.Topology, r.Nodes, r.PerNode)
		}
		w.Flush()

		// The projection above is analytic (steady-state flow rates); this
		// is the measured run — the full 8x8x8 machine executing a chunked
		// ring allreduce on the sharded conservative-parallel engine.
		fmt.Printf("\n# measured: 512-node ring allreduce, sharded engine (%d z-plane shards)\n", *shards)
		r, err := bench.RunEngine512(*shards)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scaling: %v\n", err)
			os.Exit(1)
		}
		w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "nodes\tshards\tsteps\tevents\twindows\tvirtual\twall\tchecksum")
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%v\t%v\t%s\n",
			r.Nodes, r.Shards, r.Steps, r.Events, r.Windows,
			time.Duration(r.VirtualNS), time.Duration(r.WallNS).Round(time.Millisecond), r.Checksum)
		w.Flush()
		return
	}

	if *table2 {
		printTable2(*mhz)
		if *mhz == 166 {
			fmt.Println("# rerun with increased link frequency (762 MiB/s nominal):")
			printTable2(200)
		}
		return
	}
	fig := bench.ScalingFigure(bench.RunScaling(*access))
	if *csv {
		fig.CSV(os.Stdout)
	} else {
		fig.Print(os.Stdout)
	}
}

func printTable2(mhz float64) {
	rows := bench.RunTable2(mhz)
	fmt.Printf("# Table 2: scalability for different segment utilization levels (%.0f MHz links)\n", mhz)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "nodes\t1 tr/seg p.node\tacc.\t8 tr/seg p.node\tacc.\tload\teff.")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.2f\t%.1f\t%.2f\t%.1f\t%.1f%%\t%.1f%%\n",
			r.ActiveNodes, r.PerNode1, r.Acc1, r.PerNode8, r.Acc8, r.Load*100, r.Eff*100)
	}
	w.Flush()
	fmt.Println()
}
