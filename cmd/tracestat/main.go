// Command tracestat aggregates a Chrome trace-event JSON file (as written
// by the -trace-out flag of the benchmark drivers) into per-category
// tables: span counts, bytes moved, and latency quantiles.
//
// Usage:
//
//	tracestat [-actors] trace.json
//
// Reading "-" aggregates standard input. The input may be the object form
// ({"traceEvents": [...]}) or a bare event array.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"scimpich/internal/obs"
)

func main() {
	actors := flag.Bool("actors", false, "also break the spans down per actor (thread)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [-actors] trace.json")
		os.Exit(2)
	}
	evs, other, err := readTrace(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
		os.Exit(1)
	}
	if other.DroppedSpans > 0 || other.DroppedEvents > 0 {
		fmt.Fprintf(os.Stderr,
			"tracestat: warning: trace is truncated: the exporter's ring dropped %d spans and %d instants before the export\n",
			other.DroppedSpans, other.DroppedEvents)
	}

	spans, instants := 0, 0
	for _, e := range evs {
		switch e.Ph {
		case "X":
			spans++
		case "i", "I":
			instants++
		}
	}
	fmt.Printf("# %s: %d events (%d spans, %d instants)\n\n",
		flag.Arg(0), len(evs), spans, instants)

	fmt.Println("# per category")
	obs.WriteSummaries(os.Stdout, obs.SummarizeChrome(evs))

	if *actors {
		// Thread names arrive as "M" metadata events; fall back to the tid.
		tidName := make(map[int]string)
		for _, e := range evs {
			if e.Ph == "M" && e.Name == "thread_name" {
				if n, ok := e.Args["name"].(string); ok {
					tidName[e.Tid] = n
				}
			}
		}
		byActor := make(map[string][]obs.ChromeEvent)
		for _, e := range evs {
			if e.Ph == "X" {
				name := tidName[e.Tid]
				if name == "" {
					name = fmt.Sprintf("tid%d", e.Tid)
				}
				byActor[name] = append(byActor[name], e)
			}
		}
		names := make([]string, 0, len(byActor))
		for n := range byActor {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("\n# actor %s\n", n)
			obs.WriteSummaries(os.Stdout, obs.SummarizeChrome(byActor[n]))
		}
	}
}

func readTrace(path string) ([]obs.ChromeEvent, obs.ChromeOther, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, obs.ChromeOther{}, err
		}
		defer f.Close()
		r = f
	}
	return obs.ReadChromeMeta(r)
}
