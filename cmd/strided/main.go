// Command strided regenerates the §4.3 low-level study: the bandwidth of
// strided transparent remote writes as a function of access size and
// stride, with and without CPU write-combining. The paper's quoted numbers
// — 5 to 28 MiB/s for 8-byte accesses, 7 to 162 MiB/s for 256-byte
// accesses, best strides multiples of 32 — appear as the per-access-size
// extremes.
//
// Usage:
//
//	strided [-csv] [-access 8,256] [-sweep 256]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"scimpich/internal/bench"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	accessList := flag.String("access", "8,64,256,1024", "comma-separated access sizes in bytes")
	sweep := flag.Int64("sweep", 256, "access size for the full stride sweep printout (0 to skip)")
	finish := bench.ObsFlags()
	flag.Parse()
	defer finish()

	var accesses []int64
	for _, s := range strings.Split(*accessList, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "strided: bad access size %q\n", s)
			os.Exit(2)
		}
		accesses = append(accesses, v)
	}

	results := bench.RunStrided(accesses)

	fmt.Println("# §4.3: strided remote-write bandwidth extremes over the stride sweep")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "access\tmin MiB/s\tmax MiB/s\tbest stride")
	for _, e := range bench.Extremes(results) {
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%d\n", e.AccessSize, e.MinBW, e.MaxBW, e.BestStride)
	}
	w.Flush()
	fmt.Println()

	if *sweep > 0 {
		fig := bench.StridedFigure(results, *sweep)
		if *csv {
			fig.CSV(os.Stdout)
		} else {
			fig.Print(os.Stdout)
		}
	}
}
