// Command dtshow prints the internal representations of example derived
// datatypes: the constructor tree, the type map, and the flattened
// leaf/stack representation built at commit time (the paper's figures 3
// and 5).
//
// Usage:
//
//	dtshow [name]
//
// With no argument, all example types are shown. Names: paper-struct,
// vector, double-strided, indexed, subarray.
package main

import (
	"flag"
	"fmt"
	"os"

	"scimpich/internal/bench"
	"scimpich/internal/datatype"
)

// exampleTypes returns the named demonstration types.
func exampleTypes() []struct {
	Name string
	Desc string
	Type *datatype.Type
} {
	paperStruct := datatype.StructOf(
		datatype.Field{Type: datatype.Int32, Blocklen: 1, Disp: 0},
		datatype.Field{Type: datatype.Char, Blocklen: 3, Disp: 4},
	)
	paperStruct = datatype.Resized(paperStruct, 0, 12)
	inner := datatype.Vector(4, 2, 4, datatype.Float64)
	return []struct {
		Name string
		Desc string
		Type *datatype.Type
	}{
		{"paper-struct", "figure 3/5: a vector of structs (int + 3 chars + gap); the int and chars merge into one 7-byte leaf",
			datatype.Vector(5, 1, 1, paperStruct).Commit()},
		{"vector", "single-strided vector: 8 blocks of 2 doubles every 4 doubles",
			datatype.Vector(8, 2, 4, datatype.Float64).Commit()},
		{"double-strided", "figure 2: a vector of vectors (2-D face of a 3-D decomposition)",
			datatype.Vector(3, 1, 1, datatype.Resized(inner, 0, 512)).Commit()},
		{"indexed", "irregular blocks: lengths 2/1/3 at displacements 0/4/8",
			datatype.Indexed([]int{2, 1, 3}, []int{0, 4, 8}, datatype.Int32).Commit()},
		{"subarray", "the 2x2 interior of a 4x4 double matrix",
			datatype.Subarray([]int{4, 4}, []int{2, 2}, []int{1, 1}, datatype.Float64).Commit()},
	}
}

func main() {
	finish := bench.ObsFlags()
	flag.Parse()
	defer finish()
	want := flag.Arg(0)
	shown := 0
	for _, ex := range exampleTypes() {
		if want != "" && ex.Name != want {
			continue
		}
		shown++
		fmt.Printf("== %s ==\n%s\n", ex.Name, ex.Desc)
		fmt.Printf("tree:   %s\n", ex.Type)
		fmt.Printf("size %d, extent %d\n", ex.Type.Size(), ex.Type.Extent())
		fmt.Print("type map: ")
		for i, b := range ex.Type.TypeMap() {
			if i > 0 {
				fmt.Print(", ")
			}
			if i >= 8 {
				fmt.Print("...")
				break
			}
			fmt.Printf("[%d,%d)", b.Off, b.Off+b.Len)
		}
		fmt.Println()
		fmt.Print(ex.Type.Flat().Describe())
		fmt.Println()
	}
	if shown == 0 {
		fmt.Fprintf(os.Stderr, "dtshow: unknown type %q\n", want)
		os.Exit(2)
	}
}
