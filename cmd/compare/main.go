// Command compare runs the paper's concluding thought experiment (§6):
// does one-sided communication beat two-sided communication? It reports the
// synchronized ping-pong latencies (where, as the paper observes, one-sided
// does not win) and the completion time of fine-grained access to a busy,
// non-participating target (where direct remote memory access wins by
// removing the target from the critical path).
//
// Usage:
//
//	compare
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"scimpich/internal/bench"
)

func main() {
	finish := bench.ObsFlags()
	flag.Parse()
	defer finish()
	r := bench.RunOneVsTwoSided()
	fmt.Println("# One-sided vs two-sided communication (paper §6)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\ttwo-sided\tone-sided\twinner")
	fmt.Fprintf(w, "synchronized ping-pong (per round)\t%v\t%v\t%s\n",
		r.TwoSidedPingPong, r.OneSidedPingPong, winner(r.TwoSidedPingPong.Seconds(), r.OneSidedPingPong.Seconds()))
	fmt.Fprintf(w, "64 x 64B access to a busy target\t%v\t%v\t%s\n",
		r.TwoSidedBusy, r.OneSidedBusy, winner(r.TwoSidedBusy.Seconds(), r.OneSidedBusy.Seconds()))
	w.Flush()
	fmt.Println()
	fmt.Println("As the paper concludes: with synchronization included, one-sided")
	fmt.Println("communication does not provide lower micro-benchmark latencies; its")
	fmt.Println("advantage appears when the target must not participate.")
}

func winner(two, one float64) string {
	switch {
	case one < two*0.95:
		return "one-sided"
	case two < one*0.95:
		return "two-sided"
	default:
		return "tie"
	}
}
