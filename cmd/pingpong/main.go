// Command pingpong sweeps the classic two-sided latency/bandwidth
// benchmark over message sizes, inter-node (SCI) and intra-node (shared
// memory). The protocol transitions of the device — short control packets,
// preallocated eager slots, handshaked rendezvous — appear as knees in the
// latency curve.
//
// Usage:
//
//	pingpong [-csv] [-min 1] [-max 1048576]
package main

import (
	"flag"
	"os"

	"scimpich/internal/bench"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	min := flag.Int64("min", 1, "smallest message in bytes")
	max := flag.Int64("max", 1<<20, "largest message in bytes")
	finish := bench.ObsFlags()
	flag.Parse()
	defer finish()

	fig := bench.PingPongFigure(bench.RunPingPong(bench.Sizes(*min, *max)))
	if *csv {
		fig.CSV(os.Stdout)
		return
	}
	fig.Print(os.Stdout)
}
