// Command postmortem analyzes a flight-recorder dump (as written on the
// first typed failure by a world configured with a flight.Recorder, or
// forced with rmemserve -flight-out) and renders a causal post-mortem:
//
//   - the invariant report — unmatched or stalled rendezvous transfers,
//     fence-stall attribution (which rank held up the round, and whether an
//     injected crash is the root cause), shrink-agreement divergence, epoch
//     regressions and lost committed writes — ranked by severity,
//   - the causal chain terminating at the failure, annotated with Lamport
//     clocks derived from the send/recv, rendezvous, fence and put edges,
//   - the tail of every actor's event timeline.
//
// Usage:
//
//	postmortem [-events N] dump.json
//
// Reading "-" analyzes standard input.
package main

import (
	"flag"
	"fmt"
	"os"

	"scimpich/internal/obs/flight"
)

func main() {
	tail := flag.Int("events", 12, "timeline events shown per actor (0 hides the timelines)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: postmortem [-events N] dump.json")
		os.Exit(2)
	}
	d, err := flight.ReadDumpFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "postmortem: %v\n", err)
		os.Exit(1)
	}
	rep := flight.Analyze(d)
	flight.WriteReport(os.Stdout, d, rep)
	fmt.Println()
	flight.WriteChain(os.Stdout, d, rep)
	if *tail > 0 {
		fmt.Println()
		flight.WriteTimelines(os.Stdout, d, *tail)
	}
}
