// Command rmemserve drives the replicated remote-memory service with an
// open-loop simulated client workload (Zipfian keys, fixed arrival grid)
// and, optionally, a node crash mid-run. It prints the per-rank outcome —
// operations, committed ledger sizes, failovers, latency quantiles — and
// can write the BENCH_rmem.json availability artifact. See docs/ELASTIC.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scimpich/internal/bench"
	"scimpich/internal/fault"
	"scimpich/internal/mpi"
	"scimpich/internal/obs/flight"
	"scimpich/internal/rmem"
)

func main() {
	nodes := flag.Int("nodes", 4, "cluster nodes (1 rank per node)")
	seed := flag.Uint64("seed", 42, "fault-plan and workload seed")
	crashNode := flag.Int("crash-node", 1, "node to crash (-1 for a crash-free run)")
	crashAt := flag.Duration("crash-at", 5200*time.Microsecond, "virtual crash instant")
	rounds := flag.Int("rounds", 16, "commit rounds")
	ops := flag.Int("ops", 25, "client operations per round and rank")
	readFrac := flag.Float64("read-frac", 0.7, "fraction of operations that are gets")
	gap := flag.Duration("gap", 40*time.Microsecond, "open-loop inter-arrival time")
	jsonOut := flag.String("json-out", "", "also run the gated baseline/churn suite and write BENCH_rmem.json here")
	flightOut := flag.String("flight-out", "", "write the flight-recorder dump here (on first failure, or at end of run)")
	flag.Parse()

	cfg := mpi.DefaultConfig(*nodes, 1)
	cfg.Protocol.CollTimeout = mpi.AutoTimeout
	cfg.Protocol.RendezvousTimeout = mpi.AutoTimeout
	plan := fault.New(*seed)
	if *crashNode >= 0 {
		plan = plan.CrashNode(*crashNode, *crashAt)
	}
	cfg.SCI.Fault = plan
	var rec *flight.Recorder
	if *flightOut != "" {
		rec = flight.New(512)
		rec.SetDumpPath(*flightOut)
		cfg.Flight = rec
	}

	wl := rmem.DefaultWorkload()
	wl.Rounds, wl.OpsPerRound = *rounds, *ops
	wl.ReadFrac, wl.ArrivalGap = *readFrac, *gap
	wl.Seed = int64(*seed)

	reports, end := rmem.RunWorkload(cfg, rmem.DefaultConfig(), wl)
	fmt.Printf("rmemserve: %d nodes, %d rounds x %d ops, virtual end %v\n", *nodes, *rounds, *ops, end)
	fmt.Printf("  %-4s %-5s %6s %6s %9s %5s %5s %5s %11s %11s %11s\n",
		"rank", "state", "gets", "puts", "committed", "fail", "fovr", "lost", "get_p99", "put_p99", "sojourn_p99")
	for _, r := range reports {
		state := "ok"
		switch {
		case r.Died:
			state = "died"
		case r.RecoverErr != "":
			state = "error"
		}
		fmt.Printf("  %-4d %-5s %6d %6d %9d %5d %5d %5d %11v %11v %11v\n",
			r.Rank, state, r.GetOK, r.PutOK, r.Committed, r.OpFailures, r.Failovers, r.LostWrites,
			time.Duration(r.GetNS.P99), time.Duration(r.PutNS.P99), time.Duration(r.SojournNS.P99))
		if r.RecoverErr != "" {
			fmt.Printf("       recover error: %s\n", r.RecoverErr)
		}
		if r.VerifyErr != "" {
			fmt.Printf("       verify error: %s\n", r.VerifyErr)
		}
	}

	if rec != nil {
		if !rec.Dumped() {
			rec.ForceDump("end of run")
		}
		if err := rec.DumpErr(); err != nil {
			fmt.Fprintf(os.Stderr, "rmemserve: writing flight dump: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote flight dump %s (%s) — analyze with: go run ./cmd/postmortem %s\n",
			*flightOut, rec.Reason(), *flightOut)
	}

	if *jsonOut != "" {
		rows, ok := bench.RunRmemBench(*seed)
		fmt.Print(bench.FormatRmem(rows))
		if err := bench.WriteRmemJSON(*jsonOut, rows); err != nil {
			fmt.Fprintf(os.Stderr, "rmemserve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
		if !ok {
			fmt.Fprintln(os.Stderr, "rmemserve: availability gates failed")
			os.Exit(1)
		}
	}
}
