// Command rawperf regenerates Figure 1: raw SCI communication performance
// (PIO and DMA latency and bandwidth) on the simulated cluster.
//
// Usage:
//
//	rawperf [-csv] [-min 8] [-max 524288]
package main

import (
	"flag"
	"fmt"
	"os"

	"scimpich/internal/bench"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	min := flag.Int64("min", 8, "smallest transfer size in bytes")
	max := flag.Int64("max", 512<<10, "largest transfer size in bytes")
	finish := bench.ObsFlags()
	flag.Parse()
	defer finish()

	results := bench.RunRaw(bench.Sizes(*min, *max))
	lat := bench.RawLatencyFigure(results)
	bw := bench.RawFigure(results)
	if *csv {
		lat.CSV(os.Stdout)
		fmt.Println()
		bw.CSV(os.Stdout)
		return
	}
	lat.Print(os.Stdout)
	bw.Print(os.Stdout)
}
