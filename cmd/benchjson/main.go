// Command benchjson runs the hot-path microbenchmark suites (direct_pack_ff
// engine and PIO delivery pipeline) and writes BENCH_pack.json and
// BENCH_pio.json — the regression-gate artifacts archived by CI. See
// docs/PERFORMANCE.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"scimpich/internal/bench"
)

func main() {
	dir := flag.String("dir", ".", "directory the BENCH_*.json artifacts are written to")
	flag.Parse()

	suites := []struct {
		name  string
		file  string
		suite []bench.NamedBench
	}{
		{"pack", "BENCH_pack.json", bench.PackBenchmarks()},
		{"pio", "BENCH_pio.json", bench.PIOBenchmarks()},
	}
	for _, s := range suites {
		results := bench.RunHotpathSuite(s.suite)
		fmt.Print(bench.FormatHotpath(s.name, results))
		path := filepath.Join(*dir, s.file)
		if err := bench.WriteBenchJSON(path, s.name, results); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
