// Command benchjson runs the hot-path microbenchmark suites (direct_pack_ff
// engine and PIO delivery pipeline), the virtual-time DMA path-selection
// and collective matrices, the rmem failover suite and the sharded-engine
// 512-node suite, and writes the BENCH_*.json regression-gate artifacts
// archived by CI. See docs/PERFORMANCE.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"scimpich/internal/bench"
)

func main() {
	dir := flag.String("dir", ".", "directory the BENCH_*.json artifacts are written to")
	rmemSeed := flag.Uint64("rmem-seed", 42, "fault-plan seed of the rmem failover suite")
	flag.Parse()

	suites := []struct {
		name  string
		file  string
		suite []bench.NamedBench
	}{
		{"pack", "BENCH_pack.json", bench.PackBenchmarks()},
		{"pio", "BENCH_pio.json", bench.PIOBenchmarks()},
	}
	for _, s := range suites {
		results := bench.RunHotpathSuite(s.suite)
		fmt.Print(bench.FormatHotpath(s.name, results))
		path := filepath.Join(*dir, s.file)
		if err := bench.WriteBenchJSON(path, s.name, results); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}

	// The DMA path-selection matrix runs in virtual time (forced deposit
	// engines vs the adaptive chooser per block size) and has its own
	// result schema.
	dma := bench.RunDMAPathBench(bench.DMAPathBlockSizes())
	fmt.Print(bench.FormatDMAPath(dma))
	path := filepath.Join(*dir, "BENCH_dma.json")
	if err := bench.WriteDMAJSON(path, dma); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)

	// The collective algorithm-selection matrix (forced algorithm families
	// vs the adaptive chooser per collective, payload and cluster size).
	coll := bench.RunCollBench(bench.CollNodeCounts())
	fmt.Print(bench.FormatColl(coll))
	path = filepath.Join(*dir, "BENCH_coll.json")
	if err := bench.WriteCollJSON(path, coll); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)

	// The replicated remote-memory failover suite (crash-free baseline vs
	// a primary crash mid-workload); its rows carry the availability gates.
	rmemRows, ok := bench.RunRmemBench(*rmemSeed)
	fmt.Print(bench.FormatRmem(rmemRows))
	path = filepath.Join(*dir, "BENCH_rmem.json")
	if err := bench.WriteRmemJSON(path, rmemRows); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
	if !ok {
		fmt.Fprintln(os.Stderr, "benchjson: rmem availability gates failed")
		os.Exit(1)
	}

	// The sharded-engine suite: the 512-node torus ring allreduce plus the
	// full-stack MPI allreduce, each on the sequential oracle vs the
	// conservative-parallel engine. Its rows carry the schedule-determinism
	// gates (both workloads) and the 2x wall-clock gate at the widest torus
	// shard count.
	engRows, engOK := bench.RunEngineBench()
	fmt.Print(bench.FormatEngine(engRows))
	path = filepath.Join(*dir, "BENCH_engine.json")
	if err := bench.WriteEngineJSON(path, engRows); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
	if !engOK {
		fmt.Fprintln(os.Stderr, "benchjson: engine determinism/speedup gates failed")
		os.Exit(1)
	}
}
