module scimpich

go 1.24
