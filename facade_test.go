package scimpich_test

import (
	"bytes"
	"testing"

	"scimpich"
)

// The facade test exercises the public API end to end: cluster, datatypes,
// point-to-point, collectives, and one-sided communication, all through the
// root package.
func TestPublicAPIEndToEnd(t *testing.T) {
	ty := scimpich.Vector(64, 2, 4, scimpich.Float64).Commit()
	src := make([]byte, ty.Extent()+64)
	for i := range src {
		src[i] = byte(i*3 + 1)
	}
	end := scimpich.Run(scimpich.DefaultConfig(2, 2), func(c *scimpich.Comm) {
		// Typed point-to-point.
		switch c.Rank() {
		case 0:
			c.Send(src, 1, ty, 1, 0)
		case 1:
			dst := make([]byte, len(src))
			st := c.Recv(dst, 1, ty, 0, 0)
			if st.Bytes != ty.Size() {
				t.Errorf("received %d bytes, want %d", st.Bytes, ty.Size())
			}
			for _, b := range ty.TypeMap() {
				if !bytes.Equal(dst[b.Off:b.Off+b.Len], src[b.Off:b.Off+b.Len]) {
					t.Errorf("typed block at %d corrupted", b.Off)
				}
			}
		}

		// Collective.
		recv := make([]byte, 8)
		c.Allreduce(scimpich.Float64Bytes([]float64{1}), recv, 1, scimpich.Float64, scimpich.OpSum)
		if scimpich.BytesFloat64(recv)[0] != float64(c.Size()) {
			t.Errorf("allreduce = %g, want %d", scimpich.BytesFloat64(recv)[0], c.Size())
		}

		// One-sided.
		sys := scimpich.NewOSC(c)
		win := sys.CreateShared(c.AllocShared(64), scimpich.DefaultOSCConfig())
		win.Fence()
		if c.Rank() == 0 {
			win.Put(scimpich.Float64Bytes([]float64{2.5}), 8, scimpich.Byte, c.Size()-1, 0)
		}
		win.Fence()
		if c.Rank() == c.Size()-1 {
			if got := scimpich.BytesFloat64(win.LocalBytes()[:8])[0]; got != 2.5 {
				t.Errorf("window value = %g, want 2.5", got)
			}
		}

		// Communicator management.
		sub := c.Split(c.Rank()%2, c.Rank())
		sub.Barrier()
	})
	if end <= 0 {
		t.Error("virtual end time not positive")
	}
}

func TestFacadeDatatypeConstructors(t *testing.T) {
	for name, ty := range map[string]*scimpich.Type{
		"contiguous": scimpich.Contiguous(4, scimpich.Int32),
		"vector":     scimpich.Vector(2, 1, 2, scimpich.Int64),
		"hvector":    scimpich.Hvector(2, 1, 32, scimpich.Float32),
		"indexed":    scimpich.Indexed([]int{1, 2}, []int{0, 3}, scimpich.Int16),
		"hindexed":   scimpich.Hindexed([]int{1}, []int64{8}, scimpich.Char),
		"struct":     scimpich.StructOf(scimpich.Field{Type: scimpich.Byte, Blocklen: 3, Disp: 0}),
		"resized":    scimpich.Resized(scimpich.Contiguous(2, scimpich.Int32), 0, 16),
	} {
		if ty.Commit().Size() <= 0 {
			t.Errorf("%s: non-positive size", name)
		}
	}
}
