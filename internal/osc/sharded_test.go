package osc

import (
	"testing"
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
)

// TestFenceEpochOnShardedEngine runs a one-sided fence epoch — every rank
// puts into its right neighbour and accumulates into its left — on the
// conservative-parallel engine at several shard counts, and pins the final
// virtual time and window contents against the sequential oracle. Under
// the race detector (the shard-stress job) this also exercises the
// one-sided protocol handlers with real goroutine parallelism.
func TestFenceEpochOnShardedEngine(t *testing.T) {
	const ranks = 4
	run := func(shards int) (time.Duration, [ranks]uint64) {
		cfg := mpi.DefaultConfig(ranks, 1)
		cfg.Shards = shards
		var sums [ranks]uint64
		end := mpi.Run(cfg, func(c *mpi.Comm) {
			w := mkWin(c, 4096, true)
			me, size := c.Rank(), c.Size()
			w.Fence()
			src := fill(512)
			for i := range src {
				src[i] += byte(me)
			}
			w.Put(src, len(src), datatype.Byte, (me+1)%size, 0)
			acc := mpi.Int32Bytes([]int32{int32(me + 1), 3, -7, int32(size)})
			w.Accumulate(acc, 4, datatype.Int32, mpi.OpSum, (me-1+size)%size, 2048)
			w.Fence()
			var sum uint64
			for i, b := range w.LocalBytes() {
				sum += uint64(b) * uint64(i+1)
			}
			sums[me] = sum
		})
		return end, sums
	}
	oracleEnd, oracleSums := run(0)
	if oracleEnd <= 0 {
		t.Fatal("oracle epoch made no progress")
	}
	for _, shards := range []int{2, 4} {
		end, sums := run(shards)
		if end != oracleEnd {
			t.Errorf("shards=%d: end %v != oracle %v", shards, end, oracleEnd)
		}
		if sums != oracleSums {
			t.Errorf("shards=%d: window checksums %v != oracle %v", shards, sums, oracleSums)
		}
	}
}
