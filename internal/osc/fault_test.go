package osc

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/fault"
	"scimpich/internal/mpi"
	"scimpich/internal/obs"
)

// Fault-injection tests for the one-sided layer: a direct window view that
// dies mid-epoch must degrade to the emulation path transparently, and the
// checked synchronization calls must time out instead of deadlocking when a
// peer crashes.

// TestSharedWindowDegradesMidEpoch: the target's window segment is revoked
// between two puts of the same run. The first put goes direct; the second
// hits the dead mapping, degrades the view, is transparently replayed over
// the emulation path, and the epoch still completes with correct contents.
func TestSharedWindowDegradesMidEpoch(t *testing.T) {
	srcA, srcB := fill(2048), fill(2048)
	for i := range srcB {
		srcB[i] ^= 0xFF
	}
	run := func() (time.Duration, Stats) {
		cfg := mpi.DefaultConfig(2, 1)
		// Segment 0 of each node is the MPI port; the window allocation is
		// segment 1. Revoke rank 1's window backing mid-run.
		cfg.SCI.Fault = fault.New(21).RevokeSegment(1, 1, 2*time.Millisecond)
		var got Stats
		d := mpi.Run(cfg, func(c *mpi.Comm) {
			s := NewSystem(c)
			w := s.CreateShared(c.AllocShared(8192), DefaultConfig())
			w.Fence()
			if c.Rank() == 0 {
				w.Put(srcA, len(srcA), datatype.Byte, 1, 0)
			}
			w.Fence() // healthy: first put lands through the direct view
			c.Proc().Sleep(3 * time.Millisecond) // revocation strikes here
			if c.Rank() == 0 {
				if w.Degraded(1) {
					t.Error("view degraded before any access observed the failure")
				}
				w.Put(srcB, len(srcB), datatype.Byte, 1, 4096)
				if !w.Degraded(1) {
					t.Error("view not degraded after put through revoked segment")
				}
			}
			w.Fence()
			switch c.Rank() {
			case 0:
				got = w.Snapshot()
			case 1:
				if !bytes.Equal(w.LocalBytes()[:len(srcA)], srcA) {
					t.Error("pre-revocation put corrupted")
				}
				if !bytes.Equal(w.LocalBytes()[4096:4096+len(srcB)], srcB) {
					t.Error("post-revocation put not delivered via emulation")
				}
			}
		})
		return d, got
	}
	d1, st := run()
	if st.Degradations != 1 {
		t.Errorf("Degradations = %d, want 1", st.Degradations)
	}
	if st.DirectPuts != 1 || st.EmulatedPuts != 1 {
		t.Errorf("puts = %d direct / %d emulated, want 1 / 1", st.DirectPuts, st.EmulatedPuts)
	}
	d2, st2 := run()
	if d1 != d2 || st != st2 {
		t.Errorf("same-seed degradation runs diverge: %v/%+v vs %v/%+v", d1, st, d2, st2)
	}
}

// TestLockTimeoutRecovery: LockChecked against a crashed node returns a
// typed ErrSyncTimeout within the watchdog budget, and succeeds normally
// once the node is restored.
func TestLockTimeoutRecovery(t *testing.T) {
	cfg := mpi.DefaultConfig(2, 1)
	cfg.SCI.Fault = fault.New(5).
		CrashNode(1, time.Millisecond).
		RestoreNode(1, 4*time.Millisecond)
	oscCfg := DefaultConfig()
	oscCfg.SyncTimeout = 500 * time.Microsecond
	src := fill(512)
	mpi.Run(cfg, func(c *mpi.Comm) {
		s := NewSystem(c)
		w := s.CreateShared(c.AllocShared(4096), oscCfg)
		if c.Rank() == 0 {
			c.Proc().Sleep(1500 * time.Microsecond) // node 1 is down now
			err := w.LockChecked(1)
			var st ErrSyncTimeout
			if !errors.As(err, &st) {
				t.Fatalf("lock against crashed node: err = %v, want ErrSyncTimeout", err)
			}
			if st.Op != "lock" || st.Target != 1 || st.Waited < oscCfg.SyncTimeout {
				t.Errorf("timeout detail = %+v", st)
			}
			if w.Snapshot().SyncTimeouts != 1 {
				t.Errorf("SyncTimeouts = %d, want 1", w.Snapshot().SyncTimeouts)
			}
			c.Proc().Sleep(3 * time.Millisecond) // past the restoration
			if err := w.LockChecked(1); err != nil {
				t.Fatalf("lock after restore failed: %v", err)
			}
			w.Put(src, len(src), datatype.Byte, 1, 0)
			w.Unlock(1)
		} else {
			c.Proc().Sleep(8 * time.Millisecond)
			if !bytes.Equal(w.LocalBytes()[:len(src)], src) {
				t.Error("put after recovery not delivered")
			}
		}
	})
}

// TestFenceWatchdogNoDeadlock: FenceChecked against a peer that never
// arrives returns ErrSyncTimeout instead of deadlocking the simulation.
func TestFenceWatchdogNoDeadlock(t *testing.T) {
	oscCfg := DefaultConfig()
	oscCfg.SyncTimeout = 300 * time.Microsecond
	runCluster(2, 1, func(c *mpi.Comm) {
		s := NewSystem(c)
		w := s.CreateShared(c.AllocShared(1024), oscCfg)
		if c.Rank() == 0 {
			err := w.FenceChecked()
			var st ErrSyncTimeout
			if !errors.As(err, &st) {
				t.Fatalf("fence without peer: err = %v, want ErrSyncTimeout", err)
			}
			if st.Op != "fence" || st.Target != -1 {
				t.Errorf("timeout detail = %+v", st)
			}
			if w.Snapshot().SyncTimeouts != 1 {
				t.Errorf("SyncTimeouts = %d, want 1", w.Snapshot().SyncTimeouts)
			}
		} else {
			c.Proc().Sleep(time.Millisecond) // never fences
		}
	})
}

// TestFenceCheckedCompletesAndTransfers: when every rank arrives, checked
// fences behave exactly like plain fences (epochs open, puts land).
func TestFenceCheckedCompletesAndTransfers(t *testing.T) {
	src := fill(1024)
	oscCfg := DefaultConfig()
	oscCfg.SyncTimeout = time.Millisecond
	runCluster(2, 1, func(c *mpi.Comm) {
		s := NewSystem(c)
		w := s.CreateShared(c.AllocShared(4096), oscCfg)
		if err := w.FenceChecked(); err != nil {
			t.Fatalf("opening fence failed: %v", err)
		}
		if c.Rank() == 0 {
			w.Put(src, len(src), datatype.Byte, 1, 100)
		}
		if err := w.FenceChecked(); err != nil {
			t.Fatalf("closing fence failed: %v", err)
		}
		if c.Rank() == 1 && !bytes.Equal(w.LocalBytes()[100:100+len(src)], src) {
			t.Error("put not visible after checked fence")
		}
		if w.Snapshot().SyncTimeouts != 0 {
			t.Errorf("spurious SyncTimeouts = %d", w.Snapshot().SyncTimeouts)
		}
	})
}

// TestDegradedSharedTargetUsesInterruptDelivery: regression for the
// delivery-path bug — the remote-put and accumulate paths chose polled
// delivery for any shared-window target, but a degraded shared target may
// be stuck in a broken transfer and not polling. The fallback Get toward a
// degraded shared target must complete and arrive via remote interrupt.
func TestDegradedSharedTargetUsesInterruptDelivery(t *testing.T) {
	cfg := mpi.DefaultConfig(2, 1)
	cfg.SCI.Fault = fault.New(13).RevokeSegment(1, 1, time.Millisecond)
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	interrupts := reg.Counter(obs.Name("mpi.osc.calls", "delivery", "interrupt"))
	mpi.Run(cfg, func(c *mpi.Comm) {
		s := NewSystem(c)
		w := s.CreateShared(c.AllocShared(4096), DefaultConfig())
		if c.Rank() == 1 {
			copy(w.LocalBytes(), fill(1024))
		}
		w.Fence()
		c.Proc().Sleep(2 * time.Millisecond) // revocation strikes here
		if c.Rank() == 0 {
			before := interrupts.Value()
			dst := make([]byte, 1024)
			w.Get(dst, len(dst), datatype.Byte, 1, 0)
			if !bytes.Equal(dst, fill(1024)) {
				t.Error("degraded get returned wrong data")
			}
			if !w.Degraded(1) {
				t.Error("target view not degraded after revoked-segment get")
			}
			if interrupts.Value() == before {
				t.Error("fallback get toward degraded shared target used polled delivery")
			}
		}
		w.Fence()
	})
}

// TestDegradedGetFallsBackToRemotePut: a revoked target segment degrades
// the direct-get path too; the remote-put path still returns the data.
func TestDegradedGetFallsBackToRemotePut(t *testing.T) {
	cfg := mpi.DefaultConfig(2, 1)
	cfg.SCI.Fault = fault.New(13).RevokeSegment(1, 1, time.Millisecond)
	mpi.Run(cfg, func(c *mpi.Comm) {
		s := NewSystem(c)
		w := s.CreateShared(c.AllocShared(4096), DefaultConfig())
		if c.Rank() == 1 {
			copy(w.LocalBytes(), fill(1024))
		}
		w.Fence()
		c.Proc().Sleep(2 * time.Millisecond) // revocation strikes here
		if c.Rank() == 0 {
			dst := make([]byte, 1024)
			w.Get(dst, len(dst), datatype.Byte, 1, 0)
			if !bytes.Equal(dst, fill(1024)) {
				t.Error("degraded get returned wrong data")
			}
			if w.Snapshot().Degradations != 1 || w.Snapshot().RemotePuts != 1 {
				t.Errorf("stats = %+v, want 1 degradation, 1 remote-put", w.Snapshot())
			}
		}
		w.Fence()
	})
}
