package osc

import (
	"fmt"

	"scimpich/internal/mpi"
	"scimpich/internal/sci"
)

// Elastic-recovery support: after a node crash and a Comm.ShrinkChecked
// agreement, a window over the old communicator cannot be freed collectively
// (Free's barrier would hang on the dead rank) and the System's handler is
// still bound to the old communicator's context. Abandon and Rebind let a
// recovery layer tear the old window down unilaterally and re-home the
// engine on the shrunken communicator, after which fresh windows are created
// normally.

// ErrWinGone reports a handler refusal: the target no longer has the window
// (it was freed or abandoned there, typically during crash recovery).
type ErrWinGone struct {
	Win    int
	Target int
}

func (e ErrWinGone) Error() string {
	return fmt.Sprintf("osc: window %d no longer exists at rank %d", e.Win, e.Target)
}

// Abandon releases the window unilaterally, without the collective barrier
// of Free: after a crash the barrier can never complete, but the local state
// must still be detached before the recovery layer rebuilds. Any epoch is
// closed without synchronization; in-flight remote requests against the
// window id are refused gracefully by the handler (ErrWinGone at the
// origin). Window ids are never reused, so a stale request cannot alias a
// rebuilt window.
func (w *Win) Abandon() {
	w.closeEpoch()
	w.ep = epochNone
	w.lockHeld = -1
	c := w.sys.c
	c.Tracer().Record(c.Proc().Now(), w.actor, "fault", "window %d abandoned", w.id)
	delete(w.sys.wins, w.id)
}

// Rebind re-homes the one-sided engine on a new communicator — the shrunken
// communicator returned by ShrinkChecked. The handler moves with it; window
// ids stay monotonic across the rebind so requests addressed to pre-shrink
// windows hit the graceful unknown-window path instead of a rebuilt window.
// All surviving ranks must Rebind before creating new windows.
func (s *System) Rebind(c *mpi.Comm) {
	s.c = c
	c.SetOSCHandler(s.handle)
}

// lostTarget is the fast-fail reachability check run before (and after) an
// emulation-path operation: a revoked rank (ours or the target's) yields the
// typed revocation error, a dead target node sci.ErrConnectionLost. nil
// means the target looked reachable at the time of the check.
func (w *Win) lostTarget(target int) error {
	c := w.sys.c
	wd := c.World()
	me := c.WorldRank()
	world := c.GroupToWorld(target)
	if wd.RankRevoked(me) {
		return &mpi.RevokedRankError{Rank: me}
	}
	if wd.RankRevoked(world) {
		return &mpi.RevokedRankError{Rank: world}
	}
	if wd.NodeOf(world) != wd.NodeOf(me) && !wd.NodeAlive(world) {
		return sci.ErrConnectionLost{From: wd.NodeOf(me), To: wd.NodeOf(world)}
	}
	return nil
}

// oscRPC issues a handler request bounded by the window's SyncTimeout (with
// SyncTimeout zero it blocks like plain OSCCall). An expired watchdog is
// resolved to the underlying fault when the target is provably gone, else
// reported as ErrSyncTimeout; a refused reply means the target dropped the
// window (ErrWinGone).
func (w *Win) oscRPC(op string, target int, req *oscReq, interrupt bool) error {
	c := w.sys.c
	rep, ok := c.OSCCallTimeout(c.GroupToWorld(target), req, interrupt, w.cfg.SyncTimeout)
	if !ok {
		w.countSyncTimeout()
		c.Tracer().Record(c.Proc().Now(), w.actor, "fault",
			"window %d: %s handler call to rank %d timed out", w.id, op, target)
		if err := w.lostTarget(target); err != nil {
			return err
		}
		return ErrSyncTimeout{Op: op, Win: w.id, Target: target, Waited: w.cfg.SyncTimeout}
	}
	if r, isRep := rep.(*oscReply); isRep && !r.ok {
		return ErrWinGone{Win: w.id, Target: target}
	}
	return nil
}
