// Package osc implements MPI-2 one-sided communication (remote memory
// access) in the architecture of SCI-MPICH (paper §4):
//
//   - Windows expose each rank's memory to the group. Memory allocated via
//     AllocMem (MPI_Alloc_mem, backed by SCI driver segments) is accessed
//     directly by transparent remote loads and stores; windows in private
//     process memory are accessed by emulation — control messages with a
//     remote interrupt invoke a handler at the target, which moves the data
//     with the standard transfer mechanisms.
//   - MPI_Put writes through the mapped window (posted stores, completed by
//     the synchronization call's store barrier). MPI_Get reads directly for
//     small amounts, but switches to a remote-put — the target writes the
//     data into the origin's address space — beyond a threshold, because
//     SCI remote reads deliver only a fraction of the write bandwidth.
//   - MPI_Accumulate always runs at the target (handler-side
//     read-modify-write), which also provides its atomicity.
//   - All three MPI-2 synchronization modes are provided: fence
//     (active target, barrier-like), post/start/complete/wait (exposure and
//     access epochs), and lock/unlock (passive target, shared-memory locks
//     for shared windows and handler-spinlocks for private ones).
package osc

import (
	"fmt"
	"sync/atomic"
	"time"

	"scimpich/internal/mpi"
	"scimpich/internal/obs"
	"scimpich/internal/obs/flight"
	"scimpich/internal/sim"
	"scimpich/internal/smi"
)

// System is a rank's one-sided communication engine; it owns the remote
// handler and dispatches requests to windows. Create one per rank (after
// mpi setup) before creating windows.
type System struct {
	c       *mpi.Comm
	wins    map[int]*Win
	nextWin int
	met     oscMetrics
}

// NewSystem installs the one-sided engine on the calling rank.
func NewSystem(c *mpi.Comm) *System {
	s := &System{c: c, wins: make(map[int]*Win), met: newOSCMetrics(c.Metrics())}
	c.SetOSCHandler(s.handle)
	return s
}

// oscMetrics caches the registry collectors for the one-sided layer,
// resolved once at System creation so the operation paths never do a map
// lookup. All fields are nil without a registry; nil collectors are no-ops.
type oscMetrics struct {
	putNS, getNS, accNS *obs.Histogram
	epochNS             *obs.Histogram
	bytesPut, bytesGot  *obs.Counter
	directPuts          *obs.Counter
	emulatedPuts        *obs.Counter
	directGets          *obs.Counter
	remotePuts          *obs.Counter
	degradations        *obs.Counter
	syncTimeouts        *obs.Counter
	dmaStaged           *obs.Counter
}

func newOSCMetrics(r *obs.Registry) oscMetrics {
	if r == nil {
		return oscMetrics{}
	}
	return oscMetrics{
		putNS:        r.Histogram("osc.put.ns"),
		getNS:        r.Histogram("osc.get.ns"),
		accNS:        r.Histogram("osc.acc.ns"),
		epochNS:      r.Histogram("osc.epoch.ns"),
		bytesPut:     r.Counter("osc.bytes.put"),
		bytesGot:     r.Counter("osc.bytes.got"),
		directPuts:   r.Counter(obs.Name("osc.puts", "path", "direct")),
		emulatedPuts: r.Counter(obs.Name("osc.puts", "path", "emulated")),
		directGets:   r.Counter(obs.Name("osc.gets", "path", "direct")),
		remotePuts:   r.Counter(obs.Name("osc.gets", "path", "remote-put")),
		degradations: r.Counter("osc.degradations"),
		syncTimeouts: r.Counter("osc.sync_timeouts"),
		dmaStaged:    r.Counter(obs.Name("osc.stage", "path", "dma")),
	}
}

// Config tunes a window's transfer policy.
type Config struct {
	// GetDirectMax is the largest direct remote read; larger gets use the
	// remote-put path. (Paper §4.2: "direct reading will only be effective
	// up to a certain amount of data".)
	GetDirectMax int64
	// InlineMax is the largest payload carried inline in a handler request
	// instead of the staging area.
	InlineMax int64
	// SyncTimeout bounds the checked synchronization calls (FenceChecked,
	// LockChecked) and the checked data operations' handler round-trips:
	// waiting longer than this for a peer yields an ErrSyncTimeout instead
	// of deadlocking. 0 disables the watchdog; mpi.AutoTimeout resolves to
	// the world's scaled bound (ScaledSyncTimeout) at window creation.
	SyncTimeout time.Duration
	// DMAStageMin, when positive, offloads staging-area deposits of at
	// least this many bytes (emulated puts, accumulate drains, handler-side
	// get fills) to the DMA engine — scatter-gather descriptors for
	// non-contiguous data — freeing the CPU during the transfer. 0 keeps
	// the PIO staging paths.
	DMAStageMin int64
}

// DefaultConfig returns the calibrated transfer policy.
func DefaultConfig() Config {
	return Config{
		GetDirectMax: 8 << 10,
		InlineMax:    128,
	}
}

// epoch tracks which synchronization mode currently permits access.
type epoch int

const (
	epochNone epoch = iota
	epochFence
	epochStart // access epoch (origin side of PSCW)
	epochLock
)

// Win is one rank's handle on a window (MPI_Win).
type Win struct {
	sys *System
	id  int
	cfg Config

	// Local window memory: exactly one of shared/private is set.
	shared  *mpi.SharedSeg
	private []byte

	sizes    []int64 // window size per rank
	isShared []bool  // per rank: direct access possible
	views    []smi.Mem
	// degraded[t] marks rank t's direct view as lost (segment revoked or
	// transfers persistently failing); accesses fall back to the emulation
	// path transparently.
	degraded []bool
	// sharedLocks[t] serializes passive-target access to rank t's shared
	// window without involving t's CPU (shared-memory spinlock).
	sharedLocks []*sim.Mutex
	// lockHeld tracks which target this rank currently locks.
	lockHeld int

	// access epoch state (origin side).
	ep epoch
	// exposure bookkeeping (target side of PSCW).
	postQ     *sim.Chan
	completeQ *sim.Chan

	// put-pattern estimator: successive small puts to ascending strided
	// offsets interact with the CPU write-combine buffer; remembering the
	// previous access reproduces the §4.3 stride sensitivity.
	lastTarget int
	lastOff    int64
	lastLen    int64

	// privLockBusy: handler-side lock state for passive target on private
	// windows.
	privLockBusy bool
	// fence watchdog state: fenceQ receives peer fence-arrival rounds,
	// pendingFence counts arrivals that ran ahead of this rank's round.
	fenceQ       *sim.Chan
	fenceRound   int
	pendingFence map[int]int
	// ownLock is the shared-memory lock guarding this rank's own shared
	// window, handed to origins through the exchange table.
	ownLock *sim.Mutex

	// actor is the cached trace-actor name of the owning rank ("rank<i>").
	actor string
	// fl is the owning rank's flight-recorder ring (nil-safe when no
	// recorder is configured).
	fl *flight.Ring
	// epochSpan is the open trace span of the current access epoch; data
	// operation spans on the same actor nest under it. epochOpen/epochStart
	// track the epoch independently of the span so the epoch-duration
	// histogram also fills without a tracer.
	epochSpan  *obs.Span
	epochOpen  bool
	epochStart time.Duration

	stats winStats
}

// Stats is a point-in-time snapshot of the one-sided activity counters of
// a window on this rank (see Win.Snapshot).
type Stats struct {
	Puts, Gets, Accs     int64
	DirectPuts           int64
	DirectGets           int64
	RemotePuts           int64 // gets served by the remote-put path
	EmulatedPuts         int64
	EmulatedAccumulates  int64
	// DMAStaged counts staging-area deposits offloaded to the DMA engine
	// (Config.DMAStageMin).
	DMAStaged int64
	BytesPut, BytesGot   int64
	Fences, Locks, Posts int64
	// Degradations counts direct views abandoned for the emulation path;
	// SyncTimeouts counts checked synchronization calls that expired.
	Degradations int64
	SyncTimeouts int64
}

// winStats holds the live counters. The owning rank's proc mutates them,
// but harnesses read them from other goroutines after (or during) a run,
// so every field is atomic.
type winStats struct {
	puts, gets, accs     atomic.Int64
	directPuts           atomic.Int64
	directGets           atomic.Int64
	remotePuts           atomic.Int64
	emulatedPuts         atomic.Int64
	emulatedAccumulates  atomic.Int64
	dmaStaged            atomic.Int64
	bytesPut, bytesGot   atomic.Int64
	fences, locks, posts atomic.Int64
	degradations         atomic.Int64
	syncTimeouts         atomic.Int64
}

func (s *winStats) snapshot() Stats {
	return Stats{
		Puts:                s.puts.Load(),
		Gets:                s.gets.Load(),
		Accs:                s.accs.Load(),
		DirectPuts:          s.directPuts.Load(),
		DirectGets:          s.directGets.Load(),
		RemotePuts:          s.remotePuts.Load(),
		EmulatedPuts:        s.emulatedPuts.Load(),
		EmulatedAccumulates: s.emulatedAccumulates.Load(),
		DMAStaged:           s.dmaStaged.Load(),
		BytesPut:            s.bytesPut.Load(),
		BytesGot:            s.bytesGot.Load(),
		Fences:              s.fences.Load(),
		Locks:               s.locks.Load(),
		Posts:               s.posts.Load(),
		Degradations:        s.degradations.Load(),
		SyncTimeouts:        s.syncTimeouts.Load(),
	}
}

// Snapshot returns a race-free snapshot of the window's statistics.
func (w *Win) Snapshot() Stats { return w.stats.snapshot() }

// CreateShared collectively creates a window whose local memory is the
// given AllocMem segment (direct remote access).
func (s *System) CreateShared(seg *mpi.SharedSeg, cfg Config) *Win {
	return s.create(seg, nil, cfg)
}

// CreatePrivate collectively creates a window over private process memory
// (access by emulation only).
func (s *System) CreatePrivate(buf []byte, cfg Config) *Win {
	return s.create(nil, buf, cfg)
}

// create is the collective constructor; every rank must call it in the
// same order with its own memory.
func (s *System) create(seg *mpi.SharedSeg, buf []byte, cfg Config) *Win {
	c := s.c
	if cfg.SyncTimeout == mpi.AutoTimeout {
		cfg.SyncTimeout = c.World().ScaledSyncTimeout()
	}
	id := s.nextWin
	s.nextWin++
	w := &Win{
		sys: s, id: id, cfg: cfg,
		shared: seg, private: buf,
		actor:      fmt.Sprintf("rank%d", c.WorldRank()),
		fl:         c.FlightRing(),
		lastTarget: -1, lockHeld: -1,
		postQ:        sim.NewChan(1 << 16),
		completeQ:    sim.NewChan(1 << 16),
		fenceQ:       sim.NewChan(1 << 16),
		pendingFence: make(map[int]int),
	}
	key := fmt.Sprintf("osc.win.%d.%d", c.ContextID(), id)
	c.World().Deposit(key, c.Rank(), w)
	c.Barrier()
	all := c.World().Collect(key)
	n := c.Size()
	w.sizes = make([]int64, n)
	w.isShared = make([]bool, n)
	w.views = make([]smi.Mem, n)
	w.degraded = make([]bool, n)
	w.sharedLocks = make([]*sim.Mutex, n)
	for r := 0; r < n; r++ {
		rw := all[r].(*Win)
		if rw.shared != nil {
			w.sizes[r] = rw.shared.Size()
			w.isShared[r] = true
			w.views[r] = rw.shared.MapFrom(c.WorldRank())
			w.sharedLocks[r] = rw.lockFor()
		} else {
			w.sizes[r] = int64(len(rw.private))
		}
	}
	s.wins[id] = w
	c.Barrier()
	return w
}

// lockFor returns the single shared lock object guarding this rank's
// window (created once, shared by all origins through the exchange table).
func (w *Win) lockFor() *sim.Mutex {
	if w.ownLock == nil {
		w.ownLock = &sim.Mutex{}
	}
	return w.ownLock
}

// Size returns rank r's window size.
func (w *Win) Size(r int) int64 { return w.sizes[r] }

// SharedAt reports whether rank r's window memory allows direct access.
func (w *Win) SharedAt(r int) bool { return w.isShared[r] }

// LocalBytes returns the local window memory (owner view, uncosted; for
// initialization and verification).
func (w *Win) LocalBytes() []byte {
	if w.shared != nil {
		return w.shared.Bytes()
	}
	return w.private
}

// Free releases the window (MPI_Win_free). It is collective: all ranks
// synchronize so that no access epoch can still be in flight, then the
// local state is detached.
func (w *Win) Free() {
	if w.ep == epochStart || w.ep == epochLock {
		panic("osc: Free inside an access epoch")
	}
	w.closeEpoch()
	w.sys.c.Barrier()
	delete(w.sys.wins, w.id)
}

// openEpoch starts the trace span covering the access epoch just opened;
// data operation spans on the same rank nest under it until the closing
// synchronization call ends it.
func (w *Win) openEpoch(mode string) {
	now := w.sys.c.Proc().Now()
	w.epochOpen, w.epochStart = true, now
	w.epochSpan = w.sys.c.Tracer().Start(now, w.actor, "osc", "epoch")
	w.epochSpan.SetDetail("win %d %s", w.id, mode)
}

// closeEpoch ends the current epoch span (no-op when none is open) and
// feeds its duration to the epoch histogram.
func (w *Win) closeEpoch() {
	if !w.epochOpen {
		return
	}
	now := w.sys.c.Proc().Now()
	w.sys.met.epochNS.ObserveDuration(now - w.epochStart)
	w.epochSpan.End(now)
	w.epochSpan = nil
	w.epochOpen = false
}

// degrade abandons the direct view of rank target: all further accesses to
// it take the emulation path (handler-mediated, using the standard transfer
// mechanisms), transparently to the caller.
func (w *Win) degrade(target int, err error) {
	if w.degraded[target] {
		return
	}
	w.degraded[target] = true
	w.stats.degradations.Add(1)
	w.sys.met.degradations.Add(1)
	c := w.sys.c
	c.Tracer().Record(c.Proc().Now(), w.actor, "fault",
		"window %d: direct view of rank %d degraded to emulation (%v)", w.id, target, err)
}

// Degraded reports whether the direct view of rank target has been
// abandoned for the emulation path.
func (w *Win) Degraded(target int) bool { return w.degraded[target] }

func (w *Win) checkEpoch(op string) {
	if w.ep == epochNone {
		panic(fmt.Sprintf("osc: %s outside an access epoch (call Fence, Start or Lock first)", op))
	}
}

func (w *Win) checkTarget(target int, off, n int64) {
	if target < 0 || target >= len(w.sizes) {
		panic(fmt.Sprintf("osc: invalid target rank %d", target))
	}
	if off < 0 || off+n > w.sizes[target] {
		panic(fmt.Sprintf("osc: access [%d, %d) outside window of %d bytes at rank %d",
			off, off+n, w.sizes[target], target))
	}
}
