package osc

import (
	"bytes"
	"testing"
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
	"scimpich/internal/nic"
)

// runCluster runs main on nodes x procs ranks.
func runCluster(nodes, procs int, main func(c *mpi.Comm)) time.Duration {
	return mpi.Run(mpi.DefaultConfig(nodes, procs), main)
}

// mkWin creates a window of winSize bytes on every rank, shared or private.
func mkWin(c *mpi.Comm, winSize int64, shared bool) *Win {
	s := NewSystem(c)
	if shared {
		return s.CreateShared(c.AllocShared(winSize), DefaultConfig())
	}
	return s.CreatePrivate(make([]byte, winSize), DefaultConfig())
}

func fill(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*11 + 5)
	}
	return b
}

func TestPutFenceSharedWindow(t *testing.T) {
	src := fill(4096)
	runCluster(2, 1, func(c *mpi.Comm) {
		w := mkWin(c, 8192, true)
		w.Fence()
		if c.Rank() == 0 {
			w.Put(src, 4096, datatype.Byte, 1, 100)
		}
		w.Fence()
		if c.Rank() == 1 {
			if !bytes.Equal(w.LocalBytes()[100:100+4096], src) {
				t.Error("put data not visible after fence")
			}
			if w.Snapshot().Puts != 0 {
				t.Error("target should have issued no puts")
			}
		}
		if c.Rank() == 0 && w.Snapshot().DirectPuts != 1 {
			t.Errorf("direct puts = %d, want 1 (shared window)", w.Snapshot().DirectPuts)
		}
	})
}

func TestPutFencePrivateWindowUsesEmulation(t *testing.T) {
	src := fill(256 << 10)
	runCluster(2, 1, func(c *mpi.Comm) {
		w := mkWin(c, 512<<10, false)
		w.Fence()
		if c.Rank() == 0 {
			w.Put(src, len(src), datatype.Byte, 1, 64)
		}
		w.Fence()
		if c.Rank() == 1 && !bytes.Equal(w.LocalBytes()[64:64+len(src)], src) {
			t.Error("emulated put data mismatch")
		}
		if c.Rank() == 0 {
			if w.Snapshot().EmulatedPuts != 1 || w.Snapshot().DirectPuts != 0 {
				t.Errorf("stats = %+v, want 1 emulated put", w.Snapshot())
			}
		}
	})
}

func TestGetDirectSmallSharedWindow(t *testing.T) {
	runCluster(2, 1, func(c *mpi.Comm) {
		w := mkWin(c, 4096, true)
		if c.Rank() == 1 {
			copy(w.LocalBytes()[200:], fill(512))
		}
		w.Fence()
		if c.Rank() == 0 {
			dst := make([]byte, 512)
			w.Get(dst, 512, datatype.Byte, 1, 200)
			if !bytes.Equal(dst, fill(512)) {
				t.Error("direct get mismatch")
			}
			if w.Snapshot().DirectGets != 1 {
				t.Errorf("stats = %+v, want 1 direct get", w.Snapshot())
			}
		}
		w.Fence()
	})
}

func TestGetLargeUsesRemotePut(t *testing.T) {
	const n = 256 << 10
	runCluster(2, 1, func(c *mpi.Comm) {
		w := mkWin(c, n, true)
		if c.Rank() == 1 {
			copy(w.LocalBytes(), fill(n))
		}
		w.Fence()
		if c.Rank() == 0 {
			dst := make([]byte, n)
			w.Get(dst, n, datatype.Byte, 1, 0)
			if !bytes.Equal(dst, fill(n)) {
				t.Error("remote-put get mismatch")
			}
			if w.Snapshot().RemotePuts == 0 || w.Snapshot().DirectGets != 0 {
				t.Errorf("stats = %+v, want remote-put path", w.Snapshot())
			}
		}
		w.Fence()
	})
}

func TestRemotePutFasterThanDirectReadForLargeGets(t *testing.T) {
	// The rationale for the threshold (paper §4.2).
	const n = 128 << 10
	elapsed := func(directMax int64) time.Duration {
		var d time.Duration
		runCluster(2, 1, func(c *mpi.Comm) {
			s := NewSystem(c)
			cfg := DefaultConfig()
			cfg.GetDirectMax = directMax
			w := s.CreateShared(c.AllocShared(n), cfg)
			w.Fence()
			if c.Rank() == 0 {
				dst := make([]byte, n)
				start := c.WtimeDuration()
				w.Get(dst, n, datatype.Byte, 1, 0)
				d = c.WtimeDuration() - start
			}
			w.Fence()
		})
		return d
	}
	direct := elapsed(1 << 30) // force direct reads
	remote := elapsed(1024)    // force remote-put
	if remote >= direct {
		t.Errorf("remote-put get (%v) not faster than direct read (%v) for 128kiB", remote, direct)
	}
}

func TestAccumulateSum(t *testing.T) {
	const procs = 4
	runCluster(procs, 1, func(c *mpi.Comm) {
		w := mkWin(c, 8*8, true)
		w.Fence()
		// Every rank accumulates its rank id into all 8 slots of rank 0.
		vals := make([]float64, 8)
		for i := range vals {
			vals[i] = float64(c.Rank() + 1)
		}
		w.Accumulate(mpi.Float64Bytes(vals), 8, datatype.Float64, mpi.OpSum, 0, 0)
		w.Fence()
		if c.Rank() == 0 {
			got := mpi.BytesFloat64(w.LocalBytes())
			want := float64(1 + 2 + 3 + 4)
			for i, v := range got {
				if v != want {
					t.Fatalf("slot %d = %g, want %g", i, v, want)
				}
			}
		}
	})
}

func TestAccumulateAtomicUnderContention(t *testing.T) {
	// Many concurrent accumulates from all ranks must not lose updates.
	const procs = 6
	const rounds = 50
	runCluster(3, 2, func(c *mpi.Comm) {
		w := mkWin(c, 8, true)
		w.Fence()
		one := mpi.Float64Bytes([]float64{1})
		for i := 0; i < rounds; i++ {
			w.Accumulate(one, 1, datatype.Float64, mpi.OpSum, 0, 0)
		}
		w.Fence()
		if c.Rank() == 0 {
			got := mpi.BytesFloat64(w.LocalBytes())[0]
			if got != procs*rounds {
				t.Errorf("accumulated %g, want %d", got, procs*rounds)
			}
		}
	})
}

func TestNonContiguousPutMirrorsLayout(t *testing.T) {
	ty := datatype.Vector(16, 2, 4, datatype.Float64).Commit()
	span := ty.Extent()
	src := fill(int(span) + 64)
	runCluster(2, 1, func(c *mpi.Comm) {
		w := mkWin(c, span+128, true)
		w.Fence()
		if c.Rank() == 0 {
			w.Put(src, 1, ty, 1, 0)
		}
		w.Fence()
		if c.Rank() == 1 {
			win := w.LocalBytes()
			for _, b := range ty.TypeMap() {
				if !bytes.Equal(win[b.Off:b.Off+b.Len], src[b.Off:b.Off+b.Len]) {
					t.Fatalf("block at %d mismatched", b.Off)
				}
			}
			// Gaps untouched.
			if win[16] != 0 && len(ty.TypeMap()) > 1 {
				covered := false
				for _, b := range ty.TypeMap() {
					if b.Off <= 16 && 16 < b.Off+b.Len {
						covered = true
					}
				}
				if !covered && win[16] != 0 {
					t.Error("gap byte overwritten")
				}
			}
		}
	})
}

func TestNonContiguousGetRoundTrip(t *testing.T) {
	ty := datatype.Vector(32, 1, 3, datatype.Float64).Commit()
	span := ty.Extent()
	runCluster(2, 1, func(c *mpi.Comm) {
		w := mkWin(c, span+64, true)
		if c.Rank() == 1 {
			copy(w.LocalBytes(), fill(int(span)))
		}
		w.Fence()
		if c.Rank() == 0 {
			dst := make([]byte, span+64)
			w.Get(dst, 1, ty, 1, 0)
			win := fill(int(span))
			for _, b := range ty.TypeMap() {
				if !bytes.Equal(dst[b.Off:b.Off+b.Len], win[b.Off:b.Off+b.Len]) {
					t.Fatalf("got block at %d mismatched", b.Off)
				}
			}
		}
		w.Fence()
	})
}

func TestPSCWSynchronization(t *testing.T) {
	src := fill(8192)
	runCluster(2, 1, func(c *mpi.Comm) {
		w := mkWin(c, 16384, true)
		switch c.Rank() {
		case 0: // origin
			w.Start([]int{1})
			w.Put(src, len(src), datatype.Byte, 1, 0)
			w.Complete([]int{1})
		case 1: // target
			w.Post([]int{0})
			w.Wait([]int{0})
			if !bytes.Equal(w.LocalBytes()[:len(src)], src) {
				t.Error("PSCW put data missing after Wait")
			}
		}
	})
}

func TestPSCWStartBlocksUntilPost(t *testing.T) {
	var startDone time.Duration
	runCluster(2, 1, func(c *mpi.Comm) {
		w := mkWin(c, 64, true)
		switch c.Rank() {
		case 0:
			w.Start([]int{1})
			startDone = c.WtimeDuration()
			w.Complete([]int{1})
		case 1:
			c.Proc().Sleep(500 * time.Microsecond)
			w.Post([]int{0})
			w.Wait([]int{0})
		}
	})
	if startDone < 500*time.Microsecond {
		t.Errorf("Start returned at %v, before the target posted", startDone)
	}
}

func TestLockUnlockPassiveTargetShared(t *testing.T) {
	const procs = 4
	const rounds = 20
	runCluster(procs, 1, func(c *mpi.Comm) {
		w := mkWin(c, 8, true)
		w.Fence()
		w.ep = epochNone // leave the fence epoch; passive target only below
		for i := 0; i < rounds; i++ {
			w.Lock(0)
			buf := make([]byte, 8)
			w.Get(buf, 8, datatype.Byte, 0, 0)
			v := mpi.BytesFloat64(buf)[0]
			w.Put(mpi.Float64Bytes([]float64{v + 1}), 8, datatype.Byte, 0, 0)
			w.Unlock(0)
		}
		c.Barrier()
		if c.Rank() == 0 {
			got := mpi.BytesFloat64(w.LocalBytes())[0]
			if got != procs*rounds {
				t.Errorf("counter = %g, want %d (lost updates -> mutual exclusion broken)", got, procs*rounds)
			}
		}
	})
}

func TestLockUnlockPassiveTargetPrivate(t *testing.T) {
	const procs = 3
	const rounds = 10
	runCluster(procs, 1, func(c *mpi.Comm) {
		w := mkWin(c, 8, false)
		c.Barrier()
		for i := 0; i < rounds; i++ {
			w.Lock(0)
			buf := make([]byte, 8)
			w.Get(buf, 8, datatype.Byte, 0, 0)
			v := mpi.BytesFloat64(buf)[0]
			w.Put(mpi.Float64Bytes([]float64{v + 1}), 8, datatype.Byte, 0, 0)
			w.Unlock(0)
		}
		c.Barrier()
		if c.Rank() == 0 {
			got := mpi.BytesFloat64(w.LocalBytes())[0]
			if got != procs*rounds {
				t.Errorf("counter = %g, want %d", got, procs*rounds)
			}
		}
	})
}

func TestIntraNodeWindow(t *testing.T) {
	src := fill(32 << 10)
	runCluster(1, 2, func(c *mpi.Comm) {
		w := mkWin(c, 64<<10, true)
		w.Fence()
		if c.Rank() == 0 {
			w.Put(src, len(src), datatype.Byte, 1, 0)
		}
		w.Fence()
		if c.Rank() == 1 && !bytes.Equal(w.LocalBytes()[:len(src)], src) {
			t.Error("intra-node put mismatch")
		}
	})
}

func TestSelfAccess(t *testing.T) {
	runCluster(2, 1, func(c *mpi.Comm) {
		w := mkWin(c, 1024, true)
		w.Fence()
		me := c.Rank()
		w.Put(fill(100), 100, datatype.Byte, me, 10)
		dst := make([]byte, 100)
		w.Get(dst, 100, datatype.Byte, me, 10)
		if !bytes.Equal(dst, fill(100)) {
			t.Error("self put/get mismatch")
		}
		w.Fence()
	})
}

func TestAccessOutsideEpochPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("put outside epoch did not panic")
		}
	}()
	runCluster(2, 1, func(c *mpi.Comm) {
		w := mkWin(c, 64, true)
		if c.Rank() == 0 {
			w.Put(fill(8), 8, datatype.Byte, 1, 0)
		}
	})
}

func TestAccessOutsideWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-window access did not panic")
		}
	}()
	runCluster(2, 1, func(c *mpi.Comm) {
		w := mkWin(c, 64, true)
		w.Fence()
		if c.Rank() == 0 {
			w.Put(fill(128), 128, datatype.Byte, 1, 0)
		}
		w.Fence()
	})
}

func TestSharedGetFasterThanPrivate(t *testing.T) {
	// Paper figure 9: direct access to shared windows beats the emulated
	// path for small accesses (for larger ones both go through message
	// exchange and converge).
	const n = 64
	elapsed := func(shared bool) time.Duration {
		var d time.Duration
		runCluster(2, 1, func(c *mpi.Comm) {
			w := mkWin(c, 8192, shared)
			w.Fence()
			if c.Rank() == 0 {
				dst := make([]byte, n)
				start := c.WtimeDuration()
				for i := 0; i < 16; i++ {
					w.Get(dst, n, datatype.Byte, 1, 0)
				}
				d = c.WtimeDuration() - start
			}
			w.Fence()
		})
		return d
	}
	sh, priv := elapsed(true), elapsed(false)
	if sh >= priv {
		t.Errorf("shared-window gets (%v) not faster than emulated (%v)", sh, priv)
	}
}

func TestMixedSharedAndPrivateWindows(t *testing.T) {
	// Rank 0 shared, rank 1 private: accesses route per target.
	src := fill(64 << 10)
	runCluster(2, 1, func(c *mpi.Comm) {
		s := NewSystem(c)
		var w *Win
		if c.Rank() == 0 {
			w = s.CreateShared(c.AllocShared(128<<10), DefaultConfig())
		} else {
			w = s.CreatePrivate(make([]byte, 128<<10), DefaultConfig())
		}
		w.Fence()
		other := 1 - c.Rank()
		w.Put(src, len(src), datatype.Byte, other, 0)
		w.Fence()
		if !bytes.Equal(w.LocalBytes()[:len(src)], src) {
			t.Errorf("rank %d: window contents wrong", c.Rank())
		}
		if c.Rank() == 0 && w.Snapshot().EmulatedPuts != 1 {
			t.Errorf("rank 0 put to private window: stats %+v", w.Snapshot())
		}
		if c.Rank() == 1 && w.Snapshot().DirectPuts != 1 {
			t.Errorf("rank 1 put to shared window: stats %+v", w.Snapshot())
		}
	})
}

func TestDeterministicOneSidedRuns(t *testing.T) {
	run := func() time.Duration {
		return runCluster(4, 1, func(c *mpi.Comm) {
			w := mkWin(c, 64<<10, true)
			w.Fence()
			buf := fill(1024)
			for i := 0; i < 8; i++ {
				w.Put(buf, 1024, datatype.Byte, (c.Rank()+1)%c.Size(), int64(i)*2048)
			}
			w.Fence()
		})
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical one-sided runs ended at %v and %v", a, b)
	}
}

func TestOneSidedOverMessageNIC(t *testing.T) {
	// Windows on a message NIC behave like the paper's LAM-class
	// implementations: correct, but every access pays the wire.
	cfg := mpi.NICConfig(2, 1, nic.FastEthernet())
	src := fill(4096)
	var putLat time.Duration
	mpi.Run(cfg, func(c *mpi.Comm) {
		s := NewSystem(c)
		w := s.CreateShared(c.AllocShared(8192), DefaultConfig())
		w.Fence()
		if c.Rank() == 0 {
			start := c.WtimeDuration()
			w.Put(src[:64], 64, datatype.Byte, 1, 0)
			putLat = c.WtimeDuration() - start
			w.Put(src, 4096, datatype.Byte, 1, 128)
		}
		w.Fence()
		if c.Rank() == 1 {
			if !bytes.Equal(w.LocalBytes()[128:128+4096], src) {
				t.Error("NIC one-sided put corrupted")
			}
		}
	})
	// A small put is posted (write-and-forget): the origin pays the
	// per-message host cost and wire occupancy; the one-way latency is
	// settled by the closing fence.
	if putLat < 8*time.Microsecond {
		t.Errorf("NIC put origin cost = %v, want at least the per-message CPU", putLat)
	}
	lat, bw := nicSparsePut(64)
	if lat < 8 {
		t.Errorf("NIC sparse put per-call cost = %.1fµs, want host-cost dominated", lat)
	}
	if bw > 11 {
		t.Errorf("NIC sparse put bandwidth = %.1f MiB/s, want <= wire", bw)
	}
}

// nicSparsePut runs the sparse put workload over the NIC fabric.
func nicSparsePut(accessSize int64) (latUS, bw float64) {
	const winSize = 64 << 10
	var elapsed time.Duration
	var calls, moved int64
	mpi.Run(mpi.NICConfig(2, 1, nic.FastEthernet()), func(c *mpi.Comm) {
		s := NewSystem(c)
		w := s.CreateShared(c.AllocShared(winSize), DefaultConfig())
		partner := 1 - c.Rank()
		buf := make([]byte, accessSize)
		w.Fence()
		start := c.WtimeDuration()
		var n, bytes int64
		for off := int64(0); off+accessSize < winSize; off += 2 * accessSize {
			w.Put(buf, int(accessSize), datatype.Byte, partner, off)
			n++
			bytes += accessSize
		}
		w.Fence()
		if c.Rank() == 0 {
			elapsed = c.WtimeDuration() - start
			calls, moved = n, bytes
		}
	})
	return elapsed.Seconds() * 1e6 / float64(calls), float64(moved) / elapsed.Seconds() / (1 << 20)
}
