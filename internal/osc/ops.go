package osc

import (
	"fmt"

	"scimpich/internal/bufpool"
	"scimpich/internal/datatype"
	"scimpich/internal/fault"
	"scimpich/internal/mpi"
	"scimpich/internal/obs/flight"
	"scimpich/internal/pack"
	"scimpich/internal/sim"
)

// The data operations. All take the origin buffer, an element count and
// datatype, the target rank and a byte displacement into the target's
// window; the datatype's layout is applied identically on both sides
// (mirrored layout), which covers the paper's workloads (contiguous strided
// accesses in sparse; halo datatypes in the examples).

// Put moves count elements of dt from buf into target's window at
// displacement targetOff (MPI_Put). It panics on failures against crashed
// or revoked targets; use PutChecked under fault plans.
func (w *Win) Put(buf []byte, count int, dt *datatype.Type, target int, targetOff int64) {
	if err := w.PutChecked(buf, count, dt, target, targetOff); err != nil {
		panic(err)
	}
}

// PutChecked is Put returning failures as typed errors: a dead target node
// yields sci.ErrConnectionLost, a revoked rank *mpi.RevokedRankError, an
// expired handler watchdog ErrSyncTimeout, and a target that dropped the
// window ErrWinGone. Epoch and bounds violations still panic (programming
// errors).
func (w *Win) PutChecked(buf []byte, count int, dt *datatype.Type, target int, targetOff int64) error {
	err := w.putChecked(buf, count, dt, target, targetOff)
	if err != nil {
		w.fl.Fail(w.sys.c.Proc().Now(), flight.OpPut, w.sys.c.GroupToWorld(target), err)
	}
	return err
}

func (w *Win) putChecked(buf []byte, count int, dt *datatype.Type, target int, targetOff int64) error {
	w.checkEpoch("Put")
	n := dt.Size() * int64(count)
	span := dt.Extent()*int64(count-1) + dt.UB() - dt.LB()
	if count == 0 {
		return nil
	}
	w.checkTarget(target, targetOff, span)
	w.stats.puts.Add(1)
	w.stats.bytesPut.Add(n)
	p := w.sys.c.Proc()
	start := p.Now()
	sp := w.sys.c.Tracer().Start(start, w.actor, "osc", "put")
	sp.SetBytes(n)
	defer func() {
		sp.End(p.Now())
		w.sys.met.putNS.ObserveDuration(p.Now() - start)
		w.sys.met.bytesPut.Add(n)
	}()

	if target == w.sys.c.Rank() {
		sp.SetDetail("local")
		w.localApply(buf, count, dt, targetOff, false)
		return nil
	}
	if err := w.lostTarget(target); err != nil {
		return err
	}
	if w.isShared[target] && !w.degraded[target] {
		// Direct transparent remote write. A failing view (segment revoked,
		// persistent transfer faults) degrades to the emulation path below —
		// unless the target itself is gone, which is the caller's problem.
		if err := w.tryDirectPut(p, buf, count, dt, target, targetOff, n, span); err == nil {
			w.stats.directPuts.Add(1)
			w.sys.met.directPuts.Add(1)
			sp.SetDetail("direct -> %d", target)
			w.fl.Record(p.Now(), flight.KPut, int64(w.sys.c.GroupToWorld(target)), n, int64(w.id), 1)
			return nil
		} else if lost := w.lostTarget(target); lost != nil {
			return lost
		} else {
			w.degrade(target, err)
		}
	}
	// Emulation: stage the linearized data into the pair's staging area
	// and invoke the remote handler.
	w.stats.emulatedPuts.Add(1)
	w.sys.met.emulatedPuts.Add(1)
	sp.SetDetail("emulated -> %d", target)
	w.fl.Record(p.Now(), flight.KPut, int64(w.sys.c.GroupToWorld(target)), n, int64(w.id), 0)
	return w.emulatedPut(buf, count, dt, target, targetOff, n)
}

// tryDirectPut deposits through the transparent remote view, retrying
// transient injected faults before reporting failure.
func (w *Win) tryDirectPut(p *sim.Proc, buf []byte, count int, dt *datatype.Type, target int, targetOff, n, span int64) error {
	view := w.views[target]
	if dt.Contiguous() {
		stride := w.estimateStride(target, targetOff, n)
		return w.retryDirect(func() error {
			return view.TryWritePut(p, targetOff, buf[:n], n, stride)
		})
	}
	// Mirror the layout: deposit every block at its own displacement
	// (the direct_pack machinery writing into the window).
	return w.retryDirect(func() error {
		bw := view.BlockWriter(p, span)
		pack.Walk(dt, count, func(off, size int64) {
			bw.Write(targetOff+off, buf[off:off+size])
		})
		return bw.TryFlush()
	})
}

// retryDirect runs a fallible direct-view access, retrying retryable
// injected faults a few times before handing the error to degrade().
func (w *Win) retryDirect(op func() error) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if fe, ok := err.(*fault.Error); !ok || !fe.Retryable() {
			return err
		}
	}
	return err
}

// estimateStride watches successive puts to reconstruct the access stride
// (the write-combine interaction of the sparse benchmark's loop of strided
// MPI_Put calls).
func (w *Win) estimateStride(target int, off, n int64) int64 {
	stride := n
	if w.lastTarget == target && w.lastLen == n && off > w.lastOff {
		stride = off - w.lastOff
	}
	w.lastTarget, w.lastOff, w.lastLen = target, off, n
	return stride
}

// localApply performs a window access on the rank's own memory.
func (w *Win) localApply(buf []byte, count int, dt *datatype.Type, off int64, read bool) {
	p := w.sys.c.Proc()
	win := w.LocalBytes()
	n := dt.Size() * int64(count)
	cost := w.sys.memModel().CopyCost(n, avgBlock(dt), n*2)
	p.Sleep(cost)
	pack.Walk(dt, count, func(o, size int64) {
		if read {
			copy(buf[o:o+size], win[off+o:off+o+size])
		} else {
			copy(win[off+o:off+o+size], buf[o:o+size])
		}
	})
}

func avgBlock(dt *datatype.Type) int64 {
	f := dt.Flat()
	var copies int64
	for i := range f.Leaves {
		copies += f.Leaves[i].Copies()
	}
	if copies == 0 {
		return f.Size
	}
	return f.Size / copies
}

// emulatedPut stages linearized data and invokes the remote handler, in
// chunks of half the staging area.
func (w *Win) emulatedPut(buf []byte, count int, dt *datatype.Type, target int, targetOff, n int64) error {
	c := w.sys.c
	p := c.Proc()
	if n <= w.cfg.InlineMax {
		// The RPC blocks until the handler replied, i.e. after its last read
		// of the inline bytes — on success the pooled payload can be
		// recycled. On an expired watchdog the handler may still read them
		// later, so the error path leaks the buffer to the GC instead.
		payload := bufpool.Get(int(n))
		pack.FFPack(pack.BufferSink{Buf: payload.B}, buf, dt, count, 0, -1)
		if err := w.oscRPC("put", target, &oscReq{
			kind: reqPut, win: w.id, off: targetOff, n: n,
			inline: payload.B, dt: dt, count: count,
		}, true); err != nil {
			return err
		}
		payload.Put()
		return nil
	}
	stage, base, size, lock := c.OSCStage(c.GroupToWorld(target))
	half := size / 2
	p.Lock(lock)
	defer p.Unlock(lock)
	// One resumable cursor across the segmented transfer: each chunk
	// continues where the last stopped instead of re-running find_position.
	cur := pack.NewCursor(dt, count)
	scratch := bufpool.Get(int(half))
	defer scratch.Put()
	var descs []pack.Descriptor
	var sent int64
	for sent < n {
		chunk := half
		if sent+chunk > n {
			chunk = n - sent
		}
		cur.SeekTo(sent) // free: the loop is sequential
		if w.cfg.DMAStageMin > 0 && chunk >= w.cfg.DMAStageMin {
			// Scatter-gather offload: descriptors gather straight from the
			// user buffer into the staging area, no local pack copy (the
			// engine charges the build and transfer costs). The completed
			// future already guarantees delivery, so no Sync.
			descs, _ = cur.Descriptors(descs[:0], chunk)
			if fut, ok := stage.DMAWriteSG(p, base, buf, descs); ok {
				if v := p.Await(fut); v == nil {
					w.stats.dmaStaged.Add(1)
					w.sys.met.dmaStaged.Add(1)
					if err := w.oscRPC("put", target, &oscReq{
						kind: reqPut, win: w.id, off: targetOff, n: chunk,
						skip: sent, dt: dt, count: count,
					}, true); err != nil {
						return err
					}
					sent += chunk
					continue
				}
			}
			cur.SeekTo(sent) // engine missing or transfer failed: PIO fallback
		}
		_, st := cur.Pack(pack.BufferSink{Buf: scratch.B}, buf, chunk)
		w.chargeLocal(st)
		if err := stage.TryWriteStream(p, base, scratch.B[:chunk], chunk); err != nil {
			return err
		}
		if err := stage.TrySync(p); err != nil {
			return err
		}
		if err := w.oscRPC("put", target, &oscReq{
			kind: reqPut, win: w.id, off: targetOff, n: chunk,
			skip: sent, dt: dt, count: count,
		}, true); err != nil {
			return err
		}
		sent += chunk
	}
	return nil
}

func (w *Win) chargeLocal(st pack.Stats) {
	if st.Bytes == 0 {
		return
	}
	w.sys.c.Proc().Sleep(w.sys.memModel().CopyCost(st.Bytes, st.AvgBlock(), st.Bytes*2))
}

// Get moves count elements of dt from target's window at displacement
// targetOff into buf (MPI_Get). Small amounts are read directly; larger
// ones use the remote-put path (the target writes into the origin's
// address space), because SCI remote reads are slow. It panics on failures
// against crashed or revoked targets; use GetChecked under fault plans.
func (w *Win) Get(buf []byte, count int, dt *datatype.Type, target int, targetOff int64) {
	if err := w.GetChecked(buf, count, dt, target, targetOff); err != nil {
		panic(err)
	}
}

// GetChecked is Get returning failures as typed errors (see PutChecked for
// the taxonomy).
func (w *Win) GetChecked(buf []byte, count int, dt *datatype.Type, target int, targetOff int64) error {
	err := w.getChecked(buf, count, dt, target, targetOff)
	if err != nil {
		w.fl.Fail(w.sys.c.Proc().Now(), flight.OpGet, w.sys.c.GroupToWorld(target), err)
	}
	return err
}

func (w *Win) getChecked(buf []byte, count int, dt *datatype.Type, target int, targetOff int64) error {
	w.checkEpoch("Get")
	n := dt.Size() * int64(count)
	span := dt.Extent()*int64(count-1) + dt.UB() - dt.LB()
	if count == 0 {
		return nil
	}
	w.checkTarget(target, targetOff, span)
	w.stats.gets.Add(1)
	w.stats.bytesGot.Add(n)
	p := w.sys.c.Proc()
	start := p.Now()
	sp := w.sys.c.Tracer().Start(start, w.actor, "osc", "get")
	sp.SetBytes(n)
	defer func() {
		sp.End(p.Now())
		w.sys.met.getNS.ObserveDuration(p.Now() - start)
		w.sys.met.bytesGot.Add(n)
	}()

	if target == w.sys.c.Rank() {
		sp.SetDetail("local")
		w.localApply(buf, count, dt, targetOff, true)
		return nil
	}
	if err := w.lostTarget(target); err != nil {
		return err
	}
	if w.isShared[target] && !w.degraded[target] && n <= w.cfg.GetDirectMax {
		// Direct transparent remote read: the CPU stalls per block. A
		// failing view degrades to the remote-put path below, which rereads
		// the whole amount.
		if err := w.tryDirectGet(p, buf, count, dt, target, targetOff, n); err == nil {
			w.stats.directGets.Add(1)
			w.sys.met.directGets.Add(1)
			sp.SetDetail("direct <- %d", target)
			return nil
		} else if lost := w.lostTarget(target); lost != nil {
			return lost
		} else {
			w.degrade(target, err)
		}
	}
	// Remote-put: the handler at the target writes the data into this
	// process's staging area (its own address space view of us).
	w.stats.remotePuts.Add(1)
	w.sys.met.remotePuts.Add(1)
	sp.SetDetail("remote-put <- %d", target)
	return w.remotePutGet(buf, count, dt, target, targetOff, n)
}

// tryDirectGet reads through the transparent remote view, retrying
// transient injected faults before reporting failure.
func (w *Win) tryDirectGet(p *sim.Proc, buf []byte, count int, dt *datatype.Type, target int, targetOff, n int64) error {
	view := w.views[target]
	if dt.Contiguous() {
		return w.retryDirect(func() error {
			return view.TryRead(p, targetOff, buf[:n])
		})
	}
	return w.retryDirect(func() error {
		var err error
		pack.Walk(dt, count, func(off, size int64) {
			if err != nil {
				return
			}
			err = view.TryRead(p, targetOff+off, buf[off:off+size])
		})
		return err
	})
}

// remotePutGet drains a get through the staging area in chunks.
func (w *Win) remotePutGet(buf []byte, count int, dt *datatype.Type, target int, targetOff, n int64) error {
	c := w.sys.c
	world := c.GroupToWorld(target)
	stageLocal, base := c.OSCStageLocal(world)
	_, _, size, _ := c.OSCStage(world)
	half := size / 2
	getBase := base + half
	// Interrupt delivery whenever the target may not be polling: private
	// windows, but also shared windows whose direct view degraded
	// mid-epoch — the target never expected emulation traffic and a
	// polling-only request could hang until the watchdog.
	interrupt := !w.isShared[target] || w.degraded[target]
	// The unpack cursor resumes across the segmented drain (mirrors
	// emulatedPut's pack cursor).
	cur := pack.NewCursor(dt, count)
	var got int64
	for got < n {
		chunk := half
		if got+chunk > n {
			chunk = n - got
		}
		if err := w.oscRPC("get", target, &oscReq{
			kind: reqGet, win: w.id, off: targetOff, n: chunk,
			skip: got, dt: dt, count: count,
		}, interrupt); err != nil {
			return err
		}
		// The data now sits in the local staging area; scatter it into
		// the user buffer.
		src := stageLocal.Bytes()[getBase : getBase+chunk]
		cur.SeekTo(got) // free: the loop is sequential
		_, st := cur.Unpack(buf, src, chunk)
		w.chargeLocal(st)
		got += chunk
	}
	return nil
}

// Accumulate combines count elements of the basic type dt from buf into
// target's window at targetOff using op (MPI_Accumulate). The operation
// always executes at the target, which makes it atomic with respect to
// other accumulates. It panics on failures against crashed or revoked
// targets; use AccumulateChecked under fault plans.
func (w *Win) Accumulate(buf []byte, count int, dt *datatype.Type, op mpi.Op, target int, targetOff int64) {
	if err := w.AccumulateChecked(buf, count, dt, op, target, targetOff); err != nil {
		panic(err)
	}
}

// AccumulateChecked is Accumulate returning failures as typed errors (see
// PutChecked for the taxonomy).
func (w *Win) AccumulateChecked(buf []byte, count int, dt *datatype.Type, op mpi.Op, target int, targetOff int64) error {
	err := w.accumulateChecked(buf, count, dt, op, target, targetOff)
	if err != nil {
		w.fl.Fail(w.sys.c.Proc().Now(), flight.OpAccumulate, w.sys.c.GroupToWorld(target), err)
	}
	return err
}

func (w *Win) accumulateChecked(buf []byte, count int, dt *datatype.Type, op mpi.Op, target int, targetOff int64) error {
	w.checkEpoch("Accumulate")
	if dt.Kind() != datatype.KindBasic {
		panic(fmt.Sprintf("osc: Accumulate requires a basic datatype, got %s", dt))
	}
	n := dt.Size() * int64(count)
	if count == 0 {
		return nil
	}
	w.checkTarget(target, targetOff, n)
	w.stats.accs.Add(1)
	c := w.sys.c
	p := c.Proc()
	start := p.Now()
	sp := c.Tracer().Start(start, w.actor, "osc", "acc")
	sp.SetBytes(n)
	defer func() {
		sp.End(p.Now())
		w.sys.met.accNS.ObserveDuration(p.Now() - start)
	}()
	if target != c.Rank() {
		if err := w.lostTarget(target); err != nil {
			return err
		}
	}
	// As in remotePutGet: a degraded shared target is no longer polling
	// for emulation traffic, so request an interrupt.
	interrupt := !w.isShared[target] || w.degraded[target]

	if n <= w.cfg.InlineMax || target == c.Rank() {
		sp.SetDetail("inline -> %d", target)
		// As in emulatedPut: recycle the pooled payload only after a
		// successful round trip.
		payload := bufpool.Get(int(n))
		w.chargeLocalBytes(n)
		copy(payload.B, buf[:n])
		if err := w.oscRPC("acc", target, &oscReq{
			kind: reqAcc, win: w.id, off: targetOff, n: n,
			inline: payload.B, dt: dt, count: count, op: op,
		}, interrupt); err != nil {
			return err
		}
		payload.Put()
		return nil
	}
	w.stats.emulatedAccumulates.Add(1)
	sp.SetDetail("staged -> %d", target)
	stage, base, size, lock := c.OSCStage(c.GroupToWorld(target))
	half := size / 2
	p.Lock(lock)
	defer p.Unlock(lock)
	elemSize := dt.Size()
	var sent int64
	for sent < n {
		chunk := half - half%elemSize
		if sent+chunk > n {
			chunk = n - sent
		}
		deposited := false
		if w.cfg.DMAStageMin > 0 && chunk >= w.cfg.DMAStageMin {
			// Accumulate operands are contiguous: the plain DMA engine
			// drains them while the CPU is free. The completed future
			// guarantees delivery; failures fall back to PIO below.
			if fut, ok := stage.DMAWrite(p, base, buf[sent:sent+chunk]); ok {
				if v := p.Await(fut); v == nil {
					w.stats.dmaStaged.Add(1)
					w.sys.met.dmaStaged.Add(1)
					deposited = true
				}
			}
		}
		if !deposited {
			if err := stage.TryWriteStream(p, base, buf[sent:sent+chunk], n); err != nil {
				return err
			}
			if err := stage.TrySync(p); err != nil {
				return err
			}
		}
		if err := w.oscRPC("acc", target, &oscReq{
			kind: reqAcc, win: w.id, off: targetOff + sent, n: chunk,
			dt: dt, count: int(chunk / elemSize), op: op,
		}, interrupt); err != nil {
			return err
		}
		sent += chunk
	}
	return nil
}

func (w *Win) chargeLocalBytes(n int64) {
	w.sys.c.Proc().Sleep(w.sys.memModel().CopyCost(n, n, n))
}
