package osc

import (
	"fmt"
	"time"

	"scimpich/internal/obs/flight"
)

// Synchronization (paper §4.1/§4.3): active target via fence or exposure /
// access epochs, passive target via lock/unlock. Accesses must stay inside
// an epoch; the library optimizes across the epoch boundary (store barriers
// are issued at the closing call, not per access).

// ErrSyncTimeout reports a checked synchronization call (FenceChecked,
// LockChecked) that waited longer than Config.SyncTimeout for a peer —
// typically because its node crashed mid-epoch.
type ErrSyncTimeout struct {
	Op     string // "fence" or "lock"
	Win    int
	Target int // locked target rank, or -1 for fence
	Waited time.Duration
}

func (e ErrSyncTimeout) Error() string {
	if e.Target >= 0 {
		return fmt.Sprintf("osc: %s on window %d timed out after %v waiting for rank %d",
			e.Op, e.Win, e.Waited, e.Target)
	}
	return fmt.Sprintf("osc: %s on window %d timed out after %v", e.Op, e.Win, e.Waited)
}

// Fence closes the current access epoch (completing all outstanding posted
// stores with a store barrier), synchronizes all ranks barrier-style, and
// opens the next epoch (MPI_Win_fence).
func (w *Win) Fence() {
	w.stats.fences.Add(1)
	w.closeEpoch()
	w.syncViews()
	w.sys.c.Barrier()
	w.ep = epochFence
	w.openEpoch("fence")
	w.resetPattern()
}

// FenceChecked is Fence with a watchdog: instead of the collective barrier
// (which deadlocks if a peer crashed), every rank announces its fence
// arrival to all others and waits for the full round with a bounded wait.
// Waiting longer than Config.SyncTimeout for any peer returns an
// ErrSyncTimeout; with SyncTimeout zero it waits forever. All ranks of the
// window must use FenceChecked for the same fence (the announcement rounds
// are counted separately from plain Fence barriers).
func (w *Win) FenceChecked() error {
	w.stats.fences.Add(1)
	w.closeEpoch()
	w.syncViews()
	c := w.sys.c
	p := c.Proc()
	w.fenceRound++
	round := w.fenceRound
	w.fl.Record(p.Now(), flight.KFenceEnter, int64(w.id), int64(round), 0, 0)
	me := c.Rank()
	for r := 0; r < c.Size(); r++ {
		if r != me {
			c.OSCNotify(c.GroupToWorld(r), &oscReq{kind: reqFence, win: w.id, round: round}, false)
		}
	}
	need := c.Size() - 1
	var waited time.Duration
	for w.pendingFence[round] < need {
		if w.cfg.SyncTimeout <= 0 {
			w.pendingFence[p.Recv(w.fenceQ).(int)]++
			continue
		}
		remaining := w.cfg.SyncTimeout - waited
		if remaining <= 0 {
			w.countSyncTimeout()
			c.Tracer().Record(p.Now(), w.actor, "fault",
				"window %d: fence round %d timed out (%d/%d peers)", w.id, round, w.pendingFence[round], need)
			err := ErrSyncTimeout{Op: "fence", Win: w.id, Target: -1, Waited: waited}
			w.fl.Fail(p.Now(), flight.OpFence, -1, err)
			return err
		}
		before := p.Now()
		v, ok := p.RecvTimeout(w.fenceQ, remaining)
		waited += p.Now() - before
		if !ok {
			w.countSyncTimeout()
			c.Tracer().Record(p.Now(), w.actor, "fault",
				"window %d: fence round %d timed out (%d/%d peers)", w.id, round, w.pendingFence[round], need)
			err := ErrSyncTimeout{Op: "fence", Win: w.id, Target: -1, Waited: waited}
			w.fl.Fail(p.Now(), flight.OpFence, -1, err)
			return err
		}
		w.pendingFence[v.(int)]++
	}
	delete(w.pendingFence, round)
	w.fl.Record(p.Now(), flight.KFenceExit, int64(w.id), int64(round), int64(need), 0)
	w.ep = epochFence
	w.openEpoch("fence")
	w.resetPattern()
	return nil
}

// countSyncTimeout bumps the window counter and registry metric for an
// expired checked synchronization call.
func (w *Win) countSyncTimeout() {
	w.stats.syncTimeouts.Add(1)
	w.sys.met.syncTimeouts.Add(1)
}

// syncViews guarantees delivery of every posted store this rank issued
// into the window (one store barrier covers all SCI traffic of the node).
// A view whose transfer check fails persistently is degraded to the
// emulation path and the next healthy view carries the barrier.
func (w *Win) syncViews() {
	p := w.sys.c.Proc()
	for r, v := range w.views {
		if v == nil || r == w.sys.c.Rank() || !v.Remote() || w.degraded[r] {
			continue
		}
		if err := v.TrySync(p); err != nil {
			w.degrade(r, err)
			continue // the next healthy view still flushes the adapter
		}
		return // one barrier flushes the whole adapter
	}
}

// resetPattern clears the write-combine stride estimator at epoch
// boundaries.
func (w *Win) resetPattern() {
	w.lastTarget = -1
}

// Post opens an exposure epoch for the origins in group (MPI_Win_post).
// The notification costs one control message per origin.
func (w *Win) Post(group []int) {
	w.stats.posts.Add(1)
	c := w.sys.c
	for _, origin := range group {
		c.OSCNotify(c.GroupToWorld(origin), &oscReq{kind: reqPost, win: w.id}, false)
	}
}

// Start opens an access epoch toward the targets in group, blocking until
// each has posted its exposure epoch (MPI_Win_start).
func (w *Win) Start(group []int) {
	if w.ep != epochNone {
		panic("osc: Start inside another access epoch")
	}
	p := w.sys.c.Proc()
	need := map[int]int{}
	for _, t := range group {
		need[w.sys.c.GroupToWorld(t)]++
	}
	for remaining := len(group); remaining > 0; {
		src := p.Recv(w.postQ).(int) // world rank
		if need[src] == 0 {
			// Stale post from a rank outside the group — e.g. a peer revoked
			// after it notified. Ignore it; only expected posts count.
			w.sys.c.Tracer().Record(p.Now(), w.actor, "fault",
				"window %d: ignoring unexpected post from world rank %d", w.id, src)
			continue
		}
		need[src]--
		remaining--
	}
	w.ep = epochStart
	w.openEpoch("start")
	w.resetPattern()
}

// Complete closes the access epoch: completes all transfers and notifies
// each target (MPI_Win_complete).
func (w *Win) Complete(group []int) {
	if w.ep != epochStart {
		panic("osc: Complete without Start")
	}
	w.closeEpoch()
	w.syncViews()
	c := w.sys.c
	for _, t := range group {
		c.OSCNotify(c.GroupToWorld(t), &oscReq{kind: reqComplete, win: w.id}, false)
	}
	w.ep = epochNone
}

// Wait closes the exposure epoch, blocking until every origin in group has
// completed its accesses (MPI_Win_wait).
func (w *Win) Wait(group []int) {
	p := w.sys.c.Proc()
	need := map[int]int{}
	for _, o := range group {
		need[w.sys.c.GroupToWorld(o)]++
	}
	for remaining := len(group); remaining > 0; {
		src := p.Recv(w.completeQ).(int) // world rank
		if need[src] == 0 {
			// Stale complete from outside the group (revoked origin); ignore.
			w.sys.c.Tracer().Record(p.Now(), w.actor, "fault",
				"window %d: ignoring unexpected complete from world rank %d", w.id, src)
			continue
		}
		need[src]--
		remaining--
	}
}

// Lock opens a passive-target epoch with exclusive access to target's
// window (MPI_Win_lock). For windows in shared memory the lock is a
// shared-memory spinlock that does not involve the target's CPU; for
// private windows the handler arbitrates (with remote-interrupt latency).
func (w *Win) Lock(target int) {
	if w.ep != epochNone {
		panic("osc: Lock inside another access epoch")
	}
	w.stats.locks.Add(1)
	c := w.sys.c
	p := c.Proc()
	if w.isShared[target] {
		if target != c.Rank() {
			p.Sleep(c.World().LockLatency(c.GroupToWorld(target), c.WorldRank()))
		}
		p.Lock(w.sharedLocks[target])
	} else {
		for {
			rep := c.OSCCall(c.GroupToWorld(target), &oscReq{kind: reqLockTry, win: w.id}, true).(*oscReply)
			if rep.ok {
				break
			}
			p.Sleep(5 * time.Microsecond) // backoff and retry
		}
	}
	w.ep = epochLock
	w.lockHeld = target
	w.openEpoch("lock")
	w.resetPattern()
}

// LockChecked is Lock with a watchdog: it polls for the lock (and, for
// shared windows, the target node's liveness) and gives up with an
// ErrSyncTimeout after Config.SyncTimeout instead of blocking forever on a
// crashed or lock-hogging target. With SyncTimeout zero it behaves like
// Lock. On success the epoch is open exactly as after Lock.
func (w *Win) LockChecked(target int) error {
	if w.ep != epochNone {
		panic("osc: Lock inside another access epoch")
	}
	if w.cfg.SyncTimeout <= 0 {
		w.Lock(target)
		return nil
	}
	w.stats.locks.Add(1)
	c := w.sys.c
	p := c.Proc()
	world := c.GroupToWorld(target)
	var waited time.Duration
	backoff := 5 * time.Microsecond
	for {
		start := p.Now()
		if w.isShared[target] {
			// A dead target node cannot serve its exported lock; keep
			// polling (it may be restored) until the watchdog expires.
			if c.World().NodeAlive(world) {
				if target != c.Rank() {
					p.Sleep(c.World().LockLatency(world, c.WorldRank()))
				}
				if w.sharedLocks[target].TryLock() {
					break
				}
			}
		} else {
			rep, ok := c.OSCCallTimeout(world, &oscReq{kind: reqLockTry, win: w.id}, true, w.cfg.SyncTimeout-waited)
			if ok && rep.(*oscReply).ok {
				break
			}
		}
		waited += p.Now() - start
		if waited >= w.cfg.SyncTimeout {
			w.countSyncTimeout()
			c.Tracer().Record(p.Now(), w.actor, "fault",
				"window %d: lock of rank %d timed out after %v", w.id, target, waited)
			err := ErrSyncTimeout{Op: "lock", Win: w.id, Target: target, Waited: waited}
			w.fl.Fail(p.Now(), flight.OpLock, world, err)
			return err
		}
		sleep := backoff
		if waited+sleep > w.cfg.SyncTimeout {
			sleep = w.cfg.SyncTimeout - waited
		}
		p.Sleep(sleep)
		waited += sleep
		if backoff < 160*time.Microsecond {
			backoff *= 2
		}
	}
	w.ep = epochLock
	w.lockHeld = target
	w.openEpoch("lock")
	w.resetPattern()
	return nil
}

// Unlock closes the passive-target epoch: completes all transfers to the
// target, then releases the lock (MPI_Win_unlock).
func (w *Win) Unlock(target int) {
	if w.ep != epochLock || w.lockHeld != target {
		panic("osc: Unlock without matching Lock")
	}
	c := w.sys.c
	p := c.Proc()
	w.closeEpoch()
	w.syncViews()
	if w.isShared[target] {
		if target != c.Rank() {
			p.Sleep(c.World().LockLatency(c.GroupToWorld(target), c.WorldRank()) / 2)
		}
		p.Unlock(w.sharedLocks[target])
	} else {
		c.OSCCall(c.GroupToWorld(target), &oscReq{kind: reqUnlock, win: w.id}, true)
	}
	w.ep = epochNone
	w.lockHeld = -1
}
