package osc

import (
	"fmt"
	"time"
)

// Synchronization (paper §4.1/§4.3): active target via fence or exposure /
// access epochs, passive target via lock/unlock. Accesses must stay inside
// an epoch; the library optimizes across the epoch boundary (store barriers
// are issued at the closing call, not per access).

// Fence closes the current access epoch (completing all outstanding posted
// stores with a store barrier), synchronizes all ranks barrier-style, and
// opens the next epoch (MPI_Win_fence).
func (w *Win) Fence() {
	w.Stats.Fences++
	w.syncViews()
	w.sys.c.Barrier()
	w.ep = epochFence
	w.resetPattern()
}

// syncViews guarantees delivery of every posted store this rank issued
// into the window (one store barrier covers all SCI traffic of the node).
func (w *Win) syncViews() {
	p := w.sys.c.Proc()
	for r, v := range w.views {
		if v != nil && r != w.sys.c.Rank() && v.Remote() {
			v.Sync(p)
			return // one barrier flushes the whole adapter
		}
	}
}

// resetPattern clears the write-combine stride estimator at epoch
// boundaries.
func (w *Win) resetPattern() {
	w.lastTarget = -1
}

// Post opens an exposure epoch for the origins in group (MPI_Win_post).
// The notification costs one control message per origin.
func (w *Win) Post(group []int) {
	w.Stats.Posts++
	c := w.sys.c
	for _, origin := range group {
		c.OSCNotify(c.GroupToWorld(origin), &oscReq{kind: reqPost, win: w.id}, false)
	}
}

// Start opens an access epoch toward the targets in group, blocking until
// each has posted its exposure epoch (MPI_Win_start).
func (w *Win) Start(group []int) {
	if w.ep != epochNone {
		panic("osc: Start inside another access epoch")
	}
	p := w.sys.c.Proc()
	need := map[int]int{}
	for _, t := range group {
		need[w.sys.c.GroupToWorld(t)]++
	}
	for remaining := len(group); remaining > 0; {
		src := p.Recv(w.postQ).(int) // world rank
		if need[src] == 0 {
			panic(fmt.Sprintf("osc: unexpected post from rank %d", src))
		}
		need[src]--
		remaining--
	}
	w.ep = epochStart
	w.resetPattern()
}

// Complete closes the access epoch: completes all transfers and notifies
// each target (MPI_Win_complete).
func (w *Win) Complete(group []int) {
	if w.ep != epochStart {
		panic("osc: Complete without Start")
	}
	w.syncViews()
	c := w.sys.c
	for _, t := range group {
		c.OSCNotify(c.GroupToWorld(t), &oscReq{kind: reqComplete, win: w.id}, false)
	}
	w.ep = epochNone
}

// Wait closes the exposure epoch, blocking until every origin in group has
// completed its accesses (MPI_Win_wait).
func (w *Win) Wait(group []int) {
	p := w.sys.c.Proc()
	need := map[int]int{}
	for _, o := range group {
		need[w.sys.c.GroupToWorld(o)]++
	}
	for remaining := len(group); remaining > 0; {
		src := p.Recv(w.completeQ).(int) // world rank
		if need[src] == 0 {
			panic(fmt.Sprintf("osc: unexpected complete from rank %d", src))
		}
		need[src]--
		remaining--
	}
}

// Lock opens a passive-target epoch with exclusive access to target's
// window (MPI_Win_lock). For windows in shared memory the lock is a
// shared-memory spinlock that does not involve the target's CPU; for
// private windows the handler arbitrates (with remote-interrupt latency).
func (w *Win) Lock(target int) {
	if w.ep != epochNone {
		panic("osc: Lock inside another access epoch")
	}
	w.Stats.Locks++
	c := w.sys.c
	p := c.Proc()
	if w.isShared[target] {
		if target != c.Rank() {
			p.Sleep(c.World().LockLatency(c.GroupToWorld(target), c.WorldRank()))
		}
		p.Lock(w.sharedLocks[target])
	} else {
		for {
			rep := c.OSCCall(c.GroupToWorld(target), &oscReq{kind: reqLockTry, win: w.id}, true).(*oscReply)
			if rep.ok {
				break
			}
			p.Sleep(5 * time.Microsecond) // backoff and retry
		}
	}
	w.ep = epochLock
	w.lockHeld = target
	w.resetPattern()
}

// Unlock closes the passive-target epoch: completes all transfers to the
// target, then releases the lock (MPI_Win_unlock).
func (w *Win) Unlock(target int) {
	if w.ep != epochLock || w.lockHeld != target {
		panic("osc: Unlock without matching Lock")
	}
	c := w.sys.c
	p := c.Proc()
	w.syncViews()
	if w.isShared[target] {
		if target != c.Rank() {
			p.Sleep(c.World().LockLatency(c.GroupToWorld(target), c.WorldRank()) / 2)
		}
		p.Unlock(w.sharedLocks[target])
	} else {
		c.OSCCall(c.GroupToWorld(target), &oscReq{kind: reqUnlock, win: w.id}, true)
	}
	w.ep = epochNone
	w.lockHeld = -1
}
