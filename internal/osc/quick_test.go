package osc

import (
	"bytes"
	"math/rand"
	"testing"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
)

// Property tests: random one-sided access programs, executed on the
// simulated cluster and replayed against a sequential reference model.
// Fence epochs order the accesses, so the reference is deterministic.

type accessOp struct {
	origin  int
	put     bool
	target  int
	off     int64
	n       int64
	pattern byte
}

func TestPropertyRandomFencedPutsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	const winSize = 4096
	for trial := 0; trial < 25; trial++ {
		procs := rng.Intn(3) + 2
		epochs := rng.Intn(4) + 1
		shared := rng.Intn(4) > 0 // mix shared and private windows

		// Generate a program: per epoch, a set of non-overlapping puts
		// (MPI forbids conflicting puts in one epoch).
		var program [][]accessOp
		for e := 0; e < epochs; e++ {
			var ops []accessOp
			used := map[int]map[int64]bool{} // target -> claimed 64B cells
			for k := 0; k < rng.Intn(8)+1; k++ {
				target := rng.Intn(procs)
				cell := int64(rng.Intn(winSize / 64))
				if used[target] == nil {
					used[target] = map[int64]bool{}
				}
				if used[target][cell] {
					continue
				}
				used[target][cell] = true
				ops = append(ops, accessOp{
					origin:  rng.Intn(procs),
					put:     true,
					target:  target,
					off:     cell * 64,
					n:       int64(rng.Intn(64) + 1),
					pattern: byte(rng.Intn(255) + 1),
				})
			}
			program = append(program, ops)
		}

		// Reference: apply epochs in order.
		ref := make([][]byte, procs)
		for i := range ref {
			ref[i] = make([]byte, winSize)
		}
		for _, ops := range program {
			for _, op := range ops {
				for j := int64(0); j < op.n; j++ {
					ref[op.target][op.off+j] = op.pattern
				}
			}
		}

		// Simulated run.
		finals := make([][]byte, procs)
		mpi.Run(mpi.DefaultConfig(procs, 1), func(c *mpi.Comm) {
			w := mkWin(c, winSize, shared)
			w.Fence()
			for _, ops := range program {
				for _, op := range ops {
					if op.origin != c.Rank() {
						continue
					}
					buf := bytes.Repeat([]byte{op.pattern}, int(op.n))
					w.Put(buf, int(op.n), datatype.Byte, op.target, op.off)
				}
				w.Fence()
			}
			finals[c.Rank()] = append([]byte(nil), w.LocalBytes()...)
		})
		for r := 0; r < procs; r++ {
			if !bytes.Equal(finals[r], ref[r]) {
				t.Fatalf("trial %d (procs=%d shared=%v): window %d diverges from reference",
					trial, procs, shared, r)
			}
		}
	}
}

func TestPropertyGetsObserveFencedState(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	const winSize = 2048
	for trial := 0; trial < 20; trial++ {
		shared := rng.Intn(2) == 0
		fill := byte(rng.Intn(254) + 1)
		readers := rng.Intn(2) + 1
		offs := make([]int64, 8)
		lens := make([]int64, 8)
		for i := range offs {
			lens[i] = int64(rng.Intn(256) + 1)
			offs[i] = int64(rng.Intn(winSize - int(lens[i])))
		}
		mpi.Run(mpi.DefaultConfig(readers+1, 1), func(c *mpi.Comm) {
			w := mkWin(c, winSize, shared)
			if c.Rank() == 0 {
				for i := range w.LocalBytes() {
					w.LocalBytes()[i] = fill
				}
			}
			w.Fence()
			if c.Rank() > 0 {
				for i := range offs {
					buf := make([]byte, lens[i])
					w.Get(buf, int(lens[i]), datatype.Byte, 0, offs[i])
					for _, b := range buf {
						if b != fill {
							t.Fatalf("trial %d: get observed %d, want %d", trial, b, fill)
						}
					}
				}
			}
			w.Fence()
		})
	}
}

func TestPropertyAccumulateOrderIndependentSum(t *testing.T) {
	// Sums commute: any interleaving of accumulates must produce the total.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		procs := rng.Intn(3) + 2
		perRank := rng.Intn(10) + 1
		vals := make([][]float64, procs)
		want := 0.0
		for r := range vals {
			vals[r] = make([]float64, perRank)
			for i := range vals[r] {
				vals[r][i] = float64(rng.Intn(100) + 1)
				want += vals[r][i]
			}
		}
		var got float64
		mpi.Run(mpi.DefaultConfig(procs, 1), func(c *mpi.Comm) {
			w := mkWin(c, 8, true)
			w.Fence()
			for _, v := range vals[c.Rank()] {
				w.Accumulate(mpi.Float64Bytes([]float64{v}), 1, datatype.Float64, mpi.OpSum, 0, 0)
			}
			w.Fence()
			if c.Rank() == 0 {
				got = mpi.BytesFloat64(w.LocalBytes())[0]
			}
		})
		if got != want {
			t.Fatalf("trial %d: accumulated %g, want %g", trial, got, want)
		}
	}
}
