package osc_test

import (
	"fmt"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
	"scimpich/internal/osc"
)

// Fence-synchronized one-sided access to a window in SCI shared memory.
func Example() {
	mpi.Run(mpi.DefaultConfig(2, 1), func(c *mpi.Comm) {
		sys := osc.NewSystem(c)
		win := sys.CreateShared(c.AllocShared(64), osc.DefaultConfig())
		win.Fence()
		if c.Rank() == 0 {
			win.Put(mpi.Float64Bytes([]float64{42}), 8, datatype.Byte, 1, 0)
		}
		win.Fence()
		if c.Rank() == 1 {
			fmt.Println("window holds:", mpi.BytesFloat64(win.LocalBytes()[:8])[0])
		}
		win.Free()
	})
	// Output:
	// window holds: 42
}

// Passive-target locking: a fetch-and-increment without any action by the
// target.
func ExampleWin_Lock() {
	mpi.Run(mpi.DefaultConfig(2, 1), func(c *mpi.Comm) {
		sys := osc.NewSystem(c)
		win := sys.CreateShared(c.AllocShared(8), osc.DefaultConfig())
		c.Barrier()
		if c.Rank() == 1 {
			win.Lock(0)
			buf := make([]byte, 8)
			win.Get(buf, 8, datatype.Byte, 0, 0)
			v := mpi.BytesFloat64(buf)[0]
			win.Put(mpi.Float64Bytes([]float64{v + 1}), 8, datatype.Byte, 0, 0)
			win.Unlock(0)
		}
		c.Barrier()
		if c.Rank() == 0 {
			fmt.Println("counter:", mpi.BytesFloat64(win.LocalBytes())[0])
		}
	})
	// Output:
	// counter: 1
}
