package osc

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/fault"
	"scimpich/internal/mpi"
	"scimpich/internal/obs/flight"
)

// TestFenceStallDumpNamesInjectedCrash is the end-to-end dump-on-failure
// acceptance test: a seeded fault plan crashes node1 mid-run, a survivor's
// FenceChecked times out, the recorder dumps at that first typed error,
// and the post-mortem analyzer names the injected crash of node1 — not the
// rank that happened to surface the timeout — as the root cause.
func TestFenceStallDumpNamesInjectedCrash(t *testing.T) {
	const crashAt = 2 * time.Millisecond
	cfg := mpi.DefaultConfig(4, 1)
	cfg.SCI.Fault = fault.New(42).CrashNode(1, crashAt)
	rec := flight.New(256)
	cfg.Flight = rec
	var dump *flight.Dump
	rec.SetDumpSink(func(d *flight.Dump) { dump = d })

	src := fill(512)
	timeouts := 0
	mpi.Run(cfg, func(c *mpi.Comm) {
		oscCfg := DefaultConfig()
		oscCfg.SyncTimeout = 500 * time.Microsecond
		s := NewSystem(c)
		w := s.CreateShared(c.AllocShared(4096), oscCfg)
		if err := w.FenceChecked(); err != nil { // open the first epoch
			t.Errorf("rank%d: opening fence failed: %v", c.Rank(), err)
			return
		}
		for round := 0; ; round++ {
			// The simulated process dies with its node: once the plan has
			// struck, rank1 stops participating in the epochs.
			if c.Rank() == 1 && c.Proc().Now() > crashAt {
				return
			}
			if round < 2 && c.Rank() == 0 {
				if err := w.PutChecked(src, len(src), datatype.Byte, 2, 0); err != nil {
					t.Errorf("healthy-phase put failed: %v", err)
				}
			}
			if err := w.FenceChecked(); err != nil {
				var st ErrSyncTimeout
				if !errors.As(err, &st) {
					t.Errorf("rank%d: fence error = %v, want ErrSyncTimeout", c.Rank(), err)
				}
				timeouts++
				return
			}
			c.Proc().Sleep(300 * time.Microsecond)
		}
	})

	if timeouts == 0 {
		t.Fatal("no survivor hit the fence timeout; the stall never happened")
	}
	if !rec.Dumped() || dump == nil {
		t.Fatal("first typed error did not trigger the failure dump")
	}
	if !strings.Contains(rec.Reason(), "fence failed") {
		t.Errorf("dump reason = %q, want the failing fence op", rec.Reason())
	}

	rep := flight.Analyze(dump)
	if len(rep.Anomalies) == 0 {
		t.Fatal("analyzer found no anomalies in the failure dump")
	}
	top := rep.Anomalies[0]
	if top.Check != "fence-stall" || top.Severity != 100 {
		t.Fatalf("top anomaly = %+v, want sev-100 fence-stall", top)
	}
	if top.Actor != "rank1" {
		t.Errorf("blamed actor = %q, want rank1 (the crashed node's rank)", top.Actor)
	}
	if !strings.Contains(top.Summary, "injected crash of node1") ||
		!strings.Contains(top.Summary, "root cause") {
		t.Errorf("summary %q does not name the injected node1 crash as root cause", top.Summary)
	}
	if len(rep.Chain) == 0 {
		t.Error("no causal chain to the failure")
	}
	var buf bytes.Buffer
	flight.WriteReport(&buf, dump, rep)
	if !strings.Contains(buf.String(), "root cause") {
		t.Errorf("rendered report lacks the root-cause line:\n%s", buf.String())
	}
	// The meta rings the attribution depends on made it into the dump.
	if dump.Actor("topology") == nil {
		t.Error("dump lacks the topology ring")
	}
	if nd := dump.Actor("node1"); nd == nil || len(nd.Events) == 0 {
		t.Error("dump lacks node1's crash event")
	}
}

// TestFlightRecordsPutPath checks the osc wiring: puts and fences of a
// healthy run land in the origin rank's ring with the documented payloads.
func TestFlightRecordsPutPath(t *testing.T) {
	cfg := mpi.DefaultConfig(2, 1)
	rec := flight.New(64)
	cfg.Flight = rec
	src := fill(1024)
	mpi.Run(cfg, func(c *mpi.Comm) {
		s := NewSystem(c)
		w := s.CreateShared(c.AllocShared(4096), DefaultConfig())
		if err := w.FenceChecked(); err != nil {
			t.Errorf("fence: %v", err)
		}
		if c.Rank() == 0 {
			if err := w.PutChecked(src, len(src), datatype.Byte, 1, 0); err != nil {
				t.Errorf("put: %v", err)
			}
		}
		if err := w.FenceChecked(); err != nil {
			t.Errorf("fence: %v", err)
		}
	})
	var put *flight.Event
	enters, exits := 0, 0
	for _, e := range rec.Actor("rank0").Events() {
		switch e.Kind {
		case flight.KPut:
			cp := e
			put = &cp
		case flight.KFenceEnter:
			enters++
		case flight.KFenceExit:
			exits++
		}
	}
	if put == nil {
		t.Fatal("no KPut recorded on the origin rank")
	}
	if put.A != 1 || put.B != 1024 || put.D != 1 {
		t.Errorf("KPut payload = %+v, want target 1, 1024B, direct", put)
	}
	if enters != 2 || exits != 2 {
		t.Errorf("fence events = %d enters / %d exits, want 2 / 2", enters, exits)
	}
	if rec.Dumped() {
		t.Errorf("healthy run dumped: %s", rec.Reason())
	}
}
