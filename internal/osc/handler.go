package osc

import (
	"fmt"

	"scimpich/internal/bufpool"
	"scimpich/internal/datatype"
	"scimpich/internal/memmodel"
	"scimpich/internal/mpi"
	"scimpich/internal/pack"
	"scimpich/internal/sim"
)

// The remote handler: the target-side half of the emulation and remote-put
// paths ("internal control messages in conjunction with a remote interrupt
// are used to invoke a remote handler on a process to accept or deliver
// data using the standard transfer protocols"). It runs on the rank's
// device process.

// reqKind enumerates handler requests.
type reqKind int

const (
	reqPut reqKind = iota
	reqGet
	reqAcc
	reqLockTry
	reqUnlock
	reqPost
	reqComplete
	// reqFence announces a rank's arrival at a checked fence round.
	reqFence
)

// oscReq is a one-sided handler request.
type oscReq struct {
	kind   reqKind
	win    int
	off    int64 // target window displacement
	n      int64 // bytes in this chunk
	skip   int64 // linearization offset of this chunk
	inline []byte
	dt     *datatype.Type
	count  int
	op     mpi.Op
	round  int // checked-fence round number (reqFence)
}

// oscReply is the handler's answer.
type oscReply struct {
	ok bool
}

// memModel returns the node's memory hierarchy model.
func (s *System) memModel() *memmodel.Model {
	return s.c.World().MemModel()
}

// handle services one handler request on the device process.
func (s *System) handle(p *sim.Proc, src int, req any) any {
	r, ok := req.(*oscReq)
	if !ok {
		panic(fmt.Sprintf("osc: unexpected handler request %T", req))
	}
	w, ok := s.wins[r.win]
	if !ok {
		// Not a programming error under recovery: a stale request for a
		// window this rank already freed or abandoned (window ids are never
		// reused). Refuse gracefully — the origin sees ErrWinGone.
		s.c.Tracer().Record(p.Now(), fmt.Sprintf("rank%d", s.c.WorldRank()), "fault",
			"refusing request for unknown window %d from world rank %d", r.win, src)
		return &oscReply{ok: false}
	}
	switch r.kind {
	case reqPut:
		s.handlePut(p, src, w, r)
	case reqGet:
		s.handleGet(p, src, w, r)
	case reqAcc:
		s.handleAcc(p, src, w, r)
	case reqLockTry:
		if w.privLockBusy {
			return &oscReply{ok: false}
		}
		w.privLockBusy = true
		return &oscReply{ok: true}
	case reqUnlock:
		if !w.privLockBusy {
			// Stale unlock from a revoked or recovered origin; refuse rather
			// than corrupt the lock state.
			s.c.Tracer().Record(p.Now(), w.actor, "fault",
				"refusing unlock of unheld window %d lock from world rank %d", w.id, src)
			return &oscReply{ok: false}
		}
		w.privLockBusy = false
	case reqPost:
		sim.Post(w.postQ, src)
	case reqComplete:
		sim.Post(w.completeQ, src)
	case reqFence:
		sim.Post(w.fenceQ, r.round)
	default:
		panic(fmt.Sprintf("osc: unknown request kind %d", r.kind))
	}
	return &oscReply{ok: true}
}

// handlePut drains a staged (or inline) chunk into the local window.
func (s *System) handlePut(p *sim.Proc, src int, w *Win, r *oscReq) {
	win := w.LocalBytes()
	var data []byte
	if r.inline != nil {
		data = r.inline
	} else {
		stage, base := s.c.OSCStageLocal(src)
		data = stage.Bytes()[base : base+r.n]
	}
	_, st := pack.FFUnpack(win[r.off:], data, r.dt, r.count, r.skip, r.n)
	p.Sleep(s.memModel().CopyCost(st.Bytes, st.AvgBlock(), st.Bytes*2))
}

// handleGet performs the remote-put: write the requested window bytes into
// the origin's staging area (through this rank's own view of it).
func (s *System) handleGet(p *sim.Proc, src int, w *Win, r *oscReq) {
	win := w.LocalBytes()
	stage, base, size, _ := s.c.OSCStage(src)
	getBase := base + size/2
	if w.cfg.DMAStageMin > 0 && r.n >= w.cfg.DMAStageMin {
		// Scatter-gather offload: descriptors gather the requested blocks
		// straight out of the window, no local pack pass. The completed
		// future guarantees delivery; failures fall back to PIO below.
		cur := pack.NewCursor(r.dt, r.count)
		cur.SeekTo(r.skip)
		descs, _ := cur.Descriptors(nil, r.n)
		if fut, ok := stage.DMAWriteSG(p, getBase, win[r.off:], descs); ok {
			if v := p.Await(fut); v == nil {
				w.stats.dmaStaged.Add(1)
				w.sys.met.dmaStaged.Add(1)
				return
			}
		}
	}
	scratch := bufpool.Get(int(r.n))
	defer scratch.Put() // TryWriteStream captures the bytes synchronously
	_, st := pack.FFPack(pack.BufferSink{Buf: scratch.B}, win[r.off:], r.dt, r.count, r.skip, r.n)
	p.Sleep(s.memModel().CopyCost(st.Bytes, st.AvgBlock(), st.Bytes*2))
	if err := stage.TryWriteStream(p, getBase, scratch.B, r.n); err != nil {
		// Handler side of a get whose origin just died: there is nobody to
		// report to — trace and drop (the origin's own watchdog fires).
		s.c.Tracer().Record(p.Now(), w.actor, "fault",
			"window %d: remote-put toward world rank %d failed (%v)", w.id, src, err)
		return
	}
	if err := stage.TrySync(p); err != nil {
		s.c.Tracer().Record(p.Now(), w.actor, "fault",
			"window %d: remote-put sync toward world rank %d failed (%v)", w.id, src, err)
	}
}

// handleAcc combines staged (or inline) data into the window.
func (s *System) handleAcc(p *sim.Proc, src int, w *Win, r *oscReq) {
	win := w.LocalBytes()
	var data []byte
	if r.inline != nil {
		data = r.inline
	} else {
		stage, base := s.c.OSCStageLocal(src)
		data = stage.Bytes()[base : base+r.n]
	}
	// Read-modify-write: two passes over the data.
	p.Sleep(2 * s.memModel().CopyCost(r.n, r.n, r.n*2))
	mpi.CombineOp(r.op, r.dt, win[r.off:r.off+r.n], data, r.count)
}
