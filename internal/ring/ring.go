// Package ring models the topology of a single SCI ringlet: N nodes joined
// by N unidirectional point-to-point links ("segments"). A transfer from
// node a to node b occupies every segment from a around the ring to b, which
// is what makes segment utilization (the number of concurrent transfers per
// segment) the scalability-limiting quantity studied in the paper's Table 2.
package ring

import (
	"fmt"
	"time"

	"scimpich/internal/flow"
)

// MiB is one mebibyte, the bandwidth unit used throughout the paper.
const MiB = 1 << 20

// DefaultLinkMHz is the default SCI link frequency used in the paper's
// experiments (166 MHz, nominal ring bandwidth 633 MiB/s). The paper also
// reruns the saturation experiment at 200 MHz (762 MiB/s).
const DefaultLinkMHz = 166

// BandwidthForMHz returns the nominal link bandwidth in bytes/second for an
// SCI link clocked at the given frequency. Calibrated to the paper: 166 MHz
// yields 633 MiB/s and the measured bandwidth "increased linearly with the
// ring bandwidth" at 200 MHz (762 MiB/s).
func BandwidthForMHz(mhz float64) float64 {
	return mhz / 166.0 * 633.0 * MiB
}

// Topology is a single SCI ringlet.
type Topology struct {
	n     int
	links []*flow.Link
}

// New builds a ringlet of n nodes with the given per-segment bandwidth in
// bytes/second. model may be nil for ideal links.
func New(n int, linkBW float64, model flow.CongestionModel) *Topology {
	if n < 1 {
		panic("ring: need at least one node")
	}
	t := &Topology{n: n}
	t.links = make([]*flow.Link, n)
	for i := range t.links {
		t.links[i] = flow.NewLink(fmt.Sprintf("seg%d->%d", i, (i+1)%n), linkBW, model)
	}
	return t
}

// Nodes returns the number of nodes on the ringlet.
func (t *Topology) Nodes() int { return t.n }

// Link returns the segment leaving node i (toward node (i+1) mod n).
func (t *Topology) Link(i int) *flow.Link { return t.links[i] }

// Route returns the segments a transfer from node a to node b traverses,
// in order. A self-route (a == b) is empty: local accesses never enter the
// ring. Panics on out-of-range nodes.
func (t *Topology) Route(a, b int) []*flow.Link {
	if a < 0 || a >= t.n || b < 0 || b >= t.n {
		panic(fmt.Sprintf("ring: route %d->%d outside ring of %d", a, b, t.n))
	}
	if a == b {
		return nil
	}
	var path []*flow.Link
	for i := a; i != b; i = (i + 1) % t.n {
		path = append(path, t.links[i])
	}
	return path
}

// FullLoop returns all n segments starting at node a — the worst-case
// pattern used for the maximal segment-utilization experiment in Table 2
// (every transfer crosses every segment).
func (t *Topology) FullLoop(a int) []*flow.Link {
	path := make([]*flow.Link, 0, t.n)
	for i := 0; i < t.n; i++ {
		path = append(path, t.links[(a+i)%t.n])
	}
	return path
}

// Segment describes one ring link together with its endpoint nodes.
type Segment struct {
	Link     *flow.Link
	From, To int
}

// Segments enumerates the ring's links with their endpoints, in node order.
func (t *Topology) Segments() []Segment {
	segs := make([]Segment, t.n)
	for i := range segs {
		segs[i] = Segment{Link: t.links[i], From: i, To: (i + 1) % t.n}
	}
	return segs
}

// SetLinkLatency sets the propagation latency of every segment (the
// lookahead source for partitioned simulations of this ring) and returns
// the topology for chained construction.
func (t *Topology) SetLinkLatency(d time.Duration) *Topology {
	for _, l := range t.links {
		l.SetLatency(d)
	}
	return t
}

// Distance returns the number of segments between nodes a and b.
func (t *Topology) Distance(a, b int) int {
	d := (b - a) % t.n
	if d < 0 {
		d += t.n
	}
	return d
}
