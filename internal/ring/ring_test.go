package ring

import (
	"math"
	"testing"
)

func TestBandwidthForMHz(t *testing.T) {
	if got := BandwidthForMHz(166); math.Abs(got-633*MiB) > 1 {
		t.Errorf("166 MHz = %g MiB/s, want 633", got/MiB)
	}
	if got := BandwidthForMHz(200); math.Abs(got-762.65*MiB) > 0.5*MiB {
		t.Errorf("200 MHz = %g MiB/s, want ~762", got/MiB)
	}
}

func TestRouteLengths(t *testing.T) {
	r := New(8, 633*MiB, nil)
	cases := []struct{ a, b, want int }{
		{0, 1, 1}, {0, 7, 7}, {7, 0, 1}, {3, 3, 0}, {5, 2, 5},
	}
	for _, c := range cases {
		if got := len(r.Route(c.a, c.b)); got != c.want {
			t.Errorf("route %d->%d has %d segments, want %d", c.a, c.b, got, c.want)
		}
		if got := r.Distance(c.a, c.b); got != c.want {
			t.Errorf("distance %d->%d = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRouteStartsAtSource(t *testing.T) {
	r := New(4, 633*MiB, nil)
	path := r.Route(2, 0)
	if path[0] != r.Link(2) || path[1] != r.Link(3) {
		t.Errorf("route 2->0 = %v, want segments 2 then 3", path)
	}
}

func TestFullLoop(t *testing.T) {
	r := New(4, 633*MiB, nil)
	loop := r.FullLoop(1)
	if len(loop) != 4 {
		t.Fatalf("full loop has %d segments, want 4", len(loop))
	}
	seen := map[string]bool{}
	for _, l := range loop {
		seen[l.Name()] = true
	}
	if len(seen) != 4 {
		t.Errorf("full loop repeats segments: %v", seen)
	}
	if loop[0] != r.Link(1) {
		t.Errorf("full loop from 1 starts at %s, want segment 1", loop[0].Name())
	}
}

func TestRouteOutOfRangePanics(t *testing.T) {
	r := New(4, 633*MiB, nil)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range route did not panic")
		}
	}()
	r.Route(0, 4)
}
