// Package trace records a timeline of protocol events from a simulation
// run: which rank did what, when (virtual time), and through which
// protocol path. A Tracer is attached to a cluster configuration; nil
// tracers are free.
//
// Tracer is now a thin shim over the unified observability layer
// (internal/obs): Record produces obs instant events, and Start opens an
// obs span, so legacy flat-event call sites and the new span-tree call
// sites feed one timeline that exports to Chrome trace-event JSON. All
// methods are safe for concurrent use.
package trace

import (
	"fmt"
	"io"
	"time"

	"scimpich/internal/obs"
)

// Event is one timeline entry (the legacy flat view; spans live on the
// underlying obs.Trace).
type Event struct {
	At       time.Duration
	Actor    string // "rank3", "dev1", ...
	Category string // "send", "recv", "rdv", "osc", "coll", ...
	Detail   string
}

// Tracer collects events. A nil *Tracer discards everything.
type Tracer struct {
	t *obs.Trace
}

// New returns a tracer retaining at most limit events (0 = unlimited).
// When the limit is reached the tracer behaves as a ring buffer: the most
// recent limit events are kept and the oldest are dropped (so the tail of
// a long run — usually where the interesting failure is — survives).
func New(limit int) *Tracer {
	return &Tracer{t: obs.NewTrace(limit)}
}

// FromObs wraps an existing obs trace so layers plumbed with *Tracer feed
// the same timeline as layers using obs directly. A nil trace yields a nil
// tracer.
func FromObs(t *obs.Trace) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{t: t}
}

// Obs returns the underlying span-capable trace (nil on a nil tracer).
func (t *Tracer) Obs() *obs.Trace {
	if t == nil {
		return nil
	}
	return t.t
}

// Record appends an instant event. Safe on a nil tracer and safe for
// concurrent use.
func (t *Tracer) Record(at time.Duration, actor, category, format string, args ...any) {
	if t == nil {
		return
	}
	t.t.Instant(at, actor, category, fmt.Sprintf(format, args...))
}

// Start opens a span at virtual time at (see obs.Trace.StartSpan): spans
// on the same actor nest, and export as one tree. Returns nil — a no-op
// span — on a nil tracer.
func (t *Tracer) Start(at time.Duration, actor, category, name string) *obs.Span {
	if t == nil {
		return nil
	}
	return t.t.StartSpan(at, actor, category, name)
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.t.EventCount()
}

// Events returns the retained timeline, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	evs := t.t.Events()
	if len(evs) == 0 {
		return nil
	}
	out := make([]Event, len(evs))
	for i, e := range evs {
		out[i] = Event{At: e.At, Actor: e.Actor, Category: e.Category, Detail: e.Detail}
	}
	return out
}

// Filter returns the events of one category.
func (t *Tracer) Filter(category string) []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for _, e := range t.Events() {
		if e.Category == category {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes the timeline, one event per line.
func (t *Tracer) Dump(w io.Writer) {
	if t == nil {
		return
	}
	for _, e := range t.Events() {
		fmt.Fprintf(w, "%12v %-8s %-6s %s\n", e.At, e.Actor, e.Category, e.Detail)
	}
}
