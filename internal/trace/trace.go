// Package trace records a timeline of protocol events from a simulation
// run: which rank did what, when (virtual time), and through which
// protocol path. A Tracer is attached to a cluster configuration; nil
// tracers are free.
package trace

import (
	"fmt"
	"io"
	"time"
)

// Event is one timeline entry.
type Event struct {
	At       time.Duration
	Actor    string // "rank3", "dev1", ...
	Category string // "send", "recv", "rdv", "osc", "coll", ...
	Detail   string
}

// Tracer collects events. The zero value is ready to use; a nil *Tracer
// discards everything.
type Tracer struct {
	events []Event
	limit  int
}

// New returns a tracer retaining at most limit events (0 = unlimited).
func New(limit int) *Tracer {
	return &Tracer{limit: limit}
}

// Record appends an event. Safe on a nil tracer.
func (t *Tracer) Record(at time.Duration, actor, category, format string, args ...any) {
	if t == nil {
		return
	}
	if t.limit > 0 && len(t.events) >= t.limit {
		return
	}
	t.events = append(t.events, Event{
		At: at, Actor: actor, Category: category,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded timeline.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Filter returns the events of one category.
func (t *Tracer) Filter(category string) []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for _, e := range t.events {
		if e.Category == category {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes the timeline, one event per line.
func (t *Tracer) Dump(w io.Writer) {
	if t == nil {
		return
	}
	for _, e := range t.events {
		fmt.Fprintf(w, "%12v %-8s %-6s %s\n", e.At, e.Actor, e.Category, e.Detail)
	}
}
