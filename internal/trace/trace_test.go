package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAndFilter(t *testing.T) {
	tr := New(0)
	tr.Record(time.Microsecond, "rank0", "send", "-> 1: %d bytes", 100)
	tr.Record(2*time.Microsecond, "dev1", "recv", "<- 0")
	tr.Record(3*time.Microsecond, "rank0", "send", "-> 1 again")
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	sends := tr.Filter("send")
	if len(sends) != 2 || !strings.Contains(sends[0].Detail, "100 bytes") {
		t.Errorf("filter = %+v", sends)
	}
}

func TestNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	tr.Record(0, "x", "y", "z") // must not panic
	if tr.Len() != 0 || tr.Events() != nil || tr.Filter("y") != nil {
		t.Error("nil tracer leaked state")
	}
	var sb strings.Builder
	tr.Dump(&sb)
	if sb.Len() != 0 {
		t.Error("nil tracer dumped output")
	}
}

func TestLimitCapsRetention(t *testing.T) {
	tr := New(2)
	for i := 0; i < 5; i++ {
		tr.Record(time.Duration(i), "a", "c", "e%d", i)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want capped 2", tr.Len())
	}
}

func TestLimitKeepsNewest(t *testing.T) {
	// Regression: the old tracer silently dropped the NEWEST events once
	// full, losing the tail of long runs. The tracer is now a ring buffer
	// keeping the most recent limit events.
	tr := New(3)
	for i := 0; i < 10; i++ {
		tr.Record(time.Duration(i), "a", "c", "e%d", i)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	for i, want := range []string{"e7", "e8", "e9"} {
		if evs[i].Detail != want {
			t.Errorf("events[%d] = %q, want %q (newest retained, oldest-first)",
				i, evs[i].Detail, want)
		}
	}
}

func TestConcurrentRecord(t *testing.T) {
	// Regression for the data race in the original Tracer: Record appended
	// to a shared slice with no lock. Run with -race.
	tr := New(100)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			actor := fmt.Sprintf("rank%d", g)
			for i := 0; i < 250; i++ {
				tr.Record(time.Duration(i), actor, "send", "msg %d", i)
				if i%10 == 0 {
					_ = tr.Events()
					_ = tr.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 100 {
		t.Errorf("len = %d, want limit 100", tr.Len())
	}
}

func TestStartSpanThroughShim(t *testing.T) {
	tr := New(0)
	sp := tr.Start(0, "rank0", "send", "rdv")
	sp.SetBytes(1024)
	sp.End(10)
	spans := tr.Obs().Spans()
	if len(spans) != 1 || spans[0].Name != "rdv" || spans[0].Bytes != 1024 {
		t.Fatalf("spans = %+v", spans)
	}
	var nilTr *Tracer
	if nilTr.Start(0, "a", "b", "c") != nil || nilTr.Obs() != nil {
		t.Error("nil tracer must yield nil span and nil obs trace")
	}
}

func TestDumpFormat(t *testing.T) {
	tr := New(0)
	tr.Record(1500*time.Nanosecond, "rank7", "osc", "put 64 bytes")
	var sb strings.Builder
	tr.Dump(&sb)
	out := sb.String()
	for _, want := range []string{"1.5µs", "rank7", "osc", "put 64 bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q: %s", want, out)
		}
	}
}
