package trace

import (
	"strings"
	"testing"
	"time"
)

func TestRecordAndFilter(t *testing.T) {
	tr := New(0)
	tr.Record(time.Microsecond, "rank0", "send", "-> 1: %d bytes", 100)
	tr.Record(2*time.Microsecond, "dev1", "recv", "<- 0")
	tr.Record(3*time.Microsecond, "rank0", "send", "-> 1 again")
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	sends := tr.Filter("send")
	if len(sends) != 2 || !strings.Contains(sends[0].Detail, "100 bytes") {
		t.Errorf("filter = %+v", sends)
	}
}

func TestNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	tr.Record(0, "x", "y", "z") // must not panic
	if tr.Len() != 0 || tr.Events() != nil || tr.Filter("y") != nil {
		t.Error("nil tracer leaked state")
	}
	var sb strings.Builder
	tr.Dump(&sb)
	if sb.Len() != 0 {
		t.Error("nil tracer dumped output")
	}
}

func TestLimitCapsRetention(t *testing.T) {
	tr := New(2)
	for i := 0; i < 5; i++ {
		tr.Record(time.Duration(i), "a", "c", "e%d", i)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want capped 2", tr.Len())
	}
}

func TestDumpFormat(t *testing.T) {
	tr := New(0)
	tr.Record(1500*time.Nanosecond, "rank7", "osc", "put 64 bytes")
	var sb strings.Builder
	tr.Dump(&sb)
	out := sb.String()
	for _, want := range []string{"1.5µs", "rank7", "osc", "put 64 bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q: %s", want, out)
		}
	}
}
