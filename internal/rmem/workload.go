package rmem

import (
	"math/rand"
	"time"

	"scimpich/internal/mpi"
	"scimpich/internal/obs"
)

// The simulated client workload: every rank runs an open-loop stream of
// gets and puts against the replicated store (Zipfian keys — a few hot
// pages, a long cold tail), batched into commit rounds. Arrivals are
// scheduled on a fixed grid, so the sojourn histogram (completion minus
// scheduled arrival) exposes queueing delay during a failover, while the
// service-time histograms isolate the per-operation cost.

// Workload shapes the client load.
type Workload struct {
	// Rounds is the number of commit rounds; OpsPerRound the client
	// operations issued between commits.
	Rounds, OpsPerRound int
	// ReadFrac is the fraction of operations that are gets.
	ReadFrac float64
	// ArrivalGap is the open-loop inter-arrival time of the client stream.
	ArrivalGap time.Duration
	// ZipfS and ZipfV parameterize the key popularity skew (s > 1, v >= 1).
	ZipfS, ZipfV float64
	// Seed derives every rank's private random stream.
	Seed int64
}

// DefaultWorkload returns the reference client load.
func DefaultWorkload() Workload {
	return Workload{
		Rounds: 16, OpsPerRound: 25,
		ReadFrac:   0.7,
		ArrivalGap: 40 * time.Microsecond,
		ZipfS:      1.2, ZipfV: 1,
		Seed: 42,
	}
}

// RankReport is one rank's outcome of a workload run.
type RankReport struct {
	Rank int
	// Died marks a rank revoked by a shrink agreement (its node crashed).
	Died bool
	// RecoverErr records a survivor whose recovery failed (must be empty).
	RecoverErr string
	Failovers  int
	LostShards int
	Survivors  []int // world ranks of the final membership

	Committed           int
	GetOK, PutOK        int64
	OpFailures          int64
	FailedAfterRecovery int64
	// LostWrites is the number of committed ledger entries the final store
	// no longer served at verification (the durability gate; must be 0).
	LostWrites int64
	VerifyErr  string

	// Service-time distributions of successful operations, and the sojourn
	// (completion minus scheduled arrival) including retries and recovery.
	GetNS, PutNS, SojournNS obs.HistSnapshot
}

// RunWorkload executes the workload on every rank of a fresh world and
// returns the per-world-rank reports plus the simulated end time. The
// fault plan (if any) rides in mcfg.SCI.Fault; crashes are recovered
// through the service's failover path.
func RunWorkload(mcfg mpi.Config, cfg Config, wl Workload) ([]RankReport, time.Duration) {
	reports := make([]RankReport, mcfg.Nodes*mcfg.ProcsPerNode)
	end := mpi.Run(mcfg, func(c *mpi.Comm) {
		me := c.WorldRank()
		reports[me] = runClient(c, cfg, wl)
	})
	return reports, end
}

// recoverOrDie drives the failover path after a failed operation. It
// returns false when this rank must stop (revoked, or recovery itself
// failed), with the report fields filled in.
func recoverOrDie(svc *Service, rep *RankReport) bool {
	for attempt := 0; attempt < 3; attempt++ {
		err := svc.Recover()
		if err == nil {
			return true
		}
		if IsRevoked(err) {
			rep.Died = true
			return false
		}
		rep.RecoverErr = err.Error()
	}
	return false
}

func runClient(c *mpi.Comm, cfg Config, wl Workload) RankReport {
	rep := RankReport{Rank: c.WorldRank()}
	p := c.Proc()
	svc, err := New(c, cfg)
	if err != nil {
		rep.RecoverErr = err.Error()
		return rep
	}
	finish := func() RankReport {
		rep.Failovers = svc.Failovers
		rep.LostShards = svc.LostShards
		rep.Committed = svc.CommittedCount()
		if !rep.Died && rep.RecoverErr == "" {
			rep.Survivors = append([]int(nil), svc.ranks...)
		}
		return rep
	}

	me := c.WorldRank()
	ws0 := c.Size() // original world size: the key-partition modulus
	keys := cfg.Keys()
	rng := rand.New(rand.NewSource(wl.Seed*1009 + int64(me)))
	zipf := rand.NewZipf(rng, wl.ZipfS, wl.ZipfV, uint64(keys-1))
	getNS, putNS, sojournNS := new(obs.Histogram), new(obs.Histogram), new(obs.Histogram)
	val := make([]byte, cfg.ValBytes)
	recovered := false

	arrival := p.Now()
	for round := 0; round < wl.Rounds; round++ {
		// Fence alignment across a failover: Recover itself commits (it
		// must, to seal the replayed writes), so a rank that recovered
		// mid-round skips its own round-boundary commit. All survivors
		// recover within the same round — they all rendezvous inside the
		// shrink agreement — so they all skip the same boundary and the
		// collective fence counts stay matched.
		recoveredThisRound := false
		for op := 0; op < wl.OpsPerRound; op++ {
			arrival += wl.ArrivalGap
			if now := p.Now(); now < arrival {
				p.Sleep(arrival - now)
			}
			read := rng.Float64() < wl.ReadFrac
			key := int64(zipf.Uint64())
			if !read {
				// Writes are partitioned by origin: each rank owns the keys
				// congruent to its world rank, so no two writers race on a
				// slot (and a crashed node's stale stores cannot touch
				// survivor data).
				key = key - key%int64(ws0) + int64(me)
				if key >= keys {
					key -= int64(ws0)
				}
				for i := range val {
					val[i] = byte(key) ^ byte(i)
				}
			}
			for {
				opStart := p.Now()
				var oerr error
				if read {
					_, oerr = svc.Get(key, val)
				} else {
					oerr = svc.Put(key, val)
				}
				if oerr == nil {
					if read {
						rep.GetOK++
						getNS.ObserveDuration(p.Now() - opStart)
					} else {
						rep.PutOK++
						putNS.ObserveDuration(p.Now() - opStart)
					}
					sojournNS.ObserveDuration(p.Now() - arrival)
					break
				}
				rep.OpFailures++
				if recovered {
					rep.FailedAfterRecovery++
				}
				if !recoverOrDie(svc, &rep) {
					return finish()
				}
				recovered = true
				recoveredThisRound = true
			}
		}
		if recoveredThisRound {
			continue
		}
		if err := svc.Commit(); err != nil {
			rep.OpFailures++
			if recovered {
				rep.FailedAfterRecovery++
			}
			// Recover replays the staged writes of the failed round and
			// commits them itself, standing in for this round's commit.
			if !recoverOrDie(svc, &rep) {
				return finish()
			}
			recovered = true
		}
	}
	// Final flush: every rank commits once more so writes staged after a
	// skipped boundary are sealed before verification.
	if err := svc.Commit(); err != nil {
		if recovered {
			rep.FailedAfterRecovery++
		}
		if !recoverOrDie(svc, &rep) {
			return finish()
		}
	}

	lost, verr := svc.Verify()
	rep.LostWrites = lost
	if verr != nil {
		rep.VerifyErr = verr.Error()
	}
	rep.GetNS = getNS.Snapshot()
	rep.PutNS = putNS.Snapshot()
	rep.SojournNS = sojournNS.Snapshot()
	return finish()
}
