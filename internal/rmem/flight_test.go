package rmem

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"scimpich/internal/mpi"
	"scimpich/internal/obs/flight"
)

// flightConfig is testConfig with a flight recorder attached, returning
// both. When FLIGHT_DUMP_DIR is set (CI does this on the failover jobs),
// the recorder also arms a dump file named after the test and seed, so a
// failing job leaves a post-mortem artifact behind.
func flightConfig(t *testing.T, seed uint64) (mpi.Config, *flight.Recorder) {
	t.Helper()
	cfg := testConfig(churnPlan(seed))
	rec := flight.New(512)
	cfg.Flight = rec
	if dir := os.Getenv("FLIGHT_DUMP_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatalf("FLIGHT_DUMP_DIR: %v", err)
		}
		rec.SetDumpPath(filepath.Join(dir, fmt.Sprintf("%s-seed%d.json", t.Name(), seed)))
	}
	return cfg, rec
}

// TestFlightDumpDeterministic pins the dump encoding: two runs of the same
// seeded churn workload must produce byte-identical flight dumps — the
// recorder sees only virtual times and protocol values, and the dump
// encoding is canonical. This is what makes a CI flight-dump artifact
// reproducible locally from just the seed.
func TestFlightDumpDeterministic(t *testing.T) {
	run := func() []byte {
		cfg, rec := flightConfig(t, *faultSeed)
		var buf bytes.Buffer
		rec.SetDumpSink(func(d *flight.Dump) {
			if err := d.WriteJSON(&buf); err != nil {
				t.Fatalf("WriteJSON: %v", err)
			}
		})
		RunWorkload(cfg, DefaultConfig(), DefaultWorkload())
		if buf.Len() == 0 {
			// The churn plan produces typed errors; if none fired, the
			// crash was absorbed silently and the test premise is gone.
			t.Fatal("churn run produced no failure dump")
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("same-seed flight dumps differ (%d vs %d bytes)", len(a), len(b))
	}

	// The dump is analyzable: the crash of node1 is visible to the
	// analyzer, and the chain reaches the first typed error.
	d, err := flight.ReadDump(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if nd := d.Actor("node1"); nd == nil || len(nd.Events) == 0 {
		t.Error("dump lacks node1's crash event")
	}
	rep := flight.Analyze(d)
	if len(rep.Chain) == 0 {
		t.Error("no causal chain in the churn dump")
	}
}
