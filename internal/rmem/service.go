// Package rmem is a replicated remote-memory (key/value paging) service
// built on the one-sided communication layer: every rank exports a window
// holding a set of shards, each shard is replicated on a primary and a
// backup rank, and clients deposit and fetch fixed-size slots with MPI_Put
// and MPI_Get. Commits use the epoch protocol of the fence synchronization
// — a FenceChecked delivers all staged deposits at both replicas, then an
// MPI_Accumulate(MAX) stamps the replicas' per-shard epoch registers.
//
// The service survives node crashes: when an operation or fence fails, the
// survivors agree on the shrunken membership (Comm.ShrinkChecked), abandon
// the old window, rebind the one-sided engine on the new communicator,
// recompute shard placement, and re-replicate every shard from its
// surviving replica before resuming. Staged-but-uncommitted writes are
// replayed from the origin after re-replication, so a committed write is
// never lost and an acknowledged commit survives the crash of either
// replica holder.
package rmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
	"scimpich/internal/obs"
	"scimpich/internal/obs/flight"
	"scimpich/internal/osc"
)

// Config shapes the shard layout of the service. The key space is exactly
// Shards*SlotsPerShard keys: key k lives in shard k%Shards at slot
// (k/Shards)%SlotsPerShard, so distinct keys never alias a slot.
type Config struct {
	// Shards is the number of replicated shard regions.
	Shards int
	// SlotsPerShard is the number of fixed-size value slots per shard.
	SlotsPerShard int
	// ValBytes is the value payload size of a slot.
	ValBytes int64
	// OSC is the transfer policy of the underlying window; SyncTimeout
	// (or mpi.AutoTimeout) bounds every handler round trip and fence.
	OSC osc.Config
}

// DefaultConfig is the calibrated service layout: 8 shards of 32 slots of
// 32-byte values (a 256-key space), with every watchdog on the scaled
// automatic bound.
func DefaultConfig() Config {
	oc := osc.DefaultConfig()
	oc.SyncTimeout = mpi.AutoTimeout
	return Config{Shards: 8, SlotsPerShard: 32, ValBytes: 32, OSC: oc}
}

// Keys returns the size of the exact key space.
func (c Config) Keys() int64 { return int64(c.Shards * c.SlotsPerShard) }

// slotHeader is the per-slot metadata: the origin's sequence number and the
// key, so a fetch can detect an empty or foreign slot.
const slotHeader = 16

func (c Config) slotBytes() int64  { return slotHeader + c.ValBytes }
func (c Config) shardBytes() int64 { return 8 + int64(c.SlotsPerShard)*c.slotBytes() }
func (c Config) winBytes() int64   { return int64(c.Shards) * c.shardBytes() }

// ErrShardLost reports a shard whose primary and backup both crashed before
// re-replication could re-home it — data loss the protocol cannot mask.
type ErrShardLost struct{ Shard int }

func (e ErrShardLost) Error() string {
	return fmt.Sprintf("rmem: shard %d lost both replicas", e.Shard)
}

// pendingWrite is a staged, not-yet-committed deposit held at the origin
// for replay across a failover.
type pendingWrite struct {
	seq int64
	val []byte
}

// Service is one rank's handle on the replicated store. All ranks of the
// communicator are symmetric: each serves its window shards and runs its
// own client operations.
type Service struct {
	cfg Config
	c   *mpi.Comm
	sys *osc.System
	seg *mpi.SharedSeg
	win *osc.Win

	// ranks holds the current group membership as world ranks; placement
	// is computed from it and it is the "previous membership" input of the
	// next re-replication.
	ranks []int

	epoch   int64
	nextSeq int64
	pending map[int64]*pendingWrite
	// committed is the origin-side ledger: key -> last acknowledged
	// sequence number. Verification reads every entry back through the
	// window and any mismatch is a lost committed write.
	committed map[int64]int64
	touched   map[int]bool

	// Failovers counts completed recoveries on this rank; LostShards
	// counts shards that lost both replicas (zero under single crashes).
	Failovers  int
	LostShards int

	// fl is the owning rank's flight-recorder ring (nil-safe); the service
	// records its stage/commit/replay protocol on the rank's timeline.
	fl *flight.Ring
	// putBytes and commitStaged are unit-tagged distribution metrics (nil
	// without a registry): deposited value sizes and staged writes per
	// commit.
	putBytes     *obs.Histogram
	commitStaged *obs.Histogram
}

// New collectively creates the service over the communicator and opens the
// first access epoch. Every rank must call it.
func New(c *mpi.Comm, cfg Config) (*Service, error) {
	s := &Service{
		cfg:       cfg,
		c:         c,
		sys:       osc.NewSystem(c),
		seg:       c.AllocShared(cfg.winBytes()),
		pending:   make(map[int64]*pendingWrite),
		committed: make(map[int64]int64),
		touched:   make(map[int]bool),

		fl:           c.FlightRing(),
		putBytes:     c.Metrics().HistogramUnit("rmem.put.bytes", obs.UnitBytes),
		commitStaged: c.Metrics().HistogramUnit("rmem.commit.staged", obs.UnitCount),
	}
	s.ranks = groupWorlds(c)
	s.win = s.sys.CreateShared(s.seg, cfg.OSC)
	if err := s.win.FenceChecked(); err != nil {
		return nil, err
	}
	return s, nil
}

func groupWorlds(c *mpi.Comm) []int {
	out := make([]int, c.Size())
	for i := range out {
		out[i] = c.GroupToWorld(i)
	}
	return out
}

// Comm returns the service's current (possibly shrunken) communicator.
func (s *Service) Comm() *mpi.Comm { return s.c }

// primary and backup return the group ranks holding shard sh under the
// current membership; the two are distinct whenever the group has at least
// two members.
func (s *Service) primary(sh int) int { return sh % s.c.Size() }
func (s *Service) backup(sh int) int  { return (sh + 1) % s.c.Size() }

func (s *Service) shardOf(key int64) int { return int(key % int64(s.cfg.Shards)) }

func (s *Service) slotOff(key int64) int64 {
	sh := s.shardOf(key)
	slot := (key / int64(s.cfg.Shards)) % int64(s.cfg.SlotsPerShard)
	return int64(sh)*s.cfg.shardBytes() + 8 + slot*s.cfg.slotBytes()
}

// Put stages a deposit of val under key: the slot (sequence number, key,
// value) is written to both replicas of the key's shard and remembered for
// replay until the next successful Commit. Each key must be written only by
// its owning origin (the workload partitions the key space); concurrent
// writers to one key would race on the slot.
func (s *Service) Put(key int64, val []byte) error {
	if int64(len(val)) > s.cfg.ValBytes {
		panic(fmt.Sprintf("rmem: value of %d bytes exceeds slot payload %d", len(val), s.cfg.ValBytes))
	}
	s.nextSeq++
	slot := make([]byte, s.cfg.slotBytes())
	binary.LittleEndian.PutUint64(slot[0:], uint64(s.nextSeq))
	binary.LittleEndian.PutUint64(slot[8:], uint64(key))
	copy(slot[slotHeader:], val)
	sh := s.shardOf(key)
	off := s.slotOff(key)
	for _, tgt := range []int{s.primary(sh), s.backup(sh)} {
		if err := s.win.PutChecked(slot, len(slot), datatype.Byte, tgt, off); err != nil {
			return err
		}
	}
	s.pending[key] = &pendingWrite{seq: s.nextSeq, val: append([]byte(nil), val...)}
	s.touched[sh] = true
	s.fl.Record(s.c.Proc().Now(), flight.KPutStage, key, s.nextSeq, int64(sh), 0)
	s.putBytes.Observe(int64(len(val)))
	return nil
}

// Get fetches the slot of key from the shard's primary. It returns the
// stored sequence number (zero for a never-written slot) and copies the
// value payload into val when the slot holds the requested key.
func (s *Service) Get(key int64, val []byte) (int64, error) {
	slot := make([]byte, s.cfg.slotBytes())
	if err := s.win.GetChecked(slot, len(slot), datatype.Byte, s.primary(s.shardOf(key)), s.slotOff(key)); err != nil {
		return 0, err
	}
	seq := int64(binary.LittleEndian.Uint64(slot[0:]))
	gotKey := int64(binary.LittleEndian.Uint64(slot[8:]))
	if seq == 0 || gotKey != key {
		return 0, nil
	}
	copy(val, slot[slotHeader:])
	return seq, nil
}

// Commit closes the epoch: the fence delivers every staged deposit at both
// replicas, then the per-shard epoch registers of every touched shard are
// stamped with the new epoch number (Accumulate MAX — the paper's atomic
// handler-side read-modify-write). Only after both steps are the staged
// writes acknowledged into the committed ledger. Commit is collective: all
// live ranks fence together.
func (s *Service) Commit() error {
	if err := s.win.FenceChecked(); err != nil {
		return err
	}
	next := s.epoch + 1
	var stamp [8]byte
	binary.LittleEndian.PutUint64(stamp[:], uint64(next))
	for _, sh := range sortedShards(s.touched) {
		for _, tgt := range []int{s.primary(sh), s.backup(sh)} {
			if err := s.win.AccumulateChecked(stamp[:], 1, datatype.Int64, mpi.OpMax, tgt, int64(sh)*s.cfg.shardBytes()); err != nil {
				return err
			}
			s.fl.Record(s.c.Proc().Now(), flight.KEpochStamp, int64(sh), next, int64(s.c.GroupToWorld(tgt)), 0)
		}
	}
	s.epoch = next
	staged := int64(len(s.pending))
	for key, pw := range s.pending {
		s.committed[key] = pw.seq
	}
	s.pending = make(map[int64]*pendingWrite)
	s.touched = make(map[int]bool)
	s.fl.Record(s.c.Proc().Now(), flight.KCommit, next, staged, 0, 0)
	s.commitStaged.Observe(staged)
	return nil
}

// sortedShards returns the touched shard ids in deterministic order (map
// iteration order would perturb the simulated timeline).
func sortedShards(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for sh := range m {
		out = append(out, sh)
	}
	sort.Ints(out)
	return out
}

func sortedKeys(m map[int64]*pendingWrite) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Recover is the failover path, called after any operation or commit
// returned an error. All surviving ranks must call it (they all observe the
// failure: direct operations fail fast on the dead node, fences expire).
// It agrees on the shrunken membership, rebuilds the window over the new
// communicator, re-homes every shard from its surviving replica, replays
// this origin's staged writes and commits them. On a rank that was itself
// revoked it returns the *mpi.RevokedRankError — that rank must stop.
func (s *Service) Recover() error {
	err := s.recover()
	if err != nil {
		s.fl.Fail(s.c.Proc().Now(), flight.OpRecover, -1, err)
	}
	return err
}

func (s *Service) recover() error {
	nc, err := s.c.ShrinkChecked()
	if err != nil {
		return err
	}
	prev := s.ranks
	s.win.Abandon()
	s.sys.Rebind(nc)
	s.c = nc
	s.ranks = groupWorlds(nc)
	// Same backing segment, fresh window over the new communicator: local
	// shard contents survive in place, only the remote views and the
	// exchange are rebuilt (the old window id is never reused, so stale
	// requests are refused, not misdelivered).
	s.win = s.sys.CreateShared(s.seg, s.cfg.OSC)
	if err := s.win.FenceChecked(); err != nil {
		return err
	}
	if err := s.rereplicate(prev); err != nil {
		return err
	}
	if err := s.win.FenceChecked(); err != nil {
		return err
	}
	for _, key := range sortedKeys(s.pending) {
		pw := s.pending[key]
		sh := s.shardOf(key)
		s.fl.Record(s.c.Proc().Now(), flight.KReplay, key, pw.seq, int64(sh), 0)
		slot := make([]byte, s.cfg.slotBytes())
		binary.LittleEndian.PutUint64(slot[0:], uint64(pw.seq))
		binary.LittleEndian.PutUint64(slot[8:], uint64(key))
		copy(slot[slotHeader:], pw.val)
		for _, tgt := range []int{s.primary(sh), s.backup(sh)} {
			if err := s.win.PutChecked(slot, len(slot), datatype.Byte, tgt, s.slotOff(key)); err != nil {
				return err
			}
		}
		s.touched[sh] = true
	}
	if err := s.Commit(); err != nil {
		return err
	}
	s.Failovers++
	return nil
}

// rereplicate re-homes every shard under the new membership: for each
// shard, the surviving holder of the old placement (the old primary, or the
// old backup if the primary died) pushes the whole shard region — epoch
// register and slots — to the shard's new primary and backup. Shards whose
// both old holders died are counted in LostShards.
func (s *Service) rereplicate(prev []int) error {
	alive := make(map[int]bool, len(s.ranks))
	for _, w := range s.ranks {
		alive[w] = true
	}
	me := s.c.WorldRank()
	for sh := 0; sh < s.cfg.Shards; sh++ {
		oldP := prev[sh%len(prev)]
		oldB := prev[(sh+1)%len(prev)]
		holder := -1
		switch {
		case alive[oldP]:
			holder = oldP
		case alive[oldB]:
			holder = oldB
		default:
			s.LostShards++
			continue
		}
		if holder != me {
			continue
		}
		off := int64(sh) * s.cfg.shardBytes()
		region := s.seg.Bytes()[off : off+s.cfg.shardBytes()]
		for _, tgt := range []int{s.primary(sh), s.backup(sh)} {
			if err := s.win.PutChecked(region, len(region), datatype.Byte, tgt, off); err != nil {
				return err
			}
		}
	}
	return nil
}

// Verify reads every entry of the committed ledger back through the window
// (from each key's current primary) and returns the number of committed
// writes the store no longer serves — the headline durability gate, which
// must be zero.
func (s *Service) Verify() (lost int64, err error) {
	keys := make([]int64, 0, len(s.committed))
	for k := range s.committed {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	val := make([]byte, s.cfg.ValBytes)
	for _, key := range keys {
		seq, gerr := s.Get(key, val)
		if gerr != nil {
			return lost, gerr
		}
		if seq != s.committed[key] {
			lost++
			s.fl.Record(s.c.Proc().Now(), flight.KWriteLost, key, s.committed[key], seq, 0)
		}
	}
	return lost, nil
}

// CommittedCount returns the size of this origin's committed ledger.
func (s *Service) CommittedCount() int { return len(s.committed) }

// Epoch returns the service's current commit epoch.
func (s *Service) Epoch() int64 { return s.epoch }

// IsRevoked reports whether err is the typed revocation error a crashed
// rank receives from its own Recover.
func IsRevoked(err error) bool {
	var rev *mpi.RevokedRankError
	return errors.As(err, &rev)
}
