package rmem

import (
	"flag"
	"testing"
	"time"

	"scimpich/internal/fault"
	"scimpich/internal/mpi"
)

var faultSeed = flag.Uint64("fault.seed", 42, "seed for the fault-injection plans of the failover tests")

// testConfig is a 4-node world with every watchdog on the scaled automatic
// bound and the given fault plan attached.
func testConfig(plan *fault.Plan) mpi.Config {
	cfg := mpi.DefaultConfig(4, 1)
	cfg.SCI.Fault = plan
	cfg.Protocol.CollTimeout = mpi.AutoTimeout
	cfg.Protocol.RendezvousTimeout = mpi.AutoTimeout
	return cfg
}

// crashAt is the fault-plan instant of the failover scenarios: mid-workload,
// several commit rounds in.
const crashAt = 5200 * time.Microsecond

func churnPlan(seed uint64) *fault.Plan {
	return fault.New(seed).CrashNode(1, crashAt)
}

func TestPutGetCommitNoFaults(t *testing.T) {
	wl := DefaultWorkload()
	wl.Rounds = 6
	reports, _ := RunWorkload(testConfig(fault.New(*faultSeed)), DefaultConfig(), wl)
	for _, r := range reports {
		if r.Died || r.RecoverErr != "" || r.VerifyErr != "" {
			t.Fatalf("rank %d: died=%v recoverErr=%q verifyErr=%q", r.Rank, r.Died, r.RecoverErr, r.VerifyErr)
		}
		if r.OpFailures != 0 || r.LostWrites != 0 || r.Failovers != 0 {
			t.Errorf("rank %d: failures=%d lost=%d failovers=%d on a crash-free run",
				r.Rank, r.OpFailures, r.LostWrites, r.Failovers)
		}
		if r.Committed == 0 || r.PutOK == 0 || r.GetOK == 0 {
			t.Errorf("rank %d: empty run: committed=%d puts=%d gets=%d", r.Rank, r.Committed, r.PutOK, r.GetOK)
		}
	}
}

// TestFailoverClaims is the headline acceptance test: a primary-holding node
// crashes mid-workload, the survivors agree on the shrunken world, promote
// and re-replicate, and the service keeps serving. Gates: no committed write
// is lost, no shard loses both replicas, no client operation fails after
// the failover completed, and the p99 get service time under churn stays
// within 3x of the crash-free baseline.
func TestFailoverClaims(t *testing.T) {
	wl := DefaultWorkload()
	base, _ := RunWorkload(testConfig(fault.New(*faultSeed)), DefaultConfig(), wl)
	churnCfg, _ := flightConfig(t, *faultSeed)
	churn, _ := RunWorkload(churnCfg, DefaultConfig(), wl)

	var baseP99, churnP99 int64
	for _, r := range base {
		if r.OpFailures != 0 || r.Died {
			t.Fatalf("baseline rank %d saw failures", r.Rank)
		}
		if p := r.GetNS.P99; p > baseP99 {
			baseP99 = p
		}
	}
	if !churn[1].Died {
		t.Fatalf("crashed rank 1 did not observe its own revocation: %+v", churn[1])
	}
	for _, me := range []int{0, 2, 3} {
		r := churn[me]
		if r.Died || r.RecoverErr != "" || r.VerifyErr != "" {
			t.Fatalf("survivor %d: died=%v recoverErr=%q verifyErr=%q", me, r.Died, r.RecoverErr, r.VerifyErr)
		}
		if r.Failovers != 1 {
			t.Errorf("survivor %d: %d failovers, want 1", me, r.Failovers)
		}
		if r.LostShards != 0 {
			t.Errorf("survivor %d: %d shards lost both replicas", me, r.LostShards)
		}
		if r.LostWrites != 0 {
			t.Errorf("survivor %d: %d committed writes lost", me, r.LostWrites)
		}
		if r.FailedAfterRecovery != 0 {
			t.Errorf("survivor %d: %d operations failed after the failover epoch", me, r.FailedAfterRecovery)
		}
		if len(r.Survivors) != 3 || r.Survivors[0] != 0 || r.Survivors[1] != 2 || r.Survivors[2] != 3 {
			t.Errorf("survivor %d: final membership %v, want [0 2 3]", me, r.Survivors)
		}
		if r.OpFailures == 0 {
			t.Errorf("survivor %d observed no failures at all — crash not exercised", me)
		}
		if p := r.GetNS.P99; p > churnP99 {
			churnP99 = p
		}
	}
	if baseP99 <= 0 {
		t.Fatalf("baseline p99 not measured")
	}
	if churnP99 > 3*baseP99 {
		t.Errorf("churn get p99 %v exceeds 3x crash-free baseline %v",
			time.Duration(churnP99), time.Duration(baseP99))
	}
}

// TestFailoverDeterministicPerSeed replays the identical churn scenario
// twice: the virtual end time and every per-rank outcome must match bit for
// bit (the recovery protocol introduces no hidden nondeterminism).
func TestFailoverDeterministicPerSeed(t *testing.T) {
	run := func() ([]RankReport, time.Duration) {
		wl := DefaultWorkload()
		cfg, _ := flightConfig(t, *faultSeed)
		return RunWorkload(cfg, DefaultConfig(), wl)
	}
	rep1, end1 := run()
	rep2, end2 := run()
	if end1 != end2 {
		t.Fatalf("non-deterministic failover: end times %v vs %v", end1, end2)
	}
	for me := range rep1 {
		a, b := rep1[me], rep2[me]
		if a.Died != b.Died || a.Failovers != b.Failovers || a.Committed != b.Committed ||
			a.GetOK != b.GetOK || a.PutOK != b.PutOK || a.OpFailures != b.OpFailures ||
			a.LostWrites != b.LostWrites {
			t.Errorf("rank %d: runs diverged:\n  %+v\n  %+v", me, a, b)
		}
	}
}

// TestShardLayout pins the key-to-slot mapping: the key space exactly fills
// the slots, so no two keys alias.
func TestShardLayout(t *testing.T) {
	cfg := DefaultConfig()
	s := &Service{cfg: cfg}
	seen := make(map[int64]int64)
	for key := int64(0); key < cfg.Keys(); key++ {
		off := s.slotOff(key)
		if prev, dup := seen[off]; dup {
			t.Fatalf("keys %d and %d alias slot offset %d", prev, key, off)
		}
		seen[off] = key
		if off < 0 || off+cfg.slotBytes() > cfg.winBytes() {
			t.Fatalf("key %d: slot [%d, %d) outside window of %d bytes", key, off, off+cfg.slotBytes(), cfg.winBytes())
		}
	}
}
