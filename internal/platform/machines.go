package platform

import (
	"time"
)

// The comparator machines (paper Table 1 and §5.3), with curves calibrated
// to the published observations. Absolute numbers are representative of the
// era's hardware; the reproduced quantities are the relations the paper
// reports (efficiency plateaus, crossovers, scaling knees).

// CrayT3E models the T3E-1200 with Cray MPI.
//
// Figure 10: "reaches an efficiency of about 1 for blocksizes between 8 and
// 32 kiB, but has a very low efficiency for very small (< 4 kiB) and big
// (> 32 kiB) blocksizes". Figure 11/12: good one-sided performance, "uneven,
// but regular bandwidth characteristics constant for up to 32 processes".
func CrayT3E() *Platform {
	return &Platform{
		ID: "C", Machine: "Cray T3E-1200", Interconnect: "custom", MPI: "Cray",
		OneSided: true, MaxProcs: 32,
		Latency: 14 * time.Microsecond, Bandwidth: 330 * MiB,
		MemBW: 600 * MiB, BlockCost: 150 * time.Nanosecond,
		ncEfficiency: func(bs int64) float64 {
			switch {
			case bs < 512:
				return 0.06 + 0.10*float64(bs)/512
			case bs < 4096:
				return 0.16 + 0.24*float64(bs-512)/3584
			case bs < 8192:
				return 0.40 + 0.55*float64(bs-4096)/4096
			case bs <= 32768:
				return 0.98
			default:
				return 0.30
			}
		},
		OSAccessCost: 2 * time.Microsecond, OSPeakBW: 310 * MiB,
		osModulate: unevenButRegular,
		scaling: func(p int, accessSize int64) float64 {
			_, bw := (&Platform{OneSided: true, OSAccessCost: 2 * time.Microsecond,
				OSPeakBW: 310 * MiB, osModulate: unevenButRegular}).Sparse(accessSize)
			return bw // constant per process up to 32
		},
	}
}

// unevenButRegular reproduces the T3E's sawtooth bandwidth curve: E-register
// transfers favour particular access granularities.
func unevenButRegular(accessSize int64, bw float64) float64 {
	if log2(accessSize)%2 == 0 {
		return bw * 1.15
	}
	return bw * 0.75
}

func log2(v int64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// SunFireShm models the Sun Fire 6800 (24-way SMP, 750 MHz) with Sun HPC
// 3.1 over shared memory.
//
// Figure 10: "a very constant efficiency, which jumps from 0.5 to 1 for
// blocksizes of 16k and above". Figure 11: "very good performance for
// shared memory". Figure 12: "scale better, but even its bandwidth declines
// notably for more than 6 active processes".
func SunFireShm() *Platform {
	return &Platform{
		ID: "F-s", Machine: "Sun Fire 6800", Interconnect: "shared memory", MPI: "Sun HPC 3.1",
		OneSided: true, MaxProcs: 24,
		Latency: 3 * time.Microsecond, Bandwidth: 580 * MiB,
		MemBW: 900 * MiB, BlockCost: 90 * time.Nanosecond,
		ncEfficiency: func(bs int64) float64 {
			if bs >= 16<<10 {
				return 1.0
			}
			return 0.5
		},
		OSAccessCost: 900 * time.Nanosecond, OSPeakBW: 520 * MiB,
		scaling: func(p int, accessSize int64) float64 {
			base := 520.0 * MiB * float64(accessSize) /
				(float64(accessSize) + 900e-9*520*MiB)
			if p <= 6 {
				return base
			}
			// Backplane contention beyond 6 active processors.
			return base / (1 + 0.18*float64(p-6))
		},
	}
}

// SunFireGigabit models the same machine over Gigabit Ethernet (Sun MPI
// does not support one-sided communication there; Myrinet was "installed,
// but not yet available").
func SunFireGigabit() *Platform {
	return &Platform{
		ID: "F-G", Machine: "Sun Fire 6800", Interconnect: "Gigabit Ethernet", MPI: "Sun HPC 3.1",
		OneSided: false, MaxProcs: 24,
		Latency: 55 * time.Microsecond, Bandwidth: 46 * MiB,
		MemBW: 900 * MiB, BlockCost: 90 * time.Nanosecond,
	}
}

// LAMFastEthernet models the Pentium III Xeon quad-SMP cluster with LAM
// 6.5.4 over fast ethernet.
//
// Figure 11: "it has very high latencies and gives a maximum of 10 MiB
// bandwidth via fast ethernet".
func LAMFastEthernet() *Platform {
	return &Platform{
		ID: "X-f", Machine: "Pentium III Xeon quad SMP", Interconnect: "fast ethernet", MPI: "LAM 6.5.4",
		OneSided: true, MaxProcs: 8,
		Latency: 75 * time.Microsecond, Bandwidth: 10.5 * MiB,
		MemBW: 350 * MiB, BlockCost: 100 * time.Nanosecond,
		OSAccessCost: 160 * time.Microsecond, OSPeakBW: 10 * MiB,
	}
}

// LAMShm models LAM over shared memory on the quad Xeon (550 MHz).
//
// Figure 11: "the performance of the shared memory implementation is a
// little bit lower than SCI-MPICH via SCI"; only MPI_Get — MPI_Put
// deadlocked. Figure 12: "platforms with an inferior memory system design
// like the 4-way Xeon SMP scale very badly for coarse-grained accesses and
// deliver a bandwidth below the SCI-connected system".
func LAMShm() *Platform {
	return &Platform{
		ID: "X-s", Machine: "Pentium III Xeon quad SMP", Interconnect: "shared memory", MPI: "LAM 6.5.4",
		OneSided: true, GetOnly: true, MaxProcs: 4,
		Latency: 6 * time.Microsecond, Bandwidth: 170 * MiB,
		MemBW: 350 * MiB, BlockCost: 100 * time.Nanosecond,
		OSAccessCost: 2500 * time.Nanosecond, OSPeakBW: 105 * MiB,
		scaling: func(p int, accessSize int64) float64 {
			per := 2500e-9 + float64(accessSize)/(105*MiB)
			base := float64(accessSize) / per
			if accessSize >= 4096 {
				// Coarse-grained accesses saturate the shared bus almost
				// immediately.
				return base / (1 + 0.85*float64(p-1))
			}
			if p <= 2 {
				return base
			}
			return base / (1 + 0.35*float64(p-2))
		},
	}
}

// SCoreMyrinet models the Pentium II dual-SMP cluster with SCore 2.4.1 over
// Myrinet 1280 (no one-sided support).
func SCoreMyrinet() *Platform {
	return &Platform{
		ID: "S-M", Machine: "Pentium II dual SMP", Interconnect: "Myrinet 1280", MPI: "SCore 2.4.1",
		OneSided: false, MaxProcs: 16,
		Latency: 16 * time.Microsecond, Bandwidth: 105 * MiB,
		MemBW: 220 * MiB, BlockCost: 120 * time.Nanosecond,
	}
}

// SCoreShm models SCore over shared memory on the dual Pentium II 400.
func SCoreShm() *Platform {
	return &Platform{
		ID: "S-s", Machine: "Pentium II dual SMP", Interconnect: "shared memory", MPI: "SCore 2.4.1",
		OneSided: false, MaxProcs: 2,
		Latency: 4 * time.Microsecond, Bandwidth: 130 * MiB,
		MemBW: 220 * MiB, BlockCost: 120 * time.Nanosecond,
	}
}

// GiganetVIA models the one-sided implementation of [15] (Golebiewski &
// Träff) on a Giganet SMP cluster, the reference point of §5.3: "for 1024
// bytes, it's about a factor 3 (compared with one-sided communication via
// messages on SCI) up to a factor of 15 (compared with direct SCI put)
// slower than using the presented solution via SCI".
func GiganetVIA() *Platform {
	return &Platform{
		ID: "VIA", Machine: "Giganet SMP cluster", Interconnect: "VIA", MPI: "NEC MPI-2 port",
		OneSided: true, MaxProcs: 8,
		Latency: 30 * time.Microsecond, Bandwidth: 85 * MiB,
		MemBW: 350 * MiB, BlockCost: 100 * time.Nanosecond,
		OSAccessCost: 85 * time.Microsecond, OSPeakBW: 70 * MiB,
	}
}

// All returns the comparator set in Table 1 order (plus the VIA reference).
// The SCI-MPICH rows (M-S, M-s) run on the real simulated stack and are
// added by the benchmark harness.
func All() []*Platform {
	return []*Platform{
		CrayT3E(),
		SunFireGigabit(),
		SunFireShm(),
		LAMFastEthernet(),
		LAMShm(),
		SCoreMyrinet(),
		SCoreShm(),
		GiganetVIA(),
	}
}
