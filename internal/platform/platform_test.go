package platform

import (
	"testing"
)

func TestT3ENoncontigEfficiencyShape(t *testing.T) {
	// Paper: efficiency ~1 for 8-32 kiB, very low for <4 kiB and >32 kiB.
	pl := CrayT3E()
	eff := func(bs int64) float64 {
		nc, c := pl.NoncontigBW(bs, 256<<10)
		return nc / c
	}
	if e := eff(16 << 10); e < 0.9 {
		t.Errorf("T3E efficiency at 16kiB = %.2f, want ~1", e)
	}
	if e := eff(1 << 10); e > 0.4 {
		t.Errorf("T3E efficiency at 1kiB = %.2f, want low", e)
	}
	if e := eff(64 << 10); e > 0.4 {
		t.Errorf("T3E efficiency at 64kiB = %.2f, want low", e)
	}
}

func TestSunShmEfficiencyJump(t *testing.T) {
	pl := SunFireShm()
	ncLow, cLow := pl.NoncontigBW(8<<10, 256<<10)
	ncHigh, cHigh := pl.NoncontigBW(16<<10, 256<<10)
	if r := ncLow / cLow; r < 0.45 || r > 0.55 {
		t.Errorf("Sun shm efficiency below 16k = %.2f, want ~0.5", r)
	}
	if r := ncHigh / cHigh; r < 0.95 {
		t.Errorf("Sun shm efficiency at 16k = %.2f, want ~1", r)
	}
}

func TestGenericPlatformsDegradeForSmallBlocks(t *testing.T) {
	for _, pl := range []*Platform{SunFireGigabit(), LAMFastEthernet(), SCoreMyrinet(), SCoreShm()} {
		ncSmall, c := pl.NoncontigBW(16, 256<<10)
		ncBig, _ := pl.NoncontigBW(32<<10, 256<<10)
		if ncSmall >= ncBig {
			t.Errorf("%s: 16B-block nc bw %.1f not below 32kiB-block %.1f", pl.ID, ncSmall/MiB, ncBig/MiB)
		}
		if ncBig > c {
			t.Errorf("%s: nc bw %.1f exceeds contiguous %.1f", pl.ID, ncBig/MiB, c/MiB)
		}
	}
}

func TestLAMEthernetOneSidedIsSlow(t *testing.T) {
	// Paper: very high latencies, max 10 MiB/s.
	pl := LAMFastEthernet()
	lat, bw := pl.Sparse(64)
	if lat < 100e3 { // 100 µs in ns
		t.Errorf("LAM one-sided 64B latency = %v, want very high", lat)
	}
	_, bwBig := pl.Sparse(64 << 10)
	if bwBig > 10*MiB*1.05 {
		t.Errorf("LAM one-sided peak = %.1f MiB/s, want <= ~10", bwBig/MiB)
	}
	_ = bw
}

func TestVIAIsSlowerThanSCIReference(t *testing.T) {
	// §5.3: at 1024 B, VIA is ~3x slower than one-sided via messages on
	// SCI (~30 µs there) and ~15x slower than a direct SCI put (~6 µs).
	lat, _ := GiganetVIA().Sparse(1024)
	us := lat.Seconds() * 1e6
	if us < 60 || us > 130 {
		t.Errorf("VIA 1024B one-sided latency = %.1f µs, want ~85-100 (3x/15x factors)", us)
	}
}

func TestT3EScalingFlat(t *testing.T) {
	pl := CrayT3E()
	b2 := pl.Scaling(2, 4096)
	b32 := pl.Scaling(32, 4096)
	if b2 <= 0 || b32 <= 0 {
		t.Fatal("T3E scaling unsupported")
	}
	if b32 < b2*0.95 || b32 > b2*1.05 {
		t.Errorf("T3E per-proc bw at 32 procs (%.1f) deviates from 2 procs (%.1f)", b32/MiB, b2/MiB)
	}
	if pl.Scaling(33, 4096) != 0 {
		t.Error("T3E should cap at 32 procs")
	}
}

func TestSunFireScalingKneeAt6(t *testing.T) {
	pl := SunFireShm()
	b6 := pl.Scaling(6, 4096)
	b12 := pl.Scaling(12, 4096)
	if b6 != pl.Scaling(2, 4096) {
		t.Errorf("Sun Fire declines before 6 procs")
	}
	if b12 >= b6*0.8 {
		t.Errorf("Sun Fire per-proc bw at 12 procs (%.1f) should decline notably from 6 (%.1f)", b12/MiB, b6/MiB)
	}
}

func TestXeonScalesBadlyCoarseGrained(t *testing.T) {
	// Figure 12: below the SCI system (~120 MiB/s per node) for coarse
	// accesses with all 4 processors active.
	pl := LAMShm()
	coarse := pl.Scaling(4, 64<<10)
	if coarse >= 60*MiB {
		t.Errorf("4-way Xeon coarse-grained per-proc bw = %.1f MiB/s, want well below SCI's ~120", coarse/MiB)
	}
	fine := pl.Scaling(1, 64)
	if fine <= 0 {
		t.Error("fine-grained single-proc bandwidth missing")
	}
}

func TestT3EUnevenButRegular(t *testing.T) {
	pl := CrayT3E()
	_, a := pl.Sparse(1024)
	_, b := pl.Sparse(2048)
	_, c := pl.Sparse(4096)
	if (a > b) == (b > c) {
		t.Errorf("T3E bandwidth not alternating (sawtooth): %v %v %v", a/MiB, b/MiB, c/MiB)
	}
}

func TestNoOneSidedPlatformsReturnZero(t *testing.T) {
	for _, pl := range []*Platform{SunFireGigabit(), SCoreMyrinet(), SCoreShm()} {
		if lat, bw := pl.Sparse(1024); lat != 0 || bw != 0 {
			t.Errorf("%s: one-sided results on unsupported platform", pl.ID)
		}
	}
}

func TestAllTable(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("comparator set has %d platforms, want 8", len(all))
	}
	seen := map[string]bool{}
	for _, pl := range all {
		if pl.ID == "" || pl.Machine == "" || pl.MPI == "" {
			t.Errorf("incomplete platform row: %+v", pl)
		}
		if seen[pl.ID] {
			t.Errorf("duplicate platform id %s", pl.ID)
		}
		seen[pl.ID] = true
	}
	if !seen["X-s"] || !All()[4].GetOnly {
		t.Error("LAM shm must be marked get-only (MPI_Put deadlocked)")
	}
}
