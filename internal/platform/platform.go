// Package platform provides calibrated analytic models of the comparator
// machines of the paper's Table 1, used to regenerate the cross-platform
// comparisons of Figures 10, 11 and 12. The SCI-MPICH rows (M-S, M-s) are
// not modelled here — the benchmarks run them on the real simulated stack —
// but every other machine (Cray T3E, Sun Fire 6800, LAM clusters, SCore
// Myrinet, plus the VIA reference point of [15]) is a parameterized model
// whose curves reproduce the published shapes: who wins, by what factor,
// and where the crossovers lie.
package platform

import (
	"time"
)

// MiB is one mebibyte.
const MiB = 1 << 20

// Platform describes one comparator machine/MPI combination (a row of the
// paper's Table 1).
type Platform struct {
	// ID is the figure label (C, F-G, F-s, X-f, X-s, S-M, S-s, VIA).
	ID string
	// Machine, Interconnect and MPI mirror the Table 1 columns.
	Machine      string
	Interconnect string
	MPI          string
	// OneSided reports MPI-2 one-sided support; GetOnly marks the LAM
	// shared-memory case where MPI_Put deadlocked.
	OneSided bool
	GetOnly  bool
	// MaxProcs bounds the scaling experiment (Figure 12).
	MaxProcs int

	// Point-to-point model.
	Latency   time.Duration // per-message latency
	Bandwidth float64       // peak contiguous bandwidth, bytes/s
	MemBW     float64       // local copy bandwidth (pack/unpack passes)
	BlockCost time.Duration // per-block software cost of datatype packing

	// ncEfficiency, if set, overrides the generic pack-pipeline model for
	// platforms with special-cased datatype handling (T3E, Sun).
	ncEfficiency func(blockSize int64) float64

	// One-sided model: per-access software cost and peak bandwidth of the
	// strided sparse workload.
	OSAccessCost time.Duration
	OSPeakBW     float64
	// osModulate, if set, shapes the bandwidth curve (e.g. the T3E's
	// "uneven, but regular" characteristics).
	osModulate func(accessSize int64, bw float64) float64

	// scaling returns the per-process bandwidth with p active processes
	// (Figure 12); nil means unsupported.
	scaling func(p int, accessSize int64) float64
}

// NoncontigBW returns the bandwidths of the noncontig benchmark: the
// non-contiguous strided-vector transfer and the equivalent contiguous
// transfer, for the given block size and total payload.
func (pl *Platform) NoncontigBW(blockSize, total int64) (nc, c float64) {
	c = pipelineBW(pl.Latency, pl.Bandwidth, total)
	if pl.ncEfficiency != nil {
		return c * pl.ncEfficiency(blockSize), c
	}
	// Generic pack-and-send: two extra block-wise passes over the data
	// (pack at the sender, unpack at the receiver).
	perByte := 1 / pl.Bandwidth
	packPass := pl.BlockCost.Seconds()/float64(blockSize) + 1/pl.MemBW
	nc = 1 / (perByte + 2*packPass)
	// The message startup amortizes over the payload for both variants.
	nc = pipelineScale(nc, pl.Latency, total)
	return nc, c
}

// pipelineBW is the effective bandwidth of a transfer of n bytes with a
// fixed startup latency.
func pipelineBW(lat time.Duration, bw float64, n int64) float64 {
	t := lat.Seconds() + float64(n)/bw
	return float64(n) / t
}

// pipelineScale applies startup amortization to a computed bandwidth.
func pipelineScale(bw float64, lat time.Duration, n int64) float64 {
	t := lat.Seconds() + float64(n)/bw
	return float64(n) / t
}

// Sparse returns the one-sided sparse micro-benchmark results for one
// access size: per-call latency and aggregate bandwidth.
func (pl *Platform) Sparse(accessSize int64) (lat time.Duration, bw float64) {
	if !pl.OneSided {
		return 0, 0
	}
	per := pl.OSAccessCost.Seconds() + float64(accessSize)/pl.OSPeakBW
	bw = float64(accessSize) / per
	if pl.osModulate != nil {
		bw = pl.osModulate(accessSize, bw)
	}
	lat = time.Duration(float64(accessSize) / bw * 1e9)
	return lat, bw
}

// Scaling returns the per-process one-sided bandwidth with p active
// processes (Figure 12), or 0 if the platform cannot run the experiment.
func (pl *Platform) Scaling(p int, accessSize int64) float64 {
	if pl.scaling == nil || p > pl.MaxProcs {
		return 0
	}
	return pl.scaling(p, accessSize)
}
