// Package scale is a thin compatibility shim over the torus collective
// runtime, which now lives with the rest of the MPI stack (mpi.TorusWorld).
// The §6-scale machine — a 3-D torus of SCI ringlets running the chunked
// ring allreduce — is constructed through the same fabric-first public
// surface as every other world: mpi.NewTorusFabric / mpi.NewTorusOracle
// pick the engine, mpi.NewTorusWorldOn builds the machine on it.
package scale

import (
	"time"

	"scimpich/internal/mpi"
	"scimpich/internal/torus"
)

// Config parameterizes a machine run (alias of mpi.TorusConfig).
type Config = mpi.TorusConfig

// Result summarizes a completed run (alias of mpi.TorusResult).
type Result = mpi.TorusResult

// Machine is the torus machine (alias of mpi.TorusWorld).
type Machine = mpi.TorusWorld

// DefaultConfig returns a machine calibrated like the paper's testbed.
func DefaultConfig(dx, dy, dz, shards int) Config {
	return mpi.DefaultTorusConfig(dx, dy, dz, shards)
}

// Lookahead derives the conservative lookahead of a partition from the
// topology.
func Lookahead(top *torus.Topology, assign []int, segment time.Duration) time.Duration {
	return mpi.TorusLookahead(top, assign, segment)
}

// NewSharded builds the machine on a conservative-parallel engine: one
// shard per z-plane block, each with its own flow network.
func NewSharded(cfg Config) *Machine {
	return mpi.NewTorusWorldOn(mpi.NewTorusFabric(cfg), cfg)
}

// NewSequential builds the oracle machine: the same program on the
// sequential engine, with one monolithic flow network shared by all
// locales.
func NewSequential(cfg Config) *Machine {
	return mpi.NewTorusWorldOn(mpi.NewTorusOracle(cfg), cfg)
}
