// Package scale models whole-machine collective workloads at the paper's §6
// scale: a 3-D torus of SCI ringlets (8x8x8 = 512 nodes) running a chunked
// ring allreduce built from one-sided neighbor deposits.
//
// The workload is written against sim.Fabric, so the same program runs on
// the sequential engine (the differential-testing oracle, with one global
// flow network — the monolithic baseline) and on the conservative-parallel
// ShardedEngine (one worker, event heap and flow network per shard). The
// machine is partitioned by contiguous z-plane blocks (torus.PartitionZ);
// each node is an actor confined to the shard owning its z-plane, and all
// cross-shard interaction happens through Locale.Send with the route's
// propagation latency — at least one segment latency, which is exactly the
// engine's conservative lookahead (flow.MinLatency over the cross-partition
// links).
//
// Shard locality of the flow solve is structural: with ring-neighbor-only
// traffic under dimension-ordered routing, the route of node i to i+1 stays
// inside i's z-plane except for the final z-hop at a plane boundary, and no
// two routes share a segment. Every link is therefore touched by exactly one
// shard's network, flows never span shards, and each flow is its own
// max-min component — so per-shard solves produce bit-identical rates to
// the monolithic network, which is what makes the cross-engine determinism
// tests exact. (SCI flow-control echoes, which would circle the whole ring
// and break this locality, are deliberately not modeled here: with
// single-occupancy segments they would not change any rate.)
//
// The reduction operator is uint64 wrapping addition — exactly associative
// and commutative — so chunk digests, checksums and completion times are
// bit-identical across engines and shard counts.
package scale

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"scimpich/internal/flow"
	"scimpich/internal/mpi"
	"scimpich/internal/obs"
	"scimpich/internal/obs/flight"
	"scimpich/internal/ring"
	"scimpich/internal/sci"
	"scimpich/internal/sim"
	"scimpich/internal/torus"
)

// Config parameterizes a machine run.
type Config struct {
	DX, DY, DZ int // torus dimensions; nodes = DX*DY*DZ
	Shards     int // z-plane blocks; must divide DZ

	ChunkBytes     int64         // bytes per allreduce chunk transfer
	LinkBW         float64       // per-segment bandwidth, bytes/second
	SrcCap         float64       // per-node sustained deposit rate
	SegmentLatency time.Duration // per-segment propagation delay

	SampleEvery int           // flight sample period in steps (<=0: 64)
	Registry    *obs.Registry // optional shared metrics registry
}

// DefaultConfig returns a machine calibrated like the paper's testbed
// (166 MHz ringlets, Table 2 sustained put bandwidth) with the given
// partitioning.
func DefaultConfig(dx, dy, dz, shards int) Config {
	sc := sci.DefaultConfig(8)
	return Config{
		DX: dx, DY: dy, DZ: dz, Shards: shards,
		ChunkBytes:     64 << 10,
		LinkBW:         ring.BandwidthForMHz(sc.LinkMHz),
		SrcCap:         sc.SustainedPutBW,
		SegmentLatency: sc.SegmentLatency,
		SampleEvery:    64,
	}
}

// Result summarizes a completed run.
type Result struct {
	Nodes    int
	Shards   int
	End      time.Duration // final virtual time
	Events   uint64        // events executed by the engine
	Windows  uint64        // barrier rounds (0 on the sequential engine)
	Checksum uint64        // wrapping sum of the reduced vector
	Steps    int           // allreduce steps per node
}

// delivery is one chunk handed to the successor node.
type delivery struct {
	to    int // destination node id
	step  int
	chunk int
	val   uint64
}

// node is one machine node: an actor confined to its locale.
type node struct {
	m       *Machine
	id      int
	loc     sim.Locale
	net     *flow.Network
	next    int // successor on the logical ring
	nextLoc int
	route   []flow.Hop    // dimension-ordered path to successor
	delay   time.Duration // propagation latency of route

	chunks   []uint64 // per-chunk reduction digests
	step     int
	sendDone bool
	recvDone bool
	inbox    []*delivery // arrivals for steps we have not reached yet

	log      []flight.Event // local samples, merged deterministically post-run
	finished bool
	doneAt   time.Duration
}

// Machine is the full torus plus its node actors, bound to a fabric.
type Machine struct {
	cfg    Config
	fab    sim.Fabric
	top    *torus.Topology
	place  *mpi.Placement
	nodes  []*node
	seq    bool // sequential-oracle machine (single global network)
	total  int  // allreduce steps per node
	reg    *obs.Registry
	chunks *obs.Counter
	moved  *obs.Counter

	deliverF func(any)
}

// Lookahead derives the conservative lookahead of a partition from the
// topology: the minimum latency among links crossing it, falling back to
// the configured segment latency when no link crosses (single shard).
func Lookahead(top *torus.Topology, assign []int, segment time.Duration) time.Duration {
	if la := flow.MinLatency(top.CrossShardLinks(assign)); la > 0 {
		return la
	}
	return segment
}

// NewSharded builds the machine on a conservative-parallel engine: one
// shard per z-plane block, each with its own flow network.
func NewSharded(cfg Config) *Machine {
	top, assign := buildTopology(cfg)
	se := sim.NewShardedEngine(cfg.Shards, Lookahead(top, assign, cfg.SegmentLatency))
	nets := make([]*flow.Network, cfg.Shards)
	for i := range nets {
		nets[i] = flow.NewNetworkOn(se.Shard(i))
		nets[i].SetMetrics(cfg.Registry)
	}
	return build(cfg, se, top, assign, nets, false)
}

// NewSequential builds the oracle machine: the same program on the
// sequential engine, with one monolithic flow network shared by all
// locales — the baseline whose per-event costs grow with the whole
// machine's flow count.
func NewSequential(cfg Config) *Machine {
	top, assign := buildTopology(cfg)
	e := sim.NewEngine()
	f := sim.NewSeqFabric(e, cfg.Shards, Lookahead(top, assign, cfg.SegmentLatency))
	net := flow.NewNetwork(e)
	net.SetMetrics(cfg.Registry)
	nets := make([]*flow.Network, cfg.Shards)
	for i := range nets {
		nets[i] = net
	}
	return build(cfg, f, top, assign, nets, true)
}

func buildTopology(cfg Config) (*torus.Topology, []int) {
	if cfg.DX*cfg.DY*cfg.DZ < 2 {
		panic("scale: machine needs at least two nodes")
	}
	top := torus.New(cfg.DX, cfg.DY, cfg.DZ, cfg.LinkBW, nil).SetLinkLatency(cfg.SegmentLatency)
	return top, top.PartitionZ(cfg.Shards)
}

func build(cfg Config, fab sim.Fabric, top *torus.Topology, assign []int, nets []*flow.Network, seq bool) *Machine {
	n := top.Nodes()
	m := &Machine{
		cfg: cfg, fab: fab, top: top, seq: seq,
		place: mpi.NewPlacement(assign, cfg.Shards),
		nodes: make([]*node, n),
		total: 2 * (n - 1),
		reg:   cfg.Registry,
	}
	if m.reg != nil {
		m.chunks = m.reg.Counter("scale.chunks")
		m.moved = m.reg.Counter("scale.bytes")
	}
	m.deliverF = func(arg any) {
		d := arg.(*delivery)
		m.nodes[d.to].onRecv(d)
	}
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		shard := m.place.ShardOf(i)
		nd := &node{
			m: m, id: i, loc: fab.Locale(shard), net: nets[shard],
			next: next, nextLoc: m.place.ShardOf(next),
			route:  flow.Path(top.Route(i, next)...),
			delay:  0,
			chunks: make([]uint64, n),
		}
		nd.delay = flow.PathLatency(nd.route)
		for c := range nd.chunks {
			nd.chunks[c] = chunkInit(i, c)
		}
		m.nodes[i] = nd
	}
	return m
}

// chunkInit is the deterministic initial digest of (node, chunk) —
// splitmix64 over the pair, so every input is distinct and the reduced
// values exercise all 64 bits.
func chunkInit(node, chunk int) uint64 {
	z := uint64(node)<<32 ^ uint64(chunk) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// sendChunk returns the chunk index node id forwards at step s: the
// reduce-scatter rotation for the first n-1 steps, then the allgather
// rotation.
func (m *Machine) sendChunk(id, s int) int {
	n := len(m.nodes)
	if s < n-1 {
		return ((id-s)%n + n) % n
	}
	return ((id+1-(s-(n-1)))%n + n) % n
}

// beginStep starts the node's transfer for the current step, or finishes
// the node when all steps are done.
func (nd *node) beginStep() {
	m := nd.m
	if nd.step >= m.total {
		var sum uint64
		for _, v := range nd.chunks {
			sum += v
		}
		nd.finished = true
		nd.doneAt = nd.loc.Now()
		nd.log = append(nd.log, flight.Event{At: nd.doneAt, Kind: flight.KCommit,
			A: int64(nd.step), B: int64(sum)})
		return
	}
	step, c := nd.step, m.sendChunk(nd.id, nd.step)
	val := nd.chunks[c]
	nd.sendDone, nd.recvDone = false, false
	if every := m.sampleEvery(); step%every == 0 {
		nd.log = append(nd.log, flight.Event{At: nd.loc.Now(), Kind: flight.KPut,
			A: int64(nd.next), B: int64(c), C: int64(val)})
	}
	f := nd.net.Start(nd.route, m.cfg.ChunkBytes, m.cfg.SrcCap)
	f.Done().OnComplete(func(any) {
		if m.chunks != nil {
			m.chunks.Add(1)
			m.moved.Add(m.cfg.ChunkBytes)
		}
		nd.loc.Send(nd.nextLoc, nd.delay, m.deliverF,
			&delivery{to: nd.next, step: step, chunk: c, val: val})
		nd.sendDone = true
		nd.maybeAdvance()
	})
}

func (m *Machine) sampleEvery() int {
	if m.cfg.SampleEvery > 0 {
		return m.cfg.SampleEvery
	}
	return 64
}

// onRecv runs on the receiving node's locale: apply the chunk if the node
// is at the message's step, otherwise buffer it (the sender may run up to
// a ring circumference ahead).
func (nd *node) onRecv(d *delivery) {
	if d.step != nd.step || nd.recvDone {
		if d.step <= nd.step {
			panic(fmt.Sprintf("scale: node %d got duplicate step %d at step %d", nd.id, d.step, nd.step))
		}
		nd.inbox = append(nd.inbox, d)
		return
	}
	nd.apply(d)
	nd.maybeAdvance()
}

// apply merges one received chunk: wrapping add during reduce-scatter,
// overwrite during allgather.
func (nd *node) apply(d *delivery) {
	if nd.step < len(nd.m.nodes)-1 {
		nd.chunks[d.chunk] += d.val
	} else {
		nd.chunks[d.chunk] = d.val
	}
	nd.recvDone = true
}

// maybeAdvance moves to the next step once the node's own transfer finished
// and the predecessor's chunk arrived.
func (nd *node) maybeAdvance() {
	if !nd.sendDone || !nd.recvDone {
		return
	}
	nd.step++
	nd.beginStep()
	if nd.step >= nd.m.total {
		return
	}
	for i, d := range nd.inbox {
		if d.step == nd.step {
			nd.inbox = append(nd.inbox[:i], nd.inbox[i+1:]...)
			nd.apply(d)
			// The new transfer just started and takes positive virtual
			// time, so sendDone is false: no further advance from here.
			return
		}
	}
}

// Run executes the allreduce to completion and verifies the reduction.
func (m *Machine) Run() (Result, error) {
	for _, nd := range m.nodes {
		nd := nd
		nd.loc.At(0, nd.beginStep)
	}
	end := m.fab.Run()
	res := Result{
		Nodes: len(m.nodes), Shards: m.cfg.Shards, End: end,
		Events: m.fab.Events(), Steps: m.total,
	}
	if se, ok := m.fab.(*sim.ShardedEngine); ok {
		res.Windows = se.Windows()
	}
	// Every node must hold the identical fully reduced vector.
	want := make([]uint64, len(m.nodes))
	for c := range want {
		for id := range m.nodes {
			want[c] += chunkInit(id, c)
		}
		res.Checksum += want[c]
	}
	for _, nd := range m.nodes {
		if !nd.finished {
			return res, fmt.Errorf("scale: node %d stalled at step %d/%d", nd.id, nd.step, m.total)
		}
		for c, v := range nd.chunks {
			if v != want[c] {
				return res, fmt.Errorf("scale: node %d chunk %d = %#x, want %#x", nd.id, c, v, want[c])
			}
		}
	}
	return res, nil
}

// FlightDump merges every node's local samples into one deterministic
// flight dump. Nodes log into private slices during the (possibly parallel)
// run; here the events are ordered by their full content key and re-recorded
// sequentially, so the bytes are identical across engines, shard counts and
// OS schedules — the artifact the determinism gate hashes.
func (m *Machine) FlightDump() []byte {
	type tagged struct {
		actor string
		ev    flight.Event
	}
	var all []tagged
	perActor := 0
	for _, nd := range m.nodes {
		if len(nd.log) > perActor {
			perActor = len(nd.log)
		}
		name := fmt.Sprintf("node%04d", nd.id)
		for _, ev := range nd.log {
			all = append(all, tagged{actor: name, ev: ev})
		}
	}
	sortTagged := func(i, j int) bool {
		a, b := all[i], all[j]
		if a.ev.At != b.ev.At {
			return a.ev.At < b.ev.At
		}
		if a.actor != b.actor {
			return a.actor < b.actor
		}
		if a.ev.Kind != b.ev.Kind {
			return a.ev.Kind < b.ev.Kind
		}
		if a.ev.A != b.ev.A {
			return a.ev.A < b.ev.A
		}
		if a.ev.B != b.ev.B {
			return a.ev.B < b.ev.B
		}
		if a.ev.C != b.ev.C {
			return a.ev.C < b.ev.C
		}
		return a.ev.D < b.ev.D
	}
	sort.SliceStable(all, sortTagged)
	rec := flight.New(perActor + 1) // never evict: eviction would reintroduce order sensitivity
	for _, t := range all {
		rec.Actor(t.actor).Record(t.ev.At, t.ev.Kind, t.ev.A, t.ev.B, t.ev.C, t.ev.D)
	}
	var buf bytes.Buffer
	if err := rec.Snapshot("scale: end of run").WriteJSON(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}
