package scale

import (
	"bytes"
	"testing"
	"time"

	"scimpich/internal/obs"
)

// smallCfg is a 4x4x4 = 64-node machine whose dz supports 1/2/4 shards.
func smallCfg(shards int) Config {
	cfg := DefaultConfig(4, 4, 4, shards)
	cfg.ChunkBytes = 16 << 10
	return cfg
}

func TestAllreduceSequentialCompletes(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := smallCfg(2)
	cfg.Registry = reg
	m := NewSequential(cfg)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.End <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if res.Steps != 2*(res.Nodes-1) {
		t.Fatalf("steps = %d, want %d", res.Steps, 2*(res.Nodes-1))
	}
	wantChunks := int64(res.Nodes * res.Steps)
	if got := reg.Counter("scale.chunks").Value(); got != wantChunks {
		t.Fatalf("scale.chunks = %d, want %d", got, wantChunks)
	}
	if got := reg.Counter("scale.bytes").Value(); got != wantChunks*cfg.ChunkBytes {
		t.Fatalf("scale.bytes = %d, want %d", got, wantChunks*cfg.ChunkBytes)
	}
}

func TestAllreduceShardedCompletes(t *testing.T) {
	m := NewSharded(smallCfg(4))
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows == 0 {
		t.Fatal("sharded run executed no windows")
	}
}

type runOut struct {
	res     Result
	dump    []byte
	chunks  int64
	bytes   int64
	flowB   int64
	histN   uint64
	histMax int64
}

func runMachine(t *testing.T, m *Machine) runOut {
	t.Helper()
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	hs := m.reg.Histogram("flow.transfer.ns").Snapshot()
	return runOut{
		res:     res,
		dump:    m.FlightDump(),
		chunks:  m.reg.Counter("scale.chunks").Value(),
		bytes:   m.reg.Counter("scale.bytes").Value(),
		flowB:   m.reg.Counter("flow.bytes").Value(),
		histN:   uint64(hs.Count),
		histMax: hs.Max,
	}
}

// TestCrossEngineDeterminism is the differential-testing gate of the
// sharded engine: the same seeded program must produce the identical final
// virtual time, identical flight-dump bytes, identical metric counters and
// the identical checksum on the sequential oracle and on the sharded engine
// at every shard count.
func TestCrossEngineDeterminism(t *testing.T) {
	mk := func(shards int, sharded bool) *Machine {
		cfg := smallCfg(shards)
		cfg.SampleEvery = 16
		cfg.Registry = obs.NewRegistry()
		if sharded {
			return NewSharded(cfg)
		}
		return NewSequential(cfg)
	}
	oracle := runMachine(t, mk(2, false))
	if oracle.res.End <= 0 || len(oracle.dump) == 0 {
		t.Fatal("oracle run produced no output")
	}
	for _, shards := range []int{1, 2, 4} {
		got := runMachine(t, mk(shards, true))
		if got.res.End != oracle.res.End {
			t.Errorf("shards=%d: end %v != oracle %v", shards, got.res.End, oracle.res.End)
		}
		if got.res.Checksum != oracle.res.Checksum {
			t.Errorf("shards=%d: checksum %#x != oracle %#x", shards, got.res.Checksum, oracle.res.Checksum)
		}
		if !bytes.Equal(got.dump, oracle.dump) {
			t.Errorf("shards=%d: flight dump differs from oracle (%d vs %d bytes)",
				shards, len(got.dump), len(oracle.dump))
		}
		if got.chunks != oracle.chunks || got.bytes != oracle.bytes || got.flowB != oracle.flowB {
			t.Errorf("shards=%d: counters (%d,%d,%d) != oracle (%d,%d,%d)", shards,
				got.chunks, got.bytes, got.flowB, oracle.chunks, oracle.bytes, oracle.flowB)
		}
		if got.histN != oracle.histN || got.histMax != oracle.histMax {
			t.Errorf("shards=%d: transfer histogram (%d,%d) != oracle (%d,%d)", shards,
				got.histN, got.histMax, oracle.histN, oracle.histMax)
		}
	}
}

// TestShardedRepeatDeterminism: repeated parallel runs are byte-identical —
// the schedule must not depend on OS goroutine timing.
func TestShardedRepeatDeterminism(t *testing.T) {
	base := runMachine(t, func() *Machine {
		cfg := smallCfg(4)
		cfg.SampleEvery = 16
		cfg.Registry = obs.NewRegistry()
		return NewSharded(cfg)
	}())
	for i := 0; i < 3; i++ {
		cfg := smallCfg(4)
		cfg.SampleEvery = 16
		cfg.Registry = obs.NewRegistry()
		got := runMachine(t, NewSharded(cfg))
		if got.res.End != base.res.End || !bytes.Equal(got.dump, base.dump) {
			t.Fatalf("repeat %d diverged: end %v vs %v", i, got.res.End, base.res.End)
		}
	}
}

// TestLookaheadDerivation: the engine's lookahead comes from the
// cross-partition link latencies.
func TestLookaheadDerivation(t *testing.T) {
	cfg := smallCfg(4)
	top, assign := buildTopology(cfg)
	if la := Lookahead(top, assign, cfg.SegmentLatency); la != cfg.SegmentLatency {
		t.Fatalf("lookahead = %v, want %v", la, cfg.SegmentLatency)
	}
	// Single-shard partition has no cross links; the fallback applies.
	cfg1 := smallCfg(1)
	top1, assign1 := buildTopology(cfg1)
	if la := Lookahead(top1, assign1, 123*time.Nanosecond); la != 123*time.Nanosecond {
		t.Fatalf("single-shard lookahead fallback = %v", la)
	}
}

func TestChunkRotationCoversAll(t *testing.T) {
	cfg := smallCfg(1)
	m := NewSequential(cfg)
	n := len(m.nodes)
	// Over the reduce-scatter phase every node forwards n-1 distinct chunks;
	// over the allgather phase likewise.
	for id := 0; id < n; id += 17 {
		seen := map[int]bool{}
		for s := 0; s < n-1; s++ {
			seen[m.sendChunk(id, s)] = true
		}
		if len(seen) != n-1 {
			t.Fatalf("node %d reduce-scatter covers %d chunks, want %d", id, len(seen), n-1)
		}
		seen = map[int]bool{}
		for s := n - 1; s < 2*(n-1); s++ {
			seen[m.sendChunk(id, s)] = true
		}
		if len(seen) != n-1 {
			t.Fatalf("node %d allgather covers %d chunks, want %d", id, len(seen), n-1)
		}
	}
}
