package scale

import (
	"bytes"
	"testing"
	"time"

	"scimpich/internal/obs"
	"scimpich/internal/ring"
	"scimpich/internal/sci"
	"scimpich/internal/torus"
)

// smallCfg is a 4x4x4 = 64-node machine whose dz supports 1/2/4 shards.
func smallCfg(shards int) Config {
	cfg := DefaultConfig(4, 4, 4, shards)
	cfg.ChunkBytes = 16 << 10
	return cfg
}

func TestAllreduceSequentialCompletes(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := smallCfg(2)
	cfg.Registry = reg
	m := NewSequential(cfg)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.End <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if res.Steps != 2*(res.Nodes-1) {
		t.Fatalf("steps = %d, want %d", res.Steps, 2*(res.Nodes-1))
	}
	wantChunks := int64(res.Nodes * res.Steps)
	if got := reg.Counter("mpi.torus.chunks").Value(); got != wantChunks {
		t.Fatalf("mpi.torus.chunks = %d, want %d", got, wantChunks)
	}
	if got := reg.Counter("mpi.torus.bytes").Value(); got != wantChunks*cfg.ChunkBytes {
		t.Fatalf("mpi.torus.bytes = %d, want %d", got, wantChunks*cfg.ChunkBytes)
	}
}

func TestAllreduceShardedCompletes(t *testing.T) {
	m := NewSharded(smallCfg(4))
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows == 0 {
		t.Fatal("sharded run executed no windows")
	}
}

type runOut struct {
	res     Result
	dump    []byte
	chunks  int64
	bytes   int64
	flowB   int64
	histN   uint64
	histMax int64
}

func runMachine(t *testing.T, m *Machine, reg *obs.Registry) runOut {
	t.Helper()
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	hs := reg.Histogram("flow.transfer.ns").Snapshot()
	return runOut{
		res:     res,
		dump:    m.FlightDump(),
		chunks:  reg.Counter("mpi.torus.chunks").Value(),
		bytes:   reg.Counter("mpi.torus.bytes").Value(),
		flowB:   reg.Counter("flow.bytes").Value(),
		histN:   uint64(hs.Count),
		histMax: hs.Max,
	}
}

// TestCrossEngineDeterminism is the differential-testing gate of the
// sharded engine: the same seeded program must produce the identical final
// virtual time, identical flight-dump bytes, identical metric counters and
// the identical checksum on the sequential oracle and on the sharded engine
// at every shard count.
func TestCrossEngineDeterminism(t *testing.T) {
	mk := func(shards int, sharded bool) (*Machine, *obs.Registry) {
		cfg := smallCfg(shards)
		cfg.SampleEvery = 16
		cfg.Registry = obs.NewRegistry()
		if sharded {
			return NewSharded(cfg), cfg.Registry
		}
		return NewSequential(cfg), cfg.Registry
	}
	om, oreg := mk(2, false)
	oracle := runMachine(t, om, oreg)
	if oracle.res.End <= 0 || len(oracle.dump) == 0 {
		t.Fatal("oracle run produced no output")
	}
	for _, shards := range []int{1, 2, 4} {
		gm, greg := mk(shards, true)
		got := runMachine(t, gm, greg)
		if got.res.End != oracle.res.End {
			t.Errorf("shards=%d: end %v != oracle %v", shards, got.res.End, oracle.res.End)
		}
		if got.res.Checksum != oracle.res.Checksum {
			t.Errorf("shards=%d: checksum %#x != oracle %#x", shards, got.res.Checksum, oracle.res.Checksum)
		}
		if !bytes.Equal(got.dump, oracle.dump) {
			t.Errorf("shards=%d: flight dump differs from oracle (%d vs %d bytes)",
				shards, len(got.dump), len(oracle.dump))
		}
		if got.chunks != oracle.chunks || got.bytes != oracle.bytes || got.flowB != oracle.flowB {
			t.Errorf("shards=%d: counters (%d,%d,%d) != oracle (%d,%d,%d)", shards,
				got.chunks, got.bytes, got.flowB, oracle.chunks, oracle.bytes, oracle.flowB)
		}
		if got.histN != oracle.histN || got.histMax != oracle.histMax {
			t.Errorf("shards=%d: transfer histogram (%d,%d) != oracle (%d,%d)", shards,
				got.histN, got.histMax, oracle.histN, oracle.histMax)
		}
	}
}

// TestShardedRepeatDeterminism: repeated parallel runs are byte-identical —
// the schedule must not depend on OS goroutine timing.
func TestShardedRepeatDeterminism(t *testing.T) {
	mk := func() (*Machine, *obs.Registry) {
		cfg := smallCfg(4)
		cfg.SampleEvery = 16
		cfg.Registry = obs.NewRegistry()
		return NewSharded(cfg), cfg.Registry
	}
	bm, breg := mk()
	base := runMachine(t, bm, breg)
	for i := 0; i < 3; i++ {
		gm, greg := mk()
		got := runMachine(t, gm, greg)
		if got.res.End != base.res.End || !bytes.Equal(got.dump, base.dump) {
			t.Fatalf("repeat %d diverged: end %v vs %v", i, got.res.End, base.res.End)
		}
	}
}

// TestLookaheadDerivation: the engine's lookahead comes from the
// cross-partition link latencies.
func TestLookaheadDerivation(t *testing.T) {
	cfg := smallCfg(4)
	mkTop := func(c Config) (*torus.Topology, []int) {
		top := torus.New(c.DX, c.DY, c.DZ, ring.BandwidthForMHz(sci.DefaultConfig(8).LinkMHz), nil).
			SetLinkLatency(c.SegmentLatency)
		return top, top.PartitionZ(c.Shards)
	}
	top, assign := mkTop(cfg)
	if la := Lookahead(top, assign, cfg.SegmentLatency); la != cfg.SegmentLatency {
		t.Fatalf("lookahead = %v, want %v", la, cfg.SegmentLatency)
	}
	// Single-shard partition has no cross links; the fallback applies.
	cfg1 := smallCfg(1)
	top1, assign1 := mkTop(cfg1)
	if la := Lookahead(top1, assign1, 123*time.Nanosecond); la != 123*time.Nanosecond {
		t.Fatalf("single-shard lookahead fallback = %v", la)
	}
}
