package pack

import (
	"testing"

	"scimpich/internal/datatype"
)

// The pack hot paths must be allocation-free in steady state (mirroring
// internal/obs/alloc_test.go): a stack cursor with an inline odometer
// drives FFPack/FFUnpack/Walk, and a heap Cursor is reused across chunks.
// Callers hold the Sink and the Walk callback in variables, as the
// transport layers do, so the one-time interface conversion is hoisted out
// of the measured operation.

func TestAllocsPackHotPaths(t *testing.T) {
	cases := []struct {
		name  string
		ty    *datatype.Type
		count int
	}{
		{"depth0-dense", datatype.Contiguous(64, datatype.Float64).Commit(), 4},
		{"depth0-indexed", datatype.Indexed(
			[]int{32, 32, 32}, []int{0, 48, 96}, datatype.Byte).Commit(), 4},
		{"depth1-vector", datatype.Vector(32, 4, 8, datatype.Float64).Commit(), 4},
		{"depth2-nested", datatype.Vector(8, 1, 2,
			datatype.Vector(16, 2, 4, datatype.Float64)).Commit(), 4},
	}
	for _, tc := range cases {
		ty, count := tc.ty, tc.count
		total := ty.Size() * int64(count)
		user := make([]byte, ty.Extent()*int64(count))
		packed := make([]byte, total)
		var sink Sink = BufferSink{packed}
		walkFn := func(off, size int64) {}
		cur := NewCursor(ty, count)
		chunk := total/3 + 1
		descs := make([]Descriptor, 0, 1024)
		ops := []struct {
			name string
			fn   func()
		}{
			{"FFPack", func() { FFPack(sink, user, ty, count, 0, -1) }},
			{"FFPack-skip", func() { FFPack(sink, user, ty, count, total/2, -1) }},
			{"FFUnpack", func() { FFUnpack(user, packed, ty, count, 0, -1) }},
			{"Walk", func() { Walk(ty, count, walkFn) }},
			{"Cursor-chunked", func() {
				cur.Reset()
				for !cur.Done() {
					cur.Pack(sink, user, chunk)
				}
			}},
			{"Cursor-seek", func() {
				cur.SeekTo(total / 2)
				cur.Pack(sink, user, -1)
			}},
			{"Cursor-descriptors", func() {
				cur.Reset()
				for !cur.Done() {
					descs, _ = cur.Descriptors(descs[:0], chunk)
				}
			}},
		}
		for _, op := range ops {
			if n := testing.AllocsPerRun(100, op.fn); n != 0 {
				t.Errorf("%s/%s: %v allocs/op, want 0", tc.name, op.name, n)
			}
		}
	}
}
