package pack_test

import (
	"fmt"

	"scimpich/internal/datatype"
	"scimpich/internal/pack"
)

// Packing a strided vector with direct_pack_ff, resuming at an arbitrary
// byte offset (the rendezvous protocol's chunked use).
func ExampleFFPack() {
	ty := datatype.Vector(4, 1, 2, datatype.Float64).Commit()
	user := make([]byte, ty.Extent())
	for i := range user {
		user[i] = byte(i)
	}
	out := make([]byte, ty.Size())
	// Pack the first 12 bytes, then the rest from offset 12.
	n1, _ := pack.FFPack(pack.BufferSink{Buf: out}, user, ty, 1, 0, 12)
	n2, st := pack.FFPack(offsetSink{out, 12}, user, ty, 1, 12, -1)
	fmt.Println("chunks:", n1, n2, "blocks:", st.Blocks)
	fmt.Println("packed:", out[:8], out[8:16])
	// Output:
	// chunks: 12 20 blocks: 3
	// packed: [0 1 2 3 4 5 6 7] [16 17 18 19 20 21 22 23]
}

type offsetSink struct {
	buf  []byte
	base int64
}

func (o offsetSink) Write(off int64, src []byte) { copy(o.buf[o.base+off:], src) }
