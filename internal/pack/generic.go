package pack

import (
	"scimpich/internal/datatype"
)

// This file implements the generic MPICH baseline: a recursive traversal of
// the datatype constructor tree in definition order (the canonical MPI type
// map order), packing into / unpacking from a local contiguous buffer. This
// is the "pack -> transfer -> unpack" pipeline of figure 4 (top); the
// repeated recursive descent per block is exactly the overhead
// direct_pack_ff eliminates.

// GenericPack packs count instances of t from user into dst in definition
// order, starting skip bytes into the canonical linearization and packing
// at most maxBytes (< 0 for "to the end"). It returns the bytes packed and
// block statistics.
func GenericPack(dst []byte, user []byte, t *datatype.Type, count int, skip, maxBytes int64) (int64, Stats) {
	c := &genCursor{
		skip:  skip,
		limit: checkArgs(t, count, skip, maxBytes),
		move: func(userOff, outOff, n int64) {
			copy(dst[outOff:outOff+n], user[userOff:userOff+n])
		},
	}
	c.run(t, count)
	return c.written, c.stats
}

// GenericUnpack is the inverse: it scatters src (canonical linearization
// starting at offset skip) into the user buffer.
func GenericUnpack(user []byte, src []byte, t *datatype.Type, count int, skip, maxBytes int64) (int64, Stats) {
	c := &genCursor{
		skip:  skip,
		limit: checkArgs(t, count, skip, maxBytes),
		move: func(userOff, outOff, n int64) {
			copy(user[userOff:userOff+n], src[outOff:outOff+n])
		},
	}
	c.run(t, count)
	return c.written, c.stats
}

// genCursor tracks progress through the canonical linearization.
type genCursor struct {
	skip    int64 // bytes still to pass over before copying starts
	limit   int64 // byte budget once copying has started
	written int64
	stats   Stats
	move    func(userOff, outOff, n int64)
}

func (c *genCursor) done() bool { return c.written >= c.limit }

func (c *genCursor) run(t *datatype.Type, count int) {
	// Fast path: dense instances form one contiguous run.
	if first, ok := denseRun(t.Flat()); ok {
		c.block(first, t.Size()*int64(count))
		return
	}
	for i := 0; i < count && !c.done(); i++ {
		c.walk(t, int64(i)*t.Extent())
	}
}

// walk recursively visits the tree in definition order — the per-block
// control-flow cost the paper's algorithm replaces with stack operations.
func (c *genCursor) walk(t *datatype.Type, base int64) {
	if c.done() {
		return
	}
	switch t.Kind() {
	case datatype.KindBasic:
		c.block(base, t.Size())
	default:
		sz := t.Size()
		// Fast path: skip whole subtrees that fall before the start point.
		if c.written == 0 && c.skip >= sz {
			c.skip -= sz
			return
		}
		c.walkChildren(t, base)
	}
}

func (c *genCursor) walkChildren(t *datatype.Type, base int64) {
	switch t.Kind() {
	case datatype.KindContiguous:
		elem, count := t.Elem(), t.Count()
		if elem.Kind() == datatype.KindBasic {
			// Adjacent basic elements fuse into one copy, as MPICH's
			// dataloop code does.
			c.block(base, int64(count)*elem.Size())
			return
		}
		for i := 0; i < count && !c.done(); i++ {
			c.walk(elem, base+int64(i)*elem.Extent())
		}
	case datatype.KindVector, datatype.KindHvector:
		elem := t.Elem()
		basic := elem.Kind() == datatype.KindBasic
		for i := 0; i < t.Count() && !c.done(); i++ {
			start := base + int64(i)*t.StrideBytes()
			if basic {
				c.block(start, int64(t.Blocklen())*elem.Size())
				continue
			}
			for j := 0; j < t.Blocklen() && !c.done(); j++ {
				c.walk(elem, start+int64(j)*elem.Extent())
			}
		}
	case datatype.KindIndexed, datatype.KindHindexed:
		elem := t.Elem()
		basic := elem.Kind() == datatype.KindBasic
		lens, displs := t.Blocklens(), t.Displs()
		for i := range lens {
			start := base + displs[i]
			if basic {
				c.block(start, int64(lens[i])*elem.Size())
				continue
			}
			for j := 0; j < lens[i] && !c.done(); j++ {
				c.walk(elem, start+int64(j)*elem.Extent())
			}
		}
	case datatype.KindStruct:
		for _, f := range t.Fields() {
			start := base + f.Disp
			if f.Type.Kind() == datatype.KindBasic {
				c.block(start, int64(f.Blocklen)*f.Type.Size())
				continue
			}
			for j := 0; j < f.Blocklen && !c.done(); j++ {
				c.walk(f.Type, start+int64(j)*f.Type.Extent())
			}
		}
	}
}

// block copies one basic run, honouring skip and limit.
func (c *genCursor) block(off, n int64) {
	if n <= 0 || c.done() {
		return
	}
	if c.skip > 0 {
		if c.skip >= n {
			c.skip -= n
			return
		}
		off += c.skip
		n -= c.skip
		c.skip = 0
	}
	if c.written+n > c.limit {
		n = c.limit - c.written
	}
	c.move(off, c.written, n)
	c.stats.add(n)
	c.written += n
}
