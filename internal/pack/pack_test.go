package pack

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"scimpich/internal/datatype"
)

// mkUser returns a filled user buffer for count instances of t. The last
// instance may extend past count*extent when the type's upper bound exceeds
// its extent, so size by UB.
func mkUser(t *datatype.Type, count int, rng *rand.Rand) []byte {
	n := t.Extent()*int64(count-1) + t.UB() + 64
	if n < 64 {
		n = 64
	}
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(rng.Intn(255) + 1) // never zero, so gaps are detectable
	}
	return buf
}

func TestFFRoundTripVector(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ty := datatype.Vector(16, 3, 5, datatype.Float64).Commit()
	user := mkUser(ty, 2, rng)
	packed := make([]byte, ty.Size()*2)
	n, st := FFPack(BufferSink{packed}, user, ty, 2, 0, -1)
	if n != ty.Size()*2 {
		t.Fatalf("packed %d bytes, want %d", n, ty.Size()*2)
	}
	if st.Bytes != n {
		t.Errorf("stats bytes %d != packed %d", st.Bytes, n)
	}
	out := make([]byte, len(user))
	m, _ := FFUnpack(out, packed, ty, 2, 0, -1)
	if m != n {
		t.Fatalf("unpacked %d bytes, want %d", m, n)
	}
	checkCoveredEqual(t, ty, 2, user, out)
}

// checkCoveredEqual asserts out matches user exactly on the type's data
// bytes and is zero elsewhere.
func checkCoveredEqual(t *testing.T, ty *datatype.Type, count int, user, out []byte) {
	t.Helper()
	covered := make([]bool, len(user))
	for i := 0; i < count; i++ {
		base := int64(i) * ty.Extent()
		for _, b := range ty.TypeMap() {
			for j := int64(0); j < b.Len; j++ {
				covered[base+b.Off+j] = true
			}
		}
	}
	for i := range user {
		if covered[i] && out[i] != user[i] {
			t.Fatalf("data byte %d: got %d want %d", i, out[i], user[i])
		}
		if !covered[i] && out[i] != 0 {
			t.Fatalf("gap byte %d written: %d", i, out[i])
		}
	}
}

func TestGenericRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ty := datatype.Indexed([]int{3, 1, 2, 5}, []int{0, 9, 4, 20}, datatype.Int32).Commit()
	user := mkUser(ty, 3, rng)
	packed := make([]byte, ty.Size()*3)
	n, _ := GenericPack(packed, user, ty, 3, 0, -1)
	if n != ty.Size()*3 {
		t.Fatalf("packed %d, want %d", n, ty.Size()*3)
	}
	out := make([]byte, len(user))
	if m, _ := GenericUnpack(out, packed, ty, 3, 0, -1); m != n {
		t.Fatalf("unpacked %d, want %d", m, n)
	}
	checkCoveredEqual(t, ty, 3, user, out)
}

func TestGenericMatchesTypeMapOrder(t *testing.T) {
	// For the canonical linearization, packing must follow definition
	// order: build the expectation directly from the type map.
	rng := rand.New(rand.NewSource(3))
	ty := datatype.StructOf(
		datatype.Field{Type: datatype.Int32, Blocklen: 1, Disp: 0},
		datatype.Field{Type: datatype.Char, Blocklen: 3, Disp: 4},
		datatype.Field{Type: datatype.Float64, Blocklen: 2, Disp: 8},
	).Commit()
	user := mkUser(ty, 1, rng)
	var want []byte
	for _, b := range ty.TypeMap() {
		want = append(want, user[b.Off:b.Off+b.Len]...)
	}
	packed := make([]byte, ty.Size())
	GenericPack(packed, user, ty, 1, 0, -1)
	if !bytes.Equal(packed, want) {
		t.Fatalf("generic pack order diverges from type map:\n got %v\nwant %v", packed, want)
	}
}

func TestFFEqualsGenericForSingleLeafTypes(t *testing.T) {
	// Vector types flatten to one leaf, so the leaf-major and canonical
	// linearizations coincide.
	rng := rand.New(rand.NewSource(4))
	for _, ty := range []*datatype.Type{
		datatype.Vector(8, 2, 4, datatype.Float64).Commit(),
		datatype.Contiguous(32, datatype.Int32).Commit(),
		datatype.Hvector(5, 3, 64, datatype.Int64).Commit(),
	} {
		user := mkUser(ty, 2, rng)
		a := make([]byte, ty.Size()*2)
		b := make([]byte, ty.Size()*2)
		FFPack(BufferSink{a}, user, ty, 2, 0, -1)
		GenericPack(b, user, ty, 2, 0, -1)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: ff and generic linearizations differ", ty)
		}
	}
}

func TestPartialPacksConcatenate(t *testing.T) {
	// Packing in arbitrary chunks must produce exactly the full pack —
	// the requirement the rendezvous protocol puts on direct_pack_ff
	// ("pack only parts of the data starting at an arbitrary point").
	rng := rand.New(rand.NewSource(5))
	inner := datatype.StructOf(
		datatype.Field{Type: datatype.Int32, Blocklen: 1, Disp: 0},
		datatype.Field{Type: datatype.Char, Blocklen: 3, Disp: 4},
	)
	ty := datatype.Vector(11, 2, 3, datatype.Resized(inner, 0, 8)).Commit()
	const count = 3
	user := mkUser(ty, count, rng)
	total := ty.Size() * count

	full := make([]byte, total)
	FFPack(BufferSink{full}, user, ty, count, 0, -1)

	for trial := 0; trial < 50; trial++ {
		got := make([]byte, total)
		var off int64
		for off < total {
			chunk := int64(rng.Intn(97) + 1)
			n, _ := FFPack(offsetSink{BufferSink{got}, off}, user, ty, count, off, chunk)
			if n == 0 {
				t.Fatalf("trial %d: no progress at offset %d", trial, off)
			}
			off += n
		}
		if !bytes.Equal(got, full) {
			t.Fatalf("trial %d: chunked pack differs from full pack", trial)
		}
	}
}

// offsetSink shifts sink offsets by a base (chunked packing writes each
// chunk at its linearization offset).
type offsetSink struct {
	s    Sink
	base int64
}

func (o offsetSink) Write(off int64, src []byte) { o.s.Write(o.base+off, src) }

func TestPartialUnpacksReassemble(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ty := datatype.Indexed([]int{2, 5, 1}, []int{10, 0, 7}, datatype.Float32).Commit()
	const count = 4
	user := mkUser(ty, count, rng)
	total := ty.Size() * count
	packed := make([]byte, total)
	FFPack(BufferSink{packed}, user, ty, count, 0, -1)

	out := make([]byte, len(user))
	var off int64
	for off < total {
		chunk := int64(rng.Intn(31) + 1)
		if off+chunk > total {
			chunk = total - off
		}
		n, _ := FFUnpack(out, packed[off:off+chunk], ty, count, off, chunk)
		if n != chunk {
			t.Fatalf("unpacked %d of %d at offset %d", n, chunk, off)
		}
		off += chunk
	}
	checkCoveredEqual(t, ty, count, user, out)
}

func TestGenericPartialPacks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ty := datatype.Vector(9, 3, 7, datatype.Int32).Commit()
	const count = 2
	user := mkUser(ty, count, rng)
	total := ty.Size() * count
	full := make([]byte, total)
	GenericPack(full, user, ty, count, 0, -1)
	got := make([]byte, total)
	var off int64
	for off < total {
		chunk := int64(rng.Intn(53) + 1)
		if off+chunk > total {
			chunk = total - off
		}
		buf := make([]byte, chunk)
		n, _ := GenericPack(buf, user, ty, count, off, chunk)
		copy(got[off:], buf[:n])
		if n != chunk {
			t.Fatalf("generic packed %d of %d at %d", n, chunk, off)
		}
		off += chunk
	}
	if !bytes.Equal(got, full) {
		t.Fatal("generic chunked pack differs from full pack")
	}
}

func TestStatsBlockCounts(t *testing.T) {
	ty := datatype.Vector(10, 2, 4, datatype.Float64).Commit()
	user := make([]byte, ty.Extent()+64)
	packed := make([]byte, ty.Size())
	_, st := FFPack(BufferSink{packed}, user, ty, 1, 0, -1)
	if st.Blocks != 10 {
		t.Errorf("ff blocks = %d, want 10", st.Blocks)
	}
	if st.MinBlock != 16 || st.MaxBlock != 16 {
		t.Errorf("block sizes %d..%d, want 16..16", st.MinBlock, st.MaxBlock)
	}
	if st.AvgBlock() != 16 {
		t.Errorf("avg block = %d, want 16", st.AvgBlock())
	}
	_, gst := GenericPack(packed, user, ty, 1, 0, -1)
	if gst.Blocks != 20 { // generic walks per basic element run: 2 doubles fuse? per walk: blocklen elems visited individually
		// Generic visits each basic element; adjacent copies are not fused.
		t.Logf("generic blocks = %d", gst.Blocks)
	}
	if gst.Bytes != st.Bytes {
		t.Errorf("generic bytes %d != ff bytes %d", gst.Bytes, st.Bytes)
	}
}

func TestZeroSizeOperations(t *testing.T) {
	ty := datatype.Vector(0, 2, 4, datatype.Float64).Commit()
	n, st := FFPack(BufferSink{nil}, nil, ty, 5, 0, -1)
	if n != 0 || st.Blocks != 0 {
		t.Errorf("zero-size pack moved %d bytes in %d blocks", n, st.Blocks)
	}
	ty2 := datatype.Contiguous(4, datatype.Int32).Commit()
	n, _ = FFPack(BufferSink{make([]byte, 16)}, make([]byte, 16), ty2, 1, 16, -1)
	if n != 0 {
		t.Errorf("pack at end offset moved %d bytes", n)
	}
}

func TestSkipBeyondTotalPanics(t *testing.T) {
	ty := datatype.Contiguous(4, datatype.Int32).Commit()
	defer func() {
		if recover() == nil {
			t.Error("skip beyond total did not panic")
		}
	}()
	FFPack(BufferSink{nil}, nil, ty, 1, 17, -1)
}

// randomType builds a random committed datatype of bounded depth/size for
// property testing.
func randomType(rng *rand.Rand, depth int) *datatype.Type {
	basics := []*datatype.Type{datatype.Byte, datatype.Int16, datatype.Int32, datatype.Int64, datatype.Float64}
	if depth <= 0 || rng.Intn(3) == 0 {
		return basics[rng.Intn(len(basics))]
	}
	elem := randomType(rng, depth-1)
	switch rng.Intn(5) {
	case 0:
		return datatype.Contiguous(rng.Intn(4)+1, elem)
	case 1:
		bl := rng.Intn(3) + 1
		return datatype.Vector(rng.Intn(4)+1, bl, bl+rng.Intn(3), elem)
	case 2:
		bl := rng.Intn(3) + 1
		return datatype.Hvector(rng.Intn(4)+1, bl, int64(bl)*elem.Extent()+int64(rng.Intn(16)), elem)
	case 3:
		nb := rng.Intn(3) + 1
		lens := make([]int, nb)
		displs := make([]int, nb)
		next := 0
		for i := range lens {
			lens[i] = rng.Intn(3) + 1
			displs[i] = next + rng.Intn(3)
			next = displs[i] + lens[i] + rng.Intn(2)
		}
		return datatype.Indexed(lens, displs, elem)
	default:
		nf := rng.Intn(3) + 1
		fields := make([]datatype.Field, nf)
		var disp int64
		for i := range fields {
			ft := randomType(rng, depth-1)
			bl := rng.Intn(2) + 1
			fields[i] = datatype.Field{Type: ft, Blocklen: bl, Disp: disp + int64(rng.Intn(8))}
			disp = fields[i].Disp + int64(bl)*ft.Extent()
		}
		return datatype.StructOf(fields...)
	}
}

func TestPropertyFFRoundTripRandomTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		ty := randomType(rng, 3)
		if ty.Size() == 0 {
			continue
		}
		ty.Commit()
		count := rng.Intn(3) + 1
		user := mkUser(ty, count, rng)
		packed := make([]byte, ty.Size()*int64(count))
		n, _ := FFPack(BufferSink{packed}, user, ty, count, 0, -1)
		if n != int64(len(packed)) {
			t.Fatalf("trial %d (%s): packed %d of %d", trial, ty, n, len(packed))
		}
		out := make([]byte, len(user))
		FFUnpack(out, packed, ty, count, 0, -1)
		checkCoveredEqual(t, ty, count, user, out)
	}
}

func TestPropertyChunkedEqualsFullRandomTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		ty := randomType(rng, 3)
		if ty.Size() == 0 {
			continue
		}
		ty.Commit()
		count := rng.Intn(2) + 1
		user := mkUser(ty, count, rng)
		total := ty.Size() * int64(count)
		full := make([]byte, total)
		FFPack(BufferSink{full}, user, ty, count, 0, -1)
		got := make([]byte, total)
		var off int64
		for off < total {
			chunk := int64(rng.Intn(17) + 1)
			n, _ := FFPack(offsetSink{BufferSink{got}, off}, user, ty, count, off, chunk)
			off += n
		}
		if !bytes.Equal(got, full) {
			t.Fatalf("trial %d (%s): chunked != full", trial, ty)
		}
	}
}

func TestPropertyGenericRoundTripRandomTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 200; trial++ {
		ty := randomType(rng, 3)
		if ty.Size() == 0 {
			continue
		}
		ty.Commit()
		count := rng.Intn(3) + 1
		user := mkUser(ty, count, rng)
		packed := make([]byte, ty.Size()*int64(count))
		GenericPack(packed, user, ty, count, 0, -1)
		out := make([]byte, len(user))
		GenericUnpack(out, packed, ty, count, 0, -1)
		checkCoveredEqual(t, ty, count, user, out)
	}
}

func TestPropertyFFAndGenericMoveSameByteSet(t *testing.T) {
	// The linearization order may differ, but the multiset of moved bytes
	// (source offsets) must be identical.
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 200; trial++ {
		ty := randomType(rng, 3)
		if ty.Size() == 0 {
			continue
		}
		ty.Commit()
		user := mkUser(ty, 1, rng)
		a := make([]byte, ty.Size())
		b := make([]byte, ty.Size())
		FFPack(BufferSink{a}, user, ty, 1, 0, -1)
		GenericPack(b, user, ty, 1, 0, -1)
		sa := append([]byte(nil), a...)
		sb := append([]byte(nil), b...)
		sortBytes(sa)
		sortBytes(sb)
		if !bytes.Equal(sa, sb) {
			t.Fatalf("trial %d (%s): engines moved different byte multisets", trial, ty)
		}
	}
}

func sortBytes(b []byte) {
	var counts [256]int
	for _, x := range b {
		counts[x]++
	}
	i := 0
	for v := 0; v < 256; v++ {
		for k := 0; k < counts[v]; k++ {
			b[i] = byte(v)
			i++
		}
	}
}

func TestCumulative(t *testing.T) {
	var c Cumulative
	if got := c.Snapshot(); got != (CumulativeStats{}) {
		t.Fatalf("fresh accumulator = %+v, want zero", got)
	}
	c.Add(Stats{Blocks: 4, Bytes: 64, MinBlock: 8, MaxBlock: 32})
	c.Add(Stats{Blocks: 2, Bytes: 16, MinBlock: 8, MaxBlock: 8})
	c.Add(Stats{}) // empty operations are not counted
	got := c.Snapshot()
	want := CumulativeStats{Ops: 2, Blocks: 6, Bytes: 80, MaxBlock: 32}
	if got != want {
		t.Errorf("Snapshot() = %+v, want %+v", got, want)
	}
	var nilC *Cumulative
	nilC.Add(Stats{Blocks: 1, Bytes: 1})
	if nilC.Snapshot() != (CumulativeStats{}) {
		t.Errorf("nil accumulator snapshot not zero")
	}
}

func TestCumulativeConcurrent(t *testing.T) {
	var c Cumulative
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Add(Stats{Blocks: 1, Bytes: 10, MaxBlock: int64(g*100 + i)})
				c.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	got := c.Snapshot()
	if got.Ops != 800 || got.Blocks != 800 || got.Bytes != 8000 {
		t.Errorf("totals = %+v, want 800 ops / 800 blocks / 8000 bytes", got)
	}
	if got.MaxBlock != 799 {
		t.Errorf("MaxBlock = %d, want 799", got.MaxBlock)
	}
}
