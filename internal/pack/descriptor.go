package pack

// Descriptor is one element of a scatter-gather list: a contiguous run of
// Len bytes at SrcOff in the user buffer that belongs at DstOff of the
// (dense) linearization. Descriptor lists drive DMA engines that move
// non-contiguous data without a CPU pack pass (cf. Di Girolamo et al.,
// "Network-Accelerated Non-Contiguous Memory Transfers").
type Descriptor struct {
	SrcOff int64 // user-buffer offset of the run
	DstOff int64 // linearization offset, relative to the start of the call
	Len    int64 // run length in bytes
}

// Descriptors appends the scatter-gather list of the next maxBytes bytes
// (negative: to the end) of the linearization to dst and advances the
// cursor, exactly like Pack but emitting descriptors instead of copying.
// Runs that are contiguous on both the source and the destination side are
// merged into one descriptor, so a dense sub-layout costs one entry rather
// than one per leaf block. DstOff is relative to the cursor position at the
// start of the call (the chunk convention shared with Pack).
//
// The returned slice is dst, possibly regrown; callers that reuse a slice
// with sufficient capacity across chunks (append into descs[:0]) complete
// the whole operation without allocating. The returned Stats describe the
// underlying block structure before merging — the traversal work the CPU
// actually performs to build the list.
func (c *Cursor) Descriptors(dst []Descriptor, maxBytes int64) ([]Descriptor, Stats) {
	base := len(dst)
	_, st := c.run(c.clamp(maxBytes), func(userOff, linOff, n int64) {
		if k := len(dst); k > base {
			if last := &dst[k-1]; last.SrcOff+last.Len == userOff && last.DstOff+last.Len == linOff {
				last.Len += n
				return
			}
		}
		dst = append(dst, Descriptor{SrcOff: userOff, DstOff: linOff, Len: n})
	})
	return dst, st
}

// DescriptorRuns returns the total byte count and the number of
// destination-contiguous runs of a descriptor list (the streaming unit of
// a scatter-gather engine: source gathers that land back-to-back in the
// destination continue one stream transaction).
func DescriptorRuns(descs []Descriptor) (bytes int64, runs int) {
	if len(descs) == 0 {
		return 0, 0
	}
	runs = 1
	bytes = descs[0].Len
	for i := 1; i < len(descs); i++ {
		bytes += descs[i].Len
		if descs[i].DstOff != descs[i-1].DstOff+descs[i-1].Len {
			runs++
		}
	}
	return bytes, runs
}
