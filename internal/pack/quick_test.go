package pack

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"scimpich/internal/datatype"
)

// Property-based tests with testing/quick. A typeSpec is a reduced,
// always-valid description of a derived datatype that quick can generate;
// build turns it into a committed *datatype.Type.

type typeSpec struct {
	Kind     uint8
	Count    uint8
	Blocklen uint8
	Gap      uint8
	Elem     *typeSpec
	Lens     []uint8
}

// Generate implements quick.Generator with bounded depth.
func (typeSpec) Generate(rng *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(genSpec(rng, 3))
}

func genSpec(rng *rand.Rand, depth int) typeSpec {
	s := typeSpec{
		Kind:     uint8(rng.Intn(5)),
		Count:    uint8(rng.Intn(4) + 1),
		Blocklen: uint8(rng.Intn(3) + 1),
		Gap:      uint8(rng.Intn(3)),
	}
	if depth > 0 && rng.Intn(2) == 0 {
		e := genSpec(rng, depth-1)
		s.Elem = &e
	}
	n := rng.Intn(3) + 1
	s.Lens = make([]uint8, n)
	for i := range s.Lens {
		s.Lens[i] = uint8(rng.Intn(3) + 1)
	}
	return s
}

// build converts the spec into a committed type.
func (s typeSpec) build() *datatype.Type {
	elem := datatype.Float64
	if s.Elem != nil {
		elem = s.Elem.build()
	}
	count := int(s.Count)
	bl := int(s.Blocklen)
	switch s.Kind % 5 {
	case 0:
		return datatype.Contiguous(count, elem).Commit()
	case 1:
		return datatype.Vector(count, bl, bl+int(s.Gap), elem).Commit()
	case 2:
		stride := int64(bl)*elem.Extent() + int64(s.Gap)*8
		return datatype.Hvector(count, bl, stride, elem).Commit()
	case 3:
		lens := make([]int, len(s.Lens))
		displs := make([]int, len(s.Lens))
		next := 0
		for i := range lens {
			lens[i] = int(s.Lens[i])
			displs[i] = next
			next += lens[i] + int(s.Gap)
		}
		return datatype.Indexed(lens, displs, elem).Commit()
	default:
		fields := make([]datatype.Field, len(s.Lens))
		var disp int64
		for i := range fields {
			fields[i] = datatype.Field{Type: elem, Blocklen: int(s.Lens[i]), Disp: disp}
			disp += int64(s.Lens[i])*elem.Extent() + int64(s.Gap)*4
		}
		return datatype.StructOf(fields...).Commit()
	}
}

// userBuf allocates a filled buffer large enough for count instances.
func userBufFor(t *datatype.Type, count int, seed int64) []byte {
	n := t.Extent()*int64(count-1) + t.UB() + 64
	if n < 64 {
		n = 64
	}
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(255) + 1)
	}
	return b
}

func TestQuickFFRoundTripIdentity(t *testing.T) {
	prop := func(s typeSpec, seed int64) bool {
		ty := s.build()
		if ty.Size() == 0 {
			return true
		}
		user := userBufFor(ty, 2, seed)
		packed := make([]byte, ty.Size()*2)
		n, _ := FFPack(BufferSink{packed}, user, ty, 2, 0, -1)
		if n != int64(len(packed)) {
			return false
		}
		out := make([]byte, len(user))
		m, _ := FFUnpack(out, packed, ty, 2, 0, -1)
		if m != n {
			return false
		}
		// Every data byte must match; every gap byte must stay zero.
		covered := make([]bool, len(user))
		for i := 0; i < 2; i++ {
			base := int64(i) * ty.Extent()
			for _, blk := range ty.TypeMap() {
				for j := int64(0); j < blk.Len; j++ {
					covered[base+blk.Off+j] = true
				}
			}
		}
		for i := range user {
			if covered[i] && out[i] != user[i] {
				return false
			}
			if !covered[i] && out[i] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickChunkedPackEqualsFullPack(t *testing.T) {
	prop := func(s typeSpec, seed int64, chunkSeed uint16) bool {
		ty := s.build()
		if ty.Size() == 0 {
			return true
		}
		user := userBufFor(ty, 1, seed)
		total := ty.Size()
		full := make([]byte, total)
		FFPack(BufferSink{full}, user, ty, 1, 0, -1)
		got := make([]byte, total)
		chunk := int64(chunkSeed%31) + 1
		var off int64
		for off < total {
			n, _ := FFPack(offsetSink{BufferSink{got}, off}, user, ty, 1, off, chunk)
			if n == 0 {
				return false
			}
			off += n
		}
		return bytes.Equal(got, full)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGenericAndFFMoveSameBytes(t *testing.T) {
	prop := func(s typeSpec, seed int64) bool {
		ty := s.build()
		if ty.Size() == 0 {
			return true
		}
		user := userBufFor(ty, 1, seed)
		a := make([]byte, ty.Size())
		b := make([]byte, ty.Size())
		FFPack(BufferSink{a}, user, ty, 1, 0, -1)
		GenericPack(b, user, ty, 1, 0, -1)
		sortBytes(a)
		sortBytes(b)
		return bytes.Equal(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStatsConsistency(t *testing.T) {
	// Blocks * MinBlock <= Bytes <= Blocks * MaxBlock, and Bytes equals
	// the packed size.
	prop := func(s typeSpec, seed int64) bool {
		ty := s.build()
		if ty.Size() == 0 {
			return true
		}
		user := userBufFor(ty, 1, seed)
		out := make([]byte, ty.Size())
		n, st := FFPack(BufferSink{out}, user, ty, 1, 0, -1)
		if st.Bytes != n || n != ty.Size() {
			return false
		}
		if st.Blocks*st.MinBlock > st.Bytes || st.Blocks*st.MaxBlock < st.Bytes {
			return false
		}
		return st.AvgBlock() >= st.MinBlock && st.AvgBlock() <= st.MaxBlock
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFingerprintStability(t *testing.T) {
	// Equal specs produce equal fingerprints; the fingerprint survives
	// re-flattening.
	prop := func(s typeSpec) bool {
		a := s.build()
		b := s.build()
		return a.Flat().Fingerprint() == b.Flat().Fingerprint()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWalkCoversTypeMap(t *testing.T) {
	prop := func(s typeSpec, seed int64) bool {
		ty := s.build()
		if ty.Size() == 0 {
			return true
		}
		seen := map[int64]bool{}
		var total int64
		Walk(ty, 1, func(off, size int64) {
			for j := int64(0); j < size; j++ {
				if seen[off+j] {
					total = -1 << 40 // overlap: fail
				}
				seen[off+j] = true
			}
			total += size
		})
		if total != ty.Size() {
			return false
		}
		for _, blk := range ty.TypeMap() {
			for j := int64(0); j < blk.Len; j++ {
				if !seen[blk.Off+j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCursorChunkedEqualsFullPack is the cursor-resume property: a
// pack split into N random-sized chunks continued by one Cursor must be
// byte-identical to a single FFPack, for any generated derived type.
func TestQuickCursorChunkedEqualsFullPack(t *testing.T) {
	prop := func(s typeSpec, seed int64, chunkSeed uint16) bool {
		ty := s.build()
		if ty.Size() == 0 {
			return true
		}
		const count = 2
		user := userBufFor(ty, count, seed)
		total := ty.Size() * count
		full := make([]byte, total)
		FFPack(BufferSink{full}, user, ty, count, 0, -1)
		got := make([]byte, total)
		cur := NewCursor(ty, count)
		rng := rand.New(rand.NewSource(int64(chunkSeed)))
		for !cur.Done() {
			chunk := int64(rng.Intn(29) + 1)
			off := cur.Offset()
			n, _ := cur.Pack(offsetSink{BufferSink{got}, off}, user, chunk)
			if n == 0 || cur.Offset() != off+n {
				return false
			}
		}
		return bytes.Equal(got, full)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCursorUnpackChunkedRoundTrip drives the receive direction: a
// chunked cursor unpack of a full pack must land every byte.
func TestQuickCursorUnpackChunkedRoundTrip(t *testing.T) {
	prop := func(s typeSpec, seed int64, chunkSeed uint16) bool {
		ty := s.build()
		if ty.Size() == 0 {
			return true
		}
		const count = 2
		user := userBufFor(ty, count, seed)
		total := ty.Size() * count
		packed := make([]byte, total)
		FFPack(BufferSink{packed}, user, ty, count, 0, -1)
		out := make([]byte, len(user))
		cur := NewCursor(ty, count)
		rng := rand.New(rand.NewSource(int64(chunkSeed)))
		for !cur.Done() {
			chunk := int64(rng.Intn(29) + 1)
			off := cur.Offset()
			end := off + chunk
			if end > total {
				end = total
			}
			cur.Unpack(out, packed[off:end], chunk)
		}
		ref := make([]byte, len(user))
		FFUnpack(ref, packed, ty, count, 0, -1)
		return bytes.Equal(out, ref)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCursorSeekEqualsSkip: seeking to an arbitrary offset (the
// O(leaves)+O(depth) find_position entry) then packing the remainder must
// match FFPack with the same skip.
func TestQuickCursorSeekEqualsSkip(t *testing.T) {
	prop := func(s typeSpec, seed int64, skipSeed uint16) bool {
		ty := s.build()
		if ty.Size() == 0 {
			return true
		}
		const count = 2
		user := userBufFor(ty, count, seed)
		total := ty.Size() * count
		skip := int64(skipSeed) % total
		want := make([]byte, total-skip)
		FFPack(BufferSink{want}, user, ty, count, skip, -1)
		got := make([]byte, total-skip)
		cur := NewCursor(ty, count)
		cur.SeekTo(skip)
		n, _ := cur.Pack(BufferSink{got}, user, -1)
		return n == total-skip && cur.Done() && bytes.Equal(got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDescriptorsEqualFFPack is the scatter-gather property: applying
// the descriptor lists of a chunked cursor traversal — including a retry
// replay of random chunks, as the rendezvous path does after a transient
// DMA fault — must deposit exactly the bytes a one-shot FFPack produces.
func TestQuickDescriptorsEqualFFPack(t *testing.T) {
	prop := func(s typeSpec, seed int64, chunkSeed uint16) bool {
		ty := s.build()
		if ty.Size() == 0 {
			return true
		}
		const count = 2
		user := userBufFor(ty, count, seed)
		total := ty.Size() * count
		full := make([]byte, total)
		FFPack(BufferSink{full}, user, ty, count, 0, -1)
		got := make([]byte, total)
		cur := NewCursor(ty, count)
		rng := rand.New(rand.NewSource(int64(chunkSeed)))
		var descs []Descriptor
		apply := func(start int64) bool {
			n, runs := DescriptorRuns(descs)
			if runs > len(descs) {
				return false
			}
			for _, d := range descs {
				copy(got[start+d.DstOff:], user[d.SrcOff:d.SrcOff+d.Len])
			}
			return n == cur.Offset()-start
		}
		for !cur.Done() {
			chunk := int64(rng.Intn(29) + 1)
			start := cur.Offset()
			var st Stats
			descs, st = cur.Descriptors(descs[:0], chunk)
			if st.Bytes != cur.Offset()-start || !apply(start) {
				return false
			}
			if rng.Intn(3) == 0 {
				// Retry: rewind and regenerate, as after a faulted submit.
				cur.SeekTo(start)
				descs, _ = cur.Descriptors(descs[:0], chunk)
				if !apply(start) {
					return false
				}
			}
		}
		return bytes.Equal(got, full)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWalkMatchesFFPackStats: the layout iterator and the packing
// engine must agree on the block structure (count, bytes, min/max) of any
// derived type.
func TestQuickWalkMatchesFFPackStats(t *testing.T) {
	prop := func(s typeSpec, seed int64) bool {
		ty := s.build()
		if ty.Size() == 0 {
			return true
		}
		const count = 3
		user := userBufFor(ty, count, seed)
		out := make([]byte, ty.Size()*count)
		_, ps := FFPack(BufferSink{out}, user, ty, count, 0, -1)
		ws := Walk(ty, count, func(off, size int64) {})
		return ws == ps
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
