// Package pack implements the two packing engines compared in the paper:
//
//   - Generic: the portable MPICH baseline — a recursive traversal of the
//     datatype tree that packs into (or unpacks from) a local contiguous
//     buffer in definition order.
//   - direct_pack_ff: the paper's contribution (§3.3) — a non-recursive
//     engine driven by the flattened leaf/stack representation built at
//     commit time. It can start at an arbitrary byte offset (find_position)
//     and pack any number of bytes, and it writes through a Sink, which may
//     be local memory or — the point of the exercise — transparently mapped
//     remote SCI memory, eliminating the intermediate copies.
//
// Both engines return Stats so the simulation devices can charge
// appropriate virtual-time costs.
package pack

import (
	"fmt"
	"sync/atomic"

	"scimpich/internal/datatype"
)

// Sink receives packed bytes at ascending offsets relative to the start of
// the packing operation. sci.BlockWriter and shmem.BlockWriter satisfy it.
type Sink interface {
	Write(off int64, src []byte)
}

// Stats describes the block structure of a pack/unpack operation.
type Stats struct {
	// Blocks is the number of contiguous copy operations performed.
	Blocks int64
	// Bytes is the number of data bytes moved.
	Bytes int64
	// MinBlock and MaxBlock bound the block sizes encountered (0 if none).
	MinBlock int64
	MaxBlock int64
}

func (s *Stats) add(n int64) {
	s.Blocks++
	s.Bytes += n
	if s.MinBlock == 0 || n < s.MinBlock {
		s.MinBlock = n
	}
	if n > s.MaxBlock {
		s.MaxBlock = n
	}
}

// AvgBlock returns the mean block size, or 0 for an empty operation.
func (s *Stats) AvgBlock() int64 {
	if s.Blocks == 0 {
		return 0
	}
	return s.Bytes / s.Blocks
}

// Cumulative accumulates the Stats of many pack/unpack operations. All
// methods are safe for concurrent use (and on a nil receiver), so
// simulation processes on different goroutines can share one accumulator
// and harnesses can Snapshot() it while a run is in flight.
type Cumulative struct {
	ops, blocks, bytes atomic.Int64
	maxBlock           atomic.Int64
}

// Add folds one operation's Stats into the running totals.
func (c *Cumulative) Add(st Stats) {
	if c == nil || st.Blocks == 0 {
		return
	}
	c.ops.Add(1)
	c.blocks.Add(st.Blocks)
	c.bytes.Add(st.Bytes)
	for {
		cur := c.maxBlock.Load()
		if st.MaxBlock <= cur || c.maxBlock.CompareAndSwap(cur, st.MaxBlock) {
			return
		}
	}
}

// CumulativeStats is a race-free snapshot of a Cumulative accumulator.
type CumulativeStats struct {
	// Ops is the number of pack/unpack operations folded in.
	Ops int64
	// Blocks and Bytes total the contiguous copies and data bytes moved.
	Blocks, Bytes int64
	// MaxBlock is the largest single block encountered.
	MaxBlock int64
}

// Snapshot returns a point-in-time copy of the totals (zero on nil).
func (c *Cumulative) Snapshot() CumulativeStats {
	if c == nil {
		return CumulativeStats{}
	}
	return CumulativeStats{
		Ops:      c.ops.Load(),
		Blocks:   c.blocks.Load(),
		Bytes:    c.bytes.Load(),
		MaxBlock: c.maxBlock.Load(),
	}
}

// BufferSink packs into a contiguous local buffer.
type BufferSink struct {
	Buf []byte
}

// Write implements Sink.
func (b BufferSink) Write(off int64, src []byte) {
	copy(b.Buf[off:], src)
}

// checkArgs validates and normalizes the (count, skip, maxBytes) triple
// against the type's packed size, returning the effective byte budget.
func checkArgs(t *datatype.Type, count int, skip, maxBytes int64) int64 {
	if count < 0 {
		panic("pack: negative count")
	}
	total := t.Size() * int64(count)
	if skip < 0 || skip > total {
		panic(fmt.Sprintf("pack: skip %d outside packed size %d", skip, total))
	}
	if maxBytes < 0 || skip+maxBytes > total {
		maxBytes = total - skip
	}
	return maxBytes
}
