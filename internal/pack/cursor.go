package pack

import (
	"fmt"

	"scimpich/internal/datatype"
)

// inlineDepth is the stack depth a Cursor tracks without heap allocation.
// Deeper types (rare: depth is bounded by the constructor nesting) fall back
// to one odometer allocation at creation time.
const inlineDepth = 8

// Cursor is a resumable direct_pack_ff iterator over the leaf-major
// linearization of count instances of a committed datatype. It carries the
// paper's find_position state — instance number, leaf index, per-level
// odometer and in-block remainder — across calls, so chunked transfers
// (rendezvous protocol, OSC segmented puts/gets) continue in O(1) where a
// per-chunk find_position restart would cost O(leaves)+O(depth) and an
// odometer allocation per leaf.
//
// The zero Cursor is not usable; create one with NewCursor. A Cursor must
// not be copied after first use (it owns an inline odometer buffer) and is
// not safe for concurrent use.
type Cursor struct {
	f     *datatype.Flat
	count int64
	total int64

	off  int64 // linearization bytes already consumed
	inst int64 // current type instance
	leaf int   // current leaf within the instance
	rem  int64 // bytes already copied of the current block

	// The odometer lives in idxBuf; only types deeper than inlineDepth
	// allocate deep. The two are never aliased by a stored slice — storing
	// idxBuf[:] into a field would defeat escape analysis and force every
	// stack cursor (FFPack, Walk) onto the heap.
	idxBuf [inlineDepth]int64
	deep   []int64

	dense    bool  // count instances form one gap-free run
	denseOff int64 // user-buffer start of that run
}

// NewCursor returns a cursor positioned at linearization offset 0.
func NewCursor(t *datatype.Type, count int) *Cursor {
	c := &Cursor{}
	c.init(t, count)
	return c
}

// init prepares a (possibly stack-allocated) cursor in place.
func (c *Cursor) init(t *datatype.Type, count int) {
	if count < 0 {
		panic("pack: negative count")
	}
	f := t.Flat()
	c.f = f
	c.count = int64(count)
	c.total = f.Size * int64(count)
	c.denseOff, c.dense = denseRun(f)
	c.deep = nil
	if f.Depth > inlineDepth {
		c.deep = make([]int64, f.Depth)
	}
	c.Reset()
}

// odo returns the cursor's odometer storage.
func (c *Cursor) odo() []int64 {
	if c.deep != nil {
		return c.deep
	}
	return c.idxBuf[:]
}

// Reset rewinds the cursor to linearization offset 0.
func (c *Cursor) Reset() {
	c.off, c.inst, c.leaf, c.rem = 0, 0, 0, 0
	c.idxBuf = [inlineDepth]int64{}
	for j := range c.deep {
		c.deep[j] = 0
	}
}

// Offset returns the linearization offset the cursor is positioned at.
func (c *Cursor) Offset() int64 { return c.off }

// Total returns the packed size of the whole operation.
func (c *Cursor) Total() int64 { return c.total }

// Remaining returns the bytes left to the end of the linearization.
func (c *Cursor) Remaining() int64 { return c.total - c.off }

// Done reports whether the cursor has consumed the whole linearization.
func (c *Cursor) Done() bool { return c.off >= c.total }

// SeekTo repositions the cursor at an arbitrary linearization offset. This is
// the O(leaves)+O(depth) find_position entry of the paper; sequential
// continuation (the common case) never needs it. Seeking to the current
// offset is free.
func (c *Cursor) SeekTo(off int64) {
	if off < 0 || off > c.total {
		panic(fmt.Sprintf("pack: seek %d outside packed size %d", off, c.total))
	}
	if off == c.off {
		return
	}
	c.off = off
	if c.dense || c.total == 0 {
		return
	}
	size := c.f.Size
	c.inst = off / size
	if c.inst == c.count { // off == total
		c.leaf, c.rem = len(c.f.Leaves), 0
		return
	}
	c.leaf, c.rem = c.f.FindPositionInto(off-c.inst*size, c.odo()[:c.f.Depth])
}

// clamp normalizes a maxBytes argument (negative means "to the end")
// against the remaining budget.
func (c *Cursor) clamp(maxBytes int64) int64 {
	rem := c.total - c.off
	if maxBytes < 0 || maxBytes > rem {
		return rem
	}
	return maxBytes
}

// Pack packs up to maxBytes bytes (negative: to the end) from the user
// buffer into sink, advancing the cursor. Sink offsets are relative to the
// cursor position at the start of the call, matching FFPack's convention
// for a chunk starting at skip.
func (c *Cursor) Pack(sink Sink, user []byte, maxBytes int64) (int64, Stats) {
	return c.run(c.clamp(maxBytes), func(userOff, linOff, n int64) {
		sink.Write(linOff, user[userOff:userOff+n])
	})
}

// Unpack is the direction swap: it copies packed bytes from src (whose byte
// 0 corresponds to the cursor's current offset) into the non-contiguous
// user buffer, advancing the cursor.
func (c *Cursor) Unpack(user, src []byte, maxBytes int64) (int64, Stats) {
	return c.run(c.clamp(maxBytes), func(userOff, linOff, n int64) {
		copy(user[userOff:userOff+n], src[linOff:linOff+n])
	})
}

// run drives the leaf/stack iteration for up to budget bytes, invoking move
// for every contiguous block: move(userOff, linOff, n) with linOff relative
// to the call start. budget must already be clamped to Remaining().
func (c *Cursor) run(budget int64, move func(userOff, linOff, n int64)) (int64, Stats) {
	var st Stats
	if budget <= 0 {
		return 0, st
	}
	if c.dense {
		move(c.denseOff+c.off, 0, budget)
		st.add(budget)
		c.off += budget
		return budget, st
	}
	var written int64
	for written < budget && c.inst < c.count {
		written = c.instance(move, written, budget, &st)
		if c.leaf >= len(c.f.Leaves) {
			c.inst++
			c.leaf, c.rem = 0, 0
		}
	}
	c.off += written
	return written, st
}

// instance packs the current type instance from the cursor position,
// stopping at the byte budget. It leaves the cursor state at the stopping
// point and returns the updated written count.
func (c *Cursor) instance(move func(userOff, linOff, n int64), written, budget int64, st *Stats) int64 {
	f := c.f
	base := c.inst * f.Extent
	for c.leaf < len(f.Leaves) {
		leaf := &f.Leaves[c.leaf]
		switch len(leaf.Stack) {
		case 0:
			// Once-occurring block: a single (possibly split) copy.
			n := leaf.Size - c.rem
			if written+n > budget {
				n = budget - written
			}
			move(base+leaf.First+c.rem, written, n)
			st.add(n)
			written += n
			c.rem += n
			if c.rem < leaf.Size {
				return written // budget hit mid-block
			}
			c.rem = 0
			c.leaf++
		case 1:
			// Dominant shape (vectors, matrix rows/columns): one replication
			// level, iterated without the odometer.
			lv := &leaf.Stack[0]
			odo := c.odo()
			i := odo[0]
			for i < lv.Count {
				n := leaf.Size - c.rem
				if written+n > budget {
					n = budget - written
				}
				move(base+leaf.First+i*lv.Stride+c.rem, written, n)
				st.add(n)
				written += n
				c.rem += n
				if c.rem < leaf.Size {
					odo[0] = i
					return written
				}
				c.rem = 0
				i++
				if written >= budget {
					break
				}
			}
			if i < lv.Count {
				odo[0] = i
				return written
			}
			odo[0] = 0
			c.leaf++
		default:
			// General repeat pattern: odometer over the stack levels.
			stack := leaf.Stack
			idx := c.odo()[:len(stack)]
			for {
				off := base + leaf.First
				for j := range stack {
					off += idx[j] * stack[j].Stride
				}
				n := leaf.Size - c.rem
				if written+n > budget {
					n = budget - written
				}
				move(off+c.rem, written, n)
				st.add(n)
				written += n
				c.rem += n
				if c.rem < leaf.Size {
					return written
				}
				c.rem = 0
				// Odometer increment, innermost level first.
				j := len(idx) - 1
				for ; j >= 0; j-- {
					idx[j]++
					if idx[j] < stack[j].Count {
						break
					}
					idx[j] = 0
				}
				if j < 0 {
					c.leaf++ // leaf exhausted, odometer wrapped to zero
					break
				}
				if written >= budget {
					return written
				}
			}
		}
		if written >= budget {
			return written
		}
	}
	return written
}
