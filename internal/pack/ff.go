package pack

import (
	"scimpich/internal/datatype"
)

// This file implements the direct_pack_ff algorithm (paper §3.3.2, figure
// 6): scan the list of leaves; for each leaf, evaluate its repeat-pattern
// stack with two nested loops (odometer over the stack indices, plain copy
// of the contiguous block). find_position resumes a partial transfer at an
// arbitrary byte offset in O(leaves)+O(depth); split blocks at both ends of
// the budget are handled by clamping the first and last copies.
//
// The linearization is leaf-major: all occurrences of leaf 0, then leaf 1,
// and so on. Sender and receiver use the same committed representation, so
// the direction swap (pack vs. unpack) is exact.

// FFPack packs count instances of type t from the user buffer into sink,
// starting skip bytes into the linearization and packing at most maxBytes
// bytes (maxBytes < 0 means "to the end"). Sink offsets start at 0.
// It returns the number of bytes packed and the block statistics.
func FFPack(sink Sink, user []byte, t *datatype.Type, count int, skip, maxBytes int64) (int64, Stats) {
	return ffRun(t, count, skip, maxBytes, func(userOff, linOff, n int64) {
		sink.Write(linOff, user[userOff:userOff+n])
	})
}

// FFUnpack is the receive-side direction swap: it copies packed bytes from
// src (whose byte 0 corresponds to linearization offset skip) into the
// non-contiguous user buffer.
func FFUnpack(user []byte, src []byte, t *datatype.Type, count int, skip, maxBytes int64) (int64, Stats) {
	return ffRun(t, count, skip, maxBytes, func(userOff, linOff, n int64) {
		copy(user[userOff:userOff+n], src[linOff:linOff+n])
	})
}

// Walk visits every contiguous block of count instances of t in leaf-major
// order, calling fn(off, size) with user-buffer offsets. It is the layout
// iterator used for mirrored one-sided transfers (same datatype applied at
// origin and target).
func Walk(t *datatype.Type, count int, fn func(off, size int64)) Stats {
	var st Stats
	f := t.Flat()
	if first, ok := denseRun(t, f); ok {
		n := f.Size * int64(count)
		if n > 0 {
			fn(first, n)
			st.add(n)
		}
		return st
	}
	for inst := 0; inst < count; inst++ {
		base := int64(inst) * f.Extent
		for li := range f.Leaves {
			leaf := &f.Leaves[li]
			idx := make([]int64, len(leaf.Stack))
			for {
				off := base + leaf.First
				for j, lv := range leaf.Stack {
					off += idx[j] * lv.Stride
				}
				fn(off, leaf.Size)
				st.add(leaf.Size)
				j := len(idx) - 1
				for ; j >= 0; j-- {
					idx[j]++
					if idx[j] < leaf.Stack[j].Count {
						break
					}
					idx[j] = 0
				}
				if j < 0 {
					break
				}
			}
		}
	}
	return st
}

// denseRun reports whether count instances of t occupy one gap-free run,
// returning the run's starting user-buffer offset. This requires a single
// once-occurring leaf covering the whole extent.
func denseRun(t *datatype.Type, f *datatype.Flat) (int64, bool) {
	if f.Size == 0 || f.Size != f.Extent || len(f.Leaves) != 1 {
		return 0, false
	}
	l := &f.Leaves[0]
	if len(l.Stack) != 0 || l.Size != f.Size {
		return 0, false
	}
	return l.First, true
}

// ffRun drives the leaf/stack iteration, invoking move for every contiguous
// block: move(userOff, linOff, n) where linOff is relative to skip.
func ffRun(t *datatype.Type, count int, skip, maxBytes int64, move func(userOff, linOff, n int64)) (int64, Stats) {
	var st Stats
	budget := checkArgs(t, count, skip, maxBytes)
	if budget == 0 {
		return 0, st
	}
	f := t.Flat()
	size := f.Size
	// Fast path: count instances of a dense type form one contiguous run
	// (starting at the first leaf's displacement).
	if first, ok := denseRun(t, f); ok {
		move(first+skip, 0, budget)
		st.add(budget)
		return budget, st
	}
	var written int64

	inst := skip / size
	innerOff := skip - inst*size
	for ; inst < int64(count) && written < budget; inst++ {
		base := inst * f.Extent
		pos := f.FindPosition(innerOff) // O(N)+O(D), the paper's find_position
		written = ffInstance(f, base, pos, move, written, budget, &st)
		innerOff = 0
	}
	return written, st
}

// ffInstance packs one type instance starting at pos, stopping at the byte
// budget. It returns the updated written count.
func ffInstance(f *datatype.Flat, base int64, pos datatype.Position, move func(userOff, linOff, n int64), written, budget int64, st *Stats) int64 {
	for li := pos.LeafIndex; li < len(f.Leaves); li++ {
		leaf := &f.Leaves[li]
		var idx []int64
		rem := int64(0)
		if li == pos.LeafIndex {
			idx = pos.Index
			rem = pos.Rem
		} else {
			idx = make([]int64, len(leaf.Stack))
		}
		for {
			// Address of the current occurrence: first + sum(idx*stride).
			off := base + leaf.First
			for j, lv := range leaf.Stack {
				off += idx[j] * lv.Stride
			}
			n := leaf.Size - rem
			if written+n > budget {
				n = budget - written // copy the leading part of a split block
			}
			if n > 0 {
				move(off+rem, written, n)
				st.add(n)
				written += n
			}
			if written >= budget {
				return written
			}
			rem = 0
			// Odometer increment, innermost level first.
			j := len(idx) - 1
			for ; j >= 0; j-- {
				idx[j]++
				if idx[j] < leaf.Stack[j].Count {
					break
				}
				idx[j] = 0
			}
			if j < 0 {
				break // leaf exhausted
			}
		}
	}
	return written
}
