package pack

import (
	"scimpich/internal/datatype"
)

// This file implements the direct_pack_ff algorithm (paper §3.3.2, figure
// 6): scan the list of leaves; for each leaf, evaluate its repeat-pattern
// stack with two nested loops (odometer over the stack indices, plain copy
// of the contiguous block). find_position resumes a partial transfer at an
// arbitrary byte offset in O(leaves)+O(depth); split blocks at both ends of
// the budget are handled by clamping the first and last copies.
//
// The linearization is leaf-major: all occurrences of leaf 0, then leaf 1,
// and so on. Sender and receiver use the same committed representation, so
// the direction swap (pack vs. unpack) is exact.
//
// The iteration engine lives in Cursor (cursor.go); the one-shot entry
// points below drive a stack-allocated cursor so a whole pack, a skip-resume
// chunk, or a layout walk runs without heap allocations.

// FFPack packs count instances of type t from the user buffer into sink,
// starting skip bytes into the linearization and packing at most maxBytes
// bytes (maxBytes < 0 means "to the end"). Sink offsets start at 0.
// It returns the number of bytes packed and the block statistics.
func FFPack(sink Sink, user []byte, t *datatype.Type, count int, skip, maxBytes int64) (int64, Stats) {
	budget := checkArgs(t, count, skip, maxBytes)
	var c Cursor
	c.init(t, count)
	c.SeekTo(skip)
	return c.run(budget, func(userOff, linOff, n int64) {
		sink.Write(linOff, user[userOff:userOff+n])
	})
}

// FFUnpack is the receive-side direction swap: it copies packed bytes from
// src (whose byte 0 corresponds to linearization offset skip) into the
// non-contiguous user buffer.
func FFUnpack(user []byte, src []byte, t *datatype.Type, count int, skip, maxBytes int64) (int64, Stats) {
	budget := checkArgs(t, count, skip, maxBytes)
	var c Cursor
	c.init(t, count)
	c.SeekTo(skip)
	return c.run(budget, func(userOff, linOff, n int64) {
		copy(user[userOff:userOff+n], src[linOff:linOff+n])
	})
}

// Walk visits every contiguous block of count instances of t in leaf-major
// order, calling fn(off, size) with user-buffer offsets. It is the layout
// iterator used for mirrored one-sided transfers (same datatype applied at
// origin and target). Unlike the cursor engine it never splits a block, so
// it runs its own tight loops: fn is invoked directly (no budget clamping,
// no second indirection) and the odometer lives on the stack.
func Walk(t *datatype.Type, count int, fn func(off, size int64)) Stats {
	var st Stats
	f := t.Flat()
	if first, ok := denseRun(f); ok {
		n := f.Size * int64(count)
		if n > 0 {
			fn(first, n)
			st.add(n)
		}
		return st
	}
	var idxBuf [inlineDepth]int64
	idx := idxBuf[:]
	if f.Depth > inlineDepth {
		idx = make([]int64, f.Depth)
	}
	for inst := int64(0); inst < int64(count); inst++ {
		base := inst * f.Extent
		for li := range f.Leaves {
			leaf := &f.Leaves[li]
			switch len(leaf.Stack) {
			case 0:
				fn(base+leaf.First, leaf.Size)
				st.add(leaf.Size)
			case 1:
				lv := &leaf.Stack[0]
				off := base + leaf.First
				for i := int64(0); i < lv.Count; i++ {
					fn(off, leaf.Size)
					st.add(leaf.Size)
					off += lv.Stride
				}
			default:
				stack := leaf.Stack
				o := idx[:len(stack)]
				for {
					off := base + leaf.First
					for j := range stack {
						off += o[j] * stack[j].Stride
					}
					fn(off, leaf.Size)
					st.add(leaf.Size)
					// Odometer increment, innermost level first; wraps back
					// to all zeros when the leaf is exhausted.
					j := len(o) - 1
					for ; j >= 0; j-- {
						o[j]++
						if o[j] < stack[j].Count {
							break
						}
						o[j] = 0
					}
					if j < 0 {
						break
					}
				}
			}
		}
	}
	return st
}

// denseRun reports whether count instances of the flattened type occupy one
// gap-free run, returning the run's starting user-buffer offset. This
// requires a single once-occurring leaf covering the whole extent.
func denseRun(f *datatype.Flat) (int64, bool) {
	if f.Size == 0 || f.Size != f.Extent || len(f.Leaves) != 1 {
		return 0, false
	}
	l := &f.Leaves[0]
	if len(l.Stack) != 0 || l.Size != f.Size {
		return 0, false
	}
	return l.First, true
}
