package flow

// CongestionModel maps the offered load on a link and the number of flows
// multiplexed over it to the fraction of nominal capacity the link actually
// delivers.
type CongestionModel interface {
	// AchievedFraction returns the delivered throughput as a fraction of
	// nominal capacity, given offered load (demand/capacity, may exceed 1)
	// and the number of concurrent flows on the link.
	AchievedFraction(load float64, flows int) float64
}

// SCIRingCongestion reproduces the saturation behaviour of a single SCI
// ringlet as measured in the paper's Table 2 ("Scalability for different
// segment utilization levels").
//
// The table provides, for a segment utilization of 8 transfers, pairs of
// (ring load, achieved efficiency):
//
//	load 0.763 -> 0.763   (4 nodes, essentially loss-free)
//	load 0.953 -> 0.915   (5 nodes, congestion onset before saturation)
//	load 1.144 -> 0.927   (6 nodes, peak efficiency)
//	load 1.335 -> 0.877   (7 nodes)
//	load 1.525 -> 0.793   (8 nodes, retries and flow-control echoes)
//
// With one transfer per segment, the per-node bandwidth stays constant
// (no sharing), i.e. efficiency equals offered load with no loss. Figure 12
// (segment utilization 4) shows milder degradation (71.8 MiB/s per node at
// 8 nodes instead of 62.78). We therefore blend linearly, by multiplexing
// degree, between the ideal curve (utilization 1) and the calibrated
// utilization-8 curve.
type SCIRingCongestion struct{}

// util8Curve is the calibrated (load, achieved fraction) table for a segment
// utilization of 8 concurrent transfers.
var util8Curve = [][2]float64{
	{0.000, 0.000},
	{0.763, 0.763},
	{0.953, 0.915},
	{1.144, 0.927},
	{1.335, 0.877},
	{1.525, 0.793},
	{2.500, 0.650}, // extrapolated congestion floor
}

// AchievedFraction implements CongestionModel.
func (SCIRingCongestion) AchievedFraction(load float64, flows int) float64 {
	ideal := load
	if ideal > 1 {
		ideal = 1
	}
	if flows <= 1 {
		return ideal
	}
	high := interpCurve(util8Curve, load)
	blend := float64(flows-1) / 7.0
	if blend > 1 {
		blend = 1
	}
	return ideal + blend*(high-ideal)
}

// interpCurve linearly interpolates y for x over a sorted (x, y) table,
// clamping outside the table range.
func interpCurve(curve [][2]float64, x float64) float64 {
	if x <= curve[0][0] {
		return curve[0][1]
	}
	last := curve[len(curve)-1]
	if x >= last[0] {
		return last[1]
	}
	for i := 1; i < len(curve); i++ {
		if x <= curve[i][0] {
			x0, y0 := curve[i-1][0], curve[i-1][1]
			x1, y1 := curve[i][0], curve[i][1]
			t := (x - x0) / (x1 - x0)
			return y0 + t*(y1-y0)
		}
	}
	return last[1]
}

// BusCongestion models a shared memory bus or backplane whose efficiency
// declines as more processors contend for it. It is used by the comparator
// platform models (e.g. the 4-way Xeon SMP in Figure 12 whose "inferior
// memory system design" scales badly for coarse-grained accesses).
type BusCongestion struct {
	// PerFlowPenalty is the fractional capacity lost per additional
	// concurrent flow beyond the first (e.g. 0.08 = 8% per extra flow).
	PerFlowPenalty float64
	// Floor is the minimum fraction of capacity retained under any load.
	Floor float64
}

// AchievedFraction implements CongestionModel.
func (b BusCongestion) AchievedFraction(load float64, flows int) float64 {
	ideal := load
	if ideal > 1 {
		ideal = 1
	}
	penalty := 1 - b.PerFlowPenalty*float64(flows-1)
	if penalty < b.Floor {
		penalty = b.Floor
	}
	got := ideal * penalty
	return got
}
