package flow

import (
	"math"
	"testing"
	"time"

	"scimpich/internal/obs"
	"scimpich/internal/sim"
)

const mib = 1 << 20

func TestSingleFlowSourceLimited(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	l := NewLink("l", 1000*mib, nil)
	var done time.Duration
	e.Go("p", func(p *sim.Proc) {
		n.Transfer(p, Path(l), 100*mib, 100*mib)
		done = p.Now()
	})
	e.Run()
	want := time.Second
	if diff := done - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("100MiB at 100MiB/s took %v, want ~1s", done)
	}
}

func TestSingleFlowLinkLimited(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	l := NewLink("l", 50*mib, nil)
	var done time.Duration
	e.Go("p", func(p *sim.Proc) {
		n.Transfer(p, Path(l), 100*mib, 200*mib)
		done = p.Now()
	})
	e.Run()
	want := 2 * time.Second
	if diff := done - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("100MiB over 50MiB/s link took %v, want ~2s", done)
	}
}

func TestTwoFlowsShareLinkFairly(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	l := NewLink("l", 100*mib, nil)
	var d1, d2 time.Duration
	e.Go("a", func(p *sim.Proc) {
		n.Transfer(p, Path(l), 100*mib, 1000*mib)
		d1 = p.Now()
	})
	e.Go("b", func(p *sim.Proc) {
		n.Transfer(p, Path(l), 100*mib, 1000*mib)
		d2 = p.Now()
	})
	e.Run()
	// Both share 100 MiB/s, so each gets 50: done in ~2s.
	for _, d := range []time.Duration{d1, d2} {
		if diff := d - 2*time.Second; diff < -10*time.Millisecond || diff > 10*time.Millisecond {
			t.Fatalf("shared flows finished at %v, %v; want ~2s each", d1, d2)
		}
	}
}

func TestFlowDepartureSpeedsUpRemainder(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	l := NewLink("l", 100*mib, nil)
	var dShort, dLong time.Duration
	e.Go("short", func(p *sim.Proc) {
		n.Transfer(p, Path(l), 50*mib, 1000*mib)
		dShort = p.Now()
	})
	e.Go("long", func(p *sim.Proc) {
		n.Transfer(p, Path(l), 150*mib, 1000*mib)
		dLong = p.Now()
	})
	e.Run()
	// Phase 1: both at 50 MiB/s. Short (50 MiB) done at t=1s.
	// Phase 2: long has 100 MiB left, now alone at 100 MiB/s: +1s => t=2s.
	if diff := dShort - time.Second; diff < -10*time.Millisecond || diff > 10*time.Millisecond {
		t.Errorf("short flow finished at %v, want ~1s", dShort)
	}
	if diff := dLong - 2*time.Second; diff < -20*time.Millisecond || diff > 20*time.Millisecond {
		t.Errorf("long flow finished at %v, want ~2s", dLong)
	}
}

func TestMaxMinWithHeterogeneousCaps(t *testing.T) {
	// Flow A capped at 20; flows B and C uncapped on a 100 link.
	// Max-min: A=20, B=C=40.
	e := sim.NewEngine()
	n := NewNetwork(e)
	l := NewLink("l", 100*mib, nil)
	var rates []float64
	e.Go("driver", func(p *sim.Proc) {
		fa := n.Start(Path(l), 1000*mib, 20*mib)
		fb := n.Start(Path(l), 1000*mib, 1000*mib)
		fc := n.Start(Path(l), 1000*mib, 1000*mib)
		rates = []float64{fa.Rate(), fb.Rate(), fc.Rate()}
		p.Await(fa.Done())
		e.Stop()
	})
	e.Run()
	want := []float64{20 * mib, 40 * mib, 40 * mib}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1 {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
}

func TestMultiLinkPathBottleneck(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	l1 := NewLink("l1", 100*mib, nil)
	l2 := NewLink("l2", 30*mib, nil)
	var done time.Duration
	e.Go("p", func(p *sim.Proc) {
		n.Transfer(p, Path(l1, l2), 30*mib, 1000*mib)
		done = p.Now()
	})
	e.Run()
	if diff := done - time.Second; diff < -10*time.Millisecond || diff > 10*time.Millisecond {
		t.Fatalf("path transfer took %v, want ~1s (30 MiB bottleneck)", done)
	}
}

func TestZeroByteFlowCompletesImmediately(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	f := n.Start(nil, 0, 1)
	if !f.Done().Done() {
		t.Fatal("zero-byte flow not immediately done")
	}
	e.Run()
}

func TestRateConservationProperty(t *testing.T) {
	// For several random-ish configurations, verify the max-min invariants:
	// (1) no link is oversubscribed, (2) every flow is bound by either its
	// source cap or a saturated link (Pareto optimality of max-min).
	configs := []struct {
		capLink float64
		caps    []float64
	}{
		{100, []float64{10, 20, 200}},
		{100, []float64{200, 200, 200, 200}},
		{50, []float64{60}},
		{300, []float64{10, 10, 10}},
		{100, []float64{33, 33, 35, 200, 7}},
	}
	for ci, cfg := range configs {
		e := sim.NewEngine()
		n := NewNetwork(e)
		l := NewLink("l", cfg.capLink*mib, nil)
		var flows []*Flow
		e.Go("driver", func(p *sim.Proc) {
			for _, c := range cfg.caps {
				flows = append(flows, n.Start(Path(l), 1<<40, c*mib))
			}
			total := 0.0
			for _, f := range flows {
				total += f.Rate()
			}
			if total > cfg.capLink*mib*1.0001 {
				t.Errorf("config %d: total rate %g exceeds link capacity %g", ci, total/mib, cfg.capLink)
			}
			saturated := total >= cfg.capLink*mib*0.9999
			for fi, f := range flows {
				atCap := math.Abs(f.Rate()-cfg.caps[fi]*mib) < 1
				if !atCap && !saturated {
					t.Errorf("config %d flow %d: rate %g below cap %g on unsaturated link", ci, fi, f.Rate()/mib, cfg.caps[fi])
				}
			}
			e.Stop()
		})
		e.Run()
	}
}

func TestSCIRingCongestionCalibration(t *testing.T) {
	m := SCIRingCongestion{}
	// Exact calibration points at utilization 8 (Table 2).
	cases := []struct{ load, want float64 }{
		{0.763, 0.763},
		{0.953, 0.915},
		{1.144, 0.927},
		{1.335, 0.877},
		{1.525, 0.793},
	}
	for _, c := range cases {
		got := m.AchievedFraction(c.load, 8)
		if math.Abs(got-c.want) > 0.002 {
			t.Errorf("AchievedFraction(%g, 8) = %g, want %g", c.load, got, c.want)
		}
	}
	// Utilization 1 is ideal.
	if got := m.AchievedFraction(1.5, 1); got != 1.0 {
		t.Errorf("AchievedFraction(1.5, 1) = %g, want 1.0", got)
	}
	if got := m.AchievedFraction(0.5, 1); got != 0.5 {
		t.Errorf("AchievedFraction(0.5, 1) = %g, want 0.5", got)
	}
	// Utilization 4 sits between ideal and utilization 8 (Figure 12:
	// 71.8 MiB/s per node at 8 nodes => aggregate fraction ~0.907).
	got := m.AchievedFraction(1.525, 4)
	if got <= m.AchievedFraction(1.525, 8) || got >= 1.0 {
		t.Errorf("AchievedFraction(1.525, 4) = %g, want between %g and 1",
			got, m.AchievedFraction(1.525, 8))
	}
	if math.Abs(got-0.907) > 0.03 {
		t.Errorf("AchievedFraction(1.525, 4) = %g, want ~0.907 (Figure 12)", got)
	}
}

func TestBusCongestion(t *testing.T) {
	m := BusCongestion{PerFlowPenalty: 0.1, Floor: 0.3}
	if got := m.AchievedFraction(2.0, 1); got != 1.0 {
		t.Errorf("single flow = %g, want 1.0", got)
	}
	if got := m.AchievedFraction(2.0, 3); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("3 flows = %g, want 0.8", got)
	}
	if got := m.AchievedFraction(2.0, 100); got != 0.3 {
		t.Errorf("floor = %g, want 0.3", got)
	}
}

func TestInterpCurveEdges(t *testing.T) {
	curve := [][2]float64{{0, 0}, {1, 10}, {2, 0}}
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {1.5, 5}, {2, 0}, {3, 0},
	}
	for _, c := range cases {
		if got := interpCurve(curve, c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("interpCurve(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestStartBatchMatchesIndividualStarts(t *testing.T) {
	run := func(batch bool) time.Duration {
		e := sim.NewEngine()
		n := NewNetwork(e)
		l := NewLink("l", 100*mib, nil)
		paths := [][]Hop{Path(l), Path(l), Path(l)}
		var done time.Duration
		e.Go("driver", func(p *sim.Proc) {
			var flows []*Flow
			if batch {
				flows = n.StartBatch(paths, 50*mib, 1000*mib)
			} else {
				for _, path := range paths {
					flows = append(flows, n.Start(path, 50*mib, 1000*mib))
				}
			}
			for _, f := range flows {
				p.Await(f.Done())
			}
			done = p.Now()
		})
		e.Run()
		return done
	}
	a, b := run(true), run(false)
	if a != b {
		t.Errorf("batch start (%v) and individual starts (%v) disagree", a, b)
	}
}

func TestStartBatchZeroBytes(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	l := NewLink("l", 100*mib, nil)
	flows := n.StartBatch([][]Hop{Path(l), Path(l)}, 0, 1)
	for i, f := range flows {
		if !f.Done().Done() {
			t.Errorf("zero-byte batched flow %d not complete", i)
		}
	}
	e.Run()
}

func TestNetworkMetrics(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	reg := obs.NewRegistry()
	n.SetMetrics(reg)
	l := NewLink("l", 1000*mib, nil)
	e.Go("a", func(p *sim.Proc) {
		n.Transfer(p, Path(l), 100*mib, 100*mib)
	})
	e.Go("b", func(p *sim.Proc) {
		n.Transfer(p, Path(l), 50*mib, 100*mib)
	})
	e.Run()
	if got := reg.Counter("flow.bytes").Value(); got != 150*mib {
		t.Errorf("flow.bytes = %d, want %d", got, 150*mib)
	}
	if got := reg.Gauge("flow.active.max").Value(); got != 2 {
		t.Errorf("flow.active.max = %d, want 2", got)
	}
	hs := reg.Histogram("flow.transfer.ns").Snapshot()
	if hs.Count != 2 {
		t.Errorf("flow.transfer.ns count = %d, want 2", hs.Count)
	}
	if hs.Max < int64(499*time.Millisecond) || hs.Max > int64(1100*time.Millisecond) {
		t.Errorf("flow.transfer.ns max = %v, implausible", time.Duration(hs.Max))
	}
}

func TestNetworkMetricsNilRegistry(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	n.SetMetrics(nil) // must stay a no-op
	l := NewLink("l", 1000*mib, nil)
	e.Go("a", func(p *sim.Proc) { n.Transfer(p, Path(l), mib, mib) })
	e.Run()
}
