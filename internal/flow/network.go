// Package flow models bulk data transfers over a network of capacitated
// links using max-min fair bandwidth sharing ("progressive filling").
//
// A Flow occupies a path of Links and is additionally capped by a per-flow
// source rate (modelling, e.g., the PIO output limit of a PCI-SCI adapter).
// Whenever a flow starts or completes, rates are recomputed and the next
// completion event is rescheduled, so contention between overlapping
// transfers is resolved exactly in virtual time. The recomputation is
// incremental: a start or finish dirties only the links it touches, and the
// solver re-runs progressive filling only over the connected component of
// the flow↔link sharing graph those links belong to — flows that share no
// link (even transitively) with the change keep their rates. Max-min
// allocations decompose exactly over these components, and the solver always
// works one component at a time in a deterministic order, so the incremental
// rates are bit-identical to a from-scratch solve.
//
// Links can degrade under load: each Link may carry a CongestionModel that
// maps (offered load, multiplexing degree) to an achievable fraction of the
// nominal capacity. The SCI ring calibration lives in congestion.go.
package flow

import (
	"fmt"
	"math"
	"sort"
	"time"

	"scimpich/internal/obs"
	"scimpich/internal/sim"
)

// Link is a unidirectional, capacitated network resource.
type Link struct {
	name     string
	capacity float64       // bytes/second, nominal
	latency  time.Duration // propagation latency (lookahead source; 0 = unset)
	model    CongestionModel

	flows map[*Flow]float64 // flow -> weight on this link
	flist []*Flow           // same flows in admission order (deterministic iteration)
	dirty bool              // queued in Network.dirty
	mark  uint64            // component-search epoch
}

// Hop is one step of a flow's path: a link and the fraction of the flow's
// rate that this link must carry. Data segments have weight 1; SCI
// flow-control echo packets returning around the ring load the remaining
// segments at a small fraction of the data rate.
type Hop struct {
	Link   *Link
	Weight float64
}

// Path converts a plain link list into a weight-1 hop path.
func Path(links ...*Link) []Hop {
	hops := make([]Hop, len(links))
	for i, l := range links {
		hops[i] = Hop{Link: l, Weight: 1}
	}
	return hops
}

// NewLink returns a link with the given nominal capacity in bytes/second.
// model may be nil for an ideal (loss-free) link.
func NewLink(name string, capacity float64, model CongestionModel) *Link {
	if capacity <= 0 {
		panic("flow: link capacity must be positive")
	}
	return &Link{name: name, capacity: capacity, model: model, flows: make(map[*Flow]float64)}
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Capacity returns the link's nominal capacity in bytes/second.
func (l *Link) Capacity() float64 { return l.capacity }

// SetLatency records the link's propagation latency. The flow solver ignores
// it (transfer time is rate-driven); it exists so topologies can expose the
// minimum cross-partition delay as the conservative lookahead of a sharded
// simulation. It returns the link for chained construction.
func (l *Link) SetLatency(d time.Duration) *Link {
	if d < 0 {
		panic("flow: negative link latency")
	}
	l.latency = d
	return l
}

// Latency returns the link's propagation latency (zero if never set).
func (l *Link) Latency() time.Duration { return l.latency }

// PathLatency sums the propagation latencies along a hop path.
func PathLatency(path []Hop) time.Duration {
	var d time.Duration
	for _, h := range path {
		d += h.Link.Latency()
	}
	return d
}

// MinLatency returns the smallest latency among links, or zero for an empty
// set. A sharded engine partitioned so that every cross-shard interaction
// traverses at least one of links may use this as its lookahead — provided
// it is positive.
func MinLatency(links []*Link) time.Duration {
	var min time.Duration
	for i, l := range links {
		if i == 0 || l.latency < min {
			min = l.latency
		}
	}
	return min
}

// effectiveCapacity computes the usable capacity given the current set of
// flows, using the congestion model if present. demand is the sum of the
// unconstrained source rates of the flows crossing this link, accumulated in
// admission order so the float result is run-independent.
func (l *Link) effectiveCapacity() float64 {
	if l.model == nil || len(l.flist) == 0 {
		return l.capacity
	}
	demand := 0.0
	for _, f := range l.flist {
		demand += f.srcCap * l.flows[f]
	}
	load := demand / l.capacity
	frac := l.model.AchievedFraction(load, len(l.flist))
	achieved := l.capacity * frac
	if achieved > demand {
		achieved = demand
	}
	return achieved
}

// Flow is one in-flight bulk transfer.
type Flow struct {
	id        uint64 // admission order within the owning network
	path      []Hop
	srcCap    float64 // per-flow rate cap (bytes/second)
	remaining float64 // bytes left
	rate      float64 // current allocated rate
	done      *sim.Future
	started   time.Duration // virtual start time (for the duration metric)
	bytes     int64         // total transfer size

	// Progress anchor: remaining is always re-derived as
	// anchorRemaining - rate*(now-anchorAt) in a single expression, so the
	// float result depends only on the last rate change, never on how many
	// intermediate settlements happened. Without this, two simulations of
	// the same flows that settle at different instants (a monolithic network
	// vs. per-shard networks) would accumulate different rounding residues
	// and finish transfers a nanosecond apart.
	anchorAt        time.Duration
	anchorRemaining float64

	// fields used during rate computation
	frozen bool
	mark   uint64 // component-search epoch
}

// Rate returns the currently allocated rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Done returns a future completed when the transfer finishes.
func (f *Flow) Done() *sim.Future { return f.done }

// Network tracks active flows and drives their completion in virtual time.
type Network struct {
	s      sim.Scheduler
	flows  map[*Flow]struct{}
	nextID uint64
	next   sim.Timer

	dirty  []*Link // links whose flow set changed since the last solve
	epoch  uint64  // current component-search generation
	lstack []*Link // scratch for component traversal

	// metric collectors (nil without SetMetrics; nil collectors are no-ops).
	transferNS *obs.Histogram
	metBytes   *obs.Counter
	activeHW   *obs.Gauge
	highWater  int
}

// NewNetwork returns an empty flow network bound to the sequential engine.
func NewNetwork(e *sim.Engine) *Network { return NewNetworkOn(e) }

// NewNetworkOn returns an empty flow network driven by any scheduler — a
// sequential Engine or one shard of a sharded engine. A network must only
// ever be used from its scheduler's domain; per-shard networks are how a
// partitioned simulation keeps its rate solves small and lock-free.
func NewNetworkOn(s sim.Scheduler) *Network {
	return &Network{s: s, flows: make(map[*Flow]struct{})}
}

// SetMetrics registers the network's collectors in r: a completed-transfer
// duration histogram (flow.transfer.ns), a delivered-bytes counter
// (flow.bytes) and a concurrent-flows high-water gauge (flow.active.max).
// Call it right after NewNetwork; a nil registry leaves metrics disabled.
// The collectors themselves are goroutine-safe, so shard-local networks may
// share one registry.
func (n *Network) SetMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	n.transferNS = r.Histogram("flow.transfer.ns")
	n.metBytes = r.Counter("flow.bytes")
	n.activeHW = r.Gauge("flow.active.max")
}

// ActiveFlows returns the number of in-flight transfers.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// noteStarted records a flow's admission for the high-water gauge.
func (n *Network) noteStarted() {
	if len(n.flows) > n.highWater {
		n.highWater = len(n.flows)
		n.activeHW.Max(int64(n.highWater))
	}
}

// noteFinished feeds a completed flow into the duration and byte metrics.
func (n *Network) noteFinished(f *Flow) {
	n.transferNS.ObserveDuration(n.s.Now() - f.started)
	n.metBytes.Add(f.bytes)
}

// markDirty queues l for the next incremental solve.
func (n *Network) markDirty(l *Link) {
	if !l.dirty {
		l.dirty = true
		n.dirty = append(n.dirty, l)
	}
}

// admit registers a flow on the network and its links and dirties the links.
func (n *Network) admit(f *Flow) {
	f.id = n.nextID
	n.nextID++
	f.anchorAt, f.anchorRemaining = n.s.Now(), f.remaining
	n.flows[f] = struct{}{}
	for _, h := range f.path {
		l := h.Link
		if _, ok := l.flows[f]; !ok {
			l.flist = append(l.flist, f)
		}
		l.flows[f] += h.Weight
		n.markDirty(l)
	}
	if len(f.path) == 0 {
		// No links: the flow is its own component, bound only by its source.
		f.rate = f.srcCap
	}
}

// Start begins a transfer of bytes over path, capped at srcCap bytes/second.
// It returns immediately; the flow's Done future completes when the last
// byte has been delivered. An empty path means the flow is limited only by
// srcCap. A link appearing in several hops accumulates their weights.
func (n *Network) Start(path []Hop, bytes int64, srcCap float64) *Flow {
	if srcCap <= 0 {
		panic("flow: source cap must be positive")
	}
	for _, h := range path {
		if h.Weight <= 0 {
			panic("flow: hop weight must be positive")
		}
	}
	f := &Flow{path: path, srcCap: srcCap, remaining: float64(bytes), done: sim.NewFuture(),
		started: n.s.Now(), bytes: bytes}
	if bytes <= 0 {
		f.done.Complete(nil)
		return f
	}
	n.settle()
	n.admit(f)
	n.noteStarted()
	n.reallocate()
	return f
}

// StartBatch begins many transfers that share one rate recomputation —
// the moment large symmetric scenarios (a whole machine starting its bulk
// phase) need: starting n flows one by one costs n full max-min passes,
// a batch costs one.
func (n *Network) StartBatch(paths [][]Hop, bytes int64, srcCap float64) []*Flow {
	if srcCap <= 0 {
		panic("flow: source cap must be positive")
	}
	n.settle()
	flows := make([]*Flow, len(paths))
	for i, path := range paths {
		f := &Flow{path: path, srcCap: srcCap, remaining: float64(bytes), done: sim.NewFuture(),
			started: n.s.Now(), bytes: bytes}
		flows[i] = f
		if bytes <= 0 {
			f.done.Complete(nil)
			continue
		}
		for _, h := range path {
			if h.Weight <= 0 {
				panic("flow: hop weight must be positive")
			}
		}
		n.admit(f)
	}
	n.noteStarted()
	n.reallocate()
	return flows
}

// Transfer runs a flow to completion, blocking the calling process.
func (n *Network) Transfer(p *sim.Proc, path []Hop, bytes int64, srcCap float64) {
	f := n.Start(path, bytes, srcCap)
	p.Await(f.done)
}

// settle re-derives every active flow's remaining bytes from its progress
// anchor. The computation is a single expression per flow, so calling settle
// arbitrarily often (or not at all) between rate changes yields identical
// floats.
func (n *Network) settle() {
	now := n.s.Now()
	for f := range n.flows {
		f.remaining = f.anchorRemaining - f.rate*(now-f.anchorAt).Seconds()
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
}

// reallocate retires finished flows, re-solves the dirtied components and
// schedules the next completion event.
func (n *Network) reallocate() {
	n.next.Cancel()
	n.next = sim.Timer{}

	// Retire flows that settle credited to (numerical) completion. The
	// finished set is fixed at entry — no virtual time passes inside
	// reallocate, so remaining cannot drop further — which is why a single
	// pass suffices where earlier versions recursed. Completion order is by
	// admission id, never map order: future callbacks schedule events.
	var finished []*Flow
	for f := range n.flows {
		if f.remaining <= 1e-9 {
			finished = append(finished, f)
		}
	}
	sort.Slice(finished, func(i, j int) bool { return finished[i].id < finished[j].id })
	for _, f := range finished {
		n.remove(f)
		n.noteFinished(f)
	}

	n.solve()

	if len(n.flows) > 0 {
		soonest := time.Duration(math.MaxInt64)
		for f := range n.flows {
			d := sim.RateDuration(int64(math.Ceil(f.remaining)), f.rate)
			if d < soonest {
				soonest = d
			}
		}
		n.next = n.s.After(soonest, func() {
			n.next = sim.Timer{}
			n.settle()
			n.reallocate()
		})
	}
	for _, f := range finished {
		f.done.Complete(nil)
	}
}

func (n *Network) remove(f *Flow) {
	delete(n.flows, f)
	for _, h := range f.path {
		l := h.Link
		if _, ok := l.flows[f]; ok {
			delete(l.flows, f)
			for i, g := range l.flist {
				if g == f {
					l.flist = append(l.flist[:i], l.flist[i+1:]...)
					break
				}
			}
		}
		n.markDirty(l)
	}
	f.rate = 0
}

// solve re-runs progressive filling over every connected component of the
// flow↔link graph that contains a dirtied link. Components are discovered
// and solved one at a time; flows in untouched components keep their rates,
// which a from-scratch solve would reproduce bit-identically because it uses
// the same per-component code on the same admission-ordered flows.
func (n *Network) solve() {
	if len(n.dirty) == 0 {
		return
	}
	n.epoch++
	for _, seed := range n.dirty {
		seed.dirty = false
		if seed.mark == n.epoch {
			continue
		}
		if comp := n.component(seed); len(comp) > 0 {
			n.solveComponent(comp)
			// Rates changed: re-anchor so future settlements derive progress
			// from this instant.
			now := n.s.Now()
			for _, f := range comp {
				f.anchorAt, f.anchorRemaining = now, f.remaining
			}
		}
	}
	n.dirty = n.dirty[:0]
}

// solveAll dirties every link carrying an active flow and re-solves. It is
// the from-scratch oracle the incremental bookkeeping is tested against.
func (n *Network) solveAll() {
	for f := range n.flows {
		for _, h := range f.path {
			n.markDirty(h.Link)
		}
	}
	n.solve()
}

// component collects the active flows transitively sharing links with seed,
// sorted by admission id so the solver sees them in a run-independent order.
func (n *Network) component(seed *Link) []*Flow {
	seed.mark = n.epoch
	n.lstack = append(n.lstack[:0], seed)
	var flows []*Flow
	for len(n.lstack) > 0 {
		l := n.lstack[len(n.lstack)-1]
		n.lstack = n.lstack[:len(n.lstack)-1]
		for _, f := range l.flist {
			if f.mark == n.epoch {
				continue
			}
			f.mark = n.epoch
			flows = append(flows, f)
			for _, h := range f.path {
				if h.Link.mark != n.epoch {
					h.Link.mark = n.epoch
					n.lstack = append(n.lstack, h.Link)
				}
			}
		}
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].id < flows[j].id })
	return flows
}

// solveComponent performs weighted progressive filling over one connected
// component: repeatedly find the tightest constraint (a link's fair share or
// a flow's source cap), freeze the flows it binds, and continue with the
// residual capacities. A flow with weight w on a link consumes w times its
// rate there; unfrozen flows on a link all receive the same rate, so the
// link's fair share is residual / sum-of-unfrozen-weights. All iteration is
// over admission-ordered slices — map order never reaches a float.
func (n *Network) solveComponent(flows []*Flow) {
	type linkState struct {
		residual float64
		weight   float64 // sum of unfrozen flow weights
	}
	var links []*Link
	states := make(map[*Link]*linkState)
	for _, f := range flows {
		f.frozen = false
		f.rate = 0
		for _, h := range f.path {
			if states[h.Link] == nil {
				states[h.Link] = &linkState{residual: h.Link.effectiveCapacity()}
				links = append(links, h.Link)
			}
		}
	}
	for _, f := range flows {
		seen := map[*Link]bool{}
		for _, h := range f.path {
			if !seen[h.Link] {
				seen[h.Link] = true
				states[h.Link].weight += h.Link.flows[f]
			}
		}
	}
	unfrozen := len(flows)
	for unfrozen > 0 {
		// Tightest link fair share.
		share := math.MaxFloat64
		for _, l := range links {
			st := states[l]
			if st.weight <= 1e-12 {
				continue
			}
			if s := st.residual / st.weight; s < share {
				share = s
			}
		}
		// Tightest source cap.
		minCap := math.MaxFloat64
		for _, f := range flows {
			if !f.frozen && f.srcCap < minCap {
				minCap = f.srcCap
			}
		}
		r := share
		if minCap < r {
			r = minCap
		}
		if r == math.MaxFloat64 || r < 0 {
			panic(fmt.Sprintf("flow: rate computation failed (share=%g cap=%g)", share, minCap))
		}
		froze := false
		for _, f := range flows {
			if f.frozen {
				continue
			}
			bound := f.srcCap <= r+1e-12
			if !bound {
				for _, h := range f.path {
					st := states[h.Link]
					if st.residual/st.weight <= r+1e-12 {
						bound = true
						break
					}
				}
			}
			if bound {
				f.frozen = true
				f.rate = math.Min(r, f.srcCap)
				froze = true
				unfrozen--
				seen := map[*Link]bool{}
				for _, h := range f.path {
					if seen[h.Link] {
						continue
					}
					seen[h.Link] = true
					st := states[h.Link]
					st.residual -= f.rate * h.Link.flows[f]
					if st.residual < 0 {
						st.residual = 0
					}
					st.weight -= h.Link.flows[f]
					if st.weight < 0 {
						st.weight = 0
					}
				}
			}
		}
		if !froze {
			panic("flow: progressive filling made no progress")
		}
	}
}
