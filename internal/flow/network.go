// Package flow models bulk data transfers over a network of capacitated
// links using max-min fair bandwidth sharing ("progressive filling").
//
// A Flow occupies a path of Links and is additionally capped by a per-flow
// source rate (modelling, e.g., the PIO output limit of a PCI-SCI adapter).
// Whenever a flow starts or completes, all rates are recomputed and the next
// completion event is rescheduled, so contention between overlapping
// transfers is resolved exactly in virtual time.
//
// Links can degrade under load: each Link may carry a CongestionModel that
// maps (offered load, multiplexing degree) to an achievable fraction of the
// nominal capacity. The SCI ring calibration lives in congestion.go.
package flow

import (
	"fmt"
	"math"
	"time"

	"scimpich/internal/obs"
	"scimpich/internal/sim"
)

// Link is a unidirectional, capacitated network resource.
type Link struct {
	name     string
	capacity float64 // bytes/second, nominal
	model    CongestionModel

	flows map[*Flow]float64 // flow -> weight on this link
}

// Hop is one step of a flow's path: a link and the fraction of the flow's
// rate that this link must carry. Data segments have weight 1; SCI
// flow-control echo packets returning around the ring load the remaining
// segments at a small fraction of the data rate.
type Hop struct {
	Link   *Link
	Weight float64
}

// Path converts a plain link list into a weight-1 hop path.
func Path(links ...*Link) []Hop {
	hops := make([]Hop, len(links))
	for i, l := range links {
		hops[i] = Hop{Link: l, Weight: 1}
	}
	return hops
}

// NewLink returns a link with the given nominal capacity in bytes/second.
// model may be nil for an ideal (loss-free) link.
func NewLink(name string, capacity float64, model CongestionModel) *Link {
	if capacity <= 0 {
		panic("flow: link capacity must be positive")
	}
	return &Link{name: name, capacity: capacity, model: model, flows: make(map[*Flow]float64)}
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Capacity returns the link's nominal capacity in bytes/second.
func (l *Link) Capacity() float64 { return l.capacity }

// effectiveCapacity computes the usable capacity given the current set of
// flows, using the congestion model if present. demand is the sum of the
// unconstrained source rates of the flows crossing this link.
func (l *Link) effectiveCapacity() float64 {
	if l.model == nil || len(l.flows) == 0 {
		return l.capacity
	}
	demand := 0.0
	for f, w := range l.flows {
		demand += f.srcCap * w
	}
	load := demand / l.capacity
	frac := l.model.AchievedFraction(load, len(l.flows))
	achieved := l.capacity * frac
	if achieved > demand {
		achieved = demand
	}
	return achieved
}

// Flow is one in-flight bulk transfer.
type Flow struct {
	path      []Hop
	srcCap    float64 // per-flow rate cap (bytes/second)
	remaining float64 // bytes left
	rate      float64 // current allocated rate
	done      *sim.Future
	started   time.Duration // virtual start time (for the duration metric)
	bytes     int64         // total transfer size

	// fields used during rate computation
	frozen bool
}

// Rate returns the currently allocated rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Done returns a future completed when the transfer finishes.
func (f *Flow) Done() *sim.Future { return f.done }

// Network tracks active flows and drives their completion in virtual time.
type Network struct {
	e          *sim.Engine
	flows      map[*Flow]struct{}
	lastSettle time.Duration
	next       sim.Timer

	// metric collectors (nil without SetMetrics; nil collectors are no-ops).
	transferNS *obs.Histogram
	metBytes   *obs.Counter
	activeHW   *obs.Gauge
	highWater  int
}

// NewNetwork returns an empty flow network bound to the engine.
func NewNetwork(e *sim.Engine) *Network {
	return &Network{e: e, flows: make(map[*Flow]struct{})}
}

// SetMetrics registers the network's collectors in r: a completed-transfer
// duration histogram (flow.transfer.ns), a delivered-bytes counter
// (flow.bytes) and a concurrent-flows high-water gauge (flow.active.max).
// Call it right after NewNetwork; a nil registry leaves metrics disabled.
func (n *Network) SetMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	n.transferNS = r.Histogram("flow.transfer.ns")
	n.metBytes = r.Counter("flow.bytes")
	n.activeHW = r.Gauge("flow.active.max")
}

// ActiveFlows returns the number of in-flight transfers.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// noteStarted records a flow's admission for the high-water gauge.
func (n *Network) noteStarted() {
	if len(n.flows) > n.highWater {
		n.highWater = len(n.flows)
		n.activeHW.Max(int64(n.highWater))
	}
}

// noteFinished feeds a completed flow into the duration and byte metrics.
func (n *Network) noteFinished(f *Flow) {
	n.transferNS.ObserveDuration(n.e.Now() - f.started)
	n.metBytes.Add(f.bytes)
}

// Start begins a transfer of bytes over path, capped at srcCap bytes/second.
// It returns immediately; the flow's Done future completes when the last
// byte has been delivered. An empty path means the flow is limited only by
// srcCap. A link appearing in several hops accumulates their weights.
func (n *Network) Start(path []Hop, bytes int64, srcCap float64) *Flow {
	if srcCap <= 0 {
		panic("flow: source cap must be positive")
	}
	for _, h := range path {
		if h.Weight <= 0 {
			panic("flow: hop weight must be positive")
		}
	}
	f := &Flow{path: path, srcCap: srcCap, remaining: float64(bytes), done: sim.NewFuture(),
		started: n.e.Now(), bytes: bytes}
	if bytes <= 0 {
		f.done.Complete(nil)
		return f
	}
	n.settle()
	n.flows[f] = struct{}{}
	for _, h := range path {
		h.Link.flows[f] += h.Weight
	}
	n.noteStarted()
	n.reallocate()
	return f
}

// StartBatch begins many transfers that share one rate recomputation —
// the moment large symmetric scenarios (a whole machine starting its bulk
// phase) need: starting n flows one by one costs n full max-min passes,
// a batch costs one.
func (n *Network) StartBatch(paths [][]Hop, bytes int64, srcCap float64) []*Flow {
	if srcCap <= 0 {
		panic("flow: source cap must be positive")
	}
	n.settle()
	flows := make([]*Flow, len(paths))
	for i, path := range paths {
		f := &Flow{path: path, srcCap: srcCap, remaining: float64(bytes), done: sim.NewFuture(),
			started: n.e.Now(), bytes: bytes}
		flows[i] = f
		if bytes <= 0 {
			f.done.Complete(nil)
			continue
		}
		n.flows[f] = struct{}{}
		for _, h := range path {
			if h.Weight <= 0 {
				panic("flow: hop weight must be positive")
			}
			h.Link.flows[f] += h.Weight
		}
	}
	n.noteStarted()
	n.reallocate()
	return flows
}

// Transfer runs a flow to completion, blocking the calling process.
func (n *Network) Transfer(p *sim.Proc, path []Hop, bytes int64, srcCap float64) {
	f := n.Start(path, bytes, srcCap)
	p.Await(f.done)
}

// settle credits progress to every active flow for the virtual time elapsed
// since the last settlement.
func (n *Network) settle() {
	now := n.e.Now()
	dt := (now - n.lastSettle).Seconds()
	n.lastSettle = now
	if dt <= 0 {
		return
	}
	for f := range n.flows {
		f.remaining -= f.rate * dt
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
}

// reallocate recomputes max-min fair rates for all active flows and
// schedules the next completion event.
func (n *Network) reallocate() {
	n.next.Cancel()
	n.next = sim.Timer{}
	n.computeRates()

	// Finish flows that are already (numerically) done.
	var finished []*Flow
	for f := range n.flows {
		if f.remaining <= 1e-9 {
			finished = append(finished, f)
		}
	}
	if len(finished) > 0 {
		for _, f := range finished {
			n.remove(f)
			n.noteFinished(f)
		}
		// Rates changed again; recurse (bounded by flow count).
		n.reallocate()
		for _, f := range finished {
			f.done.Complete(nil)
		}
		return
	}
	if len(n.flows) == 0 {
		return
	}
	soonest := time.Duration(math.MaxInt64)
	for f := range n.flows {
		d := sim.RateDuration(int64(math.Ceil(f.remaining)), f.rate)
		if d < soonest {
			soonest = d
		}
	}
	n.next = n.e.After(soonest, func() {
		n.next = sim.Timer{}
		n.settle()
		n.reallocate()
	})
}

func (n *Network) remove(f *Flow) {
	delete(n.flows, f)
	for _, h := range f.path {
		delete(h.Link.flows, f)
	}
	f.rate = 0
}

// computeRates performs weighted progressive filling: repeatedly find the
// tightest constraint (a link's fair share or a flow's source cap), freeze
// the flows it binds, and continue with the residual capacities. A flow with
// weight w on a link consumes w times its rate there; unfrozen flows on a
// link all receive the same rate, so the link's fair share is
// residual / sum-of-unfrozen-weights.
func (n *Network) computeRates() {
	if len(n.flows) == 0 {
		return
	}
	type linkState struct {
		residual float64
		weight   float64 // sum of unfrozen flow weights
	}
	states := make(map[*Link]*linkState)
	weightOn := func(f *Flow, l *Link) float64 { return l.flows[f] }
	for f := range n.flows {
		f.frozen = false
		f.rate = 0
		for _, h := range f.path {
			if states[h.Link] == nil {
				states[h.Link] = &linkState{residual: h.Link.effectiveCapacity()}
			}
		}
	}
	for f := range n.flows {
		seen := map[*Link]bool{}
		for _, h := range f.path {
			if !seen[h.Link] {
				seen[h.Link] = true
				states[h.Link].weight += weightOn(f, h.Link)
			}
		}
	}
	unfrozen := len(n.flows)
	for unfrozen > 0 {
		// Tightest link fair share.
		share := math.MaxFloat64
		for _, st := range states {
			if st.weight <= 1e-12 {
				continue
			}
			if s := st.residual / st.weight; s < share {
				share = s
			}
		}
		// Tightest source cap.
		minCap := math.MaxFloat64
		for f := range n.flows {
			if !f.frozen && f.srcCap < minCap {
				minCap = f.srcCap
			}
		}
		r := share
		if minCap < r {
			r = minCap
		}
		if r == math.MaxFloat64 || r < 0 {
			panic(fmt.Sprintf("flow: rate computation failed (share=%g cap=%g)", share, minCap))
		}
		froze := false
		for f := range n.flows {
			if f.frozen {
				continue
			}
			bound := f.srcCap <= r+1e-12
			if !bound {
				for _, h := range f.path {
					st := states[h.Link]
					if st.residual/st.weight <= r+1e-12 {
						bound = true
						break
					}
				}
			}
			if bound {
				f.frozen = true
				f.rate = math.Min(r, f.srcCap)
				froze = true
				unfrozen--
				seen := map[*Link]bool{}
				for _, h := range f.path {
					if seen[h.Link] {
						continue
					}
					seen[h.Link] = true
					st := states[h.Link]
					st.residual -= f.rate * weightOn(f, h.Link)
					if st.residual < 0 {
						st.residual = 0
					}
					st.weight -= weightOn(f, h.Link)
					if st.weight < 0 {
						st.weight = 0
					}
				}
			}
		}
		if !froze {
			panic("flow: progressive filling made no progress")
		}
	}
}
