package flow

import (
	"math/rand"
	"testing"
	"time"

	"scimpich/internal/sim"
)

// TestIncrementalMatchesFullSolve drives a randomized schedule of transfers
// over a shared link set and, at every checkpoint, compares the incremental
// solver's rates against a from-scratch re-solve of the whole network. The
// solver works component-by-component in admission order in both cases, so
// the comparison is exact float equality: any missed dirty mark or stale
// component shows up as a mismatch.
func TestIncrementalMatchesFullSolve(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine()
		n := NewNetwork(e)
		links := make([]*Link, 8)
		for i := range links {
			links[i] = NewLink("l", float64(rng.Intn(400)+50)*mib, nil)
		}
		// A couple of congested links exercise effectiveCapacity ordering.
		links[0] = NewLink("c0", 200*mib, BusCongestion{PerFlowPenalty: 0.05, Floor: 0.4})
		check := func() {
			want := make(map[*Flow]float64, len(n.flows))
			for f := range n.flows {
				want[f] = f.rate
			}
			n.solveAll()
			for f, r := range want {
				if f.rate != r {
					t.Fatalf("seed %d at %v: incremental rate %g != full solve %g",
						seed, e.Now(), r, f.rate)
				}
			}
		}
		for i := 0; i < 60; i++ {
			at := time.Duration(rng.Intn(3000)) * time.Millisecond
			e.At(at, func() {
				nh := rng.Intn(3) // 0 hops = source-capped only
				hops := make([]Hop, 0, nh)
				for j := 0; j < nh; j++ {
					w := 1.0
					if rng.Intn(4) == 0 {
						w = 0.25
					}
					hops = append(hops, Hop{Link: links[rng.Intn(len(links))], Weight: w})
				}
				n.Start(hops, int64(rng.Intn(64)+1)*mib, float64(rng.Intn(200)+10)*mib)
				check()
			})
		}
		for i := 0; i < 40; i++ {
			e.At(time.Duration(rng.Intn(4000))*time.Millisecond, func() { check() })
		}
		e.Run()
		if n.ActiveFlows() != 0 {
			t.Fatalf("seed %d: %d flows never finished", seed, n.ActiveFlows())
		}
	}
}

// TestLinkLatencyHelpers covers the lookahead-extraction API.
func TestLinkLatencyHelpers(t *testing.T) {
	a := NewLink("a", mib, nil).SetLatency(70 * time.Nanosecond)
	b := NewLink("b", mib, nil).SetLatency(130 * time.Nanosecond)
	c := NewLink("c", mib, nil) // latency never set
	if got := PathLatency(Path(a, b, a)); got != 270*time.Nanosecond {
		t.Errorf("PathLatency = %v, want 270ns", got)
	}
	if got := MinLatency([]*Link{a, b}); got != 70*time.Nanosecond {
		t.Errorf("MinLatency = %v, want 70ns", got)
	}
	if got := MinLatency([]*Link{a, c}); got != 0 {
		t.Errorf("MinLatency with unset link = %v, want 0", got)
	}
	if got := MinLatency(nil); got != 0 {
		t.Errorf("MinLatency(nil) = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative latency did not panic")
		}
	}()
	a.SetLatency(-time.Nanosecond)
}
