package flow

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"scimpich/internal/sim"
)

// Property-based tests of the weighted max-min allocator: for randomly
// generated networks, verify the defining invariants of a max-min fair
// allocation.

type netSpec struct {
	LinkCaps  []uint16 // capacity of each link, in MiB/s units (nonzero)
	FlowPaths [][]bool // flow i crosses link j
	FlowCaps  []uint16 // source cap of each flow
}

// Generate implements quick.Generator.
func (netSpec) Generate(rng *rand.Rand, size int) reflect.Value {
	nl := rng.Intn(4) + 1
	nf := rng.Intn(5) + 1
	s := netSpec{
		LinkCaps:  make([]uint16, nl),
		FlowPaths: make([][]bool, nf),
		FlowCaps:  make([]uint16, nf),
	}
	for i := range s.LinkCaps {
		s.LinkCaps[i] = uint16(rng.Intn(400) + 50)
	}
	for i := range s.FlowPaths {
		s.FlowPaths[i] = make([]bool, nl)
		any := false
		for j := range s.FlowPaths[i] {
			if rng.Intn(2) == 0 {
				s.FlowPaths[i][j] = true
				any = true
			}
		}
		if !any {
			s.FlowPaths[i][rng.Intn(nl)] = true
		}
		s.FlowCaps[i] = uint16(rng.Intn(300) + 10)
	}
	return reflect.ValueOf(s)
}

func TestQuickMaxMinInvariants(t *testing.T) {
	prop := func(s netSpec) bool {
		e := sim.NewEngine()
		n := NewNetwork(e)
		links := make([]*Link, len(s.LinkCaps))
		for i, c := range s.LinkCaps {
			links[i] = NewLink("l", float64(c)*mib, nil)
		}
		var flows []*Flow
		ok := true
		e.Go("driver", func(p *sim.Proc) {
			for i, path := range s.FlowPaths {
				var hops []Hop
				for j, used := range path {
					if used {
						hops = append(hops, Hop{Link: links[j], Weight: 1})
					}
				}
				flows = append(flows, n.Start(hops, 1<<40, float64(s.FlowCaps[i])*mib))
			}
			// Invariant 1: no link oversubscribed.
			for j := range links {
				var sum float64
				for i, f := range flows {
					if s.FlowPaths[i][j] {
						sum += f.Rate()
					}
				}
				if sum > float64(s.LinkCaps[j])*mib*1.0001 {
					ok = false
				}
			}
			// Invariant 2: no flow exceeds its source cap.
			for i, f := range flows {
				if f.Rate() > float64(s.FlowCaps[i])*mib*1.0001 {
					ok = false
				}
				if f.Rate() <= 0 {
					ok = false
				}
			}
			// Invariant 3 (max-min): every flow is bottlenecked — either at
			// its source cap, or on some saturated link where it has the
			// (weakly) largest rate among the link's flows.
			for i, f := range flows {
				if math.Abs(f.Rate()-float64(s.FlowCaps[i])*mib) < 1 {
					continue
				}
				bottlenecked := false
				for j := range links {
					if !s.FlowPaths[i][j] {
						continue
					}
					var sum, maxRate float64
					for k, g := range flows {
						if s.FlowPaths[k][j] {
							sum += g.Rate()
							if g.Rate() > maxRate {
								maxRate = g.Rate()
							}
						}
					}
					if sum >= float64(s.LinkCaps[j])*mib*0.9999 && f.Rate() >= maxRate-1 {
						bottlenecked = true
						break
					}
				}
				if !bottlenecked {
					ok = false
				}
			}
			e.Stop()
		})
		e.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFlowConservation(t *testing.T) {
	// For any two flows started together on one link, the sum of bytes
	// delivered over any horizon never exceeds capacity * time.
	prop := func(capMiB, aMiB, bMiB uint8, bytesA, bytesB uint16) bool {
		capL := float64(capMiB%100+20) * mib
		ra := float64(aMiB%80+10) * mib
		rb := float64(bMiB%80+10) * mib
		na := int64(bytesA%200+1) * 64 << 10
		nb := int64(bytesB%200+1) * 64 << 10
		e := sim.NewEngine()
		n := NewNetwork(e)
		l := NewLink("l", capL, nil)
		var endA, endB float64
		e.Go("a", func(p *sim.Proc) {
			n.Transfer(p, Path(l), na, ra)
			endA = p.Now().Seconds()
		})
		e.Go("b", func(p *sim.Proc) {
			n.Transfer(p, Path(l), nb, rb)
			endB = p.Now().Seconds()
		})
		e.Run()
		horizon := math.Max(endA, endB)
		// Work conservation bound: total bytes <= min(capacity, ra+rb) * T
		// within small rounding tolerance.
		rate := math.Min(capL, ra+rb)
		return float64(na+nb) <= rate*horizon*1.001
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
