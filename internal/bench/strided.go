package bench

import (
	"time"

	"scimpich/internal/sci"
	"scimpich/internal/sim"
)

// The low-level strided remote-write study of §4.3: remote writes with
// various access and stride sizes show a strong dependency of the effective
// bandwidth on the stride — between 5 and 28 MiB/s for 8-byte accesses and
// between 7 and 162 MiB/s for 256-byte accesses, with the best strides
// multiples of 32 (the Pentium-III write-combine buffer size). Disabling
// write-combining removes the drops but halves the bandwidth.

// StridedResult is one (access size, stride) measurement.
type StridedResult struct {
	AccessSize int64
	Stride     int64
	BW         float64 // MiB/s, write-combining on
	BWNoWC     float64 // MiB/s, write-combining off
}

// RunStrided sweeps strides for the given access sizes. For each access
// size, strides from access+8 up to 3*access+64 in steps of 8 bytes are
// measured, covering both write-combine-aligned (multiples of 32) and
// misaligned strides.
func RunStrided(accessSizes []int64) []StridedResult {
	var out []StridedResult
	for _, a := range accessSizes {
		for stride := a + 8; stride <= 3*a+64; stride += 8 {
			out = append(out, StridedResult{
				AccessSize: a,
				Stride:     stride,
				BW:         stridedBW(a, stride, true),
				BWNoWC:     stridedBW(a, stride, false),
			})
		}
	}
	return out
}

// stridedBW measures the raw strided remote-write bandwidth.
func stridedBW(access, stride int64, writeCombine bool) float64 {
	f := sim.NewLocalFabric(1, time.Microsecond)
	e := f.Locale(0)
	cfg := sci.DefaultConfig(2)
	cfg.WriteCombine = writeCombine
	ic := sci.New(e, instrumentSCI(cfg))
	const total = 1 << 20
	span := total / access * stride
	seg := ic.Node(1).Export(span + stride)
	src := make([]byte, total)
	var elapsed time.Duration
	e.Go("bench", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		start := p.Now()
		m.WriteStrided(p, 0, src, access, stride)
		ic.Node(0).StoreBarrier(p)
		elapsed = p.Now() - start
	})
	f.Run()
	return BWMiB(total, elapsed)
}

// StridedExtremes returns, per access size, the min and max bandwidth over
// the stride sweep (the form in which §4.3 quotes the numbers).
type StridedExtremes struct {
	AccessSize   int64
	MinBW, MaxBW float64
	BestStride   int64
}

// Extremes summarizes a stride sweep.
func Extremes(results []StridedResult) []StridedExtremes {
	var out []StridedExtremes
	byAccess := map[int64]*StridedExtremes{}
	var order []int64
	for _, r := range results {
		e, ok := byAccess[r.AccessSize]
		if !ok {
			e = &StridedExtremes{AccessSize: r.AccessSize, MinBW: r.BW, MaxBW: r.BW, BestStride: r.Stride}
			byAccess[r.AccessSize] = e
			order = append(order, r.AccessSize)
		}
		if r.BW < e.MinBW {
			e.MinBW = r.BW
		}
		if r.BW > e.MaxBW {
			e.MaxBW = r.BW
			e.BestStride = r.Stride
		}
	}
	for _, a := range order {
		out = append(out, *byAccess[a])
	}
	return out
}

// StridedFigure formats the sweep for one access size.
func StridedFigure(results []StridedResult, access int64) *Figure {
	f := &Figure{
		Title:  "§4.3 low-level strided remote write bandwidth",
		XLabel: "stride",
		YLabel: "MiB/s",
	}
	wc := Series{Label: "WC-on"}
	nowc := Series{Label: "WC-off"}
	for _, r := range results {
		if r.AccessSize != access {
			continue
		}
		f.X = append(f.X, float64(r.Stride))
		wc.Values = append(wc.Values, r.BW)
		nowc.Values = append(nowc.Values, r.BWNoWC)
	}
	f.Series = []Series{wc, nowc}
	return f
}
