package bench

import (
	"strings"
	"testing"
)

// TestEngineBenchSmall runs the engine suite on a 4x4x4 machine — big
// enough to exercise the sequential row plus two sharded configurations,
// small enough for the test suite. The timing gate is off (a 64-node run on
// a loaded test runner proves nothing about wall-clock); the determinism
// gates must hold at any scale, on both the torus and the full-stack MPI
// workloads.
func TestEngineBenchSmall(t *testing.T) {
	rows, ok := RunEngineBenchAt(4, 4, 4, []int{2, 4}, false)
	if !ok {
		t.Fatalf("engine gates failed: %+v", rows)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 (3 torus + 3 mpi-stack)", len(rows))
	}
	if rows[0].Workload != "torus-allreduce" || rows[0].Engine != "sequential" || rows[0].Speedup != 1 {
		t.Fatalf("torus baseline row = %+v", rows[0])
	}
	for _, r := range rows[1:3] {
		if r.Workload != "torus-allreduce" || r.Engine != "sharded" || !r.GateDeterministic {
			t.Fatalf("sharded torus row not deterministic: %+v", r)
		}
		if r.VirtualNS != rows[0].VirtualNS || r.DumpFNV != rows[0].DumpFNV {
			t.Fatalf("row diverged from oracle: %+v vs %+v", r, rows[0])
		}
		if r.Windows == 0 {
			t.Fatalf("sharded row ran no windows: %+v", r)
		}
	}
	if rows[3].Workload != "mpi-allreduce" || rows[3].Engine != "sequential" {
		t.Fatalf("mpi-stack baseline row = %+v", rows[3])
	}
	for _, r := range rows[4:] {
		if r.Workload != "mpi-allreduce" || r.Engine != "sharded" || !r.GateDeterministic {
			t.Fatalf("sharded mpi-stack row not deterministic: %+v", r)
		}
		if r.VirtualNS != rows[3].VirtualNS || r.Checksum != rows[3].Checksum || r.DumpFNV != rows[3].DumpFNV {
			t.Fatalf("mpi-stack row diverged from oracle: %+v vs %+v", r, rows[3])
		}
	}
	out := FormatEngine(rows)
	if !strings.Contains(out, "sequential") || !strings.Contains(out, "det=true") ||
		!strings.Contains(out, "mpi-allreduce") {
		t.Fatalf("FormatEngine output missing expected fields:\n%s", out)
	}
}

func TestEngineJSONRoundTrip(t *testing.T) {
	rows, _ := RunEngineBenchAt(2, 2, 2, []int{2}, false)
	path := t.TempDir() + "/BENCH_engine.json"
	if err := WriteEngineJSON(path, rows); err != nil {
		t.Fatal(err)
	}
}
