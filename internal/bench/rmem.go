package bench

// The replicated remote-memory failover benchmark behind BENCH_rmem.json:
// the rmem workload runs once crash-free and once with a primary-holding
// node crashed mid-run. The artifact gates the availability claims — no
// committed write lost, no client operation failing after the failover
// epoch, and a p99 get service time under churn within 3x of the crash-free
// baseline — and reports the ungated recovery economics (failovers, sojourn
// p99, operation failures during detection) alongside.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"scimpich/internal/fault"
	"scimpich/internal/mpi"
	"scimpich/internal/rmem"
)

// RmemResult is one scenario row of the failover suite.
type RmemResult struct {
	Scenario string `json:"scenario"` // "baseline" or "churn"
	Nodes    int    `json:"nodes"`
	Seed     uint64 `json:"seed"`
	Rounds   int    `json:"rounds"`
	Ops      int64  `json:"ops_ok"`

	Failovers           int   `json:"failovers"`
	Committed           int64 `json:"committed"`
	LostWrites          int64 `json:"lost_writes"`
	LostShards          int   `json:"lost_shards"`
	OpFailures          int64 `json:"op_failures"`
	FailedAfterRecovery int64 `json:"failed_after_recovery"`

	GetP50NS     int64 `json:"get_p50_ns"`
	GetP99NS     int64 `json:"get_p99_ns"`
	PutP99NS     int64 `json:"put_p99_ns"`
	SojournP99NS int64 `json:"sojourn_p99_ns"`
	ElapsedNS    int64 `json:"elapsed_ns"`

	// Gates (churn row only): the availability claims this artifact pins.
	GateNoLostWrites      bool `json:"gate_no_lost_writes,omitempty"`
	GatePostFailoverClean bool `json:"gate_post_failover_clean,omitempty"`
	GateP99Bound          bool `json:"gate_p99_bound,omitempty"`
}

// RmemNodes and RmemCrashAt pin the benchmark scenario.
const (
	RmemNodes   = 4
	RmemCrashAt = 5200 * time.Microsecond
)

func rmemConfig(plan *fault.Plan) mpi.Config {
	cfg := mpi.DefaultConfig(RmemNodes, 1)
	cfg.SCI.Fault = plan
	cfg.Protocol.CollTimeout = mpi.AutoTimeout
	cfg.Protocol.RendezvousTimeout = mpi.AutoTimeout
	return cfg
}

func rmemRow(scenario string, seed uint64, reports []rmem.RankReport, end time.Duration) RmemResult {
	wl := rmem.DefaultWorkload()
	r := RmemResult{Scenario: scenario, Nodes: RmemNodes, Seed: seed, Rounds: wl.Rounds, ElapsedNS: int64(end)}
	for _, rr := range reports {
		if rr.Died {
			continue
		}
		r.Ops += rr.GetOK + rr.PutOK
		r.Failovers += rr.Failovers
		r.Committed += int64(rr.Committed)
		r.LostWrites += rr.LostWrites
		r.LostShards += rr.LostShards
		r.OpFailures += rr.OpFailures
		r.FailedAfterRecovery += rr.FailedAfterRecovery
		if p := rr.GetNS.P50; p > r.GetP50NS {
			r.GetP50NS = p
		}
		if p := rr.GetNS.P99; p > r.GetP99NS {
			r.GetP99NS = p
		}
		if p := rr.PutNS.P99; p > r.PutP99NS {
			r.PutP99NS = p
		}
		if p := rr.SojournNS.P99; p > r.SojournP99NS {
			r.SojournP99NS = p
		}
	}
	return r
}

// RunRmemBench executes the baseline and churn scenarios and evaluates the
// availability gates on the churn row. ok reports whether every gate holds.
func RunRmemBench(seed uint64) (rows []RmemResult, ok bool) {
	wl := rmem.DefaultWorkload()
	cfg := rmem.DefaultConfig()

	baseRep, baseEnd := rmem.RunWorkload(rmemConfig(fault.New(seed)), cfg, wl)
	base := rmemRow("baseline", seed, baseRep, baseEnd)

	churnRep, churnEnd := rmem.RunWorkload(rmemConfig(fault.New(seed).CrashNode(1, RmemCrashAt)), cfg, wl)
	churn := rmemRow("churn", seed, churnRep, churnEnd)

	churn.GateNoLostWrites = churn.LostWrites == 0 && churn.LostShards == 0
	churn.GatePostFailoverClean = churn.FailedAfterRecovery == 0 && churn.Failovers > 0
	churn.GateP99Bound = base.GetP99NS > 0 && churn.GetP99NS <= 3*base.GetP99NS

	ok = churn.GateNoLostWrites && churn.GatePostFailoverClean && churn.GateP99Bound
	return []RmemResult{base, churn}, ok
}

// rmemFile is the envelope of the BENCH_rmem.json artifact.
type rmemFile struct {
	Suite   string       `json:"suite"`
	Go      string       `json:"go"`
	GOOS    string       `json:"goos"`
	GOARCH  string       `json:"goarch"`
	Results []RmemResult `json:"results"`
}

// WriteRmemJSON writes the failover suite as an indented JSON artifact (the
// BENCH_rmem.json availability gate).
func WriteRmemJSON(path string, results []RmemResult) error {
	data, err := json.MarshalIndent(rmemFile{
		Suite:   "rmem",
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Results: results,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatRmem renders the failover suite as an aligned text table.
func FormatRmem(results []RmemResult) string {
	out := "rmem (replicated remote-memory failover):\n"
	out += fmt.Sprintf("  %-9s %6s %9s %9s %5s %5s %11s %11s %11s  %s\n",
		"scenario", "ops", "committed", "failures", "fovr", "lost", "get_p99", "put_p99", "sojourn_p99", "gates")
	for _, r := range results {
		gates := "-"
		if r.Scenario == "churn" {
			gates = fmt.Sprintf("lost=%v clean=%v p99=%v", r.GateNoLostWrites, r.GatePostFailoverClean, r.GateP99Bound)
		}
		out += fmt.Sprintf("  %-9s %6d %9d %9d %5d %5d %11v %11v %11v  %s\n",
			r.Scenario, r.Ops, r.Committed, r.OpFailures, r.Failovers, r.LostWrites,
			time.Duration(r.GetP99NS), time.Duration(r.PutP99NS), time.Duration(r.SojournP99NS), gates)
	}
	return out
}
