package bench

import (
	"math"
	"testing"

	"scimpich/internal/memmodel"
	"scimpich/internal/mpi"
	"scimpich/internal/ring"
)

// These tests pin the reproduced experiments to the paper's published
// observations (shape and, where the paper gives them, values).

func TestRawFigure1Shape(t *testing.T) {
	results := RunRaw([]int64{8, 64, 1024, 64 << 10, 512 << 10})
	small := results[0]
	if us := small.PIOWriteLatency.Seconds() * 1e6; us < 1 || us > 6 {
		t.Errorf("8B PIO write latency = %.2fµs, want a few µs", us)
	}
	if small.PIOReadLatency <= small.PIOWriteLatency {
		t.Errorf("remote read latency (%v) should exceed write latency (%v)",
			small.PIOReadLatency, small.PIOWriteLatency)
	}
	mid := results[3] // 64 kiB
	if mid.PIOWriteBW < 180 || mid.PIOWriteBW > 230 {
		t.Errorf("64kiB PIO write bw = %.1f MiB/s, want near the 225 peak", mid.PIOWriteBW)
	}
	if mid.PIOReadBW > mid.PIOWriteBW/5 {
		t.Errorf("PIO read bw %.1f should be a small fraction of write %.1f", mid.PIOReadBW, mid.PIOWriteBW)
	}
	if mid.DMABW > 85 {
		t.Errorf("DMA bw = %.1f MiB/s, want <= 85", mid.DMABW)
	}
	big := results[4] // 512 kiB: beyond the caches, the paper's PIO dip
	if big.PIOWriteBW >= mid.PIOWriteBW {
		t.Errorf("PIO write bw should dip beyond 128kiB: %.1f (512k) vs %.1f (64k)",
			big.PIOWriteBW, mid.PIOWriteBW)
	}
}

func TestNoncontigFigure7Claims(t *testing.T) {
	results := RunNoncontig([]int64{8, 16, 128, 4096})
	byBS := map[int64]NoncontigResult{}
	for _, r := range results {
		byBS[r.BlockSize] = r
	}

	// "already reaches 90% of [contiguous] for blocksizes of 128 byte"
	r128 := byBS[128]
	if ratio := r128.InterFF / r128.InterContig; ratio < 0.85 {
		t.Errorf("SCI ff/contig at 128B = %.2f, want >= ~0.9", ratio)
	}
	// "delivers already twice the bandwidth of the generic algorithm for a
	// blocksize of 16 bytes and above" (the factor narrows as the generic
	// engine's per-block overhead amortizes at large blocks).
	if r := byBS[16]; r.InterFF < 1.8*r.InterGeneric {
		t.Errorf("SCI ff at 16B = %.1f, want >= ~2x generic %.1f", r.InterFF, r.InterGeneric)
	}
	if r := byBS[128]; r.InterFF < 1.4*r.InterGeneric {
		t.Errorf("SCI ff at 128B = %.1f, want well above generic %.1f", r.InterFF, r.InterGeneric)
	}
	if r := byBS[4096]; r.InterFF < 1.1*r.InterGeneric {
		t.Errorf("SCI ff at 4kiB = %.1f, want above generic %.1f", r.InterFF, r.InterGeneric)
	}
	// "Only for the case of 8 byte-blocksizes, the generic technique proves
	// to be faster for inter-node communication"
	r8 := byBS[8]
	if r8.InterFF >= r8.InterGeneric {
		t.Errorf("SCI at 8B: ff %.1f should lose to generic %.1f", r8.InterFF, r8.InterGeneric)
	}
	// Intra-node: ff also beats generic.
	if r128.IntraFF <= r128.IntraGeneric {
		t.Errorf("shm at 128B: ff %.1f not above generic %.1f", r128.IntraFF, r128.IntraGeneric)
	}
}

func TestNoncontigShmFFCanBeatContiguous(t *testing.T) {
	// "the performance of the non-contiguous transfer with direct_pack_ff
	// via shared memory can surpass the bandwidth of the equivalent
	// transfer of contiguous data" for certain block sizes.
	results := RunNoncontig([]int64{256, 512, 1024, 4096})
	beat := false
	for _, r := range results {
		if r.IntraFF > r.IntraContig {
			beat = true
		}
	}
	if !beat {
		t.Error("shm ff never surpassed the contiguous transfer (cache-utilization quirk missing)")
	}
}

func TestNoncontig2DDoubleStrided(t *testing.T) {
	// The figure 2 double-strided case: direct_pack_ff must beat the
	// generic pipeline there just as for the single-strided vector.
	results := RunNoncontig2D([]int64{64, 1024})
	for _, r := range results {
		if r.InterFF <= r.InterGeneric {
			t.Errorf("double-strided %dB blocks: ff %.1f not above generic %.1f",
				r.BlockSize, r.InterFF, r.InterGeneric)
		}
	}
}

func TestSparseFigure9Shape(t *testing.T) {
	results := RunSparse([]int64{8, 64, 1024, 32 << 10})
	small := results[0]
	// Private access pays signalling + message exchange.
	if small.PutPrivateLat < 3*small.PutSharedLat {
		t.Errorf("8B put latency: private %.1fµs should dwarf shared %.1fµs",
			small.PutPrivateLat, small.PutSharedLat)
	}
	if small.GetPrivateLat < small.GetSharedLat {
		t.Errorf("8B get latency: private %.1fµs below shared %.1fµs",
			small.GetPrivateLat, small.GetSharedLat)
	}
	// Big gets: shared and private converge (both via message exchange).
	big := results[3]
	ratio := big.GetSharedBW / big.GetPrivateBW
	if ratio < 0.6 || ratio > 1.7 {
		t.Errorf("32kiB get bandwidths should converge: shared %.1f vs private %.1f",
			big.GetSharedBW, big.GetPrivateBW)
	}
	// Shared put beats everything for small accesses.
	if small.PutSharedBW <= small.GetSharedBW {
		t.Errorf("8B: put-shared bw %.2f should beat get-shared %.2f",
			small.PutSharedBW, small.GetSharedBW)
	}
	// Latency grows with access size for direct gets (strided read stalls).
	if results[2].GetSharedLat <= results[0].GetSharedLat {
		t.Errorf("get-shared latency should rise rapidly: %.1fµs (1kiB) vs %.1fµs (8B)",
			results[2].GetSharedLat, results[0].GetSharedLat)
	}
}

func TestStridedSection43Numbers(t *testing.T) {
	results := RunStrided([]int64{8, 256})
	ext := Extremes(results)
	if len(ext) != 2 {
		t.Fatalf("extremes for %d access sizes, want 2", len(ext))
	}
	e8, e256 := ext[0], ext[1]
	// "varying between 5 and 28 MiB/s for 8 byte access size"
	if math.Abs(e8.MinBW-5) > 2 || math.Abs(e8.MaxBW-28) > 4 {
		t.Errorf("8B strided extremes = %.1f..%.1f MiB/s, want ~5..28", e8.MinBW, e8.MaxBW)
	}
	// "or 7 and 162 MiB/s for 256 byte access size"
	if math.Abs(e256.MinBW-7) > 3 || math.Abs(e256.MaxBW-162) > 12 {
		t.Errorf("256B strided extremes = %.1f..%.1f MiB/s, want ~7..162", e256.MinBW, e256.MaxBW)
	}
	// "values for strides which deliver maximum performance are multiples
	// of 32"
	if e256.BestStride%32 != 0 {
		t.Errorf("best 256B stride = %d, want a multiple of 32", e256.BestStride)
	}
	// Write-combining off: no stride sensitivity, ~50% lower overall.
	var wcOffMin, wcOffMax float64
	for _, r := range results {
		if r.AccessSize != 256 {
			continue
		}
		if wcOffMin == 0 || r.BWNoWC < wcOffMin {
			wcOffMin = r.BWNoWC
		}
		if r.BWNoWC > wcOffMax {
			wcOffMax = r.BWNoWC
		}
	}
	if (wcOffMax-wcOffMin)/wcOffMax > 0.05 {
		t.Errorf("WC-off bandwidth varies %.1f..%.1f, want flat", wcOffMin, wcOffMax)
	}
	if wcOffMax > 0.65*e256.MaxBW {
		t.Errorf("WC-off bw %.1f, want roughly half of the WC-on best %.1f", wcOffMax, e256.MaxBW)
	}
}

func TestTable2Reproduction(t *testing.T) {
	rows := RunTable2(ring.DefaultLinkMHz)
	want := []struct {
		nodes    int
		perNode1 float64
		perNode8 float64
		eff      float64
	}{
		{4, 122.94, 120.70, 0},
		{5, 120.69, 115.80, 0.915},
		{6, 120.88, 97.75, 0.927},
		{7, 120.66, 79.30, 0.877},
		{8, 120.83, 62.78, 0.793},
	}
	for i, w := range want {
		r := rows[i]
		if r.ActiveNodes != w.nodes {
			t.Fatalf("row %d: nodes %d, want %d", i, r.ActiveNodes, w.nodes)
		}
		if rel(r.PerNode1, w.perNode1) > 0.05 {
			t.Errorf("%d nodes: per-node (1/segment) = %.2f, paper %.2f", w.nodes, r.PerNode1, w.perNode1)
		}
		if rel(r.PerNode8, w.perNode8) > 0.07 {
			t.Errorf("%d nodes: per-node (8/segment) = %.2f, paper %.2f", w.nodes, r.PerNode8, w.perNode8)
		}
		if w.eff > 0 && rel(r.Eff, w.eff) > 0.08 {
			t.Errorf("%d nodes: efficiency = %.3f, paper %.3f", w.nodes, r.Eff, w.eff)
		}
	}
}

func TestTable2LinkFrequencyRerun(t *testing.T) {
	// "The measured bandwidth for the worst case scenario ... increased
	// linearly with the ring bandwidth" at 200 MHz.
	r166 := RunTable2(166)[4] // 8 nodes
	r200 := RunTable2(200)[4]
	gotRatio := r200.PerNode8 / r166.PerNode8
	linear := ring.BandwidthForMHz(200) / ring.BandwidthForMHz(166)
	// Our congestion model additionally relaxes at the lower relative load,
	// so the speedup may slightly exceed linear; it must be at least linear
	// and bounded.
	if gotRatio < linear*0.97 || gotRatio > linear*1.18 {
		t.Errorf("200MHz speedup = %.3f, want >= linear %.3f (and bounded)", gotRatio, linear)
	}
}

func TestScalingFigure12Shape(t *testing.T) {
	series := RunScaling(64 << 10)
	byID := map[string]ScalingSeries{}
	for _, s := range series {
		byID[s.ID] = s
	}
	sci := byID["M-S"].Points
	// "constant peak bandwidth of 120 MiB/s for up to 5 nodes"
	for _, pt := range sci {
		if pt.Procs <= 5 && (pt.BW < 108 || pt.BW > 130) {
			t.Errorf("SCI per-node bw at %d nodes = %.1f, want ~120", pt.Procs, pt.BW)
		}
		// "declines accordingly down to 71.8 MiB/s for 8 nodes"
		if pt.Procs == 8 && rel(pt.BW, 71.8) > 0.10 {
			t.Errorf("SCI per-node bw at 8 nodes = %.1f, paper 71.8", pt.BW)
		}
	}
	// T3E constant.
	t3e := byID["C"].Points
	if len(t3e) < 2 || rel(t3e[0].BW, t3e[len(t3e)-1].BW) > 0.05 {
		t.Errorf("T3E scaling not constant: %+v", t3e)
	}
	// Xeon below SCI for coarse accesses at full SMP width.
	xeon := byID["X-s"].Points
	last := xeon[len(xeon)-1]
	if last.BW >= 108 {
		t.Errorf("Xeon coarse-grained per-proc bw at %d procs = %.1f, want below the SCI system", last.Procs, last.BW)
	}
	// Sun Fire declines beyond 6 procs.
	sun := byID["F-s"].Points
	var at4, at16 float64
	for _, pt := range sun {
		if pt.Procs == 4 {
			at4 = pt.BW
		}
		if pt.Procs == 16 {
			at16 = pt.BW
		}
	}
	if at16 >= at4*0.8 {
		t.Errorf("Sun Fire bw at 16 procs (%.1f) should decline notably from 4 procs (%.1f)", at16, at4)
	}
}

func TestPlatformFiguresProduceRows(t *testing.T) {
	bs := []int64{64, 16 << 10}
	nc := RunPlatformNoncontig(bs)
	if len(nc) != 9 { // 7 comparators (VIA excluded) + M-S + M-s
		t.Fatalf("figure 10 has %d rows, want 9", len(nc))
	}
	for _, r := range nc {
		if len(r.NC) != len(bs) || len(r.C) != len(bs) {
			t.Errorf("%s: incomplete curves", r.ID)
		}
	}
	sp := RunPlatformSparse([]int64{64})
	ids := map[string]bool{}
	for _, r := range sp {
		ids[r.ID] = true
	}
	for _, want := range []string{"C", "F-s", "X-f", "X-s", "VIA", "M-S", "M-s"} {
		if !ids[want] {
			t.Errorf("figure 11 missing platform %s", want)
		}
	}
	if ids["S-M"] || ids["F-G"] {
		t.Error("figure 11 must exclude platforms without one-sided support")
	}
}

func rel(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func TestUltraSparcReproducesShmQuirkAtDifferentBlockSizes(t *testing.T) {
	// Paper §3.4: the ff-beats-contiguous effect reproduces on the
	// UltraSparc II, with different block sizes than on the Pentium-III.
	cfg := mpi.DefaultConfig(1, 2)
	cfg.Shm.Mem = memmodel.UltraSparcII()
	cfg.SCI.Mem = memmodel.UltraSparcII()
	cfg.Shm.BusBW = 500e6
	contig := contigBWCfg(cfg)
	beat := false
	for _, bs := range []int64{512, 4096, 16 << 10} {
		if noncontigBWWith(cfg, bs, true) > contig {
			beat = true
		}
	}
	if !beat {
		t.Error("UltraSparc II model never shows the ff-over-contiguous quirk")
	}
}
