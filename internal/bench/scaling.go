package bench

import (
	"time"

	"scimpich/internal/flow"
	"scimpich/internal/platform"
	"scimpich/internal/ring"
	"scimpich/internal/sci"
	"scimpich/internal/sim"
)

// Ring-scaling experiments: Table 2 (per-node bandwidth of the one-sided
// put workload for different segment-utilization levels, ring load and
// efficiency) and Figure 12 (scaling of one-sided strided communication on
// the platforms with hardware support).
//
// These run at the interconnect level: the workload is the steady-state
// bulk phase of the sparse put benchmark, so each process contributes one
// long flow at the adapter's sustained put rate, routed over the real ring
// segments (with flow-control echo traffic on the return path) and resolved
// by the max-min-fair flow model with the Table 2 congestion calibration.

// RingNodes is the physical ringlet size of the testbed.
const RingNodes = 8

// Table2Row is one row of Table 2.
type Table2Row struct {
	ActiveNodes int
	// 1 transfer/segment scenario (neighbour transfers).
	PerNode1 float64 // MiB/s
	Acc1     float64
	// 8 transfers/segment scenario (full-loop transfers, dual-SMP nodes).
	PerNode8 float64
	Acc8     float64
	Load     float64 // offered ring load, fraction of nominal
	Eff      float64 // achieved fraction of nominal
}

// RunTable2 reproduces Table 2 for the given link frequency (166 MHz in the
// paper's main experiment; 200 MHz for the rerun).
func RunTable2(mhz float64) []Table2Row {
	rows := make([]Table2Row, 0, 5)
	for n := 4; n <= 8; n++ {
		perNode1, _, _ := ringScenario(mhz, n, 2, true, 1)
		perNode8, acc8, _ := ringScenario(mhz, n, 2, false, 0)
		nominal := ring.BandwidthForMHz(mhz) / MiB
		attempted := float64(n) * sustainedPutMiB()
		rows = append(rows, Table2Row{
			ActiveNodes: n,
			PerNode1:    perNode1,
			Acc1:        perNode1 * float64(n),
			PerNode8:    perNode8,
			Acc8:        acc8,
			Load:        attempted / nominal,
			Eff:         acc8 / nominal,
		})
	}
	return rows
}

func sustainedPutMiB() float64 {
	return sci.DefaultConfig(RingNodes).SustainedPutBW / MiB
}

// ringScenario runs one steady-state scenario: activeNodes nodes, each with
// procsPerNode processes putting concurrently. neighbour selects the
// 1-transfer-per-segment pattern (distance 1); otherwise full-loop
// transfers produce the maximal segment utilization, or — when distance > 0
// — the given ring distance. It returns the per-node and accumulated
// bandwidths in MiB/s plus the highest per-segment offered load (demand as
// a fraction of nominal segment bandwidth).
func ringScenario(mhz float64, activeNodes, procsPerNode int, neighbour bool, distance int) (float64, float64, float64) {
	f := sim.NewLocalFabric(1, time.Microsecond)
	e := f.Locale(0)
	cfg := sci.DefaultConfig(RingNodes)
	cfg.LinkMHz = mhz
	ic := sci.New(e, instrumentSCI(cfg))
	srcCap := cfg.SustainedPutBW / float64(procsPerNode)
	const bytesPerFlow = 32 << 20

	var paths [][]flow.Hop
	for n := 0; n < activeNodes; n++ {
		var path []flow.Hop
		switch {
		case neighbour:
			path = append(path, flow.Path(ic.Ring.Route(n, (n+1)%RingNodes)...)...)
			for _, l := range ic.Ring.Route((n+1)%RingNodes, n) {
				path = append(path, flow.Hop{Link: l, Weight: cfg.EchoFraction})
			}
		case distance > 0:
			dst := (n + distance) % RingNodes
			path = append(path, flow.Path(ic.Ring.Route(n, dst)...)...)
			for _, l := range ic.Ring.Route(dst, n) {
				path = append(path, flow.Hop{Link: l, Weight: cfg.EchoFraction})
			}
		default:
			// Full loop: the transfer crosses every segment (maximal
			// utilization); the "echo" path is empty.
			path = flow.Path(ic.Ring.FullLoop(n)...)
		}
		for pr := 0; pr < procsPerNode; pr++ {
			paths = append(paths, path)
		}
	}

	// Highest per-segment offered load: every flow contributes its source
	// cap times its weight on each segment it crosses.
	segDemand := make(map[*flow.Link]float64)
	for _, path := range paths {
		for _, h := range path {
			segDemand[h.Link] += srcCap * h.Weight
		}
	}
	maxSegLoad := 0.0
	nominal := ring.BandwidthForMHz(mhz)
	for _, d := range segDemand {
		if l := d / nominal; l > maxSegLoad {
			maxSegLoad = l
		}
	}

	var elapsed time.Duration
	e.Go("driver", func(p *sim.Proc) {
		start := p.Now()
		flows := ic.Net.StartBatch(paths, bytesPerFlow, srcCap)
		for _, f := range flows {
			p.Await(f.Done())
		}
		elapsed = p.Now() - start
	})
	f.Run()

	total := int64(len(paths)) * bytesPerFlow
	acc := BWMiB(total, elapsed)
	return acc / float64(activeNodes), acc, maxSegLoad
}

// minFairness maps offered ring load to the ratio between the slowest
// process's bandwidth and the mean (Figure 12 plots "the minimum of the
// per-process maximum bandwidths"). SCI ringlets are position-unfair under
// saturation: nodes whose bypass FIFOs carry more passing traffic get less
// injection bandwidth. Calibrated so the 8-node point lands at the paper's
// 71.8 MiB/s.
func minFairness(load float64) float64 {
	curve := [][2]float64{{0.0, 1.0}, {0.60, 1.0}, {0.97, 0.62}, {1.60, 0.55}, {3.0, 0.55}}
	for i := 1; i < len(curve); i++ {
		if load <= curve[i][0] {
			x0, y0 := curve[i-1][0], curve[i-1][1]
			x1, y1 := curve[i][0], curve[i][1]
			t := (load - x0) / (x1 - x0)
			return y0 + t*(y1-y0)
		}
	}
	return curve[len(curve)-1][1]
}

// ScalingPoint is one (processes, per-process bandwidth) sample.
type ScalingPoint struct {
	Procs int
	BW    float64 // MiB/s
}

// ScalingSeries is one platform's Figure 12 curve.
type ScalingSeries struct {
	ID     string
	Points []ScalingPoint
}

// RunScaling reproduces Figure 12: per-process one-sided put bandwidth
// (minimum over processes) for the platforms with hardware-supported
// one-sided communication, at the given access size.
func RunScaling(accessSize int64) []ScalingSeries {
	var out []ScalingSeries

	// SCI-MPICH over SCI: dual nodes, segment utilization from the
	// average-distance pattern (distance ~ half the active span, capped at
	// the paper's utilization-4 scenario).
	sciSeries := ScalingSeries{ID: "M-S"}
	for n := 2; n <= RingNodes; n++ {
		d := n / 2
		if d > 4 {
			d = 4
		}
		if d < 1 {
			d = 1
		}
		perNode, _, segLoad := ringScenario(ring.DefaultLinkMHz, n, 2, false, d)
		perNode *= minFairness(segLoad)
		sciSeries.Points = append(sciSeries.Points, ScalingPoint{Procs: n, BW: perNode})
	}
	out = append(out, sciSeries)

	for _, pl := range []*platform.Platform{platform.CrayT3E(), platform.SunFireShm(), platform.LAMShm()} {
		s := ScalingSeries{ID: pl.ID}
		for p := 2; p <= pl.MaxProcs; p *= 2 {
			bw := pl.Scaling(p, accessSize)
			if bw == 0 {
				continue
			}
			s.Points = append(s.Points, ScalingPoint{Procs: p, BW: bw / MiB})
		}
		out = append(out, s)
	}
	return out
}

// ScalingFigure formats Figure 12 on a union x-axis.
func ScalingFigure(series []ScalingSeries) *Figure {
	seen := map[int]bool{}
	var xs []int
	for _, s := range series {
		for _, pt := range s.Points {
			if !seen[pt.Procs] {
				seen[pt.Procs] = true
				xs = append(xs, pt.Procs)
			}
		}
	}
	// Insertion sort: the axis is tiny.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	f := &Figure{
		Title:  "Figure 12: scaling of one-sided strided communication (per-process MiB/s, min over processes)",
		XLabel: "procs",
		YLabel: "MiB/s",
	}
	for _, x := range xs {
		f.X = append(f.X, float64(x))
	}
	for _, s := range series {
		vals := make([]float64, len(xs))
		for _, pt := range s.Points {
			for i, x := range xs {
				if x == pt.Procs {
					vals[i] = pt.BW
				}
			}
		}
		f.Series = append(f.Series, Series{Label: s.ID, Values: vals})
	}
	return f
}
