package bench

// The DMA path-selection benchmark behind BENCH_dma.json: the strided-vector
// workload of Figure 7 re-run with each rendezvous deposit engine forced in
// turn (direct_pack_ff PIO, staged pack-and-stream, scatter-gather DMA, the
// legacy generic pipeline), plus the adaptive chooser, per block size. The
// artifact is the regression gate for two claims: descriptor-list DMA beats
// the generic pack-and-stream baseline once blocks average >= 64 B, and the
// adaptive chooser tracks the measured-best engine per size class.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"scimpich/internal/mpi"
	"scimpich/internal/obs"
)

// DMAPathResult is one block-size row of the path-selection matrix.
type DMAPathResult struct {
	BlockSize int64 `json:"block_size"`
	// Forced-engine bandwidths, MiB/s.
	PIOFF   float64 `json:"pio_ff_mibs"`
	Staged  float64 `json:"staged_mibs"`
	DMASG   float64 `json:"dma_sg_mibs"`
	Generic float64 `json:"generic_mibs"`
	// Adaptive chooser: achieved bandwidth and the engine it settled on
	// (the majority of its per-chunk decisions).
	Adaptive float64 `json:"adaptive_mibs"`
	Chosen   string  `json:"chosen"`
	// Best is the measured-best forced engine among the chooser's three
	// candidates (the generic pipeline is a separate rendezvous mode, not
	// a per-chunk option).
	Best     float64 `json:"best_mibs"`
	BestPath string  `json:"best_path"`
}

// DMAPathBlockSizes is the default sweep of the suite.
func DMAPathBlockSizes() []int64 {
	return []int64{8, 16, 32, 64, 128, 256, 1024, 8192}
}

// RunDMAPathBench executes the path-selection matrix between two nodes.
func RunDMAPathBench(blockSizes []int64) []DMAPathResult {
	out := make([]DMAPathResult, 0, len(blockSizes))
	for _, bs := range blockSizes {
		r := DMAPathResult{BlockSize: bs}
		r.PIOFF = dmaPathBW(bs, true, mpi.PathPIO, nil)
		r.Staged = dmaPathBW(bs, true, mpi.PathStaged, nil)
		r.DMASG = dmaPathBW(bs, true, mpi.PathDMA, nil)
		r.Generic = dmaPathBW(bs, false, mpi.PathStatic, nil)
		reg := obs.NewRegistry()
		r.Adaptive = dmaPathBW(bs, true, mpi.PathAdaptive, reg)
		r.Chosen = dominantPath(reg)
		r.Best, r.BestPath = r.PIOFF, "pio-ff"
		if r.Staged > r.Best {
			r.Best, r.BestPath = r.Staged, "staged"
		}
		if r.DMASG > r.Best {
			r.Best, r.BestPath = r.DMASG, "dma-sg"
		}
		out = append(out, r)
	}
	return out
}

// dmaPathBW measures the strided-vector bandwidth with one deposit policy
// pinned. A non-nil registry collects the run's metrics (the adaptive
// measurement reads its per-chunk decisions back out of it).
func dmaPathBW(bs int64, useFF bool, path mpi.PathPolicy, reg *obs.Registry) float64 {
	cfg := instrument(mpi.DefaultConfig(2, 1))
	cfg.Protocol.UseFF = useFF
	cfg.Protocol.Path = path
	if reg != nil {
		cfg.Metrics = reg
	}
	return noncontigRun(cfg, bs)
}

// dominantPath returns the deposit engine the adaptive chooser picked for
// the majority of chunks in a run, from its mpi.path.chosen counters.
func dominantPath(reg *obs.Registry) string {
	best, bestN := "none", int64(0)
	for _, p := range []string{"pio-ff", "staged", "dma-sg"} {
		if n := reg.Counter(obs.Name("mpi.path.chosen", "path", p)).Value(); n > bestN {
			best, bestN = p, n
		}
	}
	return best
}

// dmaFile is the envelope of the BENCH_dma.json artifact.
type dmaFile struct {
	Suite   string          `json:"suite"`
	Go      string          `json:"go"`
	GOOS    string          `json:"goos"`
	GOARCH  string          `json:"goarch"`
	Results []DMAPathResult `json:"results"`
}

// WriteDMAJSON writes the path-selection matrix as an indented JSON
// artifact (the BENCH_dma.json regression gate).
func WriteDMAJSON(path string, results []DMAPathResult) error {
	data, err := json.MarshalIndent(dmaFile{
		Suite:   "dma",
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Results: results,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatDMAPath renders the matrix as an aligned text table.
func FormatDMAPath(results []DMAPathResult) string {
	out := "dma (MiB/s):\n"
	out += fmt.Sprintf("  %9s %9s %9s %9s %9s %9s  %-8s %-8s\n",
		"blocksize", "pio-ff", "staged", "dma-sg", "generic", "adaptive", "chosen", "best")
	for _, r := range results {
		out += fmt.Sprintf("  %9d %9.1f %9.1f %9.1f %9.1f %9.1f  %-8s %-8s\n",
			r.BlockSize, r.PIOFF, r.Staged, r.DMASG, r.Generic, r.Adaptive, r.Chosen, r.BestPath)
	}
	return out
}
