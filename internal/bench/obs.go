package bench

import (
	"flag"
	"fmt"
	"io"
	"os"

	"scimpich/internal/mpi"
	"scimpich/internal/obs"
	"scimpich/internal/sci"
	"scimpich/internal/trace"
)

// Ambient observability: a cmd binary opts in with ObsFlags (or a harness
// with SetObservability), and every driver in this package attaches
// whatever is installed to the clusters and interconnects it builds. With
// nothing installed, instrumenting a config is the identity.
var (
	obsTrace   *obs.Trace
	obsMetrics *obs.Registry
)

// SetObservability installs the ambient trace and metrics registry picked
// up by every benchmark driver (nil disables either). ObsFlags wires this
// to the -trace-out/-metrics-out command line flags; harnesses and tests
// can call it directly.
func SetObservability(t *obs.Trace, r *obs.Registry) {
	obsTrace, obsMetrics = t, r
}

// Observability returns the ambient trace and registry (nil when disabled).
func Observability() (*obs.Trace, *obs.Registry) { return obsTrace, obsMetrics }

// instrument attaches the ambient observability to a cluster config. A
// tracer or registry the driver already set wins.
func instrument(cfg mpi.Config) mpi.Config {
	if cfg.Tracer == nil && obsTrace != nil {
		cfg.Tracer = trace.FromObs(obsTrace)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obsMetrics
	}
	return cfg
}

// instrumentSCI is instrument for the drivers that run the raw
// interconnect without the MPI runtime.
func instrumentSCI(cfg sci.Config) sci.Config {
	if cfg.Tracer == nil && obsTrace != nil {
		cfg.Tracer = trace.FromObs(obsTrace)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obsMetrics
	}
	return cfg
}

// ObsFlags registers the -trace-out and -metrics-out flags on the default
// flag set. Giving either flag on the command line enables the ambient
// trace/registry before the drivers run (the flag package invokes the
// callbacks during flag.Parse). The returned finish function writes the
// collected outputs — call it (or defer it) after the benchmarks ran:
// -trace-out produces Chrome trace-event JSON (load it in Perfetto or
// chrome://tracing, or aggregate it with cmd/tracestat) plus a
// per-category span summary on stdout; -metrics-out produces the
// plain-text metrics dump.
func ObsFlags() func() {
	var traceFile, metricsFile string
	flag.Func("trace-out", "write a Chrome trace-event JSON timeline to `file`", func(s string) error {
		traceFile = s
		if obsTrace == nil {
			obsTrace = obs.NewTrace(0)
		}
		return nil
	})
	flag.Func("metrics-out", "write a plain-text metrics dump to `file`", func(s string) error {
		metricsFile = s
		if obsMetrics == nil {
			obsMetrics = obs.NewRegistry()
		}
		return nil
	})
	return func() {
		if traceFile != "" {
			if err := writeFile(traceFile, obsTrace.WriteChrome); err != nil {
				fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			}
			WriteObsSummary(os.Stdout)
		}
		if metricsFile != "" {
			if err := writeFile(metricsFile, func(w io.Writer) error {
				obsMetrics.WriteText(w)
				return nil
			}); err != nil {
				fmt.Fprintf(os.Stderr, "metrics-out: %v\n", err)
			}
		}
	}
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
