package bench

import (
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
	"scimpich/internal/obs"
)

// A derived-datatype benchmark suite in the spirit of the paper's reference
// [24] (Reussner, Träff, Hunzelmann: "A Benchmark for MPI Derived
// Datatypes"): a matrix of representative datatype patterns, each
// transmitted with the generic engine and with direct_pack_ff, reported as
// efficiency relative to the equivalent contiguous transfer. The paper
// cites [24]'s finding of "significantly reduced performance for
// non-contiguous datatypes opposed to the contiguous equivalent" across
// platforms — this suite shows where direct_pack_ff closes that gap.

// DTPattern is one datatype pattern of the suite.
type DTPattern struct {
	Name string
	// Build returns the committed type and instance count such that the
	// payload is roughly NoncontigTotal bytes.
	Build func() (*datatype.Type, int)
}

// DTPatterns returns the benchmark's pattern matrix.
func DTPatterns() []DTPattern {
	return []DTPattern{
		{Name: "contiguous", Build: func() (*datatype.Type, int) {
			return datatype.Contiguous(NoncontigTotal/8, datatype.Float64).Commit(), 1
		}},
		{Name: "vector-small-blocks", Build: func() (*datatype.Type, int) {
			// 64-byte blocks, equal gaps.
			return datatype.Vector(NoncontigTotal/64, 8, 16, datatype.Float64).Commit(), 1
		}},
		{Name: "vector-large-blocks", Build: func() (*datatype.Type, int) {
			// 8 kiB blocks, equal gaps.
			return datatype.Vector(NoncontigTotal/8192, 1024, 2048, datatype.Float64).Commit(), 1
		}},
		{Name: "hvector-misaligned", Build: func() (*datatype.Type, int) {
			// 40-byte blocks at a 104-byte stride: nothing aligns to the
			// write-combine buffer.
			count := NoncontigTotal / 40
			return datatype.Hvector(count, 5, 104, datatype.Float64).Commit(), 1
		}},
		{Name: "indexed-irregular", Build: func() (*datatype.Type, int) {
			// Irregular block lengths 1..16 elements with growing gaps.
			var lens, displs []int
			next := 0
			total := 0
			for i := 0; total < NoncontigTotal/8; i++ {
				l := 1 + (i*7)%16
				lens = append(lens, l)
				displs = append(displs, next)
				next += l + 1 + i%5
				total += l
			}
			return datatype.Indexed(lens, displs, datatype.Float64).Commit(), 1
		}},
		{Name: "struct-vector", Build: func() (*datatype.Type, int) {
			// The paper's figure 3 type: a vector of structs (int + 3
			// chars + gap).
			st := datatype.StructOf(
				datatype.Field{Type: datatype.Int32, Blocklen: 1, Disp: 0},
				datatype.Field{Type: datatype.Char, Blocklen: 3, Disp: 4},
			)
			st = datatype.Resized(st, 0, 12)
			count := NoncontigTotal / 7
			return datatype.Vector(count, 1, 1, st).Commit(), 1
		}},
		{Name: "nested-double-strided", Build: func() (*datatype.Type, int) {
			return doubleStridedType(256), 1
		}},
		{Name: "subarray-2d-face", Build: func() (*datatype.Type, int) {
			// The interior column block of a 2-D array: 256 rows of 128
			// doubles out of 512-double rows.
			return datatype.Subarray([]int{256, 512}, []int{256, 128}, []int{0, 192}, datatype.Float64).Commit(), 1
		}},
	}
}

// DTResult is one pattern's outcome.
type DTResult struct {
	Name       string
	Bytes      int64
	GenericBW  float64 // MiB/s
	FFBW       float64
	ContigBW   float64
	GenericEff float64 // relative to contiguous
	FFEff      float64
	// AdaptiveBW is the bandwidth under the adaptive path chooser, and
	// Chosen the deposit engine it settled on for the pattern.
	AdaptiveBW  float64
	AdaptiveEff float64
	Chosen      string
}

// RunDTBench executes the suite between two nodes.
func RunDTBench() []DTResult {
	contig := contigBW(2, 1)
	var out []DTResult
	for _, pat := range DTPatterns() {
		ty, count := pat.Build()
		gen := dtRun(ty, count, false)
		ff := dtRun(ty, count, true)
		ad, chosen := dtRunAdaptive(ty, count)
		out = append(out, DTResult{
			Name:        pat.Name,
			Bytes:       ty.Size() * int64(count),
			GenericBW:   gen,
			FFBW:        ff,
			ContigBW:    contig,
			GenericEff:  gen / contig,
			FFEff:       ff / contig,
			AdaptiveBW:  ad,
			AdaptiveEff: ad / contig,
			Chosen:      chosen,
		})
	}
	return out
}

// dtRun measures one pattern's transfer bandwidth with the static engines
// (the suite's generic-vs-ff ablation is about the engines themselves).
func dtRun(ty *datatype.Type, count int, useFF bool) float64 {
	cfg := instrument(mpi.DefaultConfig(2, 1))
	cfg.Protocol.UseFF = useFF
	cfg.Protocol.Path = mpi.PathStatic
	return dtRunCfg(cfg, ty, count)
}

// dtRunAdaptive measures the pattern under the adaptive chooser and reports
// the deposit engine it picked for the majority of chunks.
func dtRunAdaptive(ty *datatype.Type, count int) (float64, string) {
	cfg := instrument(mpi.DefaultConfig(2, 1))
	cfg.Protocol.UseFF = true
	cfg.Protocol.Path = mpi.PathAdaptive
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	bw := dtRunCfg(cfg, ty, count)
	return bw, dominantPath(reg)
}

// dtRunCfg runs the pattern's ping stream on the given configuration.
func dtRunCfg(cfg mpi.Config, ty *datatype.Type, count int) float64 {
	span := ty.Extent()*int64(count-1) + ty.UB() + 64
	src := make([]byte, span)
	dst := make([]byte, span)
	total := ty.Size() * int64(count)
	const reps = 3
	var elapsed time.Duration
	mpi.Run(cfg, func(c *mpi.Comm) {
		switch c.Rank() {
		case 0:
			c.Barrier()
			start := c.WtimeDuration()
			for i := 0; i < reps; i++ {
				c.Send(src, count, ty, 1, i)
			}
			c.Recv(nil, 0, datatype.Byte, 1, 999)
			elapsed = c.WtimeDuration() - start
		case 1:
			c.Barrier()
			for i := 0; i < reps; i++ {
				c.Recv(dst, count, ty, 0, i)
			}
			c.Send(nil, 0, datatype.Byte, 0, 999)
		}
	})
	return BWMiB(total*reps, elapsed)
}
