package bench

import (
	"testing"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
	"scimpich/internal/obs/flight"
)

// Flight-recorder overhead on the latency-critical short-message path: the
// same inter-node 64B ping-pong with the recorder detached and attached.
// The recorder is meant to be always-on, so the On variant must stay
// within a few percent of Off (the acceptance bound is 5%).

func benchPingPongShort(b *testing.B, rec *flight.Recorder) {
	const size = 64
	buf := make([]byte, size)
	cfg := mpi.DefaultConfig(2, 1)
	cfg.Flight = rec
	b.ReportAllocs()
	b.ResetTimer()
	mpi.Run(cfg, func(c *mpi.Comm) {
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				c.Send(buf, size, datatype.Byte, 1, 0)
				c.Recv(buf, size, datatype.Byte, 1, 1)
			} else {
				c.Recv(buf, size, datatype.Byte, 0, 0)
				c.Send(buf, size, datatype.Byte, 0, 1)
			}
		}
	})
}

func BenchmarkPingPongShortFlightOff(b *testing.B) {
	benchPingPongShort(b, nil)
}

func BenchmarkPingPongShortFlightOn(b *testing.B) {
	benchPingPongShort(b, flight.New(512))
}
