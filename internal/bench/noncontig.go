package bench

import (
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
	"scimpich/internal/platform"
)

// The noncontig micro-benchmark (paper §3.4): transmit a single-strided
// vector datatype whose block size doubles from 8 bytes to 128 kiB with a
// stride of twice the block size (equal data and gaps); every transfer
// moves the same total payload (256 kiB). Compared are the generic
// pack-and-send baseline, the direct_pack_ff transport, and the equivalent
// contiguous transfer, both inter-node (SCI) and intra-node (shared
// memory).

// NoncontigTotal is the per-transfer payload of the benchmark.
const NoncontigTotal = 256 << 10

// NoncontigResult is one block-size row of Figure 7.
type NoncontigResult struct {
	BlockSize int64
	// Bandwidths in MiB/s.
	InterGeneric float64
	InterFF      float64
	InterContig  float64
	IntraGeneric float64
	IntraFF      float64
	IntraContig  float64
}

// RunNoncontig reproduces Figure 7 over the given block sizes.
func RunNoncontig(blockSizes []int64) []NoncontigResult {
	results := make([]NoncontigResult, len(blockSizes))
	for i, bs := range blockSizes {
		results[i] = NoncontigResult{
			BlockSize:    bs,
			InterGeneric: noncontigBW(2, 1, bs, false),
			InterFF:      noncontigBW(2, 1, bs, true),
			InterContig:  contigBW(2, 1),
			IntraGeneric: noncontigBW(1, 2, bs, false),
			IntraFF:      noncontigBW(1, 2, bs, true),
			IntraContig:  contigBW(1, 2),
		}
	}
	return results
}

// vectorType builds the benchmark's strided vector: blocks of bs bytes of
// doubles, gaps of the same size, summing to NoncontigTotal data bytes.
func vectorType(bs int64) (*datatype.Type, int) {
	elems := int(bs / 8) // doubles per block
	count := int(NoncontigTotal / bs)
	return datatype.Vector(count, elems, 2*elems, datatype.Float64).Commit(), count
}

// noncontigBW measures the strided-vector bandwidth on a cluster of the
// given shape.
func noncontigBW(nodes, procs int, bs int64, useFF bool) float64 {
	cfg := instrument(mpi.DefaultConfig(nodes, procs))
	return noncontigBWWith(cfg, bs, useFF)
}

// noncontigBWWith runs the strided-vector workload on a custom cluster
// configuration (used by the UltraSparc II reproduction).
func noncontigBWWith(cfg mpi.Config, bs int64, useFF bool) float64 {
	cfg.Protocol.UseFF = useFF
	// This is an engine ablation reproducing figure 7: pin the legacy
	// static paths so UseFF measures direct_pack_ff itself, not whatever
	// the adaptive chooser prefers at this block size.
	cfg.Protocol.Path = mpi.PathStatic
	return noncontigRun(cfg, bs)
}

// noncontigRun measures the strided-vector workload with the protocol
// configuration exactly as given (the DMA path-selection suite pins its own
// deposit policy).
func noncontigRun(cfg mpi.Config, bs int64) float64 {
	ty, _ := vectorType(bs)
	span := ty.Extent()
	src := make([]byte, span+64)
	dst := make([]byte, span+64)
	const reps = 4
	var elapsed time.Duration
	mpi.Run(cfg, func(c *mpi.Comm) {
		switch c.Rank() {
		case 0:
			c.Barrier()
			start := c.WtimeDuration()
			for i := 0; i < reps; i++ {
				c.Send(src, 1, ty, 1, i)
			}
			// Wait for the receiver to confirm full delivery.
			c.Recv(nil, 0, datatype.Byte, 1, 999)
			elapsed = c.WtimeDuration() - start
		case 1:
			c.Barrier()
			for i := 0; i < reps; i++ {
				c.Recv(dst, 1, ty, 0, i)
			}
			c.Send(nil, 0, datatype.Byte, 0, 999)
		}
	})
	return BWMiB(NoncontigTotal*reps, elapsed)
}

// contigBW measures the contiguous 256 kiB reference transfer.
func contigBW(nodes, procs int) float64 {
	return contigBWCfg(instrument(mpi.DefaultConfig(nodes, procs)))
}

// contigBWWithDMA measures the contiguous transfer with the DMA rendezvous
// option (dmaMin 0 = PIO).
func contigBWWithDMA(dmaMin int64) float64 {
	cfg := instrument(mpi.DefaultConfig(2, 1))
	cfg.Protocol.DMAMin = dmaMin
	return contigBWCfg(cfg)
}

func contigBWCfg(cfg mpi.Config) float64 {
	src := make([]byte, NoncontigTotal)
	const reps = 4
	var elapsed time.Duration
	mpi.Run(cfg, func(c *mpi.Comm) {
		switch c.Rank() {
		case 0:
			c.Barrier()
			start := c.WtimeDuration()
			for i := 0; i < reps; i++ {
				c.Send(src, NoncontigTotal, datatype.Byte, 1, i)
			}
			c.Recv(nil, 0, datatype.Byte, 1, 999)
			elapsed = c.WtimeDuration() - start
		case 1:
			c.Barrier()
			dst := make([]byte, NoncontigTotal)
			for i := 0; i < reps; i++ {
				c.Recv(dst, NoncontigTotal, datatype.Byte, 0, i)
			}
			c.Send(nil, 0, datatype.Byte, 0, 999)
		}
	})
	return BWMiB(NoncontigTotal*reps, elapsed)
}

// doubleStridedType builds the figure 2 "double-strided" case: a vector of
// vectors, as produced by exchanging a 2-D face of a 3-D ocean decomposition
// (blocks of bs bytes, strided in two dimensions).
func doubleStridedType(bs int64) *datatype.Type {
	elems := int(bs / 8)
	inner := datatype.Vector(8, elems, 2*elems, datatype.Float64) // 8 blocks per row
	rowExtent := inner.Extent() + 64                              // inter-row gap
	count := int(NoncontigTotal / (8 * bs))
	return datatype.Vector(count, 1, 1, datatype.Resized(inner, 0, rowExtent)).Commit()
}

// Noncontig2DResult extends the benchmark to the double-strided datatype.
type Noncontig2DResult struct {
	BlockSize    int64
	InterGeneric float64
	InterFF      float64
}

// RunNoncontig2D measures the double-strided exchange over SCI.
func RunNoncontig2D(blockSizes []int64) []Noncontig2DResult {
	out := make([]Noncontig2DResult, len(blockSizes))
	for i, bs := range blockSizes {
		out[i] = Noncontig2DResult{
			BlockSize:    bs,
			InterGeneric: noncontig2DBW(bs, false),
			InterFF:      noncontig2DBW(bs, true),
		}
	}
	return out
}

func noncontig2DBW(bs int64, useFF bool) float64 {
	cfg := instrument(mpi.DefaultConfig(2, 1))
	cfg.Protocol.UseFF = useFF
	cfg.Protocol.Path = mpi.PathStatic // engine ablation, as in noncontigBWWith
	ty := doubleStridedType(bs)
	src := make([]byte, ty.Extent()+64)
	dst := make([]byte, ty.Extent()+64)
	const reps = 4
	var elapsed time.Duration
	total := ty.Size()
	mpi.Run(cfg, func(c *mpi.Comm) {
		switch c.Rank() {
		case 0:
			c.Barrier()
			start := c.WtimeDuration()
			for i := 0; i < reps; i++ {
				c.Send(src, 1, ty, 1, i)
			}
			c.Recv(nil, 0, datatype.Byte, 1, 999)
			elapsed = c.WtimeDuration() - start
		case 1:
			c.Barrier()
			for i := 0; i < reps; i++ {
				c.Recv(dst, 1, ty, 0, i)
			}
			c.Send(nil, 0, datatype.Byte, 0, 999)
		}
	})
	return BWMiB(total*reps, elapsed)
}

// NoncontigFigure formats Figure 7.
func NoncontigFigure(results []NoncontigResult) *Figure {
	f := &Figure{
		Title:  "Figure 7: non-contiguous transfers, generic vs direct_pack_ff (MiB/s)",
		XLabel: "blocksize",
		YLabel: "MiB/s",
	}
	series := []Series{
		{Label: "SCI-generic"}, {Label: "SCI-ff"}, {Label: "SCI-contig"},
		{Label: "shm-generic"}, {Label: "shm-ff"}, {Label: "shm-contig"},
	}
	for _, r := range results {
		f.X = append(f.X, float64(r.BlockSize))
		series[0].Values = append(series[0].Values, r.InterGeneric)
		series[1].Values = append(series[1].Values, r.InterFF)
		series[2].Values = append(series[2].Values, r.InterContig)
		series[3].Values = append(series[3].Values, r.IntraGeneric)
		series[4].Values = append(series[4].Values, r.IntraFF)
		series[5].Values = append(series[5].Values, r.IntraContig)
	}
	f.Series = series
	return f
}

// PlatformNoncontigResult is one row of Figure 10: nc and contiguous
// bandwidth per platform.
type PlatformNoncontigResult struct {
	ID string
	NC []float64 // per block size, MiB/s
	C  []float64
}

// RunPlatformNoncontig reproduces Figure 10: the strided-vector benchmark
// on every Table 1 configuration. The SCI-MPICH rows run on the simulated
// stack; the others use the calibrated comparator models.
func RunPlatformNoncontig(blockSizes []int64) []PlatformNoncontigResult {
	var out []PlatformNoncontigResult

	// Comparator platforms.
	for _, pl := range platform.All() {
		if pl.ID == "VIA" {
			continue // §5.3 reference for one-sided only
		}
		r := PlatformNoncontigResult{ID: pl.ID}
		for _, bs := range blockSizes {
			nc, c := pl.NoncontigBW(bs, NoncontigTotal)
			r.NC = append(r.NC, nc/MiB)
			r.C = append(r.C, c/MiB)
		}
		out = append(out, r)
	}

	// SCI-MPICH over SCI (M-S) and shared memory (M-s), on the real stack.
	ms := PlatformNoncontigResult{ID: "M-S"}
	mshm := PlatformNoncontigResult{ID: "M-s"}
	for _, bs := range blockSizes {
		ms.NC = append(ms.NC, noncontigBW(2, 1, bs, true))
		ms.C = append(ms.C, contigBW(2, 1))
		mshm.NC = append(mshm.NC, noncontigBW(1, 2, bs, true))
		mshm.C = append(mshm.C, contigBW(1, 2))
	}
	out = append(out, ms, mshm)
	return out
}

// PlatformNoncontigFigure formats Figure 10.
func PlatformNoncontigFigure(blockSizes []int64, results []PlatformNoncontigResult) *Figure {
	f := &Figure{
		Title:  "Figure 10: non-contiguous datatype bandwidth across platforms (nc and c, MiB/s)",
		XLabel: "blocksize",
		YLabel: "MiB/s",
		X:      ToF(blockSizes),
	}
	for _, r := range results {
		f.Series = append(f.Series,
			Series{Label: r.ID + "-nc", Values: r.NC},
			Series{Label: r.ID + "-c", Values: r.C},
		)
	}
	return f
}
