package bench

import (
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
)

// Classic ping-pong latency/bandwidth sweep (the staple of every MPI
// evaluation of the era): half round-trip time versus message size, for
// inter-node (SCI) and intra-node (shared memory) pairs. The protocol knees
// — short to eager to rendezvous — are visible as slope changes.

// PingPongResult is one message-size sample.
type PingPongResult struct {
	Size int64
	// Half round-trip latency (µs) and resulting bandwidth (MiB/s).
	InterLatUS float64
	InterBW    float64
	IntraLatUS float64
	IntraBW    float64
}

// RunPingPong sweeps the given message sizes.
func RunPingPong(sizes []int64) []PingPongResult {
	out := make([]PingPongResult, len(sizes))
	for i, size := range sizes {
		out[i].Size = size
		out[i].InterLatUS, out[i].InterBW = pingPong(2, 1, size)
		out[i].IntraLatUS, out[i].IntraBW = pingPong(1, 2, size)
	}
	return out
}

func pingPong(nodes, procs int, size int64) (latUS, bw float64) {
	const rounds = 16
	var elapsed time.Duration
	buf := make([]byte, size)
	mpi.Run(instrument(mpi.DefaultConfig(nodes, procs)), func(c *mpi.Comm) {
		c.Barrier()
		start := c.WtimeDuration()
		for i := 0; i < rounds; i++ {
			if c.Rank() == 0 {
				c.Send(buf, int(size), datatype.Byte, 1, 0)
				c.Recv(buf, int(size), datatype.Byte, 1, 1)
			} else {
				c.Recv(buf, int(size), datatype.Byte, 0, 0)
				c.Send(buf, int(size), datatype.Byte, 0, 1)
			}
		}
		if c.Rank() == 0 {
			elapsed = c.WtimeDuration() - start
		}
	})
	half := elapsed / (2 * rounds)
	if half <= 0 {
		return 0, 0
	}
	return half.Seconds() * 1e6, float64(size) / half.Seconds() / MiB
}

// PingPongFigure formats the sweep.
func PingPongFigure(results []PingPongResult) *Figure {
	f := &Figure{
		Title:  "Ping-pong: half round trip latency (µs) and bandwidth (MiB/s)",
		XLabel: "size",
		YLabel: "µs / MiB/s",
	}
	s := []Series{
		{Label: "SCI-lat-µs"}, {Label: "SCI-MiB/s"},
		{Label: "shm-lat-µs"}, {Label: "shm-MiB/s"},
	}
	for _, r := range results {
		f.X = append(f.X, float64(r.Size))
		s[0].Values = append(s[0].Values, r.InterLatUS)
		s[1].Values = append(s[1].Values, r.InterBW)
		s[2].Values = append(s[2].Values, r.IntraLatUS)
		s[3].Values = append(s[3].Values, r.IntraBW)
	}
	f.Series = s
	return f
}
