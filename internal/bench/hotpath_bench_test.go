package bench

import "testing"

// The hot-path suites as ordinary go-test benchmarks:
//
//	go test -bench 'Hotpath' ./internal/bench
//
// cmd/benchjson runs the same definitions and emits the JSON artifacts.

func BenchmarkHotpathPack(b *testing.B) {
	for _, nb := range PackBenchmarks() {
		b.Run(nb.Name, nb.F)
	}
}

func BenchmarkHotpathPIO(b *testing.B) {
	for _, nb := range PIOBenchmarks() {
		b.Run(nb.Name, nb.F)
	}
}
