package bench

import (
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
	"scimpich/internal/osc"
)

// One-sided versus two-sided comparison — the paper's concluding question:
// "Only comparing the performance and algorithmic complexity of
// applications solving a given problem with one- or two-sided
// communication will allow to decide for one or the other technique."
//
// Two scenarios:
//
//  1. PingPong: a synchronized put+fence pair against a two-sided
//     send/recv echo. Per the paper's observation, one-sided is NOT faster
//     here — the synchronization costs as much as the matched receive.
//  2. BusyTarget: the origin reads many small pieces of the target's data
//     while the target computes. With one-sided communication the target
//     "does not take any action"; with two-sided messaging it must poll
//     between compute chunks, so every request waits for the next poll.
//     This is where one-sided wins — by removing the target's
//     participation, not by raw latency.

// OneVsTwoSidedResult summarizes the comparison.
type OneVsTwoSidedResult struct {
	// PingPong: per-round-trip latency.
	TwoSidedPingPong time.Duration
	OneSidedPingPong time.Duration
	// BusyTarget: total completion time of the access phase.
	TwoSidedBusy time.Duration
	OneSidedBusy time.Duration
}

// RunOneVsTwoSided executes both scenarios on a 2-node cluster.
func RunOneVsTwoSided() OneVsTwoSidedResult {
	var r OneVsTwoSidedResult
	r.TwoSidedPingPong = twoSidedPingPong()
	r.OneSidedPingPong = oneSidedPingPong()
	r.TwoSidedBusy = twoSidedBusyTarget()
	r.OneSidedBusy = oneSidedBusyTarget()
	return r
}

const ppRounds = 32

func twoSidedPingPong() time.Duration {
	var d time.Duration
	mpi.Run(instrument(mpi.DefaultConfig(2, 1)), func(c *mpi.Comm) {
		buf := make([]byte, 8)
		c.Barrier()
		start := c.WtimeDuration()
		for i := 0; i < ppRounds; i++ {
			if c.Rank() == 0 {
				c.Send(buf, 8, datatype.Byte, 1, 0)
				c.Recv(buf, 8, datatype.Byte, 1, 1)
			} else {
				c.Recv(buf, 8, datatype.Byte, 0, 0)
				c.Send(buf, 8, datatype.Byte, 0, 1)
			}
		}
		if c.Rank() == 0 {
			d = (c.WtimeDuration() - start) / ppRounds
		}
	})
	return d
}

func oneSidedPingPong() time.Duration {
	var d time.Duration
	mpi.Run(instrument(mpi.DefaultConfig(2, 1)), func(c *mpi.Comm) {
		s := osc.NewSystem(c)
		w := s.CreateShared(c.AllocShared(16), osc.DefaultConfig())
		buf := make([]byte, 8)
		w.Fence()
		start := c.WtimeDuration()
		for i := 0; i < ppRounds; i++ {
			if c.Rank() == 0 {
				w.Put(buf, 8, datatype.Byte, 1, 0)
			}
			w.Fence()
			if c.Rank() == 1 {
				w.Put(buf, 8, datatype.Byte, 0, 8)
			}
			w.Fence()
		}
		if c.Rank() == 0 {
			d = (c.WtimeDuration() - start) / ppRounds
		}
	})
	return d
}

const (
	busyAccesses    = 64
	busyAccessBytes = 64
	computeChunk    = 50 * time.Microsecond
	computeChunks   = 40
)

// twoSidedBusyTarget: rank 1 computes in chunks and polls for requests
// between chunks (the explicit-polling pattern the paper says one-sided
// communication exists to avoid). Rank 0 issues request-reply accesses.
func twoSidedBusyTarget() time.Duration {
	var d time.Duration
	mpi.Run(instrument(mpi.DefaultConfig(2, 1)), func(c *mpi.Comm) {
		switch c.Rank() {
		case 0:
			c.Barrier()
			start := c.WtimeDuration()
			req := make([]byte, 8)
			reply := make([]byte, busyAccessBytes)
			for i := 0; i < busyAccesses; i++ {
				c.Send(req, 8, datatype.Byte, 1, 100)
				c.Recv(reply, busyAccessBytes, datatype.Byte, 1, 101)
			}
			c.Send(nil, 0, datatype.Byte, 1, 102) // done
			d = c.WtimeDuration() - start
		case 1:
			data := make([]byte, busyAccessBytes)
			c.Barrier()
			done := false
			for chunk := 0; chunk < computeChunks && !done; chunk++ {
				c.Proc().Sleep(computeChunk) // compute
				// Poll: service everything that queued up.
				for {
					if _, ok := c.Iprobe(0, 102); ok {
						c.Recv(nil, 0, datatype.Byte, 0, 102)
						done = true
						break
					}
					st, ok := c.Iprobe(0, 100)
					if !ok {
						break
					}
					buf := make([]byte, st.Bytes)
					c.Recv(buf, int(st.Bytes), datatype.Byte, 0, 100)
					c.Send(data, busyAccessBytes, datatype.Byte, 0, 101)
				}
			}
			// Drain any remainder so the origin completes.
			for !done {
				st := c.Probe(0, mpi.AnyTag)
				if st.Tag == 102 {
					c.Recv(nil, 0, datatype.Byte, 0, 102)
					break
				}
				buf := make([]byte, st.Bytes)
				c.Recv(buf, int(st.Bytes), datatype.Byte, 0, 100)
				c.Send(data, busyAccessBytes, datatype.Byte, 0, 101)
			}
		}
	})
	return d
}

// oneSidedBusyTarget: the same accesses as direct gets from the target's
// shared window while the target computes, uninvolved.
func oneSidedBusyTarget() time.Duration {
	var d time.Duration
	mpi.Run(instrument(mpi.DefaultConfig(2, 1)), func(c *mpi.Comm) {
		s := osc.NewSystem(c)
		w := s.CreateShared(c.AllocShared(4096), osc.DefaultConfig())
		w.Fence()
		switch c.Rank() {
		case 0:
			start := c.WtimeDuration()
			buf := make([]byte, busyAccessBytes)
			for i := 0; i < busyAccesses; i++ {
				w.Get(buf, busyAccessBytes, datatype.Byte, 1, 0)
			}
			d = c.WtimeDuration() - start
		case 1:
			// The target only computes; it takes no communication action.
			for chunk := 0; chunk < computeChunks; chunk++ {
				c.Proc().Sleep(computeChunk)
			}
		}
		w.Fence()
	})
	return d
}
