// Package bench contains the experiment drivers that regenerate every
// table and figure of the paper's evaluation, plus formatting helpers. Each
// driver returns structured results; the cmd/ binaries print them and
// bench_test.go exposes them as testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"scimpich/internal/obs"
)

// MiB is one mebibyte.
const MiB = 1 << 20

// Series is one labelled curve of a figure: y-values indexed like the
// figure's x-axis points.
type Series struct {
	Label  string
	Values []float64
}

// Figure is a set of series over a common x-axis.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Print renders the figure as an aligned text table.
func (f *Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", f.Title)
	fmt.Fprintf(w, "# y: %s\n", f.YLabel)
	fmt.Fprintf(w, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %14s", s.Label)
	}
	fmt.Fprintln(w)
	for i, x := range f.X {
		fmt.Fprintf(w, "%-12s", formatX(x))
		for _, s := range f.Series {
			if i < len(s.Values) && s.Values[i] != 0 {
				fmt.Fprintf(w, " %14.2f", s.Values[i])
			} else {
				fmt.Fprintf(w, " %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// CSV renders the figure as comma-separated values.
func (f *Figure) CSV(w io.Writer) {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Label)
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	for i, x := range f.X {
		row := []string{formatX(x)}
		for _, s := range f.Series {
			v := 0.0
			if i < len(s.Values) {
				v = s.Values[i]
			}
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func formatX(x float64) string {
	if x == float64(int64(x)) {
		v := int64(x)
		switch {
		case v >= 1<<20 && v%(1<<20) == 0:
			return fmt.Sprintf("%dMi", v>>20)
		case v >= 1<<10 && v%(1<<10) == 0:
			return fmt.Sprintf("%dKi", v>>10)
		default:
			return fmt.Sprintf("%d", v)
		}
	}
	return fmt.Sprintf("%g", x)
}

// Sizes returns the power-of-two sweep [lo, hi].
func Sizes(lo, hi int64) []int64 {
	var out []int64
	for s := lo; s <= hi; s *= 2 {
		out = append(out, s)
	}
	return out
}

// ToF converts sizes to float64 x-values.
func ToF(sizes []int64) []float64 {
	out := make([]float64, len(sizes))
	for i, s := range sizes {
		out[i] = float64(s)
	}
	return out
}

// BWMiB converts bytes moved in a duration to MiB/s.
func BWMiB(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / MiB
}

// WriteObsSummary renders the per-category span summary of the ambient
// observability trace — spans, bytes and latency quantiles per protocol
// category — as an aligned table. A no-op while tracing is disabled.
func WriteObsSummary(w io.Writer) {
	if obsTrace == nil {
		return
	}
	sums := obsTrace.Summarize()
	if len(sums) == 0 {
		return
	}
	fmt.Fprintln(w, "# span summary (per category)")
	obs.WriteSummaries(w, sums)
	fmt.Fprintln(w)
}
