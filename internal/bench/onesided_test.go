package bench

import (
	"testing"

	"scimpich/internal/mpi"
	"scimpich/internal/nic"
	"scimpich/internal/platform"
)

func TestOneVsTwoSidedConclusion(t *testing.T) {
	r := RunOneVsTwoSided()
	// Paper §6: "if synchronization is considered, one-sided communication
	// does usually not provide lower latencies if compared directly with
	// two-sided communication using micro-benchmarks."
	if r.OneSidedPingPong < r.TwoSidedPingPong {
		t.Errorf("synchronized one-sided ping-pong (%v) should not beat two-sided (%v)",
			r.OneSidedPingPong, r.TwoSidedPingPong)
	}
	// But a busy, non-participating target changes the picture entirely:
	// direct remote access does not wait for the target's polls.
	if r.OneSidedBusy >= r.TwoSidedBusy/3 {
		t.Errorf("one-sided access to a busy target (%v) should be far faster than request-reply (%v)",
			r.OneSidedBusy, r.TwoSidedBusy)
	}
}

func TestDTBenchSuiteInvariants(t *testing.T) {
	results := RunDTBench()
	if len(results) != len(DTPatterns()) {
		t.Fatalf("suite returned %d rows, want %d", len(results), len(DTPatterns()))
	}
	for _, r := range results {
		if r.Name == "contiguous" {
			if r.FFEff < 0.99 || r.GenericEff < 0.99 {
				t.Errorf("contiguous pattern efficiency %f/%f, want 1", r.GenericEff, r.FFEff)
			}
			continue
		}
		// direct_pack_ff must never lose to the generic engine on these
		// patterns (all blocks >= 7 bytes; the 8-byte crossover applies to
		// strictly tiny blocks only).
		if r.FFBW < r.GenericBW {
			t.Errorf("%s: ff %.1f below generic %.1f", r.Name, r.FFBW, r.GenericBW)
		}
		// And the data sizes must be near the nominal payload.
		if r.Bytes < NoncontigTotal*9/10 || r.Bytes > NoncontigTotal*11/10 {
			t.Errorf("%s: payload %d bytes, want ~%d", r.Name, r.Bytes, NoncontigTotal)
		}
	}
	// The [24] finding: the generic engine is "significantly reduced"
	// versus contiguous for fine-grained patterns.
	for _, r := range results {
		if r.Name == "vector-small-blocks" && r.GenericEff > 0.6 {
			t.Errorf("small-block generic efficiency %.2f, want significantly reduced", r.GenericEff)
		}
	}
}

func TestDMARendezvousOption(t *testing.T) {
	// The §6 outlook: large contiguous chunks over the DMA engine. The CPU
	// is freed (not modeled as time here), at the price of bandwidth.
	bwPIO := contigBWWithDMA(0)
	bwDMA := contigBWWithDMA(64 << 10)
	if bwDMA >= bwPIO {
		t.Errorf("DMA transfer (%.1f MiB/s) should trade bandwidth vs PIO (%.1f MiB/s) on this platform",
			bwDMA, bwPIO)
	}
	if bwDMA < 50 || bwDMA > 85 {
		t.Errorf("DMA-path bandwidth = %.1f MiB/s, want near the 85 MiB/s engine peak", bwDMA)
	}
}

func TestTorusProjection(t *testing.T) {
	// §6: "a limit of 8 nodes per ringlet ... gives a 512 nodes system
	// when using 3D-torus topology". Per-node bandwidth on the torus must
	// match the single ringlet; a flat 512-ring must collapse.
	rows := RunTorusProjection(200)
	ringlet, torus512, giant := rows[0], rows[1], rows[2]
	if torus512.Nodes != 512 || ringlet.Nodes != 8 {
		t.Fatalf("unexpected scenario shapes: %+v", rows)
	}
	if torus512.PerNode < ringlet.PerNode*0.95 {
		t.Errorf("torus per-node bw %.1f falls below the ringlet's %.1f",
			torus512.PerNode, ringlet.PerNode)
	}
	if giant.PerNode > torus512.PerNode/10 {
		t.Errorf("flat 512-ring per-node bw %.1f did not collapse (torus %.1f)",
			giant.PerNode, torus512.PerNode)
	}
}

func TestNICStackMatchesAnalyticPlatformClass(t *testing.T) {
	// Cross-validation: the Myrinet-class comparator is modeled twice —
	// as an analytic curve (internal/platform, figure 10) and as the real
	// MPI stack over the message-NIC transport. The two must agree on the
	// class of result: generic-only noncontig well below contiguous, and
	// similar contiguous bandwidth.
	cfg := mpi.NICConfig(2, 1, nic.Myrinet1280())
	simContig := contigBWCfg(cfg)
	simNC := noncontigBWWith(cfg, 512, true) // ff enabled but useless on a NIC

	pl := platform.SCoreMyrinet()
	anaNC, anaContig := pl.NoncontigBW(512, NoncontigTotal)

	if ratio := simContig / (anaContig / MiB); ratio < 0.5 || ratio > 2 {
		t.Errorf("contiguous: simulated %.1f vs analytic %.1f MiB/s — class mismatch",
			simContig, anaContig/MiB)
	}
	if ratio := simNC / (anaNC / MiB); ratio < 0.4 || ratio > 2.5 {
		t.Errorf("noncontig: simulated %.1f vs analytic %.1f MiB/s — class mismatch",
			simNC, anaNC/MiB)
	}
	// Both agree that noncontig stays below contiguous on a message NIC.
	if simNC >= simContig {
		t.Errorf("simulated NIC noncontig (%.1f) not below contiguous (%.1f)", simNC, simContig)
	}
}
