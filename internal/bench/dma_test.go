package bench

import "testing"

// The BENCH_dma.json claims, pinned as tests: descriptor-list DMA beats the
// generic pack-and-stream pipeline once blocks average >= 64 B, and the
// adaptive chooser lands on (or within a few percent of) the measured-best
// deposit engine in every size class.
func TestDMAPathSelectionClaims(t *testing.T) {
	results := RunDMAPathBench(DMAPathBlockSizes())
	for _, r := range results {
		if r.BlockSize >= 64 && r.DMASG <= r.Generic {
			t.Errorf("at %d B blocks: dma-sg %.1f MiB/s does not beat generic %.1f",
				r.BlockSize, r.DMASG, r.Generic)
		}
		if r.Adaptive < 0.9*r.Best {
			t.Errorf("at %d B blocks: adaptive %.1f MiB/s below 0.9x best forced path %.1f (%s)",
				r.BlockSize, r.Adaptive, r.Best, r.BestPath)
		}
		// Where one engine clearly dominates, the chooser must name it;
		// near-ties may legitimately go either way.
		second := 0.0
		for _, bw := range []float64{r.PIOFF, r.Staged, r.DMASG} {
			if bw < r.Best && bw > second {
				second = bw
			}
		}
		if r.Best > 1.05*second && r.Chosen != r.BestPath {
			t.Errorf("at %d B blocks: adaptive chose %s, measured best is clearly %s (%.1f vs %.1f MiB/s)",
				r.BlockSize, r.Chosen, r.BestPath, r.Best, second)
		}
	}
}
