package bench

// Hot-path microbenchmarks and the JSON regression gate behind `make
// bench-json`. Unlike the experiment drivers in this package (which
// regenerate the paper's figures in virtual time), these measure the real
// host-CPU cost of the simulator's own hot paths: the direct_pack_ff engine
// (full pack, chunked/resumed pack, Walk) and the PIO delivery pipeline.
// cmd/benchjson runs both suites via testing.Benchmark and emits
// BENCH_pack.json / BENCH_pio.json; CI archives them so regressions show up
// in the artifact diff. See docs/PERFORMANCE.md.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/pack"
	"scimpich/internal/sci"
	"scimpich/internal/sim"
)

// NamedBench is one hot-path microbenchmark.
type NamedBench struct {
	// Name within the suite (stable: JSON consumers key on it).
	Name string
	// Note says what the number means (one line, for the JSON).
	Note string
	F    func(b *testing.B)
}

// hpVectorType is the depth-2 nested vector of the pack benchmarks: 16
// instances of (32 blocks of 64 B, stride 128 B).
func hpVectorType() *datatype.Type {
	inner := datatype.Vector(32, 8, 16, datatype.Float64)
	return datatype.Vector(16, 1, 2, inner).Commit()
}

// hpIndexedType is an irregular 128-leaf indexed layout (32 B blocks at
// 48 B displacements): the case where a per-chunk find_position restart
// costs O(leaves) and the cursor's O(1) resume pays off most.
func hpIndexedType() *datatype.Type {
	nb := 128
	blocklens := make([]int, nb)
	displs := make([]int, nb)
	for i := range blocklens {
		blocklens[i] = 32
		displs[i] = i * 48
	}
	return datatype.Indexed(blocklens, displs, datatype.Byte).Commit()
}

// hpSink is a settable-base buffer sink, reused across chunks so the
// benchmark measures the pack engine, not interface-conversion allocations.
type hpSink struct {
	buf  []byte
	base int64
}

func (s *hpSink) Write(off int64, src []byte) { copy(s.buf[s.base+off:], src) }

// benchChunkedFindPos packs the linearization in fixed chunks with a
// per-chunk FFPack(skip) — the pre-cursor pipeline behavior, kept as the
// comparison baseline.
func benchChunkedFindPos(t *datatype.Type, count int, chunk int64) func(b *testing.B) {
	return func(b *testing.B) {
		total := t.Size() * int64(count)
		user := make([]byte, t.Extent()*int64(count))
		s := &hpSink{buf: make([]byte, total)}
		var sink pack.Sink = s
		b.SetBytes(total)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for off := int64(0); off < total; off += chunk {
				n := chunk
				if off+n > total {
					n = total - off
				}
				s.base = off
				pack.FFPack(sink, user, t, count, off, n)
			}
		}
	}
}

// benchChunkedCursor is the same chunked pack through one resumable Cursor.
func benchChunkedCursor(t *datatype.Type, count int, chunk int64) func(b *testing.B) {
	return func(b *testing.B) {
		total := t.Size() * int64(count)
		user := make([]byte, t.Extent()*int64(count))
		s := &hpSink{buf: make([]byte, total)}
		var sink pack.Sink = s
		cur := pack.NewCursor(t, count)
		b.SetBytes(total)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cur.Reset()
			for off := int64(0); off < total; off += chunk {
				n := chunk
				if off+n > total {
					n = total - off
				}
				s.base = off
				cur.Pack(sink, user, n)
			}
		}
	}
}

// PackBenchmarks is the direct_pack_ff host-cost suite (BENCH_pack.json).
func PackBenchmarks() []NamedBench {
	vec, idx := hpVectorType(), hpIndexedType()
	return []NamedBench{
		{
			Name: "chunked-findpos-vector",
			Note: "8KiB chunks, per-chunk find_position restart (baseline)",
			F:    benchChunkedFindPos(vec, 16, 8<<10),
		},
		{
			Name: "chunked-cursor-vector",
			Note: "8KiB chunks resumed through one Cursor",
			F:    benchChunkedCursor(vec, 16, 8<<10),
		},
		{
			Name: "chunked-findpos-indexed",
			Note: "1KiB chunks over 128 leaves, per-chunk restart (baseline)",
			F:    benchChunkedFindPos(idx, 32, 1<<10),
		},
		{
			Name: "chunked-cursor-indexed",
			Note: "1KiB chunks over 128 leaves resumed through one Cursor",
			F:    benchChunkedCursor(idx, 32, 1<<10),
		},
		{
			Name: "full-ffpack-vector",
			Note: "single FFPack of the whole linearization",
			F: func(b *testing.B) {
				t := hpVectorType()
				count := 16
				total := t.Size() * int64(count)
				user := make([]byte, t.Extent()*int64(count))
				var sink pack.Sink = pack.BufferSink{Buf: make([]byte, total)}
				b.SetBytes(total)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pack.FFPack(sink, user, t, count, 0, -1)
				}
			},
		},
		{
			Name: "walk-vector",
			Note: "block enumeration without copying",
			F: func(b *testing.B) {
				t := hpVectorType()
				count := 16
				b.SetBytes(t.Size() * int64(count))
				b.ReportAllocs()
				fn := func(off, size int64) {}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pack.Walk(t, count, fn)
				}
			},
		},
	}
}

// benchRemoteWrite measures one posted-write op (issue + capture + delivery
// + recycle) on the simulated interconnect: the proc issues the write, then
// sleeps past the wire latency so the delivery lands inside the measured op.
func benchRemoteWrite(payload int, issue func(m *sci.Mapping, p *sim.Proc, src []byte)) func(b *testing.B) {
	return func(b *testing.B) {
		f := sim.NewLocalFabric(1, time.Microsecond)
	e := f.Locale(0)
		ic := sci.New(e, sci.DefaultConfig(2))
		seg := ic.Node(1).Export(1 << 20)
		src := make([]byte, payload)
		drain := ic.Cfg.PIOWriteLatency + time.Microsecond
		b.SetBytes(int64(payload))
		b.ReportAllocs()
		e.Go("writer", func(p *sim.Proc) {
			m := ic.Node(0).MustImport(1, seg.ID())
			for i := 0; i < 8; i++ { // warm pools and the event freelist
				issue(m, p, src)
				p.Sleep(drain)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				issue(m, p, src)
				p.Sleep(drain)
			}
		})
		f.Run()
	}
}

// PIOBenchmarks is the transfer-pipeline host-cost suite (BENCH_pio.json).
// Payloads stay under the flow-network threshold so the numbers isolate the
// posted-write path: pooled capture, freelist event, delivery, recycle.
func PIOBenchmarks() []NamedBench {
	return []NamedBench{
		{
			Name: "write-stream-1k",
			Note: "remote WriteStream + delivery drain, 1 KiB",
			F: benchRemoteWrite(1024, func(m *sci.Mapping, p *sim.Proc, src []byte) {
				m.WriteStream(p, 0, src, 0)
			}),
		},
		{
			Name: "write-put-strided-1k",
			Note: "remote WritePut (64B accesses, 128B stride) + drain, 1 KiB",
			F: benchRemoteWrite(1024, func(m *sci.Mapping, p *sim.Proc, src []byte) {
				m.WritePut(p, 0, src, 64, 128)
			}),
		},
		{
			Name: "write-word",
			Note: "remote WriteWord + delivery drain, 8 B",
			F: benchRemoteWrite(8, func(m *sci.Mapping, p *sim.Proc, src []byte) {
				m.WriteWord(p, 0, src)
			}),
		},
	}
}

// BenchResult is one benchmark's measurement as serialized to the JSON
// artifacts.
type BenchResult struct {
	Name        string  `json:"name"`
	Note        string  `json:"note,omitempty"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"alloc_bytes_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// RunHotpathSuite executes every benchmark of a suite via testing.Benchmark.
func RunHotpathSuite(suite []NamedBench) []BenchResult {
	results := make([]BenchResult, 0, len(suite))
	for _, nb := range suite {
		r := testing.Benchmark(nb.F)
		res := BenchResult{
			Name:        nb.Name,
			Note:        nb.Note,
			Runs:        r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if r.Bytes > 0 && r.T > 0 {
			res.MBPerS = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		results = append(results, res)
	}
	return results
}

// benchFile is the envelope of a BENCH_*.json artifact.
type benchFile struct {
	Suite   string        `json:"suite"`
	Go      string        `json:"go"`
	GOOS    string        `json:"goos"`
	GOARCH  string        `json:"goarch"`
	Results []BenchResult `json:"results"`
}

// WriteBenchJSON writes one suite's results as an indented JSON artifact.
func WriteBenchJSON(path, suite string, results []BenchResult) error {
	data, err := json.MarshalIndent(benchFile{
		Suite:   suite,
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Results: results,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatHotpath renders a suite's results as an aligned text table.
func FormatHotpath(suite string, results []BenchResult) string {
	out := fmt.Sprintf("%s:\n", suite)
	for _, r := range results {
		out += fmt.Sprintf("  %-28s %12.0f ns/op %6d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.MBPerS > 0 {
			out += fmt.Sprintf(" %9.1f MB/s", r.MBPerS)
		}
		out += "\n"
	}
	return out
}
