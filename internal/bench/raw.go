package bench

import (
	"time"

	"scimpich/internal/memmodel"
	"scimpich/internal/sci"
	"scimpich/internal/sim"
)

// RawResult is one row of the Figure 1 reproduction: raw SCI communication
// performance for one transfer size.
type RawResult struct {
	Size int64
	// Latencies (one transfer, data visible at the target).
	PIOWriteLatency time.Duration
	PIOReadLatency  time.Duration
	DMALatency      time.Duration
	// Bandwidths (back-to-back transfers), MiB/s.
	PIOWriteBW float64
	PIOReadBW  float64
	DMABW      float64
	// ShmCopyBW is the intra-node copy bandwidth reference.
	ShmCopyBW float64
}

// RunRaw reproduces Figure 1: latency and bandwidth of PIO and DMA
// transfers between two nodes, over the given transfer sizes.
func RunRaw(sizes []int64) []RawResult {
	results := make([]RawResult, 0, len(sizes))
	for _, size := range sizes {
		results = append(results, runRawSize(size))
	}
	return results
}

func runRawSize(size int64) RawResult {
	f := sim.NewLocalFabric(1, time.Microsecond)
	e := f.Locale(0)
	ic := sci.New(e, instrumentSCI(sci.DefaultConfig(2)))
	seg := ic.Node(1).Export(size)
	src := make([]byte, size)
	dst := make([]byte, size)
	res := RawResult{Size: size}
	const reps = 8

	e.Go("bench", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())

		// PIO write latency: post plus store barrier (data has arrived).
		start := p.Now()
		m.WriteStream(p, 0, src, size)
		ic.Node(0).StoreBarrier(p)
		res.PIOWriteLatency = p.Now() - start

		// PIO write bandwidth: back-to-back streams, one final barrier.
		start = p.Now()
		for i := 0; i < reps; i++ {
			m.WriteStream(p, 0, src, size)
		}
		ic.Node(0).StoreBarrier(p)
		res.PIOWriteBW = BWMiB(size*reps, p.Now()-start)

		// PIO read.
		start = p.Now()
		m.Read(p, 0, dst)
		res.PIOReadLatency = p.Now() - start
		start = p.Now()
		for i := 0; i < reps; i++ {
			m.Read(p, 0, dst)
		}
		res.PIOReadBW = BWMiB(size*reps, p.Now()-start)

		// DMA.
		start = p.Now()
		p.Await(m.DMAWrite(p, 0, src))
		res.DMALatency = p.Now() - start
		start = p.Now()
		futs := make([]*sim.Future, reps)
		for i := 0; i < reps; i++ {
			futs[i] = m.DMAWrite(p, 0, src)
		}
		p.AwaitAll(futs...)
		res.DMABW = BWMiB(size*reps, p.Now()-start)
	})
	f.Run()

	mem := memmodel.PentiumIII800()
	res.ShmCopyBW = mem.CopyBW(size) / MiB
	return res
}

// RawFigure formats the bandwidth part of Figure 1.
func RawFigure(results []RawResult) *Figure {
	f := &Figure{
		Title:  "Figure 1 (bottom): raw SCI bandwidth",
		XLabel: "size",
		YLabel: "MiB/s",
	}
	pw := Series{Label: "PIO-write"}
	pr := Series{Label: "PIO-read"}
	dm := Series{Label: "DMA"}
	for _, r := range results {
		f.X = append(f.X, float64(r.Size))
		pw.Values = append(pw.Values, r.PIOWriteBW)
		pr.Values = append(pr.Values, r.PIOReadBW)
		dm.Values = append(dm.Values, r.DMABW)
	}
	f.Series = []Series{pw, pr, dm}
	return f
}

// RawLatencyFigure formats the latency part of Figure 1 (µs).
func RawLatencyFigure(results []RawResult) *Figure {
	f := &Figure{
		Title:  "Figure 1 (top): raw SCI small-data latency",
		XLabel: "size",
		YLabel: "microseconds",
	}
	pw := Series{Label: "PIO-write"}
	pr := Series{Label: "PIO-read"}
	dm := Series{Label: "DMA"}
	for _, r := range results {
		f.X = append(f.X, float64(r.Size))
		pw.Values = append(pw.Values, r.PIOWriteLatency.Seconds()*1e6)
		pr.Values = append(pr.Values, r.PIOReadLatency.Seconds()*1e6)
		dm.Values = append(dm.Values, r.DMALatency.Seconds()*1e6)
	}
	f.Series = []Series{pw, pr, dm}
	return f
}
