package bench

import (
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
	"scimpich/internal/osc"
	"scimpich/internal/platform"
)

// The sparse micro-benchmark (paper figure 8): fine-grained strided
// one-sided accesses as they occur in sparse matrix codes. With a fixed
// access size and a stride of twice that size, each process iterates
// through its partner's part of the global window with MPI_Put or MPI_Get;
// all processes synchronize with MPI_Win_fence after posting all calls.

// SparseWinSize is the window size of the benchmark.
const SparseWinSize int64 = 256 << 10

// SparseResult is one access-size row of Figure 9.
type SparseResult struct {
	AccessSize int64
	// Per-call latency (µs) and aggregate bandwidth (MiB/s), for put/get
	// on windows in shared SCI memory and in private memory.
	PutSharedLat, PutSharedBW   float64
	GetSharedLat, GetSharedBW   float64
	PutPrivateLat, PutPrivateBW float64
	GetPrivateLat, GetPrivateBW float64
}

// RunSparse reproduces Figure 9 (two processes on distinct nodes).
func RunSparse(accessSizes []int64) []SparseResult {
	out := make([]SparseResult, len(accessSizes))
	for i, a := range accessSizes {
		out[i].AccessSize = a
		out[i].PutSharedLat, out[i].PutSharedBW = sparseRun(a, true, true)
		out[i].GetSharedLat, out[i].GetSharedBW = sparseRun(a, false, true)
		out[i].PutPrivateLat, out[i].PutPrivateBW = sparseRun(a, true, false)
		out[i].GetPrivateLat, out[i].GetPrivateBW = sparseRun(a, false, false)
	}
	return out
}

// sparseRun executes the figure 8 pseudo-code for one access size and
// returns (per-call latency in µs, bandwidth in MiB/s).
func sparseRun(accessSize int64, put, shared bool) (float64, float64) {
	var elapsed time.Duration
	var calls int64
	var moved int64
	mpi.Run(instrument(mpi.DefaultConfig(2, 1)), func(c *mpi.Comm) {
		s := osc.NewSystem(c)
		var w *osc.Win
		if shared {
			w = s.CreateShared(c.AllocShared(SparseWinSize), osc.DefaultConfig())
		} else {
			w = s.CreatePrivate(make([]byte, SparseWinSize), osc.DefaultConfig())
		}
		partner := 1 - c.Rank()
		buf := make([]byte, accessSize)
		stride := 2 * accessSize
		w.Fence()
		start := c.WtimeDuration()
		var n, bytes int64
		for off := int64(0); off+accessSize < SparseWinSize; off += stride {
			if put {
				w.Put(buf, int(accessSize), datatype.Byte, partner, off)
			} else {
				w.Get(buf, int(accessSize), datatype.Byte, partner, off)
			}
			n++
			bytes += accessSize
		}
		w.Fence()
		if c.Rank() == 0 {
			elapsed = c.WtimeDuration() - start
			calls = n
			moved = bytes
		}
	})
	if calls == 0 {
		return 0, 0
	}
	latUS := elapsed.Seconds() * 1e6 / float64(calls)
	return latUS, BWMiB(moved, elapsed)
}

// SparseLatencyFigure formats the latency half of Figure 9.
func SparseLatencyFigure(results []SparseResult) *Figure {
	f := &Figure{
		Title:  "Figure 9 (top): sparse one-sided latency (µs per call)",
		XLabel: "access",
		YLabel: "µs",
	}
	s := []Series{
		{Label: "put-shared"}, {Label: "get-shared"},
		{Label: "put-private"}, {Label: "get-private"},
	}
	for _, r := range results {
		f.X = append(f.X, float64(r.AccessSize))
		s[0].Values = append(s[0].Values, r.PutSharedLat)
		s[1].Values = append(s[1].Values, r.GetSharedLat)
		s[2].Values = append(s[2].Values, r.PutPrivateLat)
		s[3].Values = append(s[3].Values, r.GetPrivateLat)
	}
	f.Series = s
	return f
}

// SparseBandwidthFigure formats the bandwidth half of Figure 9.
func SparseBandwidthFigure(results []SparseResult) *Figure {
	f := &Figure{
		Title:  "Figure 9 (bottom): sparse one-sided bandwidth (MiB/s)",
		XLabel: "access",
		YLabel: "MiB/s",
	}
	s := []Series{
		{Label: "put-shared"}, {Label: "get-shared"},
		{Label: "put-private"}, {Label: "get-private"},
	}
	for _, r := range results {
		f.X = append(f.X, float64(r.AccessSize))
		s[0].Values = append(s[0].Values, r.PutSharedBW)
		s[1].Values = append(s[1].Values, r.GetSharedBW)
		s[2].Values = append(s[2].Values, r.PutPrivateBW)
		s[3].Values = append(s[3].Values, r.GetPrivateBW)
	}
	f.Series = s
	return f
}

// PlatformSparseResult is one platform's sparse curve (Figure 11).
type PlatformSparseResult struct {
	ID  string
	Lat []float64 // µs per call
	BW  []float64 // MiB/s
}

// RunPlatformSparse reproduces Figure 11: the sparse benchmark on every
// configuration that supports one-sided communication, plus the VIA
// reference of [15]. SCI-MPICH rows run on the real stack.
func RunPlatformSparse(accessSizes []int64) []PlatformSparseResult {
	var out []PlatformSparseResult
	for _, pl := range platform.All() {
		if !pl.OneSided {
			continue
		}
		r := PlatformSparseResult{ID: pl.ID}
		for _, a := range accessSizes {
			lat, bw := pl.Sparse(a)
			r.Lat = append(r.Lat, lat.Seconds()*1e6)
			r.BW = append(r.BW, bw/MiB)
		}
		out = append(out, r)
	}
	// SCI-MPICH: SCI remote shared memory (M-S) and intra-node (M-s).
	ms := PlatformSparseResult{ID: "M-S"}
	mshm := PlatformSparseResult{ID: "M-s"}
	for _, a := range accessSizes {
		lat, bw := sparseRun(a, true, true)
		ms.Lat = append(ms.Lat, lat)
		ms.BW = append(ms.BW, bw)
		lat, bw = sparseIntraRun(a)
		mshm.Lat = append(mshm.Lat, lat)
		mshm.BW = append(mshm.BW, bw)
	}
	out = append(out, ms, mshm)
	return out
}

// sparseIntraRun runs the put benchmark intra-node (two procs, one node).
func sparseIntraRun(accessSize int64) (float64, float64) {
	var elapsed time.Duration
	var calls, moved int64
	mpi.Run(instrument(mpi.DefaultConfig(1, 2)), func(c *mpi.Comm) {
		s := osc.NewSystem(c)
		w := s.CreateShared(c.AllocShared(SparseWinSize), osc.DefaultConfig())
		partner := 1 - c.Rank()
		buf := make([]byte, accessSize)
		stride := 2 * accessSize
		w.Fence()
		start := c.WtimeDuration()
		var n, bytes int64
		for off := int64(0); off+accessSize < SparseWinSize; off += stride {
			w.Put(buf, int(accessSize), datatype.Byte, partner, off)
			n++
			bytes += accessSize
		}
		w.Fence()
		if c.Rank() == 0 {
			elapsed = c.WtimeDuration() - start
			calls, moved = n, bytes
		}
	})
	if calls == 0 {
		return 0, 0
	}
	return elapsed.Seconds() * 1e6 / float64(calls), BWMiB(moved, elapsed)
}

// PlatformSparseFigure formats Figure 11 (bandwidth view).
func PlatformSparseFigure(accessSizes []int64, results []PlatformSparseResult) *Figure {
	f := &Figure{
		Title:  "Figure 11: one-sided sparse bandwidth across platforms (MiB/s)",
		XLabel: "access",
		YLabel: "MiB/s",
		X:      ToF(accessSizes),
	}
	for _, r := range results {
		f.Series = append(f.Series, Series{Label: r.ID, Values: r.BW})
	}
	return f
}

// PlatformSparseLatencyFigure formats Figure 11's latency view.
func PlatformSparseLatencyFigure(accessSizes []int64, results []PlatformSparseResult) *Figure {
	f := &Figure{
		Title:  "Figure 11: one-sided sparse latency across platforms (µs per call)",
		XLabel: "access",
		YLabel: "µs",
		X:      ToF(accessSizes),
	}
	for _, r := range results {
		f.Series = append(f.Series, Series{Label: r.ID, Values: r.Lat})
	}
	return f
}
