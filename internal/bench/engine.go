package bench

// The sharded-engine benchmark behind BENCH_engine.json: the §6-scale
// 512-node (8x8x8 torus) ring allreduce runs once on the sequential engine
// with one monolithic flow network — the oracle and the baseline — and once
// per shard count on the conservative-parallel ShardedEngine. The artifact
// gates the engine claims: every sharded run must reproduce the oracle's
// final virtual time, checksum and flight-dump hash exactly (byte-identical
// schedule per seed), and the widest configuration must finish the run at
// least twice as fast in wall-clock terms. The speedup is partly algorithmic
// — each shard's network settles and scans only its own flows instead of
// all 512 — so the bound holds even on a single-CPU runner; the envelope
// records ncpu so readers can judge how much true parallelism contributed.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"time"

	"scimpich/internal/obs"
	"scimpich/internal/scale"
)

// EngineResult is one engine/shard-count row of the sharded-engine suite.
type EngineResult struct {
	Engine  string `json:"engine"` // "sequential" or "sharded"
	Shards  int    `json:"shards"`
	Nodes   int    `json:"nodes"`
	Steps   int    `json:"steps"`
	Events  uint64 `json:"events"`
	Windows uint64 `json:"windows"`

	VirtualNS    int64   `json:"virtual_ns"`
	WallNS       int64   `json:"wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup"` // baseline wall / this wall

	Checksum string `json:"checksum"` // reduced-vector wrapping sum, hex
	DumpFNV  string `json:"dump_fnv"` // FNV-1a of the merged flight dump

	// Gates: schedule determinism on every sharded row, the wall-clock
	// bound on the widest one.
	GateDeterministic bool `json:"gate_deterministic,omitempty"`
	GateSpeedup2x     bool `json:"gate_speedup_2x,omitempty"`
}

// EngineDims and EngineShardCounts pin the benchmark scenario.
var (
	EngineDims        = [3]int{8, 8, 8}
	EngineShardCounts = []int{2, 4, 8}
)

func engineRow(cfg scale.Config, sharded bool) (EngineResult, error) {
	cfg.Registry = obs.NewRegistry()
	var m *scale.Machine
	engine := "sequential"
	if sharded {
		m = scale.NewSharded(cfg)
		engine = "sharded"
	} else {
		m = scale.NewSequential(cfg)
	}
	start := time.Now()
	res, err := m.Run()
	wall := time.Since(start)
	if err != nil {
		return EngineResult{}, err
	}
	h := fnv.New64a()
	h.Write(m.FlightDump())
	r := EngineResult{
		Engine: engine, Shards: res.Shards, Nodes: res.Nodes, Steps: res.Steps,
		Events: res.Events, Windows: res.Windows,
		VirtualNS: int64(res.End), WallNS: int64(wall),
		Checksum: fmt.Sprintf("%016x", res.Checksum),
		DumpFNV:  fmt.Sprintf("%016x", h.Sum64()),
	}
	if wall > 0 {
		r.EventsPerSec = float64(res.Events) / wall.Seconds()
	}
	return r, nil
}

// RunEngineBench executes the pinned 512-node scenario and evaluates the
// determinism and speedup gates. ok reports whether every gate holds.
func RunEngineBench() ([]EngineResult, bool) {
	return RunEngineBenchAt(EngineDims[0], EngineDims[1], EngineDims[2], EngineShardCounts, true)
}

// RunEngineBenchAt runs the allreduce on a dx*dy*dz torus, sequentially and
// at each sharded configuration. Determinism against the sequential oracle
// is gated on every sharded row; the 2x wall-clock gate applies to the last
// (widest) shard count when gateSpeedup is set — small test machines can
// check determinism without pinning a timing claim.
func RunEngineBenchAt(dx, dy, dz int, shardCounts []int, gateSpeedup bool) ([]EngineResult, bool) {
	seq, err := engineRow(scale.DefaultConfig(dx, dy, dz, 1), false)
	if err != nil {
		return nil, false
	}
	seq.Speedup = 1
	rows := []EngineResult{seq}
	ok := true
	for i, shards := range shardCounts {
		r, err := engineRow(scale.DefaultConfig(dx, dy, dz, shards), true)
		if err != nil {
			return rows, false
		}
		if r.WallNS > 0 {
			r.Speedup = float64(seq.WallNS) / float64(r.WallNS)
		}
		r.GateDeterministic = r.VirtualNS == seq.VirtualNS &&
			r.Checksum == seq.Checksum && r.DumpFNV == seq.DumpFNV
		ok = ok && r.GateDeterministic
		if gateSpeedup && i == len(shardCounts)-1 {
			r.GateSpeedup2x = r.Speedup >= 2
			ok = ok && r.GateSpeedup2x
		}
		rows = append(rows, r)
	}
	return rows, ok
}

// RunEngine512 executes one 512-node allreduce on the sharded engine at
// the given shard count and returns its row (no baseline, no gates) — the
// measured §6 run behind cmd/scaling's torus report.
func RunEngine512(shards int) (EngineResult, error) {
	return engineRow(scale.DefaultConfig(EngineDims[0], EngineDims[1], EngineDims[2], shards), true)
}

// engineFile is the envelope of the BENCH_engine.json artifact.
type engineFile struct {
	Suite   string         `json:"suite"`
	Go      string         `json:"go"`
	GOOS    string         `json:"goos"`
	GOARCH  string         `json:"goarch"`
	NumCPU  int            `json:"ncpu"`
	Results []EngineResult `json:"results"`
}

// WriteEngineJSON writes the sharded-engine suite as an indented JSON
// artifact (the BENCH_engine.json determinism and speedup gate).
func WriteEngineJSON(path string, results []EngineResult) error {
	data, err := json.MarshalIndent(engineFile{
		Suite:   "engine",
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		NumCPU:  runtime.NumCPU(),
		Results: results,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatEngine renders the sharded-engine suite as an aligned text table.
func FormatEngine(results []EngineResult) string {
	out := fmt.Sprintf("engine (512-node ring allreduce, ncpu=%d):\n", runtime.NumCPU())
	out += fmt.Sprintf("  %-10s %6s %8s %8s %12s %10s %10s %8s  %s\n",
		"engine", "shards", "events", "windows", "virtual", "wall", "ev/s", "speedup", "gates")
	for _, r := range results {
		gates := "-"
		if r.Engine == "sharded" {
			gates = fmt.Sprintf("det=%v", r.GateDeterministic)
			if r.GateSpeedup2x || r.Shards == EngineShardCounts[len(EngineShardCounts)-1] {
				gates += fmt.Sprintf(" 2x=%v", r.GateSpeedup2x)
			}
		}
		out += fmt.Sprintf("  %-10s %6d %8d %8d %12v %10v %10.0f %7.2fx  %s\n",
			r.Engine, r.Shards, r.Events, r.Windows,
			time.Duration(r.VirtualNS), time.Duration(r.WallNS).Round(time.Millisecond),
			r.EventsPerSec, r.Speedup, gates)
	}
	return out
}
