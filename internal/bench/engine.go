package bench

// The sharded-engine benchmark behind BENCH_engine.json. Two workloads run
// per engine/shard-count cell, both built through the public fabric-first
// constructors in internal/mpi:
//
//   - "torus-allreduce": the §6-scale 512-node (8x8x8 torus) chunked ring
//     allreduce (mpi.TorusWorld), once on the sequential oracle with one
//     monolithic flow network — the baseline — and once per shard count on
//     the conservative-parallel ShardedEngine. Every sharded run must
//     reproduce the oracle's final virtual time, checksum and flight-dump
//     hash exactly (byte-identical schedule per seed), and the widest
//     configuration must finish at least twice as fast in wall-clock
//     terms. The speedup is partly algorithmic — each shard's network
//     settles and scans only its own flows instead of all 512 — so the
//     bound holds even on a single-CPU runner; the envelope records ncpu
//     so readers can judge how much true parallelism contributed.
//
//   - "mpi-allreduce": the full MPI protocol stack (short/eager/rendezvous
//     device, forced ring Allreduce) as a confined world hosted on one
//     locale of the same engines, via mpi.NewFabric + mpi.RunOn. These
//     rows gate that the whole stack — not just the torus projection —
//     is schedule-deterministic on the sharded engine: virtual time,
//     reduction checksum and flight-dump hash must match the sequential
//     oracle at every shard count. No wall-clock claim is made (a
//     confined world occupies a single shard, so sharding adds window
//     overhead rather than parallelism).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
	"scimpich/internal/obs"
	"scimpich/internal/obs/flight"
	"scimpich/internal/sim"
)

// EngineResult is one workload/engine/shard-count row of the sharded-engine
// suite.
type EngineResult struct {
	Workload string `json:"workload"` // "torus-allreduce" or "mpi-allreduce"
	Engine   string `json:"engine"`   // "sequential" or "sharded"
	Shards   int    `json:"shards"`
	Nodes    int    `json:"nodes"`
	Steps    int    `json:"steps"`
	Events   uint64 `json:"events"`
	Windows  uint64 `json:"windows"`

	VirtualNS    int64   `json:"virtual_ns"`
	WallNS       int64   `json:"wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup"` // baseline wall / this wall

	Checksum string `json:"checksum"` // reduced-vector wrapping sum, hex
	DumpFNV  string `json:"dump_fnv"` // FNV-1a of the merged flight dump

	// Gates: schedule determinism on every sharded row, the wall-clock
	// bound on the widest torus row.
	GateDeterministic bool `json:"gate_deterministic,omitempty"`
	GateSpeedup2x     bool `json:"gate_speedup_2x,omitempty"`
}

// EngineDims and EngineShardCounts pin the benchmark scenario.
var (
	EngineDims        = [3]int{8, 8, 8}
	EngineShardCounts = []int{2, 4, 8}
)

// MPIStackRanks and MPIStackElems pin the full-stack workload: ranks
// int64 elements reduced with the forced ring algorithm, large enough that
// every block moves through the rendezvous protocol.
const (
	MPIStackRanks = 8
	MPIStackElems = 32 << 10 // 256 KiB vectors
	mpiStackIters = 2
)

func engineRow(cfg mpi.TorusConfig, sharded bool) (EngineResult, error) {
	cfg.Registry = obs.NewRegistry()
	var m *mpi.TorusWorld
	engine := "sequential"
	if sharded {
		m = mpi.NewTorusWorldOn(mpi.NewTorusFabric(cfg), cfg)
		engine = "sharded"
	} else {
		m = mpi.NewTorusWorldOn(mpi.NewTorusOracle(cfg), cfg)
	}
	start := time.Now()
	res, err := m.Run()
	wall := time.Since(start)
	if err != nil {
		return EngineResult{}, err
	}
	h := fnv.New64a()
	h.Write(m.FlightDump())
	r := EngineResult{
		Workload: "torus-allreduce",
		Engine:   engine, Shards: res.Shards, Nodes: res.Nodes, Steps: res.Steps,
		Events: res.Events, Windows: res.Windows,
		VirtualNS: int64(res.End), WallNS: int64(wall),
		Checksum: fmt.Sprintf("%016x", res.Checksum),
		DumpFNV:  fmt.Sprintf("%016x", h.Sum64()),
	}
	if wall > 0 {
		r.EventsPerSec = float64(res.Events) / wall.Seconds()
	}
	return r, nil
}

// mpiStackRow runs the full-stack workload: MPIStackRanks ranks on one
// SMP node each, forced ring Allreduce over MPIStackElems int64 elements,
// the whole world confined to one locale of the fabric Run would build
// for cfg.Shards.
func mpiStackRow(shards int) EngineResult {
	cfg := mpi.DefaultConfig(MPIStackRanks, 1)
	cfg.Shards = shards
	cfg.Protocol.Coll = mpi.CollRing
	rec := flight.New(256)
	cfg.Flight = rec
	f := mpi.NewFabric(cfg)

	sums := make([]uint64, MPIStackRanks)
	main := func(c *mpi.Comm) {
		me := c.Rank()
		send := make([]byte, MPIStackElems*8)
		recv := make([]byte, MPIStackElems*8)
		// splitmix64-seeded per-rank vector, identical on every engine.
		x := uint64(me)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
		for i := 0; i < MPIStackElems; i++ {
			x += 0x9e3779b97f4a7c15
			z := x
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			putU64(send[i*8:], z)
		}
		for it := 0; it < mpiStackIters; it++ {
			c.Allreduce(send, recv, MPIStackElems, datatype.Int64, mpi.OpSum)
			copy(send, recv)
		}
		var sum uint64
		for i := 0; i < MPIStackElems; i++ {
			sum += getU64(recv[i*8:])*0x100000001b3 + uint64(i)
		}
		sums[me] = sum
	}

	start := time.Now()
	end := mpi.RunOn(f, cfg, main)
	wall := time.Since(start)

	var checksum uint64
	for r, s := range sums {
		checksum += s * (uint64(r)*2 + 1)
	}
	var buf bytes.Buffer
	if d := rec.Snapshot("bench"); d != nil {
		d.WriteJSON(&buf)
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())

	engine := "sequential"
	var windows uint64
	if se, ok := f.(*sim.ShardedEngine); ok {
		engine = "sharded"
		windows = se.Windows()
	}
	r := EngineResult{
		Workload: "mpi-allreduce",
		Engine:   engine, Shards: shards, Nodes: MPIStackRanks,
		Steps:  mpiStackIters * 2 * (MPIStackRanks - 1),
		Events: f.Events(), Windows: windows,
		VirtualNS: int64(end), WallNS: int64(wall),
		Checksum: fmt.Sprintf("%016x", checksum),
		DumpFNV:  fmt.Sprintf("%016x", h.Sum64()),
	}
	if wall > 0 {
		r.EventsPerSec = float64(r.Events) / wall.Seconds()
	}
	return r
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// RunEngineBench executes the pinned 512-node torus scenario plus the
// full-stack MPI rows and evaluates the determinism and speedup gates. ok
// reports whether every gate holds.
func RunEngineBench() ([]EngineResult, bool) {
	return RunEngineBenchAt(EngineDims[0], EngineDims[1], EngineDims[2], EngineShardCounts, true)
}

// RunEngineBenchAt runs the torus allreduce on a dx*dy*dz torus,
// sequentially and at each sharded configuration, then the full-stack MPI
// allreduce across the same shard counts. Determinism against the
// respective sequential oracle is gated on every sharded row; the 2x
// wall-clock gate applies to the last (widest) torus shard count when
// gateSpeedup is set — small test machines can check determinism without
// pinning a timing claim.
func RunEngineBenchAt(dx, dy, dz int, shardCounts []int, gateSpeedup bool) ([]EngineResult, bool) {
	seq, err := engineRow(mpi.DefaultTorusConfig(dx, dy, dz, 1), false)
	if err != nil {
		return nil, false
	}
	seq.Speedup = 1
	rows := []EngineResult{seq}
	ok := true
	for i, shards := range shardCounts {
		r, err := engineRow(mpi.DefaultTorusConfig(dx, dy, dz, shards), true)
		if err != nil {
			return rows, false
		}
		if r.WallNS > 0 {
			r.Speedup = float64(seq.WallNS) / float64(r.WallNS)
		}
		r.GateDeterministic = r.VirtualNS == seq.VirtualNS &&
			r.Checksum == seq.Checksum && r.DumpFNV == seq.DumpFNV
		ok = ok && r.GateDeterministic
		if gateSpeedup && i == len(shardCounts)-1 {
			r.GateSpeedup2x = r.Speedup >= 2
			ok = ok && r.GateSpeedup2x
		}
		rows = append(rows, r)
	}
	mpiSeq := mpiStackRow(1)
	mpiSeq.Speedup = 1
	rows = append(rows, mpiSeq)
	for _, shards := range shardCounts {
		r := mpiStackRow(shards)
		if r.WallNS > 0 {
			r.Speedup = float64(mpiSeq.WallNS) / float64(r.WallNS)
		}
		r.GateDeterministic = r.VirtualNS == mpiSeq.VirtualNS &&
			r.Checksum == mpiSeq.Checksum && r.DumpFNV == mpiSeq.DumpFNV
		ok = ok && r.GateDeterministic
		rows = append(rows, r)
	}
	return rows, ok
}

// RunEngine512 executes one 512-node torus allreduce on the sharded engine
// at the given shard count and returns its row (no baseline, no gates) —
// the measured §6 run behind cmd/scaling's torus report.
func RunEngine512(shards int) (EngineResult, error) {
	return engineRow(mpi.DefaultTorusConfig(EngineDims[0], EngineDims[1], EngineDims[2], shards), true)
}

// engineFile is the envelope of the BENCH_engine.json artifact.
type engineFile struct {
	Suite   string         `json:"suite"`
	Go      string         `json:"go"`
	GOOS    string         `json:"goos"`
	GOARCH  string         `json:"goarch"`
	NumCPU  int            `json:"ncpu"`
	Results []EngineResult `json:"results"`
}

// WriteEngineJSON writes the sharded-engine suite as an indented JSON
// artifact (the BENCH_engine.json determinism and speedup gate).
func WriteEngineJSON(path string, results []EngineResult) error {
	data, err := json.MarshalIndent(engineFile{
		Suite:   "engine",
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		NumCPU:  runtime.NumCPU(),
		Results: results,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatEngine renders the sharded-engine suite as an aligned text table.
func FormatEngine(results []EngineResult) string {
	out := fmt.Sprintf("engine (512-node torus + full-stack MPI ring allreduce, ncpu=%d):\n", runtime.NumCPU())
	out += fmt.Sprintf("  %-15s %-10s %6s %8s %8s %12s %10s %10s %8s  %s\n",
		"workload", "engine", "shards", "events", "windows", "virtual", "wall", "ev/s", "speedup", "gates")
	for _, r := range results {
		gates := "-"
		if r.Engine == "sharded" {
			gates = fmt.Sprintf("det=%v", r.GateDeterministic)
			if r.Workload == "torus-allreduce" &&
				(r.GateSpeedup2x || r.Shards == EngineShardCounts[len(EngineShardCounts)-1]) {
				gates += fmt.Sprintf(" 2x=%v", r.GateSpeedup2x)
			}
		}
		out += fmt.Sprintf("  %-15s %-10s %6d %8d %8d %12v %10v %10.0f %7.2fx  %s\n",
			r.Workload, r.Engine, r.Shards, r.Events, r.Windows,
			time.Duration(r.VirtualNS), time.Duration(r.WallNS).Round(time.Millisecond),
			r.EventsPerSec, r.Speedup, gates)
	}
	return out
}
