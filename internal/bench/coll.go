package bench

// The collective algorithm-selection benchmark behind BENCH_coll.json:
// bcast / allreduce / allgather / alltoall swept across payload sizes and
// cluster sizes with each algorithm family forced in turn (point-to-point
// tree/ring, recursive doubling, the bandwidth-optimal ring, one-sided
// window deposits), plus the adaptive chooser. The artifact is the
// regression gate for two claims: the chooser tracks the measured-best
// algorithm per size class, and one-sided deposits beat the P2P algorithms
// for large contiguous payloads. Forced rows pin Protocol.Coll exactly as
// the figure-7 drivers pin PathStatic, so the published figures never
// depend on the chooser.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
	"scimpich/internal/obs"
)

// CollResult is one (collective, nodes, size) row of the selection matrix.
// Forced-algorithm bandwidths are MiB/s of collective payload (total bytes
// a rank contributes or receives per operation); zero marks an algorithm
// family that does not implement the collective.
type CollResult struct {
	Coll  string `json:"coll"`
	Nodes int    `json:"nodes"`
	Bytes int64  `json:"bytes"`

	P2P      float64 `json:"p2p_mibs"`
	RecDbl   float64 `json:"recdbl_mibs,omitempty"`
	Ring     float64 `json:"ring_mibs,omitempty"`
	OneSided float64 `json:"onesided_mibs,omitempty"`

	// Adaptive chooser: achieved bandwidth and the algorithm it picked
	// (the majority of its per-call decisions).
	Adaptive float64 `json:"adaptive_mibs"`
	Chosen   string  `json:"chosen"`

	// Best is the measured-best forced algorithm among the chooser's
	// eligible candidates for this row.
	Best    float64 `json:"best_mibs"`
	BestAlg string  `json:"best_alg"`
}

// collCase describes one collective's sweep: the payload interpretation is
// per-operation total bytes (bcast/allreduce: the vector length;
// allgather/alltoall: per-peer block times peers).
type collCase struct {
	name  string
	algs  []mpi.CollAlg
	sizes []int64
}

// CollCases returns the default sweep of the suite.
func CollCases() []collCase {
	return []collCase{
		{"bcast", []mpi.CollAlg{mpi.CollP2P, mpi.CollOneSided},
			[]int64{4 << 10, 64 << 10, 256 << 10, 2 << 20}},
		{"allreduce", []mpi.CollAlg{mpi.CollP2P, mpi.CollRecDbl, mpi.CollRing, mpi.CollOneSided},
			[]int64{4 << 10, 64 << 10, 256 << 10, 2 << 20}},
		{"allgather", []mpi.CollAlg{mpi.CollP2P, mpi.CollOneSided},
			[]int64{4 << 10, 32 << 10, 128 << 10}},
		{"alltoall", []mpi.CollAlg{mpi.CollP2P, mpi.CollOneSided},
			[]int64{4 << 10, 32 << 10, 128 << 10}},
	}
}

// CollNodeCounts is the cluster-size axis of the sweep.
func CollNodeCounts() []int { return []int{4, 8} }

// RunCollBench executes the collective selection matrix.
func RunCollBench(nodes []int) []CollResult {
	var out []CollResult
	for _, cs := range CollCases() {
		for _, n := range nodes {
			for _, size := range cs.sizes {
				r := CollResult{Coll: cs.name, Nodes: n, Bytes: size}
				for _, alg := range cs.algs {
					if !collForcedEligible(cs.name, alg, n, size) {
						continue
					}
					bw := collBW(cs.name, n, size, alg, nil)
					switch alg {
					case mpi.CollP2P:
						r.P2P = bw
					case mpi.CollRecDbl:
						r.RecDbl = bw
					case mpi.CollRing:
						r.Ring = bw
					case mpi.CollOneSided:
						r.OneSided = bw
					}
					if bw > r.Best {
						r.Best, r.BestAlg = bw, alg.String()
					}
				}
				reg := obs.NewRegistry()
				r.Adaptive = collBW(cs.name, n, size, mpi.CollAuto, reg)
				r.Chosen = dominantCollAlg(reg, cs.name)
				out = append(out, r)
			}
		}
	}
	return out
}

// collForcedEligible mirrors the engine's eligibility rules so forced rows
// measure the algorithm itself, never its fallback: one-sided allreduce
// needs the scattered block inside a window half, one-sided
// allgather/alltoall the per-peer block inside a slot.
func collForcedEligible(coll string, alg mpi.CollAlg, nodes int, size int64) bool {
	proto := mpi.DefaultProtocol()
	switch {
	case alg != mpi.CollOneSided:
		return true
	case coll == "allreduce":
		return size/int64(nodes) <= proto.CollSlot/2
	case coll == "allgather" || coll == "alltoall":
		return size/int64(nodes) <= proto.CollSlot
	}
	return true
}

// collBW measures one collective's payload bandwidth with the algorithm
// family pinned (or chosen adaptively when alg is CollAuto). A non-nil
// registry collects the run's metrics.
func collBW(coll string, nodes int, size int64, alg mpi.CollAlg, reg *obs.Registry) float64 {
	cfg := instrument(mpi.DefaultConfig(nodes, 1))
	cfg.Protocol.Coll = alg
	if reg != nil {
		cfg.Metrics = reg
	}
	const reps = 4
	blk := size / int64(nodes)
	var elapsed time.Duration
	mpi.Run(cfg, func(c *mpi.Comm) {
		buf := make([]byte, size)
		buf2 := make([]byte, size)
		c.Barrier()
		start := c.WtimeDuration()
		for i := 0; i < reps; i++ {
			switch coll {
			case "bcast":
				c.Bcast(buf, int(size), datatype.Byte, 0)
			case "allreduce":
				c.Allreduce(buf, buf2, int(size)/8, datatype.Float64, mpi.OpSum)
			case "allgather":
				c.Allgather(buf[:blk], int(blk), datatype.Byte, buf2)
			case "alltoall":
				c.Alltoall(buf, int(blk), datatype.Byte, buf2)
			}
		}
		c.Barrier()
		if c.Rank() == 0 {
			elapsed = c.WtimeDuration() - start
		}
	})
	return BWMiB(size*reps, elapsed)
}

// dominantCollAlg returns the algorithm the adaptive chooser picked for
// the majority of one collective's calls, from its mpi.coll.alg.chosen
// counters.
func dominantCollAlg(reg *obs.Registry, coll string) string {
	best, bestN := "none", int64(0)
	for _, a := range []string{"p2p", "recdbl", "ring", "onesided"} {
		if n := reg.Counter(obs.Name("mpi.coll.alg.chosen", "coll", coll, "alg", a)).Value(); n > bestN {
			best, bestN = a, n
		}
	}
	return best
}

// collFile is the envelope of the BENCH_coll.json artifact.
type collFile struct {
	Suite   string       `json:"suite"`
	Go      string       `json:"go"`
	GOOS    string       `json:"goos"`
	GOARCH  string       `json:"goarch"`
	Results []CollResult `json:"results"`
}

// WriteCollJSON writes the collective selection matrix as an indented JSON
// artifact (the BENCH_coll.json regression gate).
func WriteCollJSON(path string, results []CollResult) error {
	data, err := json.MarshalIndent(collFile{
		Suite:   "coll",
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Results: results,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatColl renders the matrix as an aligned text table.
func FormatColl(results []CollResult) string {
	out := "coll (MiB/s):\n"
	out += fmt.Sprintf("  %-9s %5s %9s %9s %9s %9s %9s %9s  %-8s %-8s\n",
		"coll", "nodes", "bytes", "p2p", "recdbl", "ring", "onesided", "adaptive", "chosen", "best")
	for _, r := range results {
		out += fmt.Sprintf("  %-9s %5d %9d %9.1f %9.1f %9.1f %9.1f %9.1f  %-8s %-8s\n",
			r.Coll, r.Nodes, r.Bytes, r.P2P, r.RecDbl, r.Ring, r.OneSided, r.Adaptive, r.Chosen, r.BestAlg)
	}
	return out
}
