package bench

import (
	"sync"
	"testing"
)

// The claims BENCH_coll.json gates. The sweep is deterministic (virtual
// time), so these are exact regression gates, not flaky thresholds.

var collOnce = struct {
	sync.Once
	rows []CollResult
}{}

func collRows() []CollResult {
	collOnce.Do(func() { collOnce.rows = RunCollBench(CollNodeCounts()) })
	return collOnce.rows
}

// forcedColumns returns the forced-algorithm measurements of a row keyed
// by algorithm name.
func forcedColumns(r CollResult) map[string]float64 {
	m := map[string]float64{}
	for k, v := range map[string]float64{
		"p2p": r.P2P, "recdbl": r.RecDbl, "ring": r.Ring, "onesided": r.OneSided,
	} {
		if v > 0 {
			m[k] = v
		}
	}
	return m
}

// TestCollAdaptiveTracksBest: the chooser's achieved bandwidth stays
// within 15% of the measured-best forced algorithm on every row (the
// cost-model priors are imperfect for cold (kind, alg) pairs; EWMA
// feedback only narrows the gap once an algorithm has been tried).
func TestCollAdaptiveTracksBest(t *testing.T) {
	for _, r := range collRows() {
		if r.Best <= 0 {
			t.Fatalf("%s n=%d bytes=%d: no forced measurement", r.Coll, r.Nodes, r.Bytes)
		}
		if r.Adaptive < 0.85*r.Best {
			t.Errorf("%s n=%d bytes=%d: adaptive %.1f MiB/s below 85%% of best %.1f (%s)",
				r.Coll, r.Nodes, r.Bytes, r.Adaptive, r.Best, r.BestAlg)
		}
	}
}

// TestCollChooserMatchesClearWinners: whenever the measured-best forced
// algorithm beats the runner-up by more than 20%, the chooser must have
// picked it. (Closer calls are left to the priors: a sub-20%% miss costs
// less than the margin the adaptive gate above already bounds.)
func TestCollChooserMatchesClearWinners(t *testing.T) {
	gated := 0
	for _, r := range collRows() {
		cols := forcedColumns(r)
		second := 0.0
		for alg, bw := range cols {
			if alg != r.BestAlg && bw > second {
				second = bw
			}
		}
		if second == 0 || r.Best <= 1.2*second {
			continue // no clear winner; either pick is defensible
		}
		gated++
		if r.Chosen != r.BestAlg {
			t.Errorf("%s n=%d bytes=%d: chooser picked %s, but %s is best by >20%% (%.1f vs %.1f)",
				r.Coll, r.Nodes, r.Bytes, r.Chosen, r.BestAlg, r.Best, second)
		}
	}
	if gated == 0 {
		t.Fatal("no row has a clear winner; the gate is vacuous")
	}
}

// TestCollOneSidedBcastWinsLarge: the chunk-pipelined one-sided tree beats
// the store-and-forward P2P binomial tree by >10% for large contiguous
// broadcasts, at every cluster size.
func TestCollOneSidedBcastWinsLarge(t *testing.T) {
	hit := 0
	for _, r := range collRows() {
		if r.Coll != "bcast" || r.Bytes < 2<<20 {
			continue
		}
		hit++
		if r.OneSided <= 1.1*r.P2P {
			t.Errorf("bcast n=%d bytes=%d: one-sided %.1f MiB/s does not beat p2p %.1f by >10%%",
				r.Nodes, r.Bytes, r.OneSided, r.P2P)
		}
	}
	if hit == 0 {
		t.Fatal("sweep has no large bcast rows")
	}
}

// TestCollOneSidedExchangeWinsSmallBlocks: for latency-bound small
// per-peer blocks, the one-sided window exchange (one deposit and two
// control packets per block) beats the P2P ring/pairwise algorithms in
// allgather and alltoall.
func TestCollOneSidedExchangeWinsSmallBlocks(t *testing.T) {
	hit := 0
	for _, r := range collRows() {
		if (r.Coll != "allgather" && r.Coll != "alltoall") || r.Bytes > 4<<10 {
			continue
		}
		hit++
		if r.OneSided <= r.P2P {
			t.Errorf("%s n=%d bytes=%d: one-sided %.1f MiB/s does not beat p2p %.1f",
				r.Coll, r.Nodes, r.Bytes, r.OneSided, r.P2P)
		}
	}
	if hit == 0 {
		t.Fatal("sweep has no small allgather/alltoall rows")
	}
}

// TestCollRingAllreduceWinsLarge: the bandwidth-optimal ring beats both
// the naive reduce+bcast composition and recursive doubling for large
// vectors (the reason the engine exists).
func TestCollRingAllreduceWinsLarge(t *testing.T) {
	hit := 0
	for _, r := range collRows() {
		if r.Coll != "allreduce" || r.Bytes < 256<<10 {
			continue
		}
		hit++
		if r.Ring <= r.P2P || r.Ring <= r.RecDbl {
			t.Errorf("allreduce n=%d bytes=%d: ring %.1f MiB/s not above p2p %.1f and recdbl %.1f",
				r.Nodes, r.Bytes, r.Ring, r.P2P, r.RecDbl)
		}
	}
	if hit == 0 {
		t.Fatal("sweep has no large allreduce rows")
	}
}
