package bench

import (
	"time"

	"scimpich/internal/flow"
	"scimpich/internal/ring"
	"scimpich/internal/sci"
	"scimpich/internal/sim"
	"scimpich/internal/torus"
)

// The §6 scaling projection: "With the increased link frequency, a limit
// of 8 nodes per ringlet seems reasonable, which gives a 512 nodes system
// when using 3D-torus topology." The experiment loads an 8x8x8 torus with
// the Table 2 average scenario (each node one sustained put at ring
// distance 4 within its x-line) and compares the per-node bandwidth with
// the same workload on a single 8-node ringlet and — as the cautionary
// contrast — on one giant 512-node ring.

// TorusRow is one topology's outcome.
type TorusRow struct {
	Topology string
	Nodes    int
	PerNode  float64 // MiB/s
}

// RunTorusProjection runs the three scenarios at the given link frequency
// (the paper's projection assumes the 200 MHz links).
func RunTorusProjection(mhz float64) []TorusRow {
	return []TorusRow{
		{Topology: "8-node ringlet", Nodes: 8, PerNode: ringletScenario(mhz)},
		{Topology: "8x8x8 3D torus", Nodes: 512, PerNode: torusScenario(mhz)},
		{Topology: "single 512-ring", Nodes: 512, PerNode: giantRingScenario(mhz)},
	}
}

const projBytes = 16 << 20

// ringletScenario: the familiar 8-node, distance-4 pattern.
func ringletScenario(mhz float64) float64 {
	perNode, _, _ := ringScenario(mhz, RingNodes, 1, false, 4)
	return perNode
}

// torusScenario: 512 nodes, each sending distance 4 within its own x-ring.
// Per-ring load matches the single-ringlet scenario exactly; the point is
// that it does so for every one of the 64 x-rings simultaneously.
func torusScenario(mhz float64) float64 {
	f := sim.NewLocalFabric(1, time.Microsecond)
	e := f.Locale(0)
	net := flow.NewNetworkOn(e)
	net.SetMetrics(obsMetrics)
	cfg := sci.DefaultConfig(RingNodes)
	cfg.LinkMHz = mhz
	to := torus.New(8, 8, 8, ring.BandwidthForMHz(mhz), flow.SCIRingCongestion{})
	srcCap := cfg.SustainedPutBW

	var paths [][]flow.Hop
	for z := 0; z < 8; z++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				a := to.NodeID(x, y, z)
				b := to.NodeID((x+4)%8, y, z)
				var hops []flow.Hop
				for _, l := range to.Route(a, b) {
					hops = append(hops, flow.Hop{Link: l, Weight: 1})
				}
				// Flow-control echo on the return path of the x-ring.
				for _, l := range to.Route(b, a) {
					hops = append(hops, flow.Hop{Link: l, Weight: cfg.EchoFraction})
				}
				paths = append(paths, hops)
			}
		}
	}
	return runFlows(f, net, paths, srcCap, 512)
}

// giantRingScenario: 512 nodes on ONE ring, each sending distance 256 —
// what scaling without the torus would look like.
func giantRingScenario(mhz float64) float64 {
	f := sim.NewLocalFabric(1, time.Microsecond)
	e := f.Locale(0)
	net := flow.NewNetworkOn(e)
	net.SetMetrics(obsMetrics)
	cfg := sci.DefaultConfig(RingNodes)
	cfg.LinkMHz = mhz
	r := ring.New(512, ring.BandwidthForMHz(mhz), flow.SCIRingCongestion{})
	srcCap := cfg.SustainedPutBW

	var paths [][]flow.Hop
	for n := 0; n < 512; n++ {
		dst := (n + 256) % 512
		var hops []flow.Hop
		for _, l := range r.Route(n, dst) {
			hops = append(hops, flow.Hop{Link: l, Weight: 1})
		}
		for _, l := range r.Route(dst, n) {
			hops = append(hops, flow.Hop{Link: l, Weight: cfg.EchoFraction})
		}
		paths = append(paths, hops)
	}
	return runFlows(f, net, paths, srcCap, 512)
}

// runFlows drives the scenario to completion and returns per-node MiB/s.
func runFlows(f sim.Fabric, net *flow.Network, paths [][]flow.Hop, srcCap float64, nodes int) float64 {
	e := f.Locale(0)
	var elapsed time.Duration
	e.Go("driver", func(p *sim.Proc) {
		start := p.Now()
		flows := net.StartBatch(paths, projBytes, srcCap)
		for _, f := range flows {
			p.Await(f.Done())
		}
		elapsed = p.Now() - start
	})
	f.Run()
	return BWMiB(int64(len(paths))*projBytes, elapsed) / float64(nodes)
}
