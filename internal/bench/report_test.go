package bench

import (
	"strings"
	"testing"
	"time"
)

func sampleFigure() *Figure {
	return &Figure{
		Title:  "sample",
		XLabel: "size",
		YLabel: "MiB/s",
		X:      []float64{8, 1024, 1 << 20},
		Series: []Series{
			{Label: "a", Values: []float64{1.5, 2.5, 3.5}},
			{Label: "b", Values: []float64{0, 20, 30}}, // 0 renders as "-"
		},
	}
}

func TestFigurePrint(t *testing.T) {
	var sb strings.Builder
	sampleFigure().Print(&sb)
	out := sb.String()
	for _, want := range []string{"# sample", "# y: MiB/s", "size", "1Ki", "1Mi", "1.50", "30.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("print output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, " - ") && !strings.Contains(out, "-\n") {
		t.Errorf("zero value not rendered as dash:\n%s", out)
	}
}

func TestFigureCSV(t *testing.T) {
	var sb strings.Builder
	sampleFigure().CSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want header + 3 rows", len(lines))
	}
	if lines[0] != "size,a,b" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "8,1.500,0.000") {
		t.Errorf("CSV row = %q", lines[1])
	}
}

func TestSizesSweep(t *testing.T) {
	got := Sizes(8, 64)
	want := []int64{8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("Sizes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sizes = %v, want %v", got, want)
		}
	}
	if len(Sizes(8, 7)) != 0 {
		t.Error("empty range produced sizes")
	}
}

func TestToF(t *testing.T) {
	f := ToF([]int64{1, 2})
	if len(f) != 2 || f[0] != 1 || f[1] != 2 {
		t.Errorf("ToF = %v", f)
	}
}

func TestBWMiB(t *testing.T) {
	if bw := BWMiB(1<<20, time.Second); bw != 1 {
		t.Errorf("1 MiB in 1s = %g MiB/s, want 1", bw)
	}
	if bw := BWMiB(100, 0); bw != 0 {
		t.Errorf("zero duration bandwidth = %g, want 0", bw)
	}
}

func TestFormatX(t *testing.T) {
	cases := map[float64]string{
		8:       "8",
		1024:    "1Ki",
		3 << 10: "3Ki",
		1 << 20: "1Mi",
		1.5:     "1.5",
		1 << 21: "2Mi",
		1025:    "1025",
	}
	for in, want := range cases {
		if got := formatX(in); got != want {
			t.Errorf("formatX(%g) = %q, want %q", in, got, want)
		}
	}
}
