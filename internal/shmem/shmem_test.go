package shmem

import (
	"bytes"
	"testing"
	"time"

	"scimpich/internal/sim"
)

func testBus() (*sim.Engine, *Bus) {
	e := sim.NewEngine()
	return e, NewBus(e, nil, "node0", DefaultConfig())
}

func fill(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*13 + 1)
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	e, b := testBus()
	r := b.Alloc(4096)
	src := fill(1024)
	e.Go("p", func(p *sim.Proc) {
		r.WriteStream(p, 100, src, 0)
		dst := make([]byte, 1024)
		r.Read(p, 100, dst)
		if !bytes.Equal(dst, src) {
			t.Error("round trip mismatch")
		}
	})
	e.Run()
}

func TestStridedRoundTrip(t *testing.T) {
	e, b := testBus()
	r := b.Alloc(4096)
	src := fill(256)
	e.Go("p", func(p *sim.Proc) {
		r.WriteStrided(p, 0, src, 32, 64)
		dst := make([]byte, 256)
		r.ReadStrided(p, 0, dst, 32, 64)
		if !bytes.Equal(dst, src) {
			t.Error("strided round trip mismatch")
		}
	})
	e.Run()
}

func TestCopySpeedDependsOnWorkingSet(t *testing.T) {
	e, b := testBus()
	r := b.Alloc(1 << 20)
	src := make([]byte, 4096)
	var small, big time.Duration
	e.Go("p", func(p *sim.Proc) {
		start := p.Now()
		r.WriteStream(p, 0, src, 8<<10)
		small = p.Now() - start
		start = p.Now()
		r.WriteStream(p, 0, src, 4<<20)
		big = p.Now() - start
	})
	e.Run()
	if big <= small {
		t.Errorf("DRAM-resident copy (%v) not slower than cache-resident (%v)", big, small)
	}
}

func TestBusContention(t *testing.T) {
	e, b := testBus()
	r := b.Alloc(64 << 20)
	const n = 16 << 20
	var solo, shared time.Duration
	e.Go("warm", func(p *sim.Proc) {
		start := p.Now()
		r.WriteStream(p, 0, make([]byte, n), 32<<20)
		solo = p.Now() - start
	})
	e.Run()

	e2 := sim.NewEngine()
	b2 := NewBus(e2, nil, "node0", DefaultConfig())
	r2 := b2.Alloc(64 << 20)
	for i := 0; i < 2; i++ {
		off := int64(i) * n
		e2.Go("w", func(p *sim.Proc) {
			start := p.Now()
			r2.WriteStream(p, off, make([]byte, n), 32<<20)
			if d := p.Now() - start; d > shared {
				shared = d
			}
		})
	}
	e2.Run()
	if shared <= solo {
		t.Errorf("two concurrent writers (%v) not slower than one (%v)", shared, solo)
	}
}

func TestBlockWriterMatchesDataAndChargesMore(t *testing.T) {
	e, b := testBus()
	r := b.Alloc(1 << 20)
	total := 256 << 10
	data := fill(total)
	var tiny, contiguous time.Duration
	e.Go("p", func(p *sim.Proc) {
		start := p.Now()
		w := r.NewBlockWriter(p, int64(total))
		for off := 0; off < total; off += 16 {
			w.Write(int64(off), data[off:off+16])
		}
		w.Flush()
		tiny = p.Now() - start
		if !bytes.Equal(r.Local()[:total], data) {
			t.Error("block writer data mismatch")
		}
		start = p.Now()
		r.WriteStream(p, 0, data, int64(total))
		contiguous = p.Now() - start
	})
	e.Run()
	if tiny <= contiguous {
		t.Errorf("16B-block pack (%v) should cost more than one contiguous copy (%v)", tiny, contiguous)
	}
}

func TestSignalLatency(t *testing.T) {
	e, b := testBus()
	sig := b.NewSignal()
	var at time.Duration
	e.Go("waiter", func(p *sim.Proc) {
		sig.Wait(p)
		at = p.Now()
	})
	e.Go("ringer", func(p *sim.Proc) {
		p.Sleep(time.Microsecond)
		sig.Ring(p, nil)
	})
	e.Run()
	want := time.Microsecond + 60*time.Nanosecond + DefaultConfig().SignalLatency
	if at != want {
		t.Errorf("signal observed at %v, want %v", at, want)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	e, b := testBus()
	r := b.Alloc(16)
	e.Go("p", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range read did not panic")
			}
		}()
		r.Read(p, 10, make([]byte, 10))
	})
	e.Run()
}
