// Package shmem models intra-node shared memory communication: processes on
// the same node exchange data through shared buffers whose access costs come
// from the node's memory-hierarchy model, with large copies contending on
// the node's memory bus.
//
// The paper's SMI library makes all SCI-MPICH techniques work identically
// over intra-node shared memory; this package is the second transport below
// that abstraction. The bus congestion model also powers the comparator SMP
// platforms of Figure 12 (Sun Fire 6800, 4-way Xeon), whose scaling is
// limited by their memory system design.
package shmem

import (
	"fmt"
	"time"

	"scimpich/internal/flow"
	"scimpich/internal/memmodel"
	"scimpich/internal/sim"
)

// Bus is one node's (or one SMP machine's) memory system.
type Bus struct {
	e   sim.Host
	net *flow.Network
	bus *flow.Link
	mem *memmodel.Model

	// signalLatency is the time until a flag written by one process is
	// observed by another (cache-coherence transfer).
	signalLatency time.Duration
	// storeCost is the cost of a single flag/cacheline store.
	storeCost time.Duration
}

// Config describes an SMP memory system.
type Config struct {
	// Mem is the per-process memory hierarchy model.
	Mem *memmodel.Model
	// BusBW is the aggregate memory bus bandwidth in bytes/second.
	BusBW float64
	// Congestion degrades the bus under concurrent access; nil for ideal.
	Congestion flow.CongestionModel
	// SignalLatency is the flag-propagation latency between processes.
	SignalLatency time.Duration
}

// DefaultConfig returns the intra-node configuration of the paper's dual
// Pentium-III nodes.
func DefaultConfig() Config {
	return Config{
		Mem:           memmodel.PentiumIII800(),
		BusBW:         640e6,
		Congestion:    flow.BusCongestion{PerFlowPenalty: 0.12, Floor: 0.35},
		SignalLatency: 400 * time.Nanosecond,
	}
}

// NewBus builds a memory system on the engine. A private flow network is
// created if net is nil.
func NewBus(e sim.Host, net *flow.Network, name string, cfg Config) *Bus {
	if cfg.Mem == nil {
		panic("shmem: config requires a memory model")
	}
	if net == nil {
		net = flow.NewNetworkOn(e)
	}
	return &Bus{
		e:             e,
		net:           net,
		bus:           flow.NewLink(fmt.Sprintf("%s-membus", name), cfg.BusBW, cfg.Congestion),
		mem:           cfg.Mem,
		signalLatency: cfg.SignalLatency,
		storeCost:     60 * time.Nanosecond,
	}
}

// Mem returns the bus's memory hierarchy model.
func (b *Bus) Mem() *memmodel.Model { return b.mem }

// Charge bills an arbitrary memory operation of `bytes` bytes with the
// given pre-computed cost, contending on the bus for large operations.
// Callers that compute their own copy costs (the MPI pack/unpack engines)
// use this so that concurrent memory work on a node shares the bus exactly
// like direct region accesses.
func (b *Bus) Charge(p *sim.Proc, bytes int64, cost time.Duration) {
	if bytes <= 0 || cost <= 0 {
		return
	}
	if bytes < flowThreshold {
		p.Sleep(cost)
		return
	}
	rate := float64(bytes) / cost.Seconds()
	b.net.Transfer(p, flow.Path(b.bus), bytes, rate)
}

// Region is a shared memory region on the bus.
type Region struct {
	bus *Bus
	buf []byte
}

// Alloc allocates a shared region of the given size.
func (b *Bus) Alloc(size int64) *Region {
	if size < 0 {
		panic("shmem: negative region size")
	}
	return b.AllocBacked(make([]byte, size))
}

// AllocBacked wraps an existing buffer as a shared region, so one backing
// array can be visible through several transports (used for one-sided
// communication windows).
func (b *Bus) AllocBacked(buf []byte) *Region {
	return &Region{bus: b, buf: buf}
}

// Size returns the region size in bytes.
func (r *Region) Size() int64 { return int64(len(r.buf)) }

// Local returns the raw shared buffer.
func (r *Region) Local() []byte { return r.buf }

func (r *Region) checkRange(off, n int64) {
	if off < 0 || n < 0 || off+n > r.Size() {
		panic(fmt.Sprintf("shmem: access [%d, %d) outside region of %d bytes", off, off+n, r.Size()))
	}
}

// flowThreshold is the copy size above which transfers contend on the bus
// through the flow network instead of sleeping a fixed cost.
const flowThreshold = 8192

// charge bills a copy of `bytes` bytes with the given cost.
func (r *Region) charge(p *sim.Proc, cost time.Duration, bytes int64) {
	r.bus.Charge(p, bytes, cost)
}

// WriteStream copies src into the region at off.
func (r *Region) WriteStream(p *sim.Proc, off int64, src []byte, srcWorkingSet int64) {
	n := int64(len(src))
	r.checkRange(off, n)
	ws := srcWorkingSet
	if ws == 0 {
		ws = n
	}
	r.charge(p, r.bus.mem.CopyCost(n, n, ws), n)
	copy(r.buf[off:], src)
}

// WriteWord writes a small control word (flag) into the region.
func (r *Region) WriteWord(p *sim.Proc, off int64, src []byte) {
	n := int64(len(src))
	r.checkRange(off, n)
	p.Sleep(r.bus.storeCost)
	copy(r.buf[off:], src)
}

// WriteStrided scatters src into the region as accesses of accessSize
// bytes, stride apart.
func (r *Region) WriteStrided(p *sim.Proc, off int64, src []byte, accessSize, stride int64) {
	n := int64(len(src))
	if n == 0 {
		return
	}
	if accessSize <= 0 || accessSize > n {
		accessSize = n
	}
	if stride < accessSize {
		stride = accessSize
	}
	accesses := (n + accessSize - 1) / accessSize
	span := (accesses-1)*stride + (n - (accesses-1)*accessSize)
	r.checkRange(off, span)
	r.charge(p, r.bus.mem.CopyCost(n, accessSize, span), n)
	scatter(r.buf[off:], src, accessSize, stride)
}

// Read copies from the region into dst.
func (r *Region) Read(p *sim.Proc, off int64, dst []byte) {
	n := int64(len(dst))
	r.checkRange(off, n)
	r.charge(p, r.bus.mem.CopyCost(n, n, n), n)
	copy(dst, r.buf[off:off+n])
}

// ReadStrided gathers strided data from the region into dst.
func (r *Region) ReadStrided(p *sim.Proc, off int64, dst []byte, accessSize, stride int64) {
	n := int64(len(dst))
	if n == 0 {
		return
	}
	if accessSize <= 0 || accessSize > n {
		accessSize = n
	}
	if stride < accessSize {
		stride = accessSize
	}
	accesses := (n + accessSize - 1) / accessSize
	span := (accesses-1)*stride + (n - (accesses-1)*accessSize)
	r.checkRange(off, span)
	r.charge(p, r.bus.mem.CopyCost(n, accessSize, span), n)
	gather(dst, r.buf[off:], accessSize, stride)
}

// BlockWriter batches block-wise writes into the region, mirroring
// sci.BlockWriter for the intra-node case (where direct_pack_ff packs
// straight into the shared buffer and may even beat the contiguous copy for
// cache-friendly block sizes).
type BlockWriter struct {
	r          *Region
	p          *sim.Proc
	workingSet int64
	bytes      int64
	maxBlock   int64
	cost       time.Duration
	flushed    bool
}

// NewBlockWriter starts a batched block-write session. workingSet is the
// size of the traversed source structure.
func (r *Region) NewBlockWriter(p *sim.Proc, workingSet int64) *BlockWriter {
	return &BlockWriter{r: r, p: p, workingSet: workingSet}
}

// Write deposits one contiguous block at off.
func (w *BlockWriter) Write(off int64, src []byte) {
	n := int64(len(src))
	if n == 0 {
		return
	}
	w.r.checkRange(off, n)
	copy(w.r.buf[off:], src)
	w.bytes += n
	if n > w.maxBlock {
		w.maxBlock = n
	}
	w.cost += w.r.bus.mem.BlockCopyCostFF(n, n, w.workingSet)
}

// Flush charges the accumulated cost, contending on the bus for large
// batches. In the cache-friendly regime (blocks fit L1, working set fits
// L2) the batch consumes proportionally less bus traffic — the
// cache-utilization effect behind the paper's observation that
// direct_pack_ff via shared memory can surpass the contiguous transfer.
func (w *BlockWriter) Flush() {
	if w.flushed {
		panic("shmem: BlockWriter flushed twice")
	}
	w.flushed = true
	bytes := w.bytes
	m := w.r.bus.mem
	if m.FFCacheBonus > 1 && w.maxBlock > 0 && w.maxBlock <= m.L1Size && w.workingSet <= m.L2Size {
		bytes = int64(float64(bytes) / m.FFCacheBonus)
	}
	w.r.charge(w.p, w.cost, bytes)
}

// Signal is the intra-node notification primitive: a flag in shared memory
// observed after the cache-coherence latency.
type Signal struct {
	bus *Bus
	ch  *sim.Chan
}

// NewSignal allocates a signal on the bus.
func (b *Bus) NewSignal() *Signal {
	return &Signal{bus: b, ch: sim.NewChan(1 << 20)}
}

// Ring raises the signal with value v.
func (s *Signal) Ring(p *sim.Proc, v any) {
	p.Sleep(s.bus.storeCost)
	ch := s.ch
	s.bus.e.After(s.bus.signalLatency, func() { sim.Post(ch, v) })
}

// Wait blocks until a value is delivered.
func (s *Signal) Wait(p *sim.Proc) any { return p.Recv(s.ch) }

// TryWait takes a delivered value if one is pending.
func (s *Signal) TryWait(p *sim.Proc) (any, bool) { return p.TryRecv(s.ch) }

// scatter copies src into dst as accessSize-byte pieces stride apart.
func scatter(dst, src []byte, accessSize, stride int64) {
	var so, do int64
	n := int64(len(src))
	for so < n {
		end := so + accessSize
		if end > n {
			end = n
		}
		copy(dst[do:], src[so:end])
		so = end
		do += stride
	}
}

// gather is the inverse of scatter.
func gather(dst, src []byte, accessSize, stride int64) {
	var so, do int64
	n := int64(len(dst))
	for do < n {
		end := do + accessSize
		if end > n {
			end = n
		}
		copy(dst[do:end], src[so:so+(end-do)])
		do = end
		so += stride
	}
}
