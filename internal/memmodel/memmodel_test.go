package memmodel

import (
	"testing"
	"time"
)

func TestCopyBWByWorkingSet(t *testing.T) {
	m := PentiumIII800()
	if bw := m.CopyBW(8 << 10); bw != m.L1CopyBW {
		t.Errorf("8kiB working set bw = %g, want L1 %g", bw, m.L1CopyBW)
	}
	if bw := m.CopyBW(128 << 10); bw != m.L2CopyBW {
		t.Errorf("128kiB working set bw = %g, want L2 %g", bw, m.L2CopyBW)
	}
	if bw := m.CopyBW(1 << 20); bw != m.MemCopyBW {
		t.Errorf("1MiB working set bw = %g, want mem %g", bw, m.MemCopyBW)
	}
}

func TestCopyCostMonotoneInBlockCount(t *testing.T) {
	m := PentiumIII800()
	total := int64(256 << 10)
	small := m.CopyCost(total, 8, 1<<20)
	large := m.CopyCost(total, 8192, 1<<20)
	if small <= large {
		t.Errorf("8B-block copy (%v) should cost more than 8kiB-block copy (%v)", small, large)
	}
}

func TestCopyCostZeroAndDegenerate(t *testing.T) {
	m := PentiumIII800()
	if c := m.CopyCost(0, 8, 100); c != 0 {
		t.Errorf("zero-byte copy cost = %v, want 0", c)
	}
	// blockSize <= 0 or > total treated as one block.
	one := m.CopyCost(100, 0, 100)
	alt := m.CopyCost(100, 1000, 100)
	if one != alt {
		t.Errorf("degenerate block sizes disagree: %v vs %v", one, alt)
	}
	if one < m.BlockOverhead {
		t.Errorf("single-block copy %v below one block overhead %v", one, m.BlockOverhead)
	}
}

func TestFFCacheBonusOnlyInCacheRegime(t *testing.T) {
	m := PentiumIII800()
	// In-cache: bonus applies, so FF copy is faster than plain copy.
	plain := m.CopyCost(64<<10, 512, 128<<10)
	ff := m.BlockCopyCostFF(64<<10, 512, 128<<10)
	if ff >= plain {
		t.Errorf("FF in-cache copy %v not faster than plain %v", ff, plain)
	}
	// Out of cache: identical.
	plain = m.CopyCost(1<<20, 512, 4<<20)
	ff = m.BlockCopyCostFF(1<<20, 512, 4<<20)
	if ff != plain {
		t.Errorf("FF out-of-cache copy %v != plain %v", ff, plain)
	}
}

func TestEffectiveSourceBWDip(t *testing.T) {
	m := PentiumIII800()
	device := 240e6
	inCache := m.EffectiveSourceBW(device, 64<<10)
	if inCache != device {
		t.Errorf("in-cache source bw = %g, want device %g", inCache, device)
	}
	big := m.EffectiveSourceBW(1e9, 1<<20)
	if big >= 1e9 {
		t.Errorf("out-of-cache source bw = %g, want below device rate", big)
	}
	if big != m.MemCopyBW*0.55 {
		t.Errorf("out-of-cache source bw = %g, want %g", big, m.MemCopyBW*0.55)
	}
	// The dip also caps a realistic PIO device rate (the paper's Figure 1
	// bandwidth drop beyond 128 kiB).
	if got := m.EffectiveSourceBW(device, 1<<20); got >= device {
		t.Errorf("PIO source bw at 1MiB working set = %g, want below %g", got, device)
	}
}

func TestCopyCostScalesWithBytes(t *testing.T) {
	m := PentiumIII800()
	c1 := m.CopyCost(1<<20, 4096, 8<<20)
	c2 := m.CopyCost(2<<20, 4096, 8<<20)
	ratio := float64(c2) / float64(c1)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("doubling bytes scaled cost by %.2f, want ~2", ratio)
	}
	_ = time.Duration(0)
}
