// Package memmodel provides an analytic cost model for the local memory
// hierarchy of a simulated cluster node.
//
// The model is deliberately simple — piecewise copy bandwidth by working-set
// size (L1 / L2 / DRAM) plus a fixed software overhead per contiguous block
// copied — but it is what makes the paper's intra-node results reproducible:
// the generic pack-and-send pipeline pays two extra block-wise copies, the
// PIO write bandwidth dips once the source working set exceeds the caches
// (the paper's footnote 2: "limited local memory bandwidth"), and the
// direct_pack_ff cache-utilization quirk appears only while the working set
// still fits in L2.
package memmodel

import (
	"time"

	"scimpich/internal/sim"
)

// Model describes one node's memory hierarchy.
type Model struct {
	L1Size int64 // bytes
	L2Size int64 // bytes

	// Copy bandwidth (bytes/second) for working sets resident in each level.
	L1CopyBW  float64
	L2CopyBW  float64
	MemCopyBW float64

	// BlockOverhead is the fixed software cost per contiguous block copied
	// (loop control, address arithmetic, datatype stack operations).
	BlockOverhead time.Duration

	// FFCacheBonus is the bandwidth multiplier applied to block-wise copies
	// whose block size fits L1 and whose working set fits L2, reproducing
	// the paper's observation that direct_pack_ff via shared memory can
	// surpass the contiguous transfer for certain block sizes. 1.0 disables
	// the quirk.
	FFCacheBonus float64
}

// PentiumIII800 returns the model calibrated for the paper's testbed nodes:
// dual Pentium-III 800 MHz on a ServerWorks ServerSet III LE board. The
// bandwidth values are chosen to match the paper's Figure 7 intra-node
// curves and the Figure 1 PIO bandwidth dip beyond 128 kiB.
func PentiumIII800() *Model {
	return &Model{
		L1Size:        16 << 10,
		L2Size:        256 << 10,
		L1CopyBW:      1600e6,
		L2CopyBW:      800e6,
		MemCopyBW:     320e6,
		BlockOverhead: 55 * time.Nanosecond,
		FFCacheBonus:  1.12,
	}
}

// UltraSparcII returns the model for the Sun UltraSparc II, the second
// platform on which the paper reproduced the direct_pack_ff
// cache-utilization effect ("not only on the Pentium-III platform ... but
// also for a Sun UltraSparc II. The block sizes for which non-contiguous
// transfer is faster than contiguous transfer are different on these two
// platforms, but the effect is fully reproducible").
func UltraSparcII() *Model {
	return &Model{
		L1Size:        16 << 10,
		L2Size:        2 << 20, // large external E-cache
		L1CopyBW:      1200e6,
		L2CopyBW:      500e6,
		MemCopyBW:     250e6,
		BlockOverhead: 80 * time.Nanosecond,
		FFCacheBonus:  1.08,
	}
}

// CopyBW returns the plain bulk-copy bandwidth for the given working-set
// size in bytes.
func (m *Model) CopyBW(workingSet int64) float64 {
	switch {
	case workingSet <= m.L1Size:
		return m.L1CopyBW
	case workingSet <= m.L2Size:
		return m.L2CopyBW
	default:
		return m.MemCopyBW
	}
}

// CopyCost returns the time to copy total bytes arranged as contiguous
// blocks of blockSize bytes (the last block may be short), with the given
// overall working-set size determining which cache level feeds the copy.
func (m *Model) CopyCost(total, blockSize, workingSet int64) time.Duration {
	if total <= 0 {
		return 0
	}
	if blockSize <= 0 || blockSize > total {
		blockSize = total
	}
	blocks := (total + blockSize - 1) / blockSize
	bw := m.CopyBW(workingSet)
	return time.Duration(blocks)*m.BlockOverhead + sim.RateDuration(total, bw)
}

// BlockCopyCostFF is CopyCost with the direct_pack_ff cache bonus applied
// when the access pattern qualifies (block fits L1, working set fits L2).
func (m *Model) BlockCopyCostFF(total, blockSize, workingSet int64) time.Duration {
	if total <= 0 {
		return 0
	}
	if blockSize <= 0 || blockSize > total {
		blockSize = total
	}
	blocks := (total + blockSize - 1) / blockSize
	bw := m.CopyBW(workingSet)
	if m.FFCacheBonus > 1 && blockSize <= m.L1Size && workingSet <= m.L2Size {
		bw *= m.FFCacheBonus
	}
	return time.Duration(blocks)*m.BlockOverhead + sim.RateDuration(total, bw)
}

// EffectiveSourceBW caps a device's output bandwidth by the rate at which
// the CPU can read source data from the given working set while the
// front-side bus simultaneously carries the device traffic. It models the
// paper's footnote that PIO bandwidth drops beyond 128 kiB because the
// chipset's limited local memory bandwidth becomes the bottleneck (the
// ServerSet III LE; the HE variant does not show the dip).
func (m *Model) EffectiveSourceBW(deviceBW float64, workingSet int64) float64 {
	// Reads from cache do not contend; reads from DRAM share the bus with
	// the outgoing device stream.
	srcBW := m.CopyBW(workingSet)
	if workingSet <= m.L2Size {
		srcBW *= 2
	} else {
		srcBW *= 0.55
	}
	if srcBW < deviceBW {
		return srcBW
	}
	return deviceBW
}
