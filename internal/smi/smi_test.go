package smi

import (
	"bytes"
	"testing"
	"time"

	"scimpich/internal/sci"
	"scimpich/internal/shmem"
	"scimpich/internal/sim"
)

func TestSCIAdapterSatisfiesMem(t *testing.T) {
	e := sim.NewEngine()
	ic := sci.New(e, sci.DefaultConfig(2))
	seg := ic.Node(1).Export(4096)
	var mem Mem = FromSCI(ic.Node(0).MustImport(1, seg.ID()))
	if !mem.Remote() || mem.Size() != 4096 {
		t.Fatalf("remote=%v size=%d, want true/4096", mem.Remote(), mem.Size())
	}
	e.Go("p", func(p *sim.Proc) {
		src := []byte{1, 2, 3, 4}
		mem.WriteStream(p, 0, src, 0)
		mem.Sync(p)
		if !bytes.Equal(mem.Bytes()[:4], src) {
			t.Error("write through interface lost data")
		}
		bw := mem.BlockWriter(p, 0)
		bw.Write(8, []byte{9})
		bw.Flush()
		mem.Sync(p)
		dst := make([]byte, 1)
		mem.Read(p, 8, dst)
		if dst[0] != 9 {
			t.Error("block write through interface lost data")
		}
	})
	e.Run()
}

func TestShmRegionSatisfiesMem(t *testing.T) {
	e := sim.NewEngine()
	bus := shmem.NewBus(e, nil, "n0", shmem.DefaultConfig())
	var mem Mem = FromShm(bus.Alloc(1024))
	if mem.Remote() {
		t.Error("shm region reported remote")
	}
	e.Go("p", func(p *sim.Proc) {
		mem.WriteStrided(p, 0, []byte{1, 2, 3, 4}, 2, 4)
		dst := make([]byte, 4)
		mem.ReadStrided(p, 0, dst, 2, 4)
		if !bytes.Equal(dst, []byte{1, 2, 3, 4}) {
			t.Error("strided round trip through interface failed")
		}
		mem.Sync(p) // no-op, must not block
	})
	e.Run()
}

func TestSignalsAcrossTransports(t *testing.T) {
	e := sim.NewEngine()
	ic := sci.New(e, sci.DefaultConfig(2))
	bus := shmem.NewBus(e, nil, "n0", shmem.DefaultConfig())
	var remote Signal = SignalFromSCI(ic.Node(1).NewSignal(), ic.Node(0))
	var local Signal = SignalFromShm(bus.NewSignal())
	var got []any
	e.Go("waiter", func(p *sim.Proc) {
		got = append(got, local.Wait(p))
		got = append(got, remote.Wait(p))
	})
	e.Go("ringer", func(p *sim.Proc) {
		local.Ring(p, "a", false)
		remote.Ring(p, "b", true)
	})
	e.Run()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("signals delivered %v, want [a b]", got)
	}
}

func TestLockAndBarrier(t *testing.T) {
	e := sim.NewEngine()
	l := NewLock(time.Microsecond, 500*time.Nanosecond)
	b := NewBarrier(2, time.Microsecond)
	var order []int
	for i := 0; i < 2; i++ {
		i := i
		e.Go("p", func(p *sim.Proc) {
			l.Acquire(p)
			order = append(order, i)
			p.Sleep(time.Duration(i+1) * time.Microsecond)
			l.Release(p)
			b.Enter(p)
			order = append(order, 10+i)
		})
	}
	e.Run()
	if len(order) != 4 {
		t.Fatalf("order = %v, want 4 entries", order)
	}
	// Barrier releases happen after both lock sections.
	if order[2] < 10 || order[3] < 10 {
		t.Errorf("barrier released before lock sections done: %v", order)
	}
}
