// Package smi is the Shared Memory Interface abstraction layer (modelled on
// the SMI library the paper's SCI-MPICH is built on): a uniform API over
// shared memory regions that may live across the SCI ring or inside a node.
//
// Everything above this layer — the MPI device protocols, direct_pack_ff
// packing into "remote" memory, and one-sided communication — is written
// against these interfaces, which is exactly how the paper obtains its
// intra-node shared-memory results for free ("all of the work presented for
// the SCI interconnect can equally be applied to intra-node shared memory
// thanks to the abstraction of the SMI library").
package smi

import (
	"time"

	"scimpich/internal/nic"
	"scimpich/internal/pack"
	"scimpich/internal/sci"
	"scimpich/internal/shmem"
	"scimpich/internal/sim"
)

// Mem is a shared memory region as seen by one process: possibly remote
// (costed with the SCI model) or node-local (costed with the memory model).
type Mem interface {
	// Size returns the region size in bytes.
	Size() int64
	// Remote reports whether accesses cross the interconnect.
	Remote() bool
	// WriteStream writes src contiguously at off (stream-buffer friendly).
	WriteStream(p *sim.Proc, off int64, src []byte, srcWorkingSet int64)
	// WriteWord writes a small control word at off.
	WriteWord(p *sim.Proc, off int64, src []byte)
	// WriteStrided scatters src as accessSize-byte accesses stride apart.
	WriteStrided(p *sim.Proc, off int64, src []byte, accessSize, stride int64)
	// WritePut is WriteStrided on the MPI put path, additionally capped at
	// the adapter's sustained put bandwidth.
	WritePut(p *sim.Proc, off int64, src []byte, accessSize, stride int64)
	// Read copies len(dst) bytes from off into dst.
	Read(p *sim.Proc, off int64, dst []byte)
	// ReadStrided gathers strided accesses into dst.
	ReadStrided(p *sim.Proc, off int64, dst []byte, accessSize, stride int64)
	// BlockWriter starts a batched block-wise write session (the
	// direct_pack_ff write path).
	BlockWriter(p *sim.Proc, workingSet int64) BlockWriter
	// DMAWrite submits an asynchronous DMA transfer when the transport has
	// a DMA engine, returning its completion future and true; (nil, false)
	// means DMA is unavailable and the caller should fall back to PIO.
	DMAWrite(p *sim.Proc, off int64, src []byte) (*sim.Future, bool)
	// DMAWriteSG submits a scatter-gather DMA transfer when the transport
	// has a descriptor-list engine: every descriptor gathers Len bytes at
	// SrcOff of src and lands them at base+DstOff of the region. src and
	// descs must stay valid until the future completes. (nil, false) means
	// the caller should fall back to a CPU pack path.
	DMAWriteSG(p *sim.Proc, base int64, src []byte, descs []pack.Descriptor) (*sim.Future, bool)
	// Sync guarantees that all writes issued through this Mem have been
	// delivered (store barrier on SCI; free on intra-node memory).
	Sync(p *sim.Proc)
	// Bytes exposes the raw backing buffer. Only the owning side may use
	// it without cost accounting (e.g. to initialize window contents).
	Bytes() []byte

	// Fallible entry points: on transports that can fail (SCI), injected
	// faults, revoked segments and unreachable owners are surfaced as
	// typed errors for the caller's recovery machinery; reliable
	// transports (intra-node memory, message NICs) always return nil.

	// TryWriteStream is WriteStream returning transfer errors.
	TryWriteStream(p *sim.Proc, off int64, src []byte, srcWorkingSet int64) error
	// TryWritePut is WritePut returning transfer errors.
	TryWritePut(p *sim.Proc, off int64, src []byte, accessSize, stride int64) error
	// TryRead is Read returning transfer errors.
	TryRead(p *sim.Proc, off int64, dst []byte) error
	// TrySync is the transfer-check barrier: Sync followed by a check of
	// the transfer status, with bounded retry/backoff on SCI (see
	// sci.Mapping.CheckedSync).
	TrySync(p *sim.Proc) error
}

// BlockWriter receives a sequence of contiguous blocks at ascending offsets
// and charges their cost on Flush. TryFlush is the fallible variant:
// deposit and transfer errors are returned instead of panicking.
type BlockWriter interface {
	Write(off int64, src []byte)
	Flush()
	TryFlush() error
}

// Signal is a one-way notification channel with transport-appropriate
// latency (remote flag write / remote interrupt / cache-coherent flag).
type Signal interface {
	// Ring raises the signal carrying v. interrupt selects the remote
	// interrupt path (used when the target is not polling).
	Ring(p *sim.Proc, v any, interrupt bool)
	// Wait blocks until a value arrives.
	Wait(p *sim.Proc) any
	// TryWait takes a pending value without blocking.
	TryWait(p *sim.Proc) (any, bool)
}

// --- SCI adapters ---

type sciMem struct {
	m *sci.Mapping
}

// FromSCI wraps an SCI mapping as an SMI region.
func FromSCI(m *sci.Mapping) Mem { return sciMem{m} }

func (s sciMem) Size() int64  { return s.m.Size() }
func (s sciMem) Remote() bool { return s.m.Remote() }
func (s sciMem) WriteStream(p *sim.Proc, off int64, src []byte, ws int64) {
	s.m.WriteStream(p, off, src, ws)
}
func (s sciMem) WriteWord(p *sim.Proc, off int64, src []byte) { s.m.WriteWord(p, off, src) }
func (s sciMem) WriteStrided(p *sim.Proc, off int64, src []byte, a, st int64) {
	s.m.WriteStrided(p, off, src, a, st)
}
func (s sciMem) WritePut(p *sim.Proc, off int64, src []byte, a, st int64) {
	s.m.WritePut(p, off, src, a, st)
}
func (s sciMem) Read(p *sim.Proc, off int64, dst []byte) { s.m.Read(p, off, dst) }
func (s sciMem) ReadStrided(p *sim.Proc, off int64, dst []byte, a, st int64) {
	s.m.ReadStrided(p, off, dst, a, st)
}
func (s sciMem) BlockWriter(p *sim.Proc, ws int64) BlockWriter { return s.m.NewBlockWriter(p, ws) }
func (s sciMem) DMAWrite(p *sim.Proc, off int64, src []byte) (*sim.Future, bool) {
	if !s.m.Remote() {
		return nil, false
	}
	return s.m.DMAWrite(p, off, src), true
}
func (s sciMem) DMAWriteSG(p *sim.Proc, base int64, src []byte, descs []pack.Descriptor) (*sim.Future, bool) {
	if !s.m.Remote() {
		return nil, false
	}
	fut, err := s.m.TryDMAWriteSG(p, base, src, descs)
	if err != nil {
		// Submission failed (revoked segment, range): surface the error
		// through the future so callers have one recovery path.
		fut = sim.NewFuture()
		fut.Complete(err)
	}
	return fut, true
}
func (s sciMem) Sync(p *sim.Proc) { s.m.Sync(p) }
func (s sciMem) Bytes() []byte    { return s.m.Segment().Local() }
func (s sciMem) TryWriteStream(p *sim.Proc, off int64, src []byte, ws int64) error {
	return s.m.TryWriteStream(p, off, src, ws)
}
func (s sciMem) TryWritePut(p *sim.Proc, off int64, src []byte, a, st int64) error {
	return s.m.TryWritePut(p, off, src, a, st)
}
func (s sciMem) TryRead(p *sim.Proc, off int64, dst []byte) error { return s.m.TryRead(p, off, dst) }
func (s sciMem) TrySync(p *sim.Proc) error                        { return s.m.CheckedSync(p) }

type sciSignal struct {
	sig  *sci.Signal
	from *sci.Node
}

// SignalFromSCI wraps an SCI signal for ringing from the given node.
func SignalFromSCI(sig *sci.Signal, from *sci.Node) Signal { return sciSignal{sig, from} }

func (s sciSignal) Ring(p *sim.Proc, v any, interrupt bool) { s.sig.RingFrom(p, s.from, v, interrupt) }
func (s sciSignal) Wait(p *sim.Proc) any                    { return s.sig.Wait(p) }
func (s sciSignal) TryWait(p *sim.Proc) (any, bool)         { return s.sig.TryWait(p) }

// --- NIC adapters ---

type nicMem struct {
	v *nic.View
}

// FromNIC wraps a message-NIC buffer view as an SMI region.
func FromNIC(v *nic.View) Mem { return nicMem{v} }

func (s nicMem) Size() int64  { return s.v.Size() }
func (s nicMem) Remote() bool { return s.v.Remote() }
func (s nicMem) WriteStream(p *sim.Proc, off int64, src []byte, ws int64) {
	s.v.WriteStream(p, off, src, ws)
}
func (s nicMem) WriteWord(p *sim.Proc, off int64, src []byte) { s.v.WriteWord(p, off, src) }
func (s nicMem) WriteStrided(p *sim.Proc, off int64, src []byte, a, st int64) {
	s.v.WriteStrided(p, off, src, a, st)
}
func (s nicMem) WritePut(p *sim.Proc, off int64, src []byte, a, st int64) {
	s.v.WritePut(p, off, src, a, st)
}
func (s nicMem) Read(p *sim.Proc, off int64, dst []byte) { s.v.Read(p, off, dst) }
func (s nicMem) ReadStrided(p *sim.Proc, off int64, dst []byte, a, st int64) {
	s.v.ReadStrided(p, off, dst, a, st)
}
func (s nicMem) BlockWriter(p *sim.Proc, ws int64) BlockWriter {
	return reliableBW{s.v.NewBlockWriter(p, ws)}
}
func (s nicMem) DMAWrite(p *sim.Proc, off int64, src []byte) (*sim.Future, bool) {
	return s.v.DMAWrite(p, off, src)
}
func (s nicMem) DMAWriteSG(p *sim.Proc, base int64, src []byte, descs []pack.Descriptor) (*sim.Future, bool) {
	return nil, false // message NICs expose no descriptor-list engine
}
func (s nicMem) Sync(p *sim.Proc) { s.v.Sync(p) }
func (s nicMem) Bytes() []byte    { return s.v.Bytes() }
func (s nicMem) TryWriteStream(p *sim.Proc, off int64, src []byte, ws int64) error {
	s.v.WriteStream(p, off, src, ws)
	return nil
}
func (s nicMem) TryWritePut(p *sim.Proc, off int64, src []byte, a, st int64) error {
	s.v.WritePut(p, off, src, a, st)
	return nil
}
func (s nicMem) TryRead(p *sim.Proc, off int64, dst []byte) error {
	s.v.Read(p, off, dst)
	return nil
}
func (s nicMem) TrySync(p *sim.Proc) error {
	s.v.Sync(p)
	return nil
}

// --- Intra-node adapters ---

type shmMem struct {
	r *shmem.Region
}

// FromShm wraps an intra-node shared region as an SMI region.
func FromShm(r *shmem.Region) Mem { return shmMem{r} }

func (s shmMem) Size() int64  { return s.r.Size() }
func (s shmMem) Remote() bool { return false }
func (s shmMem) WriteStream(p *sim.Proc, off int64, src []byte, ws int64) {
	s.r.WriteStream(p, off, src, ws)
}
func (s shmMem) WriteWord(p *sim.Proc, off int64, src []byte) { s.r.WriteWord(p, off, src) }
func (s shmMem) WriteStrided(p *sim.Proc, off int64, src []byte, a, st int64) {
	s.r.WriteStrided(p, off, src, a, st)
}
func (s shmMem) WritePut(p *sim.Proc, off int64, src []byte, a, st int64) {
	s.r.WriteStrided(p, off, src, a, st)
}
func (s shmMem) Read(p *sim.Proc, off int64, dst []byte) { s.r.Read(p, off, dst) }
func (s shmMem) ReadStrided(p *sim.Proc, off int64, dst []byte, a, st int64) {
	s.r.ReadStrided(p, off, dst, a, st)
}
func (s shmMem) BlockWriter(p *sim.Proc, ws int64) BlockWriter {
	return reliableBW{s.r.NewBlockWriter(p, ws)}
}
func (s shmMem) DMAWrite(p *sim.Proc, off int64, src []byte) (*sim.Future, bool) {
	return nil, false // intra-node memory has no DMA engine
}
func (s shmMem) DMAWriteSG(p *sim.Proc, base int64, src []byte, descs []pack.Descriptor) (*sim.Future, bool) {
	return nil, false
}
func (s shmMem) Sync(p *sim.Proc) {}
func (s shmMem) Bytes() []byte    { return s.r.Local() }
func (s shmMem) TryWriteStream(p *sim.Proc, off int64, src []byte, ws int64) error {
	s.r.WriteStream(p, off, src, ws)
	return nil
}
func (s shmMem) TryWritePut(p *sim.Proc, off int64, src []byte, a, st int64) error {
	s.r.WriteStrided(p, off, src, a, st)
	return nil
}
func (s shmMem) TryRead(p *sim.Proc, off int64, dst []byte) error {
	s.r.Read(p, off, dst)
	return nil
}
func (s shmMem) TrySync(p *sim.Proc) error { return nil }

// reliableBW adapts the block writers of transports that cannot fail
// (intra-node memory, message NICs) to the fallible BlockWriter interface.
type reliableBW struct {
	bw interface {
		Write(off int64, src []byte)
		Flush()
	}
}

func (r reliableBW) Write(off int64, src []byte) { r.bw.Write(off, src) }
func (r reliableBW) Flush()                      { r.bw.Flush() }
func (r reliableBW) TryFlush() error             { r.bw.Flush(); return nil }

type shmSignal struct {
	sig *shmem.Signal
}

// SignalFromShm wraps an intra-node signal.
func SignalFromShm(sig *shmem.Signal) Signal { return shmSignal{sig} }

func (s shmSignal) Ring(p *sim.Proc, v any, interrupt bool) { s.sig.Ring(p, v) }
func (s shmSignal) Wait(p *sim.Proc) any                    { return s.sig.Wait(p) }
func (s shmSignal) TryWait(p *sim.Proc) (any, bool)         { return s.sig.TryWait(p) }

// Lock is a distributed spinlock in shared memory, as used for the mutual
// exclusion of passive-target one-sided synchronization. The paper uses the
// techniques of Schulz [14]: very low latency under little contention.
type Lock struct {
	mu      sim.Mutex
	acquire time.Duration
	release time.Duration
}

// NewLock returns a shared-memory lock with the given acquire/release
// latencies (use the remote flavour for locks crossing the ring).
func NewLock(acquire, release time.Duration) *Lock {
	return &Lock{acquire: acquire, release: release}
}

// Acquire takes the lock, spinning in virtual time while it is held.
func (l *Lock) Acquire(p *sim.Proc) {
	p.Sleep(l.acquire)
	p.Lock(&l.mu)
}

// TryAcquire attempts one acquisition round trip without queueing: it
// pays the acquire latency and reports whether the lock was free. Used by
// watchdog-bounded lock acquisition (osc.Win.LockChecked).
func (l *Lock) TryAcquire(p *sim.Proc) bool {
	p.Sleep(l.acquire)
	return l.mu.TryLock()
}

// Release drops the lock.
func (l *Lock) Release(p *sim.Proc) {
	p.Sleep(l.release)
	p.Unlock(&l.mu)
}

// Barrier is a shared-memory barrier across a fixed group of processes,
// with a per-crossing latency cost.
type Barrier struct {
	b    *sim.Barrier
	cost time.Duration
}

// NewBarrier returns a barrier for n parties costing the given latency per
// crossing.
func NewBarrier(n int, cost time.Duration) *Barrier {
	return &Barrier{b: sim.NewBarrier(n), cost: cost}
}

// Enter blocks until all parties arrive.
func (b *Barrier) Enter(p *sim.Proc) {
	p.Sleep(b.cost)
	p.Arrive(b.b)
}
