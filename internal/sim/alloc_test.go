package sim

import (
	"testing"
	"time"
)

// TestStaleTimerCancelIsNoop pins the generation check on recycled events: a
// Timer held across its event's firing must not cancel the event that later
// reuses the same freelist slot.
func TestStaleTimerCancelIsNoop(t *testing.T) {
	e := NewEngine()
	stale := e.After(time.Millisecond, func() {})
	e.Run() // fires and recycles the event into the freelist

	fired := false
	fresh := e.After(time.Millisecond, func() { fired = true })
	if fresh.ev != stale.ev {
		t.Fatalf("freelist should have reused the recycled event slot")
	}
	stale.Cancel() // stale generation: must be a no-op
	e.Run()
	if !fired {
		t.Fatal("stale Timer.Cancel canceled an unrelated recycled event")
	}

	// A live cancel on the same slot still works.
	fired = false
	live := e.After(time.Millisecond, func() { fired = true })
	live.Cancel()
	e.Run()
	if fired {
		t.Fatal("live Timer.Cancel did not cancel its event")
	}
}

// TestAllocsSleepSteadyState pins the scheduling hot path at zero
// allocations: Sleep reuses the proc's cached dispatch closure and the
// engine's event freelist.
func TestAllocsSleepSteadyState(t *testing.T) {
	e := NewEngine()
	e.Go("sleeper", func(p *Proc) {
		for i := 0; i < 4; i++ { // warm the freelist
			p.Sleep(time.Microsecond)
		}
		if n := testing.AllocsPerRun(100, func() {
			p.Sleep(time.Microsecond)
		}); n != 0 {
			t.Errorf("Sleep: %v allocs/op, want 0", n)
		}
	})
	e.Run()
}

// TestAllocsAfterCallSteadyState pins AfterCall — the closure-free event
// entry used by the PIO delivery pipeline — at zero allocations per
// scheduled event once the freelist is warm.
func TestAllocsAfterCallSteadyState(t *testing.T) {
	e := NewEngine()
	fn := func(any) {}
	e.Go("scheduler", func(p *Proc) {
		for i := 0; i < 4; i++ {
			e.AfterCall(0, fn, nil)
			p.Sleep(time.Microsecond)
		}
		if n := testing.AllocsPerRun(100, func() {
			e.AfterCall(0, fn, nil)
			p.Sleep(time.Microsecond)
		}); n != 0 {
			t.Errorf("AfterCall+drain: %v allocs/op, want 0", n)
		}
	})
	e.Run()
}
