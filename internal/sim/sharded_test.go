package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestShardedBasics: local events run in time order, the clock advances,
// final time is the last event anywhere.
func TestShardedBasics(t *testing.T) {
	se := NewShardedEngine(2, time.Microsecond)
	var order []string
	se.Shard(0).At(2*time.Microsecond, func() { order = append(order, "a2") })
	se.Shard(0).At(1*time.Microsecond, func() { order = append(order, "a1") })
	se.Shard(1).At(3*time.Microsecond, func() { order = append(order, "b3") })
	end := se.Run()
	// Shards run concurrently so cross-shard append order between windows is
	// defined by the window sequence: a1 (window 1), a2 (window 2), b3.
	want := []string{"a1", "a2", "b3"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if end != 3*time.Microsecond {
		t.Fatalf("end = %v, want 3µs", end)
	}
	if se.Events() != 3 {
		t.Fatalf("events = %d, want 3", se.Events())
	}
	if se.Windows() == 0 {
		t.Fatal("no windows counted")
	}
}

// TestShardedCrossSend: a cross-shard send lands at the right time on the
// right shard; a send below the lookahead panics.
func TestShardedCrossSend(t *testing.T) {
	se := NewShardedEngine(2, time.Microsecond)
	var got time.Duration
	se.Shard(0).At(time.Microsecond, func() {
		se.Shard(0).Send(1, 5*time.Microsecond, func(any) {
			got = se.Shard(1).Now()
		}, nil)
	})
	se.Run()
	if got != 6*time.Microsecond {
		t.Fatalf("arrival at %v, want 6µs", got)
	}

	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "below lookahead") {
			t.Fatalf("expected lookahead panic, got %v", r)
		}
	}()
	se2 := NewShardedEngine(2, time.Millisecond)
	se2.Shard(0).At(0, func() {
		se2.Shard(0).Send(1, time.Microsecond, func(any) {}, nil)
	})
	se2.Run()
}

// TestShardedSelfSend: a send to the own shard is an ordinary local event
// with no lookahead constraint.
func TestShardedSelfSend(t *testing.T) {
	se := NewShardedEngine(2, time.Millisecond)
	ran := false
	se.Shard(0).At(0, func() {
		se.Shard(0).Send(0, time.Nanosecond, func(any) { ran = true }, nil)
	})
	se.Run()
	if !ran {
		t.Fatal("self-send did not run")
	}
}

// pingProgram runs a deterministic multi-shard token-passing program and
// returns a trace of (time, shard, hop) tuples plus the final time.
func pingProgram(shards, hops int, lookahead time.Duration) (string, time.Duration) {
	se := NewShardedEngine(shards, lookahead)
	var sb strings.Builder
	var hop func(arg any)
	hop = func(arg any) {
		h := arg.(int)
		s := se.Shard(h % shards)
		fmt.Fprintf(&sb, "%d@%v;", h, s.Now())
		if h+1 < hops {
			s.Send((h+1)%shards, lookahead+time.Duration(h%3)*time.Microsecond, hop, h+1)
		}
	}
	se.Shard(0).AfterCall(0, hop, 0)
	end := se.Run()
	return sb.String(), end
}

// TestShardedDeterminism: repeated runs produce the identical schedule.
func TestShardedDeterminism(t *testing.T) {
	trace1, end1 := pingProgram(4, 200, 3*time.Microsecond)
	for i := 0; i < 10; i++ {
		trace2, end2 := pingProgram(4, 200, 3*time.Microsecond)
		if trace1 != trace2 || end1 != end2 {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i, trace1, trace2)
		}
	}
}

// TestShardedMergeOrder: same-time cross-shard arrivals from different
// sources are delivered in (time, source shard, source seq) order.
func TestShardedMergeOrder(t *testing.T) {
	se := NewShardedEngine(3, time.Microsecond)
	var got []int
	recv := func(arg any) { got = append(got, arg.(int)) }
	// Shards 1 and 2 both send to shard 0, arriving at the same instant.
	se.Shard(2).At(0, func() { se.Shard(2).Send(0, 4*time.Microsecond, recv, 20) })
	se.Shard(2).At(0, func() { se.Shard(2).Send(0, 4*time.Microsecond, recv, 21) })
	se.Shard(1).At(0, func() { se.Shard(1).Send(0, 4*time.Microsecond, recv, 10) })
	se.Run()
	want := []int{10, 20, 21}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merge order = %v, want %v", got, want)
	}
}

// TestShardedStop: Stop ends the run early.
func TestShardedStop(t *testing.T) {
	se := NewShardedEngine(2, time.Microsecond)
	n := 0
	var tick func(any)
	tick = func(any) {
		n++
		if n == 5 {
			se.Stop()
		}
		se.Shard(0).AfterCall(time.Microsecond, tick, nil)
	}
	se.Shard(0).AfterCall(0, tick, nil)
	se.Run()
	if n != 5 {
		t.Fatalf("executed %d ticks, want 5", n)
	}
}

// TestShardedTimerCancel: Cancel works on shard timers, including from a
// different window than the one that created them.
func TestShardedTimerCancel(t *testing.T) {
	se := NewShardedEngine(1, time.Microsecond)
	fired := false
	tm := se.Shard(0).After(10*time.Microsecond, func() { fired = true })
	se.Shard(0).After(time.Microsecond, func() { tm.Cancel() })
	se.Run()
	if fired {
		t.Fatal("canceled timer fired")
	}
}

// TestSeqFabricOracle: the same Locale program runs on the sequential
// fabric and the sharded engine with identical per-actor behaviour.
func TestSeqFabricOracle(t *testing.T) {
	run := func(f Fabric) (string, time.Duration) {
		var sb strings.Builder
		var hop func(arg any)
		hops := 100
		hop = func(arg any) {
			h := arg.(int)
			l := f.Locale(h % f.Locales())
			fmt.Fprintf(&sb, "%d@%v;", h, l.Now())
			if h+1 < hops {
				l.Send((h+1)%f.Locales(), f.Lookahead()+time.Duration(h%2)*time.Microsecond, hop, h+1)
			}
		}
		f.Locale(0).AfterCall(0, hop, 0)
		end := f.Run()
		return sb.String(), end
	}
	la := 2 * time.Microsecond
	seqTrace, seqEnd := run(NewSeqFabric(NewEngine(), 4, la))
	for _, shards := range []int{1, 2, 4} {
		shTrace, shEnd := run(NewShardedEngine(shards, la))
		if shards == 4 && (shTrace != seqTrace || shEnd != seqEnd) {
			t.Fatalf("sharded(4) diverged from sequential oracle:\n%s\nvs\n%s", shTrace, seqTrace)
		}
		if shEnd != seqEnd {
			t.Fatalf("sharded(%d) end %v != sequential %v", shards, shEnd, seqEnd)
		}
	}
}

// TestShardedWindowSafety: a window never executes an event that a
// not-yet-delivered cross-shard message could precede — arrivals always
// execute at their exact timestamps.
func TestShardedWindowSafety(t *testing.T) {
	const lookahead = time.Microsecond
	se := NewShardedEngine(2, lookahead)
	var log []string
	// Shard 1 has a long-scheduled local event; shard 0 sends a message
	// that lands just before it. The arrival must run first.
	se.Shard(1).At(10*time.Microsecond, func() { log = append(log, "local@10") })
	se.Shard(0).At(8*time.Microsecond, func() {
		se.Shard(0).Send(1, lookahead, func(any) {
			log = append(log, fmt.Sprintf("arrival@%v", se.Shard(1).Now()))
		}, nil)
	})
	se.Run()
	want := "[arrival@9µs local@10]"
	if fmt.Sprint(log) != want {
		t.Fatalf("log = %v, want %s", log, want)
	}
}
