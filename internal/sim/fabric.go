package sim

import (
	"fmt"
	"time"
)

// Locale is one scheduling domain of a partitioned simulation program: a
// shard of a ShardedEngine, or a logical slice of a sequential Engine. A
// program written against Locales (actor and process state confined to one
// locale, cross-locale interaction only through Send with at least the
// fabric's lookahead of delay) runs unchanged on either engine, which is
// what makes the sequential engine a differential-testing oracle for the
// sharded one. A Locale is a Host: it can run cooperative Procs, so full
// protocol worlds (the MPI stack) can be constructed on a locale.
type Locale interface {
	Host
	ID() int
	Send(dst int, d time.Duration, fn func(any), arg any)
}

// Fabric is a set of locales plus the engine that drives them.
type Fabric interface {
	Locales() int
	Locale(i int) Locale
	Lookahead() time.Duration
	Run() time.Duration
	Events() uint64
	Stop()
}

// Locales returns the shard count (ShardedEngine implements Fabric).
func (se *ShardedEngine) Locales() int { return len(se.shards) }

// Locale returns shard i as a Locale.
func (se *ShardedEngine) Locale(i int) Locale { return se.shards[i] }

// seqFabric presents a sequential Engine as n locales sharing one event
// heap. Send enforces the same lookahead contract as the sharded engine so
// that a program debugged here cannot violate causality there.
type seqFabric struct {
	e         *Engine
	lookahead time.Duration
	locales   []seqLocale
}

// NewLocalFabric is the blessed constructor for single-machine harnesses:
// a fabric of n locales over a fresh sequential Engine. Benchmarks and
// tests that previously called NewEngine directly construct their
// components on Locale(i) of this fabric instead, so the same harness code
// moves to a ShardedEngine by swapping only the fabric.
func NewLocalFabric(n int, lookahead time.Duration) Fabric {
	return NewSeqFabric(NewEngine(), n, lookahead)
}

// NewSeqFabric wraps e as a fabric of n locales with the given lookahead.
func NewSeqFabric(e *Engine, n int, lookahead time.Duration) Fabric {
	if n < 1 {
		panic("sim: fabric needs at least one locale")
	}
	f := &seqFabric{e: e, lookahead: lookahead}
	f.locales = make([]seqLocale, n)
	for i := range f.locales {
		f.locales[i] = seqLocale{f: f, id: i}
	}
	return f
}

func (f *seqFabric) Locales() int             { return len(f.locales) }
func (f *seqFabric) Locale(i int) Locale      { return &f.locales[i] }
func (f *seqFabric) Lookahead() time.Duration { return f.lookahead }
func (f *seqFabric) Run() time.Duration       { return f.e.Run() }
func (f *seqFabric) Events() uint64           { return f.e.Events() }
func (f *seqFabric) Stop()                    { f.e.Stop() }

type seqLocale struct {
	f  *seqFabric
	id int
}

func (l *seqLocale) ID() int            { return l.id }
func (l *seqLocale) Now() time.Duration { return l.f.e.Now() }

func (l *seqLocale) At(t time.Duration, fn func()) Timer { return l.f.e.At(t, fn) }

func (l *seqLocale) After(d time.Duration, fn func()) Timer { return l.f.e.After(d, fn) }

func (l *seqLocale) AfterCall(d time.Duration, fn func(any), arg any) Timer {
	return l.f.e.AfterCall(d, fn, arg)
}

func (l *seqLocale) Go(name string, body func(p *Proc)) *Proc { return l.f.e.Go(name, body) }

func (l *seqLocale) GoDaemon(name string, body func(p *Proc)) *Proc {
	return l.f.e.GoDaemon(name, body)
}

func (l *seqLocale) Send(dst int, d time.Duration, fn func(any), arg any) {
	if dst < 0 || dst >= len(l.f.locales) {
		panic(fmt.Sprintf("sim: locale %d sending to unknown locale %d", l.id, dst))
	}
	if dst != l.id && d < l.f.lookahead {
		panic(fmt.Sprintf("sim: cross-locale send %d->%d with delay %v below lookahead %v",
			l.id, dst, d, l.f.lookahead))
	}
	l.f.e.AfterCall(d, fn, arg)
}
