package sim

import (
	"testing"
	"time"
)

func TestFuture(t *testing.T) {
	e := NewEngine()
	f := NewFuture()
	var got any
	var at time.Duration
	e.Go("waiter", func(p *Proc) {
		got = p.Await(f)
		at = p.Now()
	})
	e.Go("completer", func(p *Proc) {
		p.Sleep(3 * time.Microsecond)
		f.Complete(42)
	})
	e.Run()
	if got != 42 {
		t.Errorf("await value = %v, want 42", got)
	}
	if at != 3*time.Microsecond {
		t.Errorf("woke at %v, want 3µs", at)
	}
}

func TestFutureAlreadyDone(t *testing.T) {
	e := NewEngine()
	f := NewFuture()
	f.Complete("x")
	var got any
	e.Go("waiter", func(p *Proc) { got = p.Await(f) })
	e.Run()
	if got != "x" {
		t.Errorf("await value = %v, want x", got)
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	f := NewFuture()
	f.Complete(nil)
	defer func() {
		if recover() == nil {
			t.Error("double complete did not panic")
		}
	}()
	f.Complete(nil)
}

func TestUnbufferedChanRendezvous(t *testing.T) {
	e := NewEngine()
	c := NewChan(0)
	var sendDone, recvVal time.Duration
	var got any
	e.Go("sender", func(p *Proc) {
		p.Send(c, 7)
		sendDone = p.Now()
	})
	e.Go("receiver", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		got = p.Recv(c)
		recvVal = p.Now()
	})
	e.Run()
	if got != 7 {
		t.Errorf("received %v, want 7", got)
	}
	if sendDone != 10*time.Microsecond || recvVal != 10*time.Microsecond {
		t.Errorf("send done %v recv %v, want both 10µs", sendDone, recvVal)
	}
}

func TestBufferedChan(t *testing.T) {
	e := NewEngine()
	c := NewChan(2)
	var sends []time.Duration
	var recvs []any
	e.Go("sender", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Send(c, i)
			sends = append(sends, p.Now())
		}
	})
	e.Go("receiver", func(p *Proc) {
		p.Sleep(time.Microsecond)
		for i := 0; i < 4; i++ {
			recvs = append(recvs, p.Recv(c))
			p.Sleep(time.Microsecond)
		}
	})
	e.Run()
	for i, v := range recvs {
		if v != i {
			t.Fatalf("recvs = %v, want [0 1 2 3]", recvs)
		}
	}
	// First two sends fit the buffer at t=0; the rest block until drained.
	if sends[0] != 0 || sends[1] != 0 {
		t.Errorf("buffered sends at %v, %v; want 0, 0", sends[0], sends[1])
	}
	if sends[2] != time.Microsecond {
		t.Errorf("third send completed at %v, want 1µs", sends[2])
	}
}

func TestChanFIFOAcrossManyProcs(t *testing.T) {
	e := NewEngine()
	c := NewChan(0)
	var got []any
	for i := 0; i < 5; i++ {
		i := i
		e.Go("sender", func(p *Proc) { p.Send(c, i) })
	}
	e.Go("receiver", func(p *Proc) {
		p.Sleep(time.Microsecond)
		for i := 0; i < 5; i++ {
			got = append(got, p.Recv(c))
		}
	})
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got = %v, want FIFO [0..4]", got)
		}
	}
}

func TestTryRecv(t *testing.T) {
	e := NewEngine()
	c := NewChan(1)
	var ok1, ok2 bool
	e.Go("p", func(p *Proc) {
		_, ok1 = p.TryRecv(c)
		p.Send(c, 1)
		_, ok2 = p.TryRecv(c)
	})
	e.Run()
	if ok1 || !ok2 {
		t.Fatalf("TryRecv = %v, %v; want false, true", ok1, ok2)
	}
}

func TestMutexExcludesAndIsFIFO(t *testing.T) {
	e := NewEngine()
	m := &Mutex{}
	var order []string
	hold := func(name string, delay, inside time.Duration) {
		e.Go(name, func(p *Proc) {
			p.Sleep(delay)
			p.Lock(m)
			order = append(order, name)
			p.Sleep(inside)
			p.Unlock(m)
		})
	}
	hold("a", 0, 10*time.Microsecond)
	hold("b", time.Microsecond, time.Microsecond)
	hold("c", 2*time.Microsecond, time.Microsecond)
	e.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("lock order = %v, want %v", order, want)
		}
	}
}

func TestUnlockUnlockedPanics(t *testing.T) {
	e := NewEngine()
	e.Go("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("unlock of unlocked mutex did not panic")
			}
		}()
		p.Unlock(&Mutex{})
	})
	e.Run()
}

func TestBarrierReleasesTogether(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(3)
	var times []time.Duration
	for i := 0; i < 3; i++ {
		d := time.Duration(i) * 5 * time.Microsecond
		e.Go("p", func(p *Proc) {
			p.Sleep(d)
			p.Arrive(b)
			times = append(times, p.Now())
		})
	}
	e.Run()
	for _, at := range times {
		if at != 10*time.Microsecond {
			t.Fatalf("release times %v, want all 10µs", times)
		}
	}
}

func TestBarrierIsCyclic(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(2)
	rounds := 0
	for i := 0; i < 2; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			for r := 0; r < 3; r++ {
				p.Sleep(time.Duration(i+1) * time.Microsecond)
				p.Arrive(b)
				if i == 0 {
					rounds++
				}
			}
		})
	}
	e.Run()
	if rounds != 3 {
		t.Fatalf("completed %d rounds, want 3", rounds)
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	var wg WaitGroup
	wg.Add(2)
	var doneAt time.Duration
	e.Go("waiter", func(p *Proc) {
		p.WaitFor(&wg)
		doneAt = p.Now()
	})
	e.Go("w1", func(p *Proc) { p.Sleep(time.Microsecond); wg.DoneOne() })
	e.Go("w2", func(p *Proc) { p.Sleep(4 * time.Microsecond); wg.DoneOne() })
	e.Run()
	if doneAt != 4*time.Microsecond {
		t.Fatalf("waiter released at %v, want 4µs", doneAt)
	}
}
