package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestShardHostedProcs: shards host cooperative processes exactly like the
// sequential engine does — Sleep advances the shard clock, futures park
// and wake procs, and cross-shard callbacks can complete a future a proc
// is awaiting.
func TestShardHostedProcs(t *testing.T) {
	se := NewShardedEngine(2, time.Microsecond)
	var ends [2]time.Duration
	fut := NewFuture()
	se.Shard(0).Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Microsecond)
		ends[0] = p.Now()
	})
	se.Shard(1).Go("waiter", func(p *Proc) {
		if v := p.Await(fut); v != "ping" {
			t.Errorf("await = %v, want ping", v)
		}
		ends[1] = p.Now()
	})
	se.Shard(0).At(2*time.Microsecond, func() {
		se.Shard(0).Send(1, 3*time.Microsecond, func(any) { fut.Complete("ping") }, nil)
	})
	end := se.Run()
	if ends[0] != 5*time.Microsecond {
		t.Fatalf("sleeper finished at %v, want 5µs", ends[0])
	}
	if ends[1] != 5*time.Microsecond {
		t.Fatalf("waiter finished at %v, want 5µs (send at 2µs + 3µs delay)", ends[1])
	}
	if end != 5*time.Microsecond {
		t.Fatalf("end = %v, want 5µs", end)
	}
}

// TestShardProcPanicAttribution: a panic inside a shard-hosted process
// surfaces from Run with both the shard id and the process name.
func TestShardProcPanicAttribution(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic from Run")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "shard 1") || !strings.Contains(msg, `process "rank3"`) ||
			!strings.Contains(msg, "boom") {
			t.Fatalf("panic lacks shard/proc attribution: %q", msg)
		}
	}()
	se := NewShardedEngine(2, time.Microsecond)
	se.Shard(1).Go("rank3", func(p *Proc) {
		p.Sleep(time.Microsecond)
		panic("boom")
	})
	se.Run()
}

// TestShardProcDeadlockNamesShard: a shard-hosted process still blocked
// when the engine runs out of events is reported with its hosting shard.
func TestShardProcDeadlockNamesShard(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic from Run")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "stuck (shard 1)") {
			t.Fatalf("deadlock panic lacks shard attribution: %q", msg)
		}
	}()
	se := NewShardedEngine(2, time.Microsecond)
	se.Shard(0).Go("fine", func(p *Proc) { p.Sleep(time.Microsecond) })
	se.Shard(1).Go("stuck", func(p *Proc) { p.Await(NewFuture()) })
	se.Run()
}
