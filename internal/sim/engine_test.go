package sim

import (
	"strings"
	"testing"
	"time"
)

func TestEmptyRun(t *testing.T) {
	e := NewEngine()
	if got := e.Run(); got != 0 {
		t.Fatalf("empty run ended at %v, want 0", got)
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(20*time.Nanosecond, func() { order = append(order, 2) })
	e.At(10*time.Nanosecond, func() { order = append(order, 1) })
	e.At(20*time.Nanosecond, func() { order = append(order, 3) }) // same time: seq order
	e.At(30*time.Nanosecond, func() { order = append(order, 4) })
	end := e.Run()
	if end != 30*time.Nanosecond {
		t.Errorf("end time = %v, want 30ns", end)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.After(time.Microsecond, func() { fired = true })
	e.After(0, func() { tm.Cancel() })
	e.Run()
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(time.Microsecond, func() {})
	})
	e.Run()
}

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at1, at2 time.Duration
	e.Go("p", func(p *Proc) {
		p.Sleep(5 * time.Microsecond)
		at1 = p.Now()
		p.Sleep(7 * time.Microsecond)
		at2 = p.Now()
	})
	e.Run()
	if at1 != 5*time.Microsecond || at2 != 12*time.Microsecond {
		t.Fatalf("clock after sleeps = %v, %v; want 5µs, 12µs", at1, at2)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					trace = append(trace, name)
					p.Sleep(time.Microsecond)
				}
			})
		}
		e.Run()
		return trace
	}
	first := run()
	if len(first) != 9 {
		t.Fatalf("trace length = %d, want 9", len(first))
	}
	for i := 0; i < 50; i++ {
		again := run()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d diverged at step %d: %v vs %v", i, j, first, again)
			}
		}
	}
}

func TestRateDuration(t *testing.T) {
	cases := []struct {
		n    int64
		rate float64
		want time.Duration
	}{
		{0, 100, 0},
		{-5, 100, 0},
		{100, 100e6, time.Microsecond},
		{1, 1e9, time.Nanosecond},
		{1, 2e9, time.Nanosecond}, // rounds up
	}
	for _, c := range cases {
		if got := RateDuration(c.n, c.rate); got != c.want {
			t.Errorf("RateDuration(%d, %g) = %v, want %v", c.n, c.rate, got, c.want)
		}
	}
}

func TestRateDurationPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RateDuration with zero rate did not panic")
		}
	}()
	RateDuration(10, 0)
}

func TestDeadlockDetection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("deadlocked run did not panic")
		}
	}()
	e := NewEngine()
	m := &Mutex{}
	e.Go("holder", func(p *Proc) {
		p.Lock(m)
		// never unlocks
	})
	e.Go("blocked", func(p *Proc) {
		p.Sleep(time.Microsecond)
		p.Lock(m)
	})
	e.Run()
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count == 5 {
			e.Stop()
		}
		e.After(time.Microsecond, tick)
	}
	e.After(0, tick)
	e.Run()
	if count != 5 {
		t.Fatalf("ticked %d times, want 5", count)
	}
}

func TestGoDaemonDoesNotDeadlockOnDrain(t *testing.T) {
	e := NewEngine()
	ch := NewChan(4)
	served := 0
	e.GoDaemon("server", func(p *Proc) {
		for {
			p.Recv(ch)
			served++
		}
	})
	e.Go("client", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Send(ch, i)
			p.Sleep(time.Microsecond)
		}
	})
	e.Run() // must return despite the daemon staying blocked
	if served != 3 {
		t.Fatalf("daemon served %d, want 3", served)
	}
}

func TestPostFromEventContext(t *testing.T) {
	e := NewEngine()
	ch := NewChan(0)
	var got []any
	e.Go("receiver", func(p *Proc) {
		got = append(got, p.Recv(ch))
		got = append(got, p.Recv(ch))
	})
	// Post from timer callbacks (no process context), including beyond the
	// nominal capacity.
	e.After(time.Microsecond, func() { Post(ch, "a") })
	e.After(2*time.Microsecond, func() { Post(ch, "b") })
	e.Run()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v, want [a b]", got)
	}
}

func TestPostBuffersBeyondCapacity(t *testing.T) {
	e := NewEngine()
	ch := NewChan(1)
	for i := 0; i < 5; i++ {
		Post(ch, i)
	}
	if ch.Len() != 5 {
		t.Fatalf("posted 5, buffered %d", ch.Len())
	}
	var sum int
	e.Go("drain", func(p *Proc) {
		for i := 0; i < 5; i++ {
			sum += p.Recv(ch).(int)
		}
	})
	e.Run()
	if sum != 10 {
		t.Fatalf("sum = %d, want 10", sum)
	}
}

func TestAwaitAll(t *testing.T) {
	e := NewEngine()
	futs := []*Future{NewFuture(), NewFuture(), NewFuture()}
	var done time.Duration
	e.Go("waiter", func(p *Proc) {
		p.AwaitAll(futs...)
		done = p.Now()
	})
	for i, f := range futs {
		f := f
		e.After(time.Duration(3-i)*time.Microsecond, func() { f.Complete(nil) })
	}
	e.Run()
	if done != 3*time.Microsecond {
		t.Fatalf("released at %v, want when the slowest future completed (3µs)", done)
	}
}

func TestPanicInProcSurfacesInRun(t *testing.T) {
	e := NewEngine()
	e.Go("boom", func(p *Proc) {
		p.Sleep(time.Microsecond)
		panic("kaboom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("proc panic did not surface in Run")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %v (%T) is not an error", r, r)
		}
		if s := err.Error(); !strings.Contains(s, "kaboom") || !strings.Contains(s, `"boom"`) {
			t.Fatalf("panic message %q lacks context", s)
		}
	}()
	e.Run()
}
