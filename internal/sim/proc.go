package sim

import (
	"fmt"
	"time"
)

// Proc is a cooperative simulated process. A Proc's body runs on its own
// goroutine, but the engine guarantees that at most one process executes at
// a time; a process runs until it blocks on a virtual-time primitive.
//
// All Proc methods must be called from the process's own body.
type Proc struct {
	e      *Engine
	name   string
	resume chan struct{}
	// parked is true while the proc is blocked waiting for an external
	// wake (not a self-scheduled timer). Used to catch double-wakes.
	parked bool
	// daemon processes do not count toward the deadlock check: they are
	// expected to stay blocked forever once the workload has drained
	// (device handlers, DMA engines).
	daemon bool
	// finished is set when the body returns; the deadlock report lists
	// non-daemon procs that never got here.
	finished bool
	// dispatchFn is the cached self-dispatch closure, created once at spawn
	// so Sleep and wake schedule without allocating.
	dispatchFn func()
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.e.now }

// Go spawns a new process. The body starts at the current virtual time,
// after already-scheduled same-time events. Go may be called before Run or
// from within any process or event callback.
func (e *Engine) Go(name string, body func(p *Proc)) *Proc {
	return e.spawn(name, body, false)
}

// GoDaemon spawns a daemon process: one that services requests forever and
// is allowed to still be blocked when the event queue drains (it does not
// trigger the deadlock check). Use it for device handler threads.
func (e *Engine) GoDaemon(name string, body func(p *Proc)) *Proc {
	return e.spawn(name, body, true)
}

func (e *Engine) spawn(name string, body func(p *Proc), daemon bool) *Proc {
	p := &Proc{e: e, name: name, resume: make(chan struct{}), daemon: daemon}
	p.dispatchFn = func() { e.dispatch(p) }
	if !daemon {
		e.nprocs++
	}
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume // wait for first dispatch
		// A panic in a process body is re-raised inside Run so callers
		// (and tests) can observe it on the engine's goroutine.
		defer func() {
			if r := recover(); r != nil {
				e.pendingPanic = &procPanic{proc: p.name, value: r}
			}
			p.finished = true
			if !p.daemon {
				e.nprocs--
			}
			e.yield <- struct{}{} // return control to the engine for good
		}()
		body(p)
	}()
	e.After(0, p.dispatchFn)
	return p
}

// dispatch transfers control to p until it blocks again.
func (e *Engine) dispatch(p *Proc) {
	prev := e.cur
	e.cur = p
	p.resume <- struct{}{}
	<-e.yield
	e.cur = prev
	if pp := e.pendingPanic; pp != nil {
		e.pendingPanic = nil
		panic(fmt.Sprintf("sim: process %q panicked: %v", pp.proc, pp.value))
	}
}

// yieldToEngine blocks the calling process and resumes the engine loop.
// The process will continue when something calls e.dispatch(p) again.
func (p *Proc) yieldToEngine() {
	p.e.yield <- struct{}{}
	<-p.resume
}

// Sleep advances the process's virtual time by d. Negative d is clamped to
// zero; Sleep(0) still yields, letting same-time events run.
func (p *Proc) Sleep(d time.Duration) {
	p.checkCurrent("Sleep")
	p.e.After(d, p.dispatchFn)
	p.yieldToEngine()
}

// park blocks the process until Wake is called on it. It is the building
// block for channels, mutexes and futures.
func (p *Proc) park() {
	p.checkCurrent("park")
	p.parked = true
	p.yieldToEngine()
}

// wake schedules a parked process to resume at the current virtual time.
// Waking a process that is not parked panics: it indicates a bookkeeping bug
// in a synchronization primitive.
func (p *Proc) wake() {
	if !p.parked {
		panic(fmt.Sprintf("sim: wake of non-parked process %q", p.name))
	}
	p.parked = false
	p.e.After(0, p.dispatchFn)
}

func (p *Proc) checkCurrent(op string) {
	if p.e.cur != p {
		panic(fmt.Sprintf("sim: %s called on process %q from outside its body", op, p.name))
	}
}
