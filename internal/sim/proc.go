package sim

import (
	"fmt"
	"time"
)

// Host is a Scheduler that can also run cooperative processes: the
// sequential Engine, one Shard of a ShardedEngine, or a Locale of a Fabric.
// Layers that spawn procs or device daemons (the SCI interconnect, the MPI
// device, shared-memory buses) accept a Host so the same protocol stack
// runs unchanged under either engine. The cooperative contract is per host:
// at most one process of a host executes at any moment, so state confined
// to one host needs no locking even when several hosts (shards) run in
// parallel.
type Host interface {
	Scheduler
	Go(name string, body func(p *Proc)) *Proc
	GoDaemon(name string, body func(p *Proc)) *Proc
}

// procRuntime is the cooperative-process machinery shared by the sequential
// Engine and each Shard of a ShardedEngine: the yield handshake, the
// current-process pointer, and the registry the deadlock report names.
type procRuntime struct {
	yield  chan struct{} // procs signal the runtime here when they block
	cur    *Proc
	nprocs int     // non-daemon procs spawned and not yet finished
	procs  []*Proc // registry of all spawned procs (deadlock reports name them)

	// pendingPanic holds a panic recovered from a process body, re-raised
	// by dispatch on the host's goroutine.
	pendingPanic *procPanic
}

// initProcs prepares the runtime (the yield channel cannot be the zero
// value).
func (rt *procRuntime) initProcs() { rt.yield = make(chan struct{}) }

// procPanic wraps a panic that escaped a process body. It is re-raised as
// the panic value itself so outer recovery layers (the sharded engine's
// window recover) can attribute it to the process by name.
type procPanic struct {
	proc  string
	value any
}

func (pp *procPanic) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", pp.proc, pp.value)
}

// Proc is a cooperative simulated process. A Proc's body runs on its own
// goroutine, but its host guarantees that at most one of its processes
// executes at a time; a process runs until it blocks on a virtual-time
// primitive.
//
// All Proc methods must be called from the process's own body.
type Proc struct {
	rt   *procRuntime
	host Host
	name string

	resume chan struct{}
	// parked is true while the proc is blocked waiting for an external
	// wake (not a self-scheduled timer). Used to catch double-wakes.
	parked bool
	// daemon processes do not count toward the deadlock check: they are
	// expected to stay blocked forever once the workload has drained
	// (device handlers, DMA engines).
	daemon bool
	// finished is set when the body returns; the deadlock report lists
	// non-daemon procs that never got here.
	finished bool
	// dispatchFn is the cached self-dispatch closure, created once at spawn
	// so Sleep and wake schedule without allocating.
	dispatchFn func()
}

// Host returns the host this process runs on (an Engine, a Shard, or a
// Locale-backed host). Use it to schedule events or spawn helper procs on
// the same scheduling domain as p.
func (p *Proc) Host() Host { return p.host }

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time of the process's host.
func (p *Proc) Now() time.Duration { return p.host.Now() }

// Go spawns a new process. The body starts at the current virtual time,
// after already-scheduled same-time events. Go may be called before Run or
// from within any process or event callback.
func (e *Engine) Go(name string, body func(p *Proc)) *Proc {
	return spawnProc(e, &e.procRuntime, name, body, false)
}

// GoDaemon spawns a daemon process: one that services requests forever and
// is allowed to still be blocked when the event queue drains (it does not
// trigger the deadlock check). Use it for device handler threads.
func (e *Engine) GoDaemon(name string, body func(p *Proc)) *Proc {
	return spawnProc(e, &e.procRuntime, name, body, true)
}

func spawnProc(h Host, rt *procRuntime, name string, body func(p *Proc), daemon bool) *Proc {
	p := &Proc{rt: rt, host: h, name: name, resume: make(chan struct{}), daemon: daemon}
	p.dispatchFn = func() { rt.dispatch(p) }
	if !daemon {
		rt.nprocs++
	}
	rt.procs = append(rt.procs, p)
	go func() {
		<-p.resume // wait for first dispatch
		// A panic in a process body is re-raised inside the host's event
		// loop so callers (and tests) can observe it on that goroutine.
		defer func() {
			if r := recover(); r != nil {
				rt.pendingPanic = &procPanic{proc: p.name, value: r}
			}
			p.finished = true
			if !p.daemon {
				rt.nprocs--
			}
			rt.yield <- struct{}{} // return control to the host for good
		}()
		body(p)
	}()
	h.After(0, p.dispatchFn)
	return p
}

// dispatch transfers control to p until it blocks again.
func (rt *procRuntime) dispatch(p *Proc) {
	prev := rt.cur
	rt.cur = p
	p.resume <- struct{}{}
	<-rt.yield
	rt.cur = prev
	if pp := rt.pendingPanic; pp != nil {
		rt.pendingPanic = nil
		panic(pp)
	}
}

// blockedProcs returns the names of the non-daemon processes that have been
// spawned but not finished — the processes a deadlock report must name.
func (rt *procRuntime) blockedProcs() []string {
	var names []string
	for _, p := range rt.procs {
		if !p.daemon && !p.finished {
			names = append(names, p.name)
		}
	}
	return names
}

// yieldToHost blocks the calling process and resumes the host's event loop.
// The process will continue when something calls rt.dispatch(p) again.
func (p *Proc) yieldToHost() {
	p.rt.yield <- struct{}{}
	<-p.resume
}

// Sleep advances the process's virtual time by d. Negative d is clamped to
// zero; Sleep(0) still yields, letting same-time events run.
func (p *Proc) Sleep(d time.Duration) {
	p.checkCurrent("Sleep")
	p.host.After(d, p.dispatchFn)
	p.yieldToHost()
}

// park blocks the process until Wake is called on it. It is the building
// block for channels, mutexes and futures.
func (p *Proc) park() {
	p.checkCurrent("park")
	p.parked = true
	p.yieldToHost()
}

// wake schedules a parked process to resume at the current virtual time.
// Waking a process that is not parked panics: it indicates a bookkeeping bug
// in a synchronization primitive. Synchronization primitives are confined to
// one host: waking a process from another shard would corrupt both heaps.
func (p *Proc) wake() {
	if !p.parked {
		panic(fmt.Sprintf("sim: wake of non-parked process %q", p.name))
	}
	p.parked = false
	p.host.After(0, p.dispatchFn)
}

func (p *Proc) checkCurrent(op string) {
	if p.rt.cur != p {
		panic(fmt.Sprintf("sim: %s called on process %q from outside its body", op, p.name))
	}
}
