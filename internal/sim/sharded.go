// Sharded conservative-parallel discrete-event engine.
//
// A ShardedEngine partitions the simulated machine across worker shards:
// each shard owns its own virtual clock, event heap and freelist and is
// driven by one goroutine. Shards synchronize with a conservative window
// barrier (the synchronous variant of Chandy–Misra null messages): the
// engine's lookahead is the minimum virtual delay any cross-shard
// interaction can have — in this repo, the minimum latency of the topology
// links that cross the shard partition. Every barrier round computes the
// globally earliest pending event E and lets all shards process their local
// events in [E, E+lookahead) in parallel: any cross-shard event generated
// inside the window carries at least the lookahead of delay, so it cannot
// land inside the window, and no shard can ever receive an event in its
// past.
//
// Cross-shard sends are buffered in per-(source, destination) queues and
// exchanged at the barrier. The merge into the destination heap orders
// messages by (time, source shard, source sequence), and each shard's
// intra-window execution is sequential, so a given program produces exactly
// the same event schedule on every run regardless of how the OS schedules
// the worker goroutines. Parallelism changes wall-clock time, never virtual
// outcomes.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

const maxDuration = time.Duration(1<<63 - 1)

// xmsg is one buffered cross-shard event send.
type xmsg struct {
	at  time.Duration
	src int
	seq uint64 // source shard's scheduling sequence at send time
	fn  func(any)
	arg any
}

// Shard is one worker of a ShardedEngine: a private clock, heap and
// freelist. During a window only the shard's own goroutine touches its
// state, so event callbacks run lock-free; between windows only the
// coordinator does. Shard implements Scheduler, Host and Locale: a shard
// can run cooperative Procs, so a full protocol world confined to one
// shard behaves exactly as it would on the sequential Engine.
type Shard struct {
	procRuntime
	id     int
	eng    *ShardedEngine
	now    time.Duration
	seq    uint64
	queue  eventHeap
	free   []*event
	outbox [][]xmsg // per-destination buffers, drained at the barrier
	events uint64   // events executed
	work   chan time.Duration
}

// ID returns the shard's index within its engine.
func (s *Shard) ID() int { return s.id }

// Go spawns a cooperative process hosted on this shard. The process runs
// only inside the shard's windows (on the shard's worker goroutine), so it
// may freely touch shard-confined state; it must never touch another
// shard's state — cross-shard interaction goes through Send.
func (s *Shard) Go(name string, body func(p *Proc)) *Proc {
	return spawnProc(s, &s.procRuntime, name, body, false)
}

// GoDaemon spawns a daemon process hosted on this shard (see
// Engine.GoDaemon).
func (s *Shard) GoDaemon(name string, body func(p *Proc)) *Proc {
	return spawnProc(s, &s.procRuntime, name, body, true)
}

// Now returns the shard's current virtual time (the time of the last event
// it executed).
func (s *Shard) Now() time.Duration { return s.now }

// Events returns the number of events this shard has executed.
func (s *Shard) Events() uint64 { return s.events }

// schedule mirrors Engine.schedule on the shard's private heap.
func (s *Shard) schedule(t time.Duration, fn func(), fnArg func(any), arg any) Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: shard %d scheduling event at %v before now %v", s.id, t, s.now))
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = new(event)
	}
	ev.at, ev.seq, ev.fn, ev.fnArg, ev.arg, ev.canceled = t, s.seq, fn, fnArg, arg, false
	s.seq++
	heap.Push(&s.queue, ev)
	return Timer{ev: ev, gen: ev.gen}
}

func (s *Shard) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.fnArg, ev.arg = nil, nil, nil
	s.free = append(s.free, ev)
}

// At schedules fn at virtual time t on this shard.
func (s *Shard) At(t time.Duration, fn func()) Timer { return s.schedule(t, fn, nil, nil) }

// After schedules fn to run d from now on this shard. Negative d is clamped
// to zero.
func (s *Shard) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now+d, fn, nil, nil)
}

// AfterCall schedules fn(arg) to run d from now on this shard without a
// closure allocation (see Engine.AfterCall).
func (s *Shard) AfterCall(d time.Duration, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now+d, nil, fn, arg)
}

// Send schedules fn(arg) to run d from now on shard dst. A send to the
// shard itself is an ordinary local event with no constraint; a cross-shard
// send must respect the engine's lookahead — the conservative window
// protocol is only correct because no interaction can undercut it — and
// panics otherwise.
func (s *Shard) Send(dst int, d time.Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	if dst == s.id {
		s.schedule(s.now+d, nil, fn, arg)
		return
	}
	if dst < 0 || dst >= len(s.outbox) {
		panic(fmt.Sprintf("sim: shard %d sending to unknown shard %d", s.id, dst))
	}
	if d < s.eng.lookahead {
		panic(fmt.Sprintf("sim: cross-shard send %d->%d with delay %v below lookahead %v",
			s.id, dst, d, s.eng.lookahead))
	}
	s.outbox[dst] = append(s.outbox[dst], xmsg{at: s.now + d, src: s.id, seq: s.seq, fn: fn, arg: arg})
	s.seq++
}

// head returns the time of the shard's earliest pending live event, or
// maxDuration if the heap is empty.
func (s *Shard) head() time.Duration {
	for s.queue.Len() > 0 {
		ev := s.queue[0]
		if !ev.canceled {
			return ev.at
		}
		heap.Pop(&s.queue)
		s.recycle(ev)
	}
	return maxDuration
}

// window runs runWindow, converting a panic that escapes an event callback
// into a recorded failure (first one wins) for Run to re-raise on its own
// goroutine. A panic that originated inside a hosted process body arrives
// as a *procPanic, preserving the process name for attribution.
func (s *Shard) window(until time.Duration) {
	defer func() {
		if r := recover(); r != nil {
			sp := &shardPanic{shard: s.id, value: r}
			if pp, ok := r.(*procPanic); ok {
				sp.proc, sp.value = pp.proc, pp.value
			}
			s.eng.panicMu.Lock()
			if s.eng.panicked == nil {
				s.eng.panicked = sp
			}
			s.eng.panicMu.Unlock()
			s.eng.stopped.Store(true)
		}
	}()
	s.runWindow(until)
}

// runWindow executes the shard's local events strictly before until.
func (s *Shard) runWindow(until time.Duration) {
	for s.queue.Len() > 0 {
		ev := s.queue[0]
		if ev.at >= until {
			return
		}
		heap.Pop(&s.queue)
		if ev.canceled {
			s.recycle(ev)
			continue
		}
		s.now = ev.at
		fn, fnArg, arg := ev.fn, ev.fnArg, ev.arg
		s.recycle(ev)
		s.events++
		if fnArg != nil {
			fnArg(arg)
		} else {
			fn()
		}
		if s.eng.stopped.Load() {
			return
		}
	}
}

// ShardedEngine is the conservative-parallel counterpart of Engine. Create
// one with NewShardedEngine, populate the shards (Shard/At/Send), then call
// Run once. The sequential Engine remains the right tool for small runs and
// is the differential-testing oracle for this one.
type ShardedEngine struct {
	shards    []*Shard
	lookahead time.Duration
	stopped   atomic.Bool
	windows   uint64
	merge     []xmsg // coordinator scratch for barrier merges

	panicMu  sync.Mutex
	panicked *shardPanic // first panic recovered from a worker, re-raised by Run
}

// shardPanic wraps a panic that escaped an event callback on a shard. proc
// is non-empty when the panic escaped the body of a hosted process.
type shardPanic struct {
	shard int
	proc  string
	value any
}

// NewShardedEngine returns an engine with nshards empty shards and the
// given conservative lookahead: the minimum virtual delay of any
// cross-shard interaction, typically flow.MinLatency of the topology links
// that cross the shard partition. The lookahead must be positive — a
// zero-lookahead partition cannot run conservatively in parallel; use the
// sequential Engine instead.
func NewShardedEngine(nshards int, lookahead time.Duration) *ShardedEngine {
	if nshards < 1 {
		panic("sim: sharded engine needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: sharded engine needs a positive lookahead")
	}
	se := &ShardedEngine{lookahead: lookahead}
	se.shards = make([]*Shard, nshards)
	for i := range se.shards {
		s := &Shard{
			id:     i,
			eng:    se,
			outbox: make([][]xmsg, nshards),
			work:   make(chan time.Duration),
		}
		s.initProcs()
		se.shards[i] = s
	}
	return se
}

// Shards returns the number of shards.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Shard returns shard i.
func (se *ShardedEngine) Shard(i int) *Shard { return se.shards[i] }

// Lookahead returns the engine's conservative lookahead.
func (se *ShardedEngine) Lookahead() time.Duration { return se.lookahead }

// Windows returns the number of barrier rounds Run has executed.
func (se *ShardedEngine) Windows() uint64 { return se.windows }

// Events returns the total events executed across all shards.
func (se *ShardedEngine) Events() uint64 {
	var n uint64
	for _, s := range se.shards {
		n += s.events
	}
	return n
}

// Stop makes Run return once every shard finishes its current event.
func (se *ShardedEngine) Stop() { se.stopped.Store(true) }

// Run dispatches events until every shard's queue is empty or Stop is
// called, and returns the final virtual time (the latest event time any
// shard reached). Events may only be scheduled onto a shard before Run or
// from callbacks executing on that shard; cross-shard scheduling goes
// through Send.
func (se *ShardedEngine) Run() time.Duration {
	n := len(se.shards)
	done := make(chan struct{}, n)
	for _, s := range se.shards {
		go func(s *Shard) {
			for until := range s.work {
				s.window(until)
				done <- struct{}{}
			}
		}(s)
	}
	for !se.stopped.Load() {
		// Globally earliest pending event; nothing pending means the
		// simulation has drained.
		earliest := maxDuration
		for _, s := range se.shards {
			if h := s.head(); h < earliest {
				earliest = h
			}
		}
		if earliest == maxDuration {
			break
		}
		until := earliest + se.lookahead
		// Parallel phase: every shard runs its window.
		for _, s := range se.shards {
			s.work <- until
		}
		for range se.shards {
			<-done
		}
		se.windows++
		if se.panicked != nil {
			break
		}
		// Barrier phase: exchange buffered cross-shard events.
		se.exchange()
	}
	for _, s := range se.shards {
		close(s.work)
	}
	if p := se.panicked; p != nil {
		// Re-raise on the caller's goroutine: a panic that escapes an event
		// callback on a worker would otherwise kill the whole process with no
		// chance for the caller (or a test) to observe it. A panic from a
		// hosted process names the process (an MPI rank) and the shard.
		if p.proc != "" {
			panic(fmt.Sprintf("sim: shard %d: process %q panicked: %v", p.shard, p.proc, p.value))
		}
		panic(fmt.Sprintf("sim: shard %d: %v", p.shard, p.value))
	}
	var end time.Duration
	if !se.stopped.Load() {
		// Deadlock check, mirroring Engine.Run: the queues drained but some
		// hosted non-daemon process never finished — nothing can wake it.
		blocked := 0
		var names []string
		for _, s := range se.shards {
			if s.nprocs > 0 {
				blocked += s.nprocs
				for _, nm := range s.blockedProcs() {
					names = append(names, fmt.Sprintf("%s (shard %d)", nm, s.id))
				}
			}
		}
		if blocked > 0 {
			panic(fmt.Sprintf("sim: deadlock: %d process(es) still blocked with no pending events: %s",
				blocked, blockedProcList(names)))
		}
	}
	for _, s := range se.shards {
		if s.now > end {
			end = s.now
		}
	}
	return end
}

// exchange drains every shard's outboxes into the destination heaps. For
// each destination the incoming messages are ordered by (time, source
// shard, source sequence) before being assigned destination sequence
// numbers, so the merged schedule does not depend on goroutine timing.
func (se *ShardedEngine) exchange() {
	for dst, d := range se.shards {
		in := se.merge[:0]
		for _, src := range se.shards {
			if out := src.outbox[dst]; len(out) > 0 {
				in = append(in, out...)
				src.outbox[dst] = out[:0]
			}
		}
		if len(in) == 0 {
			continue
		}
		sort.Slice(in, func(i, j int) bool {
			if in[i].at != in[j].at {
				return in[i].at < in[j].at
			}
			if in[i].src != in[j].src {
				return in[i].src < in[j].src
			}
			return in[i].seq < in[j].seq
		})
		for i := range in {
			d.schedule(in[i].at, nil, in[i].fn, in[i].arg)
			in[i].fn, in[i].arg = nil, nil
		}
		se.merge = in[:0]
	}
}
