package sim

import "time"

// Virtual-time synchronization primitives. All of them are deterministic:
// waiters are queued and released in FIFO order.

// Future is a one-shot completion event carrying an optional value.
type Future struct {
	done      bool
	value     any
	waiters   []*Proc
	callbacks []func(any)
}

// NewFuture returns an incomplete future.
func NewFuture() *Future { return &Future{} }

// Done reports whether the future has completed.
func (f *Future) Done() bool { return f.done }

// Value returns the value passed to Complete, or nil if not yet complete.
func (f *Future) Value() any { return f.value }

// Complete marks the future done and wakes all waiters. Completing twice
// panics.
func (f *Future) Complete(v any) {
	if f.done {
		panic("sim: future completed twice")
	}
	f.done = true
	f.value = v
	for _, p := range f.waiters {
		p.wake()
	}
	f.waiters = nil
	for _, fn := range f.callbacks {
		fn(v)
	}
	f.callbacks = nil
}

// OnComplete registers fn to run synchronously (in registration order) when
// the future completes; if it already has, fn runs immediately. It is the
// event-driven counterpart of Await for code with no process context —
// shard-resident actors of the sharded engine cannot park.
func (f *Future) OnComplete(fn func(any)) {
	if f.done {
		fn(f.value)
		return
	}
	f.callbacks = append(f.callbacks, fn)
}

// Await blocks p until the future completes and returns its value.
func (p *Proc) Await(f *Future) any {
	if f.done {
		return f.value
	}
	f.waiters = append(f.waiters, p)
	p.park()
	return f.value
}

// AwaitTimeout blocks p until the future completes or d elapses. It
// returns (value, true) on completion and (nil, false) on timeout; in the
// latter case p is no longer registered as a waiter.
func (p *Proc) AwaitTimeout(f *Future, d time.Duration) (any, bool) {
	if f.done {
		return f.value, true
	}
	f.waiters = append(f.waiters, p)
	timedOut := false
	t := p.host.After(d, func() {
		// Complete clears f.waiters before waking, so if the future has
		// fired we will not find p here and must not wake it again.
		for i, w := range f.waiters {
			if w == p {
				f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
				timedOut = true
				p.wake()
				return
			}
		}
	})
	p.park()
	if timedOut {
		return nil, false
	}
	t.Cancel()
	return f.value, true
}

// AwaitAll blocks p until every future in fs has completed.
func (p *Proc) AwaitAll(fs ...*Future) {
	for _, f := range fs {
		p.Await(f)
	}
}

// Chan is a virtual-time channel with an optional buffer. An unbuffered
// channel (capacity 0) rendezvous: Send blocks until a receiver takes the
// value.
type Chan struct {
	cap     int
	buf     []any
	senders []chanWaiter // blocked senders with their values
	recvers []chanWaiter // blocked receivers
}

type chanWaiter struct {
	p   *Proc
	val any  // senders: value to deliver; receivers: filled in on handoff
	box *any // receivers: where to deposit the value
}

// NewChan returns a channel with the given buffer capacity.
func NewChan(capacity int) *Chan {
	if capacity < 0 {
		panic("sim: negative channel capacity")
	}
	return &Chan{cap: capacity}
}

// Len returns the number of buffered values.
func (c *Chan) Len() int { return len(c.buf) }

// Send delivers v on the channel, blocking in virtual time if no buffer
// space and no waiting receiver exists.
func (p *Proc) Send(c *Chan, v any) {
	if len(c.recvers) > 0 {
		w := c.recvers[0]
		c.recvers = c.recvers[1:]
		*w.box = v
		w.p.wake()
		return
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	c.senders = append(c.senders, chanWaiter{p: p, val: v})
	p.park()
}

// Recv takes the next value from the channel, blocking in virtual time
// until one is available.
func (p *Proc) Recv(c *Chan) any {
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[1:]
		// A blocked sender can now occupy the freed buffer slot.
		if len(c.senders) > 0 {
			w := c.senders[0]
			c.senders = c.senders[1:]
			c.buf = append(c.buf, w.val)
			w.p.wake()
		}
		return v
	}
	if len(c.senders) > 0 {
		w := c.senders[0]
		c.senders = c.senders[1:]
		w.p.wake()
		return w.val
	}
	var box any
	c.recvers = append(c.recvers, chanWaiter{p: p, box: &box})
	p.park()
	return box
}

// Post delivers v on the channel without a sending process. It never
// blocks: if no receiver is waiting, the value is buffered even beyond the
// channel's nominal capacity. Post is intended for event callbacks (timer
// and delivery events), which have no process context.
func Post(c *Chan, v any) {
	if len(c.recvers) > 0 {
		w := c.recvers[0]
		c.recvers = c.recvers[1:]
		*w.box = v
		w.p.wake()
		return
	}
	c.buf = append(c.buf, v)
}

// TryRecv takes a value if one is immediately available without blocking.
func (p *Proc) TryRecv(c *Chan) (any, bool) {
	if len(c.buf) > 0 || len(c.senders) > 0 {
		return p.Recv(c), true
	}
	return nil, false
}

// RecvTimeout takes the next value from the channel, giving up after d of
// virtual time. It returns (value, true) on success and (nil, false) on
// timeout; in the latter case p is no longer queued as a receiver.
func (p *Proc) RecvTimeout(c *Chan, d time.Duration) (any, bool) {
	if v, ok := p.TryRecv(c); ok {
		return v, true
	}
	var box any
	c.recvers = append(c.recvers, chanWaiter{p: p, box: &box})
	timedOut := false
	t := p.host.After(d, func() {
		// Send/Post remove the waiter before waking, so finding our box
		// here means no value was handed off.
		for i := range c.recvers {
			if c.recvers[i].box == &box {
				c.recvers = append(c.recvers[:i], c.recvers[i+1:]...)
				timedOut = true
				p.wake()
				return
			}
		}
	})
	p.park()
	if timedOut {
		return nil, false
	}
	t.Cancel()
	return box, true
}

// Mutex is a virtual-time mutual-exclusion lock with FIFO waiters.
type Mutex struct {
	held    bool
	waiters []*Proc
}

// Lock acquires m, blocking p in virtual time if it is held.
func (p *Proc) Lock(m *Mutex) {
	if !m.held {
		m.held = true
		return
	}
	m.waiters = append(m.waiters, p)
	p.park()
	// Ownership is transferred directly by Unlock; held stays true.
}

// TryLock acquires m if it is free, without blocking.
func (m *Mutex) TryLock() bool {
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Unlock releases m, handing it to the oldest waiter if any.
func (p *Proc) Unlock(m *Mutex) {
	if !m.held {
		panic("sim: unlock of unlocked mutex")
	}
	if len(m.waiters) > 0 {
		next := m.waiters[0]
		m.waiters = m.waiters[1:]
		next.wake()
		return
	}
	m.held = false
}

// Barrier blocks a fixed-size party of processes until all have arrived,
// then releases them together. It is reusable (cyclic).
type Barrier struct {
	parties int
	waiting []*Proc
}

// NewBarrier returns a barrier for n parties. n must be positive.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier requires at least one party")
	}
	return &Barrier{parties: n}
}

// Arrive blocks p until all parties have arrived at the barrier.
func (p *Proc) Arrive(b *Barrier) {
	if len(b.waiting)+1 == b.parties {
		for _, w := range b.waiting {
			w.wake()
		}
		b.waiting = b.waiting[:0]
		return
	}
	b.waiting = append(b.waiting, p)
	p.park()
}

// WaitGroup counts outstanding work items in virtual time.
type WaitGroup struct {
	count   int
	waiters []*Proc
}

// Add increments the counter by n (n may be negative, like sync.WaitGroup).
func (wg *WaitGroup) Add(n int) {
	wg.count += n
	if wg.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.count == 0 {
		for _, w := range wg.waiters {
			w.wake()
		}
		wg.waiters = nil
	}
}

// DoneOne decrements the counter by one.
func (wg *WaitGroup) DoneOne() { wg.Add(-1) }

// WaitFor blocks p until the counter reaches zero.
func (p *Proc) WaitFor(wg *WaitGroup) {
	if wg.count == 0 {
		return
	}
	wg.waiters = append(wg.waiters, p)
	p.park()
}
