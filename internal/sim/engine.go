// Package sim implements a deterministic discrete-event simulation engine
// with cooperative, virtual-time processes.
//
// The engine owns a virtual clock and a priority queue of events. Processes
// are goroutines, but exactly one of them (or the engine itself) runs at any
// moment: a process executes until it blocks on a virtual-time primitive
// (Sleep, channel operation, mutex, future, ...), at which point control
// returns to the engine, which dispatches the next event. Ties in the event
// queue are broken by a monotonically increasing sequence number, so a given
// program produces exactly the same schedule on every run.
//
// Virtual time is represented as time.Duration since the start of the
// simulation. No wall-clock time is ever consulted.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"strings"
	"time"
)

// Scheduler is the event-scheduling surface shared by the sequential Engine
// and the shards of a ShardedEngine. Layers that only need a virtual clock
// and timers (the flow network, device models) accept a Scheduler so the
// same code runs under either engine.
type Scheduler interface {
	Now() time.Duration
	At(t time.Duration, fn func()) Timer
	After(d time.Duration, fn func()) Timer
	AfterCall(d time.Duration, fn func(any), arg any) Timer
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	procRuntime
	now    time.Duration
	seq    uint64
	queue  eventHeap
	free   []*event // recycled events (hot paths schedule without allocating)
	events uint64   // events dispatched by Run

	// Stopped is set by Stop; Run returns as soon as it is observed.
	stopped bool
}

// NewEngine returns an empty simulation at virtual time zero.
func NewEngine() *Engine {
	e := &Engine{}
	e.initProcs()
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Events returns the number of events Run has dispatched so far.
func (e *Engine) Events() uint64 { return e.events }

// event is a scheduled callback. Events are recycled through the engine's
// freelist; gen distinguishes a live incarnation from a recycled one so a
// stale Timer cannot cancel an unrelated later event.
type event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	fnArg    func(any) // set (with arg) instead of fn by AtCall/AfterCall
	arg      any
	index    int
	canceled bool
	gen      uint64
}

// Timer is a handle to a scheduled event that can be canceled. It is a
// small value; the zero Timer is valid and Cancel on it is a no-op.
type Timer struct {
	ev  *event
	gen uint64
}

// Cancel prevents the timer's callback from running. Canceling an
// already-fired or already-canceled timer is a no-op.
func (t Timer) Cancel() {
	if t.ev != nil && t.ev.gen == t.gen {
		t.ev.canceled = true
	}
}

// schedule grabs an event (from the freelist when possible) and queues it.
func (e *Engine) schedule(t time.Duration, fn func(), fnArg func(any), arg any) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = new(event)
	}
	ev.at, ev.seq, ev.fn, ev.fnArg, ev.arg, ev.canceled = t, e.seq, fn, fnArg, arg, false
	e.seq++
	heap.Push(&e.queue, ev)
	return Timer{ev: ev, gen: ev.gen}
}

// recycle invalidates outstanding Timers for ev and returns it to the
// freelist.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.fnArg, ev.arg = nil, nil, nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at virtual time t. Scheduling in the past (t before
// Now) panics: it would corrupt causality.
func (e *Engine) At(t time.Duration, fn func()) Timer {
	return e.schedule(t, fn, nil, nil)
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.schedule(e.now+d, fn, nil, nil)
}

// AfterCall schedules fn(arg) to run d from now. It exists for hot paths:
// passing the argument explicitly instead of closing over it lets callers
// schedule with a shared top-level function and avoid a closure allocation
// per event. Negative d is clamped to zero.
func (e *Engine) AfterCall(d time.Duration, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return e.schedule(e.now+d, nil, fn, arg)
}

// Stop makes Run return after the currently dispatched event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events until the queue is empty or Stop is called. It
// returns the final virtual time. Run panics if any spawned process is still
// blocked when the event queue drains (deadlock: nothing can ever wake it).
func (e *Engine) Run() time.Duration {
	for e.queue.Len() > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*event)
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		// Detach the callback and recycle before invoking it: the callback
		// may schedule new events, which can then reuse this slot.
		fn, fnArg, arg := ev.fn, ev.fnArg, ev.arg
		e.recycle(ev)
		e.events++
		if fnArg != nil {
			fnArg(arg)
		} else {
			fn()
		}
	}
	if !e.stopped && e.nprocs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) still blocked at %v with no pending events: %s",
			e.nprocs, e.now, blockedProcList(e.BlockedProcs())))
	}
	return e.now
}

// BlockedProcs returns the names of the non-daemon processes that have been
// spawned but not finished — the processes a deadlock report must name.
func (e *Engine) BlockedProcs() []string { return e.blockedProcs() }

// blockedProcList renders a deadlock name list, capped so a 512-node
// deadlock stays readable.
func blockedProcList(names []string) string {
	const maxNamed = 16
	if len(names) == 0 {
		return "(unknown)"
	}
	shown := names
	if len(shown) > maxNamed {
		shown = shown[:maxNamed]
	}
	s := strings.Join(shown, ", ")
	if extra := len(names) - len(shown); extra > 0 {
		s += fmt.Sprintf(", ... (+%d more)", extra)
	}
	return s
}

// RateDuration returns the virtual time needed to move n bytes at rate
// bytes/second, rounded up to the next nanosecond. A non-positive rate
// panics: it would mean an infinite transfer.
func RateDuration(n int64, rate float64) time.Duration {
	if n <= 0 {
		return 0
	}
	if rate <= 0 {
		panic("sim: non-positive rate")
	}
	s := float64(n) / rate
	ns := math.Ceil(s * 1e9)
	return time.Duration(ns)
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
