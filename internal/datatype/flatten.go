package datatype

import (
	"fmt"
	"strings"
)

// This file builds the direct_pack_ff representation (paper §3.3.1): each
// datatype leaf (a contiguous run of basic elements) gets a compact stack
// describing its repeat pattern. A stack level holds a replication count
// and the byte distance between repetitions ("the extent of the data
// including a stride between items"). After construction the stacks are
// merged: trivial levels (count 1) are deleted, adjacent repetitions are
// collapsed into bigger blocks, and contiguous sibling leaves with equal
// stacks are fused.

// Level is one replication level of a leaf's stack, outermost first.
type Level struct {
	// Count is the number of repetitions at this level.
	Count int64
	// Stride is the byte distance between consecutive repetitions in the
	// user buffer.
	Stride int64
	// Step is the number of packed bytes contributed by one index
	// increment at this level (leaf size times the product of all inner
	// counts). It lets FindPosition run in O(depth).
	Step int64
}

// Leaf describes one contiguous basic block and its repeat pattern.
type Leaf struct {
	// Size is the contiguous byte count of the block.
	Size int64
	// First is the user-buffer offset of the block's first occurrence.
	First int64
	// Stack is the repeat pattern, outermost level first. An empty stack
	// means the leaf occurs exactly once.
	Stack []Level
	// Total is the number of packed bytes this leaf contributes per type
	// instance (Size times the product of all level counts).
	Total int64
}

// Copies returns the total number of occurrences of the leaf.
func (l *Leaf) Copies() int64 {
	n := int64(1)
	for _, lv := range l.Stack {
		n *= lv.Count
	}
	return n
}

// Flat is the committed flattened representation of a datatype.
type Flat struct {
	// Leaves in definition order.
	Leaves []Leaf
	// Size is the packed size of one type instance.
	Size int64
	// Extent is the type extent (spacing of consecutive instances).
	Extent int64
	// Depth is the maximum stack depth (the D in the paper's O(N)+O(D)
	// bound for find_position).
	Depth int
}

// flatten builds the representation for one instance of t.
func (t *Type) flatten() *Flat {
	f := &Flat{Size: t.size, Extent: t.Extent()}
	t.emit(f, 0, nil)
	f.mergeLeaves()
	f.finalize()
	return f
}

// emit walks the constructor tree, accumulating stack levels, and appends
// leaves for basic runs. base is the user-buffer offset of the current
// instance origin.
func (t *Type) emit(f *Flat, base int64, stack []Level) {
	switch t.kind {
	case KindBasic:
		if t.size > 0 {
			f.addLeaf(t.size, base, stack)
		}
	case KindContiguous:
		if t.count == 0 || t.elem.size == 0 {
			return
		}
		t.elem.emit(f, base, push(stack, int64(t.count), t.elem.Extent()))
	case KindVector, KindHvector:
		if t.count == 0 || t.blocklen == 0 || t.elem.size == 0 {
			return
		}
		s := push(stack, int64(t.count), t.stride)
		t.elem.emit(f, base, push(s, int64(t.blocklen), t.elem.Extent()))
	case KindIndexed, KindHindexed:
		for i, bl := range t.blocklens {
			if bl == 0 || t.elem.size == 0 {
				continue
			}
			t.elem.emit(f, base+t.displs[i], push(stack, int64(bl), t.elem.Extent()))
		}
	case KindStruct:
		for _, fl := range t.fields {
			if fl.Blocklen == 0 || fl.Type.size == 0 {
				continue
			}
			fl.Type.emit(f, base+fl.Disp, push(stack, int64(fl.Blocklen), fl.Type.Extent()))
		}
	default:
		panic(fmt.Sprintf("datatype: cannot flatten kind %v", t.kind))
	}
}

// push appends a level to a copy of the stack (the original must not be
// mutated: siblings share prefixes).
func push(stack []Level, count, stride int64) []Level {
	out := make([]Level, len(stack), len(stack)+1)
	copy(out, stack)
	return append(out, Level{Count: count, Stride: stride})
}

// addLeaf records a basic run and immediately applies the per-leaf merge
// rules: drop count-1 levels, collapse adjacent innermost repetitions.
func (f *Flat) addLeaf(size, first int64, stack []Level) {
	// Drop trivial levels.
	merged := make([]Level, 0, len(stack))
	for _, lv := range stack {
		if lv.Count > 1 {
			merged = append(merged, lv)
		}
	}
	// Collapse innermost levels whose repetitions are contiguous.
	for len(merged) > 0 {
		inner := merged[len(merged)-1]
		if inner.Stride != size {
			break
		}
		size *= inner.Count
		merged = merged[:len(merged)-1]
	}
	f.Leaves = append(f.Leaves, Leaf{Size: size, First: first, Stack: merged})
}

// mergeLeaves fuses consecutive leaves that form one contiguous block with
// identical repeat patterns (e.g. the int and char[] members of the paper's
// example struct).
func (f *Flat) mergeLeaves() {
	if len(f.Leaves) < 2 {
		return
	}
	out := f.Leaves[:1]
	for _, l := range f.Leaves[1:] {
		prev := &out[len(out)-1]
		if prev.First+prev.Size == l.First && stacksEqual(prev.Stack, l.Stack) {
			// Contiguous sibling with the same pattern: only fuse when the
			// combined block still fits under the innermost stride.
			if fits(prev.Stack, prev.Size+l.Size) {
				prev.Size += l.Size
				// Re-collapse: the grown block may now fill its innermost
				// level completely.
				for len(prev.Stack) > 0 && prev.Stack[len(prev.Stack)-1].Stride == prev.Size {
					prev.Size *= prev.Stack[len(prev.Stack)-1].Count
					prev.Stack = prev.Stack[:len(prev.Stack)-1]
				}
				continue
			}
		}
		out = append(out, l)
	}
	f.Leaves = out
}

func stacksEqual(a, b []Level) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Count != b[i].Count || a[i].Stride != b[i].Stride {
			return false
		}
	}
	return true
}

// fits reports whether a block of the given size can repeat under the
// innermost level without overlapping the next repetition.
func fits(stack []Level, size int64) bool {
	if len(stack) == 0 {
		return true
	}
	return size <= stack[len(stack)-1].Stride
}

// finalize computes Total, per-level Steps and Depth.
func (f *Flat) finalize() {
	f.Depth = 0
	for i := range f.Leaves {
		l := &f.Leaves[i]
		step := l.Size
		for j := len(l.Stack) - 1; j >= 0; j-- {
			l.Stack[j].Step = step
			step *= l.Stack[j].Count
		}
		l.Total = step
		if len(l.Stack) > f.Depth {
			f.Depth = len(l.Stack)
		}
	}
	var sum int64
	for i := range f.Leaves {
		sum += f.Leaves[i].Total
	}
	if sum != f.Size {
		panic(fmt.Sprintf("datatype: flattening lost data: leaves carry %d bytes, type has %d", sum, f.Size))
	}
}

// Describe renders the flattened representation in the style of the
// paper's figure 5: one line per leaf with its contiguous size, first
// offset and repeat-pattern stack.
func (f *Flat) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flat: size=%d extent=%d depth=%d\n", f.Size, f.Extent, f.Depth)
	for i := range f.Leaves {
		l := &f.Leaves[i]
		fmt.Fprintf(&b, "  leaf %d: %dB @ %d", i, l.Size, l.First)
		if len(l.Stack) == 0 {
			b.WriteString(" (once)")
		}
		for _, lv := range l.Stack {
			fmt.Fprintf(&b, " x%d(stride %d)", lv.Count, lv.Stride)
		}
		fmt.Fprintf(&b, " = %dB\n", l.Total)
	}
	return b.String()
}

// Fingerprint returns a hash of the flattened structure (leaf sizes,
// offsets and repeat patterns). Two types with equal fingerprints produce
// identical leaf-major linearizations, which is what the rendezvous
// protocol checks before enabling direct_pack_ff on both sides.
func (f *Flat) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(f.Leaves)))
	for i := range f.Leaves {
		l := &f.Leaves[i]
		mix(uint64(l.Size))
		mix(uint64(l.First))
		mix(uint64(len(l.Stack)))
		for _, lv := range l.Stack {
			mix(uint64(lv.Count))
			mix(uint64(lv.Stride))
		}
	}
	return h
}

// Position identifies a byte offset within the leaf-major linearization of
// one type instance.
type Position struct {
	// LeafIndex is the leaf the offset falls into.
	LeafIndex int
	// Index holds the per-level iteration indices (outermost first).
	Index []int64
	// Rem is the byte offset within the current block.
	Rem int64
}

// FindPosition locates the packed byte offset off within one instance's
// linearization: O(number of leaves) + O(depth), the paper's bound for
// resuming a partial pack. off must be in [0, Size].
func (f *Flat) FindPosition(off int64) Position {
	var pos Position
	idx := make([]int64, f.Depth)
	pos.LeafIndex, pos.Rem = f.FindPositionInto(off, idx)
	if pos.LeafIndex < len(f.Leaves) {
		pos.Index = idx[:len(f.Leaves[pos.LeafIndex].Stack)]
	}
	return pos
}

// FindPositionInto is the allocation-free form of FindPosition: it decodes
// the packed offset into a caller-owned odometer slice (len(idx) must be at
// least f.Depth) and returns the leaf index and in-block remainder. Odometer
// entries beyond the found leaf's stack depth are zeroed, so the slice can
// be handed directly to a leaf-major iterator. When off == Size the returned
// leaf index is len(f.Leaves).
func (f *Flat) FindPositionInto(off int64, idx []int64) (leafIndex int, rem int64) {
	if off < 0 || off > f.Size {
		panic(fmt.Sprintf("datatype: position %d outside packed size %d", off, f.Size))
	}
	for j := range idx {
		idx[j] = 0
	}
	if off == f.Size {
		return len(f.Leaves), 0
	}
	for i := range f.Leaves {
		l := &f.Leaves[i]
		if off >= l.Total {
			off -= l.Total
			continue
		}
		for j := range l.Stack {
			idx[j] = off / l.Stack[j].Step
			off -= idx[j] * l.Stack[j].Step
		}
		return i, off
	}
	panic("datatype: FindPosition fell off the leaf list") // unreachable: totals sum to Size
}
