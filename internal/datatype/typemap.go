package datatype

// Block is one contiguous byte range of a type's data in the user buffer.
type Block struct {
	Off int64
	Len int64
}

// TypeMap expands the type into its full list of contiguous byte ranges in
// definition order (the MPI "type map", with basic elements fused into
// runs). It is exponential in nesting depth by nature and intended for
// verification and small tooling, not for the data path — the data path
// uses the flattened representation.
func (t *Type) TypeMap() []Block {
	var blocks []Block
	t.expand(0, &blocks)
	return fuse(blocks)
}

func (t *Type) expand(base int64, out *[]Block) {
	switch t.kind {
	case KindBasic:
		if t.size > 0 {
			*out = append(*out, Block{Off: base, Len: t.size})
		}
	case KindContiguous:
		for i := 0; i < t.count; i++ {
			t.elem.expand(base+int64(i)*t.elem.Extent(), out)
		}
	case KindVector, KindHvector:
		for i := 0; i < t.count; i++ {
			start := base + int64(i)*t.stride
			for j := 0; j < t.blocklen; j++ {
				t.elem.expand(start+int64(j)*t.elem.Extent(), out)
			}
		}
	case KindIndexed, KindHindexed:
		for i, bl := range t.blocklens {
			start := base + t.displs[i]
			for j := 0; j < bl; j++ {
				t.elem.expand(start+int64(j)*t.elem.Extent(), out)
			}
		}
	case KindStruct:
		for _, f := range t.fields {
			start := base + f.Disp
			for j := 0; j < f.Blocklen; j++ {
				f.Type.expand(start+int64(j)*f.Type.Extent(), out)
			}
		}
	}
}

// Signature returns a hash of the type signature — the sequence of basic
// type sizes in definition order, independent of displacements and gaps —
// and whether the signature consists purely of single-byte elements.
// MPI requires matching send/receive signatures; the runtime verifies the
// hash at delivery time, treating pure-byte signatures as wildcards (the
// near-universal raw-buffer idiom). The result is cached after the first
// call.
func (t *Type) Signature() (hash uint64, byteOnly bool) {
	if t.sigDone {
		return t.sig, t.sigByteOnly
	}
	h := uint64(14695981039346656037)
	byteOnly = true
	t.signature(&h, &byteOnly)
	t.sig, t.sigByteOnly, t.sigDone = h, byteOnly, true
	return h, byteOnly
}

func (t *Type) signature(h *uint64, byteOnly *bool) {
	switch t.kind {
	case KindBasic:
		if t.size != 1 {
			*byteOnly = false
		}
		*h ^= uint64(t.size)
		*h *= prime64sig
	case KindContiguous:
		for i := 0; i < t.count; i++ {
			t.elem.signature(h, byteOnly)
		}
	case KindVector, KindHvector:
		for i := 0; i < t.count; i++ {
			for j := 0; j < t.blocklen; j++ {
				t.elem.signature(h, byteOnly)
			}
		}
	case KindIndexed, KindHindexed:
		for _, bl := range t.blocklens {
			for j := 0; j < bl; j++ {
				t.elem.signature(h, byteOnly)
			}
		}
	case KindStruct:
		for _, f := range t.fields {
			for j := 0; j < f.Blocklen; j++ {
				f.Type.signature(h, byteOnly)
			}
		}
	}
}

const prime64sig = 1099511628211

// fuse merges adjacent blocks.
func fuse(blocks []Block) []Block {
	if len(blocks) == 0 {
		return blocks
	}
	out := blocks[:1]
	for _, b := range blocks[1:] {
		last := &out[len(out)-1]
		if last.Off+last.Len == b.Off {
			last.Len += b.Len
			continue
		}
		out = append(out, b)
	}
	return out
}
