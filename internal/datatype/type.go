// Package datatype implements MPI derived datatypes: basic types plus the
// constructors contiguous, vector, hvector, indexed, hindexed and struct,
// with the tree representation used by MPICH and the flattened
// leaf-list-plus-stack representation built at commit time for the
// direct_pack_ff algorithm (paper §3.1, §3.3, figures 3 and 5).
package datatype

import (
	"fmt"
	"strings"
)

// Kind enumerates the type constructors.
type Kind int

// The MPI type constructors.
const (
	KindBasic Kind = iota
	KindContiguous
	KindVector
	KindHvector
	KindIndexed
	KindHindexed
	KindStruct
)

func (k Kind) String() string {
	switch k {
	case KindBasic:
		return "basic"
	case KindContiguous:
		return "contiguous"
	case KindVector:
		return "vector"
	case KindHvector:
		return "hvector"
	case KindIndexed:
		return "indexed"
	case KindHindexed:
		return "hindexed"
	case KindStruct:
		return "struct"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Type is an immutable MPI datatype. Constructed types form a tree whose
// leaves are basic types; Commit builds the flattened representation.
type Type struct {
	kind   Kind
	name   string
	size   int64 // bytes of actual data
	lb, ub int64 // lower/upper bound; extent = ub - lb

	// Tree children, meaning depends on kind:
	//  contiguous: elem, count
	//  vector/hvector: elem, count, blocklen, stride (bytes)
	//  indexed/hindexed: elem, blocklens, displs (bytes)
	//  struct: fields
	elem      *Type
	count     int
	blocklen  int
	stride    int64 // always in bytes internally
	blocklens []int
	displs    []int64 // always in bytes internally
	fields    []Field

	committed bool
	flat      *Flat

	// cached signature (see Signature in typemap.go)
	sig         uint64
	sigByteOnly bool
	sigDone     bool
}

// Field is one member of a struct type.
type Field struct {
	Type     *Type
	Blocklen int
	Disp     int64 // bytes
}

// Basic datatypes, mirroring the MPI predefined types.
var (
	Byte    = basic("MPI_BYTE", 1)
	Char    = basic("MPI_CHAR", 1)
	Int16   = basic("MPI_SHORT", 2)
	Int32   = basic("MPI_INT", 4)
	Int64   = basic("MPI_LONG_LONG", 8)
	Float32 = basic("MPI_FLOAT", 4)
	Float64 = basic("MPI_DOUBLE", 8)
	Double  = Float64
)

func basic(name string, size int64) *Type {
	return &Type{kind: KindBasic, name: name, size: size, ub: size, committed: true}
}

// Kind returns the constructor kind.
func (t *Type) Kind() Kind { return t.kind }

// Size returns the number of data bytes one instance carries (gaps
// excluded).
func (t *Type) Size() int64 { return t.size }

// Extent returns ub - lb: the spacing between consecutive instances.
func (t *Type) Extent() int64 { return t.ub - t.lb }

// LB returns the lower bound (the lowest byte displacement touched).
func (t *Type) LB() int64 { return t.lb }

// UB returns the upper bound.
func (t *Type) UB() int64 { return t.ub }

// Committed reports whether Commit has run.
func (t *Type) Committed() bool { return t.committed }

// Elem returns the element type of contiguous/vector/indexed constructors
// (nil for basic and struct types).
func (t *Type) Elem() *Type { return t.elem }

// Count returns the replication count of contiguous and vector types.
func (t *Type) Count() int { return t.count }

// Blocklen returns the block length of vector types.
func (t *Type) Blocklen() int { return t.blocklen }

// StrideBytes returns the byte stride of vector/hvector types.
func (t *Type) StrideBytes() int64 { return t.stride }

// Blocklens returns the per-block lengths of indexed types.
func (t *Type) Blocklens() []int { return t.blocklens }

// Displs returns the per-block byte displacements of indexed types.
func (t *Type) Displs() []int64 { return t.displs }

// Fields returns the members of a struct type.
func (t *Type) Fields() []Field { return t.fields }

// Base returns the single basic type every element of t is built from, or
// nil when t mixes different basic types (a struct of ints and doubles).
// Reductions on derived datatypes operate elementwise on this base type
// after the data has been linearized.
func (t *Type) Base() *Type {
	switch t.kind {
	case KindBasic:
		return t
	case KindStruct:
		var base *Type
		for _, f := range t.fields {
			b := f.Type.Base()
			if b == nil || (base != nil && b != base) {
				return nil
			}
			base = b
		}
		return base
	default:
		return t.elem.Base()
	}
}

// Contiguous reports whether the type's data is one dense block (no gaps),
// in which case packing is unnecessary.
func (t *Type) Contiguous() bool {
	if t.kind == KindBasic {
		return true
	}
	f := t.flatten()
	if len(f.Leaves) != 1 {
		return false
	}
	l := f.Leaves[0]
	return len(l.Stack) == 0 && l.Size == t.size
}

// Commit finalizes the type for communication, building the flattened
// leaf/stack representation ("it is at this moment that the library may
// generate an optimized representation of the datatype"). Commit returns
// its receiver for chaining; committing twice is a no-op.
func (t *Type) Commit() *Type {
	if t.committed {
		return t
	}
	t.flat = t.flatten()
	t.committed = true
	return t
}

// Flat returns the flattened representation. It panics if the type has not
// been committed (matching MPI's requirement that only committed types are
// used for communication).
func (t *Type) Flat() *Flat {
	if !t.committed {
		panic(fmt.Sprintf("datatype: %s used before Commit", t))
	}
	if t.flat == nil {
		// Basic types flatten trivially on demand.
		t.flat = t.flatten()
	}
	return t.flat
}

// String renders the constructor tree, compactly.
func (t *Type) String() string {
	var b strings.Builder
	t.describe(&b)
	return b.String()
}

func (t *Type) describe(b *strings.Builder) {
	switch t.kind {
	case KindBasic:
		b.WriteString(t.name)
	case KindContiguous:
		fmt.Fprintf(b, "contig(%d,", t.count)
		t.elem.describe(b)
		b.WriteString(")")
	case KindVector:
		fmt.Fprintf(b, "vector(%d,%d,%d,", t.count, t.blocklen, t.stride/t.elem.Extent())
		t.elem.describe(b)
		b.WriteString(")")
	case KindHvector:
		fmt.Fprintf(b, "hvector(%d,%d,%dB,", t.count, t.blocklen, t.stride)
		t.elem.describe(b)
		b.WriteString(")")
	case KindIndexed, KindHindexed:
		fmt.Fprintf(b, "%s(%d blocks,", t.kind, len(t.blocklens))
		t.elem.describe(b)
		b.WriteString(")")
	case KindStruct:
		b.WriteString("struct(")
		for i, f := range t.fields {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(b, "%d@%d:", f.Blocklen, f.Disp)
			f.Type.describe(b)
		}
		b.WriteString(")")
	}
}
