package datatype

import "testing"

func TestSignatureLayoutIndependent(t *testing.T) {
	// A strided vector of 8 doubles and a contiguous run of 8 doubles have
	// the same signature: same element sequence, different layout.
	v := Vector(4, 2, 5, Float64).Commit()
	c := Contiguous(8, Float64).Commit()
	sv, bv := v.Signature()
	sc, bc := c.Signature()
	if sv != sc {
		t.Errorf("vector and contiguous double signatures differ: %x vs %x", sv, sc)
	}
	if bv || bc {
		t.Error("double signatures flagged byte-only")
	}
}

func TestSignatureDistinguishesElementTypes(t *testing.T) {
	d := Contiguous(4, Float64).Commit()
	i := Contiguous(8, Int32).Commit() // same byte count, different elements
	sd, _ := d.Signature()
	si, _ := i.Signature()
	if sd == si {
		t.Error("double and int signatures collide")
	}
}

func TestSignatureOrderSensitive(t *testing.T) {
	a := StructOf(
		Field{Type: Int32, Blocklen: 1, Disp: 0},
		Field{Type: Float64, Blocklen: 1, Disp: 8},
	).Commit()
	b := StructOf(
		Field{Type: Float64, Blocklen: 1, Disp: 0},
		Field{Type: Int32, Blocklen: 1, Disp: 8},
	).Commit()
	sa, _ := a.Signature()
	sb, _ := b.Signature()
	if sa == sb {
		t.Error("element order did not affect the signature")
	}
}

func TestSignatureByteOnly(t *testing.T) {
	raw := Vector(16, 4, 8, Byte).Commit()
	if _, byteOnly := raw.Signature(); !byteOnly {
		t.Error("byte vector not flagged byte-only")
	}
	mixed := StructOf(
		Field{Type: Byte, Blocklen: 4, Disp: 0},
		Field{Type: Int32, Blocklen: 1, Disp: 4},
	).Commit()
	if _, byteOnly := mixed.Signature(); byteOnly {
		t.Error("mixed struct flagged byte-only")
	}
}

func TestSignatureCached(t *testing.T) {
	ty := Vector(1000, 8, 16, Float64).Commit()
	s1, _ := ty.Signature()
	s2, _ := ty.Signature()
	if s1 != s2 || !ty.sigDone {
		t.Error("signature not cached")
	}
}
