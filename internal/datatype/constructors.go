package datatype

import "fmt"

// Contiguous returns a type of count consecutive elements of elem
// (MPI_Type_contiguous).
func Contiguous(count int, elem *Type) *Type {
	checkElem(elem)
	if count < 0 {
		panic("datatype: negative count")
	}
	ext := elem.Extent()
	return &Type{
		kind:  KindContiguous,
		size:  int64(count) * elem.size,
		lb:    elem.lb,
		ub:    elem.lb + int64(count)*ext,
		elem:  elem,
		count: count,
	}
}

// Vector returns count blocks of blocklen elements, the starts of
// consecutive blocks stride *elements* apart (MPI_Type_vector).
func Vector(count, blocklen, stride int, elem *Type) *Type {
	checkElem(elem)
	t := Hvector(count, blocklen, int64(stride)*elem.Extent(), elem)
	t.kind = KindVector
	return t
}

// Hvector is Vector with the stride given in bytes (MPI_Type_hvector).
func Hvector(count, blocklen int, strideBytes int64, elem *Type) *Type {
	checkElem(elem)
	if count < 0 || blocklen < 0 {
		panic("datatype: negative count or blocklen")
	}
	ext := elem.Extent()
	lo, hi := int64(0), int64(0)
	for i := 0; i < count; i++ {
		start := int64(i) * strideBytes
		end := start + int64(blocklen)*ext
		if start < lo {
			lo = start
		}
		if end > hi {
			hi = end
		}
	}
	if count == 0 || blocklen == 0 {
		lo, hi = 0, 0
	}
	return &Type{
		kind:     KindHvector,
		size:     int64(count) * int64(blocklen) * elem.size,
		lb:       elem.lb + lo,
		ub:       elem.lb + hi,
		elem:     elem,
		count:    count,
		blocklen: blocklen,
		stride:   strideBytes,
	}
}

// Indexed returns blocks of varying length at varying displacements, both
// in units of elem (MPI_Type_indexed).
func Indexed(blocklens []int, displs []int, elem *Type) *Type {
	checkElem(elem)
	byteDispls := make([]int64, len(displs))
	for i, d := range displs {
		byteDispls[i] = int64(d) * elem.Extent()
	}
	t := Hindexed(blocklens, byteDispls, elem)
	t.kind = KindIndexed
	return t
}

// Hindexed is Indexed with displacements in bytes (MPI_Type_hindexed).
func Hindexed(blocklens []int, displsBytes []int64, elem *Type) *Type {
	checkElem(elem)
	if len(blocklens) != len(displsBytes) {
		panic(fmt.Sprintf("datatype: %d blocklens vs %d displacements", len(blocklens), len(displsBytes)))
	}
	var size int64
	lo, hi := int64(0), int64(0)
	first := true
	ext := elem.Extent()
	for i, bl := range blocklens {
		if bl < 0 {
			panic("datatype: negative blocklen")
		}
		size += int64(bl) * elem.size
		if bl == 0 {
			continue
		}
		start := displsBytes[i]
		end := start + int64(bl)*ext
		if first {
			lo, hi = start, end
			first = false
			continue
		}
		if start < lo {
			lo = start
		}
		if end > hi {
			hi = end
		}
	}
	return &Type{
		kind:      KindHindexed,
		size:      size,
		lb:        elem.lb + lo,
		ub:        elem.lb + hi,
		elem:      elem,
		blocklens: append([]int(nil), blocklens...),
		displs:    append([]int64(nil), displsBytes...),
	}
}

// StructOf returns the general constructor: per-field types, block lengths
// and byte displacements (MPI_Type_struct).
func StructOf(fields ...Field) *Type {
	var size int64
	lo, hi := int64(0), int64(0)
	first := true
	for _, f := range fields {
		checkElem(f.Type)
		if f.Blocklen < 0 {
			panic("datatype: negative blocklen")
		}
		size += int64(f.Blocklen) * f.Type.size
		if f.Blocklen == 0 {
			continue
		}
		start := f.Disp + f.Type.lb
		end := f.Disp + f.Type.lb + int64(f.Blocklen)*f.Type.Extent()
		if first {
			lo, hi = start, end
			first = false
			continue
		}
		if start < lo {
			lo = start
		}
		if end > hi {
			hi = end
		}
	}
	return &Type{
		kind:   KindStruct,
		size:   size,
		lb:     lo,
		ub:     hi,
		fields: append([]Field(nil), fields...),
	}
}

// Subarray returns the type selecting an n-dimensional sub-block of a
// row-major (C order) array of elem: sizes is the full array shape,
// subsizes the block shape and starts its origin
// (MPI_Type_create_subarray). The type's extent is the full array, so
// consecutive instances address consecutive arrays.
func Subarray(sizes, subsizes, starts []int, elem *Type) *Type {
	checkElem(elem)
	n := len(sizes)
	if len(subsizes) != n || len(starts) != n {
		panic(fmt.Sprintf("datatype: subarray rank mismatch: %d/%d/%d", n, len(subsizes), len(starts)))
	}
	if n == 0 {
		panic("datatype: zero-dimensional subarray")
	}
	total := elem.Extent()
	for d := 0; d < n; d++ {
		if subsizes[d] < 0 || starts[d] < 0 || starts[d]+subsizes[d] > sizes[d] {
			panic(fmt.Sprintf("datatype: subarray dim %d: [%d, %d) outside size %d",
				d, starts[d], starts[d]+subsizes[d], sizes[d]))
		}
		total *= int64(sizes[d])
	}
	// Row-major: the last dimension is contiguous.
	t := Contiguous(subsizes[n-1], elem)
	rowBytes := elem.Extent() * int64(sizes[n-1])
	stride := rowBytes
	for d := n - 2; d >= 0; d-- {
		t = Hvector(subsizes[d], 1, stride, t)
		stride *= int64(sizes[d])
	}
	// Displace to the block origin and give the type the full-array extent.
	var offset int64
	dimBytes := elem.Extent()
	for d := n - 1; d >= 0; d-- {
		offset += int64(starts[d]) * dimBytes
		dimBytes *= int64(sizes[d])
	}
	placed := StructOf(Field{Type: t, Blocklen: 1, Disp: offset})
	return Resized(placed, 0, total)
}

// Resized returns a copy of t with explicit lower bound and extent
// (MPI_Type_create_resized), used to place gaps around a type.
func Resized(t *Type, lb, extent int64) *Type {
	c := *t
	c.lb = lb
	c.ub = lb + extent
	c.committed = false
	c.flat = nil
	return &c
}

func checkElem(t *Type) {
	if t == nil {
		panic("datatype: nil element type")
	}
}
