package datatype

import (
	"testing"
)

func TestBasicTypes(t *testing.T) {
	cases := []struct {
		ty   *Type
		size int64
	}{
		{Byte, 1}, {Char, 1}, {Int16, 2}, {Int32, 4}, {Int64, 8},
		{Float32, 4}, {Float64, 8},
	}
	for _, c := range cases {
		if c.ty.Size() != c.size || c.ty.Extent() != c.size {
			t.Errorf("%s: size/extent = %d/%d, want %d", c.ty, c.ty.Size(), c.ty.Extent(), c.size)
		}
		if !c.ty.Committed() || !c.ty.Contiguous() {
			t.Errorf("%s: basic types are committed and contiguous", c.ty)
		}
	}
}

func TestContiguous(t *testing.T) {
	ty := Contiguous(10, Float64).Commit()
	if ty.Size() != 80 || ty.Extent() != 80 {
		t.Errorf("size/extent = %d/%d, want 80/80", ty.Size(), ty.Extent())
	}
	if !ty.Contiguous() {
		t.Error("contiguous of basic reported non-contiguous")
	}
	f := ty.Flat()
	if len(f.Leaves) != 1 || f.Leaves[0].Size != 80 || len(f.Leaves[0].Stack) != 0 {
		t.Errorf("flat = %+v, want single merged 80-byte leaf", f.Leaves)
	}
}

func TestVector(t *testing.T) {
	// 4 blocks of 2 doubles, stride 3 doubles.
	ty := Vector(4, 2, 3, Float64).Commit()
	if ty.Size() != 64 {
		t.Errorf("size = %d, want 64", ty.Size())
	}
	// Extent: (count-1)*stride + blocklen elements = 3*3+2 = 11 doubles.
	if ty.Extent() != 88 {
		t.Errorf("extent = %d, want 88", ty.Extent())
	}
	if ty.Contiguous() {
		t.Error("strided vector reported contiguous")
	}
	f := ty.Flat()
	if len(f.Leaves) != 1 {
		t.Fatalf("leaves = %d, want 1", len(f.Leaves))
	}
	l := f.Leaves[0]
	// Inner blocklen*8 = 16-byte block repeating 4 times every 24 bytes.
	if l.Size != 16 || len(l.Stack) != 1 || l.Stack[0].Count != 4 || l.Stack[0].Stride != 24 {
		t.Errorf("leaf = %+v, want 16B block x4 stride 24", l)
	}
}

func TestVectorDegeneratesToContiguous(t *testing.T) {
	// stride == blocklen: no gaps.
	ty := Vector(4, 2, 2, Float64).Commit()
	if !ty.Contiguous() {
		t.Error("gap-free vector reported non-contiguous")
	}
	f := ty.Flat()
	if len(f.Leaves) != 1 || f.Leaves[0].Size != 64 || len(f.Leaves[0].Stack) != 0 {
		t.Errorf("flat = %+v, want one fused 64-byte leaf", f.Leaves)
	}
}

func TestHvector(t *testing.T) {
	ty := Hvector(3, 1, 100, Int32).Commit()
	if ty.Size() != 12 || ty.Extent() != 204 {
		t.Errorf("size/extent = %d/%d, want 12/204", ty.Size(), ty.Extent())
	}
	f := ty.Flat()
	if len(f.Leaves) != 1 || f.Leaves[0].Stack[0].Stride != 100 {
		t.Errorf("flat = %+v, want stride-100 stack", f.Leaves)
	}
}

func TestIndexed(t *testing.T) {
	ty := Indexed([]int{2, 1, 3}, []int{0, 4, 8}, Int32).Commit()
	if ty.Size() != 24 {
		t.Errorf("size = %d, want 24", ty.Size())
	}
	f := ty.Flat()
	if len(f.Leaves) != 3 {
		t.Fatalf("leaves = %d, want 3", len(f.Leaves))
	}
	wantFirst := []int64{0, 16, 32}
	wantSize := []int64{8, 4, 12}
	for i, l := range f.Leaves {
		if l.First != wantFirst[i] || l.Size != wantSize[i] || len(l.Stack) != 0 {
			t.Errorf("leaf %d = %+v, want %dB at %d with empty stack", i, l, wantSize[i], wantFirst[i])
		}
	}
}

func TestStructMergesAdjacentFields(t *testing.T) {
	// The paper's figure 3/5 example: struct of one int and 3 chars with a
	// gap, repeated as a vector. The int and chars are adjacent and must
	// merge into one 7-byte leaf.
	st := StructOf(
		Field{Type: Int32, Blocklen: 1, Disp: 0},
		Field{Type: Char, Blocklen: 3, Disp: 4},
	)
	st = Resized(st, 0, 12) // two bytes of trailing gap, aligned extent
	ty := Vector(5, 1, 1, st).Commit()
	f := ty.Flat()
	if len(f.Leaves) != 1 {
		t.Fatalf("leaves = %+v, want a single merged leaf", f.Leaves)
	}
	l := f.Leaves[0]
	if l.Size != 7 || len(l.Stack) != 1 || l.Stack[0].Count != 5 || l.Stack[0].Stride != 12 {
		t.Errorf("leaf = %+v, want 7B x5 stride 12", l)
	}
	if ty.Size() != 35 {
		t.Errorf("size = %d, want 35", ty.Size())
	}
}

func TestNestedVectorOfVector(t *testing.T) {
	inner := Vector(3, 1, 2, Float64) // 3 doubles every 16 bytes
	outer := Vector(2, 1, 1, Resized(inner, 0, 64)).Commit()
	f := outer.Flat()
	if len(f.Leaves) != 1 {
		t.Fatalf("leaves = %d, want 1", len(f.Leaves))
	}
	l := f.Leaves[0]
	if l.Size != 8 || len(l.Stack) != 2 {
		t.Fatalf("leaf = %+v, want 8B with 2 stack levels", l)
	}
	if l.Stack[0].Count != 2 || l.Stack[0].Stride != 64 {
		t.Errorf("outer level = %+v, want 2 x stride 64", l.Stack[0])
	}
	if l.Stack[1].Count != 3 || l.Stack[1].Stride != 16 {
		t.Errorf("inner level = %+v, want 3 x stride 16", l.Stack[1])
	}
	if f.Depth != 2 {
		t.Errorf("depth = %d, want 2", f.Depth)
	}
}

func TestTypeMapMatchesFlat(t *testing.T) {
	// The flattened representation must touch exactly the same bytes as
	// the definition-order type map.
	types := []*Type{
		Vector(4, 2, 3, Float64),
		Indexed([]int{2, 1, 3}, []int{0, 7, 3}, Int32),
		StructOf(
			Field{Type: Int32, Blocklen: 2, Disp: 0},
			Field{Type: Float64, Blocklen: 1, Disp: 16},
		),
		Contiguous(3, Vector(2, 1, 2, Int32)),
	}
	for _, ty := range types {
		ty.Commit()
		want := map[int64]bool{}
		for _, b := range ty.TypeMap() {
			for i := int64(0); i < b.Len; i++ {
				if want[b.Off+i] {
					t.Fatalf("%s: type map overlaps at byte %d", ty, b.Off+i)
				}
				want[b.Off+i] = true
			}
		}
		got := map[int64]bool{}
		for _, l := range ty.Flat().Leaves {
			walkLeaf(&l, func(off int64) {
				for i := int64(0); i < l.Size; i++ {
					if got[off+i] {
						t.Fatalf("%s: flat leaves overlap at byte %d", ty, off+i)
					}
					got[off+i] = true
				}
			})
		}
		if len(got) != len(want) {
			t.Fatalf("%s: flat covers %d bytes, type map %d", ty, len(got), len(want))
		}
		for o := range want {
			if !got[o] {
				t.Fatalf("%s: flat misses byte %d", ty, o)
			}
		}
	}
}

// walkLeaf invokes fn with the user-buffer offset of every occurrence.
func walkLeaf(l *Leaf, fn func(off int64)) {
	idx := make([]int64, len(l.Stack))
	for {
		off := l.First
		for j, lv := range l.Stack {
			off += idx[j] * lv.Stride
		}
		fn(off)
		j := len(idx) - 1
		for ; j >= 0; j-- {
			idx[j]++
			if idx[j] < l.Stack[j].Count {
				break
			}
			idx[j] = 0
		}
		if j < 0 {
			return
		}
	}
}

func TestFindPosition(t *testing.T) {
	ty := Vector(4, 2, 3, Float64).Commit() // 16B blocks x4, stride 24
	f := ty.Flat()
	cases := []struct {
		off      int64
		idx0     int64
		rem      int64
		leafsKip int
	}{
		{0, 0, 0, 0},
		{5, 0, 5, 0},
		{16, 1, 0, 0},
		{40, 2, 8, 0},
		{63, 3, 15, 0},
	}
	for _, c := range cases {
		pos := f.FindPosition(c.off)
		if pos.LeafIndex != 0 || pos.Index[0] != c.idx0 || pos.Rem != c.rem {
			t.Errorf("FindPosition(%d) = %+v, want idx %d rem %d", c.off, pos, c.idx0, c.rem)
		}
	}
	if pos := f.FindPosition(64); pos.LeafIndex != len(f.Leaves) {
		t.Errorf("FindPosition(end) = %+v, want end sentinel", pos)
	}
}

func TestFindPositionMultiLeaf(t *testing.T) {
	ty := Indexed([]int{2, 1, 3}, []int{0, 4, 8}, Int32).Commit()
	f := ty.Flat() // leaves of 8, 4, 12 bytes
	pos := f.FindPosition(9)
	if pos.LeafIndex != 1 || pos.Rem != 1 {
		t.Errorf("FindPosition(9) = %+v, want leaf 1 rem 1", pos)
	}
	pos = f.FindPosition(12)
	if pos.LeafIndex != 2 || pos.Rem != 0 {
		t.Errorf("FindPosition(12) = %+v, want leaf 2 rem 0", pos)
	}
}

func TestFindPositionOutOfRangePanics(t *testing.T) {
	ty := Contiguous(2, Int32).Commit()
	defer func() {
		if recover() == nil {
			t.Error("FindPosition beyond size did not panic")
		}
	}()
	ty.Flat().FindPosition(9)
}

func TestUncommittedFlatPanics(t *testing.T) {
	ty := Vector(2, 1, 2, Int32)
	defer func() {
		if recover() == nil {
			t.Error("Flat on uncommitted type did not panic")
		}
	}()
	ty.Flat()
}

func TestZeroCountTypes(t *testing.T) {
	ty := Vector(0, 5, 7, Float64).Commit()
	if ty.Size() != 0 || len(ty.Flat().Leaves) != 0 {
		t.Errorf("zero-count vector: size %d leaves %d, want 0/0", ty.Size(), len(ty.Flat().Leaves))
	}
	ty2 := Indexed([]int{0, 0}, []int{3, 9}, Int32).Commit()
	if ty2.Size() != 0 || len(ty2.Flat().Leaves) != 0 {
		t.Errorf("all-zero indexed: size %d leaves %d, want 0/0", ty2.Size(), len(ty2.Flat().Leaves))
	}
}

func TestResized(t *testing.T) {
	ty := Resized(Contiguous(2, Int32), 0, 32)
	if ty.Extent() != 32 || ty.Size() != 8 {
		t.Errorf("resized: extent %d size %d, want 32/8", ty.Extent(), ty.Size())
	}
	v := Vector(3, 1, 1, ty).Commit()
	f := v.Flat()
	if len(f.Leaves) != 1 || f.Leaves[0].Stack[0].Stride != 32 {
		t.Errorf("vector over resized: %+v, want stride 32", f.Leaves)
	}
}

func TestStringRendering(t *testing.T) {
	ty := Vector(4, 2, 3, Float64)
	if s := ty.String(); s == "" {
		t.Error("empty String()")
	}
	st := StructOf(Field{Type: Int32, Blocklen: 1, Disp: 0})
	if s := st.String(); s == "" {
		t.Error("empty struct String()")
	}
}

func TestNegativeArgsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"contiguous": func() { Contiguous(-1, Int32) },
		"vector":     func() { Vector(2, -1, 3, Int32) },
		"indexed":    func() { Indexed([]int{-1}, []int{0}, Int32) },
		"mismatch":   func() { Hindexed([]int{1, 2}, []int64{0}, Int32) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with invalid args did not panic", name)
				}
			}()
			fn()
		}()
	}
}
