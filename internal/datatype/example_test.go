package datatype_test

import (
	"fmt"

	"scimpich/internal/datatype"
)

// The paper's figure 3/5 example: a vector of structs (one int, three
// chars, a gap), whose flattening merges the adjacent int and chars into a
// single 7-byte leaf with one repetition level.
func Example() {
	st := datatype.StructOf(
		datatype.Field{Type: datatype.Int32, Blocklen: 1, Disp: 0},
		datatype.Field{Type: datatype.Char, Blocklen: 3, Disp: 4},
	)
	st = datatype.Resized(st, 0, 12) // two trailing pad bytes
	ty := datatype.Vector(5, 1, 1, st).Commit()
	fmt.Print(ty.Flat().Describe())
	// Output:
	// flat: size=35 extent=60 depth=1
	//   leaf 0: 7B @ 0 x5(stride 12) = 35B
}

func ExampleVector() {
	// 4 blocks of 2 doubles, block starts 3 doubles apart.
	ty := datatype.Vector(4, 2, 3, datatype.Float64).Commit()
	fmt.Println("size:", ty.Size(), "extent:", ty.Extent())
	fmt.Print(ty.Flat().Describe())
	// Output:
	// size: 64 extent: 88
	// flat: size=64 extent=88 depth=1
	//   leaf 0: 16B @ 0 x4(stride 24) = 64B
}

func ExampleSubarray() {
	// The 2x2 interior block of a 4x4 matrix of doubles.
	ty := datatype.Subarray([]int{4, 4}, []int{2, 2}, []int{1, 1}, datatype.Float64).Commit()
	for _, b := range ty.TypeMap() {
		fmt.Printf("block at %d, %d bytes\n", b.Off, b.Len)
	}
	// Output:
	// block at 40, 16 bytes
	// block at 72, 16 bytes
}
