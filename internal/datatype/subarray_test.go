package datatype

import (
	"math/rand"
	"testing"
)

// bruteSubarray computes the byte set a subarray should cover, row-major.
func bruteSubarray(sizes, subsizes, starts []int, elemSize int64) map[int64]bool {
	covered := map[int64]bool{}
	n := len(sizes)
	idx := make([]int, n)
	var rec func(d int)
	rec = func(d int) {
		if d == n {
			var off int64
			mult := elemSize
			for k := n - 1; k >= 0; k-- {
				off += int64(idx[k]) * mult
				mult *= int64(sizes[k])
			}
			for b := int64(0); b < elemSize; b++ {
				covered[off+b] = true
			}
			return
		}
		for i := starts[d]; i < starts[d]+subsizes[d]; i++ {
			idx[d] = i
			rec(d + 1)
		}
	}
	rec(0)
	return covered
}

func checkSubarray(t *testing.T, sizes, subsizes, starts []int) {
	t.Helper()
	ty := Subarray(sizes, subsizes, starts, Float64).Commit()
	want := bruteSubarray(sizes, subsizes, starts, 8)
	got := map[int64]bool{}
	for _, b := range ty.TypeMap() {
		for j := int64(0); j < b.Len; j++ {
			if got[b.Off+j] {
				t.Fatalf("subarray %v/%v/%v: overlapping byte %d", sizes, subsizes, starts, b.Off+j)
			}
			got[b.Off+j] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("subarray %v/%v/%v: covers %d bytes, want %d", sizes, subsizes, starts, len(got), len(want))
	}
	for off := range want {
		if !got[off] {
			t.Fatalf("subarray %v/%v/%v: missing byte %d", sizes, subsizes, starts, off)
		}
	}
	// Extent must be the full array.
	wantExt := int64(8)
	for _, s := range sizes {
		wantExt *= int64(s)
	}
	if ty.Extent() != wantExt {
		t.Fatalf("subarray extent = %d, want %d", ty.Extent(), wantExt)
	}
	var size int64 = 8
	for _, s := range subsizes {
		size *= int64(s)
	}
	if ty.Size() != size {
		t.Fatalf("subarray size = %d, want %d", ty.Size(), size)
	}
}

func TestSubarray1D(t *testing.T) {
	checkSubarray(t, []int{10}, []int{4}, []int{3})
}

func TestSubarray2DInterior(t *testing.T) {
	checkSubarray(t, []int{8, 6}, []int{3, 2}, []int{2, 1})
}

func TestSubarray2DColumn(t *testing.T) {
	// A column of a matrix: the strided halo case.
	checkSubarray(t, []int{16, 16}, []int{16, 1}, []int{0, 7})
}

func TestSubarray3D(t *testing.T) {
	checkSubarray(t, []int{6, 5, 4}, []int{2, 3, 2}, []int{1, 1, 1})
}

func TestSubarrayFull(t *testing.T) {
	ty := Subarray([]int{4, 4}, []int{4, 4}, []int{0, 0}, Float64).Commit()
	if !ty.Contiguous() {
		t.Error("full subarray should be contiguous")
	}
	checkSubarray(t, []int{4, 4}, []int{4, 4}, []int{0, 0})
}

func TestSubarrayRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(3) + 1
		sizes := make([]int, n)
		subsizes := make([]int, n)
		starts := make([]int, n)
		for d := 0; d < n; d++ {
			sizes[d] = rng.Intn(6) + 2
			subsizes[d] = rng.Intn(sizes[d]) + 1
			starts[d] = rng.Intn(sizes[d] - subsizes[d] + 1)
		}
		checkSubarray(t, sizes, subsizes, starts)
	}
}

func TestSubarrayValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"rank":   func() { Subarray([]int{4, 4}, []int{2}, []int{0, 0}, Byte) },
		"bounds": func() { Subarray([]int{4}, []int{3}, []int{2}, Byte) },
		"empty":  func() { Subarray(nil, nil, nil, Byte) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: invalid subarray did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSubarrayInstancesAddressConsecutiveArrays(t *testing.T) {
	// Two instances of a 2x2 block in a 4x4 array: second instance offsets
	// by the full array.
	ty := Subarray([]int{4, 4}, []int{2, 2}, []int{1, 1}, Float64).Commit()
	f := ty.Flat()
	// Walk two instances via the pack machinery contract: offsets of the
	// second instance are the first's plus the extent.
	var first []int64
	for _, l := range f.Leaves {
		first = append(first, l.First)
	}
	if len(first) == 0 {
		t.Fatal("no leaves")
	}
	if ty.Extent() != 4*4*8 {
		t.Fatalf("extent = %d", ty.Extent())
	}
}
