package nic

import (
	"bytes"
	"testing"
	"time"

	"scimpich/internal/sim"
)

func testNet(nodes int) (*sim.Engine, *Network) {
	e := sim.NewEngine()
	return e, New(e, nodes, FastEthernet())
}

func TestWriteReadRoundTrip(t *testing.T) {
	e, n := testNet(2)
	b := n.Alloc(1, 4096)
	src := make([]byte, 1024)
	for i := range src {
		src[i] = byte(i)
	}
	e.Go("p", func(p *sim.Proc) {
		v := n.View(0, b)
		v.WriteStream(p, 100, src, 0)
		v.Sync(p)
		if !bytes.Equal(b.Bytes()[100:1124], src) {
			t.Error("write did not arrive")
		}
		dst := make([]byte, 1024)
		v.Read(p, 100, dst)
		if !bytes.Equal(dst, src) {
			t.Error("read mismatch")
		}
	})
	e.Run()
}

func TestWriteVisibilityDelayedByWireLatency(t *testing.T) {
	e, n := testNet(2)
	b := n.Alloc(1, 64)
	e.Go("p", func(p *sim.Proc) {
		v := n.View(0, b)
		v.WriteWord(p, 0, []byte{0xCC})
		if b.Bytes()[0] == 0xCC {
			t.Error("message visible before the wire latency")
		}
		p.Sleep(n.Cfg.Latency + time.Microsecond)
		if b.Bytes()[0] != 0xCC {
			t.Error("message not visible after the wire latency")
		}
	})
	e.Run()
}

func TestReadCostsRoundTrip(t *testing.T) {
	e, n := testNet(2)
	b := n.Alloc(1, 64)
	var lat time.Duration
	e.Go("p", func(p *sim.Proc) {
		v := n.View(0, b)
		start := p.Now()
		v.Read(p, 0, make([]byte, 8))
		lat = p.Now() - start
	})
	e.Run()
	if lat < 2*n.Cfg.Latency {
		t.Errorf("read latency %v below one round trip (%v)", lat, 2*n.Cfg.Latency)
	}
}

func TestBandwidthLimitedByWire(t *testing.T) {
	e, n := testNet(2)
	const sz = 1 << 20
	b := n.Alloc(1, sz)
	var elapsed time.Duration
	e.Go("p", func(p *sim.Proc) {
		v := n.View(0, b)
		start := p.Now()
		v.WriteStream(p, 0, make([]byte, sz), 0)
		v.Sync(p)
		elapsed = p.Now() - start
	})
	e.Run()
	bw := float64(sz) / elapsed.Seconds() / (1 << 20)
	if bw > 11.5 || bw < 9 {
		t.Errorf("fast-ethernet bandwidth = %.1f MiB/s, want ~11", bw)
	}
}

func TestBlockWriterStagesLocallyAndShipsOnce(t *testing.T) {
	e, n := testNet(2)
	b := n.Alloc(1, 4096)
	var elapsed time.Duration
	e.Go("p", func(p *sim.Proc) {
		v := n.View(0, b)
		w := v.NewBlockWriter(p, 4096)
		for off := int64(0); off < 2048; off += 64 {
			blk := bytes.Repeat([]byte{byte(off / 64)}, 32)
			w.Write(off, blk)
		}
		start := p.Now()
		w.Flush()
		v.Sync(p)
		elapsed = p.Now() - start
		for i := int64(0); i < 2048; i += 64 {
			if b.Bytes()[i] != byte(i/64) {
				t.Fatalf("staged block at %d missing", i)
			}
		}
	})
	e.Run()
	// 1 kiB of staged blocks must ship as ONE message: one latency plus
	// the wire time, not 32 latencies.
	wire := time.Duration(1024 / n.Cfg.Bandwidth * 1e9)
	budget := n.Cfg.Latency + wire + n.Cfg.PerMessageCPU + 20*time.Microsecond
	if elapsed > budget {
		t.Errorf("flush took %v, want single-message cost (~%v)", elapsed, budget)
	}
}

func TestNICContention(t *testing.T) {
	// Two senders into one receiver share the receiver's ingress.
	e, n := testNet(3)
	const sz = 4 << 20
	b := n.Alloc(2, 2*sz)
	var t0, t1 time.Duration
	e.Go("a", func(p *sim.Proc) {
		v := n.View(0, b)
		start := p.Now()
		v.WriteStream(p, 0, make([]byte, sz), 0)
		t0 = p.Now() - start
	})
	e.Go("b", func(p *sim.Proc) {
		v := n.View(1, b)
		start := p.Now()
		v.WriteStream(p, sz, make([]byte, sz), 0)
		t1 = p.Now() - start
	})
	e.Run()
	solo := time.Duration(float64(sz) / n.Cfg.Bandwidth * 1e9)
	for _, d := range []time.Duration{t0, t1} {
		if d < time.Duration(1.8*float64(solo)) {
			t.Errorf("concurrent send took %v, want ~2x solo %v (ingress shared)", d, solo)
		}
	}
}

func TestStridedRoundTrip(t *testing.T) {
	e, n := testNet(2)
	b := n.Alloc(1, 1024)
	src := make([]byte, 128)
	for i := range src {
		src[i] = byte(i + 1)
	}
	e.Go("p", func(p *sim.Proc) {
		v := n.View(0, b)
		v.WriteStrided(p, 0, src, 16, 32)
		v.Sync(p)
		dst := make([]byte, 128)
		v.ReadStrided(p, 0, dst, 16, 32)
		if !bytes.Equal(dst, src) {
			t.Error("strided round trip mismatch")
		}
	})
	e.Run()
}

func TestNoDMA(t *testing.T) {
	e, n := testNet(2)
	b := n.Alloc(1, 64)
	e.Go("p", func(p *sim.Proc) {
		if _, ok := n.View(0, b).DMAWrite(p, 0, []byte{1}); ok {
			t.Error("NIC claimed a DMA path")
		}
	})
	e.Run()
}
