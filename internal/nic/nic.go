// Package nic models a conventional message-based network interface —
// Fast/Gigabit Ethernet or Myrinet class — as the second inter-node
// transport of the runtime. Unlike SCI there is no transparent remote
// memory: every remote access is a message over the wire, so
//
//   - "remote writes" cost the wire latency plus bandwidth and cannot be
//     gathered block-wise: direct_pack_ff degenerates to local packing
//     (exactly why the paper's comparator platforms show no consistent
//     non-contiguous optimization);
//   - "remote reads" cost a full round trip;
//   - nodes contend on their NIC (one egress and one ingress link each),
//     not on a shared ring.
//
// The same smi.Mem interface is implemented, so the whole MPI runtime and
// the one-sided layer run unchanged on top.
package nic

import (
	"fmt"
	"time"

	"scimpich/internal/flow"
	"scimpich/internal/memmodel"
	"scimpich/internal/sim"
)

// Config describes the NIC and wire.
type Config struct {
	// Latency is the one-way message latency.
	Latency time.Duration
	// Bandwidth is the wire bandwidth in bytes/second.
	Bandwidth float64
	// PerMessageCPU is the host-side send/receive processing cost.
	PerMessageCPU time.Duration
	// Mem is the node memory model (local copies, packing).
	Mem *memmodel.Model
}

// FastEthernet returns the LAM-cluster class configuration (Table 1 X-f).
func FastEthernet() Config {
	return Config{
		Latency:       70 * time.Microsecond,
		Bandwidth:     11 * 1 << 20,
		PerMessageCPU: 8 * time.Microsecond,
		Mem:           memmodel.PentiumIII800(),
	}
}

// Myrinet1280 returns the SCore-cluster class configuration (Table 1 S-M).
func Myrinet1280() Config {
	return Config{
		Latency:       14 * time.Microsecond,
		Bandwidth:     110 * 1 << 20,
		PerMessageCPU: 3 * time.Microsecond,
		Mem:           memmodel.PentiumIII800(),
	}
}

// GigabitEthernet returns the Sun-cluster class configuration (Table 1 F-G).
func GigabitEthernet() Config {
	return Config{
		Latency:       50 * time.Microsecond,
		Bandwidth:     48 * 1 << 20,
		PerMessageCPU: 6 * time.Microsecond,
		Mem:           memmodel.PentiumIII800(),
	}
}

// Network is a cluster of nodes joined by a full-crossbar message fabric,
// with per-node NIC egress/ingress capacity.
type Network struct {
	E   sim.Host
	Net *flow.Network
	Cfg Config

	egress  []*flow.Link
	ingress []*flow.Link
	// pending deliveries per node, for Sync.
	pending []map[*sim.Future]struct{}
}

// New builds the fabric.
func New(e sim.Host, nodes int, cfg Config) *Network {
	if nodes < 1 {
		panic("nic: need at least one node")
	}
	if cfg.Mem == nil {
		panic("nic: config requires a memory model")
	}
	n := &Network{E: e, Net: flow.NewNetworkOn(e), Cfg: cfg}
	n.egress = make([]*flow.Link, nodes)
	n.ingress = make([]*flow.Link, nodes)
	n.pending = make([]map[*sim.Future]struct{}, nodes)
	for i := 0; i < nodes; i++ {
		n.egress[i] = flow.NewLink(fmt.Sprintf("nic%d-tx", i), cfg.Bandwidth, nil)
		n.ingress[i] = flow.NewLink(fmt.Sprintf("nic%d-rx", i), cfg.Bandwidth, nil)
		n.pending[i] = make(map[*sim.Future]struct{})
	}
	return n
}

// Nodes returns the cluster size.
func (n *Network) Nodes() int { return len(n.egress) }

// Buffer is memory physically at one node, remotely accessible by message.
type Buffer struct {
	net   *Network
	owner int
	buf   []byte
}

// Alloc allocates a message-accessible buffer at the owner node.
func (n *Network) Alloc(owner int, size int64) *Buffer {
	return n.AllocBacked(owner, make([]byte, size))
}

// AllocBacked wraps existing memory as a message-accessible buffer, so one
// backing array can also be visible through the intra-node transport.
func (n *Network) AllocBacked(owner int, buf []byte) *Buffer {
	return &Buffer{net: n, owner: owner, buf: buf}
}

// Owner returns the owning node.
func (b *Buffer) Owner() int { return b.owner }

// Bytes returns the raw backing memory.
func (b *Buffer) Bytes() []byte { return b.buf }

// View returns node `from`'s costed access view of the buffer
// (implementing smi.Mem).
func (n *Network) View(from int, b *Buffer) *View {
	return &View{net: n, from: from, b: b}
}

// View is one node's handle on a (possibly remote) Buffer.
type View struct {
	net  *Network
	from int
	b    *Buffer
}

// Remote reports whether accesses cross the wire.
func (v *View) Remote() bool { return v.from != v.b.owner }

// Size returns the buffer size.
func (v *View) Size() int64 { return int64(len(v.b.buf)) }

// Bytes returns the raw backing memory (owner-side use).
func (v *View) Bytes() []byte { return v.b.buf }

func (v *View) checkRange(off, n int64) {
	if off < 0 || n < 0 || off+n > v.Size() {
		panic(fmt.Sprintf("nic: access [%d, %d) outside buffer of %d bytes", off, off+n, v.Size()))
	}
}

// send moves bytes over the wire and applies them at arrival; the caller
// is blocked for the host costs and wire occupancy.
func (v *View) send(p *sim.Proc, apply func()) func(bytes int64) {
	return func(bytes int64) {
		cfg := &v.net.Cfg
		p.Sleep(cfg.PerMessageCPU)
		if bytes > 0 {
			v.net.Net.Transfer(p, flow.Path(v.net.egress[v.from], v.net.ingress[v.b.owner]), bytes, cfg.Bandwidth)
		}
		fut := sim.NewFuture()
		v.net.pending[v.from][fut] = struct{}{}
		from := v.from
		v.net.E.After(cfg.Latency, func() {
			apply()
			delete(v.net.pending[from], fut)
			fut.Complete(nil)
		})
	}
}

// WriteStream sends src contiguously to offset off.
func (v *View) WriteStream(p *sim.Proc, off int64, src []byte, srcWorkingSet int64) {
	nn := int64(len(src))
	v.checkRange(off, nn)
	if !v.Remote() {
		p.Sleep(v.net.Cfg.Mem.CopyCost(nn, nn, maxi64(srcWorkingSet, nn)))
		copy(v.b.buf[off:], src)
		return
	}
	data := append([]byte(nil), src...)
	buf, o := v.b, off
	v.send(p, func() { copy(buf.buf[o:], data) })(nn)
}

// WriteWord sends a small control word.
func (v *View) WriteWord(p *sim.Proc, off int64, src []byte) {
	v.checkRange(off, int64(len(src)))
	if !v.Remote() {
		p.Sleep(60 * time.Nanosecond)
		copy(v.b.buf[off:], src)
		return
	}
	data := append([]byte(nil), src...)
	buf, o := v.b, off
	v.send(p, func() { copy(buf.buf[o:], data) })(int64(len(src)))
}

// WriteStrided scatters accesses; over a message fabric each strided
// access would be its own message, so the data is sent as one message and
// scattered at the receiver (cost: wire + receiver-side scatter copy).
func (v *View) WriteStrided(p *sim.Proc, off int64, src []byte, accessSize, stride int64) {
	nn := int64(len(src))
	if nn == 0 {
		return
	}
	if accessSize <= 0 || accessSize > nn {
		accessSize = nn
	}
	if stride < accessSize {
		stride = accessSize
	}
	accesses := (nn + accessSize - 1) / accessSize
	span := (accesses-1)*stride + (nn - (accesses-1)*accessSize)
	v.checkRange(off, span)
	if !v.Remote() {
		p.Sleep(v.net.Cfg.Mem.CopyCost(nn, accessSize, span))
		scatter(v.b.buf[off:], src, accessSize, stride)
		return
	}
	p.Sleep(v.net.Cfg.Mem.CopyCost(nn, accessSize, span)) // receiver-side scatter, charged to the op
	data := append([]byte(nil), src...)
	buf, o, a, s := v.b, off, accessSize, stride
	v.send(p, func() { scatter(buf.buf[o:], data, a, s) })(nn)
}

// WritePut is WriteStrided: a message NIC has no put fast path.
func (v *View) WritePut(p *sim.Proc, off int64, src []byte, accessSize, stride int64) {
	v.WriteStrided(p, off, src, accessSize, stride)
}

// Read fetches bytes: a request/response round trip.
func (v *View) Read(p *sim.Proc, off int64, dst []byte) {
	nn := int64(len(dst))
	v.checkRange(off, nn)
	if !v.Remote() {
		p.Sleep(v.net.Cfg.Mem.CopyCost(nn, nn, nn))
		copy(dst, v.b.buf[off:off+nn])
		return
	}
	cfg := &v.net.Cfg
	p.Sleep(2*cfg.Latency + 2*cfg.PerMessageCPU)
	if nn > 0 {
		v.net.Net.Transfer(p, flow.Path(v.net.egress[v.b.owner], v.net.ingress[v.from]), nn, cfg.Bandwidth)
	}
	copy(dst, v.b.buf[off:off+nn])
}

// ReadStrided gathers strided data (one round trip; gather at the owner).
func (v *View) ReadStrided(p *sim.Proc, off int64, dst []byte, accessSize, stride int64) {
	nn := int64(len(dst))
	if nn == 0 {
		return
	}
	if accessSize <= 0 || accessSize > nn {
		accessSize = nn
	}
	if stride < accessSize {
		stride = accessSize
	}
	accesses := (nn + accessSize - 1) / accessSize
	span := (accesses-1)*stride + (nn - (accesses-1)*accessSize)
	v.checkRange(off, span)
	if !v.Remote() {
		p.Sleep(v.net.Cfg.Mem.CopyCost(nn, accessSize, span))
		gather(dst, v.b.buf[off:], accessSize, stride)
		return
	}
	cfg := &v.net.Cfg
	p.Sleep(2*cfg.Latency + 2*cfg.PerMessageCPU + cfg.Mem.CopyCost(nn, accessSize, span))
	v.net.Net.Transfer(p, flow.Path(v.net.egress[v.b.owner], v.net.ingress[v.from]), nn, cfg.Bandwidth)
	gather(dst, v.b.buf[off:], accessSize, stride)
}

// BlockWriter stages blocks locally and ships them as one message on
// Flush: the NIC cannot gather remote stores, so direct_pack_ff brings no
// wire advantage here (matching the paper's comparator observations).
type BlockWriter struct {
	v       *View
	p       *sim.Proc
	ws      int64
	lowest  int64
	staged  []stagedBlock
	bytes   int64
	cost    time.Duration
	flushed bool
}

type stagedBlock struct {
	off  int64
	data []byte
}

// NewBlockWriter starts a batched session.
func (v *View) NewBlockWriter(p *sim.Proc, workingSet int64) *BlockWriter {
	return &BlockWriter{v: v, p: p, ws: workingSet, lowest: -1}
}

// Write stages one block.
func (w *BlockWriter) Write(off int64, src []byte) {
	nn := int64(len(src))
	if nn == 0 {
		return
	}
	w.v.checkRange(off, nn)
	w.staged = append(w.staged, stagedBlock{off: off, data: append([]byte(nil), src...)})
	w.bytes += nn
	w.cost += w.v.net.Cfg.Mem.CopyCost(nn, nn, w.ws) // local pack pass
}

// Flush pays the local pack plus one wire message and applies the blocks
// at arrival.
func (w *BlockWriter) Flush() {
	if w.flushed {
		panic("nic: BlockWriter flushed twice")
	}
	w.flushed = true
	if w.bytes == 0 {
		return
	}
	w.p.Sleep(w.cost)
	if !w.v.Remote() {
		for _, blk := range w.staged {
			copy(w.v.b.buf[blk.off:], blk.data)
		}
		return
	}
	staged := w.staged
	buf := w.v.b
	w.v.send(w.p, func() {
		for _, blk := range staged {
			copy(buf.buf[blk.off:], blk.data)
		}
	})(w.bytes)
}

// DMAWrite: message NICs in this model have no exposed DMA path.
func (v *View) DMAWrite(p *sim.Proc, off int64, src []byte) (*sim.Future, bool) {
	return nil, false
}

// Sync waits for all of this node's in-flight messages to arrive.
func (v *View) Sync(p *sim.Proc) {
	pend := v.net.pending[v.from]
	for len(pend) > 0 {
		var f *sim.Future
		for fut := range pend {
			f = fut
			break
		}
		p.Await(f)
	}
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// scatter copies src into dst as accessSize-byte pieces stride apart.
func scatter(dst, src []byte, accessSize, stride int64) {
	var so, do int64
	n := int64(len(src))
	for so < n {
		end := so + accessSize
		if end > n {
			end = n
		}
		copy(dst[do:], src[so:end])
		so = end
		do += stride
	}
}

// gather is the inverse of scatter.
func gather(dst, src []byte, accessSize, stride int64) {
	var so, do int64
	n := int64(len(dst))
	for do < n {
		end := do + accessSize
		if end > n {
			end = n
		}
		copy(dst[do:end], src[so:so+(end-do)])
		do = end
		so += stride
	}
}
