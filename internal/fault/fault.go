// Package fault provides deterministic, seedable fault-injection plans
// for the simulated SCI cluster. The paper stresses that SCI "is still a
// network in which single nodes may fail or physical connections may be
// disturbed", which is why SCI-MPICH pairs its fast paths with connection
// monitoring and data-transfer checking; a Plan lets tests and experiments
// exercise exactly those paths.
//
// A Plan can schedule:
//
//   - hard node crashes (and restorations) at fixed virtual times,
//   - transient link disturbances over time windows (a cable being
//     wiggled: transfers on the path retry until the window passes),
//   - CRC / sequence transfer errors on PIO and DMA transfers, drawn from
//     a seeded PRNG so the error schedule is a pure function of the seed
//     and the (deterministic) simulation schedule,
//   - transfer-check failures observed by the check-after-store-barrier
//     (sci.Mapping.CheckedSync),
//   - duplicated control packets (the MPI device must stay exactly-once),
//   - segment import denials and mid-run segment revocations (unmaps).
//
// All probabilistic draws consume one shared SplitMix64 stream, so a run
// with the same plan seed and the same workload reproduces the same fault
// schedule event for event. A Plan carries mutable draw state: construct a
// fresh Plan (same seed) for every run you want to compare.
package fault

import (
	"fmt"
	"time"
)

// Any matches every node in a link-disturbance window endpoint.
const Any = -1

// Kind classifies an injected fault.
type Kind int

const (
	// CRC is a failed data check on a transfer (the adapter's
	// status-register CRC error). Retryable: retransmission clears it.
	CRC Kind = iota
	// Sequence is an SCI sequence-check mismatch on a transfer.
	// Retryable, like CRC.
	Sequence
	// LinkDisturbed is a transient disturbance window on the path (a
	// cable being re-plugged). Retryable until the window passes.
	LinkDisturbed
	// NodeUnreachable is a hard node crash: not retryable while the node
	// stays down.
	NodeUnreachable
	// SegmentRevoked is an access through a mapping whose segment has
	// been unmapped / withdrawn. Not retryable.
	SegmentRevoked
	// ImportDenied is a failed segment import. Not retryable.
	ImportDenied
	// Timeout is a watchdog expiry in a recovery layer (rendezvous
	// control traffic, one-sided synchronization). Not retryable.
	Timeout
)

func (k Kind) String() string {
	switch k {
	case CRC:
		return "crc"
	case Sequence:
		return "sequence"
	case LinkDisturbed:
		return "link-disturbed"
	case NodeUnreachable:
		return "node-unreachable"
	case SegmentRevoked:
		return "segment-revoked"
	case ImportDenied:
		return "import-denied"
	case Timeout:
		return "timeout"
	default:
		return "unknown"
	}
}

// Error is a typed injected-fault error, mirroring an SCI adapter
// status-register check result.
type Error struct {
	Kind     Kind
	From, To int           // node ids (or ranks, at the MPI layer)
	At       time.Duration // virtual time of the injection
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: %v from %d to %d at %v", e.Kind, e.From, e.To, e.At)
}

// Retryable reports whether a bounded retransmit can clear the fault.
func (e *Error) Retryable() bool {
	switch e.Kind {
	case CRC, Sequence, LinkDisturbed:
		return true
	}
	return false
}

// NodeEvent is a scheduled crash (Up == false) or restoration (Up == true).
type NodeEvent struct {
	Node int
	At   time.Duration
	Up   bool
}

// SegmentEvent is a scheduled revocation of an exported segment.
type SegmentEvent struct {
	Owner, Seg int
	At         time.Duration
}

// Window is a link-disturbance interval between two endpoints (either may
// be Any). The disturbance is symmetric.
type Window struct {
	A, B       int
	Start, End time.Duration
}

// Counters tallies the faults a plan has actually injected, by kind.
type Counters struct {
	Writes     int64 // CRC/sequence errors on PIO transfers
	DMAs       int64 // CRC/sequence errors on DMA transfers
	Checks     int64 // transfer-check failures after a store barrier
	Duplicates int64 // duplicated control packets
	Imports    int64 // denied segment imports
}

// Observer is notified of every fault the plan actually injects (not of
// draws that came up clean). Flight recorders hook in here so injected
// faults land on the same timeline as the protocol events they disturb.
type Observer func(at time.Duration, kind Kind, from, to int)

// Plan is a deterministic fault schedule. The zero value (and a nil Plan)
// injects nothing; build one with New and the chainable With*/schedule
// methods.
type Plan struct {
	seed uint64
	rng  uint64

	nodeEvents []NodeEvent
	segEvents  []SegmentEvent
	windows    []Window
	importFail map[[2]int]int

	writeRate float64
	dmaRate   float64
	checkRate float64
	dupRate   float64

	// Injected counts the faults drawn so far (observability for tests
	// and benchmark reports).
	Injected Counters

	observer Observer
}

// SetObserver installs a callback invoked on each injected fault.
// Observation must not consume draws or virtual time, so installing one
// cannot change the fault schedule.
func (f *Plan) SetObserver(o Observer) {
	if f == nil {
		return
	}
	f.observer = o
}

// notify reports one injected fault to the observer, if any.
func (f *Plan) notify(at time.Duration, kind Kind, from, to int) {
	if f.observer != nil {
		f.observer(at, kind, from, to)
	}
}

// New returns an empty plan whose probabilistic draws are seeded with
// seed (0 is replaced by a fixed non-zero default).
func New(seed uint64) *Plan {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Plan{seed: seed, rng: seed, importFail: make(map[[2]int]int)}
}

// Seed returns the plan's seed.
func (f *Plan) Seed() uint64 { return f.seed }

// draw returns a uniform float64 in [0, 1) from the shared SplitMix64
// stream.
func (f *Plan) draw() float64 {
	f.rng += 0x9e3779b97f4a7c15
	z := f.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// CrashNode schedules a hard crash of node at the given virtual time.
func (f *Plan) CrashNode(node int, at time.Duration) *Plan {
	f.nodeEvents = append(f.nodeEvents, NodeEvent{Node: node, At: at})
	return f
}

// RestoreNode schedules a crashed node to come back at the given time.
func (f *Plan) RestoreNode(node int, at time.Duration) *Plan {
	f.nodeEvents = append(f.nodeEvents, NodeEvent{Node: node, At: at, Up: true})
	return f
}

// DisturbLink schedules a transient disturbance of the (symmetric) path
// between nodes a and b over [start, end). Either endpoint may be Any.
func (f *Plan) DisturbLink(a, b int, start, end time.Duration) *Plan {
	f.windows = append(f.windows, Window{A: a, B: b, Start: start, End: end})
	return f
}

// RevokeSegment schedules segment seg of node owner to be unmapped at the
// given time: existing mappings fail with SegmentRevoked afterwards.
func (f *Plan) RevokeSegment(owner, seg int, at time.Duration) *Plan {
	f.segEvents = append(f.segEvents, SegmentEvent{Owner: owner, Seg: seg, At: at})
	return f
}

// FailImports makes the next times attempts to import segment seg of node
// owner fail with ImportDenied.
func (f *Plan) FailImports(owner, seg, times int) *Plan {
	f.importFail[[2]int{owner, seg}] += times
	return f
}

// WithWriteErrors sets the per-PIO-transfer probability of an injected
// CRC/sequence error.
func (f *Plan) WithWriteErrors(rate float64) *Plan { f.writeRate = clampRate(rate); return f }

// WithDMAErrors sets the per-DMA-transfer probability of an injected
// CRC/sequence error.
func (f *Plan) WithDMAErrors(rate float64) *Plan { f.dmaRate = clampRate(rate); return f }

// WithCheckErrors sets the probability that a transfer check after a
// store barrier reports a failure that forces a retry.
func (f *Plan) WithCheckErrors(rate float64) *Plan { f.checkRate = clampRate(rate); return f }

// WithDuplicates sets the per-control-packet probability of a duplicated
// delivery (the exactly-once obligation of the MPI device).
func (f *Plan) WithDuplicates(rate float64) *Plan { f.dupRate = clampRate(rate); return f }

// clampRate keeps probabilities in [0, 0.95] so no draw loop can spin
// forever (the rate >= 1.0 infinite-retry bug class).
func clampRate(r float64) float64 {
	if r < 0 {
		return 0
	}
	if r > 0.95 {
		return 0.95
	}
	return r
}

// NodeSchedule returns the scheduled crash/restore events.
func (f *Plan) NodeSchedule() []NodeEvent {
	if f == nil {
		return nil
	}
	return f.nodeEvents
}

// SegmentSchedule returns the scheduled segment revocations.
func (f *Plan) SegmentSchedule() []SegmentEvent {
	if f == nil {
		return nil
	}
	return f.segEvents
}

// Disturbed reports whether the path between a and b is inside a
// disturbance window at time t.
func (f *Plan) Disturbed(a, b int, t time.Duration) bool {
	if f == nil {
		return false
	}
	for _, w := range f.windows {
		if t < w.Start || t >= w.End {
			continue
		}
		fwd := (w.A == Any || w.A == a) && (w.B == Any || w.B == b)
		rev := (w.A == Any || w.A == b) && (w.B == Any || w.B == a)
		if fwd || rev {
			return true
		}
	}
	return false
}

// TakeImportFailure consumes one scheduled import failure for (owner,
// seg), reporting whether the import should be denied.
func (f *Plan) TakeImportFailure(owner, seg int) bool {
	if f == nil {
		return false
	}
	k := [2]int{owner, seg}
	if f.importFail[k] <= 0 {
		return false
	}
	f.importFail[k]--
	f.Injected.Imports++
	f.notify(0, ImportDenied, owner, seg)
	return true
}

// DrawWriteError draws an injected CRC/sequence error for one PIO
// transfer from node from to node to, or nil.
func (f *Plan) DrawWriteError(at time.Duration, from, to int) *Error {
	if f == nil || f.writeRate <= 0 || f.draw() >= f.writeRate {
		return nil
	}
	f.Injected.Writes++
	k := f.drawKind()
	f.notify(at, k, from, to)
	return &Error{Kind: k, From: from, To: to, At: at}
}

// DrawDMAError draws an injected CRC/sequence error for one DMA transfer.
func (f *Plan) DrawDMAError(at time.Duration, from, to int) *Error {
	if f == nil || f.dmaRate <= 0 || f.draw() >= f.dmaRate {
		return nil
	}
	f.Injected.DMAs++
	k := f.drawKind()
	f.notify(at, k, from, to)
	return &Error{Kind: k, From: from, To: to, At: at}
}

// DrawCheckError draws a transfer-check failure for a store-barrier
// check on the path from node from to node to.
func (f *Plan) DrawCheckError(at time.Duration, from, to int) *Error {
	if f == nil || f.checkRate <= 0 || f.draw() >= f.checkRate {
		return nil
	}
	f.Injected.Checks++
	k := f.drawKind()
	f.notify(at, k, from, to)
	return &Error{Kind: k, From: from, To: to, At: at}
}

// DrawDuplicate reports whether the next control packet should be
// delivered twice.
func (f *Plan) DrawDuplicate() bool {
	if f == nil || f.dupRate <= 0 || f.draw() >= f.dupRate {
		return false
	}
	f.Injected.Duplicates++
	return true
}

// drawKind alternates pseudo-randomly between the two retryable transfer
// error kinds.
func (f *Plan) drawKind() Kind {
	if f.draw() < 0.5 {
		return CRC
	}
	return Sequence
}
