package fault

import (
	"testing"
	"time"
)

// drawSequence records the outcome of a fixed mixed draw workload.
func drawSequence(f *Plan, n int) []bool {
	out := make([]bool, 0, 4*n)
	for i := 0; i < n; i++ {
		out = append(out, f.DrawWriteError(time.Duration(i), 0, 1) != nil)
		out = append(out, f.DrawDMAError(time.Duration(i), 0, 1) != nil)
		out = append(out, f.DrawCheckError(time.Duration(i), 0, 1) != nil)
		out = append(out, f.DrawDuplicate())
	}
	return out
}

func mkPlan(seed uint64) *Plan {
	return New(seed).
		WithWriteErrors(0.2).WithDMAErrors(0.1).
		WithCheckErrors(0.15).WithDuplicates(0.05)
}

func TestDrawsDeterministicPerSeed(t *testing.T) {
	a := drawSequence(mkPlan(42), 500)
	b := drawSequence(mkPlan(42), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverges between same-seed plans", i)
		}
	}
	var hits int
	for _, v := range a {
		if v {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no faults drawn at substantial rates")
	}
	c := drawSequence(mkPlan(43), 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical draw sequences")
	}
}

func TestRatesClamped(t *testing.T) {
	f := New(1).WithWriteErrors(2.5)
	if f.writeRate > 0.95 {
		t.Errorf("rate %v not clamped to 0.95", f.writeRate)
	}
	if g := New(1).WithDuplicates(-3); g.dupRate != 0 {
		t.Errorf("negative rate %v not clamped to 0", g.dupRate)
	}
}

func TestNilPlanInjectsNothing(t *testing.T) {
	var f *Plan
	if f.DrawWriteError(0, 0, 1) != nil || f.DrawDMAError(0, 0, 1) != nil ||
		f.DrawCheckError(0, 0, 1) != nil || f.DrawDuplicate() {
		t.Error("nil plan drew a fault")
	}
	if f.Disturbed(0, 1, 0) || f.TakeImportFailure(0, 0) {
		t.Error("nil plan reported scheduled faults")
	}
	if f.NodeSchedule() != nil || f.SegmentSchedule() != nil {
		t.Error("nil plan reported schedules")
	}
}

func TestDisturbanceWindows(t *testing.T) {
	f := New(1).
		DisturbLink(0, 1, time.Millisecond, 2*time.Millisecond).
		DisturbLink(Any, 3, 5*time.Millisecond, 6*time.Millisecond)
	if f.Disturbed(0, 1, 500*time.Microsecond) {
		t.Error("disturbed before window start")
	}
	if !f.Disturbed(0, 1, 1500*time.Microsecond) || !f.Disturbed(1, 0, 1500*time.Microsecond) {
		t.Error("window not symmetric inside [start, end)")
	}
	if f.Disturbed(0, 1, 2*time.Millisecond) {
		t.Error("disturbed at window end (should be exclusive)")
	}
	if f.Disturbed(0, 2, 1500*time.Microsecond) {
		t.Error("unrelated pair disturbed")
	}
	if !f.Disturbed(2, 3, 5500*time.Microsecond) || !f.Disturbed(3, 7, 5500*time.Microsecond) {
		t.Error("Any wildcard endpoint not matched")
	}
}

func TestImportFailuresConsumed(t *testing.T) {
	f := New(1).FailImports(1, 0, 2)
	if !f.TakeImportFailure(1, 0) || !f.TakeImportFailure(1, 0) {
		t.Fatal("scheduled import failures not taken")
	}
	if f.TakeImportFailure(1, 0) {
		t.Error("import failure taken beyond scheduled count")
	}
	if f.Injected.Imports != 2 {
		t.Errorf("Injected.Imports = %d, want 2", f.Injected.Imports)
	}
}

func TestErrorRetryability(t *testing.T) {
	for kind, want := range map[Kind]bool{
		CRC: true, Sequence: true, LinkDisturbed: true,
		NodeUnreachable: false, SegmentRevoked: false,
		ImportDenied: false, Timeout: false,
	} {
		e := &Error{Kind: kind, From: 0, To: 1}
		if e.Retryable() != want {
			t.Errorf("%v retryable = %v, want %v", kind, e.Retryable(), want)
		}
	}
}
