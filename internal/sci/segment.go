package sci

import (
	"fmt"

	"scimpich/internal/fault"
	"scimpich/internal/sim"
)

// ErrOutOfRange is returned (on the fallible Try* entry points) or
// panicked (on the legacy entry points) when an access falls outside the
// mapped segment.
type ErrOutOfRange struct {
	Off, Len, Size int64
}

func (e ErrOutOfRange) Error() string {
	return fmt.Sprintf("sci: access [%d, %d) outside segment of %d bytes", e.Off, e.Off+e.Len, e.Size)
}

// ErrSegmentLost is returned when a mapping's segment has been revoked
// (unmapped by its owner or withdrawn by the driver) while still in use.
type ErrSegmentLost struct {
	Owner, Seg int
}

func (e ErrSegmentLost) Error() string {
	return fmt.Sprintf("sci: segment %d of node %d was revoked", e.Seg, e.Owner)
}

// Segment is a region of a node's physical memory exported for remote
// access. The backing buffer is real: remote writes actually deposit bytes
// here, so every protocol built on top is testable for correctness.
type Segment struct {
	owner   *Node
	id      int
	buf     []byte
	revoked bool
}

// Export allocates and exports a new segment of the given size on the node.
// (In the real system this memory comes from the SCI kernel driver; see the
// paper's discussion of MPI_Alloc_mem.)
func (n *Node) Export(size int64) *Segment {
	if size < 0 {
		panic("sci: negative segment size")
	}
	return n.ExportBuffer(make([]byte, size))
}

// ExportBuffer exports an existing buffer as a segment (the paper's [13]:
// recent SCI drivers can expose arbitrary user memory). The caller keeps
// direct access to buf; windows use this to share one backing array between
// the SCI and intra-node views.
func (n *Node) ExportBuffer(buf []byte) *Segment {
	s := &Segment{owner: n, id: n.nextSeg, buf: buf}
	n.segs[s.id] = s
	n.nextSeg++
	return s
}

// Unexport removes the segment from the node's export table.
func (n *Node) Unexport(s *Segment) {
	delete(n.segs, s.id)
}

// ID returns the segment's identifier, unique per owning node.
func (s *Segment) ID() int { return s.id }

// Owner returns the owning node.
func (s *Segment) Owner() *Node { return s.owner }

// Size returns the segment size in bytes.
func (s *Segment) Size() int64 { return int64(len(s.buf)) }

// Local returns the owner's direct view of the segment memory. Only the
// owning node's processes should touch it; remote access goes through a
// Mapping.
func (s *Segment) Local() []byte { return s.buf }

// Mapping is a remote node's transparently mapped view of a segment. All
// remote loads and stores are performed through it and are charged with
// the SCI cost model.
type Mapping struct {
	from *Node
	seg  *Segment
}

// Import maps a segment exported by another node (or the same node: a
// self-import behaves like local shared memory) into node n's address
// space.
func (n *Node) Import(owner int, segID int) (*Mapping, error) {
	if owner < 0 || owner >= len(n.ic.nodes) {
		return nil, fmt.Errorf("sci: import from unknown node %d", owner)
	}
	if n.ic.Cfg.Fault.TakeImportFailure(owner, segID) {
		n.ic.countFault(fault.ImportDenied)
		n.ic.tracef(n.name, "import of segment %d@node%d denied (plan)", segID, owner)
		return nil, &fault.Error{Kind: fault.ImportDenied, From: n.id, To: owner, At: n.ic.E.Now()}
	}
	if !n.ic.Alive(owner) {
		// Importing from a crashed node is a fault-reachable path (recovery
		// layers rebuild their windows after a crash), not a programming
		// error: surface the typed unreachability fault instead of panicking
		// in MustImport on the missing export table.
		n.ic.countFault(fault.NodeUnreachable)
		n.ic.tracef(n.name, "import of segment %d@node%d failed: node down", segID, owner)
		return nil, &fault.Error{Kind: fault.NodeUnreachable, From: n.id, To: owner, At: n.ic.E.Now()}
	}
	seg, ok := n.ic.nodes[owner].segs[segID]
	if !ok {
		return nil, fmt.Errorf("sci: node %d exports no segment %d", owner, segID)
	}
	return &Mapping{from: n, seg: seg}, nil
}

// MustImport is Import for wiring code where failure is a programming error.
func (n *Node) MustImport(owner, segID int) *Mapping {
	m, err := n.Import(owner, segID)
	if err != nil {
		panic(err)
	}
	return m
}

// Segment returns the mapped segment.
func (m *Mapping) Segment() *Segment { return m.seg }

// Remote reports whether the mapping crosses the ring.
func (m *Mapping) Remote() bool { return m.from != m.seg.owner }

// Size returns the mapped segment's size.
func (m *Mapping) Size() int64 { return m.seg.Size() }

// Valid reports whether the mapping's segment is still exported (not
// revoked).
func (m *Mapping) Valid() bool { return !m.seg.revoked }

// Sync issues a store barrier on the importing node, guaranteeing delivery
// of all writes this node has posted (not just through this mapping).
func (m *Mapping) Sync(p *sim.Proc) {
	m.from.StoreBarrier(p)
}

// CheckedSync is the transfer-check barrier (check-after-store-barrier, as
// SCI-MPICH performs after each Sync): a store barrier followed by a check
// of the adapter's transfer status toward the segment owner. Failed checks
// of retryable faults (CRC/sequence/link disturbance) are retried with
// exponential backoff, bounded by Config.CheckRetryMax; exhausting the cap
// converts the persistent failure into ErrConnectionLost. Non-retryable
// failures (dead owner, revoked segment) surface immediately as their
// typed error.
func (m *Mapping) CheckedSync(p *sim.Proc) error {
	from := m.from
	cfg := &from.ic.Cfg
	backoff := cfg.CheckBackoff
	for attempt := 0; ; attempt++ {
		from.StoreBarrier(p)
		err := m.checkStatus(p)
		if err == nil {
			return nil
		}
		fe, ok := err.(*fault.Error)
		if !ok || !fe.Retryable() {
			return err
		}
		if attempt >= cfg.CheckRetryMax {
			from.ic.tracef(from.name,
				"transfer check toward node %d failed %d times, connection lost", m.seg.owner.id, attempt+1)
			return ErrConnectionLost{From: from.id, To: m.seg.owner.id}
		}
		from.stats.checkRetries.Add(1)
		from.ic.tracef(from.name,
			"transfer check toward node %d failed (%v), retry %d after %v", m.seg.owner.id, fe.Kind, attempt+1, backoff)
		p.Sleep(backoff)
		backoff *= 2
	}
}

// checkStatus inspects the (simulated) adapter status registers for the
// path of this mapping after a store barrier.
func (m *Mapping) checkStatus(p *sim.Proc) error {
	if err := m.stateErr(); err != nil {
		return err
	}
	if !m.Remote() {
		return nil
	}
	owner := m.seg.owner
	if owner.dead {
		return ErrConnectionLost{From: m.from.id, To: owner.id}
	}
	if fe := m.from.ic.Cfg.Fault.DrawCheckError(p.Now(), m.from.id, owner.id); fe != nil {
		m.from.stats.transferErrors.Add(1)
		m.from.ic.countFault(fe.Kind)
		return fe
	}
	return nil
}

func (m *Mapping) checkRange(off, n int64) {
	if err := m.rangeErr(off, n); err != nil {
		panic(err)
	}
}

// rangeErr validates an access window against the segment bounds.
func (m *Mapping) rangeErr(off, n int64) error {
	if off < 0 || n < 0 || off+n > m.seg.Size() {
		return ErrOutOfRange{Off: off, Len: n, Size: m.seg.Size()}
	}
	return nil
}

// stateErr reports a revoked mapping as ErrSegmentLost.
func (m *Mapping) stateErr() error {
	if m.seg.revoked {
		return ErrSegmentLost{Owner: m.seg.owner.id, Seg: m.seg.id}
	}
	return nil
}
