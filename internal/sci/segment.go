package sci

import (
	"fmt"

	"scimpich/internal/sim"
)

// Segment is a region of a node's physical memory exported for remote
// access. The backing buffer is real: remote writes actually deposit bytes
// here, so every protocol built on top is testable for correctness.
type Segment struct {
	owner *Node
	id    int
	buf   []byte
}

// Export allocates and exports a new segment of the given size on the node.
// (In the real system this memory comes from the SCI kernel driver; see the
// paper's discussion of MPI_Alloc_mem.)
func (n *Node) Export(size int64) *Segment {
	if size < 0 {
		panic("sci: negative segment size")
	}
	return n.ExportBuffer(make([]byte, size))
}

// ExportBuffer exports an existing buffer as a segment (the paper's [13]:
// recent SCI drivers can expose arbitrary user memory). The caller keeps
// direct access to buf; windows use this to share one backing array between
// the SCI and intra-node views.
func (n *Node) ExportBuffer(buf []byte) *Segment {
	s := &Segment{owner: n, id: n.nextSeg, buf: buf}
	n.segs[s.id] = s
	n.nextSeg++
	return s
}

// Unexport removes the segment from the node's export table.
func (n *Node) Unexport(s *Segment) {
	delete(n.segs, s.id)
}

// ID returns the segment's identifier, unique per owning node.
func (s *Segment) ID() int { return s.id }

// Owner returns the owning node.
func (s *Segment) Owner() *Node { return s.owner }

// Size returns the segment size in bytes.
func (s *Segment) Size() int64 { return int64(len(s.buf)) }

// Local returns the owner's direct view of the segment memory. Only the
// owning node's processes should touch it; remote access goes through a
// Mapping.
func (s *Segment) Local() []byte { return s.buf }

// Mapping is a remote node's transparently mapped view of a segment. All
// remote loads and stores are performed through it and are charged with
// the SCI cost model.
type Mapping struct {
	from *Node
	seg  *Segment
}

// Import maps a segment exported by another node (or the same node: a
// self-import behaves like local shared memory) into node n's address
// space.
func (n *Node) Import(owner int, segID int) (*Mapping, error) {
	if owner < 0 || owner >= len(n.ic.nodes) {
		return nil, fmt.Errorf("sci: import from unknown node %d", owner)
	}
	seg, ok := n.ic.nodes[owner].segs[segID]
	if !ok {
		return nil, fmt.Errorf("sci: node %d exports no segment %d", owner, segID)
	}
	return &Mapping{from: n, seg: seg}, nil
}

// MustImport is Import for wiring code where failure is a programming error.
func (n *Node) MustImport(owner, segID int) *Mapping {
	m, err := n.Import(owner, segID)
	if err != nil {
		panic(err)
	}
	return m
}

// Segment returns the mapped segment.
func (m *Mapping) Segment() *Segment { return m.seg }

// Remote reports whether the mapping crosses the ring.
func (m *Mapping) Remote() bool { return m.from != m.seg.owner }

// Size returns the mapped segment's size.
func (m *Mapping) Size() int64 { return m.seg.Size() }

// Sync issues a store barrier on the importing node, guaranteeing delivery
// of all writes this node has posted (not just through this mapping).
func (m *Mapping) Sync(p *sim.Proc) {
	m.from.StoreBarrier(p)
}

func (m *Mapping) checkRange(off, n int64) {
	if off < 0 || n < 0 || off+n > m.seg.Size() {
		panic(fmt.Sprintf("sci: access [%d, %d) outside segment of %d bytes", off, off+n, m.seg.Size()))
	}
}
