package sci

import (
	"bytes"
	"math"
	"testing"
	"time"

	"scimpich/internal/sim"
)

// testCluster builds an engine plus an interconnect of n nodes.
func testCluster(n int) (*sim.Engine, *Interconnect) {
	e := sim.NewEngine()
	return e, New(e, DefaultConfig(n))
}

func fill(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + 3)
	}
	return b
}

func TestWriteStreamDeliversAfterBarrier(t *testing.T) {
	e, ic := testCluster(2)
	seg := ic.Node(1).Export(4096)
	src := fill(1024)
	e.Go("writer", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		m.WriteStream(p, 100, src, 0)
		ic.Node(0).StoreBarrier(p)
		if !bytes.Equal(seg.Local()[100:1124], src) {
			t.Error("data not delivered after store barrier")
		}
	})
	e.Run()
}

func TestWriteVisibilityDelayedUntilWireLatency(t *testing.T) {
	e, ic := testCluster(2)
	seg := ic.Node(1).Export(64)
	e.Go("writer", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		m.WriteWord(p, 0, []byte{0xAB})
		// Immediately after the posted write the data is still in flight.
		if seg.Local()[0] == 0xAB {
			t.Error("posted write visible before wire latency")
		}
		p.Sleep(ic.Cfg.PIOWriteLatency + time.Microsecond)
		if seg.Local()[0] != 0xAB {
			t.Error("posted write not visible after wire latency")
		}
	})
	e.Run()
}

func TestWriteStreamBandwidthNearPeak(t *testing.T) {
	e, ic := testCluster(2)
	const n = 4 << 20
	seg := ic.Node(1).Export(n)
	src := make([]byte, n)
	var elapsed time.Duration
	e.Go("writer", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		start := p.Now()
		m.WriteStream(p, 0, src, 0)
		elapsed = p.Now() - start
	})
	e.Run()
	bw := float64(n) / elapsed.Seconds() / MiB
	// Large contiguous PIO writes approach the configured peak (225 MiB/s).
	if bw < 200 || bw > 230 {
		t.Errorf("large sequential write bandwidth = %.1f MiB/s, want ~225", bw)
	}
}

func TestSourceCacheDipForHugeWorkingSet(t *testing.T) {
	e, ic := testCluster(2)
	const n = 4 << 20
	seg := ic.Node(1).Export(n)
	src := make([]byte, n)
	var fast, slow time.Duration
	e.Go("writer", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		start := p.Now()
		m.WriteStream(p, 0, src, 64<<10) // cached source
		fast = p.Now() - start
		start = p.Now()
		m.WriteStream(p, 0, src, 8<<20) // DRAM source
		slow = p.Now() - start
	})
	e.Run()
	if slow <= fast {
		t.Errorf("DRAM-sourced write (%v) not slower than cached write (%v)", slow, fast)
	}
}

func TestReadSlowerThanWrite(t *testing.T) {
	e, ic := testCluster(2)
	const n = 256 << 10
	seg := ic.Node(1).Export(n)
	src := make([]byte, n)
	dst := make([]byte, n)
	var wTime, rTime time.Duration
	e.Go("p", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		start := p.Now()
		m.WriteStream(p, 0, src, 0)
		ic.Node(0).StoreBarrier(p)
		wTime = p.Now() - start
		start = p.Now()
		m.Read(p, 0, dst)
		rTime = p.Now() - start
	})
	e.Run()
	if rTime < 5*wTime {
		t.Errorf("remote read (%v) should be far slower than write (%v)", rTime, wTime)
	}
}

func TestSmallReadLatency(t *testing.T) {
	e, ic := testCluster(2)
	seg := ic.Node(1).Export(64)
	var lat time.Duration
	e.Go("p", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		dst := make([]byte, 8)
		start := p.Now()
		m.Read(p, 0, dst)
		lat = p.Now() - start
	})
	e.Run()
	// A small remote read stalls for roughly one transaction: a few µs.
	if lat < 2*time.Microsecond || lat > 10*time.Microsecond {
		t.Errorf("8-byte remote read latency = %v, want a few µs", lat)
	}
}

func TestStridedWriteAlignmentSensitivity(t *testing.T) {
	cfg := DefaultConfig(2)
	aligned := cfg.StridedWriteBW(256, 512) // 512 % 32 == 0
	worst := cfg.StridedWriteBW(256, 520)   // misaligned
	if math.Abs(aligned-162*MiB) > 2*MiB {
		t.Errorf("aligned 256B strided bw = %.1f MiB/s, want ~162 (paper §4.3)", aligned/MiB)
	}
	if math.Abs(worst-7*MiB) > 1*MiB {
		t.Errorf("worst 256B strided bw = %.1f MiB/s, want ~7 (paper §4.3)", worst/MiB)
	}
	a8 := cfg.StridedWriteBW(8, 32)
	w8 := cfg.StridedWriteBW(8, 40)
	if math.Abs(a8-28*MiB) > 1*MiB || math.Abs(w8-5*MiB) > 1*MiB {
		t.Errorf("8B strided bw = %.1f / %.1f MiB/s, want ~28 / ~5", a8/MiB, w8/MiB)
	}
}

func TestWriteCombineDisabledFlattensStrideSensitivity(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.WriteCombine = false
	a := cfg.StridedWriteBW(256, 512)
	b := cfg.StridedWriteBW(256, 520)
	if a != b {
		t.Errorf("WC off: stride sensitivity remains (%g vs %g)", a, b)
	}
	on := DefaultConfig(2)
	if a >= on.StridedWriteBW(256, 512) {
		t.Errorf("WC off bandwidth %g not below WC-on aligned %g", a, on.StridedWriteBW(256, 512))
	}
	if a <= on.StridedWriteBW(256, 520) {
		t.Errorf("WC off bandwidth %g not above WC-on worst case %g", a, on.StridedWriteBW(256, 520))
	}
}

func TestWriteStridedScattersData(t *testing.T) {
	e, ic := testCluster(2)
	seg := ic.Node(1).Export(1024)
	src := fill(64)
	e.Go("p", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		m.WriteStrided(p, 0, src, 16, 32)
		ic.Node(0).StoreBarrier(p)
	})
	e.Run()
	buf := seg.Local()
	for i := 0; i < 4; i++ {
		got := buf[i*32 : i*32+16]
		want := src[i*16 : (i+1)*16]
		if !bytes.Equal(got, want) {
			t.Fatalf("access %d: got %v want %v", i, got, want)
		}
		gap := buf[i*32+16 : (i+1)*32]
		for _, b := range gap {
			if b != 0 {
				t.Fatalf("access %d wrote into the gap", i)
			}
		}
	}
}

func TestReadStridedGathers(t *testing.T) {
	e, ic := testCluster(2)
	seg := ic.Node(1).Export(1024)
	// Owner lays out strided data locally.
	for i := 0; i < 4; i++ {
		copy(seg.Local()[i*64:], fill(16)[:16])
	}
	e.Go("p", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		dst := make([]byte, 64)
		m.ReadStrided(p, 0, dst, 16, 64)
		for i := 0; i < 4; i++ {
			if !bytes.Equal(dst[i*16:(i+1)*16], fill(16)) {
				t.Fatalf("gathered access %d mismatch", i)
			}
		}
	})
	e.Run()
}

func TestBlockWriterEquivalenceAndCost(t *testing.T) {
	e, ic := testCluster(2)
	seg := ic.Node(1).Export(1 << 20)
	var smallCost, bigCost time.Duration
	e.Go("p", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		// Write 256 kiB as 8-byte blocks vs as 4-kiB blocks.
		total := 256 << 10
		data := fill(total)
		start := p.Now()
		w := m.NewBlockWriter(p, int64(total))
		for off := 0; off < total; off += 8 {
			w.Write(int64(off), data[off:off+8])
		}
		w.Flush()
		smallCost = p.Now() - start
		if !bytes.Equal(seg.Local()[:total], data) {
			t.Error("block-written data mismatch")
		}
		start = p.Now()
		w = m.NewBlockWriter(p, int64(total))
		for off := 0; off < total; off += 4096 {
			w.Write(int64(off), data[off:off+4096])
		}
		w.Flush()
		bigCost = p.Now() - start
	})
	e.Run()
	if smallCost < 4*bigCost {
		t.Errorf("8B-block remote pack (%v) should be much slower than 4kiB blocks (%v)", smallCost, bigCost)
	}
}

func TestDMATransfer(t *testing.T) {
	e, ic := testCluster(2)
	const n = 1 << 20
	seg := ic.Node(1).Export(n)
	src := fill(n)
	var submitCost, totalCost time.Duration
	e.Go("p", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		start := p.Now()
		fut := m.DMAWrite(p, 0, src)
		submitCost = p.Now() - start
		p.Await(fut)
		totalCost = p.Now() - start
		if !bytes.Equal(seg.Local()[:n], src) {
			t.Error("DMA data mismatch")
		}
	})
	e.Run()
	if submitCost > 5*time.Microsecond {
		t.Errorf("DMA submission cost %v, want cheap (<5µs)", submitCost)
	}
	bw := float64(n) / totalCost.Seconds() / MiB
	if bw > 85 || bw < 60 {
		t.Errorf("DMA bandwidth %.1f MiB/s, want <=85 and near it", bw)
	}
}

func TestTwoSendersShareTargetIngress(t *testing.T) {
	e, ic := testCluster(4)
	const n = 8 << 20
	seg := ic.Node(3).Export(2 * n)
	var t1, t2 time.Duration
	e.Go("a", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(3, seg.ID())
		start := p.Now()
		m.WriteStream(p, 0, make([]byte, n), 0)
		t1 = p.Now() - start
	})
	e.Go("b", func(p *sim.Proc) {
		m := ic.Node(1).MustImport(3, seg.ID())
		start := p.Now()
		m.WriteStream(p, n, make([]byte, n), 0)
		t2 = p.Now() - start
	})
	e.Run()
	solo := float64(n) / (225 * MiB)
	// Sharing the target's ingress, each should take roughly twice as long
	// as alone.
	for _, d := range []time.Duration{t1, t2} {
		if d.Seconds() < 1.7*solo {
			t.Errorf("concurrent write finished in %v; expected ingress sharing to slow it (solo %.3fs)", d, solo)
		}
	}
}

func TestFaultInjectionPreservesDataAndAddsRetries(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig(2)
	cfg.FaultRate = 0.2
	ic := New(e, cfg)
	seg := ic.Node(1).Export(1 << 20)
	src := fill(1 << 20)
	e.Go("p", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		for i := 0; i < 64; i++ {
			m.WriteStream(p, int64(i)*16384, src[i*16384:(i+1)*16384], 0)
		}
		ic.Node(0).StoreBarrier(p)
	})
	e.Run()
	if !bytes.Equal(seg.Local(), src) {
		t.Error("fault injection corrupted delivered data")
	}
	if ic.Node(0).Snapshot().Retries == 0 {
		t.Error("no retries recorded at 20% fault rate over 64 transfers")
	}
}

func TestFaultScheduleDeterministic(t *testing.T) {
	run := func() int64 {
		e := sim.NewEngine()
		cfg := DefaultConfig(2)
		cfg.FaultRate = 0.3
		ic := New(e, cfg)
		seg := ic.Node(1).Export(1 << 16)
		e.Go("p", func(p *sim.Proc) {
			m := ic.Node(0).MustImport(1, seg.ID())
			for i := 0; i < 100; i++ {
				m.WriteStream(p, 0, make([]byte, 4096), 0)
			}
		})
		e.Run()
		return ic.Node(0).Snapshot().Retries
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("retry counts differ across identical runs: %d vs %d", a, b)
	}
}

func TestSignalDelivery(t *testing.T) {
	e, ic := testCluster(2)
	sig := ic.Node(1).NewSignal()
	var got any
	var at time.Duration
	e.Go("waiter", func(p *sim.Proc) {
		got = sig.Wait(p)
		at = p.Now()
	})
	e.Go("ringer", func(p *sim.Proc) {
		p.Sleep(10 * time.Microsecond)
		sig.RingFrom(p, ic.Node(0), "hello", false)
	})
	e.Run()
	if got != "hello" {
		t.Errorf("signal value = %v, want hello", got)
	}
	if at < 10*time.Microsecond+ic.Cfg.PIOWriteLatency {
		t.Errorf("signal arrived at %v, before wire latency elapsed", at)
	}
}

func TestSignalInterruptCostsMore(t *testing.T) {
	e, ic := testCluster(2)
	sigFast := ic.Node(1).NewSignal()
	sigInt := ic.Node(1).NewSignal()
	var tFast, tInt time.Duration
	e.Go("waiter", func(p *sim.Proc) {
		sigFast.Wait(p)
		tFast = p.Now()
		sigInt.Wait(p)
		tInt = p.Now()
	})
	e.Go("ringer", func(p *sim.Proc) {
		sigFast.RingFrom(p, ic.Node(0), 1, false)
		sigInt.RingFrom(p, ic.Node(0), 2, true)
	})
	e.Run()
	if tInt-tFast < ic.Cfg.InterruptLatency {
		t.Errorf("interrupt signal (%v) not slower than flag signal (%v) by the interrupt latency", tInt, tFast)
	}
}

func TestImportErrors(t *testing.T) {
	_, ic := testCluster(2)
	if _, err := ic.Node(0).Import(5, 0); err == nil {
		t.Error("import from unknown node succeeded")
	}
	if _, err := ic.Node(0).Import(1, 99); err == nil {
		t.Error("import of unknown segment succeeded")
	}
	seg := ic.Node(1).Export(16)
	if _, err := ic.Node(0).Import(1, seg.ID()); err != nil {
		t.Errorf("valid import failed: %v", err)
	}
	ic.Node(1).Unexport(seg)
	if _, err := ic.Node(0).Import(1, seg.ID()); err == nil {
		t.Error("import of unexported segment succeeded")
	}
}

func TestOutOfRangeAccessPanics(t *testing.T) {
	e, ic := testCluster(2)
	seg := ic.Node(1).Export(16)
	e.Go("p", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		defer func() {
			if recover() == nil {
				t.Error("out-of-range write did not panic")
			}
		}()
		m.WriteStream(p, 8, make([]byte, 16), 0)
	})
	e.Run()
}

func TestLocalMappingIsImmediate(t *testing.T) {
	e, ic := testCluster(2)
	seg := ic.Node(0).Export(64)
	e.Go("p", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(0, seg.ID())
		if m.Remote() {
			t.Error("self-import reported remote")
		}
		m.WriteWord(p, 0, []byte{7})
		if seg.Local()[0] != 7 {
			t.Error("local write not immediately visible")
		}
	})
	e.Run()
}
