package sci

import (
	"testing"
	"time"

	"scimpich/internal/sim"
)

// TestAllocsRemoteDeliveryCapture pins the posted-write delivery pipeline at
// zero allocations per operation: issuing a remote write captures the source
// bytes in a pooled buffer, schedules the arrival through the engine's event
// freelist, and lands + recycles everything in deliverArrive. Payloads stay
// under flowThreshold so the test exercises the PIO fast path rather than the
// flow network.
func TestAllocsRemoteDeliveryCapture(t *testing.T) {
	e, ic := testCluster(2)
	seg := ic.Node(1).Export(1 << 20)
	src := fill(1024)
	word := fill(8)
	drain := ic.Cfg.PIOWriteLatency + time.Microsecond
	e.Go("writer", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		cases := []struct {
			name string
			fn   func()
		}{
			// Each op sleeps past the wire latency so its delivery lands and
			// returns the pooled buffer before the next iteration grabs one.
			{"WriteStream", func() {
				m.WriteStream(p, 0, src, 0)
				p.Sleep(drain)
			}},
			{"WritePut-strided", func() {
				m.WritePut(p, 0, src, 64, 128)
				p.Sleep(drain)
			}},
			{"WritePut-dense", func() {
				m.WritePut(p, 0, src, 64, 64)
				p.Sleep(drain)
			}},
			{"WriteWord", func() {
				m.WriteWord(p, 4096, word)
				p.Sleep(drain)
			}},
		}
		for _, tc := range cases {
			// Warm the buffer pool, delivery pool and event freelist.
			for i := 0; i < 8; i++ {
				tc.fn()
			}
			if n := testing.AllocsPerRun(100, tc.fn); n != 0 {
				t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
			}
		}
	})
	e.Run()
}

// TestAllocsStoreBarrierDrained checks that a store barrier over an already
// drained node (no posted writes in flight) does not allocate: the shared
// barrier future is only created when there is something to wait for.
func TestAllocsStoreBarrierDrained(t *testing.T) {
	e, ic := testCluster(2)
	seg := ic.Node(1).Export(4096)
	src := fill(256)
	drain := ic.Cfg.PIOWriteLatency + time.Microsecond
	e.Go("writer", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		fn := func() {
			m.WriteStream(p, 0, src, 0)
			p.Sleep(drain)
			ic.Node(0).StoreBarrier(p)
		}
		for i := 0; i < 8; i++ {
			fn()
		}
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("write+drained barrier: %v allocs/op, want 0", n)
		}
	})
	e.Run()
}
