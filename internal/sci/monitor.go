package sci

import (
	"fmt"
	"time"

	"scimpich/internal/fault"
	"scimpich/internal/sim"
)

// Connection monitoring (paper §2): "although a shared address space is
// provided, SCI is still a network in which single nodes may fail or
// physical connections may be disturbed (i.e. by plugging a cable). This
// makes a connection monitoring and transfer checking necessary, which is
// not required for intra-node shared memory communication."
//
// The model lets tests and experiments fail a node; transfers toward it
// then error out at the adapter level after bounded retries, while the
// monitor daemon detects the failure by probing.

// FailNode marks a node as unreachable (cable pulled / node crashed).
func (ic *Interconnect) FailNode(n int) {
	ic.nodes[n].dead = true
}

// RestoreNode brings a failed node back.
func (ic *Interconnect) RestoreNode(n int) {
	ic.nodes[n].dead = false
}

// RevokeSegment withdraws an exported segment mid-run (the driver unmaps
// it): existing mappings fail subsequent accesses with ErrSegmentLost and
// new imports no longer find it.
func (ic *Interconnect) RevokeSegment(owner, segID int) {
	n := ic.nodes[owner]
	if seg, ok := n.segs[segID]; ok {
		seg.revoked = true
		delete(n.segs, segID)
	}
}

// Alive reports whether the node is reachable.
func (ic *Interconnect) Alive(n int) bool { return !ic.nodes[n].dead }

// ErrConnectionLost is panicked (adapter-fatal) when a transfer exhausts
// its retries against an unreachable node. The MPI layer treats this as a
// fatal communication error, as real SCI-MPICH does after its transfer
// checking gives up.
type ErrConnectionLost struct {
	From, To int
}

func (e ErrConnectionLost) Error() string {
	return fmt.Sprintf("sci: connection from node %d to node %d lost", e.From, e.To)
}

// CheckConnection probes the path to a target node: a small remote write
// followed by a read-back of the probe cell. It returns whether the target
// responded and the measured round-trip time. This is the building block
// of the monitor daemon.
func (n *Node) CheckConnection(p *sim.Proc, target int) (bool, time.Duration) {
	cfg := &n.ic.Cfg
	start := p.Now()
	// Probe write + stalled read-back.
	p.Sleep(cfg.WriteIssueOverhead + cfg.PIOWriteLatency + cfg.PIOReadStall)
	if n.ic.nodes[target].dead {
		// The read-back times out (modelled as an extra stall).
		p.Sleep(cfg.PIOReadStall * 4)
		return false, p.Now() - start
	}
	return true, p.Now() - start
}

// checkReachable enforces reachability on the data path: transfers toward
// a failed node retry MaxTransferRetries times (costing RetryLatency each)
// and then raise ErrConnectionLost.
const maxTransferRetries = 3

func (n *Node) checkReachable(p *sim.Proc, target *Node) {
	if err := n.tryReachable(p, target); err != nil {
		panic(err)
	}
}

// tryReachable is the fallible variant: it retries toward a dead node with
// bounded RetryLatency delays and returns ErrConnectionLost instead of
// panicking when the retries are exhausted.
func (n *Node) tryReachable(p *sim.Proc, target *Node) error {
	if !target.dead {
		return nil
	}
	for i := 0; i < maxTransferRetries; i++ {
		n.stats.retries.Add(1)
		p.Sleep(n.ic.Cfg.RetryLatency)
		if !target.dead {
			return nil // the connection came back mid-retry
		}
	}
	n.ic.countFault(fault.NodeUnreachable)
	n.ic.tracef(n.name, "connection to node %d lost after %d retries", target.id, maxTransferRetries)
	return ErrConnectionLost{From: n.id, To: target.id}
}

// MonitorEvent records a connectivity change observed by a Monitor.
type MonitorEvent struct {
	At     time.Duration
	Target int
	Alive  bool
}

// Monitor is a connection-monitoring daemon on one node: it probes the
// given peers at a fixed interval and records state transitions.
type Monitor struct {
	node     *Node
	peers    []int
	interval time.Duration
	stopped  bool
	stopCh   *sim.Chan

	state  map[int]bool
	Events []MonitorEvent
}

// Stop ends the monitoring loop. It is safe to call from any proc (or an
// event callback) and is idempotent: the request is posted on a channel
// the daemon drains, and a probe sweep in progress terminates at the next
// peer boundary. Without a Stop the daemon polls forever, which keeps the
// simulation alive.
func (m *Monitor) Stop() {
	if m.stopped {
		return
	}
	m.stopped = true
	sim.Post(m.stopCh, struct{}{})
}

// StartMonitor launches the daemon. It probes each peer every interval and
// appends an event whenever a peer's reachability changes.
func (n *Node) StartMonitor(peers []int, interval time.Duration) *Monitor {
	m := &Monitor{
		node:     n,
		peers:    peers,
		interval: interval,
		stopCh:   sim.NewChan(1),
		state:    make(map[int]bool),
	}
	for _, t := range peers {
		m.state[t] = true
	}
	n.ic.E.GoDaemon(fmt.Sprintf("monitor%d", n.id), m.run)
	return m
}

func (m *Monitor) run(p *sim.Proc) {
	for {
		if _, stop := p.RecvTimeout(m.stopCh, m.interval); stop {
			return
		}
		for _, t := range m.peers {
			if m.stopped {
				// Stop arrived mid-sweep (possibly while a probe toward a
				// dead peer was stalling); abandon the rest of the sweep.
				return
			}
			alive, _ := m.node.CheckConnection(p, t)
			if alive != m.state[t] {
				m.state[t] = alive
				m.Events = append(m.Events, MonitorEvent{At: p.Now(), Target: t, Alive: alive})
			}
		}
	}
}

// Status returns the last known reachability of a peer.
func (m *Monitor) Status(target int) bool { return m.state[target] }
