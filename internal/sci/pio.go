package sci

import (
	"time"

	"scimpich/internal/bufpool"
	"scimpich/internal/fault"
	"scimpich/internal/sim"
)

// This file implements transparent remote memory access (PIO): the CPU
// issues loads and stores against mapped segments. Writes are posted
// (write-and-forget) — the issuing process is blocked only for the time the
// data needs to leave the node (which, for large transfers, is resolved by
// the contention-aware flow network) — and become visible at the target one
// wire latency later. StoreBarrier waits for all outstanding deliveries.

// mustRetry runs a fallible transfer, retrying retryable injected faults
// (CRC/sequence/link disturbance) a bounded number of times and panicking
// on persistent or non-retryable failure — the behaviour of the legacy
// infallible entry points, under which a fault plan still cannot make an
// operation silently fail.
func (m *Mapping) mustRetry(try func() error) {
	for attempt := 0; ; attempt++ {
		err := try()
		if err == nil {
			return
		}
		if fe, ok := err.(*fault.Error); ok && fe.Retryable() && attempt < maxTransferRetries {
			m.from.stats.retries.Add(1)
			continue
		}
		panic(err)
	}
}

// drawPIOFault consults the fault plan for an injected CRC/sequence error
// on one remote PIO transfer. The failed attempt costs one retry latency.
func (m *Mapping) drawPIOFault(p *sim.Proc) error {
	from := m.from
	fe := from.ic.Cfg.Fault.DrawWriteError(p.Now(), from.id, m.seg.owner.id)
	if fe == nil {
		return nil
	}
	from.stats.transferErrors.Add(1)
	from.ic.countFault(fe.Kind)
	from.ic.tracef(from.name, "%v error on transfer to node %d", fe.Kind, m.seg.owner.id)
	p.Sleep(from.ic.Cfg.RetryLatency)
	return fe
}

// WriteStream performs a contiguous remote write of src at offset off: the
// best case for the adapter's stream buffers (strictly sequential ascending
// addresses). srcWorkingSet is the size of the source data structure, used
// to cap the rate at the local memory read bandwidth (the paper's PIO dip
// beyond 128 kiB).
func (m *Mapping) WriteStream(p *sim.Proc, off int64, src []byte, srcWorkingSet int64) {
	m.mustRetry(func() error { return m.TryWriteStream(p, off, src, srcWorkingSet) })
}

// TryWriteStream is the fallible WriteStream: out-of-range accesses,
// revoked segments, unreachable owners and injected transfer errors are
// returned as typed errors instead of panicking.
func (m *Mapping) TryWriteStream(p *sim.Proc, off int64, src []byte, srcWorkingSet int64) error {
	n := int64(len(src))
	if err := m.rangeErr(off, n); err != nil {
		return err
	}
	if err := m.stateErr(); err != nil {
		return err
	}
	from := m.from
	from.stats.writeOps.Add(1)
	from.stats.bytesWritten.Add(n)
	from.ic.met.bytesWritten.Add(n)
	cfg := &from.ic.Cfg
	if !m.Remote() {
		// Local store through the mapping: plain memory copy.
		p.Sleep(cfg.Mem.CopyCost(n, n, srcWorkingSet))
		copy(m.seg.buf[off:], src)
		return nil
	}
	start := p.Now()
	if err := m.drawPIOFault(p); err != nil {
		return err
	}
	bw := cfg.StreamWriteBW(n)
	if srcWorkingSet > 0 {
		bw = cfg.Mem.EffectiveSourceBW(bw, srcWorkingSet)
	}
	if err := from.tryTransferCost(p, m.seg.owner, n, bw); err != nil {
		return err
	}
	from.postDelivery(m.seg, off, bufpool.Clone(src), 0, 0)
	from.ic.met.writeStreamNS.ObserveDuration(p.Now() - start)
	return nil
}

// WriteStrided writes len(src) bytes as accesses of accessSize bytes placed
// stride bytes apart, starting at off — the access pattern of the sparse
// one-sided benchmark and the §4.3 strided-write study. The cost depends on
// stride alignment relative to the CPU's write-combine buffer.
func (m *Mapping) WriteStrided(p *sim.Proc, off int64, src []byte, accessSize, stride int64) {
	n := int64(len(src))
	if n == 0 {
		return
	}
	if accessSize <= 0 || accessSize > n {
		accessSize = n
	}
	if stride < accessSize {
		stride = accessSize
	}
	accesses := (n + accessSize - 1) / accessSize
	span := (accesses-1)*stride + (n - (accesses-1)*accessSize)
	m.checkRange(off, span)
	from := m.from
	from.stats.writeOps.Add(accesses)
	from.stats.bytesWritten.Add(n)
	from.ic.met.bytesWritten.Add(n)
	cfg := &from.ic.Cfg
	if !m.Remote() {
		p.Sleep(cfg.Mem.CopyCost(n, accessSize, span))
		scatter(m.seg.buf[off:], src, accessSize, stride)
		return
	}
	var bw float64
	if stride == accessSize {
		// Dense run: consecutive accesses form one contiguous stream, so
		// the stream-buffer gather model applies, not the strided
		// write-combine penalty.
		bw = cfg.StreamWriteBW(n)
	} else {
		bw = cfg.StridedWriteBW(accessSize, stride)
	}
	from.transferCost(p, m.seg.owner, n, bw)
	from.postDelivery(m.seg, off, bufpool.Clone(src), accessSize, stride)
}

// WritePut is the MPI put path: a strided write whose sustained rate is
// additionally capped at the adapter's SustainedPutBW (the paper's Table 2
// measures ~121-123 MiB/s per node for the one-sided put workload, below
// the raw strided-store peak of the §4.3 microbenchmark).
func (m *Mapping) WritePut(p *sim.Proc, off int64, src []byte, accessSize, stride int64) {
	m.mustRetry(func() error { return m.TryWritePut(p, off, src, accessSize, stride) })
}

// TryWritePut is the fallible WritePut: typed errors instead of panics.
func (m *Mapping) TryWritePut(p *sim.Proc, off int64, src []byte, accessSize, stride int64) error {
	n := int64(len(src))
	if n == 0 {
		return nil
	}
	if accessSize <= 0 || accessSize > n {
		accessSize = n
	}
	if stride < accessSize {
		stride = accessSize
	}
	accesses := (n + accessSize - 1) / accessSize
	span := (accesses-1)*stride + (n - (accesses-1)*accessSize)
	if err := m.rangeErr(off, span); err != nil {
		return err
	}
	if err := m.stateErr(); err != nil {
		return err
	}
	from := m.from
	from.stats.writeOps.Add(accesses)
	from.stats.bytesWritten.Add(n)
	from.ic.met.bytesWritten.Add(n)
	cfg := &from.ic.Cfg
	if !m.Remote() {
		p.Sleep(cfg.Mem.CopyCost(n, accessSize, span))
		scatter(m.seg.buf[off:], src, accessSize, stride)
		return nil
	}
	start := p.Now()
	if err := m.drawPIOFault(p); err != nil {
		return err
	}
	var bw float64
	if stride == accessSize {
		// Dense put: contiguous ascending stores, priced by the stream
		// model (see WriteStrided).
		bw = cfg.StreamWriteBW(n)
	} else {
		bw = cfg.StridedWriteBW(accessSize, stride)
	}
	if bw > cfg.SustainedPutBW {
		bw = cfg.SustainedPutBW
	}
	if err := from.tryTransferCost(p, m.seg.owner, n, bw); err != nil {
		return err
	}
	from.postDelivery(m.seg, off, bufpool.Clone(src), accessSize, stride)
	from.ic.met.putNS.ObserveDuration(p.Now() - start)
	return nil
}

// WriteWord writes a small value (at most one SCI transaction) and returns
// immediately; visibility follows after the wire latency. It is the
// building block for flags and control words.
func (m *Mapping) WriteWord(p *sim.Proc, off int64, src []byte) {
	n := int64(len(src))
	m.checkRange(off, n)
	from := m.from
	from.stats.writeOps.Add(1)
	from.stats.bytesWritten.Add(n)
	p.Sleep(from.ic.Cfg.WriteIssueOverhead)
	if !m.Remote() {
		copy(m.seg.buf[off:], src)
		return
	}
	from.postDelivery(m.seg, off, bufpool.Clone(src), 0, 0)
}

// Read performs a transparent remote read into dst. The CPU stalls until
// the data arrives; bandwidth is a fraction of the write bandwidth (the
// paper's motivation for the remote-put optimization of MPI_Get).
func (m *Mapping) Read(p *sim.Proc, off int64, dst []byte) {
	m.mustRetry(func() error { return m.TryRead(p, off, dst) })
}

// TryRead is the fallible Read: typed errors instead of panics. A failed
// read leaves dst untouched.
func (m *Mapping) TryRead(p *sim.Proc, off int64, dst []byte) error {
	n := int64(len(dst))
	if err := m.rangeErr(off, n); err != nil {
		return err
	}
	if err := m.stateErr(); err != nil {
		return err
	}
	from := m.from
	from.stats.readOps.Add(1)
	from.stats.bytesRead.Add(n)
	from.ic.met.bytesRead.Add(n)
	cfg := &from.ic.Cfg
	if !m.Remote() {
		p.Sleep(cfg.Mem.CopyCost(n, n, n))
		copy(dst, m.seg.buf[off:off+n])
		return nil
	}
	start := p.Now()
	from.ic.faults.maybeRetry(p, &from.stats)
	if err := from.tryReachable(p, m.seg.owner); err != nil {
		return err
	}
	if err := from.tryLinkClear(p, m.seg.owner); err != nil {
		return err
	}
	if err := m.drawPIOFault(p); err != nil {
		return err
	}
	p.Sleep(sim.RateDuration(n, cfg.ReadBW(n)))
	copy(dst, m.seg.buf[off:off+n])
	from.ic.met.readNS.ObserveDuration(p.Now() - start)
	return nil
}

// ReadStrided reads count accesses of accessSize bytes placed stride bytes
// apart into dst (gathering them densely). Every access stalls like Read.
func (m *Mapping) ReadStrided(p *sim.Proc, off int64, dst []byte, accessSize, stride int64) {
	n := int64(len(dst))
	if n == 0 {
		return
	}
	if accessSize <= 0 || accessSize > n {
		accessSize = n
	}
	if stride < accessSize {
		stride = accessSize
	}
	accesses := (n + accessSize - 1) / accessSize
	span := (accesses-1)*stride + (n - (accesses-1)*accessSize)
	m.checkRange(off, span)
	from := m.from
	from.stats.readOps.Add(accesses)
	from.stats.bytesRead.Add(n)
	from.ic.met.bytesRead.Add(n)
	cfg := &from.ic.Cfg
	if !m.Remote() {
		p.Sleep(cfg.Mem.CopyCost(n, accessSize, span))
		gather(dst, m.seg.buf[off:], accessSize, stride)
		return
	}
	from.ic.faults.maybeRetry(p, &from.stats)
	// Each access pays its own stall sequence; strided reads cannot be
	// gathered by the stream buffers.
	per := sim.RateDuration(accessSize, cfg.ReadBW(accessSize))
	p.Sleep(time.Duration(accesses) * per)
	gather(dst, m.seg.buf[off:], accessSize, stride)
}

// scatter copies src into dst as accessSize-byte pieces stride apart.
func scatter(dst, src []byte, accessSize, stride int64) {
	var so, do int64
	n := int64(len(src))
	for so < n {
		end := so + accessSize
		if end > n {
			end = n
		}
		copy(dst[do:], src[so:end])
		so = end
		do += stride
	}
}

// gather is the inverse of scatter.
func gather(dst, src []byte, accessSize, stride int64) {
	var so, do int64
	n := int64(len(dst))
	for do < n {
		end := do + accessSize
		if end > n {
			end = n
		}
		copy(dst[do:end], src[so:so+(end-do)])
		do = end
		so += stride
	}
}

// BlockWriter batches many small consecutive remote writes (the
// direct_pack_ff pattern: leaves of a derived datatype packed directly into
// remote memory at ascending addresses). Bytes are deposited immediately;
// Flush charges the accumulated virtual-time cost as a single
// contention-aware transfer and registers the delivery for the next store
// barrier.
type BlockWriter struct {
	m          *Mapping
	p          *sim.Proc
	workingSet int64
	bytes      int64
	cost       time.Duration
	flushed    bool
	err        error // first deposit error; reported by TryFlush
}

// NewBlockWriter starts a batched block write session through the mapping.
// workingSet is the size of the source data structure being traversed (it
// selects the cache level feeding local copies).
func (m *Mapping) NewBlockWriter(p *sim.Proc, workingSet int64) *BlockWriter {
	return &BlockWriter{m: m, p: p, workingSet: workingSet}
}

// Write deposits one contiguous block at off and accounts its cost:
// per-block issue overhead plus the stream-buffer gather model. After a
// deposit has failed (range violation or revoked segment) further writes
// are ignored; the sticky error is reported by TryFlush (Flush panics).
func (w *BlockWriter) Write(off int64, src []byte) {
	n := int64(len(src))
	if n == 0 || w.err != nil {
		return
	}
	if err := w.m.rangeErr(off, n); err != nil {
		w.err = err
		return
	}
	if err := w.m.stateErr(); err != nil {
		w.err = err
		return
	}
	copy(w.m.seg.buf[off:], src)
	cfg := &w.m.from.ic.Cfg
	w.bytes += n
	w.m.from.stats.writeOps.Add(1)
	w.m.from.stats.bytesWritten.Add(n)
	w.m.from.ic.met.bytesWritten.Add(n)
	if w.m.Remote() {
		w.cost += cfg.WriteIssueOverhead + sim.RateDuration(n, cfg.StreamWriteBW(n))
	} else {
		w.cost += cfg.Mem.BlockCopyCostFF(n, n, w.workingSet)
	}
}

// Flush charges the batched cost. For remote mappings the batch is replayed
// as one flow transfer at the equivalent bandwidth, so it contends with
// other ring traffic; the delivery is tracked for StoreBarrier.
func (w *BlockWriter) Flush() {
	if err := w.TryFlush(); err != nil {
		panic(err)
	}
}

// TryFlush is the fallible Flush: deposit errors, unreachable owners and
// injected transfer errors are returned instead of panicking. Flushing
// twice still panics (a programming error, not a fault).
func (w *BlockWriter) TryFlush() error {
	if w.flushed {
		panic("sci: BlockWriter flushed twice")
	}
	w.flushed = true
	if w.err != nil {
		return w.err
	}
	if w.bytes == 0 {
		return nil
	}
	from := w.m.from
	if !w.m.Remote() {
		w.p.Sleep(w.cost)
		return nil
	}
	if err := w.m.stateErr(); err != nil {
		return err
	}
	start := w.p.Now()
	if err := w.m.drawPIOFault(w.p); err != nil {
		return err
	}
	cost := w.cost
	if cost <= 0 {
		// WriteIssueOverhead 0 plus sub-nanosecond stream costs can round
		// the batch cost to zero; charge a minimal cost instead of deriving
		// an infinite bandwidth below.
		cost = time.Nanosecond
	}
	eff := float64(w.bytes) / cost.Seconds()
	if err := from.tryTransferCost(w.p, w.m.seg.owner, w.bytes, eff); err != nil {
		return err
	}
	from.postDelivery(w.m.seg, 0, nil, 0, 0)
	from.ic.met.blockFlushNS.ObserveDuration(w.p.Now() - start)
	return nil
}
