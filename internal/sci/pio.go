package sci

import (
	"time"

	"scimpich/internal/sim"
)

// This file implements transparent remote memory access (PIO): the CPU
// issues loads and stores against mapped segments. Writes are posted
// (write-and-forget) — the issuing process is blocked only for the time the
// data needs to leave the node (which, for large transfers, is resolved by
// the contention-aware flow network) — and become visible at the target one
// wire latency later. StoreBarrier waits for all outstanding deliveries.

// WriteStream performs a contiguous remote write of src at offset off: the
// best case for the adapter's stream buffers (strictly sequential ascending
// addresses). srcWorkingSet is the size of the source data structure, used
// to cap the rate at the local memory read bandwidth (the paper's PIO dip
// beyond 128 kiB).
func (m *Mapping) WriteStream(p *sim.Proc, off int64, src []byte, srcWorkingSet int64) {
	n := int64(len(src))
	m.checkRange(off, n)
	from := m.from
	from.Stats.WriteOps++
	from.Stats.BytesWritten += n
	cfg := &from.ic.Cfg
	if !m.Remote() {
		// Local store through the mapping: plain memory copy.
		p.Sleep(cfg.Mem.CopyCost(n, n, srcWorkingSet))
		copy(m.seg.buf[off:], src)
		return
	}
	bw := cfg.StreamWriteBW(n)
	if srcWorkingSet > 0 {
		bw = cfg.Mem.EffectiveSourceBW(bw, srcWorkingSet)
	}
	from.transferCost(p, m.seg.owner, n, bw)
	data := append([]byte(nil), src...)
	seg, o := m.seg, off
	from.trackDelivery(func() { copy(seg.buf[o:], data) })
}

// WriteStrided writes len(src) bytes as accesses of accessSize bytes placed
// stride bytes apart, starting at off — the access pattern of the sparse
// one-sided benchmark and the §4.3 strided-write study. The cost depends on
// stride alignment relative to the CPU's write-combine buffer.
func (m *Mapping) WriteStrided(p *sim.Proc, off int64, src []byte, accessSize, stride int64) {
	n := int64(len(src))
	if n == 0 {
		return
	}
	if accessSize <= 0 || accessSize > n {
		accessSize = n
	}
	if stride < accessSize {
		stride = accessSize
	}
	accesses := (n + accessSize - 1) / accessSize
	span := (accesses-1)*stride + (n - (accesses-1)*accessSize)
	m.checkRange(off, span)
	from := m.from
	from.Stats.WriteOps += accesses
	from.Stats.BytesWritten += n
	cfg := &from.ic.Cfg
	if !m.Remote() {
		p.Sleep(cfg.Mem.CopyCost(n, accessSize, span))
		scatter(m.seg.buf[off:], src, accessSize, stride)
		return
	}
	bw := cfg.StridedWriteBW(accessSize, stride)
	from.transferCost(p, m.seg.owner, n, bw)
	data := append([]byte(nil), src...)
	seg, o, as, st := m.seg, off, accessSize, stride
	from.trackDelivery(func() { scatter(seg.buf[o:], data, as, st) })
}

// WritePut is the MPI put path: a strided write whose sustained rate is
// additionally capped at the adapter's SustainedPutBW (the paper's Table 2
// measures ~121-123 MiB/s per node for the one-sided put workload, below
// the raw strided-store peak of the §4.3 microbenchmark).
func (m *Mapping) WritePut(p *sim.Proc, off int64, src []byte, accessSize, stride int64) {
	n := int64(len(src))
	if n == 0 {
		return
	}
	if accessSize <= 0 || accessSize > n {
		accessSize = n
	}
	if stride < accessSize {
		stride = accessSize
	}
	accesses := (n + accessSize - 1) / accessSize
	span := (accesses-1)*stride + (n - (accesses-1)*accessSize)
	m.checkRange(off, span)
	from := m.from
	from.Stats.WriteOps += accesses
	from.Stats.BytesWritten += n
	cfg := &from.ic.Cfg
	if !m.Remote() {
		p.Sleep(cfg.Mem.CopyCost(n, accessSize, span))
		scatter(m.seg.buf[off:], src, accessSize, stride)
		return
	}
	bw := cfg.StridedWriteBW(accessSize, stride)
	if bw > cfg.SustainedPutBW {
		bw = cfg.SustainedPutBW
	}
	from.transferCost(p, m.seg.owner, n, bw)
	data := append([]byte(nil), src...)
	seg, o, as, st := m.seg, off, accessSize, stride
	from.trackDelivery(func() { scatter(seg.buf[o:], data, as, st) })
}

// WriteWord writes a small value (at most one SCI transaction) and returns
// immediately; visibility follows after the wire latency. It is the
// building block for flags and control words.
func (m *Mapping) WriteWord(p *sim.Proc, off int64, src []byte) {
	n := int64(len(src))
	m.checkRange(off, n)
	from := m.from
	from.Stats.WriteOps++
	from.Stats.BytesWritten += n
	p.Sleep(from.ic.Cfg.WriteIssueOverhead)
	data := append([]byte(nil), src...)
	seg, o := m.seg, off
	if !m.Remote() {
		copy(seg.buf[o:], data)
		return
	}
	from.trackDelivery(func() { copy(seg.buf[o:], data) })
}

// Read performs a transparent remote read into dst. The CPU stalls until
// the data arrives; bandwidth is a fraction of the write bandwidth (the
// paper's motivation for the remote-put optimization of MPI_Get).
func (m *Mapping) Read(p *sim.Proc, off int64, dst []byte) {
	n := int64(len(dst))
	m.checkRange(off, n)
	from := m.from
	from.Stats.ReadOps++
	from.Stats.BytesRead += n
	cfg := &from.ic.Cfg
	if !m.Remote() {
		p.Sleep(cfg.Mem.CopyCost(n, n, n))
		copy(dst, m.seg.buf[off:off+n])
		return
	}
	from.ic.faults.maybeRetry(p, &from.Stats)
	p.Sleep(sim.RateDuration(n, cfg.ReadBW(n)))
	copy(dst, m.seg.buf[off:off+n])
}

// ReadStrided reads count accesses of accessSize bytes placed stride bytes
// apart into dst (gathering them densely). Every access stalls like Read.
func (m *Mapping) ReadStrided(p *sim.Proc, off int64, dst []byte, accessSize, stride int64) {
	n := int64(len(dst))
	if n == 0 {
		return
	}
	if accessSize <= 0 || accessSize > n {
		accessSize = n
	}
	if stride < accessSize {
		stride = accessSize
	}
	accesses := (n + accessSize - 1) / accessSize
	span := (accesses-1)*stride + (n - (accesses-1)*accessSize)
	m.checkRange(off, span)
	from := m.from
	from.Stats.ReadOps += accesses
	from.Stats.BytesRead += n
	cfg := &from.ic.Cfg
	if !m.Remote() {
		p.Sleep(cfg.Mem.CopyCost(n, accessSize, span))
		gather(dst, m.seg.buf[off:], accessSize, stride)
		return
	}
	from.ic.faults.maybeRetry(p, &from.Stats)
	// Each access pays its own stall sequence; strided reads cannot be
	// gathered by the stream buffers.
	per := sim.RateDuration(accessSize, cfg.ReadBW(accessSize))
	p.Sleep(time.Duration(accesses) * per)
	gather(dst, m.seg.buf[off:], accessSize, stride)
}

// scatter copies src into dst as accessSize-byte pieces stride apart.
func scatter(dst, src []byte, accessSize, stride int64) {
	var so, do int64
	n := int64(len(src))
	for so < n {
		end := so + accessSize
		if end > n {
			end = n
		}
		copy(dst[do:], src[so:end])
		so = end
		do += stride
	}
}

// gather is the inverse of scatter.
func gather(dst, src []byte, accessSize, stride int64) {
	var so, do int64
	n := int64(len(dst))
	for do < n {
		end := do + accessSize
		if end > n {
			end = n
		}
		copy(dst[do:end], src[so:so+(end-do)])
		do = end
		so += stride
	}
}

// BlockWriter batches many small consecutive remote writes (the
// direct_pack_ff pattern: leaves of a derived datatype packed directly into
// remote memory at ascending addresses). Bytes are deposited immediately;
// Flush charges the accumulated virtual-time cost as a single
// contention-aware transfer and registers the delivery for the next store
// barrier.
type BlockWriter struct {
	m          *Mapping
	p          *sim.Proc
	workingSet int64
	bytes      int64
	cost       time.Duration
	flushed    bool
}

// NewBlockWriter starts a batched block write session through the mapping.
// workingSet is the size of the source data structure being traversed (it
// selects the cache level feeding local copies).
func (m *Mapping) NewBlockWriter(p *sim.Proc, workingSet int64) *BlockWriter {
	return &BlockWriter{m: m, p: p, workingSet: workingSet}
}

// Write deposits one contiguous block at off and accounts its cost:
// per-block issue overhead plus the stream-buffer gather model.
func (w *BlockWriter) Write(off int64, src []byte) {
	n := int64(len(src))
	if n == 0 {
		return
	}
	w.m.checkRange(off, n)
	copy(w.m.seg.buf[off:], src)
	cfg := &w.m.from.ic.Cfg
	w.bytes += n
	w.m.from.Stats.WriteOps++
	w.m.from.Stats.BytesWritten += n
	if w.m.Remote() {
		w.cost += cfg.WriteIssueOverhead + sim.RateDuration(n, cfg.StreamWriteBW(n))
	} else {
		w.cost += cfg.Mem.BlockCopyCostFF(n, n, w.workingSet)
	}
}

// Flush charges the batched cost. For remote mappings the batch is replayed
// as one flow transfer at the equivalent bandwidth, so it contends with
// other ring traffic; the delivery is tracked for StoreBarrier.
func (w *BlockWriter) Flush() {
	if w.flushed {
		panic("sci: BlockWriter flushed twice")
	}
	w.flushed = true
	if w.bytes == 0 {
		return
	}
	from := w.m.from
	if !w.m.Remote() {
		w.p.Sleep(w.cost)
		return
	}
	eff := float64(w.bytes) / w.cost.Seconds()
	from.transferCost(w.p, w.m.seg.owner, w.bytes, eff)
	from.trackDelivery(nil)
}
