package sci

import (
	"scimpich/internal/bufpool"
	"scimpich/internal/sim"
)

// dmaEngine serializes DMA transfers on one adapter. Submissions are cheap
// for the CPU; the engine itself moves the data through the flow network.
type dmaEngine struct {
	node  *Node
	queue *sim.Chan
}

type dmaRequest struct {
	m    *Mapping
	off  int64
	data *bufpool.Buf // staged source bytes; recycled when the engine is done
	done *sim.Future
}

func newDMAEngine(n *Node) *dmaEngine {
	d := &dmaEngine{node: n, queue: sim.NewChan(1 << 20)}
	n.ic.E.GoDaemon("dma", d.run)
	return d
}

func (d *dmaEngine) run(p *sim.Proc) {
	cfg := &d.node.ic.Cfg
	for {
		req := p.Recv(d.queue).(*dmaRequest)
		start := p.Now()
		p.Sleep(cfg.DMAStartup)
		d.node.ic.faults.maybeRetry(p, &d.node.stats)
		n := int64(len(req.data.B))
		// Failures complete the future with the typed error instead of
		// panicking inside the engine daemon: the submitter inspects the
		// awaited value and runs its own recovery.
		if err := req.m.stateErr(); err != nil {
			req.data.Put()
			req.done.Complete(err)
			continue
		}
		if req.m.Remote() {
			if fe := cfg.Fault.DrawDMAError(p.Now(), d.node.id, req.m.seg.owner.id); fe != nil {
				d.node.stats.transferErrors.Add(1)
				d.node.ic.countFault(fe.Kind)
				d.node.ic.tracef(d.node.name, "%v error on DMA to node %d", fe.Kind, req.m.seg.owner.id)
				p.Sleep(cfg.RetryLatency)
				req.data.Put()
				req.done.Complete(fe)
				continue
			}
		}
		bw := cfg.Mem.EffectiveSourceBW(cfg.DMAPeakBW, n)
		if err := d.node.tryTransferCost(p, req.m.seg.owner, n, bw); err != nil {
			req.data.Put()
			req.done.Complete(err)
			continue
		}
		copy(req.m.seg.buf[req.off:], req.data.B)
		req.data.Put()
		d.node.stats.dmaTransfers.Add(1)
		d.node.stats.bytesWritten.Add(n)
		d.node.ic.met.bytesWritten.Add(n)
		d.node.ic.met.dmaNS.ObserveDuration(p.Now() - start)
		req.done.Complete(nil)
	}
}

// DMAWrite submits a DMA transfer of src to offset off of the mapped
// segment and returns a future that completes when the data has been
// delivered. The submitting CPU only pays the (small) descriptor setup
// cost; transfers queue per adapter. The future's value is nil on success
// or the typed transfer error; callers that ignore it get the legacy
// fire-and-forget behaviour.
func (m *Mapping) DMAWrite(p *sim.Proc, off int64, src []byte) *sim.Future {
	fut, err := m.TryDMAWrite(p, off, src)
	if err != nil {
		panic(err)
	}
	return fut
}

// TryDMAWrite is the fallible DMAWrite: submission-time failures (range
// violation, revoked segment) are returned immediately; transfer-time
// failures complete the future with a typed error.
func (m *Mapping) TryDMAWrite(p *sim.Proc, off int64, src []byte) (*sim.Future, error) {
	n := int64(len(src))
	if err := m.rangeErr(off, n); err != nil {
		return nil, err
	}
	if err := m.stateErr(); err != nil {
		return nil, err
	}
	done := sim.NewFuture()
	p.Sleep(2 * m.from.ic.Cfg.WriteIssueOverhead)
	req := &dmaRequest{m: m, off: off, data: bufpool.Clone(src), done: done}
	p.Send(m.from.dma.queue, req)
	return done, nil
}
