package sci

import (
	"time"

	"scimpich/internal/bufpool"
	"scimpich/internal/pack"
	"scimpich/internal/sim"
)

// dmaEngine serializes DMA transfers on one adapter. Submissions are cheap
// for the CPU; the engine itself moves the data through the flow network.
// Plain requests stage a contiguous buffer; scatter-gather requests carry a
// descriptor list and gather straight from the submitter's source buffer,
// which therefore must stay valid and unmodified until the future
// completes (the protocol layers above await it before reusing anything).
type dmaEngine struct {
	node  *Node
	queue *sim.Chan
}

type dmaRequest struct {
	m    *Mapping
	off  int64
	data *bufpool.Buf // staged source bytes; recycled when the engine is done

	// Scatter-gather requests (descs != nil): src is the caller's buffer,
	// descs the gather list, off the destination base of every DstOff.
	src   []byte
	descs []pack.Descriptor

	done *sim.Future
}

func newDMAEngine(n *Node) *dmaEngine {
	d := &dmaEngine{node: n, queue: sim.NewChan(1 << 20)}
	n.ic.E.GoDaemon("dma", d.run)
	return d
}

func (d *dmaEngine) run(p *sim.Proc) {
	cfg := &d.node.ic.Cfg
	for {
		req := p.Recv(d.queue).(*dmaRequest)
		if req.descs != nil {
			d.runSG(p, cfg, req)
			continue
		}
		start := p.Now()
		p.Sleep(cfg.DMAStartup)
		d.node.ic.faults.maybeRetry(p, &d.node.stats)
		n := int64(len(req.data.B))
		// Failures complete the future with the typed error instead of
		// panicking inside the engine daemon: the submitter inspects the
		// awaited value and runs its own recovery.
		if err := req.m.stateErr(); err != nil {
			req.data.Put()
			req.done.Complete(err)
			continue
		}
		if fe := d.drawFault(p, req); fe != nil {
			req.data.Put()
			req.done.Complete(fe)
			continue
		}
		bw := cfg.Mem.EffectiveSourceBW(cfg.DMAPeakBW, n)
		if err := d.node.tryTransferCost(p, req.m.seg.owner, n, bw); err != nil {
			req.data.Put()
			req.done.Complete(err)
			continue
		}
		copy(req.m.seg.buf[req.off:], req.data.B)
		req.data.Put()
		d.node.stats.dmaTransfers.Add(1)
		d.node.stats.bytesWritten.Add(n)
		d.node.ic.met.bytesWritten.Add(n)
		d.node.ic.met.dmaNS.ObserveDuration(p.Now() - start)
		req.done.Complete(nil)
	}
}

// runSG executes one scatter-gather request: the engine walks the
// descriptor list, gathering source runs and streaming them out in
// destination-contiguous stream transactions (merged runs). Cost is the
// shared SGTransferCost model.
func (d *dmaEngine) runSG(p *sim.Proc, cfg *Config, req *dmaRequest) {
	start := p.Now()
	n, runs := pack.DescriptorRuns(req.descs)
	avgRun := n
	if runs > 0 {
		avgRun = n / int64(runs)
	}
	p.Sleep(cfg.DMAStartup + time.Duration(len(req.descs))*cfg.DMASGDesc)
	d.node.ic.faults.maybeRetry(p, &d.node.stats)
	if err := req.m.stateErr(); err != nil {
		req.done.Complete(err)
		return
	}
	if fe := d.drawFault(p, req); fe != nil {
		req.done.Complete(fe)
		return
	}
	bw := cfg.Mem.EffectiveSourceBW(cfg.SGStreamBW(avgRun), n)
	if err := d.node.tryTransferCost(p, req.m.seg.owner, n, bw); err != nil {
		req.done.Complete(err)
		return
	}
	for _, desc := range req.descs {
		copy(req.m.seg.buf[req.off+desc.DstOff:], req.src[desc.SrcOff:desc.SrcOff+desc.Len])
	}
	d.node.stats.dmaTransfers.Add(1)
	d.node.stats.dmaSGTransfers.Add(1)
	d.node.stats.bytesWritten.Add(n)
	d.node.ic.met.bytesWritten.Add(n)
	d.node.ic.met.dmaSGTransfers.Inc()
	d.node.ic.met.dmaSGBytes.Add(n)
	d.node.ic.met.dmaSGDescs.Add(int64(len(req.descs)))
	d.node.ic.met.dmaSGNS.ObserveDuration(p.Now() - start)
	req.done.Complete(nil)
}

// drawFault draws an injected DMA transfer error for a remote request,
// charging the retry latency and counting the fault.
func (d *dmaEngine) drawFault(p *sim.Proc, req *dmaRequest) error {
	if !req.m.Remote() {
		return nil
	}
	cfg := &d.node.ic.Cfg
	fe := cfg.Fault.DrawDMAError(p.Now(), d.node.id, req.m.seg.owner.id)
	if fe == nil {
		return nil
	}
	d.node.stats.transferErrors.Add(1)
	d.node.ic.countFault(fe.Kind)
	d.node.ic.tracef(d.node.name, "%v error on DMA to node %d", fe.Kind, req.m.seg.owner.id)
	p.Sleep(cfg.RetryLatency)
	return fe
}

// DMAWrite submits a DMA transfer of src to offset off of the mapped
// segment and returns a future that completes when the data has been
// delivered. The submitting CPU only pays the (small) descriptor setup
// cost; transfers queue per adapter. The future's value is nil on success
// or the typed transfer error; callers that ignore it get the legacy
// fire-and-forget behaviour.
func (m *Mapping) DMAWrite(p *sim.Proc, off int64, src []byte) *sim.Future {
	fut, err := m.TryDMAWrite(p, off, src)
	if err != nil {
		panic(err)
	}
	return fut
}

// TryDMAWrite is the fallible DMAWrite: submission-time failures (range
// violation, revoked segment) are returned immediately; transfer-time
// failures complete the future with a typed error.
func (m *Mapping) TryDMAWrite(p *sim.Proc, off int64, src []byte) (*sim.Future, error) {
	n := int64(len(src))
	if err := m.rangeErr(off, n); err != nil {
		return nil, err
	}
	if err := m.stateErr(); err != nil {
		return nil, err
	}
	done := sim.NewFuture()
	p.Sleep(2 * m.from.ic.Cfg.WriteIssueOverhead)
	req := &dmaRequest{m: m, off: off, data: bufpool.Clone(src), done: done}
	p.Send(m.from.dma.queue, req)
	return done, nil
}

// TryDMAWriteSG submits a scatter-gather DMA transfer: every descriptor
// gathers Len bytes at SrcOff of src and lands them at base+DstOff of the
// mapped segment, without any CPU pack pass. The CPU pays the descriptor
// build cost at submission; the engine charges startup, per-descriptor
// processing and the merged-run stream (Config.SGTransferCost). src and
// descs must stay valid and unmodified until the returned future
// completes; its value is nil on success or the typed transfer error.
func (m *Mapping) TryDMAWriteSG(p *sim.Proc, base int64, src []byte, descs []pack.Descriptor) (*sim.Future, error) {
	n, _ := pack.DescriptorRuns(descs)
	if len(descs) > 0 {
		last := descs[len(descs)-1]
		if err := m.rangeErr(base, last.DstOff+last.Len); err != nil {
			return nil, err
		}
	}
	if err := m.stateErr(); err != nil {
		return nil, err
	}
	cfg := &m.from.ic.Cfg
	p.Sleep(2*cfg.WriteIssueOverhead + time.Duration(len(descs))*cfg.DMASGBuild)
	done := sim.NewFuture()
	if n == 0 {
		done.Complete(nil)
		return done, nil
	}
	req := &dmaRequest{m: m, off: base, src: src, descs: descs, done: done}
	p.Send(m.from.dma.queue, req)
	return done, nil
}
