package sci

import (
	"scimpich/internal/sim"
)

// dmaEngine serializes DMA transfers on one adapter. Submissions are cheap
// for the CPU; the engine itself moves the data through the flow network.
type dmaEngine struct {
	node  *Node
	queue *sim.Chan
}

type dmaRequest struct {
	m    *Mapping
	off  int64
	data []byte
	done *sim.Future
}

func newDMAEngine(n *Node) *dmaEngine {
	d := &dmaEngine{node: n, queue: sim.NewChan(1 << 20)}
	n.ic.E.GoDaemon("dma", d.run)
	return d
}

func (d *dmaEngine) run(p *sim.Proc) {
	cfg := &d.node.ic.Cfg
	for {
		req := p.Recv(d.queue).(*dmaRequest)
		p.Sleep(cfg.DMAStartup)
		d.node.ic.faults.maybeRetry(p, &d.node.Stats)
		bw := cfg.Mem.EffectiveSourceBW(cfg.DMAPeakBW, int64(len(req.data)))
		d.node.transferCost(p, req.m.seg.owner, int64(len(req.data)), bw)
		copy(req.m.seg.buf[req.off:], req.data)
		d.node.Stats.DMATransfers++
		d.node.Stats.BytesWritten += int64(len(req.data))
		req.done.Complete(nil)
	}
}

// DMAWrite submits a DMA transfer of src to offset off of the mapped
// segment and returns a future that completes when the data has been
// delivered. The submitting CPU only pays the (small) descriptor setup
// cost; transfers queue per adapter.
func (m *Mapping) DMAWrite(p *sim.Proc, off int64, src []byte) *sim.Future {
	n := int64(len(src))
	m.checkRange(off, n)
	done := sim.NewFuture()
	p.Sleep(2 * m.from.ic.Cfg.WriteIssueOverhead)
	req := &dmaRequest{m: m, off: off, data: append([]byte(nil), src...), done: done}
	p.Send(m.from.dma.queue, req)
	return done
}
