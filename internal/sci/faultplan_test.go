package sci

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"scimpich/internal/fault"
	"scimpich/internal/sim"
)

// faultyCluster builds an engine plus interconnect driven by the plan.
func faultyCluster(n int, plan *fault.Plan) (*sim.Engine, *Interconnect) {
	e := sim.NewEngine()
	cfg := DefaultConfig(n)
	cfg.Fault = plan
	return e, New(e, cfg)
}

func TestPlanSchedulesCrashAndRestore(t *testing.T) {
	plan := fault.New(1).
		CrashNode(1, time.Millisecond).
		RestoreNode(1, 3*time.Millisecond)
	e, ic := faultyCluster(2, plan)
	e.Go("observer", func(p *sim.Proc) {
		if !ic.Alive(1) {
			t.Error("node 1 dead before scheduled crash")
		}
		p.Sleep(2 * time.Millisecond)
		if ic.Alive(1) {
			t.Error("node 1 alive after scheduled crash")
		}
		p.Sleep(2 * time.Millisecond)
		if !ic.Alive(1) {
			t.Error("node 1 dead after scheduled restore")
		}
	})
	e.Run()
}

func TestTryWriteStreamOutOfRangeTyped(t *testing.T) {
	e, ic := testCluster(2)
	seg := ic.Node(1).Export(256)
	e.Go("writer", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		err := m.TryWriteStream(p, 200, make([]byte, 100), 0)
		var oor ErrOutOfRange
		if !errors.As(err, &oor) {
			t.Fatalf("err = %v, want ErrOutOfRange", err)
		}
		if oor.Off != 200 || oor.Len != 100 || oor.Size != 256 {
			t.Errorf("range error = %+v", oor)
		}
		if err := m.TryWriteStream(p, 100, make([]byte, 100), 0); err != nil {
			t.Errorf("in-range write failed: %v", err)
		}
	})
	e.Run()
}

func TestLegacyWritePanicsOutOfRangeMessage(t *testing.T) {
	e, ic := testCluster(2)
	seg := ic.Node(1).Export(256)
	e.Go("writer", func(p *sim.Proc) {
		defer func() {
			r := recover()
			err, ok := r.(error)
			if !ok {
				t.Fatalf("panicked with %v, want an error", r)
			}
			want := "sci: access [200, 300) outside segment of 256 bytes"
			if err.Error() != want {
				t.Errorf("panic message %q, want %q", err.Error(), want)
			}
		}()
		m := ic.Node(0).MustImport(1, seg.ID())
		m.WriteStream(p, 200, make([]byte, 100), 0)
	})
	e.Run()
}

func TestRevokedSegmentSurfacesSegmentLost(t *testing.T) {
	plan := fault.New(1).RevokeSegment(1, 0, time.Millisecond)
	e, ic := faultyCluster(2, plan)
	seg := ic.Node(1).Export(4096)
	e.Go("writer", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		if err := m.TryWriteStream(p, 0, make([]byte, 64), 0); err != nil {
			t.Fatalf("write before revocation failed: %v", err)
		}
		p.Sleep(2 * time.Millisecond)
		if m.Valid() {
			t.Error("mapping still valid after scheduled revocation")
		}
		var lost ErrSegmentLost
		if err := m.TryWriteStream(p, 0, make([]byte, 64), 0); !errors.As(err, &lost) {
			t.Fatalf("err = %v, want ErrSegmentLost", err)
		}
		if lost.Owner != 1 || lost.Seg != 0 {
			t.Errorf("lost = %+v", lost)
		}
		if err := m.CheckedSync(p); !errors.As(err, &lost) {
			t.Errorf("CheckedSync err = %v, want ErrSegmentLost", err)
		}
		if _, err := ic.Node(0).Import(1, 0); err == nil {
			t.Error("import of revoked segment succeeded")
		}
	})
	e.Run()
}

func TestImportDeniedByPlan(t *testing.T) {
	plan := fault.New(1).FailImports(1, 0, 1)
	e, ic := faultyCluster(2, plan)
	seg := ic.Node(1).Export(4096)
	e.Go("importer", func(p *sim.Proc) {
		_, err := ic.Node(0).Import(1, seg.ID())
		var fe *fault.Error
		if !errors.As(err, &fe) || fe.Kind != fault.ImportDenied {
			t.Fatalf("first import err = %v, want ImportDenied", err)
		}
		if _, err := ic.Node(0).Import(1, seg.ID()); err != nil {
			t.Errorf("second import failed: %v", err)
		}
	})
	e.Run()
}

func TestInjectedWriteErrorsRetriedTransparently(t *testing.T) {
	plan := fault.New(11).WithWriteErrors(0.4)
	e, ic := faultyCluster(2, plan)
	seg := ic.Node(1).Export(1 << 20)
	src := fill(256 << 10)
	e.Go("writer", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		m.WriteStream(p, 0, src, 0) // legacy entry point: retries internally
		ic.Node(0).StoreBarrier(p)
		if !bytes.Equal(seg.Local()[:len(src)], src) {
			t.Error("data corrupted under injected write errors")
		}
	})
	e.Run()
	if ic.Node(0).Snapshot().TransferErrors == 0 {
		t.Error("no transfer errors recorded at a 40% injection rate")
	}
	if plan.Injected.Writes == 0 {
		t.Error("plan recorded no injected write errors")
	}
}

func TestCheckedSyncRetriesWithBackoff(t *testing.T) {
	run := func() (time.Duration, int64) {
		plan := fault.New(5).WithCheckErrors(0.5)
		e, ic := faultyCluster(2, plan)
		ic.Cfg.CheckRetryMax = 10
		seg := ic.Node(1).Export(64 << 10)
		var at time.Duration
		e.Go("writer", func(p *sim.Proc) {
			m := ic.Node(0).MustImport(1, seg.ID())
			for i := 0; i < 20; i++ {
				m.WriteStream(p, 0, make([]byte, 4096), 0)
				if err := m.CheckedSync(p); err != nil {
					t.Fatalf("CheckedSync failed despite retry budget: %v", err)
				}
			}
			at = p.Now()
		})
		e.Run()
		return at, ic.Node(0).Snapshot().CheckRetries
	}
	at1, retries1 := run()
	at2, retries2 := run()
	if retries1 == 0 {
		t.Error("no check retries recorded at a 50% check-failure rate")
	}
	if at1 != at2 || retries1 != retries2 {
		t.Errorf("same-seed runs diverge: %v/%d vs %v/%d", at1, retries1, at2, retries2)
	}
}

func TestCheckedSyncGivesUpOnDeadOwner(t *testing.T) {
	e, ic := testCluster(2)
	seg := ic.Node(1).Export(4096)
	e.Go("writer", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		ic.FailNode(1)
		var lost ErrConnectionLost
		if err := m.CheckedSync(p); !errors.As(err, &lost) {
			t.Fatalf("CheckedSync err = %v, want ErrConnectionLost", err)
		}
		if lost.From != 0 || lost.To != 1 {
			t.Errorf("lost = %+v", lost)
		}
	})
	e.Run()
}

func TestLinkDisturbanceWindowRetriesThenClears(t *testing.T) {
	// A short window: the transfer's bounded retries ride it out.
	plan := fault.New(1).DisturbLink(0, 1, 0, 40*time.Microsecond)
	e, ic := faultyCluster(2, plan)
	ic.Cfg.RetryLatency = 30 * time.Microsecond
	seg := ic.Node(1).Export(4096)
	src := fill(512)
	e.Go("writer", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		m.WriteStream(p, 0, src, 0)
		ic.Node(0).StoreBarrier(p)
		if !bytes.Equal(seg.Local()[:len(src)], src) {
			t.Error("data corrupted across disturbance window")
		}
	})
	e.Run()
	if ic.Node(0).Snapshot().Retries == 0 {
		t.Error("disturbance window recorded no retries")
	}
}

func TestLinkDisturbancePersistentFailsTyped(t *testing.T) {
	// A window far longer than the retry budget: the typed error surfaces.
	plan := fault.New(1).DisturbLink(fault.Any, 1, 0, time.Second)
	e, ic := faultyCluster(2, plan)
	seg := ic.Node(1).Export(4096)
	e.Go("writer", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		err := m.TryWriteStream(p, 0, make([]byte, 512), 0)
		var fe *fault.Error
		if !errors.As(err, &fe) || fe.Kind != fault.LinkDisturbed {
			t.Fatalf("err = %v, want LinkDisturbed", err)
		}
	})
	e.Run()
}

// Regression: Stop from a foreign proc while the monitor is mid-sweep
// probing a dead peer must terminate the daemon (and the simulation)
// instead of leaving it polling forever or racing the sweep.
func TestMonitorStopWhileProbingDeadPeer(t *testing.T) {
	e, ic := testCluster(4)
	mon := ic.Node(0).StartMonitor([]int{1, 2, 3}, 50*time.Microsecond)
	e.Go("chaos", func(p *sim.Proc) {
		ic.FailNode(2) // probes toward node 2 now stall on the timeout path
		p.Sleep(120 * time.Microsecond)
		mon.Stop()
		mon.Stop() // idempotent from the same proc
	})
	e.After(130*time.Microsecond, func() {
		mon.Stop() // and safe from an event callback
	})
	e.Run() // must terminate: a lingering poll loop would deadlock-panic
	if !mon.Status(1) {
		t.Error("healthy peer marked dead")
	}
}
