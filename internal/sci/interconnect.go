package sci

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scimpich/internal/bufpool"
	"scimpich/internal/fault"
	"scimpich/internal/flow"
	"scimpich/internal/obs"
	"scimpich/internal/obs/flight"
	"scimpich/internal/ring"
	"scimpich/internal/sim"
)

// Interconnect is a simulated SCI-connected cluster: a ringlet of nodes,
// each with a PCI-SCI adapter, sharing a flow network that resolves link
// contention in virtual time.
type Interconnect struct {
	E    sim.Host
	Net  *flow.Network
	Ring *ring.Topology
	Cfg  Config

	nodes  []*Node
	faults *faultInjector
	met    icMetrics
}

// Stats is a point-in-time snapshot of one node's transfer counters (see
// Node.Snapshot).
type Stats struct {
	BytesWritten  int64
	BytesRead     int64
	WriteOps      int64
	ReadOps       int64
	StoreBarriers int64
	Retries       int64
	DMATransfers  int64

	// DMASGTransfers counts the subset of DMATransfers that were
	// scatter-gather descriptor-list submissions.
	DMASGTransfers int64

	// TransferErrors counts injected CRC/sequence/link faults surfaced to
	// this node's operations as typed errors (as opposed to Retries,
	// which only cost latency).
	TransferErrors int64
	// CheckRetries counts transfer-check barrier retries (CheckedSync).
	CheckRetries int64
}

// nodeStats is the live, race-free counter set behind Stats. Counters are
// atomics rather than a mutex because the cooperative scheduler forbids
// holding a lock across p.Sleep (another proc could block on it and
// deadlock the engine), and several mutation sites sleep mid-operation.
type nodeStats struct {
	bytesWritten   atomic.Int64
	bytesRead      atomic.Int64
	writeOps       atomic.Int64
	readOps        atomic.Int64
	storeBarriers  atomic.Int64
	retries        atomic.Int64
	dmaTransfers   atomic.Int64
	dmaSGTransfers atomic.Int64
	transferErrors atomic.Int64
	checkRetries   atomic.Int64
}

func (s *nodeStats) snapshot() Stats {
	return Stats{
		BytesWritten:   s.bytesWritten.Load(),
		BytesRead:      s.bytesRead.Load(),
		WriteOps:       s.writeOps.Load(),
		ReadOps:        s.readOps.Load(),
		StoreBarriers:  s.storeBarriers.Load(),
		Retries:        s.retries.Load(),
		DMATransfers:   s.dmaTransfers.Load(),
		DMASGTransfers: s.dmaSGTransfers.Load(),
		TransferErrors: s.transferErrors.Load(),
		CheckRetries:   s.checkRetries.Load(),
	}
}

// icMetrics caches the interconnect's registry collectors so the PIO hot
// path never performs a map lookup. With metrics disabled every field is a
// nil collector, and every call below is an allocation-free no-op.
type icMetrics struct {
	writeStreamNS *obs.Histogram
	putNS         *obs.Histogram
	readNS        *obs.Histogram
	blockFlushNS  *obs.Histogram
	dmaNS         *obs.Histogram
	barrierNS     *obs.Histogram
	bytesWritten  *obs.Counter
	bytesRead     *obs.Counter

	dmaSGNS        *obs.Histogram
	dmaSGTransfers *obs.Counter
	dmaSGBytes     *obs.Counter
	dmaSGDescs     *obs.Counter
}

func newICMetrics(r *obs.Registry) icMetrics {
	return icMetrics{
		writeStreamNS: r.Histogram("sci.pio.write_stream.ns"),
		putNS:         r.Histogram("sci.pio.put.ns"),
		readNS:        r.Histogram("sci.pio.read.ns"),
		blockFlushNS:  r.Histogram("sci.blockwrite.flush.ns"),
		dmaNS:         r.Histogram("sci.dma.ns"),
		barrierNS:     r.Histogram("sci.store_barrier.ns"),
		bytesWritten:  r.Counter("sci.bytes.written"),
		bytesRead:     r.Counter("sci.bytes.read"),

		dmaSGNS:        r.Histogram("sci.dma.sg.ns"),
		dmaSGTransfers: r.Counter("sci.dma.sg.transfers"),
		dmaSGBytes:     r.Counter("sci.dma.sg.bytes"),
		dmaSGDescs:     r.Counter("sci.dma.sg.descs"),
	}
}

// countFault bumps the per-kind injected-fault counter (nil-registry safe;
// fault paths are cold, so the labelled lookup is fine here).
func (ic *Interconnect) countFault(k fault.Kind) {
	if ic.Cfg.Metrics != nil {
		ic.Cfg.Metrics.Counter(obs.Name("fault.injected", "kind", k.String())).Inc()
	}
}

// Node is one cluster node with its adapter.
type Node struct {
	ic      *Interconnect
	id      int
	name    string // cached "node<i>" (avoids Sprintf on trace paths)
	egress  *flow.Link
	ingress *flow.Link

	segs    map[int]*Segment
	nextSeg int

	// pendingWrites counts posted writes that have not yet arrived at
	// their targets; StoreBarrier waits on the shared barrier future,
	// completed when the count drains to zero. A counter plus one future
	// replaces the old per-write future map: posting a write is then
	// allocation-free (the deliveries themselves are pooled).
	pendingWrites int
	barrier       *sim.Future

	dma *dmaEngine

	// dead marks the node unreachable (see monitor.go).
	dead bool

	stats nodeStats
}

// Snapshot returns a race-free copy of the node's transfer counters. Use
// this instead of holding on to internal state: the live counters are
// updated from device daemons concurrently with application procs.
func (n *Node) Snapshot() Stats { return n.stats.snapshot() }

// New builds the simulated cluster.
func New(e sim.Host, cfg Config) *Interconnect {
	if cfg.Nodes < 1 {
		panic("sci: need at least one node")
	}
	if cfg.Mem == nil {
		panic("sci: config requires a memory model")
	}
	linkBW := ring.BandwidthForMHz(cfg.LinkMHz)
	ic := &Interconnect{
		E:    e,
		Net:  flow.NewNetworkOn(e),
		Ring: ring.New(cfg.Nodes, linkBW, flow.SCIRingCongestion{}),
		Cfg:  cfg,
	}
	ic.Net.SetMetrics(cfg.Metrics)
	ic.faults = newFaultInjector(cfg.FaultRate, cfg.RetryLatency, cfg.FaultSeed)
	if ic.Cfg.CheckRetryMax <= 0 {
		ic.Cfg.CheckRetryMax = 4
	}
	if ic.Cfg.CheckBackoff <= 0 {
		ic.Cfg.CheckBackoff = 10 * time.Microsecond
	}
	ic.met = newICMetrics(cfg.Metrics)
	ic.nodes = make([]*Node, cfg.Nodes)
	for i := range ic.nodes {
		n := &Node{
			ic:      ic,
			id:      i,
			name:    fmt.Sprintf("node%d", i),
			egress:  flow.NewLink(fmt.Sprintf("node%d-egress", i), cfg.PIOWritePeakBW, nil),
			ingress: flow.NewLink(fmt.Sprintf("node%d-ingress", i), cfg.PIOWritePeakBW, nil),
			segs:    make(map[int]*Segment),
		}
		n.dma = newDMAEngine(n)
		ic.nodes[i] = n
	}
	ic.applyPlan()
	return ic
}

// applyPlan schedules the fault plan's node crashes/restorations and
// segment revocations as engine events.
func (ic *Interconnect) applyPlan() {
	plan := ic.Cfg.Fault
	if plan == nil {
		return
	}
	for _, ev := range plan.NodeSchedule() {
		ev := ev
		if ev.Node < 0 || ev.Node >= len(ic.nodes) {
			continue
		}
		flr := ic.Cfg.Flight.Actor(fmt.Sprintf("node%d", ev.Node))
		ic.E.At(ev.At, func() {
			if ev.Up {
				ic.RestoreNode(ev.Node)
				ic.tracef(fmt.Sprintf("node%d", ev.Node), "node restored (plan)")
				flr.Record(ic.E.Now(), flight.KNodeUp, int64(ev.Node), 0, 0, 0)
			} else {
				ic.FailNode(ev.Node)
				ic.tracef(fmt.Sprintf("node%d", ev.Node), "node crashed (plan)")
				flr.Record(ic.E.Now(), flight.KNodeDown, int64(ev.Node), 0, 0, 0)
			}
		})
	}
	for _, ev := range plan.SegmentSchedule() {
		ev := ev
		if ev.Owner < 0 || ev.Owner >= len(ic.nodes) {
			continue
		}
		flr := ic.Cfg.Flight.Actor(fmt.Sprintf("node%d", ev.Owner))
		ic.E.At(ev.At, func() {
			ic.RevokeSegment(ev.Owner, ev.Seg)
			ic.tracef(fmt.Sprintf("node%d", ev.Owner), "segment %d revoked (plan)", ev.Seg)
			flr.Record(ic.E.Now(), flight.KSegRevoked, int64(ev.Owner), int64(ev.Seg), 0, 0)
		})
	}
}

// tracef records a fault/recovery event on the configured tracer (nil-safe).
func (ic *Interconnect) tracef(actor, format string, args ...any) {
	ic.Cfg.Tracer.Record(ic.E.Now(), actor, "fault", format, args...)
}

// Plan returns the configured fault plan (possibly nil; all Plan query
// methods are nil-safe).
func (ic *Interconnect) Plan() *fault.Plan { return ic.Cfg.Fault }

// Node returns node i.
func (ic *Interconnect) Node(i int) *Node { return ic.nodes[i] }

// Nodes returns the number of nodes.
func (ic *Interconnect) Nodes() int { return len(ic.nodes) }

// ID returns the node's ring position.
func (n *Node) ID() int { return n.id }

// path builds the flow path for a transfer from node n to the segment
// owner: adapter egress, the ring segments to the target, adapter ingress,
// and — per the paper's Table 2 discussion — flow-control echo traffic on
// the return-path segments at a fraction of the data rate.
func (n *Node) path(owner *Node) []flow.Hop {
	if n == owner {
		return nil
	}
	var hops []flow.Hop
	hops = append(hops, flow.Hop{Link: n.egress, Weight: 1})
	for _, l := range n.ic.Ring.Route(n.id, owner.id) {
		hops = append(hops, flow.Hop{Link: l, Weight: 1})
	}
	hops = append(hops, flow.Hop{Link: owner.ingress, Weight: 1})
	if ef := n.ic.Cfg.EchoFraction; ef > 0 {
		for _, l := range n.ic.Ring.Route(owner.id, n.id) {
			hops = append(hops, flow.Hop{Link: l, Weight: ef})
		}
	}
	return hops
}

// delivery is one posted write in flight: the captured source bytes (a
// pooled buffer, nil for cost-only flushes) and where to land them. The
// structs themselves are pooled; arrival recycles both struct and buffer.
type delivery struct {
	node   *Node
	seg    *Segment
	off    int64
	buf    *bufpool.Buf
	access int64 // 0: contiguous copy; >0: scatter access size
	stride int64
}

var deliveryPool = sync.Pool{New: func() any { return new(delivery) }}

// deliverArrive lands one posted write at its target. It is a top-level
// function scheduled through AfterCall so posting a write allocates
// neither a closure nor an event.
func deliverArrive(a any) {
	d := a.(*delivery)
	n := d.node
	if d.buf != nil {
		if d.access > 0 {
			scatter(d.seg.buf[d.off:], d.buf.B, d.access, d.stride)
		} else {
			copy(d.seg.buf[d.off:], d.buf.B)
		}
		d.buf.Put()
	}
	n.pendingWrites--
	if n.pendingWrites == 0 && n.barrier != nil {
		f := n.barrier
		n.barrier = nil
		f.Complete(nil)
	}
	*d = delivery{}
	deliveryPool.Put(d)
}

// postDelivery registers a posted write on the node and schedules its
// arrival one wire latency out. buf ownership transfers to the delivery
// (recycled on arrival); a nil buf tracks a write whose bytes were already
// deposited (BlockWriter) and only needs barrier accounting.
func (n *Node) postDelivery(seg *Segment, off int64, buf *bufpool.Buf, access, stride int64) {
	d := deliveryPool.Get().(*delivery)
	d.node, d.seg, d.off, d.buf, d.access, d.stride = n, seg, off, buf, access, stride
	n.pendingWrites++
	n.ic.E.AfterCall(n.ic.Cfg.PIOWriteLatency, deliverArrive, d)
}

// StoreBarrier blocks until every posted write issued by this node has
// arrived at its target ("ensures complete delivery of all data written at
// a certain moment of time").
func (n *Node) StoreBarrier(p *sim.Proc) {
	n.stats.storeBarriers.Add(1)
	start := p.Now()
	p.Sleep(n.ic.Cfg.StoreBarrierLatency)
	for n.pendingWrites > 0 {
		if n.barrier == nil {
			n.barrier = sim.NewFuture()
		}
		p.Await(n.barrier)
	}
	n.ic.met.barrierNS.ObserveDuration(p.Now() - start)
}

// transferCost moves `bytes` from node n toward owner at the given source
// cap, blocking p. Small transfers are charged directly (they cannot
// meaningfully contend); large ones go through the flow network.
const flowThreshold = 2048

func (n *Node) transferCost(p *sim.Proc, owner *Node, bytes int64, srcCap float64) {
	if err := n.tryTransferCost(p, owner, bytes, srcCap); err != nil {
		panic(err)
	}
}

// tryTransferCost is the fallible transfer path: it charges the virtual
// time of moving bytes toward owner and reports unreachable targets and
// link disturbances as typed errors instead of panicking.
func (n *Node) tryTransferCost(p *sim.Proc, owner *Node, bytes int64, srcCap float64) error {
	if bytes <= 0 {
		return nil
	}
	n.ic.faults.maybeRetry(p, &n.stats)
	if n == owner {
		// Local access: charged by the caller's memory model instead.
		return nil
	}
	if err := n.tryReachable(p, owner); err != nil {
		return err
	}
	if err := n.tryLinkClear(p, owner); err != nil {
		return err
	}
	if bytes < flowThreshold {
		p.Sleep(sim.RateDuration(bytes, srcCap))
		return nil
	}
	n.ic.Net.Transfer(p, n.path(owner), bytes, srcCap)
	return nil
}

// tryLinkClear retries through a scheduled link-disturbance window; if the
// disturbance outlasts the bounded retries it surfaces as a retryable
// LinkDisturbed fault.
func (n *Node) tryLinkClear(p *sim.Proc, owner *Node) error {
	plan := n.ic.Cfg.Fault
	if !plan.Disturbed(n.id, owner.id, p.Now()) {
		return nil
	}
	for i := 0; i < maxTransferRetries; i++ {
		n.stats.retries.Add(1)
		p.Sleep(n.ic.Cfg.RetryLatency)
		if !plan.Disturbed(n.id, owner.id, p.Now()) {
			return nil
		}
	}
	n.stats.transferErrors.Add(1)
	n.ic.countFault(fault.LinkDisturbed)
	n.ic.tracef(n.name, "link to node %d disturbed, transfer aborted", owner.id)
	return &fault.Error{Kind: fault.LinkDisturbed, From: n.id, To: owner.id, At: p.Now()}
}
