package sci

import (
	"scimpich/internal/sim"
)

// Signal is the notification primitive of the simulated interconnect. It
// stands in for the flag-polling and remote-interrupt mechanisms the real
// SCI-MPICH uses: a writer deposits a small control word into the target's
// memory and the target observes it one wire latency later. Modelling the
// observation as a future-backed queue (instead of a busy-poll loop) keeps
// the event count bounded while preserving the timing.
type Signal struct {
	owner *Node
	ch    *sim.Chan
}

// NewSignal allocates a signal owned by (deliverable to) node n.
func (n *Node) NewSignal() *Signal {
	return &Signal{owner: n, ch: sim.NewChan(1 << 20)}
}

// RingFrom raises the signal from node `from`, delivering v to the owner.
// Local ringing (from == owner) is immediate; remote ringing costs a small
// posted write and arrives after the wire latency. Raising a remote
// interrupt instead (the emulation path for private windows) costs
// InterruptLatency — set interrupt to true for that.
func (s *Signal) RingFrom(p *sim.Proc, from *Node, v any, interrupt bool) {
	cfg := &from.ic.Cfg
	p.Sleep(cfg.WriteIssueOverhead)
	if from == s.owner {
		sim.Post(s.ch, v)
		return
	}
	from.ic.faults.maybeRetry(p, &from.stats)
	delay := cfg.PIOWriteLatency
	if interrupt {
		delay += cfg.InterruptLatency
	}
	ch := s.ch
	from.ic.E.After(delay, func() { sim.Post(ch, v) })
}

// Wait blocks the owning process until a value is delivered.
func (s *Signal) Wait(p *sim.Proc) any { return p.Recv(s.ch) }

// TryWait takes a delivered value if one is pending.
func (s *Signal) TryWait(p *sim.Proc) (any, bool) { return p.TryRecv(s.ch) }
