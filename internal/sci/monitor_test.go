package sci

import (
	"errors"
	"testing"
	"time"

	"scimpich/internal/sim"
)

func TestCheckConnectionHealthyAndDead(t *testing.T) {
	e, ic := testCluster(3)
	e.Go("checker", func(p *sim.Proc) {
		ok, rtt := ic.Node(0).CheckConnection(p, 1)
		if !ok {
			t.Error("healthy node reported unreachable")
		}
		if rtt <= 0 || rtt > 50*time.Microsecond {
			t.Errorf("healthy probe rtt = %v", rtt)
		}
		ic.FailNode(1)
		ok, rttDead := ic.Node(0).CheckConnection(p, 1)
		if ok {
			t.Error("failed node reported reachable")
		}
		if rttDead <= rtt {
			t.Errorf("timeout probe (%v) should take longer than healthy probe (%v)", rttDead, rtt)
		}
		if !ic.Alive(2) || ic.Alive(1) {
			t.Error("alive flags inconsistent")
		}
	})
	e.Run()
}

func TestTransferToDeadNodeRaisesConnectionLost(t *testing.T) {
	e, ic := testCluster(2)
	seg := ic.Node(1).Export(1 << 20)
	e.Go("writer", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		ic.FailNode(1)
		defer func() {
			r := recover()
			if r == nil {
				t.Error("transfer to dead node did not raise")
				return
			}
			var lost ErrConnectionLost
			err, ok := r.(error)
			if !ok || !errors.As(err, &lost) {
				t.Errorf("raised %v, want ErrConnectionLost", r)
				return
			}
			if lost.From != 0 || lost.To != 1 {
				t.Errorf("lost = %+v", lost)
			}
		}()
		m.WriteStream(p, 0, make([]byte, 64<<10), 0)
	})
	e.Run()
}

func TestTransferRetriesThroughTransientFailure(t *testing.T) {
	e, ic := testCluster(2)
	seg := ic.Node(1).Export(1 << 20)
	e.Go("writer", func(p *sim.Proc) {
		m := ic.Node(0).MustImport(1, seg.ID())
		ic.FailNode(1)
		// The connection returns while the adapter is still retrying.
		e.After(ic.Cfg.RetryLatency+time.Microsecond, func() { ic.RestoreNode(1) })
		m.WriteStream(p, 0, make([]byte, 64<<10), 0)
		ic.Node(0).StoreBarrier(p)
		if ic.Node(0).Snapshot().Retries == 0 {
			t.Error("no retries recorded across the transient failure")
		}
	})
	e.Run()
}

func TestMonitorDetectsFailureAndRecovery(t *testing.T) {
	e, ic := testCluster(4)
	mon := ic.Node(0).StartMonitor([]int{1, 2, 3}, 100*time.Microsecond)
	e.Go("chaos", func(p *sim.Proc) {
		p.Sleep(250 * time.Microsecond)
		ic.FailNode(2)
		p.Sleep(500 * time.Microsecond)
		ic.RestoreNode(2)
		p.Sleep(500 * time.Microsecond)
		mon.Stop()
	})
	e.Run()
	if len(mon.Events) != 2 {
		t.Fatalf("monitor recorded %d events, want failure + recovery: %+v", len(mon.Events), mon.Events)
	}
	if mon.Events[0].Target != 2 || mon.Events[0].Alive {
		t.Errorf("first event = %+v, want node 2 down", mon.Events[0])
	}
	if mon.Events[1].Target != 2 || !mon.Events[1].Alive {
		t.Errorf("second event = %+v, want node 2 up", mon.Events[1])
	}
	if !mon.Status(2) || !mon.Status(1) {
		t.Error("final status wrong")
	}
}
