// Package sci models the Scalable Coherent Interface interconnect as used
// in commodity clusters via PCI-SCI adapters (Dolphin D330 generation).
//
// The model follows the behaviour the paper builds on:
//
//   - Remote memory segments are transparently mapped; the CPU writes to
//     them with plain stores (PIO). Writes are "write-and-forget": the CPU
//     is free once the data left its write-combine buffer, but arrival at
//     the target is only guaranteed after a store barrier.
//   - Consecutive ascending writes gather in the adapter's stream buffers
//     into large SCI transactions; small or interrupted runs pay a heavy
//     efficiency penalty. Strided writes interact with the CPU's 32-byte
//     write-combine buffer: strides that are multiples of 32 perform far
//     better than misaligned ones.
//   - Remote reads stall the CPU per transaction and deliver only a
//     fraction of the write bandwidth.
//   - A DMA engine on the adapter moves large blocks without the CPU, at
//     lower peak bandwidth but with high startup cost.
//   - Transfers cross real ring segments; concurrent transfers share and
//     saturate them (modeled by internal/flow with the Table 2 calibration),
//     and each data packet generates flow-control echoes on the return path.
//   - Links are cables: transmission errors force retries, so a sequence
//     checking / connection monitoring layer is required (fault injection
//     is built into the model).
//
// All byte movement is real (segments are Go byte slices), so protocol
// correctness is testable; all timing is virtual, produced by the cost
// model below. Calibration targets are the paper's Figure 1, §4.3 and
// Table 2.
package sci

import (
	"time"

	"scimpich/internal/fault"
	"scimpich/internal/memmodel"
	"scimpich/internal/obs"
	"scimpich/internal/obs/flight"
	"scimpich/internal/ring"
	"scimpich/internal/trace"
)

// MiB is one mebibyte.
const MiB = 1 << 20

// Config holds the calibrated parameters of the simulated SCI cluster.
type Config struct {
	// Nodes is the number of nodes on the (single) ringlet.
	Nodes int

	// LinkMHz is the SCI link frequency; 166 MHz gives the paper's nominal
	// 633 MiB/s ring bandwidth, 200 MHz gives 762 MiB/s.
	LinkMHz float64

	// WriteCombine enables the CPU write-combine buffer model. Disabling it
	// removes the stride sensitivity of remote writes but halves overall
	// bandwidth (paper §4.3).
	WriteCombine bool

	// PIOWritePeakBW is the peak bandwidth of sequential transparent remote
	// writes (stream buffers fully gathering), bytes/second.
	PIOWritePeakBW float64

	// SustainedPutBW is the per-node sustained throughput ceiling of the
	// MPI put path (Table 2 measures ~121-123 MiB/s per node).
	SustainedPutBW float64

	// PIOWriteLatency is the wire latency until a posted remote write is
	// visible at the target.
	PIOWriteLatency time.Duration

	// PIOReadStall is the CPU stall per remote read transaction.
	PIOReadStall time.Duration
	// PIOReadChunk is the number of bytes fetched per read transaction.
	PIOReadChunk int64
	// PIOReadPipeline is the number of outstanding read transactions the
	// CPU/chipset sustains (>=1); larger values lift large-read bandwidth.
	PIOReadPipeline float64

	// StoreBarrierLatency is the cost of a store barrier (flushing the
	// adapter and checking transaction completion).
	StoreBarrierLatency time.Duration

	// WriteIssueOverhead is the per-block software cost of a remote
	// block-wise write (address setup, loop control).
	WriteIssueOverhead time.Duration

	// WriteGatherGap and WriteGatherGapTiny model stream-buffer restart
	// cost, expressed as equivalent dead bytes per block. Blocks below 16
	// bytes cannot gather effectively and use the tiny (large) gap: this is
	// the paper's footnote about the "relatively high latency of remote
	// memory accesses with 8 byte granularity".
	WriteGatherGap     int64
	WriteGatherGapTiny int64

	// EchoFraction is the fraction of the data rate that flow-control echo
	// packets impose on the return-path ring segments.
	EchoFraction float64

	// SegmentLatency is the propagation delay of one ring segment (B-Link
	// plus cable). It does not affect transfer rates; it is the quantity a
	// partitioned simulation derives its conservative lookahead from: no
	// interaction between nodes can take effect in less than the latency of
	// the segments between them.
	SegmentLatency time.Duration

	// DMAStartup and DMAPeakBW describe the adapter's DMA engine.
	DMAStartup time.Duration
	DMAPeakBW  float64

	// Scatter-gather DMA: a descriptor-list engine that gathers scattered
	// source runs and streams them onto the ring without the CPU. Unlike
	// the plain block engine (DMAPeakBW, calibrated against the D330's
	// single-transfer programmed setup), the list engine pipelines
	// descriptor fetch with data movement and feeds the adapter's stream
	// buffers directly, so its streaming rate approaches the PIO write
	// peak; what it pays instead is a per-descriptor processing cost.
	//
	// DMASGDesc is the engine-side processing cost per descriptor;
	// DMASGBuild is the CPU cost of building one descriptor at submission;
	// DMASGPeakBW is the engine's peak streaming bandwidth; DMASGGap is
	// the stream restart cost per destination run, in equivalent dead
	// bytes (the analogue of WriteGatherGap for the engine's own stream
	// transactions).
	DMASGDesc   time.Duration
	DMASGBuild  time.Duration
	DMASGPeakBW float64
	DMASGGap    int64

	// InterruptLatency is the cost of raising a remote interrupt (used by
	// the one-sided emulation path to invoke a remote handler).
	InterruptLatency time.Duration

	// FaultRate is the probability that a transfer suffers a transmission
	// error and must be retried; RetryLatency is the added delay per retry.
	// Faults are generated by a deterministic seeded PRNG.
	FaultRate    float64
	RetryLatency time.Duration
	FaultSeed    uint64

	// Fault is an optional deterministic fault-injection plan: scheduled
	// node crashes, link-disturbance windows, CRC/sequence transfer
	// errors, transfer-check failures and segment revocations. Unlike the
	// latency-only FaultRate knob above, plan faults make operations fail
	// with typed errors that the recovery layers must handle. nil injects
	// nothing. A Plan holds mutable draw state — use a fresh Plan (same
	// seed) per run.
	Fault *fault.Plan

	// Tracer, when non-nil, receives fault-injection and recovery events
	// (category "fault").
	Tracer *trace.Tracer

	// Metrics, when non-nil, receives the interconnect's counters and
	// latency histograms (sci.pio.*, sci.dma.ns, sci.store_barrier.ns,
	// fault.injected{kind=...}). nil disables metrics at zero cost on the
	// PIO hot path.
	Metrics *obs.Registry

	// Flight, when non-nil, receives node crash/restore and segment
	// revocation events on the per-node actor rings ("node<i>"), so a
	// post-mortem can correlate protocol stalls with the injected
	// interconnect faults. nil records nothing at zero cost.
	Flight *flight.Recorder

	// CheckRetryMax bounds the retries of the transfer-check barrier
	// (Mapping.CheckedSync) before it converts a persistently failing
	// check into ErrConnectionLost; CheckBackoff is the initial backoff,
	// doubled per retry.
	CheckRetryMax int
	CheckBackoff  time.Duration

	// Mem is the local memory hierarchy model of every node.
	Mem *memmodel.Model
}

// DefaultConfig returns the configuration calibrated to the paper's
// testbed: dual Pentium-III 800 nodes, 64 bit / 66 MHz PCI, Dolphin D330
// adapters on a single 166 MHz ringlet.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:               nodes,
		LinkMHz:             ring.DefaultLinkMHz,
		WriteCombine:        true,
		PIOWritePeakBW:      225 * MiB,
		SustainedPutBW:      123 * MiB,
		PIOWriteLatency:     2300 * time.Nanosecond,
		PIOReadStall:        4700 * time.Nanosecond,
		PIOReadChunk:        64,
		PIOReadPipeline:     1.15,
		StoreBarrierLatency: 1800 * time.Nanosecond,
		WriteIssueOverhead:  50 * time.Nanosecond,
		WriteGatherGap:      8,
		WriteGatherGapTiny:  64,
		EchoFraction:        0.25,
		SegmentLatency:      70 * time.Nanosecond,
		DMAStartup:          22 * time.Microsecond,
		DMAPeakBW:           85 * MiB,
		DMASGDesc:           30 * time.Nanosecond,
		DMASGBuild:          15 * time.Nanosecond,
		DMASGPeakBW:         225 * MiB,
		DMASGGap:            8,
		InterruptLatency:    14 * time.Microsecond,
		FaultRate:           0,
		RetryLatency:        30 * time.Microsecond,
		FaultSeed:           1,
		CheckRetryMax:       4,
		CheckBackoff:        10 * time.Microsecond,
		Mem:                 memmodel.PentiumIII800(),
	}
}

// StreamWriteBW returns the effective bandwidth of consecutive remote
// block writes with the given contiguous block size (the direct_pack_ff
// write pattern: ascending addresses, block-wise source).
func (c *Config) StreamWriteBW(blockSize int64) float64 {
	if blockSize <= 0 {
		return c.PIOWritePeakBW
	}
	gap := c.WriteGatherGap
	if blockSize < 16 {
		gap = c.WriteGatherGapTiny
	}
	peak := c.PIOWritePeakBW
	if !c.WriteCombine {
		peak *= 0.5
	}
	return peak * float64(blockSize) / float64(blockSize+gap)
}

// SGStreamBW returns the effective streaming bandwidth of the
// scatter-gather DMA engine for destination runs averaging runBytes: each
// run restart costs DMASGGap equivalent dead bytes, mirroring the stream
// buffer model of StreamWriteBW but without the CPU write-combine
// interaction (the engine always emits full SCI transactions).
func (c *Config) SGStreamBW(runBytes int64) float64 {
	if runBytes <= 0 {
		return c.DMASGPeakBW
	}
	return c.DMASGPeakBW * float64(runBytes) / float64(runBytes+c.DMASGGap)
}

// SGTransferCost returns the engine-side duration of a scatter-gather
// transfer: one startup, per-descriptor list processing, and the merged-run
// stream of all bytes at the run-dependent rate (capped by the source
// memory bandwidth for large working sets). It is exported so path
// choosers above the SCI layer can predict the engine from the same model
// it is charged with.
func (c *Config) SGTransferCost(nDesc int, bytes, avgRun int64) time.Duration {
	if bytes <= 0 {
		return c.DMAStartup
	}
	bw := c.SGStreamBW(avgRun)
	if c.Mem != nil {
		bw = c.Mem.EffectiveSourceBW(bw, bytes)
	}
	stream := time.Duration(float64(bytes) / bw * float64(time.Second))
	return c.DMAStartup + time.Duration(nDesc)*c.DMASGDesc + stream
}

// alignedStrided and worstStrided are the calibrated raw bandwidths
// (MiB/s) of strided remote writes for best-case (stride a multiple of the
// 32-byte write-combine buffer) and worst-case alignment. The 8-byte and
// 256-byte points are the paper's §4.3 measurements (5–28 MiB/s and
// 7–162 MiB/s).
var alignedStrided = [][2]float64{
	{8, 28}, {16, 48}, {32, 72}, {64, 104}, {128, 136}, {256, 162},
	{512, 180}, {1024, 196}, {4096, 210}, {16384, 218}, {65536, 222},
}

var worstStrided = [][2]float64{
	{8, 5}, {16, 5.5}, {32, 6}, {64, 6.5}, {128, 6.8}, {256, 7},
	{512, 8}, {1024, 10}, {4096, 24}, {16384, 70}, {65536, 150},
}

// wcOffStrided is the stride-insensitive curve with write-combining
// disabled ("lowers the overall bandwidth about 50%").
var wcOffStrided = [][2]float64{
	{8, 14}, {16, 24}, {32, 36}, {64, 52}, {128, 68}, {256, 81},
	{512, 90}, {1024, 98}, {4096, 105}, {16384, 108}, {65536, 110},
}

// StridedWriteBW returns the raw bandwidth of remote writes of accessSize
// bytes separated by the given stride (stride >= accessSize; the gap is not
// written). With write-combining enabled the result depends strongly on
// stride alignment relative to the 32-byte WC buffer.
func (c *Config) StridedWriteBW(accessSize, stride int64) float64 {
	if accessSize <= 0 {
		return 0
	}
	if stride <= accessSize {
		// Effectively contiguous.
		return c.StreamWriteBW(accessSize)
	}
	if !c.WriteCombine {
		return interp(wcOffStrided, float64(accessSize)) * MiB
	}
	aligned := interp(alignedStrided, float64(accessSize)) * MiB
	worst := interp(worstStrided, float64(accessSize)) * MiB
	switch stride % 32 {
	case 0:
		return aligned
	case 16:
		return (aligned + worst) / 2
	default:
		return worst
	}
}

// ReadBW returns the effective bandwidth of a remote read of n bytes:
// the CPU stalls per PIOReadChunk transaction, mildly pipelined.
func (c *Config) ReadBW(n int64) float64 {
	if n <= 0 {
		return 1
	}
	chunks := (n + c.PIOReadChunk - 1) / c.PIOReadChunk
	stall := c.PIOReadStall.Seconds() / c.PIOReadPipeline
	return float64(n) / (float64(chunks) * stall)
}

// interp linearly interpolates a sorted (x, y) table, clamping outside it.
func interp(curve [][2]float64, x float64) float64 {
	if x <= curve[0][0] {
		return curve[0][1]
	}
	last := curve[len(curve)-1]
	if x >= last[0] {
		return last[1]
	}
	for i := 1; i < len(curve); i++ {
		if x <= curve[i][0] {
			x0, y0 := curve[i-1][0], curve[i-1][1]
			x1, y1 := curve[i][0], curve[i][1]
			t := (x - x0) / (x1 - x0)
			return y0 + t*(y1-y0)
		}
	}
	return last[1]
}
