package sci

import (
	"time"

	"scimpich/internal/sim"
)

// faultInjector models transmission errors on the SCI cabling: a transfer
// occasionally fails its CRC/sequence check and must be retried, adding
// latency. The paper's point is that SCI "is still a network in which
// single nodes may fail or physical connections may be disturbed", so a
// connection monitoring and transfer checking layer is mandatory; our MPI
// device must deliver exactly-once regardless of injected retries, which
// the fault tests assert.
//
// Randomness comes from a SplitMix64 PRNG seeded from the configuration, so
// fault schedules are fully deterministic.
type faultInjector struct {
	rate    float64
	latency time.Duration
	state   uint64
}

// maxRetryRate caps the retransmit probability: a rate at or above 1.0
// would make every trial fail and spin maybeRetry forever.
const maxRetryRate = 0.95

// maxConsecutiveRetries bounds the retransmit storm of one transfer even
// under an (already clamped) extreme rate: a real adapter gives up and
// reports the error long before this.
const maxConsecutiveRetries = 8

func newFaultInjector(rate float64, latency time.Duration, seed uint64) *faultInjector {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	if rate > maxRetryRate {
		rate = maxRetryRate
	}
	return &faultInjector{rate: rate, latency: latency, state: seed}
}

// next returns a uniform float64 in [0, 1).
func (fi *faultInjector) next() float64 {
	fi.state += 0x9e3779b97f4a7c15
	z := fi.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// maybeRetry injects a retry delay with the configured probability,
// possibly several times in a row (independent trials, capped so a
// pathological rate cannot stall a transfer forever).
func (fi *faultInjector) maybeRetry(p *sim.Proc, stats *nodeStats) {
	if fi.rate <= 0 {
		return
	}
	for i := 0; i < maxConsecutiveRetries && fi.next() < fi.rate; i++ {
		stats.retries.Add(1)
		p.Sleep(fi.latency)
	}
}
