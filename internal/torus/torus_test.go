package torus

import (
	"testing"

	"scimpich/internal/ring"
)

func TestCoordsRoundTrip(t *testing.T) {
	to := New(4, 3, 2, 633*ring.MiB, nil)
	if to.Nodes() != 24 {
		t.Fatalf("nodes = %d, want 24", to.Nodes())
	}
	for id := 0; id < to.Nodes(); id++ {
		x, y, z := to.Coords(id)
		if to.NodeID(x, y, z) != id {
			t.Fatalf("coords round trip failed for %d -> (%d,%d,%d)", id, x, y, z)
		}
	}
}

func TestSelfRouteEmpty(t *testing.T) {
	to := New(3, 3, 3, 633*ring.MiB, nil)
	if len(to.Route(13, 13)) != 0 {
		t.Error("self route not empty")
	}
}

func TestDimensionOrderedRouting(t *testing.T) {
	to := New(4, 4, 4, 633*ring.MiB, nil)
	a := to.NodeID(0, 0, 0)
	b := to.NodeID(2, 3, 1)
	// Ring distances: x 2 hops, y 3 hops, z 1 hop = 6 segments.
	if got := to.HopCount(a, b); got != 6 {
		t.Errorf("hop count = %d, want 6", got)
	}
	// Single-dimension moves stay on one ring.
	c := to.NodeID(3, 0, 0)
	if got := to.HopCount(a, c); got != 3 {
		t.Errorf("x-only hop count = %d, want 3 (ring distance)", got)
	}
}

func TestRingsAreDisjointLines(t *testing.T) {
	to := New(2, 2, 2, 633*ring.MiB, nil)
	// Routes within different x-lines must not share links.
	p1 := to.Route(to.NodeID(0, 0, 0), to.NodeID(1, 0, 0))
	p2 := to.Route(to.NodeID(0, 1, 0), to.NodeID(1, 1, 0))
	for _, l1 := range p1 {
		for _, l2 := range p2 {
			if l1 == l2 {
				t.Fatal("distinct x-lines share a link")
			}
		}
	}
}

func TestRouteReachesEveryPair(t *testing.T) {
	to := New(3, 2, 2, 633*ring.MiB, nil)
	n := to.Nodes()
	maxHops := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			h := to.HopCount(a, b)
			if a == b && h != 0 {
				t.Fatalf("self route %d has %d hops", a, h)
			}
			if a != b && h == 0 {
				t.Fatalf("no route %d -> %d", a, b)
			}
			if h > maxHops {
				maxHops = h
			}
		}
	}
	// Diameter of unidirectional rings: sum of (dim-1).
	if want := 2 + 1 + 1; maxHops != want {
		t.Errorf("diameter = %d, want %d", maxHops, want)
	}
}

func TestInvalidArgsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"dims":   func() { New(0, 2, 2, 1, nil) },
		"coords": func() { New(2, 2, 2, 1, nil).NodeID(2, 0, 0) },
		"id":     func() { New(2, 2, 2, 1, nil).Coords(8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
