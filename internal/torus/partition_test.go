package torus

import (
	"testing"
	"time"

	"scimpich/internal/flow"
)

func TestSegmentsEnumerateEveryLinkOnce(t *testing.T) {
	tp := New(4, 4, 8, 633<<20, nil)
	segs := tp.Segments()
	if len(segs) != 3*tp.Nodes() {
		t.Fatalf("got %d segments, want %d", len(segs), 3*tp.Nodes())
	}
	seen := make(map[*flow.Link]bool)
	for _, s := range segs {
		if seen[s.Link] {
			t.Fatalf("link %s enumerated twice", s.Link.Name())
		}
		seen[s.Link] = true
		// Endpoints must differ in exactly the segment's dimension by one
		// (mod that dimension's extent).
		fx, fy, fz := tp.Coords(s.From)
		tx, ty, tz := tp.Coords(s.To)
		d := [3]int{(tx - fx + 4) % 4, (ty - fy + 4) % 4, (tz - fz + 8) % 8}
		for dim := 0; dim < 3; dim++ {
			want := 0
			if dim == s.Dim {
				want = 1
			}
			if d[dim] != want {
				t.Fatalf("segment dim %d from %d to %d has delta %v", s.Dim, s.From, s.To, d)
			}
		}
	}
}

func TestPartitionZ(t *testing.T) {
	tp := New(4, 4, 8, 633<<20, nil)
	for _, shards := range []int{1, 2, 4, 8} {
		assign := tp.PartitionZ(shards)
		counts := make([]int, shards)
		for id, s := range assign {
			_, _, z := tp.Coords(id)
			if want := z / (8 / shards); s != want {
				t.Fatalf("shards=%d: node %d (z=%d) on shard %d, want %d", shards, id, z, s, want)
			}
			counts[s]++
		}
		for s, c := range counts {
			if c != tp.Nodes()/shards {
				t.Fatalf("shards=%d: shard %d owns %d nodes, want %d", shards, s, c, tp.Nodes()/shards)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PartitionZ(3) on dz=8 did not panic")
		}
	}()
	tp.PartitionZ(3)
}

func TestCrossShardLinksAreZOnly(t *testing.T) {
	tp := New(4, 4, 8, 633<<20, nil).SetLinkLatency(70 * time.Nanosecond)
	assign := tp.PartitionZ(4)
	cross := tp.CrossShardLinks(assign)
	// Every z-plane-boundary crossing: 4 boundaries between distinct shards
	// are at z=1->2, 3->4, 5->6, 7->0; each boundary has dx*dy=16 links.
	// Within-shard z hops (z=0->1 etc.) must not appear.
	if len(cross) != 4*16 {
		t.Fatalf("got %d cross links, want 64", len(cross))
	}
	crossSet := make(map[*flow.Link]bool, len(cross))
	for _, l := range cross {
		crossSet[l] = true
	}
	for _, s := range tp.Segments() {
		if crossSet[s.Link] && s.Dim != 2 {
			t.Fatalf("non-z link (dim %d) crosses the z partition", s.Dim)
		}
	}
	if got := flow.MinLatency(cross); got != 70*time.Nanosecond {
		t.Fatalf("lookahead over cross links = %v, want 70ns", got)
	}
}
