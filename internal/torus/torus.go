// Package torus models a 3-D torus of SCI ringlets — the paper's §6
// scaling outlook: "With the increased link frequency, a limit of 8 nodes
// per ringlet seems reasonable, which gives a 512 nodes system when using
// 3D-torus topology."
//
// Every node sits on three rings (one per dimension); a transfer uses
// dimension-ordered routing: along the x-ring to the target's x
// coordinate, then the y-ring, then the z-ring. Keeping each ringlet at 8
// nodes bounds the per-segment utilization regardless of machine size,
// which is exactly why the projection holds.
package torus

import (
	"fmt"
	"time"

	"scimpich/internal/flow"
	"scimpich/internal/ring"
)

// Topology is a dx x dy x dz torus of ringlets.
type Topology struct {
	dims [3]int
	// rings[d] holds one ringlet per line in dimension d, indexed by the
	// flattened coordinates of the other two dimensions.
	rings [3][]*ring.Topology
}

// New builds the torus with the given per-segment bandwidth and congestion
// model (nil for ideal links).
func New(dx, dy, dz int, linkBW float64, model flow.CongestionModel) *Topology {
	if dx < 1 || dy < 1 || dz < 1 {
		panic("torus: dimensions must be positive")
	}
	t := &Topology{dims: [3]int{dx, dy, dz}}
	counts := [3]int{dy * dz, dx * dz, dx * dy}
	for d := 0; d < 3; d++ {
		t.rings[d] = make([]*ring.Topology, counts[d])
		for i := range t.rings[d] {
			t.rings[d][i] = ring.New(t.dims[d], linkBW, model)
		}
	}
	return t
}

// Nodes returns the machine size.
func (t *Topology) Nodes() int { return t.dims[0] * t.dims[1] * t.dims[2] }

// Dims returns the torus dimensions.
func (t *Topology) Dims() [3]int { return t.dims }

// NodeID flattens coordinates (x fastest).
func (t *Topology) NodeID(x, y, z int) int {
	t.check(x, y, z)
	return x + t.dims[0]*(y+t.dims[1]*z)
}

// Coords unflattens a node id.
func (t *Topology) Coords(id int) (x, y, z int) {
	if id < 0 || id >= t.Nodes() {
		panic(fmt.Sprintf("torus: node %d outside machine of %d", id, t.Nodes()))
	}
	x = id % t.dims[0]
	y = (id / t.dims[0]) % t.dims[1]
	z = id / (t.dims[0] * t.dims[1])
	return
}

func (t *Topology) check(x, y, z int) {
	if x < 0 || x >= t.dims[0] || y < 0 || y >= t.dims[1] || z < 0 || z >= t.dims[2] {
		panic(fmt.Sprintf("torus: coordinates (%d,%d,%d) outside %v", x, y, z, t.dims))
	}
}

// lineIndex returns which ringlet of dimension d the node's line is.
func (t *Topology) lineIndex(d, x, y, z int) int {
	switch d {
	case 0:
		return y + t.dims[1]*z
	case 1:
		return x + t.dims[0]*z
	default:
		return x + t.dims[0]*y
	}
}

// coord returns the node's position on its dimension-d ring.
func coord(d, x, y, z int) int {
	switch d {
	case 0:
		return x
	case 1:
		return y
	default:
		return z
	}
}

// Route returns the segments of the dimension-ordered path from node a to
// node b: x-ring first, then y, then z. A self-route is empty.
func (t *Topology) Route(a, b int) []*flow.Link {
	ax, ay, az := t.Coords(a)
	bx, by, bz := t.Coords(b)
	var path []*flow.Link
	// Correct one coordinate at a time; the current position updates as
	// we hop between rings.
	cx, cy, cz := ax, ay, az
	targets := [3]int{bx, by, bz}
	for d := 0; d < 3; d++ {
		from := coord(d, cx, cy, cz)
		to := targets[d]
		if from == to {
			continue
		}
		r := t.rings[d][t.lineIndex(d, cx, cy, cz)]
		path = append(path, r.Route(from, to)...)
		switch d {
		case 0:
			cx = to
		case 1:
			cy = to
		default:
			cz = to
		}
	}
	return path
}

// HopCount returns the number of segments on the dimension-ordered path.
func (t *Topology) HopCount(a, b int) int { return len(t.Route(a, b)) }

// Segment describes one torus link together with its global endpoint nodes
// and the dimension of the ring it belongs to.
type Segment struct {
	Link     *flow.Link
	Dim      int
	From, To int // global node ids
}

// Segments enumerates every link of the machine with its endpoints,
// dimension-major then ring-major then position — a deterministic order.
func (t *Topology) Segments() []Segment {
	dx, dy, dz := t.dims[0], t.dims[1], t.dims[2]
	segs := make([]Segment, 0, 3*t.Nodes())
	for d := 0; d < 3; d++ {
		for li, r := range t.rings[d] {
			for i := 0; i < t.dims[d]; i++ {
				var from, to int
				switch d {
				case 0:
					y, z := li%dy, li/dy
					from, to = t.NodeID(i, y, z), t.NodeID((i+1)%dx, y, z)
				case 1:
					x, z := li%dx, li/dx
					from, to = t.NodeID(x, i, z), t.NodeID(x, (i+1)%dy, z)
				default:
					x, y := li%dx, li/dx
					from, to = t.NodeID(x, y, i), t.NodeID(x, y, (i+1)%dz)
				}
				segs = append(segs, Segment{Link: r.Link(i), Dim: d, From: from, To: to})
			}
		}
	}
	return segs
}

// SetLinkLatency sets the propagation latency of every segment of every
// ringlet (the lookahead source for partitioned simulations) and returns the
// topology for chained construction.
func (t *Topology) SetLinkLatency(d time.Duration) *Topology {
	for dim := 0; dim < 3; dim++ {
		for _, r := range t.rings[dim] {
			r.SetLinkLatency(d)
		}
	}
	return t
}

// PartitionZ assigns every node to one of shards shards by contiguous
// blocks of z-planes: shard s owns planes [s*dz/shards, (s+1)*dz/shards).
// x- and y-rings lie entirely inside one z-plane, so only z-ring segments
// ever cross the partition — which makes the z-block partition the natural
// one for a conservative-parallel simulation of this machine. shards must
// divide dz so blocks are equal. The result maps node id to shard.
func (t *Topology) PartitionZ(shards int) []int {
	dz := t.dims[2]
	if shards < 1 || dz%shards != 0 {
		panic(fmt.Sprintf("torus: %d shards do not evenly divide dz=%d", shards, dz))
	}
	planes := dz / shards
	assign := make([]int, t.Nodes())
	for id := range assign {
		_, _, z := t.Coords(id)
		assign[id] = z / planes
	}
	return assign
}

// CrossShardLinks returns the links whose segments join nodes assigned to
// different shards. flow.MinLatency over them is the conservative lookahead
// of the partition.
func (t *Topology) CrossShardLinks(assign []int) []*flow.Link {
	if len(assign) != t.Nodes() {
		panic("torus: assignment length does not match machine size")
	}
	var links []*flow.Link
	for _, s := range t.Segments() {
		if assign[s.From] != assign[s.To] {
			links = append(links, s.Link)
		}
	}
	return links
}
