package mpi

import (
	"testing"
	"time"

	"scimpich/internal/datatype"
)

// Protocol-selection tests: the device must route messages by size through
// the short, eager and rendezvous paths exactly at the configured
// thresholds, observable through the device statistics.

func statsAfterSend(t *testing.T, size int64) DeviceStats {
	t.Helper()
	var st DeviceStats
	Run(DefaultConfig(2, 1), func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(make([]byte, size), int(size), datatype.Byte, 1, 0)
		case 1:
			c.Recv(make([]byte, size), int(size), datatype.Byte, 0, 0)
			st = c.World().Stats(1)
		}
	})
	return st
}

func TestProtocolSelectionBoundaries(t *testing.T) {
	proto := DefaultProtocol()
	cases := []struct {
		size              int64
		short, eager, rdv int64
	}{
		{proto.ShortMax, 1, 0, 0},
		{proto.ShortMax + 1, 0, 1, 0},
		{proto.EagerMax, 0, 1, 0},
		{proto.EagerMax + 1, 0, 0, 1},
	}
	for _, cse := range cases {
		st := statsAfterSend(t, cse.size)
		if st.ShortRecvd != cse.short || st.EagerRecvd != cse.eager || st.RdvRecvd != cse.rdv {
			t.Errorf("size %d: short/eager/rdv = %d/%d/%d, want %d/%d/%d",
				cse.size, st.ShortRecvd, st.EagerRecvd, st.RdvRecvd, cse.short, cse.eager, cse.rdv)
		}
	}
}

func TestUnexpectedMessageCounting(t *testing.T) {
	Run(DefaultConfig(2, 1), func(c *Comm) {
		switch c.Rank() {
		case 0:
			// Arrives before the receive is posted.
			c.Send(make([]byte, 64), 64, datatype.Byte, 1, 0)
			c.Recv(nil, 0, datatype.Byte, 1, 1)
		case 1:
			c.Proc().Sleep(100 * time.Microsecond)
			c.Recv(make([]byte, 64), 64, datatype.Byte, 0, 0)
			if st := c.World().Stats(1); st.Unexpected != 1 {
				t.Errorf("unexpected count = %d, want 1", st.Unexpected)
			}
			c.Send(nil, 0, datatype.Byte, 0, 1)
		}
	})
}

func TestBytesReceivedAccounting(t *testing.T) {
	const size = 96 << 10
	st := statsAfterSend(t, size)
	if st.BytesRecvd != size {
		t.Errorf("bytes received = %d, want %d", st.BytesRecvd, size)
	}
}
