package mpi

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/fault"
	"scimpich/internal/sci"
)

// Fault-injection integration tests: with transmission errors injected at
// the SCI layer (the paper's point that SCI cabling "is still a network"
// needing connection monitoring and transfer checking), the full protocol
// stack must still deliver every message exactly once, just more slowly.

func faultyConfig(rate float64) Config {
	cfg := DefaultConfig(2, 1)
	cfg.SCI.FaultRate = rate
	cfg.SCI.RetryLatency = 30 * time.Microsecond
	return cfg
}

func TestFaultySendRecvAllSizes(t *testing.T) {
	for _, size := range []int{64, 4096, 512 << 10} {
		src := fill(size)
		Run(faultyConfig(0.1), func(c *Comm) {
			switch c.Rank() {
			case 0:
				c.Send(src, size, datatype.Byte, 1, 0)
			case 1:
				dst := make([]byte, size)
				c.Recv(dst, size, datatype.Byte, 0, 0)
				if !bytes.Equal(dst, src) {
					t.Errorf("size %d: data corrupted under fault injection", size)
				}
			}
		})
	}
}

func TestFaultyNoncontigFF(t *testing.T) {
	ty := datatype.Vector(2048, 16, 32, datatype.Float64).Commit()
	src := fill(int(ty.Extent()) + 64)
	Run(faultyConfig(0.15), func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(src, 1, ty, 1, 0)
		case 1:
			dst := make([]byte, len(src))
			c.Recv(dst, 1, ty, 0, 0)
			for _, b := range ty.TypeMap() {
				if !bytes.Equal(dst[b.Off:b.Off+b.Len], src[b.Off:b.Off+b.Len]) {
					t.Fatalf("ff block at %d corrupted under faults", b.Off)
				}
			}
		}
	})
}

func TestFaultsSlowButDontBreakCollectives(t *testing.T) {
	payload := fill(256 << 10) // rendezvous: many transfers, many fault draws
	run := func(rate float64) (time.Duration, int64) {
		cfg := DefaultConfig(4, 1)
		cfg.SCI.FaultRate = rate
		cfg.SCI.RetryLatency = 50 * time.Microsecond
		var w *World
		d := Run(cfg, func(c *Comm) {
			if c.Rank() == 0 {
				w = c.World()
			}
			for i := 0; i < 4; i++ {
				collectiveWorkload(t, payload)(c)
			}
		})
		var retries int64
		for n := 0; n < 4; n++ {
			retries += w.InterconnectStats(n).Retries
		}
		return d, retries
	}
	clean, cleanRetries := run(0)
	faulty, faultyRetries := run(0.2)
	if cleanRetries != 0 {
		t.Errorf("clean run recorded %d retries", cleanRetries)
	}
	if faultyRetries == 0 {
		t.Error("faulty run recorded no retries")
	}
	if faulty <= clean {
		t.Errorf("faulty run (%v) not slower than clean run (%v)", faulty, clean)
	}
}

func collectiveWorkload(t *testing.T, payload []byte) func(c *Comm) {
	return func(c *Comm) {
		buf := make([]byte, len(payload))
		if c.Rank() == 2 {
			copy(buf, payload)
		}
		c.Bcast(buf, len(buf), datatype.Byte, 2)
		if !bytes.Equal(buf, payload) {
			t.Errorf("rank %d: bcast corrupted under faults", c.Rank())
		}
		recv := make([]byte, 8)
		c.Allreduce(Float64Bytes([]float64{1}), recv, 1, datatype.Float64, OpSum)
		if BytesFloat64(recv)[0] != float64(c.Size()) {
			t.Errorf("rank %d: allreduce wrong under faults", c.Rank())
		}
	}
}

func TestFaultyRunsRemainDeterministic(t *testing.T) {
	run := func() time.Duration {
		return Run(faultyConfig(0.25), func(c *Comm) {
			buf := fill(128 << 10)
			switch c.Rank() {
			case 0:
				c.Send(buf, len(buf), datatype.Byte, 1, 0)
			case 1:
				dst := make([]byte, len(buf))
				c.Recv(dst, len(dst), datatype.Byte, 0, 0)
			}
		})
	}
	if a, b := run(), run(); a != b {
		t.Errorf("faulty runs diverge: %v vs %v", a, b)
	}
}

// --- fault.Plan-driven tests: deterministic crashes, duplicates and
// injected transfer errors across the full protocol stack. ---

// TestNodeCrashMidRendezvousYieldsConnectionLost: a node crash scheduled
// mid-transfer must surface as a typed sci.ErrConnectionLost at the MPI
// layer (no hang, no panic), and the receiver's watchdog must fire too.
func TestNodeCrashMidRendezvousYieldsConnectionLost(t *testing.T) {
	run := func() (time.Duration, error, error) {
		cfg := DefaultConfig(2, 1)
		cfg.SCI.Fault = fault.New(3).CrashNode(1, 500*time.Microsecond)
		cfg.Protocol.RendezvousTimeout = AutoTimeout // scaled watchdog, no tuned constant
		payload := fill(2 << 20) // long enough to straddle the crash
		var sendErr, recvErr error
		d := Run(cfg, func(c *Comm) {
			switch c.Rank() {
			case 0:
				sendErr = c.SendChecked(payload, len(payload), datatype.Byte, 1, 0)
			case 1:
				dst := make([]byte, len(payload))
				_, recvErr = c.RecvChecked(dst, len(dst), datatype.Byte, 0, 0, AutoTimeout)
			}
		})
		return d, sendErr, recvErr
	}
	d1, sendErr, recvErr := run()
	var lost sci.ErrConnectionLost
	if !errors.As(sendErr, &lost) {
		t.Fatalf("send error = %v, want sci.ErrConnectionLost", sendErr)
	}
	if lost.To != 1 {
		t.Errorf("connection lost toward node %d, want 1", lost.To)
	}
	if recvErr == nil {
		t.Error("receiver completed despite its own node crashing mid-transfer")
	}
	d2, sendErr2, _ := run()
	if d1 != d2 || !errors.As(sendErr2, &lost) {
		t.Errorf("same-seed crash runs diverge: %v/%v vs %v/%v", d1, sendErr, d2, sendErr2)
	}
}

// TestDuplicateInjectionExactlyOnce: with control packets randomly
// retransmitted, the per-peer sequence numbers must drop every duplicate so
// each message is delivered exactly once with intact contents.
func TestDuplicateInjectionExactlyOnce(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.SCI.Fault = fault.New(7).WithDuplicates(0.4)
	sizes := []int{64, 4 << 10, 256 << 10} // short, eager, rendezvous
	var w *World
	Run(cfg, func(c *Comm) {
		if c.Rank() == 0 {
			w = c.World()
		}
		for round := 0; round < 4; round++ {
			for _, size := range sizes {
				src := fill(size)
				switch c.Rank() {
				case 0:
					c.Send(src, size, datatype.Byte, 1, round)
				case 1:
					dst := make([]byte, size)
					st := c.Recv(dst, size, datatype.Byte, 0, round)
					if !bytes.Equal(dst, src) {
						t.Errorf("round %d size %d: contents corrupted under duplicates", round, size)
					}
					if st.Bytes != int64(size) {
						t.Errorf("round %d size %d: status reports %d bytes", round, size, st.Bytes)
					}
				}
			}
		}
	})
	var dropped int64
	for r := 0; r < 2; r++ {
		dropped += w.Stats(r).Duplicates
	}
	if dropped == 0 {
		t.Error("no duplicates dropped at a 40% duplication rate")
	}
}

// TestEagerRetryBackoff: injected CRC/sequence errors on the eager deposit
// path are retried with backoff and counted, and the data still arrives
// intact.
func TestEagerRetryBackoff(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.SCI.Fault = fault.New(9).WithWriteErrors(0.3)
	cfg.SCI.RetryLatency = 20 * time.Microsecond
	src := fill(8 << 10) // eager-sized
	var w *World
	Run(cfg, func(c *Comm) {
		if c.Rank() == 0 {
			w = c.World()
		}
		for i := 0; i < 8; i++ {
			switch c.Rank() {
			case 0:
				if err := c.SendChecked(src, len(src), datatype.Byte, 1, i); err != nil {
					t.Errorf("send %d failed despite retry budget: %v", i, err)
				}
			case 1:
				dst := make([]byte, len(src))
				c.Recv(dst, len(dst), datatype.Byte, 0, i)
				if !bytes.Equal(dst, src) {
					t.Errorf("send %d: contents corrupted under injected write errors", i)
				}
			}
		}
	})
	if w.Stats(0).SendRetries == 0 {
		t.Error("no send retries recorded at a 30% write-error rate")
	}
	if w.InterconnectStats(0).TransferErrors == 0 {
		t.Error("no transfer errors recorded in the adapter stats")
	}
}

// TestRendezvousTimeoutWithoutReceiver: a rendezvous toward a live peer
// that never posts a receive must trip the watchdog with a typed Timeout
// fault instead of hanging the sender forever.
func TestRendezvousTimeoutWithoutReceiver(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.Protocol.RendezvousTimeout = 200 * time.Microsecond
	payload := fill(256 << 10)
	var sendErr error
	Run(cfg, func(c *Comm) {
		switch c.Rank() {
		case 0:
			sendErr = c.SendChecked(payload, len(payload), datatype.Byte, 1, 0)
		case 1:
			c.Proc().Sleep(2 * time.Millisecond) // never posts the receive
		}
	})
	var fe *fault.Error
	if !errors.As(sendErr, &fe) || fe.Kind != fault.Timeout {
		t.Fatalf("send error = %v, want fault.Timeout", sendErr)
	}
}

// TestCancelledRendezvousTearsDownReceiver: a permanent chunk-deposit
// failure (every data write faulted, retry budget exhausted) must surface a
// typed error at the sender, tear down the receiver's transfer state via
// the cancel packet, and fail the posted receive with a *CancelledError —
// no leaked rendezvous state, no hang, no panic.
func TestCancelledRendezvousTearsDownReceiver(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.SCI.Fault = fault.New(13).WithWriteErrors(1).WithDMAErrors(1)
	cfg.SCI.RetryLatency = 10 * time.Microsecond
	cfg.Protocol.SendRetryMax = 2
	cfg.Protocol.SendBackoff = 10 * time.Microsecond
	payload := fill(256 << 10) // rendezvous-sized
	var w *World
	var sendErr, recvErr error
	Run(cfg, func(c *Comm) {
		switch c.Rank() {
		case 0:
			w = c.World()
			sendErr = c.SendChecked(payload, len(payload), datatype.Byte, 1, 0)
		case 1:
			dst := make([]byte, len(payload))
			_, recvErr = c.RecvChecked(dst, len(dst), datatype.Byte, 0, 0, 10*time.Millisecond)
		}
	})
	var fe *fault.Error
	if !errors.As(sendErr, &fe) {
		t.Fatalf("send error = %v, want *fault.Error after exhausted retries", sendErr)
	}
	var cancelled *CancelledError
	if !errors.As(recvErr, &cancelled) {
		t.Fatalf("recv error = %v, want *CancelledError", recvErr)
	}
	if cancelled.Sender != 0 {
		t.Errorf("cancellation names sender %d, want 0", cancelled.Sender)
	}
	if got := w.Stats(1).RdvCancels; got == 0 {
		t.Error("receiver recorded no rendezvous cancellations")
	}
	if n := len(w.ranks[1].dev.rdv); n != 0 {
		t.Errorf("receiver leaked %d rendezvous transfer states after cancel", n)
	}
}

func TestDMAPathDeliversData(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.Protocol.DMAMin = 32 << 10
	src := fill(512 << 10)
	Run(cfg, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(src, len(src), datatype.Byte, 1, 0)
		case 1:
			dst := make([]byte, len(src))
			c.Recv(dst, len(dst), datatype.Byte, 0, 0)
			if !bytes.Equal(dst, src) {
				t.Error("DMA rendezvous corrupted data")
			}
		}
	})
}
