package mpi

import (
	"bytes"
	"testing"
	"time"

	"scimpich/internal/datatype"
)

// Fault-injection integration tests: with transmission errors injected at
// the SCI layer (the paper's point that SCI cabling "is still a network"
// needing connection monitoring and transfer checking), the full protocol
// stack must still deliver every message exactly once, just more slowly.

func faultyConfig(rate float64) Config {
	cfg := DefaultConfig(2, 1)
	cfg.SCI.FaultRate = rate
	cfg.SCI.RetryLatency = 30 * time.Microsecond
	return cfg
}

func TestFaultySendRecvAllSizes(t *testing.T) {
	for _, size := range []int{64, 4096, 512 << 10} {
		src := fill(size)
		Run(faultyConfig(0.1), func(c *Comm) {
			switch c.Rank() {
			case 0:
				c.Send(src, size, datatype.Byte, 1, 0)
			case 1:
				dst := make([]byte, size)
				c.Recv(dst, size, datatype.Byte, 0, 0)
				if !bytes.Equal(dst, src) {
					t.Errorf("size %d: data corrupted under fault injection", size)
				}
			}
		})
	}
}

func TestFaultyNoncontigFF(t *testing.T) {
	ty := datatype.Vector(2048, 16, 32, datatype.Float64).Commit()
	src := fill(int(ty.Extent()) + 64)
	Run(faultyConfig(0.15), func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(src, 1, ty, 1, 0)
		case 1:
			dst := make([]byte, len(src))
			c.Recv(dst, 1, ty, 0, 0)
			for _, b := range ty.TypeMap() {
				if !bytes.Equal(dst[b.Off:b.Off+b.Len], src[b.Off:b.Off+b.Len]) {
					t.Fatalf("ff block at %d corrupted under faults", b.Off)
				}
			}
		}
	})
}

func TestFaultsSlowButDontBreakCollectives(t *testing.T) {
	payload := fill(256 << 10) // rendezvous: many transfers, many fault draws
	run := func(rate float64) (time.Duration, int64) {
		cfg := DefaultConfig(4, 1)
		cfg.SCI.FaultRate = rate
		cfg.SCI.RetryLatency = 50 * time.Microsecond
		var w *World
		d := Run(cfg, func(c *Comm) {
			if c.Rank() == 0 {
				w = c.World()
			}
			for i := 0; i < 4; i++ {
				collectiveWorkload(t, payload)(c)
			}
		})
		var retries int64
		for n := 0; n < 4; n++ {
			retries += w.InterconnectStats(n).Retries
		}
		return d, retries
	}
	clean, cleanRetries := run(0)
	faulty, faultyRetries := run(0.2)
	if cleanRetries != 0 {
		t.Errorf("clean run recorded %d retries", cleanRetries)
	}
	if faultyRetries == 0 {
		t.Error("faulty run recorded no retries")
	}
	if faulty <= clean {
		t.Errorf("faulty run (%v) not slower than clean run (%v)", faulty, clean)
	}
}

func collectiveWorkload(t *testing.T, payload []byte) func(c *Comm) {
	return func(c *Comm) {
		buf := make([]byte, len(payload))
		if c.Rank() == 2 {
			copy(buf, payload)
		}
		c.Bcast(buf, len(buf), datatype.Byte, 2)
		if !bytes.Equal(buf, payload) {
			t.Errorf("rank %d: bcast corrupted under faults", c.Rank())
		}
		recv := make([]byte, 8)
		c.Allreduce(Float64Bytes([]float64{1}), recv, 1, datatype.Float64, OpSum)
		if BytesFloat64(recv)[0] != float64(c.Size()) {
			t.Errorf("rank %d: allreduce wrong under faults", c.Rank())
		}
	}
}

func TestFaultyRunsRemainDeterministic(t *testing.T) {
	run := func() time.Duration {
		return Run(faultyConfig(0.25), func(c *Comm) {
			buf := fill(128 << 10)
			switch c.Rank() {
			case 0:
				c.Send(buf, len(buf), datatype.Byte, 1, 0)
			case 1:
				dst := make([]byte, len(buf))
				c.Recv(dst, len(dst), datatype.Byte, 0, 0)
			}
		})
	}
	if a, b := run(), run(); a != b {
		t.Errorf("faulty runs diverge: %v vs %v", a, b)
	}
}

func TestDMAPathDeliversData(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.Protocol.DMAMin = 32 << 10
	src := fill(512 << 10)
	Run(cfg, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(src, len(src), datatype.Byte, 1, 0)
		case 1:
			dst := make([]byte, len(src))
			c.Recv(dst, len(dst), datatype.Byte, 0, 0)
			if !bytes.Equal(dst, src) {
				t.Error("DMA rendezvous corrupted data")
			}
		}
	})
}
