package mpi

import "fmt"

// Placement maps the ranks of a world onto the shards of a partitioned
// simulation. It is pure bookkeeping: the shard of a rank decides which
// Locale of a sim.Fabric the rank's events run on, and which shard-local
// flow network its transfers are solved in. Ranks placed on the same shard
// may interact at any virtual delay; ranks on different shards only through
// sends of at least the fabric's lookahead.
type Placement struct {
	shardOf []int
	ranks   [][]int
}

// NewPlacement builds a placement from an explicit rank-to-shard map.
func NewPlacement(shardOf []int, shards int) *Placement {
	if shards < 1 {
		panic("mpi: placement needs at least one shard")
	}
	p := &Placement{shardOf: shardOf, ranks: make([][]int, shards)}
	for rank, s := range shardOf {
		if s < 0 || s >= shards {
			panic(fmt.Sprintf("mpi: rank %d placed on shard %d of %d", rank, s, shards))
		}
		p.ranks[s] = append(p.ranks[s], rank)
	}
	return p
}

// PlaceByNode composes a rank-to-node map with a node-to-shard partition
// (e.g. torus.PartitionZ): rank r lands on the shard owning its node. This
// is how MPI process placement follows the machine partition, so that a
// rank's local traffic stays inside its shard's flow network.
func PlaceByNode(nodeOf []int, nodeShard []int, shards int) *Placement {
	shardOf := make([]int, len(nodeOf))
	for rank, node := range nodeOf {
		if node < 0 || node >= len(nodeShard) {
			panic(fmt.Sprintf("mpi: rank %d on unknown node %d", rank, node))
		}
		shardOf[rank] = nodeShard[node]
	}
	return NewPlacement(shardOf, shards)
}

// Size returns the number of placed ranks.
func (p *Placement) Size() int { return len(p.shardOf) }

// Shards returns the number of shards.
func (p *Placement) Shards() int { return len(p.ranks) }

// ShardOf returns the shard rank runs on.
func (p *Placement) ShardOf(rank int) int { return p.shardOf[rank] }

// Ranks returns the ranks placed on shard, in rank order. The returned
// slice is shared; callers must not modify it.
func (p *Placement) Ranks(shard int) []int { return p.ranks[shard] }
