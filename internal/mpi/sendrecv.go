package mpi

import (
	"fmt"
	"time"

	"scimpich/internal/bufpool"
	"scimpich/internal/datatype"
	"scimpich/internal/fault"
	"scimpich/internal/obs/flight"
	"scimpich/internal/pack"
	"scimpich/internal/sci"
	"scimpich/internal/sim"
	"scimpich/internal/smi"
)

// genericTraversalPenalty is the extra software cost the recursive generic
// packing engine pays per contiguous block (repeated tree descent), which
// direct_pack_ff replaces with plain array/stack operations.
func genericTraversalPenalty(blocks int64) time.Duration {
	return time.Duration(blocks) * 160 * time.Nanosecond
}

// Send transmits count instances of dt from buf to rank dst with the given
// tag, blocking (in virtual time) until the user buffer is reusable.
// Unrecoverable transfer failures (a crashed peer node under an active
// fault plan) panic; use SendChecked to handle them as errors.
func (c *Comm) Send(buf []byte, count int, dt *datatype.Type, dst, tag int) {
	if err := c.send(buf, count, dt, dst, tag, c.ctx); err != nil {
		panic(err)
	}
}

// SendChecked is Send returning transfer failures as typed errors: a
// crashed peer node yields sci.ErrConnectionLost, an expired rendezvous
// watchdog (ProtocolConfig.RendezvousTimeout) a *fault.Error of kind
// Timeout, and persistent injected transfer errors their fault kind.
// Transient faults are retried with exponential backoff before any error
// is surfaced (ProtocolConfig.SendRetryMax / SendBackoff).
func (c *Comm) SendChecked(buf []byte, count int, dt *datatype.Type, dst, tag int) error {
	return c.send(buf, count, dt, dst, tag, c.ctx)
}

// sendSig returns the envelope signature of a datatype (0 for the
// pure-byte wildcard).
func sendSig(dt *datatype.Type) uint64 {
	sig, byteOnly := dt.Signature()
	if byteOnly {
		return 0
	}
	return sig
}

func (c *Comm) send(buf []byte, count int, dt *datatype.Type, dst, tag, ctx int) error {
	p := c.p
	w := c.rk.w
	proto := w.protocol()
	p.Sleep(proto.CallOverhead)
	dst = c.worldRank(dst) // all plumbing below uses world ranks
	if dst < 0 || dst >= w.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	bytes := dt.Size() * int64(count)
	tr := w.cfg.Tracer
	tr.Record(p.Now(), c.rk.actor, "send",
		"-> %d tag %d: %d bytes", dst, tag, bytes)
	var protoCode int64 // matches the KSendPost payload table
	switch {
	case dst == c.rk.id:
		protoCode = 0
	case bytes <= proto.ShortMax:
		protoCode = 1
	case bytes <= proto.EagerMax:
		protoCode = 2
	default:
		protoCode = 3
	}
	c.rk.fl.Record(p.Now(), flight.KSendPost, int64(dst), int64(tag), bytes, protoCode)

	if dst == c.rk.id {
		// Self send: buffered through an inline payload.
		sp := tr.Start(p.Now(), c.rk.actor, "send", "self")
		sp.SetBytes(bytes)
		payload := c.packCanonical(buf, count, dt, bytes)
		w.ring(p, c.rk.id, dst, &envelope{
			kind: envShort, src: c.rk.id, dst: dst, tag: tag, ctx: ctx,
			bytes: bytes, payload: payload.B, payloadBuf: payload, sig: sendSig(dt),
		}, false)
		sp.End(p.Now())
		return nil
	}

	start := p.Now()
	switch {
	case bytes <= proto.ShortMax:
		sp := tr.Start(start, c.rk.actor, "send", "short")
		sp.SetBytes(bytes)
		sp.SetDetail("-> %d tag %d", dst, tag)
		err := c.sendShort(buf, count, dt, dst, tag, ctx, bytes)
		sp.End(p.Now())
		w.met.sendsShort.Inc()
		w.met.bytesShort.Add(bytes)
		w.met.sendShortNS.ObserveDuration(p.Now() - start)
		return c.failSend(err, dst)
	case bytes <= proto.EagerMax:
		sp := tr.Start(start, c.rk.actor, "send", "eager")
		sp.SetBytes(bytes)
		sp.SetDetail("-> %d tag %d", dst, tag)
		err := c.sendEager(buf, count, dt, dst, tag, ctx, bytes)
		sp.End(p.Now())
		w.met.sendsEager.Inc()
		w.met.bytesEager.Add(bytes)
		w.met.sendEagerNS.ObserveDuration(p.Now() - start)
		return c.failSend(err, dst)
	default:
		sp := tr.Start(start, c.rk.actor, "send", "rdv")
		sp.SetBytes(bytes)
		sp.SetDetail("-> %d tag %d", dst, tag)
		err := c.sendRendezvous(buf, count, dt, dst, tag, ctx, bytes)
		sp.End(p.Now())
		w.met.sendsRdv.Inc()
		w.met.bytesRdv.Add(bytes)
		w.met.sendRdvNS.ObserveDuration(p.Now() - start)
		return c.failSend(err, dst)
	}
}

// failSend passes a send result through, recording a flight KError event
// (and triggering the recorder's dump-on-failure) when the protocol
// surfaced a typed error.
func (c *Comm) failSend(err error, dst int) error {
	if err != nil {
		c.rk.fl.Fail(c.p.Now(), flight.OpSend, dst, err)
	}
	return err
}

// peerLost reports whether the destination rank is unreachable: a revoked
// endpoint (either side) fails permanently as *RevokedRankError, a dead
// node as the typed connection error; nil otherwise. Observing a dead node
// also feeds the failure detector (World.Suspect), so a later shrink
// agreement starts from what the protocols already saw.
func (c *Comm) peerLost(dst int) error {
	w := c.rk.w
	if w.revoked[c.rk.id] {
		return &RevokedRankError{Rank: c.rk.id}
	}
	if w.revoked[dst] {
		return &RevokedRankError{Rank: dst}
	}
	if w.ic == nil {
		return nil
	}
	node := w.ranks[dst].node
	if node == c.rk.node || w.ic.Alive(node) {
		return nil
	}
	w.Suspect(dst)
	return sci.ErrConnectionLost{From: c.rk.node, To: node}
}

// retryTransfer runs a fallible data deposit, retrying retryable injected
// faults with exponential backoff (SendRetryMax attempts, SendBackoff
// initial delay) before surfacing the error.
func (c *Comm) retryTransfer(dst int, op func() error) error {
	proto := c.rk.w.protocol()
	max := proto.SendRetryMax
	if max <= 0 {
		max = 6
	}
	backoff := proto.SendBackoff
	if backoff <= 0 {
		backoff = 20 * time.Microsecond
	}
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		fe, ok := err.(*fault.Error)
		if !ok || !fe.Retryable() || attempt >= max {
			return err
		}
		c.rk.dev.stats.sendRetries.Add(1)
		c.rk.w.cfg.Tracer.Record(c.p.Now(), c.rk.actor, "fault",
			"deposit to %d failed (%v), retry %d after %v", dst, fe.Kind, attempt+1, backoff)
		c.rk.fl.Record(c.p.Now(), flight.KFault, int64(fe.Kind), int64(c.rk.id), int64(dst), int64(attempt+1))
		c.p.Sleep(backoff)
		backoff *= 2
	}
}

// packCanonical produces the canonical (definition-order) linearization of
// the message into a pooled payload buffer, charging local copy costs. The
// caller owns the returned buffer: scratch uses Put it when done, envelope
// payloads hand ownership to the receiving device (via envelope.payloadBuf).
func (c *Comm) packCanonical(buf []byte, count int, dt *datatype.Type, bytes int64) *bufpool.Buf {
	payload := bufpool.Get(int(bytes))
	if dt.Contiguous() {
		c.p.Sleep(c.mem().CopyCost(bytes, bytes, bytes))
		copy(payload.B, buf[:bytes])
		return payload
	}
	_, st := pack.GenericPack(payload.B, buf, dt, count, 0, -1)
	c.chargePackBlocks(st, false)
	return payload
}

// chargePackBlocks bills local block-copy work on the calling process.
func (c *Comm) chargePackBlocks(st pack.Stats, ff bool) {
	if st.Bytes == 0 {
		return
	}
	c.rk.w.countPack(st, ff)
	m := c.mem()
	ws := st.Bytes * 2
	cost := m.CopyCost(st.Bytes, st.AvgBlock(), ws)
	if ff {
		cost = m.BlockCopyCostFF(st.Bytes, st.AvgBlock(), ws)
	} else {
		cost += genericTraversalPenalty(st.Blocks)
	}
	c.rk.w.buses[c.rk.node].Charge(c.p, st.Bytes, cost)
}

// sendShort carries the payload inline in the control packet.
func (c *Comm) sendShort(buf []byte, count int, dt *datatype.Type, dst, tag, ctx int, bytes int64) error {
	if err := c.peerLost(dst); err != nil {
		return err
	}
	payload := c.packCanonical(buf, count, dt, bytes)
	w := c.rk.w
	// Charge the wire cost of the payload riding along the control packet.
	if c.remote(dst) && bytes > 0 {
		bw := w.cfg.SCI.PIOWritePeakBW
		if w.nicNet != nil {
			bw = w.cfg.NIC.Bandwidth
		}
		c.p.Sleep(sim.RateDuration(bytes, bw))
	}
	w.ring(c.p, c.rk.id, dst, &envelope{
		kind: envShort, src: c.rk.id, dst: dst, tag: tag, ctx: ctx,
		bytes: bytes, payload: payload.B, payloadBuf: payload, sig: sendSig(dt),
	}, false)
	return nil
}

// sendEager deposits the message in a preallocated eager slot at the
// receiver and announces it. Failed deposits are retried with backoff; a
// persistent failure returns the eager credit and surfaces the error.
func (c *Comm) sendEager(buf []byte, count int, dt *datatype.Type, dst, tag, ctx int, bytes int64) error {
	w := c.rk.w
	out := c.rk.out[dst]
	slot := c.p.Recv(out.credits).(int) // eager flow control
	off := w.eagerOff(slot)
	var payload *bufpool.Buf
	if !dt.Contiguous() {
		// Canonical pack into a pooled scratch buffer, then one streamed
		// write (eager messages cannot negotiate ff: the receive type is
		// not known yet).
		payload = c.packCanonical(buf, count, dt, bytes)
	}
	err := c.retryTransfer(dst, func() error {
		if err := c.peerLost(dst); err != nil {
			return err
		}
		src := buf[:bytes]
		if payload != nil {
			src = payload.B
		}
		if err := out.mem.TryWriteStream(c.p, off, src, bytes); err != nil {
			return err
		}
		return out.mem.TrySync(c.p)
	})
	// TryWriteStream captures the bytes synchronously, so the scratch can go
	// back to the pool before the announcement.
	payload.Put()
	if err != nil {
		sim.Post(out.credits, slot) // the slot was never announced
		return err
	}
	w.ring(c.p, c.rk.id, dst, &envelope{
		kind: envEager, src: c.rk.id, dst: dst, tag: tag, ctx: ctx,
		bytes: bytes, slot: slot, sig: sendSig(dt),
	}, false)
	return nil
}

// sendRendezvousTo is sendRendezvous with a pre-translated world rank (the
// synchronous-send entry point).
func (c *Comm) sendRendezvousTo(buf []byte, count int, dt *datatype.Type, dst, tag, ctx int, bytes int64) error {
	return c.sendRendezvous(buf, count, dt, dst, tag, ctx, bytes)
}

// recvCtl waits for the next rendezvous control packet from dst, bounded by
// the rendezvous watchdog (ProtocolConfig.RendezvousTimeout; AutoTimeout
// scales with the world, 0 waits forever). On expiry the peer's liveness
// decides the error: a dead node yields sci.ErrConnectionLost, otherwise a
// *fault.Error of kind Timeout.
func (c *Comm) recvCtl(reply *sim.Chan, dst int) (*envelope, error) {
	to := c.rk.w.rendezvousTimeoutEff()
	if to <= 0 {
		return c.p.Recv(reply).(*envelope), nil
	}
	v, ok := c.p.RecvTimeout(reply, to)
	if !ok {
		c.rk.dev.stats.sendTimeouts.Add(1)
		c.rk.w.cfg.Tracer.Record(c.p.Now(), c.rk.actor, "fault",
			"rendezvous watchdog expired waiting on %d after %v", dst, to)
		if err := c.peerLost(dst); err != nil {
			return nil, err
		}
		return nil, &fault.Error{Kind: fault.Timeout, From: c.rk.id, To: dst, At: c.p.Now()}
	}
	return v.(*envelope), nil
}

// expectCtl waits for a rendezvous control packet of the given kind from
// dst. A stray CTS while an ack is due (an injected retransmission racing
// the data chunks) is counted and skipped; any other unexpected kind
// surfaces as a *ProtocolError so the operation degrades instead of
// crashing the rank.
func (c *Comm) expectCtl(reply *sim.Chan, dst int, want envKind) (*envelope, error) {
	for {
		env, err := c.recvCtl(reply, dst)
		if err != nil {
			return nil, err
		}
		if env.kind == want {
			return env, nil
		}
		if want == envRdvAck && env.kind == envRdvCTS {
			c.rk.dev.stats.duplicates.Add(1)
			c.rk.w.cfg.Tracer.Record(c.p.Now(), c.rk.actor, "fault",
				"ignoring stray %v from %d while waiting for %v", env.kind, dst, want)
			continue
		}
		return nil, &ProtocolError{Want: want.String(), Got: env.kind.String(), From: c.rk.id, To: dst}
	}
}

// cancelRendezvous tells the receiver (best-effort) that the sender has
// abandoned an in-flight rendezvous, so it frees its transfer state and
// fails the posted receive instead of waiting for the watchdog. Delivered
// with an interrupt: a rank stuck in the broken transfer is not polling.
func (c *Comm) cancelRendezvous(dst int, reqID int64) {
	w := c.rk.w
	w.cfg.Tracer.Record(c.p.Now(), c.rk.actor, "fault",
		"cancelling rendezvous %d to %d", reqID, dst)
	c.rk.fl.Record(c.p.Now(), flight.KRdvCancel, int64(dst), reqID, 0, 0)
	w.ring(c.p, c.rk.id, dst, &envelope{
		kind: envRdvCancel, src: c.rk.id, dst: dst, reqID: reqID,
	}, true)
}

// sendRendezvous performs the handshaked large-message transfer, packing
// each chunk directly into the receiver's rendezvous buffer (direct_pack_ff
// when both sides agree) or through the generic pipeline. Chunk deposits
// retry transient injected faults with backoff; control-packet waits are
// bounded by the rendezvous watchdog. Once the request has been announced,
// every error return also cancels the receiver's transfer state.
func (c *Comm) sendRendezvous(buf []byte, count int, dt *datatype.Type, dst, tag, ctx int, bytes int64) error {
	w := c.rk.w
	proto := w.protocol()
	out := c.rk.out[dst]
	p := c.p

	p.Lock(out.rdvLock)
	defer p.Unlock(out.rdvLock)

	if err := c.peerLost(dst); err != nil {
		return err
	}
	reply := sim.NewChan(16)
	reqID := c.rk.nextReqID()
	var fp uint64
	if !dt.Contiguous() {
		fp = dt.Flat().Fingerprint()
	}
	w.ring(p, c.rk.id, dst, &envelope{
		kind: envRdvReq, src: c.rk.id, dst: dst, tag: tag, ctx: ctx,
		bytes: bytes, reqID: reqID, fingerprt: fp, reply: reply, sig: sendSig(dt),
	}, false)
	c.rk.fl.Record(p.Now(), flight.KRdvStart, int64(dst), reqID, bytes, 0)
	cts, err := c.expectCtl(reply, dst, envRdvCTS)
	if err != nil {
		c.cancelRendezvous(dst, reqID)
		return err
	}
	mode := rdvMode(cts.chunk)

	// A resumable cursor carries find_position state across chunks: the
	// sequential continuation at each chunk boundary is O(1), and a retried
	// deposit rewinds with one Seek instead of a per-chunk restart. The
	// descriptor slice is reused across chunks by the DMA-SG path.
	var cur *pack.Cursor
	var descs []pack.Descriptor
	if mode == rdvFF && !dt.Contiguous() {
		cur = pack.NewCursor(dt, count)
	}

	chunkSize := proto.RendezvousChunk
	nChunks := int((bytes + chunkSize - 1) / chunkSize)
	acked := 0
	for chunk := 0; chunk < nChunks; chunk++ {
		// Double-buffered slots: wait for the ack freeing slot chunk-2.
		for chunk-acked >= 2 {
			if _, err := c.expectCtl(reply, dst, envRdvAck); err != nil {
				c.cancelRendezvous(dst, reqID)
				return err
			}
			acked++
		}
		skip := int64(chunk) * chunkSize
		n := chunkSize
		if skip+n > bytes {
			n = bytes - skip
		}
		off := w.rdvOff(chunk)
		err := c.retryTransfer(dst, func() error {
			if err := c.peerLost(dst); err != nil {
				return err
			}
			if err := c.packChunkInto(out, off, buf, count, dt, cur, &descs, skip, n, mode); err != nil {
				return err
			}
			return out.mem.TrySync(p) // store barrier: data complete before the flag
		})
		if err != nil {
			c.cancelRendezvous(dst, reqID)
			return err
		}
		w.ring(p, c.rk.id, dst, &envelope{
			kind: envRdvData, src: c.rk.id, dst: dst,
			reqID: reqID, chunk: chunk, chunkLen: n, reply: reply,
		}, false)
	}
	for acked < nChunks {
		if _, err := c.expectCtl(reply, dst, envRdvAck); err != nil {
			c.cancelRendezvous(dst, reqID)
			return err
		}
		acked++
	}
	c.rk.fl.Record(p.Now(), flight.KRdvDone, int64(dst), reqID, bytes, 0)
	return nil
}

// packChunkInto moves one rendezvous chunk into the receiver's buffer,
// surfacing injected transfer faults for the caller to retry. cur is the
// transfer's resumable pack cursor (nil outside the ff mode); Seek makes a
// retried chunk rewind to its start. descs is the transfer's reusable
// descriptor slice (DMA-SG path).
func (c *Comm) packChunkInto(out *sendPort, off int64, buf []byte, count int, dt *datatype.Type, cur *pack.Cursor, descs *[]pack.Descriptor, skip, n int64, mode rdvMode) error {
	w := c.rk.w
	mem := out.mem
	proto := w.protocol()
	switch {
	case dt.Contiguous():
		// Contiguous chunks keep the legacy static gate (DMAMin) under the
		// adaptive policy too: the choice is a fixed engine crossover, not
		// a per-type regime. Forced policies override it.
		useDMA := proto.DMAMin > 0 && n >= proto.DMAMin
		switch proto.Path {
		case PathDMA:
			useDMA = true
		case PathPIO, PathStaged:
			useDMA = false
		}
		if useDMA {
			if fut, ok := mem.DMAWrite(c.p, off, buf[skip:skip+n]); ok {
				// The CPU is free during the transfer; the protocol simply
				// waits for the engine before signalling the chunk.
				start := c.p.Now()
				sp := w.cfg.Tracer.Start(start, c.rk.actor, "transfer", "dma")
				sp.SetBytes(n)
				v := c.p.Await(fut)
				sp.End(c.p.Now())
				w.met.pathDMAContig.Inc()
				w.met.transferDMABytes.Add(n)
				w.met.transferDMANS.ObserveDuration(c.p.Now() - start)
				c.rk.fl.Record(c.p.Now(), flight.KPathChosen, flight.PathDMACont, n, 0, 0)
				if v != nil {
					return v.(error)
				}
				return nil
			}
		}
		w.met.pathPIOStream.Inc()
		c.rk.fl.Record(c.p.Now(), flight.KPathChosen, flight.PathPIOCont, n, 0, 0)
		return mem.TryWriteStream(c.p, off, buf[skip:skip+n], dt.Size()*int64(count))
	case mode == rdvFF && proto.UseFF:
		// The receiver ff-unpacks, so every candidate engine must deposit
		// the cursor's leaf-major linearization: direct_pack_ff, a staged
		// cursor pack + stream, or descriptor-list DMA.
		f := dt.Flat()
		avgBlock := f.Size / leafCopies(f)
		if avgBlock <= 0 {
			avgBlock = 1
		}
		blocks := (n + avgBlock - 1) / avgBlock
		path := depositFF
		if proto.Path != PathStatic &&
			(proto.Path != PathAdaptive || (w.ic != nil && mem.Remote())) {
			// Adaptive ranking only where the SCI cost models apply; forced
			// policies always take effect (SG falls back below if the
			// transport has no descriptor engine).
			path = c.chooseDeposit(out, n, avgBlock, blocks)
		}
		start := c.p.Now()
		var err error
		switch path {
		case depositStaged:
			err = c.depositStaged(mem, off, buf, cur, skip, n)
		case depositSG:
			var ok bool
			ok, err = c.depositSG(out, off, buf, cur, descs, skip, n)
			if !ok {
				path = depositFF
				err = c.depositFF(mem, off, buf, cur, skip, n)
			}
		default:
			err = c.depositFF(mem, off, buf, cur, skip, n)
		}
		w.met.pathChosen[path].Inc()
		c.rk.fl.Record(c.p.Now(), flight.KPathChosen, int64(path), n, 0, 0)
		if err == nil {
			c.observeDeposit(out, path, n, c.p.Now()-start)
		}
		return err
	default:
		// Generic baseline: local pack, then one streamed copy.
		start := c.p.Now()
		sp := w.cfg.Tracer.Start(start, c.rk.actor, "pack", "generic")
		sp.SetBytes(n)
		scratch := bufpool.Get(int(n))
		_, st := pack.GenericPack(scratch.B, buf, dt, count, skip, n)
		c.chargePackBlocks(st, false)
		err := mem.TryWriteStream(c.p, off, scratch.B, n)
		scratch.Put()
		sp.End(c.p.Now())
		w.met.pathGeneric.Inc()
		w.met.packGenBytes.Add(n)
		w.met.packGenericNS.ObserveDuration(c.p.Now() - start)
		c.rk.fl.Record(c.p.Now(), flight.KPathChosen, flight.PathGeneric, n, 0, 0)
		return err
	}
}

// depositFF packs one chunk straight into the (possibly remote) buffer
// with direct_pack_ff. The working set per handshake cycle is the chunk
// plus its gaps (the reason the chunk must stay below the L2 size).
func (c *Comm) depositFF(mem smi.Mem, off int64, buf []byte, cur *pack.Cursor, skip, n int64) error {
	w := c.rk.w
	start := c.p.Now()
	sp := w.cfg.Tracer.Start(start, c.rk.actor, "pack", "direct_pack_ff")
	sp.SetBytes(n)
	bw := mem.BlockWriter(c.p, 2*n)
	sink := offsetSink{w: bw, base: off}
	cur.SeekTo(skip) // free on sequential continuation, O(leaves) on retry
	cur.Pack(sink, buf, n)
	err := bw.TryFlush()
	sp.End(c.p.Now())
	w.met.packFFBytes.Add(n)
	w.met.packFFNS.ObserveDuration(c.p.Now() - start)
	return err
}

// depositStaged cursor-packs one chunk into local scratch, then issues a
// single contiguous stream write. For tiny blocks this beats the per-block
// PIO issue cost of depositFF: the extra local copy runs at cache speed
// while the wire sees one full-size stream.
func (c *Comm) depositStaged(mem smi.Mem, off int64, buf []byte, cur *pack.Cursor, skip, n int64) error {
	w := c.rk.w
	start := c.p.Now()
	sp := w.cfg.Tracer.Start(start, c.rk.actor, "pack", "staged_ff")
	sp.SetBytes(n)
	scratch := bufpool.Get(int(n))
	cur.SeekTo(skip)
	_, st := cur.Pack(pack.BufferSink{Buf: scratch.B}, buf, n)
	c.chargePackBlocks(st, true)
	err := mem.TryWriteStream(c.p, off, scratch.B, n)
	scratch.Put()
	sp.End(c.p.Now())
	w.met.packFFBytes.Add(n)
	w.met.packFFNS.ObserveDuration(c.p.Now() - start)
	return err
}

// depositSG builds the chunk's scatter-gather descriptor list and offloads
// the deposit to the DMA engine — no local pack pass at all. ok=false
// means the transport has no descriptor engine and nothing was deposited
// (the cursor is rewound); the caller falls back to depositFF.
func (c *Comm) depositSG(out *sendPort, off int64, buf []byte, cur *pack.Cursor, descs *[]pack.Descriptor, skip, n int64) (ok bool, err error) {
	w := c.rk.w
	start := c.p.Now()
	cur.SeekTo(skip)
	ds, st := cur.Descriptors((*descs)[:0], n)
	*descs = ds
	fut, ok := out.mem.DMAWriteSG(c.p, off, buf, ds)
	if !ok {
		cur.SeekTo(skip)
		return false, nil
	}
	sp := w.cfg.Tracer.Start(start, c.rk.actor, "pack", "dma_sg")
	sp.SetBytes(n)
	// The descriptor build is the ff traversal; it counts as ff pack work
	// even though no bytes move through the CPU.
	w.countPack(st, true)
	v := c.p.Await(fut)
	sp.End(c.p.Now())
	w.met.packSGBytes.Add(n)
	w.met.packSGNS.ObserveDuration(c.p.Now() - start)
	if v != nil {
		return true, v.(error)
	}
	return true, nil
}

// offsetSink adapts an smi.BlockWriter to a pack.Sink with a base offset.
type offsetSink struct {
	w    smi.BlockWriter
	base int64
}

func (o offsetSink) Write(off int64, src []byte) { o.w.Write(o.base+off, src) }

// remote reports whether the world rank dst lives on a different node.
func (c *Comm) remote(dst int) bool { return c.rk.w.ranks[dst].node != c.rk.node }

// Recv blocks until a matching message has been received into buf.
// src may be AnySource and tag may be AnyTag.
func (c *Comm) Recv(buf []byte, count int, dt *datatype.Type, src, tag int) *Status {
	return c.recv(buf, count, dt, src, tag, c.ctx)
}

func (c *Comm) recv(buf []byte, count int, dt *datatype.Type, src, tag, ctx int) *Status {
	r := c.irecv(buf, count, dt, src, tag, ctx)
	return r.Wait()
}

// RecvChecked is Recv with a watchdog: if no matching message arrives
// within timeout (virtual time) it returns a *fault.Error of kind Timeout —
// or sci.ErrConnectionLost when a specific source rank's node is down —
// instead of blocking forever. A timeout of 0 waits indefinitely;
// AutoTimeout selects the world-scaled rendezvous bound.
func (c *Comm) RecvChecked(buf []byte, count int, dt *datatype.Type, src, tag int, timeout time.Duration) (*Status, error) {
	if src != AnySource {
		if world := c.worldRank(src); c.rk.w.revoked[world] {
			return nil, &RevokedRankError{Rank: world}
		}
	}
	r := c.irecv(buf, count, dt, src, tag, c.ctx)
	if timeout == AutoTimeout {
		timeout = c.rk.w.ScaledRendezvousTimeout()
	}
	if timeout <= 0 {
		return r.WaitChecked()
	}
	v, ok := c.p.AwaitTimeout(r.done, timeout)
	if !ok {
		c.rk.dev.stats.sendTimeouts.Add(1)
		c.rk.w.cfg.Tracer.Record(c.p.Now(), c.rk.actor, "fault",
			"receive watchdog expired (src %d tag %d) after %v", src, tag, timeout)
		if src != AnySource {
			if err := c.peerLost(c.worldRank(src)); err != nil {
				c.rk.fl.Fail(c.p.Now(), flight.OpRecv, c.worldRank(src), err)
				return nil, err
			}
		}
		err := &fault.Error{Kind: fault.Timeout, From: c.rk.id, To: src, At: c.p.Now()}
		c.rk.fl.Fail(c.p.Now(), flight.OpRecv, src, err)
		return nil, err
	}
	if err, ok := v.(error); ok {
		c.rk.fl.Fail(c.p.Now(), flight.OpRecv, src, err)
		return nil, err
	}
	st := *v.(*Status)
	st.Source = c.localRank(st.Source)
	return &st, nil
}

// Request is a handle on an outstanding nonblocking operation.
type Request struct {
	p    *sim.Proc
	c    *Comm
	done *sim.Future
}

// Wait blocks until the operation completes, returning the receive status
// (nil for sends). The status Source is communicator-local. An operation
// that failed (e.g. the sender cancelled its rendezvous after a permanent
// deposit failure) panics; use WaitChecked to handle it as an error.
func (r *Request) Wait() *Status {
	st, err := r.WaitChecked()
	if err != nil {
		panic(err)
	}
	return st
}

// WaitChecked is Wait returning failures as typed errors: a receive whose
// rendezvous the sender abandoned completes with a *CancelledError.
func (r *Request) WaitChecked() (*Status, error) {
	v := r.p.Await(r.done)
	if v == nil {
		return nil, nil
	}
	if err, ok := v.(error); ok {
		return nil, err
	}
	st := *v.(*Status)
	if r.c != nil {
		st.Source = r.c.localRank(st.Source)
	}
	return &st, nil
}

// Done reports whether the operation has completed (MPI_Test).
func (r *Request) Done() bool { return r.done.Done() }

// Irecv posts a nonblocking receive.
func (c *Comm) Irecv(buf []byte, count int, dt *datatype.Type, src, tag int) *Request {
	return c.irecv(buf, count, dt, src, tag, c.ctx)
}

func (c *Comm) irecv(buf []byte, count int, dt *datatype.Type, src, tag, ctx int) *Request {
	c.p.Sleep(c.rk.w.protocol().CallOverhead)
	if !dt.Committed() {
		panic(fmt.Sprintf("mpi: receive with uncommitted datatype %s", dt))
	}
	if src != AnySource {
		src = c.worldRank(src)
	}
	req := &recvReq{
		ctx: ctx, src: src, tag: tag,
		buf: buf, count: count, dt: dt,
		done: sim.NewFuture(),
	}
	c.rk.fl.Record(c.p.Now(), flight.KRecvPost, int64(src), int64(tag), dt.Size()*int64(count), 0)
	sim.Post(c.rk.dev.inbox, &envelope{kind: envLocalPost, post: req})
	return &Request{p: c.p, c: c, done: req.done}
}

// Isend starts a nonblocking send. The transfer work runs on a transient
// helper process; Wait returns once the user buffer is reusable.
func (c *Comm) Isend(buf []byte, count int, dt *datatype.Type, dst, tag int) *Request {
	done := sim.NewFuture()
	helper := *c
	c.rk.w.host.Go(fmt.Sprintf("isend%d->%d", c.rk.id, dst), func(p *sim.Proc) {
		h := helper
		h.p = p
		if err := h.send(buf, count, dt, dst, tag, c.ctx); err != nil {
			panic(err)
		}
		done.Complete(nil)
	})
	return &Request{p: c.p, c: c, done: done}
}

// Sendrecv performs a simultaneous send and receive (deadlock-free).
func (c *Comm) Sendrecv(sendBuf []byte, sendCount int, sendType *datatype.Type, dst, sendTag int,
	recvBuf []byte, recvCount int, recvType *datatype.Type, src, recvTag int) *Status {
	r := c.Irecv(recvBuf, recvCount, recvType, src, recvTag)
	c.Send(sendBuf, sendCount, sendType, dst, sendTag)
	return r.Wait()
}

// nextReqID returns a cluster-unique rendezvous id.
func (rk *rank) nextReqID() int64 {
	rk.reqCounter++
	return int64(rk.id)<<32 | rk.reqCounter
}
