package mpi

import (
	"fmt"
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/pack"
	"scimpich/internal/sim"
	"scimpich/internal/smi"
)

// genericTraversalPenalty is the extra software cost the recursive generic
// packing engine pays per contiguous block (repeated tree descent), which
// direct_pack_ff replaces with plain array/stack operations.
func genericTraversalPenalty(blocks int64) time.Duration {
	return time.Duration(blocks) * 160 * time.Nanosecond
}

// Send transmits count instances of dt from buf to rank dst with the given
// tag, blocking (in virtual time) until the user buffer is reusable.
func (c *Comm) Send(buf []byte, count int, dt *datatype.Type, dst, tag int) {
	c.send(buf, count, dt, dst, tag, c.ctx)
}

// sendSig returns the envelope signature of a datatype (0 for the
// pure-byte wildcard).
func sendSig(dt *datatype.Type) uint64 {
	sig, byteOnly := dt.Signature()
	if byteOnly {
		return 0
	}
	return sig
}

func (c *Comm) send(buf []byte, count int, dt *datatype.Type, dst, tag, ctx int) {
	p := c.p
	w := c.rk.w
	proto := w.protocol()
	p.Sleep(proto.CallOverhead)
	dst = c.worldRank(dst) // all plumbing below uses world ranks
	if dst < 0 || dst >= w.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	bytes := dt.Size() * int64(count)
	w.cfg.Tracer.Record(p.Now(), fmt.Sprintf("rank%d", c.rk.id), "send",
		"-> %d tag %d: %d bytes", dst, tag, bytes)

	if dst == c.rk.id {
		// Self send: buffered through an inline payload.
		payload := c.packCanonical(buf, count, dt, bytes)
		w.ring(p, c.rk.id, dst, &envelope{
			kind: envShort, src: c.rk.id, dst: dst, tag: tag, ctx: ctx,
			bytes: bytes, payload: payload, sig: sendSig(dt),
		}, false)
		return
	}

	switch {
	case bytes <= proto.ShortMax:
		c.sendShort(buf, count, dt, dst, tag, ctx, bytes)
	case bytes <= proto.EagerMax:
		c.sendEager(buf, count, dt, dst, tag, ctx, bytes)
	default:
		c.sendRendezvous(buf, count, dt, dst, tag, ctx, bytes)
	}
}

// packCanonical produces the canonical (definition-order) linearization of
// the message into a fresh payload buffer, charging local copy costs.
func (c *Comm) packCanonical(buf []byte, count int, dt *datatype.Type, bytes int64) []byte {
	payload := make([]byte, bytes)
	if dt.Contiguous() {
		c.p.Sleep(c.mem().CopyCost(bytes, bytes, bytes))
		copy(payload, buf[:bytes])
		return payload
	}
	_, st := pack.GenericPack(payload, buf, dt, count, 0, -1)
	c.chargePackBlocks(st, false)
	return payload
}

// chargePackBlocks bills local block-copy work on the calling process.
func (c *Comm) chargePackBlocks(st pack.Stats, ff bool) {
	if st.Bytes == 0 {
		return
	}
	m := c.mem()
	ws := st.Bytes * 2
	cost := m.CopyCost(st.Bytes, st.AvgBlock(), ws)
	if ff {
		cost = m.BlockCopyCostFF(st.Bytes, st.AvgBlock(), ws)
	} else {
		cost += genericTraversalPenalty(st.Blocks)
	}
	c.rk.w.buses[c.rk.node].Charge(c.p, st.Bytes, cost)
}

// sendShort carries the payload inline in the control packet.
func (c *Comm) sendShort(buf []byte, count int, dt *datatype.Type, dst, tag, ctx int, bytes int64) {
	payload := c.packCanonical(buf, count, dt, bytes)
	w := c.rk.w
	// Charge the wire cost of the payload riding along the control packet.
	if c.remote(dst) && bytes > 0 {
		bw := w.cfg.SCI.PIOWritePeakBW
		if w.nicNet != nil {
			bw = w.cfg.NIC.Bandwidth
		}
		c.p.Sleep(sim.RateDuration(bytes, bw))
	}
	w.ring(c.p, c.rk.id, dst, &envelope{
		kind: envShort, src: c.rk.id, dst: dst, tag: tag, ctx: ctx,
		bytes: bytes, payload: payload, sig: sendSig(dt),
	}, false)
}

// sendEager deposits the message in a preallocated eager slot at the
// receiver and announces it.
func (c *Comm) sendEager(buf []byte, count int, dt *datatype.Type, dst, tag, ctx int, bytes int64) {
	w := c.rk.w
	out := c.rk.out[dst]
	slot := c.p.Recv(out.credits).(int) // eager flow control
	off := w.eagerOff(slot)
	if dt.Contiguous() {
		out.mem.WriteStream(c.p, off, buf[:bytes], bytes)
	} else {
		// Canonical pack into a scratch buffer, then one streamed write
		// (eager messages cannot negotiate ff: the receive type is not
		// known yet).
		payload := c.packCanonical(buf, count, dt, bytes)
		out.mem.WriteStream(c.p, off, payload, bytes)
	}
	out.mem.Sync(c.p)
	w.ring(c.p, c.rk.id, dst, &envelope{
		kind: envEager, src: c.rk.id, dst: dst, tag: tag, ctx: ctx,
		bytes: bytes, slot: slot, sig: sendSig(dt),
	}, false)
}

// sendRendezvousTo is sendRendezvous with a pre-translated world rank (the
// synchronous-send entry point).
func (c *Comm) sendRendezvousTo(buf []byte, count int, dt *datatype.Type, dst, tag, ctx int, bytes int64) {
	c.sendRendezvous(buf, count, dt, dst, tag, ctx, bytes)
}

// sendRendezvous performs the handshaked large-message transfer, packing
// each chunk directly into the receiver's rendezvous buffer (direct_pack_ff
// when both sides agree) or through the generic pipeline.
func (c *Comm) sendRendezvous(buf []byte, count int, dt *datatype.Type, dst, tag, ctx int, bytes int64) {
	w := c.rk.w
	proto := w.protocol()
	out := c.rk.out[dst]
	p := c.p

	p.Lock(out.rdvLock)
	defer p.Unlock(out.rdvLock)

	reply := sim.NewChan(16)
	reqID := c.rk.nextReqID()
	var fp uint64
	if !dt.Contiguous() {
		fp = dt.Flat().Fingerprint()
	}
	w.ring(p, c.rk.id, dst, &envelope{
		kind: envRdvReq, src: c.rk.id, dst: dst, tag: tag, ctx: ctx,
		bytes: bytes, reqID: reqID, fingerprt: fp, reply: reply, sig: sendSig(dt),
	}, false)
	cts := p.Recv(reply).(*envelope)
	if cts.kind != envRdvCTS {
		panic(fmt.Sprintf("mpi: expected CTS, got %v", cts.kind))
	}
	mode := rdvMode(cts.chunk)

	chunkSize := proto.RendezvousChunk
	nChunks := int((bytes + chunkSize - 1) / chunkSize)
	acked := 0
	for chunk := 0; chunk < nChunks; chunk++ {
		// Double-buffered slots: wait for the ack freeing slot chunk-2.
		for chunk-acked >= 2 {
			ack := p.Recv(reply).(*envelope)
			if ack.kind != envRdvAck {
				panic(fmt.Sprintf("mpi: expected chunk ack, got %v", ack.kind))
			}
			acked++
		}
		skip := int64(chunk) * chunkSize
		n := chunkSize
		if skip+n > bytes {
			n = bytes - skip
		}
		off := w.rdvOff(chunk)
		c.packChunkInto(out.mem, off, buf, count, dt, skip, n, mode)
		out.mem.Sync(p) // store barrier: data complete before the flag
		w.ring(p, c.rk.id, dst, &envelope{
			kind: envRdvData, src: c.rk.id, dst: dst,
			reqID: reqID, chunk: chunk, chunkLen: n, reply: reply,
		}, false)
	}
	for acked < nChunks {
		ack := p.Recv(reply).(*envelope)
		if ack.kind != envRdvAck {
			panic(fmt.Sprintf("mpi: expected chunk ack, got %v", ack.kind))
		}
		acked++
	}
}

// packChunkInto moves one rendezvous chunk into the receiver's buffer.
func (c *Comm) packChunkInto(mem smi.Mem, off int64, buf []byte, count int, dt *datatype.Type, skip, n int64, mode rdvMode) {
	switch {
	case dt.Contiguous():
		if min := c.rk.w.protocol().DMAMin; min > 0 && n >= min {
			if fut, ok := mem.DMAWrite(c.p, off, buf[skip:skip+n]); ok {
				// The CPU is free during the transfer; the protocol simply
				// waits for the engine before signalling the chunk.
				c.p.Await(fut)
				return
			}
		}
		mem.WriteStream(c.p, off, buf[skip:skip+n], dt.Size()*int64(count))
	case mode == rdvFF && c.rk.w.protocol().UseFF:
		// direct_pack_ff: pack straight into the (possibly remote) buffer.
		// The working set per handshake cycle is the chunk plus its gaps
		// (the reason the chunk must stay below the L2 size).
		bw := mem.BlockWriter(c.p, 2*n)
		sink := offsetSink{w: bw, base: off}
		pack.FFPack(sink, buf, dt, count, skip, n)
		bw.Flush()
	default:
		// Generic baseline: local pack, then one streamed copy.
		scratch := make([]byte, n)
		_, st := pack.GenericPack(scratch, buf, dt, count, skip, n)
		c.chargePackBlocks(st, false)
		mem.WriteStream(c.p, off, scratch, n)
	}
}

// offsetSink adapts an smi.BlockWriter to a pack.Sink with a base offset.
type offsetSink struct {
	w    smi.BlockWriter
	base int64
}

func (o offsetSink) Write(off int64, src []byte) { o.w.Write(o.base+off, src) }

// remote reports whether the world rank dst lives on a different node.
func (c *Comm) remote(dst int) bool { return c.rk.w.ranks[dst].node != c.rk.node }

// Recv blocks until a matching message has been received into buf.
// src may be AnySource and tag may be AnyTag.
func (c *Comm) Recv(buf []byte, count int, dt *datatype.Type, src, tag int) *Status {
	return c.recv(buf, count, dt, src, tag, c.ctx)
}

func (c *Comm) recv(buf []byte, count int, dt *datatype.Type, src, tag, ctx int) *Status {
	r := c.irecv(buf, count, dt, src, tag, ctx)
	return r.Wait()
}

// Request is a handle on an outstanding nonblocking operation.
type Request struct {
	p    *sim.Proc
	c    *Comm
	done *sim.Future
}

// Wait blocks until the operation completes, returning the receive status
// (nil for sends). The status Source is communicator-local.
func (r *Request) Wait() *Status {
	v := r.p.Await(r.done)
	if v == nil {
		return nil
	}
	st := *v.(*Status)
	if r.c != nil {
		st.Source = r.c.localRank(st.Source)
	}
	return &st
}

// Done reports whether the operation has completed (MPI_Test).
func (r *Request) Done() bool { return r.done.Done() }

// Irecv posts a nonblocking receive.
func (c *Comm) Irecv(buf []byte, count int, dt *datatype.Type, src, tag int) *Request {
	return c.irecv(buf, count, dt, src, tag, c.ctx)
}

func (c *Comm) irecv(buf []byte, count int, dt *datatype.Type, src, tag, ctx int) *Request {
	c.p.Sleep(c.rk.w.protocol().CallOverhead)
	if !dt.Committed() {
		panic(fmt.Sprintf("mpi: receive with uncommitted datatype %s", dt))
	}
	if src != AnySource {
		src = c.worldRank(src)
	}
	req := &recvReq{
		ctx: ctx, src: src, tag: tag,
		buf: buf, count: count, dt: dt,
		done: sim.NewFuture(),
	}
	sim.Post(c.rk.dev.inbox, &envelope{kind: envLocalPost, post: req})
	return &Request{p: c.p, c: c, done: req.done}
}

// Isend starts a nonblocking send. The transfer work runs on a transient
// helper process; Wait returns once the user buffer is reusable.
func (c *Comm) Isend(buf []byte, count int, dt *datatype.Type, dst, tag int) *Request {
	done := sim.NewFuture()
	helper := *c
	c.rk.w.engine.Go(fmt.Sprintf("isend%d->%d", c.rk.id, dst), func(p *sim.Proc) {
		h := helper
		h.p = p
		h.send(buf, count, dt, dst, tag, c.ctx)
		done.Complete(nil)
	})
	return &Request{p: c.p, c: c, done: done}
}

// Sendrecv performs a simultaneous send and receive (deadlock-free).
func (c *Comm) Sendrecv(sendBuf []byte, sendCount int, sendType *datatype.Type, dst, sendTag int,
	recvBuf []byte, recvCount int, recvType *datatype.Type, src, recvTag int) *Status {
	r := c.Irecv(recvBuf, recvCount, recvType, src, recvTag)
	c.Send(sendBuf, sendCount, sendType, dst, sendTag)
	return r.Wait()
}

// nextReqID returns a cluster-unique rendezvous id.
func (rk *rank) nextReqID() int64 {
	rk.reqCounter++
	return int64(rk.id)<<32 | rk.reqCounter
}
