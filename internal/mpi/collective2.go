package mpi

import (
	"scimpich/internal/datatype"
)

// Additional collectives: allgather, all-to-all, scan and
// reduce-scatter, plus request helpers.

// Tags for the second collective group.
const (
	tagAllgather = 6 << 20
	tagAlltoall  = 7 << 20
	tagScan      = 8 << 20
	tagRedScat   = 9 << 20
)

// Allgather collects every rank's count elements of dt into recv (ordered
// by rank) on all ranks. It panics on failures; use AllgatherChecked under
// fault plans.
func (c *Comm) Allgather(send []byte, count int, dt *datatype.Type, recv []byte) {
	mustColl(c.AllgatherChecked(send, count, dt, recv))
}

// AllgatherChecked is Allgather returning failures as typed errors. The
// engine picks between the ring over point-to-point messages and the
// one-shot window exchange (every rank deposits its block into every
// peer's slot directly).
func (c *Comm) AllgatherChecked(send []byte, count int, dt *datatype.Type, recv []byte) error {
	size := c.Size()
	me := c.Rank()
	bytes := dt.Size() * int64(count)
	copy(recv[int64(me)*bytes:], send[:bytes])
	if size == 1 {
		return nil
	}
	alg := c.chooseCollAlg(collAllgather, size, int64(size)*bytes, bytes)
	op := c.collBegin(collAllgather, alg, int64(size)*bytes)
	cc := c.collective()
	if alg == CollOneSided {
		return op.end(cc.osExchange(
			func(int) []byte { return recv[int64(me)*bytes : int64(me+1)*bytes] },
			func(src int) []byte { return recv[int64(src)*bytes : int64(src+1)*bytes] },
		))
	}
	right := (me + 1) % size
	left := (me - 1 + size) % size
	for step := 0; step < size-1; step++ {
		sendIdx := (me - step + size) % size
		recvIdx := (me - step - 1 + size) % size
		if err := cc.sendrecvColl(
			recv[int64(sendIdx)*bytes:int64(sendIdx+1)*bytes], count, dt, right, tagAllgather+step,
			recv[int64(recvIdx)*bytes:int64(recvIdx+1)*bytes], count, dt, left, tagAllgather+step,
		); err != nil {
			return op.end(err)
		}
	}
	return op.end(nil)
}

// Alltoall sends the i-th count-element slice of send to rank i and
// receives rank i's slice into the i-th slot of recv. It panics on
// failures; use AlltoallChecked under fault plans.
func (c *Comm) Alltoall(send []byte, count int, dt *datatype.Type, recv []byte) {
	mustColl(c.AlltoallChecked(send, count, dt, recv))
}

// AlltoallChecked is Alltoall returning failures as typed errors
// (pairwise exchange, or the one-sided window exchange when the per-peer
// block fits a slot and the cost model favours it).
func (c *Comm) AlltoallChecked(send []byte, count int, dt *datatype.Type, recv []byte) error {
	size := c.Size()
	me := c.Rank()
	bytes := dt.Size() * int64(count)
	copy(recv[int64(me)*bytes:int64(me+1)*bytes], send[int64(me)*bytes:int64(me+1)*bytes])
	if size == 1 {
		return nil
	}
	alg := c.chooseCollAlg(collAlltoall, size, int64(size)*bytes, bytes)
	op := c.collBegin(collAlltoall, alg, int64(size)*bytes)
	cc := c.collective()
	if alg == CollOneSided {
		return op.end(cc.osExchange(
			func(dst int) []byte { return send[int64(dst)*bytes : int64(dst+1)*bytes] },
			func(src int) []byte { return recv[int64(src)*bytes : int64(src+1)*bytes] },
		))
	}
	for step := 1; step < size; step++ {
		to := (me + step) % size
		from := (me - step + size) % size
		if err := cc.sendrecvColl(
			send[int64(to)*bytes:int64(to+1)*bytes], count, dt, to, tagAlltoall+step,
			recv[int64(from)*bytes:int64(from+1)*bytes], count, dt, from, tagAlltoall+step,
		); err != nil {
			return op.end(err)
		}
	}
	return op.end(nil)
}

// Scan computes the inclusive prefix reduction: recv on rank r holds
// op(send_0, ..., send_r). It panics on failures; use ScanChecked under
// fault plans.
func (c *Comm) Scan(send, recv []byte, count int, dt *datatype.Type, op Op) {
	mustColl(c.ScanChecked(send, recv, count, dt, op))
}

// ScanChecked is Scan returning failures as typed errors. Linear
// algorithm on the base-typed views: receive from the left, fold,
// forward to the right.
func (c *Comm) ScanChecked(send, recv []byte, count int, dt *datatype.Type, op Op) error {
	base, err := checkReduceDT("Scan", dt)
	if err != nil {
		return err
	}
	bytes := dt.Size() * int64(count)
	cop := c.collBegin(collScan, CollP2P, bytes)
	cc := c.collective()
	view := c.newReduceView(send, count, dt, base)
	acc := make([]byte, bytes)
	copy(acc, view.buf)
	me := c.Rank()
	if me > 0 {
		prev := make([]byte, bytes)
		if err := cc.recvColl(prev, view.elems, base, me-1, tagScan); err != nil {
			return cop.end(err)
		}
		// Combine with the running prefix from the left, preserving
		// left-to-right order: acc = prefix op mine.
		c.combineColl(op, base, prev, acc, view.elems)
		copy(acc, prev)
	}
	if me < c.Size()-1 {
		if err := cc.send(acc, view.elems, base, me+1, tagScan, cc.ctx); err != nil {
			return cop.end(err)
		}
	}
	res := reduceView{base: base, elems: view.elems, buf: acc}
	res.writeback(c, recv, count, dt)
	return cop.end(nil)
}

// ReduceScatterBlock reduces size*count elements elementwise across all
// ranks and scatters equal count-element blocks: rank r receives the
// reduction of everyone's r-th block. It panics on failures; use
// ReduceScatterBlockChecked under fault plans.
func (c *Comm) ReduceScatterBlock(send, recv []byte, count int, dt *datatype.Type, op Op) {
	mustColl(c.ReduceScatterBlockChecked(send, recv, count, dt, op))
}

// ReduceScatterBlockChecked is ReduceScatterBlock returning failures as
// typed errors (implemented as Reduce + Scatter through the checked
// paths).
func (c *Comm) ReduceScatterBlockChecked(send, recv []byte, count int, dt *datatype.Type, op Op) error {
	size := c.Size()
	total := count * size
	var full []byte
	if c.Rank() == 0 {
		full = make([]byte, dt.Size()*int64(total))
	}
	if err := c.ReduceChecked(send, full, total, dt, op, 0); err != nil {
		return err
	}
	return c.ScatterChecked(full, count, dt, recv, 0)
}

// Waitall blocks until every request has completed, returning the statuses
// (nil entries for sends). It panics on failures; use WaitallChecked under
// fault plans.
func (c *Comm) Waitall(reqs []*Request) []*Status {
	out := make([]*Status, len(reqs))
	for i, r := range reqs {
		if r != nil {
			out[i] = r.Wait()
		}
	}
	return out
}

// WaitallChecked waits for every request, returning the statuses and the
// first error encountered (all requests are drained either way).
func (c *Comm) WaitallChecked(reqs []*Request) ([]*Status, error) {
	out := make([]*Status, len(reqs))
	var first error
	for i, r := range reqs {
		if r == nil {
			continue
		}
		st, err := r.WaitChecked()
		out[i] = st
		if err != nil && first == nil {
			first = err
		}
	}
	return out, first
}
