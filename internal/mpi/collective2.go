package mpi

import (
	"fmt"

	"scimpich/internal/datatype"
)

// Additional collectives: allgather, all-to-all, scan and
// reduce-scatter, plus request helpers.

// Tags for the second collective group.
const (
	tagAllgather = 6 << 20
	tagAlltoall  = 7 << 20
	tagScan      = 8 << 20
	tagRedScat   = 9 << 20
)

// Allgather collects every rank's count elements of dt into recv (ordered
// by rank) on all ranks, using the ring algorithm: P-1 steps of passing the
// next slice to the right neighbour.
func (c *Comm) Allgather(send []byte, count int, dt *datatype.Type, recv []byte) {
	cc := c.collective()
	size := c.Size()
	me := c.Rank()
	bytes := dt.Size() * int64(count)
	copy(recv[int64(me)*bytes:], send[:bytes])
	if size == 1 {
		return
	}
	right := (me + 1) % size
	left := (me - 1 + size) % size
	for step := 0; step < size-1; step++ {
		sendIdx := (me - step + size) % size
		recvIdx := (me - step - 1 + size) % size
		cc.Sendrecv(
			recv[int64(sendIdx)*bytes:int64(sendIdx+1)*bytes], count, dt, right, tagAllgather+step,
			recv[int64(recvIdx)*bytes:int64(recvIdx+1)*bytes], count, dt, left, tagAllgather+step,
		)
	}
}

// Alltoall sends the i-th count-element slice of send to rank i and
// receives rank i's slice into the i-th slot of recv (pairwise-exchange
// algorithm).
func (c *Comm) Alltoall(send []byte, count int, dt *datatype.Type, recv []byte) {
	cc := c.collective()
	size := c.Size()
	me := c.Rank()
	bytes := dt.Size() * int64(count)
	copy(recv[int64(me)*bytes:int64(me+1)*bytes], send[int64(me)*bytes:int64(me+1)*bytes])
	for step := 1; step < size; step++ {
		to := (me + step) % size
		from := (me - step + size) % size
		cc.Sendrecv(
			send[int64(to)*bytes:int64(to+1)*bytes], count, dt, to, tagAlltoall+step,
			recv[int64(from)*bytes:int64(from+1)*bytes], count, dt, from, tagAlltoall+step,
		)
	}
}

// Scan computes the inclusive prefix reduction: recv on rank r holds
// op(send_0, ..., send_r). Linear algorithm: receive from the left, fold,
// forward to the right.
func (c *Comm) Scan(send, recv []byte, count int, dt *datatype.Type, op Op) {
	if dt.Kind() != datatype.KindBasic {
		panic(fmt.Sprintf("mpi: Scan requires a basic datatype, got %s", dt))
	}
	cc := c.collective()
	bytes := dt.Size() * int64(count)
	acc := make([]byte, bytes)
	copy(acc, send[:bytes])
	me := c.Rank()
	if me > 0 {
		prev := make([]byte, bytes)
		cc.recv(prev, count, dt, me-1, tagScan, cc.ctx)
		// Combine with the running prefix from the left, preserving
		// left-to-right order: acc = prefix op mine.
		combine(op, dt, prev, acc, count)
		copy(acc, prev)
	}
	if me < c.Size()-1 {
		cc.send(acc, count, dt, me+1, tagScan, cc.ctx)
	}
	copy(recv[:bytes], acc)
}

// ReduceScatterBlock reduces size*count elements elementwise across all
// ranks and scatters equal count-element blocks: rank r receives the
// reduction of everyone's r-th block (implemented as Reduce + Scatter).
func (c *Comm) ReduceScatterBlock(send, recv []byte, count int, dt *datatype.Type, op Op) {
	size := c.Size()
	total := count * size
	var full []byte
	if c.Rank() == 0 {
		full = make([]byte, dt.Size()*int64(total))
	}
	c.Reduce(send, full, total, dt, op, 0)
	c.Scatter(full, count, dt, recv, 0)
}

// Waitall blocks until every request has completed, returning the statuses
// (nil entries for sends).
func (c *Comm) Waitall(reqs []*Request) []*Status {
	out := make([]*Status, len(reqs))
	for i, r := range reqs {
		if r != nil {
			out[i] = r.Wait()
		}
	}
	return out
}
