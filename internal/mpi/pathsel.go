package mpi

import (
	"time"

	"scimpich/internal/sim"
)

// PathPolicy selects how the rendezvous sender picks the deposit engine
// for non-contiguous chunks on a remote-memory transport.
type PathPolicy int

const (
	// PathAdaptive (the default) predicts the cheapest of direct_pack_ff,
	// staged pack-and-stream and scatter-gather DMA per chunk from the
	// cost models, then refines the prediction with per-peer EWMA
	// bandwidth estimates of the paths actually exercised.
	PathAdaptive PathPolicy = iota
	// PathStatic keeps the legacy static thresholds (UseFF/FFMinBlock
	// decide ff vs generic; DMAMin gates contiguous DMA).
	PathStatic
	// PathPIO forces direct_pack_ff deposits (PIO block writes).
	PathPIO
	// PathStaged forces the staged path: cursor-pack into local scratch,
	// then one contiguous PIO stream.
	PathStaged
	// PathDMA forces scatter-gather DMA deposits where the transport has a
	// descriptor-list engine (contiguous chunks use the plain DMA engine).
	PathDMA
)

func (p PathPolicy) String() string {
	switch p {
	case PathAdaptive:
		return "adaptive"
	case PathStatic:
		return "static"
	case PathPIO:
		return "pio"
	case PathStaged:
		return "staged"
	case PathDMA:
		return "dma"
	default:
		return "unknown"
	}
}

// depositPath is one deposit engine the adaptive chooser ranks. All three
// linearize in the ff cursor's leaf-major order, so the receiver's ff
// unpack is oblivious to the choice (the generic definition-order pipeline
// is a separate rendezvous mode, not a per-chunk option).
type depositPath int

const (
	// depositFF packs straight into remote memory (direct_pack_ff).
	depositFF depositPath = iota
	// depositStaged cursor-packs into local scratch, then streams once.
	depositStaged
	// depositSG builds a descriptor list and offloads to the SG DMA engine.
	depositSG

	depositPathCount
)

func (d depositPath) String() string {
	switch d {
	case depositFF:
		return "pio-ff"
	case depositStaged:
		return "staged"
	case depositSG:
		return "dma-sg"
	default:
		return "unknown"
	}
}

// defaultPathEWMA is the blend factor of the per-peer bandwidth estimator
// when ProtocolConfig.PathEWMA is unset.
const defaultPathEWMA = 0.25

// modelDeposit is the cost-model prior for depositing an n-byte chunk of
// blocks contiguous blocks (average avgBlock bytes) on a remote SCI peer.
// The formulas mirror what the charging code of each path actually bills,
// so the chooser starts out consistent with the simulator and only departs
// from it as measurements arrive.
func (c *Comm) modelDeposit(path depositPath, n, avgBlock, blocks int64) time.Duration {
	sci := &c.rk.w.cfg.SCI
	switch path {
	case depositFF:
		// Per-block PIO issue plus gather-gap streaming at the block size.
		return time.Duration(blocks)*sci.WriteIssueOverhead +
			sim.RateDuration(n, sci.StreamWriteBW(avgBlock))
	case depositStaged:
		// Local cursor pack (ff cost model), then one full-speed stream.
		return c.mem().BlockCopyCostFF(n, avgBlock, 2*n) +
			sci.WriteIssueOverhead + sim.RateDuration(n, sci.StreamWriteBW(n))
	case depositSG:
		// Descriptor build on the CPU, then the engine's startup,
		// per-descriptor and merged-run streaming costs. The rendezvous
		// destination is one contiguous run.
		return 2*sci.WriteIssueOverhead + time.Duration(blocks)*sci.DMASGBuild +
			sci.SGTransferCost(int(blocks), n, n)
	default:
		panic("mpi: unknown deposit path")
	}
}

// predictDeposit estimates the duration of a deposit: the per-peer EWMA
// bandwidth when the path has been exercised, the cost-model prior before
// that. out.rdvLock is held, so the EWMA state needs no further locking.
func (c *Comm) predictDeposit(out *sendPort, path depositPath, n, avgBlock, blocks int64) time.Duration {
	if bw := out.paths[path]; bw > 0 {
		return sim.RateDuration(n, bw)
	}
	return c.modelDeposit(path, n, avgBlock, blocks)
}

// chooseDeposit ranks the candidate paths for one chunk and returns the
// predicted-cheapest. DMASGMinBlock keeps descriptor lists away from
// tiny-block types where per-descriptor costs explode; forced policies
// (PathPIO/PathStaged/PathDMA) bypass the ranking.
func (c *Comm) chooseDeposit(out *sendPort, n, avgBlock, blocks int64) depositPath {
	switch c.rk.w.protocol().Path {
	case PathPIO:
		return depositFF
	case PathStaged:
		return depositStaged
	case PathDMA:
		return depositSG
	}
	best, bestCost := depositFF, c.predictDeposit(out, depositFF, n, avgBlock, blocks)
	if cost := c.predictDeposit(out, depositStaged, n, avgBlock, blocks); cost < bestCost {
		best, bestCost = depositStaged, cost
	}
	if min := c.rk.w.protocol().DMASGMinBlock; min <= 0 || avgBlock >= min {
		if cost := c.predictDeposit(out, depositSG, n, avgBlock, blocks); cost < bestCost {
			best = depositSG
		}
	}
	return best
}

// observeDeposit folds a completed deposit into the per-peer EWMA
// bandwidth estimate of its path (out.rdvLock held).
func (c *Comm) observeDeposit(out *sendPort, path depositPath, n int64, elapsed time.Duration) {
	if n <= 0 || elapsed <= 0 {
		return
	}
	bw := float64(n) / elapsed.Seconds()
	alpha := c.rk.w.protocol().PathEWMA
	if alpha <= 0 || alpha > 1 {
		alpha = defaultPathEWMA
	}
	if prev := out.paths[path]; prev > 0 {
		bw = alpha*bw + (1-alpha)*prev
	}
	out.paths[path] = bw
}
