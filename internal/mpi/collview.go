package mpi

import (
	"scimpich/internal/datatype"
	"scimpich/internal/pack"
)

// Reductions over derived datatypes: instead of restricting Reduce /
// Allreduce / Scan to basic types, each rank folds its contribution
// through a direct_pack_ff view — the leaf-major linearization of the
// derived type into a contiguous buffer of its base basic type. The
// reduction algorithms then run elementwise on base elements, and the
// result is unpacked back through the same view. A type qualifies when all
// its leaves share one basic type the combiner supports.

// reducible reports whether the combiner implements the basic type.
func reducible(base *datatype.Type) bool {
	switch base {
	case datatype.Float64, datatype.Float32, datatype.Int64, datatype.Int32,
		datatype.Int16, datatype.Byte, datatype.Char:
		return true
	}
	return false
}

// reduceView is the contiguous elementwise view of one rank's reduction
// buffer: elems elements of the base basic type.
type reduceView struct {
	base  *datatype.Type
	elems int
	buf   []byte // the linearization; aliases the user buffer when dense
	alias bool
}

// checkReduceDT validates a reduction datatype, returning its base basic
// type or the ArgumentError the checked API surfaces.
func checkReduceDT(call string, dt *datatype.Type) (*datatype.Type, error) {
	base := dt.Base()
	if base == nil {
		return nil, argErrf(call, "datatype %s mixes basic types; reductions need a single base type", dt)
	}
	if !reducible(base) {
		return nil, argErrf(call, "reduction on unsupported base type %s", base)
	}
	return base, nil
}

// newReduceView linearizes count elements of dt from buf into a
// contiguous base-typed view, charging the ff pack cost. Dense layouts
// alias the user buffer and cost nothing.
func (c *Comm) newReduceView(buf []byte, count int, dt, base *datatype.Type) *reduceView {
	bytes := dt.Size() * int64(count)
	v := &reduceView{base: base, elems: int(bytes / base.Size())}
	if dt.Contiguous() {
		v.buf = buf[:bytes]
		v.alias = true
		return v
	}
	v.buf = make([]byte, bytes)
	_, st := pack.FFPack(pack.BufferSink{Buf: v.buf}, buf, dt, count, 0, -1)
	c.chargePackBlocks(st, true)
	return v
}

// writeback unpacks the view's (reduced) contents into a user receive
// buffer laid out as count elements of dt.
func (v *reduceView) writeback(c *Comm, buf []byte, count int, dt *datatype.Type) {
	if dt.Contiguous() {
		if len(v.buf) > 0 && (!v.alias || &v.buf[0] != &buf[0]) {
			copy(buf[:len(v.buf)], v.buf)
		}
		return
	}
	_, st := pack.FFUnpack(buf, v.buf, dt, count, 0, -1)
	c.chargePackBlocks(st, true)
}

// chargeCombine bills the elementwise reduction of n bytes on the calling
// process (memory-bound: two streams in, one out; see modelCombine).
func (c *Comm) chargeCombine(n int64) {
	if n > 0 {
		c.p.Sleep(c.mem().CopyCost(n, n, 3*n))
	}
}

// combineColl folds count elements of in into acc and bills the work.
func (c *Comm) combineColl(op Op, base *datatype.Type, acc, in []byte, count int) {
	combine(op, base, acc, in, count)
	c.chargeCombine(base.Size() * int64(count))
}
