// Package mpi implements the message-passing runtime of the reproduction:
// an MPI subset in the architecture of SCI-MPICH. Ranks are simulated
// processes placed on the nodes of an SCI ringlet (several per node for SMP
// nodes); point-to-point communication uses the short / eager / rendezvous
// protocols over transparently mapped remote memory (or intra-node shared
// memory, chosen per pair), derived datatypes are transmitted either with
// the generic pack-and-send baseline or with direct_pack_ff straight into
// the remote buffer, and collectives are built on top.
package mpi

import (
	"fmt"
	"time"

	"scimpich/internal/fault"
	"scimpich/internal/flow"
	"scimpich/internal/nic"
	"scimpich/internal/obs"
	"scimpich/internal/obs/flight"
	"scimpich/internal/pack"
	"scimpich/internal/sci"
	"scimpich/internal/shmem"
	"scimpich/internal/sim"
	"scimpich/internal/smi"
	"scimpich/internal/trace"
)

// ProtocolConfig holds the device protocol parameters.
type ProtocolConfig struct {
	// ShortMax is the largest payload carried inline in a control packet.
	ShortMax int64
	// EagerMax is the largest message sent through preallocated eager
	// slots; larger messages use the rendezvous protocol.
	EagerMax int64
	// EagerSlots is the number of eager buffers per sender/receiver pair.
	EagerSlots int
	// RendezvousChunk is the bytes moved per handshake cycle. The paper
	// requires it below the L2 size to avoid cache thrashing with
	// direct_pack_ff.
	RendezvousChunk int64
	// UseFF selects direct_pack_ff for non-contiguous datatypes; false
	// forces the generic pack-and-send baseline everywhere.
	UseFF bool
	// FFMinBlock disables direct_pack_ff for types whose average block is
	// smaller (the paper's footnote: an 8-byte granularity floor would
	// avoid the regime where generic wins; 0 means always use ff).
	FFMinBlock int64
	// DMAMin, when positive, routes contiguous rendezvous chunks of at
	// least this many bytes through the adapter's DMA engine instead of
	// PIO (the paper's §6 outlook: "non-contiguous data transfers with
	// DMA-based interconnects"). 0 disables DMA.
	DMAMin int64
	// Path selects the deposit engine for non-contiguous rendezvous chunks
	// on remote-memory transports: adaptive prediction (the default),
	// the legacy static thresholds, or a forced path (see PathPolicy).
	Path PathPolicy
	// PathEWMA is the blend factor of the adaptive chooser's per-peer
	// bandwidth estimator (0 uses the default 0.25).
	PathEWMA float64
	// DMASGMinBlock keeps the scatter-gather DMA path away from types
	// whose average contiguous block is smaller (a floor for deployments
	// whose engines choke on tiny descriptors). 0, the default, disables
	// the floor: the cost model already accounts for per-descriptor
	// overheads, so the chooser is left to rank the paths itself.
	DMASGMinBlock int64
	// OSCBuf is the per-pair staging area for emulated one-sided transfers
	// into private windows.
	OSCBuf int64
	// HandlerLatency is the software cost of dispatching one control
	// envelope in the device.
	HandlerLatency time.Duration
	// CallOverhead is the software cost of entering an MPI call.
	CallOverhead time.Duration

	// Coll selects the collective algorithm policy: the cost-model +
	// EWMA chooser (CollAuto, the default), the legacy point-to-point
	// algorithms (CollP2P), or one forced algorithm family for ablation
	// runs (see CollAlg).
	Coll CollAlg
	// CollSlot is the per-source deposit slot in each rank's one-sided
	// collective window (each rank exposes size*CollSlot bytes, built on
	// first use). 0 disables the window and the one-sided collective
	// algorithms.
	CollSlot int64
	// CollEWMA is the blend factor of the collective chooser's per-world
	// bandwidth estimator (0 uses the deposit chooser's default 0.25).
	CollEWMA float64
	// CollTimeout bounds each internal wait inside a checked collective
	// (BarrierChecked and friends): an expired wait surfaces as
	// sci.ErrConnectionLost when the awaited peer's node is down, or a
	// fault.Timeout error otherwise. 0 waits forever.
	CollTimeout time.Duration

	// RendezvousTimeout bounds each wait for rendezvous control traffic
	// (CTS, chunk acks). 0 waits forever (the legacy behaviour); with a
	// timeout, an expired wait surfaces as sci.ErrConnectionLost when the
	// peer's node is down, or a fault.Timeout error otherwise, instead of
	// hanging the simulation.
	RendezvousTimeout time.Duration
	// SendRetryMax bounds the retransmission attempts of a failed data
	// deposit (eager slot write, rendezvous chunk) before the typed error
	// is surfaced; SendBackoff is the initial backoff, doubled per retry.
	SendRetryMax int
	// SendBackoff is the initial retry backoff (doubled each attempt).
	SendBackoff time.Duration
}

// DefaultProtocol returns the SCI-MPICH-like protocol parameters.
func DefaultProtocol() ProtocolConfig {
	return ProtocolConfig{
		ShortMax:        128,
		EagerMax:        16 << 10,
		EagerSlots:      8,
		RendezvousChunk: 64 << 10, // a quarter of the P-III L2: chunk + scattered span stay cache-resident
		OSCBuf:          128 << 10,
		UseFF:           true,
		FFMinBlock:      0,
		HandlerLatency:  500 * time.Nanosecond,
		CallOverhead:    250 * time.Nanosecond,

		Path:          PathAdaptive,
		PathEWMA:      defaultPathEWMA,
		DMASGMinBlock: 0,

		Coll:     CollAuto,
		CollSlot: 256 << 10, // two double-buffered 128 KiB halves per pair
		CollEWMA: defaultPathEWMA,

		RendezvousTimeout: 0, // wait forever unless a run opts into watchdogs
		SendRetryMax:      6,
		SendBackoff:       20 * time.Microsecond,
	}
}

// InterconnectKind selects the inter-node transport.
type InterconnectKind int

const (
	// InterconnectSCI is the paper's platform: transparent remote memory
	// over a ringlet.
	InterconnectSCI InterconnectKind = iota
	// InterconnectNIC is a conventional message NIC (ethernet/Myrinet
	// class): no remote memory, every access a message. With it the
	// runtime behaves like the paper's comparator MPIs -- in particular,
	// direct_pack_ff degenerates to local packing.
	InterconnectNIC
)

// Config describes a simulated cluster run.
type Config struct {
	// Nodes is the number of cluster nodes; ProcsPerNode ranks run on
	// each. Rank r lives on node r / ProcsPerNode.
	Nodes        int
	ProcsPerNode int
	// Kind selects the inter-node transport (default SCI).
	Kind InterconnectKind
	// SCI configures the interconnect (ignored for a single node).
	SCI sci.Config
	// NIC configures the message fabric when Kind is InterconnectNIC.
	NIC nic.Config
	// Shm configures the intra-node memory system.
	Shm shmem.Config
	// Protocol configures the device.
	Protocol ProtocolConfig
	// Tracer, when non-nil, records a protocol event timeline (instant
	// events and nested spans; see internal/obs).
	Tracer *trace.Tracer
	// Metrics, when non-nil, receives the runtime's counters and latency
	// histograms (mpi.send.*{path=...}, mpi.pack.*) and, after Run, the
	// per-rank device and per-node interconnect gauges published by
	// World.PublishMetrics. It is inherited by the SCI layer unless
	// SCI.Metrics is set explicitly.
	Metrics *obs.Registry
	// Flight, when non-nil, is the always-on flight recorder: every rank
	// records typed protocol events (send/recv matches, rendezvous
	// progress, shrink agreements) into its per-actor ring, and the first
	// typed error surfaced by a checked operation snapshots the whole
	// window to a JSON dump (see internal/obs/flight and cmd/postmortem).
	// It is inherited by the SCI layer unless SCI.Flight is set explicitly.
	Flight *flight.Recorder

	// Shards selects the engine Run constructs: 0 or 1 (the default) runs
	// the world on the sequential oracle; >1 builds a conservative-parallel
	// sim.ShardedEngine and hosts the world on one of its locales. The
	// virtual outcome — end time, message schedule, flight dump — is
	// byte-identical either way: the world is confined to a single locale,
	// so its event schedule is governed only by that locale's (time, seq)
	// heap order, which the sharded engine preserves exactly.
	Shards int
	// Locale selects which locale of the fabric hosts the world (for Run
	// with Shards > 1, and for NewWorldOn on a multi-locale fabric).
	Locale int
	// Lookahead is the conservative lookahead Run gives a sharded engine;
	// 0 uses the SCI segment latency (the minimum delay of any cross-shard
	// interaction on the paper's hardware).
	Lookahead time.Duration
	// Placement, when non-nil, maps world ranks onto fabric locales. The
	// full protocol world must be confined to one locale (its ranks share
	// ports, windows and chooser state at zero delay), so every rank must
	// be placed on the same shard — NewWorldOn takes that shard as the
	// hosting locale. Distributed placements (ranks spread across shards)
	// are the domain of the torus collective runtime (TorusWorld), whose
	// node actors interact only through link-latency sends.
	Placement *Placement
}

// DefaultConfig returns a cluster of nodes dual-SMP nodes matching the
// paper's testbed.
func DefaultConfig(nodes, procsPerNode int) Config {
	return Config{
		Nodes:        nodes,
		ProcsPerNode: procsPerNode,
		SCI:          sci.DefaultConfig(nodes),
		Shm:          shmem.DefaultConfig(),
		Protocol:     DefaultProtocol(),
	}
}

// NICConfig returns a cluster over a message NIC.
func NICConfig(nodes, procsPerNode int, n nic.Config) Config {
	cfg := DefaultConfig(nodes, procsPerNode)
	cfg.Kind = InterconnectNIC
	cfg.NIC = n
	return cfg
}

// World is the runtime state of a cluster run. The world lives on one
// locale of a sim.Fabric: all its processes, device daemons, flow networks
// and services are scheduled on that locale's heap, so the same world runs
// byte-identically on the sequential oracle and on any shard of a
// conservative-parallel engine.
type World struct {
	cfg    Config
	fabric sim.Fabric
	host   sim.Host // the hosting locale's scheduling surface
	ic     *sci.Interconnect
	nicNet *nic.Network
	buses  []*shmem.Bus
	ranks  []*rank

	size       int
	exchange   map[string][]any
	seq        map[string][]int
	ctxCounter int

	// Failure-detector and revocation state (see elastic.go), indexed by
	// world rank. suspects is the sticky suspicion set; revoked marks ranks
	// a shrink agreement excluded — every transport drops their traffic.
	suspects   []bool
	revoked    []bool
	shrinkRecs map[string]*shrinkRec

	// Collective algorithm engine state: the lazily built one-sided
	// windows (one SharedSeg per owning rank, a per-source view matrix)
	// and the chooser's feedback tables (see collalg.go). All of it is
	// mutated from rank processes without locking: the simulation is
	// single-threaded.
	collWins  []*SharedSeg
	collViews [][]smi.Mem
	collLive  collEWMATable
	collSnaps map[collSnapKey]*collSnap

	met worldMetrics
	// packFF/packGeneric accumulate the block structure of every pack and
	// unpack operation charged on this world, per engine (see PackStats).
	packFF      pack.Cumulative
	packGeneric pack.Cumulative
}

// PackStats returns race-free cumulative totals of all pack/unpack
// operations performed on the world, split by engine (direct_pack_ff
// versus the generic recursive baseline).
func (w *World) PackStats() (ff, generic pack.CumulativeStats) {
	return w.packFF.Snapshot(), w.packGeneric.Snapshot()
}

// countPack folds one pack/unpack operation into the per-engine totals.
func (w *World) countPack(st pack.Stats, ff bool) {
	if ff {
		w.packFF.Add(st)
	} else {
		w.packGeneric.Add(st)
	}
}

// worldMetrics caches the runtime's registry collectors so the send hot
// path never performs a map lookup. With metrics disabled every field is a
// nil collector and every update below is an allocation-free no-op.
type worldMetrics struct {
	sendShortNS *obs.Histogram
	sendEagerNS *obs.Histogram
	sendRdvNS   *obs.Histogram

	sendsShort *obs.Counter
	sendsEager *obs.Counter
	sendsRdv   *obs.Counter
	bytesShort *obs.Counter
	bytesEager *obs.Counter
	bytesRdv   *obs.Counter

	packFFNS      *obs.Histogram
	packGenericNS *obs.Histogram
	packFFBytes   *obs.Counter
	packGenBytes  *obs.Counter

	packSGNS    *obs.Histogram
	packSGBytes *obs.Counter

	transferDMANS    *obs.Histogram
	transferDMABytes *obs.Counter

	// pathChosen counts adaptive/static deposit decisions per chunk, one
	// counter per path label.
	pathChosen [depositPathCount]*obs.Counter
	pathGeneric,
	pathPIOStream,
	pathDMAContig *obs.Counter

	oscCallsInterrupt *obs.Counter
	oscCallsPoll      *obs.Counter

	// collChosen counts collective algorithm decisions, one counter per
	// (collective, algorithm) pair; collNS times whole collective calls.
	collChosen [collKindCount][collAlgCount]*obs.Counter
	collNS     [collKindCount]*obs.Histogram
}

func newWorldMetrics(r *obs.Registry) worldMetrics {
	m := worldMetrics{
		sendShortNS: r.Histogram(obs.Name("mpi.send.ns", "path", "short")),
		sendEagerNS: r.Histogram(obs.Name("mpi.send.ns", "path", "eager")),
		sendRdvNS:   r.Histogram(obs.Name("mpi.send.ns", "path", "rdv")),

		sendsShort: r.Counter(obs.Name("mpi.sends", "path", "short")),
		sendsEager: r.Counter(obs.Name("mpi.sends", "path", "eager")),
		sendsRdv:   r.Counter(obs.Name("mpi.sends", "path", "rdv")),
		bytesShort: r.Counter(obs.Name("mpi.send.bytes", "path", "short")),
		bytesEager: r.Counter(obs.Name("mpi.send.bytes", "path", "eager")),
		bytesRdv:   r.Counter(obs.Name("mpi.send.bytes", "path", "rdv")),

		packFFNS:      r.Histogram(obs.Name("mpi.pack.ns", "engine", "direct_pack_ff")),
		packGenericNS: r.Histogram(obs.Name("mpi.pack.ns", "engine", "generic")),
		packFFBytes:   r.Counter(obs.Name("mpi.pack.bytes", "engine", "direct_pack_ff")),
		packGenBytes:  r.Counter(obs.Name("mpi.pack.bytes", "engine", "generic")),

		packSGNS:    r.Histogram(obs.Name("mpi.pack.ns", "engine", "dma_sg")),
		packSGBytes: r.Counter(obs.Name("mpi.pack.bytes", "engine", "dma_sg")),

		transferDMANS:    r.Histogram(obs.Name("mpi.transfer.ns", "path", "dma")),
		transferDMABytes: r.Counter(obs.Name("mpi.transfer.bytes", "path", "dma")),

		pathChosen: [depositPathCount]*obs.Counter{
			depositFF:     r.Counter(obs.Name("mpi.path.chosen", "path", "pio-ff")),
			depositStaged: r.Counter(obs.Name("mpi.path.chosen", "path", "staged")),
			depositSG:     r.Counter(obs.Name("mpi.path.chosen", "path", "dma-sg")),
		},
		pathGeneric:   r.Counter(obs.Name("mpi.path.chosen", "path", "generic")),
		pathPIOStream: r.Counter(obs.Name("mpi.path.chosen", "path", "pio-stream")),
		pathDMAContig: r.Counter(obs.Name("mpi.path.chosen", "path", "dma")),

		oscCallsInterrupt: r.Counter(obs.Name("mpi.osc.calls", "delivery", "interrupt")),
		oscCallsPoll:      r.Counter(obs.Name("mpi.osc.calls", "delivery", "poll")),
	}
	for k := collKind(0); k < collKindCount; k++ {
		m.collNS[k] = r.Histogram(obs.Name("mpi.coll.ns", "coll", k.String()))
		for a := CollAlg(0); a < collAlgCount; a++ {
			m.collChosen[k][a] = r.Counter(obs.Name("mpi.coll.alg.chosen",
				"coll", k.String(), "alg", a.String()))
		}
	}
	return m
}

// rank is one MPI process.
type rank struct {
	w          *World
	id         int
	node       int
	actor      string     // cached "rank<i>" (avoids Sprintf on the send hot path)
	fl         *flight.Ring // cached flight ring for the actor (nil without a recorder)
	dev        *device
	p          *sim.Proc // the user process, set when spawned
	reqCounter int64

	// ports[i] is the memory this rank exposes to sender i.
	ports []*port
	// out[i] is this rank's sender-side state toward receiver i.
	out []*sendPort
}

// port is the receive-side memory a rank exposes to one particular sender:
// eager slots plus a double-buffered rendezvous area.
type port struct {
	mem    smi.Mem
	segID  int         // SCI segment id for remote senders (-1 otherwise)
	nicBuf *nic.Buffer // NIC buffer for remote senders (nil otherwise)
}

// sendPort is the sender-side view of a receiver's port.
type sendPort struct {
	mem     smi.Mem
	credits *sim.Chan  // eager slot tokens
	rdvLock *sim.Mutex // serializes rendezvous transfers on this pair
	oscLock *sim.Mutex // serializes one-sided staging on this pair
	slot    int        // next eager slot (round-robin, guarded by credits)
	msgSeq  int64      // sequence stamp for message-bearing envelopes

	// paths holds the adaptive chooser's per-path EWMA of achieved deposit
	// bandwidth toward this peer, bytes/sec (0 = never exercised). Guarded
	// by rdvLock, like the transfers it describes.
	paths [depositPathCount]float64
}

func (w *World) protocol() *ProtocolConfig { return &w.cfg.Protocol }

// portSize returns the byte size of one pair port.
func (w *World) portSize() int64 {
	p := w.protocol()
	return int64(p.EagerSlots)*p.EagerMax + 2*p.RendezvousChunk + p.OSCBuf
}

func (w *World) eagerOff(slot int) int64 { return int64(slot) * w.protocol().EagerMax }

func (w *World) rdvOff(slot int) int64 {
	p := w.protocol()
	return int64(p.EagerSlots)*p.EagerMax + int64(slot%2)*p.RendezvousChunk
}

// oscOff returns the offset of the one-sided staging area in a pair port.
func (w *World) oscOff() int64 {
	p := w.protocol()
	return int64(p.EagerSlots)*p.EagerMax + 2*p.RendezvousChunk
}

// hostingLocale resolves which locale of f hosts the world: the shard all
// ranks of cfg.Placement agree on, or cfg.Locale without a placement.
func hostingLocale(f sim.Fabric, cfg Config) int {
	loc := cfg.Locale
	if p := cfg.Placement; p != nil {
		if p.Size() != cfg.Nodes*cfg.ProcsPerNode {
			panic(fmt.Sprintf("mpi: placement covers %d ranks, world has %d", p.Size(), cfg.Nodes*cfg.ProcsPerNode))
		}
		loc = p.ShardOf(0)
		for r := 1; r < p.Size(); r++ {
			if p.ShardOf(r) != loc {
				panic(fmt.Sprintf("mpi: rank %d placed on shard %d but rank 0 on %d: "+
					"the full protocol world is confined to one locale (use TorusWorld for distributed placements)",
					r, p.ShardOf(r), loc))
			}
		}
	}
	if loc < 0 || loc >= f.Locales() {
		panic(fmt.Sprintf("mpi: hosting locale %d outside fabric of %d", loc, f.Locales()))
	}
	return loc
}

// newWorld wires the cluster — interconnect, per-node buses, ranks, ports —
// confined to one locale of the fabric.
func newWorld(f sim.Fabric, cfg Config) *World {
	if cfg.Nodes < 1 || cfg.ProcsPerNode < 1 {
		panic("mpi: need at least one node and one proc per node")
	}
	w := &World{cfg: cfg, fabric: f, host: f.Locale(hostingLocale(f, cfg)), size: cfg.Nodes * cfg.ProcsPerNode}
	e := w.host
	w.met = newWorldMetrics(cfg.Metrics)
	w.suspects = make([]bool, w.size)
	w.revoked = make([]bool, w.size)
	if cfg.Nodes > 1 {
		switch cfg.Kind {
		case InterconnectSCI:
			if cfg.SCI.Tracer == nil {
				cfg.SCI.Tracer = cfg.Tracer
			}
			if cfg.SCI.Metrics == nil {
				cfg.SCI.Metrics = cfg.Metrics
			}
			if cfg.SCI.Flight == nil {
				cfg.SCI.Flight = cfg.Flight
			}
			w.cfg.SCI.Tracer = cfg.SCI.Tracer
			w.cfg.SCI.Metrics = cfg.SCI.Metrics
			w.cfg.SCI.Flight = cfg.SCI.Flight
			w.ic = sci.New(e, cfg.SCI)
		case InterconnectNIC:
			w.nicNet = nic.New(e, cfg.Nodes, cfg.NIC)
		default:
			panic(fmt.Sprintf("mpi: unknown interconnect kind %d", cfg.Kind))
		}
	}
	// All intra-node buses share one flow network so that, on request,
	// cross-transport interactions stay in one simulation.
	net := flow.NewNetworkOn(e)
	net.SetMetrics(cfg.Metrics)
	w.buses = make([]*shmem.Bus, cfg.Nodes)
	for n := range w.buses {
		w.buses[n] = shmem.NewBus(e, net, fmt.Sprintf("node%d", n), cfg.Shm)
	}
	w.ranks = make([]*rank, w.size)
	topo := cfg.Flight.Actor("topology")
	for r := range w.ranks {
		rk := &rank{w: w, id: r, node: r / cfg.ProcsPerNode, actor: fmt.Sprintf("rank%d", r)}
		rk.fl = cfg.Flight.Actor(rk.actor)
		// The topology meta ring maps ranks to nodes for the post-mortem
		// analyzer; a dedicated ring so long runs cannot evict it.
		topo.Record(0, flight.KRankNode, int64(r), int64(rk.node), 0, 0)
		w.ranks[r] = rk
	}
	if cfg.Flight != nil {
		if pl := w.plan(); pl != nil {
			// Every fault the plan actually injects lands in the recorder,
			// so a post-mortem can separate injected causes from symptoms.
			flr := cfg.Flight.Actor("faultplan")
			pl.SetObserver(func(at time.Duration, k fault.Kind, from, to int) {
				flr.Record(at, flight.KFault, int64(k), int64(from), int64(to), 0)
			})
		}
	}
	for _, rk := range w.ranks {
		rk.buildPorts()
		rk.dev = newDevice(rk)
	}
	for _, rk := range w.ranks {
		rk.buildSendPorts()
	}
	return w
}

// buildPorts allocates the receive-side memory this rank exposes to every
// sender: intra-node senders get a shm region, remote senders an SCI
// segment.
func (rk *rank) buildPorts() {
	w := rk.w
	rk.ports = make([]*port, w.size)
	for src := 0; src < w.size; src++ {
		if src == rk.id {
			continue
		}
		if w.ranks[src].node == rk.node {
			rk.ports[src] = &port{
				mem:   smi.FromShm(w.buses[rk.node].Alloc(w.portSize())),
				segID: -1,
			}
			continue
		}
		if w.nicNet != nil {
			buf := w.nicNet.Alloc(rk.node, w.portSize())
			rk.ports[src] = &port{
				mem:    smi.FromNIC(w.nicNet.View(rk.node, buf)),
				segID:  -1,
				nicBuf: buf,
			}
			continue
		}
		seg := w.ic.Node(rk.node).Export(w.portSize())
		// This is the owning rank's local view; the sender imports the
		// segment in buildSendPorts.
		rk.ports[src] = &port{
			mem:   smi.FromSCI(w.ic.Node(rk.node).MustImport(rk.node, seg.ID())),
			segID: seg.ID(),
		}
	}
}

// buildSendPorts creates this rank's sender-side view of each peer's port.
func (rk *rank) buildSendPorts() {
	w := rk.w
	rk.out = make([]*sendPort, w.size)
	for dst := 0; dst < w.size; dst++ {
		if dst == rk.id {
			continue
		}
		peer := w.ranks[dst]
		var mem smi.Mem
		switch {
		case peer.node == rk.node:
			mem = peer.ports[rk.id].mem // same shm region
		case w.nicNet != nil:
			mem = smi.FromNIC(w.nicNet.View(rk.node, peer.ports[rk.id].nicBuf))
		default:
			mem = smi.FromSCI(w.ic.Node(rk.node).MustImport(peer.node, peer.ports[rk.id].segID))
		}
		credits := sim.NewChan(w.protocol().EagerSlots + 1)
		for i := 0; i < w.protocol().EagerSlots; i++ {
			sim.Post(credits, i)
		}
		rk.out[dst] = &sendPort{mem: mem, credits: credits, rdvLock: &sim.Mutex{}, oscLock: &sim.Mutex{}}
	}
}

// ring delivers an envelope from rank src to rank dst's device inbox,
// charging the transport-appropriate control-packet cost. interrupt selects
// the remote-interrupt path (for targets that are not polling).
func (w *World) ring(p *sim.Proc, src, dst int, env *envelope, interrupt bool) {
	if src == dst {
		sim.Post(w.ranks[dst].dev.inbox, env)
		return
	}
	if w.revoked[src] || w.revoked[dst] {
		// A revoked endpoint is permanently fenced off, on every transport:
		// even a restored node's stale traffic (old sequence numbers, late
		// rendezvous chunks) must never reach a world that shrank past it.
		w.cfg.Tracer.Record(p.Now(), w.ranks[src].actor, "fault",
			"control packet %v -> %d dropped (rank revoked)", env.kind, dst)
		w.ranks[src].fl.Record(p.Now(), flight.KPacketDrop, int64(env.kind), int64(dst), flight.DropRevoked, 0)
		return
	}
	from, to := w.ranks[src], w.ranks[dst]
	if from.node == to.node {
		p.Sleep(60 * time.Nanosecond)
		delay := w.cfg.Shm.SignalLatency
		inbox := to.dev.inbox
		w.host.After(delay, func() { sim.Post(inbox, env) })
		return
	}
	if w.nicNet != nil {
		ncfg := &w.cfg.NIC
		p.Sleep(ncfg.PerMessageCPU)
		inbox := to.dev.inbox
		w.host.After(ncfg.Latency, func() { sim.Post(inbox, env) })
		return
	}
	cfg := &w.cfg.SCI
	p.Sleep(cfg.WriteIssueOverhead + sim.RateDuration(envelopeWireBytes, cfg.PIOWritePeakBW))
	if w.ic != nil && (!w.ic.Alive(from.node) || !w.ic.Alive(to.node)) {
		// A crashed endpoint black-holes the control packet: the sender has
		// paid the issue cost but nothing arrives. Recovery layers detect
		// this via watchdog timeouts, not via a magic error here.
		w.cfg.Tracer.Record(p.Now(), from.actor, "fault",
			"control packet %v -> %d dropped (node down)", env.kind, dst)
		from.fl.Record(p.Now(), flight.KPacketDrop, int64(env.kind), int64(dst), flight.DropNodeDown, 0)
		return
	}
	if dedupable(env.kind) {
		out := from.out[dst]
		out.msgSeq++
		env.seq = out.msgSeq
	}
	delay := cfg.PIOWriteLatency
	if interrupt {
		delay += cfg.InterruptLatency
	}
	inbox := to.dev.inbox
	w.host.After(delay, func() { sim.Post(inbox, env) })
	if w.plan().DrawDuplicate() && dedupable(env.kind) {
		// Injected retransmission: the same packet arrives a second time one
		// retry latency later. The receiving device must stay exactly-once.
		w.cfg.Tracer.Record(p.Now(), from.actor, "fault",
			"duplicated %v envelope -> %d (seq %d)", env.kind, dst, env.seq)
		from.fl.Record(p.Now(), flight.KDupInject, int64(env.kind), int64(dst), env.seq, 0)
		w.host.After(delay+cfg.RetryLatency, func() { sim.Post(inbox, env) })
	}
}

// dedupable reports whether an envelope kind carries a message the
// receiving device can recognize as a duplicate (sequence-numbered kinds
// plus rendezvous data chunks, deduped by chunk index). Control replies
// (CTS/acks) are never duplicated by the injector: the sender counts them.
func dedupable(k envKind) bool {
	switch k {
	case envShort, envEager, envRdvReq, envRdvData:
		return true
	}
	return false
}

// plan returns the SCI fault plan (nil without one; Plan queries are
// nil-safe).
func (w *World) plan() *fault.Plan {
	if w.ic == nil {
		return nil
	}
	return w.ic.Plan()
}

// envelopeWireBytes is the size of a control packet on the wire.
const envelopeWireBytes = 64
