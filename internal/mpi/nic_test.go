package mpi

import (
	"bytes"
	"testing"
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/nic"
)

// The full MPI runtime over the message-NIC transport: the comparator-class
// configuration (no transparent remote memory). Correctness must be
// identical to SCI; performance must show the message-fabric signatures.

func TestNICClusterSendRecvAllProtocols(t *testing.T) {
	for _, size := range []int{64, 4096, 256 << 10} {
		src := fill(size)
		Run(NICConfig(2, 1, nic.FastEthernet()), func(c *Comm) {
			switch c.Rank() {
			case 0:
				c.Send(src, size, datatype.Byte, 1, 0)
			case 1:
				dst := make([]byte, size)
				c.Recv(dst, size, datatype.Byte, 0, 0)
				if !bytes.Equal(dst, src) {
					t.Errorf("size %d: data corrupted over NIC", size)
				}
			}
		})
	}
}

func TestNICNoncontigCorrectAndFFBringsNoWireGain(t *testing.T) {
	// The figure 10 point: on a message NIC, direct_pack_ff cannot write
	// into remote memory; it degenerates to local staging, so the gap to
	// the generic engine nearly vanishes (within a few percent).
	ty := datatype.Vector(2048, 16, 32, datatype.Float64).Commit()
	src := fill(int(ty.Extent()) + 64)
	elapsed := func(useFF bool) time.Duration {
		cfg := NICConfig(2, 1, nic.Myrinet1280())
		cfg.Protocol.UseFF = useFF
		var d time.Duration
		Run(cfg, func(c *Comm) {
			switch c.Rank() {
			case 0:
				start := c.WtimeDuration()
				c.Send(src, 1, ty, 1, 0)
				c.Recv(nil, 0, datatype.Byte, 1, 1)
				d = c.WtimeDuration() - start
			case 1:
				dst := make([]byte, len(src))
				c.Recv(dst, 1, ty, 0, 0)
				for _, b := range ty.TypeMap() {
					if !bytes.Equal(dst[b.Off:b.Off+b.Len], src[b.Off:b.Off+b.Len]) {
						t.Fatalf("NIC ff block at %d corrupted", b.Off)
					}
				}
				c.Send(nil, 0, datatype.Byte, 0, 1)
			}
		})
		return d
	}
	ff, gen := elapsed(true), elapsed(false)
	ratio := float64(gen) / float64(ff)
	if ratio > 1.25 {
		t.Errorf("NIC: ff speedup %.2fx — message fabric should not profit from direct packing", ratio)
	}
	if ratio < 0.8 {
		t.Errorf("NIC: ff %.2fx slower than generic", 1/ratio)
	}
}

func TestNICLatencyDominatesSmallMessages(t *testing.T) {
	var rtt time.Duration
	Run(NICConfig(2, 1, nic.FastEthernet()), func(c *Comm) {
		buf := make([]byte, 8)
		start := c.WtimeDuration()
		if c.Rank() == 0 {
			c.Send(buf, 8, datatype.Byte, 1, 0)
			c.Recv(buf, 8, datatype.Byte, 1, 1)
			rtt = c.WtimeDuration() - start
		} else {
			c.Recv(buf, 8, datatype.Byte, 0, 0)
			c.Send(buf, 8, datatype.Byte, 0, 1)
		}
	})
	// Fast ethernet: ~70µs each way.
	if rtt < 140*time.Microsecond || rtt > 300*time.Microsecond {
		t.Errorf("NIC 8B round trip = %v, want ~2x70µs plus overheads", rtt)
	}
}

func TestNICCollectives(t *testing.T) {
	Run(NICConfig(3, 1, nic.GigabitEthernet()), func(c *Comm) {
		recv := make([]byte, 8)
		c.Allreduce(Float64Bytes([]float64{float64(c.Rank() + 1)}), recv, 1, datatype.Float64, OpSum)
		if BytesFloat64(recv)[0] != 6 {
			t.Errorf("allreduce over NIC = %g, want 6", BytesFloat64(recv)[0])
		}
	})
}
