package mpi

import (
	"time"

	"scimpich/internal/obs"
	"scimpich/internal/sim"
)

// The collective algorithm engine: every collective call is dispatched
// through an algorithm chooser that ranks the implemented algorithm
// families per message size and communicator size, extending the
// rendezvous deposit chooser's design (pathsel.go) to whole collectives:
// cost-model priors keep the first decisions consistent with what the
// simulator bills, and an EWMA of achieved collective bandwidth refines
// them as calls complete.
//
// Correctness requires every member of a collective to pick the *same*
// algorithm. The EWMA state therefore lives on the World, and each matched
// call consumes a snapshot of it keyed by the call's sequence number
// (World.callSeq): the first rank to enter call #k copies the live table,
// the remaining members rank against the same copy, and completions fold
// into the live table only. The simulation is single-threaded, so the
// shared tables need no locking.

// CollAlg selects the algorithm family of a collective operation.
type CollAlg int

const (
	// CollAuto (the default) ranks the eligible algorithms per call from
	// the cost-model priors, refined by EWMA bandwidth feedback.
	CollAuto CollAlg = iota
	// CollP2P forces the legacy point-to-point algorithms (binomial
	// trees, rings, pairwise exchange).
	CollP2P
	// CollRecDbl forces recursive doubling (allreduce); collectives
	// without a recursive-doubling variant fall back to their cheapest
	// point-to-point algorithm.
	CollRecDbl
	// CollRing forces the bandwidth-optimal ring algorithms (allreduce as
	// reduce-scatter + allgather); collectives without one fall back.
	CollRing
	// CollOneSided forces the shared-segment algorithms that deposit
	// directly into peers' collective windows; payloads that exceed the
	// window slots fall back per collective.
	CollOneSided

	collAlgCount
)

func (a CollAlg) String() string {
	switch a {
	case CollAuto:
		return "auto"
	case CollP2P:
		return "p2p"
	case CollRecDbl:
		return "recdbl"
	case CollRing:
		return "ring"
	case CollOneSided:
		return "onesided"
	default:
		return "unknown"
	}
}

// collKind identifies one collective operation in the chooser's tables and
// metric labels.
type collKind int

const (
	collBarrier collKind = iota
	collBcast
	collReduce
	collAllreduce
	collGather
	collScatter
	collAllgather
	collAlltoall
	collScan
	collRedScat
	collGatherv
	collScatterv
	collAgatherv

	collKindCount
)

func (k collKind) String() string {
	switch k {
	case collBarrier:
		return "barrier"
	case collBcast:
		return "bcast"
	case collReduce:
		return "reduce"
	case collAllreduce:
		return "allreduce"
	case collGather:
		return "gather"
	case collScatter:
		return "scatter"
	case collAllgather:
		return "allgather"
	case collAlltoall:
		return "alltoall"
	case collScan:
		return "scan"
	case collRedScat:
		return "redscat"
	case collGatherv:
		return "gatherv"
	case collScatterv:
		return "scatterv"
	case collAgatherv:
		return "allgatherv"
	default:
		return "unknown"
	}
}

// collEWMATable holds the per-(collective, algorithm) EWMA of achieved
// bandwidth, bytes/sec (0 = never exercised).
type collEWMATable [collKindCount][collAlgCount]float64

// collSnapKey identifies one matched collective call across its members.
type collSnapKey struct {
	kind collKind
	ctx  int
	seq  int
}

// collSnap is the feedback-table copy all members of one matched call rank
// against; left counts the members that have not consumed it yet.
type collSnap struct {
	tbl  collEWMATable
	left int
}

// collSnapshot returns the feedback table for this member's call #seq,
// creating the snapshot on first entry and releasing it with the last.
func (w *World) collSnapshot(kind collKind, ctx, seq, members int) collEWMATable {
	key := collSnapKey{kind: kind, ctx: ctx, seq: seq}
	if w.collSnaps == nil {
		w.collSnaps = make(map[collSnapKey]*collSnap)
	}
	s, ok := w.collSnaps[key]
	if !ok {
		s = &collSnap{tbl: w.collLive, left: members}
		w.collSnaps[key] = s
	}
	s.left--
	if s.left <= 0 {
		delete(w.collSnaps, key)
	}
	return s.tbl
}

// observeColl folds one completed collective into the live feedback table.
func (w *World) observeColl(kind collKind, alg CollAlg, bytes int64, elapsed time.Duration) {
	if bytes <= 0 || elapsed <= 0 {
		return
	}
	bw := float64(bytes) / elapsed.Seconds()
	alpha := w.protocol().CollEWMA
	if alpha <= 0 || alpha > 1 {
		alpha = defaultPathEWMA
	}
	if prev := w.collLive[kind][alg]; prev > 0 {
		bw = alpha*bw + (1-alpha)*prev
	}
	w.collLive[kind][alg] = bw
}

// --- cost-model priors ---

// collCtl is the prior for one zero/small control message between two
// ranks of this world (issue + wire + dispatch on the dominant transport).
func (w *World) collCtl() time.Duration {
	p := w.protocol()
	base := p.CallOverhead + p.HandlerLatency
	if w.ic != nil {
		return base + w.cfg.SCI.WriteIssueOverhead + w.cfg.SCI.PIOWriteLatency
	}
	if w.nicNet != nil {
		return base + w.cfg.NIC.PerMessageCPU + w.cfg.NIC.Latency
	}
	return base + w.cfg.Shm.SignalLatency
}

// traceSpan aliases the tracer's span type for the collOp bookkeeping.
type traceSpan = obs.Span

// collLinkBW is the prior for the sustained stream bandwidth between two
// ranks (bytes/sec) on the dominant transport.
func (w *World) collLinkBW() float64 {
	if w.ic != nil {
		return w.cfg.SCI.StreamWriteBW(w.protocol().RendezvousChunk)
	}
	if w.nicNet != nil {
		return w.cfg.NIC.Bandwidth
	}
	return w.cfg.Shm.Mem.CopyBW(128 << 10)
}

// modelP2PMsg is the prior for one point-to-point message of n bytes:
// protocol control traffic plus wire time, mirroring what the short /
// eager / rendezvous paths bill.
func (c *Comm) modelP2PMsg(n int64) time.Duration {
	w := c.rk.w
	p := w.protocol()
	ctl := w.collCtl()
	wire := sim.RateDuration(n, w.collLinkBW())
	switch {
	case n <= p.ShortMax:
		return ctl
	case n <= p.EagerMax:
		// Slot deposit plus the receiver's copy-out and credit return.
		return 2*ctl + wire + c.mem().CopyCost(n, n, 2*n)
	default:
		// Request + CTS handshake, chunked deposits with per-chunk acks,
		// and the receiver's per-chunk unpack.
		chunks := (n + p.RendezvousChunk - 1) / p.RendezvousChunk
		return time.Duration(2+chunks)*ctl + wire + c.mem().CopyCost(n, p.RendezvousChunk, 2*n)
	}
}

// modelOSBlock is the prior for one one-sided window exchange of n bytes:
// the deposit stream, a notify/ack pair, and the receiver's copy out of
// its window slot. No handshake and no per-chunk protocol below the slot
// size — the point of the one-sided algorithms.
func (c *Comm) modelOSBlock(n int64) time.Duration {
	w := c.rk.w
	chunk := w.osChunk()
	chunks := int64(1)
	if chunk > 0 {
		chunks = (n + chunk - 1) / chunk
	}
	return sim.RateDuration(n, w.collLinkBW()) +
		time.Duration(2*chunks)*w.collCtl() +
		c.mem().CopyCost(n, n, 2*n)
}

// modelCombine is the prior for the elementwise reduction of n bytes
// (memory-bound: two streams in, one out). It matches chargeCombine.
func (c *Comm) modelCombine(n int64) time.Duration {
	return c.mem().CopyCost(n, n, 3*n)
}

// ceilLog2 returns ceil(log2(p)) for p >= 1.
func ceilLog2(p int) int {
	n := 0
	for 1<<n < p {
		n++
	}
	return n
}

// modelColl is the cost-model prior for one collective: kind and algorithm
// over size ranks, where bytes is the operation's per-rank payload and
// perPeer the per-pair block (they coincide for bcast and allreduce).
func (c *Comm) modelColl(kind collKind, alg CollAlg, size int, bytes, perPeer int64) time.Duration {
	depth := ceilLog2(size)
	steps := int64(size - 1)
	switch kind {
	case collBcast:
		switch alg {
		case CollOneSided:
			// Pipelined chunk forwarding down the binomial tree: one wire
			// pass plus the pipeline fill over the tree depth.
			chunk := c.rk.w.osChunk()
			fill := time.Duration(depth) * sim.RateDuration(min64(bytes, chunk), c.rk.w.collLinkBW())
			return c.modelOSBlock(bytes) + fill
		default:
			// Store-and-forward binomial tree.
			return time.Duration(depth) * c.modelP2PMsg(bytes)
		}
	case collAllreduce:
		block := (bytes + int64(size) - 1) / int64(size)
		switch alg {
		case CollRecDbl:
			return time.Duration(depth) * (c.modelP2PMsg(bytes) + c.modelCombine(bytes))
		case CollRing:
			return 2*time.Duration(steps)*c.modelP2PMsg(block) +
				time.Duration(steps)*c.modelCombine(block)
		case CollOneSided:
			return 2*time.Duration(steps)*c.modelOSBlock(block) +
				time.Duration(steps)*c.modelCombine(block)
		default:
			// Reduce to root, then broadcast: two tree traversals.
			return time.Duration(2*depth)*c.modelP2PMsg(bytes) +
				time.Duration(depth)*c.modelCombine(bytes)
		}
	case collAllgather, collAlltoall:
		switch alg {
		case CollOneSided:
			// size-1 deposits issued back to back, receives overlap; a
			// dissemination barrier closes the epoch.
			return time.Duration(steps)*c.modelOSBlock(perPeer) +
				time.Duration(2*depth)*c.rk.w.collCtl()
		default:
			return time.Duration(steps) * c.modelP2PMsg(perPeer)
		}
	default:
		return time.Duration(steps) * c.modelP2PMsg(bytes)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// --- eligibility and selection ---

// collCandidates lists the algorithm families implemented for a kind, in
// fallback preference order (first entry = the always-available baseline).
func collCandidates(kind collKind) []CollAlg {
	switch kind {
	case collBcast:
		return []CollAlg{CollP2P, CollOneSided}
	case collAllreduce:
		return []CollAlg{CollP2P, CollRecDbl, CollRing, CollOneSided}
	case collAllgather, collAlltoall:
		return []CollAlg{CollP2P, CollOneSided}
	default:
		return []CollAlg{CollP2P}
	}
}

// collAlgOK reports whether an algorithm family is eligible for this call:
// implemented for the kind, and (for the one-sided family) the per-pair
// block fits the collective window slots.
func (c *Comm) collAlgOK(kind collKind, alg CollAlg, size int, bytes, perPeer int64) bool {
	found := false
	for _, a := range collCandidates(kind) {
		if a == alg {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	if alg != CollOneSided {
		return true
	}
	slot := c.rk.w.protocol().CollSlot
	if slot <= 0 {
		return false
	}
	switch kind {
	case collBcast:
		return true // chunked through the double-buffered slot halves
	case collAllreduce:
		block := (bytes + int64(size) - 1) / int64(size)
		return block <= c.rk.w.osChunk()
	default:
		return perPeer <= slot // one single-shot deposit per pair
	}
}

// chooseCollAlg picks the algorithm for one matched collective call. All
// inputs are identical on every member, so every member picks the same
// algorithm: forced policies resolve statically, and CollAuto ranks
// against a call-sequence-keyed snapshot of the shared feedback table.
func (c *Comm) chooseCollAlg(kind collKind, size int, bytes, perPeer int64) CollAlg {
	forced := c.rk.w.protocol().Coll
	if forced != CollAuto {
		if c.collAlgOK(kind, forced, size, bytes, perPeer) {
			return forced
		}
		// Forced but ineligible: the closest always-available family.
		if kind == collAllreduce && forced == CollOneSided {
			return CollRing
		}
		return CollP2P
	}
	cands := collCandidates(kind)
	if len(cands) == 1 {
		return cands[0]
	}
	seq := c.rk.w.callSeq("collalg."+kind.String(), c.ctx, c.rk.id)
	tbl := c.rk.w.collSnapshot(kind, c.ctx, seq, size)
	best, bestCost := CollP2P, time.Duration(0)
	first := true
	for _, a := range cands {
		if !c.collAlgOK(kind, a, size, bytes, perPeer) {
			continue
		}
		cost := c.modelColl(kind, a, size, bytes, perPeer)
		if bw := tbl[kind][a]; bw > 0 {
			cost = sim.RateDuration(bytes, bw)
		}
		if first || cost < bestCost {
			best, bestCost = a, cost
			first = false
		}
	}
	return best
}

// --- per-call bookkeeping ---

// collOp tracks one collective call: its span, timing, and the feedback
// fold at completion.
type collOp struct {
	c     *Comm
	kind  collKind
	alg   CollAlg
	bytes int64
	start time.Duration
	sp    *traceSpan
}

// collBegin opens the bookkeeping for one collective call with the chosen
// algorithm: the decision counter, a trace span, and the timing baseline.
func (c *Comm) collBegin(kind collKind, alg CollAlg, bytes int64) *collOp {
	w := c.rk.w
	w.met.collChosen[kind][alg].Inc()
	sp := w.cfg.Tracer.Start(c.p.Now(), c.rk.actor, "coll", kind.String())
	sp.SetBytes(bytes)
	sp.SetDetail("alg %s", alg)
	return &collOp{c: c, kind: kind, alg: alg, bytes: bytes, start: c.p.Now(), sp: sp}
}

// end closes the call: span, latency histogram, and (on success, in
// adaptive mode) the EWMA feedback fold. It returns err for chaining.
func (op *collOp) end(err error) error {
	c := op.c
	w := c.rk.w
	op.sp.End(c.p.Now())
	w.met.collNS[op.kind].ObserveDuration(c.p.Now() - op.start)
	if err == nil && w.protocol().Coll == CollAuto {
		w.observeColl(op.kind, op.alg, op.bytes, c.p.Now()-op.start)
	}
	return err
}
