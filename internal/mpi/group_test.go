package mpi

import (
	"testing"

	"scimpich/internal/datatype"
)

func TestDupSeparatesTraffic(t *testing.T) {
	Run(DefaultConfig(2, 1), func(c *Comm) {
		d := c.Dup()
		if d.Rank() != c.Rank() || d.Size() != c.Size() {
			t.Errorf("dup changed rank/size: %d/%d", d.Rank(), d.Size())
		}
		// The same (src, tag) on the two communicators must not match
		// across: send on both, receive in swapped order.
		switch c.Rank() {
		case 0:
			c.Send([]byte{1}, 1, datatype.Byte, 1, 7)
			d.Send([]byte{2}, 1, datatype.Byte, 1, 7)
		case 1:
			buf := make([]byte, 1)
			d.Recv(buf, 1, datatype.Byte, 0, 7)
			if buf[0] != 2 {
				t.Errorf("dup recv got %d, want 2", buf[0])
			}
			c.Recv(buf, 1, datatype.Byte, 0, 7)
			if buf[0] != 1 {
				t.Errorf("world recv got %d, want 1", buf[0])
			}
		}
	})
}

func TestSplitByParity(t *testing.T) {
	const procs = 6
	Run(DefaultConfig(procs, 1), func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		if sub == nil {
			t.Fatal("split returned nil for valid color")
		}
		if sub.Size() != procs/2 {
			t.Fatalf("split size = %d, want %d", sub.Size(), procs/2)
		}
		wantRank := c.Rank() / 2
		if sub.Rank() != wantRank {
			t.Fatalf("world rank %d: sub rank = %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// Collective inside the subgroup: gather the world ranks.
		mine := []byte{byte(c.Rank())}
		all := make([]byte, sub.Size())
		sub.Allgather(mine, 1, datatype.Byte, all)
		for i, v := range all {
			want := byte(2*i + c.Rank()%2)
			if v != want {
				t.Fatalf("subgroup slot %d = %d, want %d", i, v, want)
			}
		}
	})
}

func TestSplitReverseKeyOrder(t *testing.T) {
	const procs = 4
	Run(DefaultConfig(procs, 1), func(c *Comm) {
		// Same color for all, key descending: ranks reverse.
		sub := c.Split(0, procs-c.Rank())
		if sub.Rank() != procs-1-c.Rank() {
			t.Errorf("world %d: reversed rank = %d, want %d", c.Rank(), sub.Rank(), procs-1-c.Rank())
		}
		// Point-to-point inside the subgroup uses local numbering.
		buf := []byte{byte(c.Rank())}
		in := make([]byte, 1)
		peer := sub.Size() - 1 - sub.Rank() // my own world rank's slot
		sub.Sendrecv(buf, 1, datatype.Byte, peer, 0, in, 1, datatype.Byte, peer, 0)
		if in[0] != byte(procs-1-c.Rank()) {
			t.Errorf("world %d: exchanged with %d, got %d", c.Rank(), peer, in[0])
		}
	})
}

func TestSplitUndefinedColor(t *testing.T) {
	Run(DefaultConfig(3, 1), func(c *Comm) {
		color := 0
		if c.Rank() == 2 {
			color = -1
		}
		sub := c.Split(color, 0)
		if c.Rank() == 2 {
			if sub != nil {
				t.Error("negative color should return nil communicator")
			}
			return
		}
		if sub == nil || sub.Size() != 2 {
			t.Fatalf("split lost members: %+v", sub)
		}
		sub.Barrier()
	})
}

func TestSplitStatusSourceIsLocal(t *testing.T) {
	const procs = 4
	Run(DefaultConfig(procs, 1), func(c *Comm) {
		sub := c.Split(c.Rank()%2, 0)
		if sub.Size() != 2 {
			t.Fatalf("size %d", sub.Size())
		}
		switch sub.Rank() {
		case 0:
			sub.Send([]byte{9}, 1, datatype.Byte, 1, 0)
		case 1:
			buf := make([]byte, 1)
			st := sub.Recv(buf, 1, datatype.Byte, AnySource, AnyTag)
			if st.Source != 0 {
				t.Errorf("status source = %d (group-local expected 0)", st.Source)
			}
		}
	})
}

func TestNestedSplit(t *testing.T) {
	const procs = 8
	Run(DefaultConfig(procs, 2), func(c *Comm) {
		half := c.Split(c.Rank()/4, c.Rank()) // two halves of 4
		quarter := half.Split(half.Rank()/2, half.Rank())
		if quarter.Size() != 2 {
			t.Fatalf("nested split size = %d, want 2", quarter.Size())
		}
		// Reduction within the quarter: sum of world ranks.
		recv := make([]byte, 8)
		quarter.Allreduce(Float64Bytes([]float64{float64(c.Rank())}), recv, 1, datatype.Float64, OpSum)
		base := (c.Rank() / 2) * 2
		want := float64(base + base + 1)
		if got := BytesFloat64(recv)[0]; got != want {
			t.Errorf("world %d: quarter sum = %g, want %g", c.Rank(), got, want)
		}
	})
}

func TestDupThenSplitContextsDistinct(t *testing.T) {
	Run(DefaultConfig(2, 1), func(c *Comm) {
		d := c.Dup()
		s := c.Split(0, c.Rank())
		ids := map[int]bool{c.ContextID(): true}
		for _, cc := range []*Comm{d, s} {
			if ids[cc.ContextID()] {
				t.Errorf("context id %d reused", cc.ContextID())
			}
			ids[cc.ContextID()] = true
		}
	})
}
