package mpi

import (
	"time"

	"scimpich/internal/nic"
	"scimpich/internal/sci"
	"scimpich/internal/shmem"
	"scimpich/internal/smi"
)

// SharedSeg is memory a rank has allocated for direct remote access
// (MPI_Alloc_mem backed by the SCI driver / an intra-node shared region).
// One backing array is visible through all transports.
type SharedSeg struct {
	w      *World
	owner  int // world rank
	buf    []byte
	seg    *sci.Segment  // non-nil on multi-node SCI clusters
	nicBuf *nic.Buffer   // non-nil on NIC clusters
	region *shmem.Region // intra-node view
}

// AllocShared allocates size bytes of remotely accessible memory owned by
// the calling rank.
func (c *Comm) AllocShared(size int64) *SharedSeg {
	return c.w.allocShared(c.WorldRank(), size)
}

// allocShared builds a shared segment owned by a world rank (also used by
// the collective engine for its one-sided windows).
func (w *World) allocShared(owner int, size int64) *SharedSeg {
	s := &SharedSeg{w: w, owner: owner, buf: make([]byte, size)}
	node := w.ranks[owner].node
	s.region = w.buses[node].AllocBacked(s.buf)
	if w.ic != nil {
		s.seg = w.ic.Node(node).ExportBuffer(s.buf)
	}
	if w.nicNet != nil {
		s.nicBuf = w.nicNet.AllocBacked(node, s.buf)
	}
	return s
}

// Owner returns the owning rank.
func (s *SharedSeg) Owner() int { return s.owner }

// Size returns the allocation size.
func (s *SharedSeg) Size() int64 { return int64(len(s.buf)) }

// Bytes returns the owner's raw view (no cost accounting; owner-side
// initialization only).
func (s *SharedSeg) Bytes() []byte { return s.buf }

// MapFrom returns the access view of the segment for the given rank: the
// local region for the owner and node-local peers, an SCI mapping for
// remote peers.
func (s *SharedSeg) MapFrom(rank int) smi.Mem {
	w := s.w
	fromNode := w.ranks[rank].node
	ownerNode := w.ranks[s.owner].node
	if fromNode == ownerNode {
		return smi.FromShm(s.region)
	}
	if w.nicNet != nil {
		return smi.FromNIC(w.nicNet.View(fromNode, s.nicBuf))
	}
	return smi.FromSCI(w.ic.Node(fromNode).MustImport(ownerNode, s.seg.ID()))
}

// LockLatency returns the one-way cost of a shared-memory lock operation
// between two ranks: a cache-coherent flag exchange inside a node, a remote
// read-modify-write across the ring (the techniques of the paper's [14]).
func (w *World) LockLatency(owner, from int) time.Duration {
	if w.ranks[owner].node == w.ranks[from].node {
		return 600 * time.Nanosecond
	}
	if w.nicNet != nil {
		// Message-based lock: a request/grant round trip.
		return 2 * w.cfg.NIC.Latency
	}
	cfg := &w.cfg.SCI
	// A remote lock costs a stalled read plus a posted write.
	return cfg.PIOReadStall + cfg.PIOWriteLatency
}

// BarrierLatency returns the per-crossing cost of a shared-memory barrier
// spanning the given number of ranks.
func (w *World) BarrierLatency() time.Duration {
	if w.cfg.Nodes == 1 {
		return time.Microsecond
	}
	return 2 * w.cfg.SCI.PIOWriteLatency
}
