package mpi

import (
	"testing"

	"scimpich/internal/datatype"
)

func TestSignatureMismatchPanics(t *testing.T) {
	// Doubles sent, ints received: an MPI type-matching error.
	defer func() {
		if recover() == nil {
			t.Error("mismatched type signatures did not panic")
		}
	}()
	runPair(t, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(make([]byte, 64), 8, datatype.Float64, 1, 0)
		case 1:
			c.Recv(make([]byte, 64), 16, datatype.Int32, 0, 0)
		}
	})
}

func TestByteWildcardAccepted(t *testing.T) {
	// Raw byte receives of typed sends remain legal (the wildcard idiom).
	ty := datatype.Vector(8, 2, 4, datatype.Float64).Commit()
	src := fill(int(ty.Extent()) + 8)
	runPair(t, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(src, 1, ty, 1, 0)
		case 1:
			c.Recv(make([]byte, ty.Size()), int(ty.Size()), datatype.Byte, 0, 0)
		}
	})
}

func TestMatchingLayoutsDifferentShapesAccepted(t *testing.T) {
	// Strided send, contiguous receive of the same element sequence: legal.
	v := datatype.Vector(8, 2, 4, datatype.Float64).Commit()
	ct := datatype.Contiguous(16, datatype.Float64).Commit()
	src := fill(int(v.Extent()) + 8)
	runPair(t, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(src, 1, v, 1, 0)
		case 1:
			c.Recv(make([]byte, ct.Size()), 1, ct, 0, 0)
		}
	})
}
