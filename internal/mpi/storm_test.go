package mpi

import (
	"bytes"
	"math/rand"
	"testing"

	"scimpich/internal/datatype"
)

// Message-storm property tests: many messages with randomized sizes, tags
// and posting orders must all be delivered exactly once with intact
// contents, regardless of which protocol (short/eager/rendezvous) each one
// takes and in which order the receives are posted.

func TestStormRandomSizesAndOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		nmsgs := rng.Intn(20) + 5
		sizes := make([]int, nmsgs)
		for i := range sizes {
			// Cover all three protocol regimes.
			switch rng.Intn(3) {
			case 0:
				sizes[i] = rng.Intn(120) + 1 // short
			case 1:
				sizes[i] = rng.Intn(12<<10) + 256 // eager
			default:
				sizes[i] = rng.Intn(256<<10) + 20<<10 // rendezvous
			}
		}
		// The receiver posts in a random permutation, by distinct tags.
		perm := rng.Perm(nmsgs)
		Run(DefaultConfig(2, 1), func(c *Comm) {
			switch c.Rank() {
			case 0:
				for i := 0; i < nmsgs; i++ {
					payload := bytes.Repeat([]byte{byte(i + 1)}, sizes[i])
					c.Send(payload, sizes[i], datatype.Byte, 1, i)
				}
			case 1:
				reqs := make([]*Request, nmsgs)
				bufs := make([][]byte, nmsgs)
				for _, i := range perm {
					bufs[i] = make([]byte, sizes[i])
					reqs[i] = c.Irecv(bufs[i], sizes[i], datatype.Byte, 0, i)
				}
				sts := c.Waitall(reqs)
				for i := range sts {
					if sts[i].Bytes != int64(sizes[i]) {
						t.Errorf("trial %d msg %d: %d bytes, want %d", trial, i, sts[i].Bytes, sizes[i])
					}
					for _, b := range bufs[i] {
						if b != byte(i+1) {
							t.Fatalf("trial %d msg %d corrupted", trial, i)
						}
					}
				}
			}
		})
	}
}

func TestStormAllToAllTraffic(t *testing.T) {
	// Every rank sends to every other rank simultaneously; a full matrix
	// of messages with mixed transports on an SMP cluster.
	const procs = 6
	const size = 24 << 10
	Run(DefaultConfig(3, 2), func(c *Comm) {
		me := c.Rank()
		var reqs []*Request
		bufs := make([][]byte, procs)
		for r := 0; r < procs; r++ {
			if r == me {
				continue
			}
			bufs[r] = make([]byte, size)
			reqs = append(reqs, c.Irecv(bufs[r], size, datatype.Byte, r, 0))
		}
		for r := 0; r < procs; r++ {
			if r == me {
				continue
			}
			payload := bytes.Repeat([]byte{byte(me + 1)}, size)
			reqs = append(reqs, c.Isend(payload, size, datatype.Byte, r, 0))
		}
		c.Waitall(reqs)
		for r := 0; r < procs; r++ {
			if r == me {
				continue
			}
			if bufs[r][0] != byte(r+1) || bufs[r][size-1] != byte(r+1) {
				t.Errorf("rank %d: message from %d corrupted", me, r)
			}
		}
	})
}

func TestStormBidirectionalRendezvous(t *testing.T) {
	// Simultaneous large sends in both directions on the same pair must
	// not deadlock (separate per-direction rendezvous state).
	const size = 512 << 10
	Run(DefaultConfig(2, 1), func(c *Comm) {
		peer := 1 - c.Rank()
		out := bytes.Repeat([]byte{byte(c.Rank() + 1)}, size)
		in := make([]byte, size)
		r := c.Irecv(in, size, datatype.Byte, peer, 0)
		c.Send(out, size, datatype.Byte, peer, 0)
		r.Wait()
		if in[0] != byte(peer+1) || in[size-1] != byte(peer+1) {
			t.Error("bidirectional rendezvous corrupted data")
		}
	})
}

func TestStormManySmallToOneReceiver(t *testing.T) {
	// Incast: every rank floods rank 0 with short messages; ordering per
	// pair must hold and nothing may be lost.
	const procs = 8
	const per = 25
	Run(DefaultConfig(4, 2), func(c *Comm) {
		if c.Rank() == 0 {
			counts := make([]int, procs)
			buf := make([]byte, 2)
			for i := 0; i < (procs-1)*per; i++ {
				st := c.Recv(buf, 2, datatype.Byte, AnySource, AnyTag)
				src := st.Source
				if int(buf[0]) != src || int(buf[1]) != counts[src] {
					t.Fatalf("message from %d out of order: seq %d, want %d", src, buf[1], counts[src])
				}
				counts[src]++
			}
			for r := 1; r < procs; r++ {
				if counts[r] != per {
					t.Errorf("rank %d delivered %d messages, want %d", r, counts[r], per)
				}
			}
			return
		}
		for i := 0; i < per; i++ {
			c.Send([]byte{byte(c.Rank()), byte(i)}, 2, datatype.Byte, 0, i)
		}
	})
}
