package mpi_test

import (
	"fmt"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
)

// A two-node cluster sending one strided vector from rank 0 to rank 1.
func Example() {
	ty := datatype.Vector(16, 2, 4, datatype.Float64).Commit()
	mpi.Run(mpi.DefaultConfig(2, 1), func(c *mpi.Comm) {
		buf := make([]byte, ty.Extent())
		switch c.Rank() {
		case 0:
			c.Send(buf, 1, ty, 1, 0)
		case 1:
			st := c.Recv(buf, 1, ty, 0, 0)
			fmt.Printf("received %d bytes from rank %d\n", st.Bytes, st.Source)
		}
	})
	// Output:
	// received 256 bytes from rank 0
}

func ExampleComm_Allreduce() {
	mpi.Run(mpi.DefaultConfig(4, 1), func(c *mpi.Comm) {
		recv := make([]byte, 8)
		c.Allreduce(mpi.Float64Bytes([]float64{float64(c.Rank())}), recv, 1, datatype.Float64, mpi.OpSum)
		if c.Rank() == 0 {
			fmt.Println("sum of ranks:", mpi.BytesFloat64(recv)[0])
		}
	})
	// Output:
	// sum of ranks: 6
}

func ExampleComm_Split() {
	mpi.Run(mpi.DefaultConfig(4, 1), func(c *mpi.Comm) {
		evens := c.Split(c.Rank()%2, c.Rank())
		if c.Rank() == 0 {
			fmt.Printf("world rank %d is rank %d of %d in its half\n",
				c.Rank(), evens.Rank(), evens.Size())
		}
	})
	// Output:
	// world rank 0 is rank 0 of 2 in its half
}
