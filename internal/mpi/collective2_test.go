package mpi

import (
	"testing"

	"scimpich/internal/datatype"
)

func TestAllgatherRing(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 5, 8} {
		Run(DefaultConfig(procs, 1), func(c *Comm) {
			mine := []byte{byte(c.Rank() * 3), byte(c.Rank()*3 + 1)}
			all := make([]byte, 2*procs)
			c.Allgather(mine, 2, datatype.Byte, all)
			for r := 0; r < procs; r++ {
				if all[2*r] != byte(r*3) || all[2*r+1] != byte(r*3+1) {
					t.Fatalf("procs=%d rank=%d: slot %d = %v", procs, c.Rank(), r, all[2*r:2*r+2])
				}
			}
		})
	}
}

func TestAlltoallPairwise(t *testing.T) {
	const procs = 4
	Run(DefaultConfig(procs, 1), func(c *Comm) {
		me := c.Rank()
		send := make([]byte, procs)
		for i := range send {
			send[i] = byte(me*10 + i) // value encodes (sender, receiver)
		}
		recv := make([]byte, procs)
		c.Alltoall(send, 1, datatype.Byte, recv)
		for i := range recv {
			if recv[i] != byte(i*10+me) {
				t.Fatalf("rank %d slot %d = %d, want %d", me, i, recv[i], i*10+me)
			}
		}
	})
}

func TestScanPrefixSums(t *testing.T) {
	const procs = 6
	Run(DefaultConfig(procs, 1), func(c *Comm) {
		mine := Float64Bytes([]float64{float64(c.Rank() + 1), 1})
		recv := make([]byte, 16)
		c.Scan(mine, recv, 2, datatype.Float64, OpSum)
		got := BytesFloat64(recv)
		want0 := 0.0
		for r := 0; r <= c.Rank(); r++ {
			want0 += float64(r + 1)
		}
		if got[0] != want0 || got[1] != float64(c.Rank()+1) {
			t.Errorf("rank %d: scan = %v, want [%g %d]", c.Rank(), got, want0, c.Rank()+1)
		}
	})
}

func TestScanSingleRank(t *testing.T) {
	Run(DefaultConfig(1, 1), func(c *Comm) {
		recv := make([]byte, 8)
		c.Scan(Float64Bytes([]float64{7}), recv, 1, datatype.Float64, OpSum)
		if BytesFloat64(recv)[0] != 7 {
			t.Error("single-rank scan wrong")
		}
	})
}

func TestReduceScatterBlock(t *testing.T) {
	const procs = 4
	Run(DefaultConfig(procs, 1), func(c *Comm) {
		// Everyone contributes block r = [rank + r*100].
		send := make([]float64, procs)
		for r := range send {
			send[r] = float64(c.Rank() + r*100)
		}
		recv := make([]byte, 8)
		c.ReduceScatterBlock(Float64Bytes(send), recv, 1, datatype.Float64, OpSum)
		got := BytesFloat64(recv)[0]
		want := float64(0+1+2+3) + float64(procs*c.Rank()*100)
		if got != want {
			t.Errorf("rank %d: reduce-scatter = %g, want %g", c.Rank(), got, want)
		}
	})
}

func TestWaitall(t *testing.T) {
	Run(DefaultConfig(2, 1), func(c *Comm) {
		const n = 8
		switch c.Rank() {
		case 0:
			var reqs []*Request
			for i := 0; i < n; i++ {
				reqs = append(reqs, c.Isend([]byte{byte(i)}, 1, datatype.Byte, 1, i))
			}
			c.Waitall(reqs)
		case 1:
			bufs := make([][]byte, n)
			var reqs []*Request
			for i := 0; i < n; i++ {
				bufs[i] = make([]byte, 1)
				reqs = append(reqs, c.Irecv(bufs[i], 1, datatype.Byte, 0, i))
			}
			sts := c.Waitall(reqs)
			for i, st := range sts {
				if st == nil || st.Bytes != 1 || bufs[i][0] != byte(i) {
					t.Fatalf("request %d: status %+v buf %v", i, st, bufs[i])
				}
			}
		}
	})
}

func TestAllgatherOnSMPCluster(t *testing.T) {
	// Mixed transports: the ring algorithm crosses node boundaries.
	Run(DefaultConfig(3, 2), func(c *Comm) {
		mine := []byte{byte(c.Rank() + 1)}
		all := make([]byte, c.Size())
		c.Allgather(mine, 1, datatype.Byte, all)
		for r := 0; r < c.Size(); r++ {
			if all[r] != byte(r+1) {
				t.Fatalf("rank %d: allgather slot %d = %d", c.Rank(), r, all[r])
			}
		}
	})
}

func TestScanNonCommutativeOrdering(t *testing.T) {
	// Prefix products depend on order; verify left-to-right evaluation.
	const procs = 4
	Run(DefaultConfig(procs, 1), func(c *Comm) {
		mine := Float64Bytes([]float64{float64(c.Rank() + 2)})
		recv := make([]byte, 8)
		c.Scan(mine, recv, 1, datatype.Float64, OpProd)
		want := 1.0
		for r := 0; r <= c.Rank(); r++ {
			want *= float64(r + 2)
		}
		if got := BytesFloat64(recv)[0]; got != want {
			t.Errorf("rank %d: prefix product = %g, want %g", c.Rank(), got, want)
		}
	})
}
