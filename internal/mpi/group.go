package mpi

import (
	"fmt"
	"sort"
)

// Communicator management: Dup and Split create communicators with their
// own context (so their traffic never matches another communicator's) and,
// for Split, their own process group with translated ranks.

// worldRank translates a group-local rank to a world rank.
func (c *Comm) worldRank(r int) int {
	if c.group == nil {
		return r
	}
	if r < 0 || r >= len(c.group) {
		panic(fmt.Sprintf("mpi: rank %d outside communicator of size %d", r, len(c.group)))
	}
	return c.group[r]
}

// localRank translates a world rank into this communicator's numbering
// (-1 if the rank is not a member).
func (c *Comm) localRank(world int) int {
	if c.group == nil {
		return world
	}
	for i, w := range c.group {
		if w == world {
			return i
		}
	}
	return -1
}

// nextCtxPair allocates a fresh (user, collective) context pair. All
// members call the constructor collectively in the same order, so the
// world-level counter yields identical values everywhere.
func (w *World) nextCtxPair() (int, int) {
	w.ctxCounter++
	base := 16 + 2*w.ctxCounter
	return base, base + 1
}

// Dup returns a communicator with the same group but a separate
// communication context (MPI_Comm_dup). Collective over the communicator.
func (c *Comm) Dup() *Comm {
	// Key the exchange by this rank's own collective-call sequence number:
	// matched collective calls have matching indices on every member, with
	// no reads of shared mutable state before the barrier.
	key := fmt.Sprintf("mpi.dup.%d.%d", c.ctx, c.w.callSeq("dup", c.ctx, c.rk.id))
	if c.Rank() == 0 {
		user, coll := c.w.nextCtxPair()
		c.w.Deposit(key, c.worldRank(0), [2]int{user, coll})
	}
	c.Barrier()
	pair := c.w.Collect(key)[c.worldRank(0)].([2]int)
	dup := *c
	dup.ctx = pair[0]
	dup.collCtx = pair[1]
	c.Barrier()
	return &dup
}

// Split partitions the communicator by color (MPI_Comm_split): every rank
// passing the same color lands in a new communicator holding those ranks,
// ordered by key (ties broken by old rank). A negative color returns nil
// (MPI_UNDEFINED).
func (c *Comm) Split(color, key int) *Comm {
	type entry struct{ color, key, world int }
	tag := fmt.Sprintf("mpi.split.%d.%d", c.ctx, c.w.callSeq("split", c.ctx, c.rk.id))
	c.w.Deposit(tag, c.worldRank(c.Rank()), entry{color, key, c.worldRank(c.Rank())})
	c.Barrier()
	var mine []entry
	for _, r := range c.groupRanks() {
		e := c.w.Collect(tag)[r].(entry)
		if e.color == color && color >= 0 {
			mine = append(mine, e)
		}
	}
	// Allocate one context pair per distinct color, in ascending color
	// order, so every member computes the same contexts.
	colors := map[int]bool{}
	for _, r := range c.groupRanks() {
		e := c.w.Collect(tag)[r].(entry)
		if e.color >= 0 {
			colors[e.color] = true
		}
	}
	ordered := make([]int, 0, len(colors))
	for col := range colors {
		ordered = append(ordered, col)
	}
	sort.Ints(ordered)
	ctxByColor := map[int][2]int{}
	ctxKey := tag + ".ctx"
	if c.Rank() == 0 {
		pairs := make(map[int][2]int, len(ordered))
		for _, col := range ordered {
			u, coll := c.w.nextCtxPair()
			pairs[col] = [2]int{u, coll}
		}
		c.w.Deposit(ctxKey, c.worldRank(0), pairs)
	}
	c.Barrier()
	allPairs := c.w.Collect(ctxKey)[c.worldRank(0)].(map[int][2]int)
	c.Barrier()
	if color < 0 {
		return nil
	}
	ctxByColor = allPairs

	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].world < mine[j].world
	})
	group := make([]int, len(mine))
	for i, e := range mine {
		group[i] = e.world
	}
	sub := *c
	sub.group = group
	sub.ctx = ctxByColor[color][0]
	sub.collCtx = ctxByColor[color][1]
	return &sub
}

// groupRanks returns the world ranks of this communicator's members.
func (c *Comm) groupRanks() []int {
	if c.group != nil {
		return c.group
	}
	all := make([]int, c.w.size)
	for i := range all {
		all[i] = i
	}
	return all
}
