package mpi

import (
	"fmt"
	"sync/atomic"

	"scimpich/internal/bufpool"
	"scimpich/internal/datatype"
	"scimpich/internal/memmodel"
	"scimpich/internal/obs/flight"
	"scimpich/internal/pack"
	"scimpich/internal/sim"
)

// device is the per-rank communication engine: a daemon process that
// receives control envelopes (the moral equivalent of SCI-MPICH's control
// packet queues plus remote handler), performs message matching and
// executes the receive side of the short/eager/rendezvous protocols.
type device struct {
	rk    *rank
	actor string // cached "dev<i>"
	inbox *sim.Chan
	p     *sim.Proc

	posted     []*recvReq
	unexpected []*envelope
	probes     []*probeReq
	rdv        map[int64]*rdvRecv

	// lastSeq[src] is the highest envelope sequence number accepted from
	// src; lower-or-equal arrivals are injected duplicates and dropped
	// (exactly-once delivery under retransmission faults).
	lastSeq []int64

	// oscHandler serves envOSC requests (registered by the osc package:
	// the remote handler that emulates direct access for private windows).
	oscHandler func(p *sim.Proc, env *envelope)

	stats devStats
}

// DeviceStats is a point-in-time snapshot of one rank's protocol activity
// (see World.Stats).
type DeviceStats struct {
	ShortRecvd  int64
	EagerRecvd  int64
	RdvRecvd    int64
	Unexpected  int64
	BytesRecvd  int64
	OSCRequests int64

	// Duplicates counts injected retransmissions dropped by the receive
	// side (sequence check or stale rendezvous chunk).
	Duplicates int64
	// SendRetries counts sender-side retransmissions of failed data
	// deposits (eager slots, rendezvous chunks).
	SendRetries int64
	// SendTimeouts counts expired rendezvous control-traffic watchdogs.
	SendTimeouts int64
	// RdvCancels counts rendezvous transfers torn down on the receive side
	// after the sender abandoned them (envRdvCancel).
	RdvCancels int64
}

// devStats is the live counter set behind DeviceStats. Counters are
// atomics: they are bumped both by the device daemon and by sender procs
// (retries, watchdogs), and read from ordinary goroutines after a run.
type devStats struct {
	shortRecvd   atomic.Int64
	eagerRecvd   atomic.Int64
	rdvRecvd     atomic.Int64
	unexpected   atomic.Int64
	bytesRecvd   atomic.Int64
	oscRequests  atomic.Int64
	duplicates   atomic.Int64
	sendRetries  atomic.Int64
	sendTimeouts atomic.Int64
	rdvCancels   atomic.Int64
}

func (s *devStats) snapshot() DeviceStats {
	return DeviceStats{
		ShortRecvd:   s.shortRecvd.Load(),
		EagerRecvd:   s.eagerRecvd.Load(),
		RdvRecvd:     s.rdvRecvd.Load(),
		Unexpected:   s.unexpected.Load(),
		BytesRecvd:   s.bytesRecvd.Load(),
		OSCRequests:  s.oscRequests.Load(),
		Duplicates:   s.duplicates.Load(),
		SendRetries:  s.sendRetries.Load(),
		SendTimeouts: s.sendTimeouts.Load(),
		RdvCancels:   s.rdvCancels.Load(),
	}
}

// rdvRecv tracks one in-progress rendezvous receive.
type rdvRecv struct {
	req       *recvReq
	env       *envelope // the original request
	mode      rdvMode
	received  int64
	nextChunk int
	// cur resumes the ff unpack across chunks (rdvFF mode only): each chunk
	// continues where the previous one stopped instead of re-running
	// find_position over the leaf list.
	cur *pack.Cursor
}

// rdvMode selects the data engine for a rendezvous transfer.
type rdvMode int

const (
	rdvContig  rdvMode = iota // plain contiguous copy
	rdvFF                     // direct_pack_ff on both sides
	rdvGeneric                // pack / transfer / unpack baseline
)

func newDevice(rk *rank) *device {
	d := &device{
		rk:      rk,
		actor:   fmt.Sprintf("dev%d", rk.id),
		inbox:   sim.NewChan(1 << 20),
		rdv:     make(map[int64]*rdvRecv),
		lastSeq: make([]int64, rk.w.size),
	}
	d.p = rk.w.host.GoDaemon(d.actor, d.run)
	return d
}

// mem returns the node's memory-hierarchy model.
func (d *device) mem() *memmodel.Model { return d.rk.w.cfg.Shm.Mem }

func (d *device) run(p *sim.Proc) {
	for {
		env := p.Recv(d.inbox).(*envelope)
		p.Sleep(d.rk.w.protocol().HandlerLatency)
		switch env.kind {
		case envLocalPost:
			d.handlePost(p, env.post)
		case envLocalProbe:
			d.handleProbe(env.probe)
		case envShort, envEager, envRdvReq:
			d.handleIncoming(p, env)
		case envRdvData:
			d.handleRdvData(p, env)
		case envRdvCancel:
			d.handleRdvCancel(p, env)
		case envRdvCTS, envRdvAck:
			// Sender-side control: forward to the waiting send operation.
			sim.Post(env.reply, env)
		case envEagerAck:
			// Return the eager slot credit to this rank's sender state.
			sim.Post(d.rk.out[env.src].credits, env.slot)
		case envOSC:
			d.stats.oscRequests.Add(1)
			if d.oscHandler == nil {
				panic("mpi: one-sided request with no handler registered")
			}
			d.oscHandler(p, env)
		case envOSCReply:
			sim.Post(env.reply, env)
		default:
			panic(fmt.Sprintf("mpi: device %d: unexpected envelope %v", d.rk.id, env.kind))
		}
	}
}

// handlePost processes a locally posted receive.
func (d *device) handlePost(p *sim.Proc, req *recvReq) {
	for i, env := range d.unexpected {
		if req.matches(env.src, env.tag, env.ctx) {
			d.unexpected = append(d.unexpected[:i], d.unexpected[i+1:]...)
			d.deliver(p, req, env)
			return
		}
	}
	d.posted = append(d.posted, req)
}

// handleIncoming processes a fresh message-bearing envelope.
func (d *device) handleIncoming(p *sim.Proc, env *envelope) {
	if env.seq != 0 {
		if env.seq <= d.lastSeq[env.src] {
			d.stats.duplicates.Add(1)
			d.rk.w.cfg.Tracer.Record(p.Now(), d.actor, "fault",
				"dropped duplicate %v from %d (seq %d)", env.kind, env.src, env.seq)
			d.rk.fl.Record(p.Now(), flight.KPacketDrop, int64(env.kind), int64(env.src), flight.DropDuplicate, 0)
			return
		}
		d.lastSeq[env.src] = env.seq
	}
	for i, req := range d.posted {
		if req.matches(env.src, env.tag, env.ctx) {
			d.posted = append(d.posted[:i], d.posted[i+1:]...)
			d.deliver(p, req, env)
			return
		}
	}
	d.stats.unexpected.Add(1)
	d.unexpected = append(d.unexpected, env)
	// Wake blocking probes that match the new arrival.
	for i, pr := range d.probes {
		if pr.matches(env.src, env.tag, env.ctx) {
			d.probes = append(d.probes[:i], d.probes[i+1:]...)
			pr.done.Complete(&Status{Source: env.src, Tag: env.tag, Bytes: env.bytes})
			break
		}
	}
}

// handleProbe answers a probe from the unexpected queue.
func (d *device) handleProbe(pr *probeReq) {
	for _, env := range d.unexpected {
		if pr.matches(env.src, env.tag, env.ctx) {
			pr.done.Complete(&Status{Source: env.src, Tag: env.tag, Bytes: env.bytes})
			return
		}
	}
	if pr.immediate {
		pr.done.Complete(nil)
		return
	}
	d.probes = append(d.probes, pr)
}

// deliver executes the receive side of a matched message.
func (d *device) deliver(p *sim.Proc, req *recvReq, env *envelope) {
	tr := d.rk.w.cfg.Tracer
	tr.Record(p.Now(), d.actor, "recv",
		"<- %d tag %d: %d bytes via %v", env.src, env.tag, env.bytes, env.kind)
	d.rk.fl.Record(p.Now(), flight.KRecvMatch, int64(env.src), int64(env.tag), env.bytes, int64(env.kind))
	d.checkSignature(req, env)
	switch env.kind {
	case envShort:
		sp := tr.Start(p.Now(), d.actor, "recv", "short")
		sp.SetBytes(env.bytes)
		d.deliverShort(p, req, env)
		sp.End(p.Now())
	case envEager:
		sp := tr.Start(p.Now(), d.actor, "recv", "eager")
		sp.SetBytes(env.bytes)
		d.deliverEager(p, req, env)
		sp.End(p.Now())
	case envRdvReq:
		d.startRendezvous(p, req, env)
	default:
		panic(fmt.Sprintf("mpi: cannot deliver %v", env.kind))
	}
}

// capacity returns the receive capacity in bytes and checks truncation.
func (d *device) capacity(req *recvReq, incoming int64) {
	cap := req.dt.Size() * int64(req.count)
	if incoming > cap {
		panic(fmt.Sprintf("mpi: rank %d: message of %d bytes truncates receive of %d (src %d tag %d)",
			d.rk.id, incoming, cap, req.src, req.tag))
	}
}

// checkSignature verifies MPI's type-matching rule: the send and receive
// type signatures must agree, with pure-byte signatures acting as
// wildcards (envelope sig 0).
func (d *device) checkSignature(req *recvReq, env *envelope) {
	if env.sig == 0 {
		return
	}
	sig, byteOnly := req.dt.Signature()
	if byteOnly || sig == env.sig {
		return
	}
	panic(fmt.Sprintf("mpi: rank %d: type signature mismatch receiving from %d tag %d (%s does not match the send type)",
		d.rk.id, env.src, env.tag, req.dt))
}

// deliverShort unpacks an inline payload.
func (d *device) deliverShort(p *sim.Proc, req *recvReq, env *envelope) {
	d.capacity(req, env.bytes)
	d.stats.shortRecvd.Add(1)
	d.stats.bytesRecvd.Add(env.bytes)
	if req.dt.Contiguous() {
		p.Sleep(d.mem().CopyCost(env.bytes, env.bytes, env.bytes))
		copy(req.buf, env.payload)
	} else {
		_, st := pack.GenericUnpack(req.buf, env.payload, req.dt, req.count, 0, env.bytes)
		d.chargeBlocks(p, st, false)
	}
	// Last read of the inline payload: return the pooled buffer. Duplicate
	// envelopes sharing the pointer are dropped by the sequence check before
	// reaching here.
	env.payloadBuf.Put()
	env.payload, env.payloadBuf = nil, nil
	req.done.Complete(&Status{Source: env.src, Tag: env.tag, Bytes: env.bytes})
}

// deliverEager copies data out of the eager slot and returns the credit.
func (d *device) deliverEager(p *sim.Proc, req *recvReq, env *envelope) {
	d.capacity(req, env.bytes)
	d.stats.eagerRecvd.Add(1)
	d.stats.bytesRecvd.Add(env.bytes)
	mem := d.rk.ports[env.src].mem
	off := d.rk.w.eagerOff(env.slot)
	if req.dt.Contiguous() {
		mem.Read(p, off, req.buf[:env.bytes])
	} else {
		slot := mem.Bytes()[off : off+env.bytes]
		_, st := pack.GenericUnpack(req.buf, slot, req.dt, req.count, 0, env.bytes)
		d.chargeBlocks(p, st, false)
	}
	d.rk.w.ring(p, d.rk.id, env.src, &envelope{
		kind: envEagerAck, src: d.rk.id, dst: env.src, slot: env.slot,
	}, false)
	req.done.Complete(&Status{Source: env.src, Tag: env.tag, Bytes: env.bytes})
}

// startRendezvous negotiates the transfer mode and grants the sender the
// rendezvous buffer.
func (d *device) startRendezvous(p *sim.Proc, req *recvReq, env *envelope) {
	d.capacity(req, env.bytes)
	d.stats.rdvRecvd.Add(1)
	mode := rdvGeneric
	switch {
	case req.dt.Contiguous():
		// The sender may still be non-contiguous; it packs (directly, if
		// it can) and we receive a plain byte stream.
		mode = rdvContig
	case d.rk.w.protocol().UseFF && env.fingerprt == req.dt.Flat().Fingerprint() &&
		req.dt.Flat().Size > 0 && d.ffBlockOK(req.dt):
		mode = rdvFF
	}
	if env.bytes == 0 {
		// A zero-byte synchronous send: the CTS itself completes it.
		d.rk.w.ring(p, d.rk.id, env.src, &envelope{
			kind: envRdvCTS, src: d.rk.id, dst: env.src,
			reqID: env.reqID, chunk: int(mode), reply: env.reply,
		}, false)
		req.done.Complete(&Status{Source: env.src, Tag: env.tag, Bytes: 0})
		return
	}
	st := &rdvRecv{req: req, env: env, mode: mode}
	if mode == rdvFF {
		st.cur = pack.NewCursor(req.dt, req.count)
	}
	d.rdv[env.reqID] = st
	d.rk.fl.Record(p.Now(), flight.KRdvCTS, int64(env.src), env.reqID, int64(mode), 0)
	d.rk.w.ring(p, d.rk.id, env.src, &envelope{
		kind: envRdvCTS, src: d.rk.id, dst: env.src,
		reqID: env.reqID, chunk: int(mode), reply: env.reply,
	}, false)
}

// ffBlockOK applies the FFMinBlock policy.
func (d *device) ffBlockOK(t *datatype.Type) bool {
	min := d.rk.w.protocol().FFMinBlock
	if min <= 0 {
		return true
	}
	f := t.Flat()
	if len(f.Leaves) == 0 {
		return false
	}
	avg := f.Size / leafCopies(f)
	return avg >= min
}

func leafCopies(f *datatype.Flat) int64 {
	var n int64
	for i := range f.Leaves {
		n += f.Leaves[i].Copies()
	}
	if n == 0 {
		return 1
	}
	return n
}

// handleRdvData drains one rendezvous chunk into the user buffer.
func (d *device) handleRdvData(p *sim.Proc, env *envelope) {
	st, ok := d.rdv[env.reqID]
	if !ok || env.chunk < st.nextChunk {
		// A duplicated chunk announcement: either the transfer already
		// completed (request gone) or the chunk was already drained. Drop
		// it without a second ack — the sender counted the first one.
		d.stats.duplicates.Add(1)
		d.rk.w.cfg.Tracer.Record(p.Now(), d.actor, "fault",
			"dropped duplicate rendezvous chunk %d (req %d) from %d", env.chunk, env.reqID, env.src)
		return
	}
	tr := d.rk.w.cfg.Tracer
	mem := d.rk.ports[env.src].mem
	off := d.rk.w.rdvOff(env.chunk)
	skip := st.received
	n := env.chunkLen
	csp := tr.Start(p.Now(), d.actor, "recv", "rdv-chunk")
	csp.SetBytes(n)
	switch st.mode {
	case rdvContig:
		mem.Read(p, off, st.req.buf[skip:skip+n])
	case rdvFF:
		usp := tr.Start(p.Now(), d.actor, "pack", "ff_unpack")
		usp.SetBytes(n)
		slot := mem.Bytes()[off : off+n]
		// The cursor resumes at skip from the previous chunk; Seek is free
		// on the sequential continuation and only pays find_position if a
		// chunk was replayed.
		st.cur.SeekTo(skip)
		_, pst := st.cur.Unpack(st.req.buf, slot, n)
		d.chargeBlocks(p, pst, true)
		usp.End(p.Now())
	case rdvGeneric:
		// Baseline: copy the chunk out of the buffer, then unpack locally
		// (two passes over the data — figure 4, top).
		usp := tr.Start(p.Now(), d.actor, "pack", "generic_unpack")
		usp.SetBytes(n)
		scratch := bufpool.Get(int(n))
		mem.Read(p, off, scratch.B)
		_, pst := pack.GenericUnpack(st.req.buf, scratch.B, st.req.dt, st.req.count, skip, n)
		d.chargeBlocks(p, pst, false)
		scratch.Put()
		usp.End(p.Now())
	}
	csp.End(p.Now())
	st.received += n
	st.nextChunk++
	d.stats.bytesRecvd.Add(n)
	tr.Record(p.Now(), d.actor, "rdv",
		"chunk %d (%d bytes) from %d, mode %d", env.chunk, n, env.src, st.mode)
	d.rk.fl.Record(p.Now(), flight.KRdvChunk, int64(env.src), env.reqID, n, st.received)
	d.rk.w.ring(p, d.rk.id, env.src, &envelope{
		kind: envRdvAck, src: d.rk.id, dst: env.src,
		reqID: env.reqID, chunk: env.chunk, reply: env.reply,
	}, false)
	if st.received >= st.env.bytes {
		delete(d.rdv, env.reqID)
		d.rk.fl.Record(p.Now(), flight.KRdvDone, int64(env.src), env.reqID, st.env.bytes, 0)
		st.req.done.Complete(&Status{Source: st.env.src, Tag: st.env.tag, Bytes: st.env.bytes})
	}
}

// handleRdvCancel tears down an abandoned rendezvous: the sender gave up
// after a permanent deposit failure, so the transfer state is freed and
// the posted receive fails with a typed *CancelledError instead of waiting
// for the watchdog. Cancels for unknown requests (already completed, or a
// request packet that never arrived) are ignored.
func (d *device) handleRdvCancel(p *sim.Proc, env *envelope) {
	st, ok := d.rdv[env.reqID]
	if !ok {
		d.rk.w.cfg.Tracer.Record(p.Now(), d.actor, "fault",
			"ignoring cancel for unknown rendezvous %d from %d", env.reqID, env.src)
		return
	}
	delete(d.rdv, env.reqID)
	d.stats.rdvCancels.Add(1)
	d.rk.w.cfg.Tracer.Record(p.Now(), d.actor, "fault",
		"rendezvous %d cancelled by %d after %d bytes", env.reqID, env.src, st.received)
	d.rk.fl.Record(p.Now(), flight.KRdvCancel, int64(env.src), env.reqID, st.received, 0)
	st.req.done.Complete(&CancelledError{Sender: env.src, ReqID: env.reqID})
}

// failFrom tears down this rank's in-flight receive-side state against a
// revoked peer: posted receives bound to the peer and rendezvous transfers
// it was feeding complete immediately with err instead of waiting for
// their watchdogs. Wildcard receives are left alone — another sender can
// still match them.
func (d *device) failFrom(src int, err error) {
	kept := d.posted[:0]
	var failed []*recvReq
	for _, req := range d.posted {
		if req.src == src {
			failed = append(failed, req)
			continue
		}
		kept = append(kept, req)
	}
	d.posted = kept
	for id, st := range d.rdv {
		if st.env.src == src {
			delete(d.rdv, id)
			d.stats.rdvCancels.Add(1)
			failed = append(failed, st.req)
		}
	}
	for _, req := range failed {
		if !req.done.Done() {
			req.done.Complete(err)
		}
	}
}

// chargeBlocks bills the local block-copy work of an unpack operation.
// ff selects the direct_pack_ff cost model (cheap stack iteration, possible
// cache bonus) versus the recursive-traversal baseline.
func (d *device) chargeBlocks(p *sim.Proc, st pack.Stats, ff bool) {
	if st.Bytes == 0 {
		return
	}
	d.rk.w.countPack(st, ff)
	m := d.mem()
	bus := d.rk.w.buses[d.rk.node]
	ws := st.Bytes * 2 // source chunk + scattered destination
	if ff {
		bus.Charge(p, st.Bytes, m.BlockCopyCostFF(st.Bytes, st.AvgBlock(), ws))
		return
	}
	// The generic engine pays the recursive tree walk per block.
	bus.Charge(p, st.Bytes, m.CopyCost(st.Bytes, st.AvgBlock(), ws)+genericTraversalPenalty(st.Blocks))
}
