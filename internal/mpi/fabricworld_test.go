package mpi_test

// Cross-engine equivalence of the full MPI stack: the same program, run
// through the public Run/Config.Shards surface, must produce the identical
// final virtual time, payload checksums, flight-dump bytes and metric
// registry on the sequential oracle and on the conservative-parallel
// sharded engine at every shard count. The world is confined to one locale
// either way, so the per-heap (time, seq) event order — and with it every
// protocol decision — is pinned byte for byte.

import (
	"bytes"
	"testing"
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/mpi"
	"scimpich/internal/obs"
	"scimpich/internal/obs/flight"
	"scimpich/internal/osc"
)

const xRanks = 4

type xOut struct {
	end      time.Duration
	checksum uint64
	dump     []byte
	metrics  []byte
}

// runCross runs prog on every rank of a 4-node cluster with the given
// shard count (0 = the plain sequential path) and captures everything the
// determinism contract pins.
func runCross(t *testing.T, shards int, mut func(*mpi.Config), prog func(c *mpi.Comm) uint64) xOut {
	t.Helper()
	cfg := mpi.DefaultConfig(xRanks, 1)
	cfg.Shards = shards
	cfg.Metrics = obs.NewRegistry()
	rec := flight.New(128)
	cfg.Flight = rec
	if mut != nil {
		mut(&cfg)
	}
	sums := make([]uint64, xRanks)
	end := mpi.Run(cfg, func(c *mpi.Comm) { sums[c.Rank()] = prog(c) })
	var checksum uint64
	for r, s := range sums {
		checksum += s * (uint64(r)*2 + 1)
	}
	var dump bytes.Buffer
	if d := rec.Snapshot("cross-engine test"); d != nil {
		if err := d.WriteJSON(&dump); err != nil {
			t.Fatal(err)
		}
	}
	var met bytes.Buffer
	cfg.Metrics.WriteText(&met)
	return xOut{end: end, checksum: checksum, dump: dump.Bytes(), metrics: met.Bytes()}
}

// crossEngine pins prog's outcome across the oracle and 1/2/4 shards.
func crossEngine(t *testing.T, mut func(*mpi.Config), prog func(c *mpi.Comm) uint64) {
	t.Helper()
	oracle := runCross(t, 0, mut, prog)
	if oracle.end <= 0 {
		t.Fatal("oracle run made no virtual progress")
	}
	if oracle.checksum == 0 {
		t.Fatal("oracle run produced a zero checksum")
	}
	for _, shards := range []int{1, 2, 4} {
		got := runCross(t, shards, mut, prog)
		if got.end != oracle.end {
			t.Errorf("shards=%d: end %v != oracle %v", shards, got.end, oracle.end)
		}
		if got.checksum != oracle.checksum {
			t.Errorf("shards=%d: checksum %#x != oracle %#x", shards, got.checksum, oracle.checksum)
		}
		if !bytes.Equal(got.dump, oracle.dump) {
			t.Errorf("shards=%d: flight dump differs from oracle (%d vs %d bytes)",
				shards, len(got.dump), len(oracle.dump))
		}
		if !bytes.Equal(got.metrics, oracle.metrics) {
			t.Errorf("shards=%d: metric registry differs from oracle:\n--- oracle ---\n%s--- got ---\n%s",
				shards, oracle.metrics, got.metrics)
		}
	}
}

func xFill(buf []byte, rank, salt int) {
	for i := range buf {
		buf[i] = byte(rank*31 + salt*7 + i)
	}
}

func xSum(buf []byte) uint64 {
	var sum uint64
	for i, b := range buf {
		sum += uint64(b) * uint64(i+1)
	}
	return sum
}

// TestCrossEnginePingPong exchanges short, eager and rendezvous payloads
// between rank pairs.
func TestCrossEnginePingPong(t *testing.T) {
	crossEngine(t, nil, func(c *mpi.Comm) uint64 {
		me := c.Rank()
		peer := me ^ 1
		var sum uint64
		for salt, n := range []int{64, 4 << 10, 96 << 10} {
			buf := make([]byte, n)
			if me%2 == 0 {
				xFill(buf, me, salt)
				c.Send(buf, n, datatype.Byte, peer, 7)
				c.Recv(buf, n, datatype.Byte, peer, 8)
			} else {
				c.Recv(buf, n, datatype.Byte, peer, 7)
				c.Send(buf, n, datatype.Byte, peer, 8)
			}
			sum += xSum(buf)
		}
		return sum
	})
}

// TestCrossEngineRingAllreduce forces the bandwidth-optimal ring — the
// same rotation the torus machine runs — through the collective engine.
func TestCrossEngineRingAllreduce(t *testing.T) {
	crossEngine(t,
		func(cfg *mpi.Config) { cfg.Protocol.Coll = mpi.CollRing },
		func(c *mpi.Comm) uint64 {
			const elems = 8 << 10
			send := make([]byte, elems*8)
			recv := make([]byte, elems*8)
			xFill(send, c.Rank(), 3)
			c.Allreduce(send, recv, elems, datatype.Int64, mpi.OpSum)
			return xSum(recv)
		})
}

// TestCrossEngineOSCFence runs a one-sided fence epoch: every rank puts
// into its right neighbour's window and accumulates into its left one.
func TestCrossEngineOSCFence(t *testing.T) {
	crossEngine(t, nil, func(c *mpi.Comm) uint64 {
		sys := osc.NewSystem(c)
		win := sys.CreateShared(c.AllocShared(4096), osc.DefaultConfig())
		me, size := c.Rank(), c.Size()
		win.Fence()
		payload := make([]byte, 512)
		xFill(payload, me, 5)
		win.Put(payload, len(payload), datatype.Byte, (me+1)%size, 0)
		acc := mpi.Int32Bytes([]int32{int32(me + 1), -int32(me + 1), 40, 2})
		win.Accumulate(acc, 4, datatype.Int32, mpi.OpSum, (me-1+size)%size, 2048)
		win.Fence()
		return xSum(win.LocalBytes()[:4096])
	})
}
