package mpi

import "testing"

// TestRingSendBlockNeighbourChain pins the invariant the ring algorithms
// rely on: at every step, the block a rank receives from its left
// neighbour is exactly the left neighbour of the block it sends — so one
// rotation schedule serves senders and receivers alike.
func TestRingSendBlockNeighbourChain(t *testing.T) {
	for size := 2; size <= 9; size++ {
		steps := 2 * (size - 1)
		for me := 0; me < size; me++ {
			left := (me - 1 + size) % size
			for s := 0; s < steps; s++ {
				sent := ringSendBlock(me, s, size)
				if sent < 0 || sent >= size {
					t.Fatalf("size=%d me=%d s=%d: block %d out of range", size, me, s, sent)
				}
				want := (sent - 1 + size) % size
				if got := ringSendBlock(left, s, size); got != want {
					t.Fatalf("size=%d me=%d s=%d: left neighbour sends %d, want %d",
						size, me, s, got, want)
				}
			}
		}
	}
}

// TestRingSendBlockCompletes simulates the schedule symbolically: sets of
// contributing ranks flow along the rotation, and after 2(size-1) steps
// every rank must hold the full reduction of every block — the
// reduce-scatter must complete block (me+1) mod size at rank me first, and
// the allgather must then distribute only completed blocks.
func TestRingSendBlockCompletes(t *testing.T) {
	for size := 2; size <= 8; size++ {
		// contrib[r][b] = bitmask of ranks folded into rank r's copy of block b.
		contrib := make([][]uint64, size)
		for r := range contrib {
			contrib[r] = make([]uint64, size)
			for b := range contrib[r] {
				contrib[r][b] = 1 << r
			}
		}
		full := uint64(1<<size) - 1
		steps := 2 * (size - 1)
		for s := 0; s < steps; s++ {
			sent := make([]uint64, size)
			for r := 0; r < size; r++ {
				sent[r] = contrib[r][ringSendBlock(r, s, size)]
			}
			for r := 0; r < size; r++ {
				left := (r - 1 + size) % size
				b := (ringSendBlock(r, s, size) - 1 + size) % size
				if s < size-1 {
					contrib[r][b] |= sent[left] // fold: reduce-scatter
				} else {
					if sent[left] != full {
						t.Fatalf("size=%d s=%d rank=%d: allgather forwards incomplete block %d (%b)",
							size, s, left, ringSendBlock(left, s, size), sent[left])
					}
					contrib[r][b] = sent[left] // overwrite: allgather
				}
			}
			if s == size-2 {
				for r := 0; r < size; r++ {
					if own := (r + 1) % size; contrib[r][own] != full {
						t.Fatalf("size=%d rank=%d: reduce-scatter left block %d incomplete (%b)",
							size, r, own, contrib[r][own])
					}
				}
			}
		}
		for r := 0; r < size; r++ {
			for b := 0; b < size; b++ {
				if contrib[r][b] != full {
					t.Fatalf("size=%d: rank %d block %d incomplete after %d steps (%b)",
						size, r, b, steps, contrib[r][b])
				}
			}
		}
	}
}
