package mpi

import (
	"scimpich/internal/datatype"
	"scimpich/internal/smi"
)

// One-sided collective algorithms: instead of running the point-to-point
// protocols (handshakes, eager slots, per-chunk CTS/ack cycles), ranks
// deposit payload blocks directly into their peers' collective windows —
// per-rank shared segments reachable over every transport — and flag them
// with a zero-byte notify. The receiver copies the block out of its own
// window and acks, which frees the slot for reuse. This is the paper's
// one-sided deposit discipline applied to collective traffic: one stream
// write and two control packets per block, no rendezvous.
//
// Window layout: rank r exposes size*CollSlot bytes; the slot for deposits
// *from* world rank s starts at s*CollSlot. Each slot splits into two
// halves for double buffering, so pipelined algorithms (bcast) overlap the
// deposit of chunk i with the drain of chunk i-1; the ack of chunk i-2
// gates the reuse of its half.

// Tags of the one-sided collective protocol (notify / ack, offset by the
// chunk or step index).
const (
	tagCollOSN = 15 << 20
	tagCollOSA = 16 << 20
)

// osChunk returns the double-buffered half-slot: the chunk size of the
// pipelined one-sided algorithms.
func (w *World) osChunk() int64 { return w.protocol().CollSlot / 2 }

// collWin returns owner's collective window, building it on first use.
// Construction has no virtual-time cost, so lazy building is transparent
// to the simulation; runs that never pick a one-sided algorithm allocate
// nothing.
func (w *World) collWin(owner int) *SharedSeg {
	if w.collWins == nil {
		w.collWins = make([]*SharedSeg, w.size)
		w.collViews = make([][]smi.Mem, w.size)
	}
	if w.collWins[owner] == nil {
		w.collWins[owner] = w.allocShared(owner, int64(w.size)*w.protocol().CollSlot)
		w.collViews[owner] = make([]smi.Mem, w.size)
	}
	return w.collWins[owner]
}

// collView returns (and caches) rank from's access view of owner's
// collective window.
func (w *World) collView(from, owner int) smi.Mem {
	seg := w.collWin(owner)
	if w.collViews[owner][from] == nil {
		w.collViews[owner][from] = seg.MapFrom(from)
	}
	return w.collViews[owner][from]
}

// osDeposit writes data into the destination's collective window at off
// and makes it visible (store barrier + transfer check), with crash
// detection and transient-fault retry. dstWorld is a world rank.
func (c *Comm) osDeposit(dstWorld int, off int64, data []byte) error {
	if err := c.peerLost(dstWorld); err != nil {
		return err
	}
	mem := c.rk.w.collView(c.rk.id, dstWorld)
	return c.retryTransfer(dstWorld, func() error {
		if err := c.peerLost(dstWorld); err != nil {
			return err
		}
		if len(data) > 0 {
			if err := mem.TryWriteStream(c.p, off, data, 2*int64(len(data))); err != nil {
				return err
			}
		}
		return mem.TrySync(c.p)
	})
}

// osCopyOut copies a deposited block out of this rank's own window.
func (c *Comm) osCopyOut(off int64, dst []byte) {
	if len(dst) == 0 {
		return
	}
	c.rk.w.collView(c.rk.id, c.rk.id).Read(c.p, off, dst)
}

// osSlotOff returns the offset of world rank src's slot half for chunk or
// step index t in any window.
func (w *World) osSlotOff(srcWorld, t int) int64 {
	return int64(srcWorld)*w.protocol().CollSlot + int64(t%2)*w.osChunk()
}

// bcastOneSided broadcasts a contiguous payload down the binomial tree
// with chunk-pipelined window deposits: each chunk received from the
// parent is forwarded to the children while the parent streams the next
// one, so the tree depth costs one chunk fill each instead of a full
// store-and-forward message. c must be the collective view.
func (c *Comm) bcastOneSided(buf []byte, root int) error {
	w := c.rk.w
	size := c.Size()
	me := c.Rank()
	chunk := w.osChunk()
	n := int64(len(buf))
	nChunks := int((n + chunk - 1) / chunk)
	if nChunks == 0 {
		nChunks = 1
	}
	vrank := (me - root + size) % size
	parent := -1
	if vrank != 0 {
		parent = ((vrank & (vrank - 1)) + root) % size
	}
	var children []int
	for bit := lowestSetOrSize(vrank, size); bit > 0; bit >>= 1 {
		child := vrank | bit
		if child != vrank && child < size {
			children = append(children, (child+root)%size)
		}
	}
	for i := 0; i < nChunks; i++ {
		lo := int64(i) * chunk
		hi := min64(lo+chunk, n)
		piece := buf[lo:hi]
		if parent >= 0 {
			if err := c.recvColl(nil, 0, datatype.Byte, parent, tagCollOSN+i); err != nil {
				return err
			}
			c.osCopyOut(w.osSlotOff(c.worldRank(parent), i), piece)
			if err := c.send(nil, 0, datatype.Byte, parent, tagCollOSA+i, c.ctx); err != nil {
				return err
			}
		}
		for _, child := range children {
			if i >= 2 {
				if err := c.recvColl(nil, 0, datatype.Byte, child, tagCollOSA+i-2); err != nil {
					return err
				}
			}
			if err := c.osDeposit(c.worldRank(child), w.osSlotOff(c.rk.id, i), piece); err != nil {
				return err
			}
			if err := c.send(nil, 0, datatype.Byte, child, tagCollOSN+i, c.ctx); err != nil {
				return err
			}
		}
	}
	// Drain the children's last acks so the slot halves are free for the
	// next collective before this one returns.
	first := nChunks - 2
	if first < 0 {
		first = 0
	}
	for _, child := range children {
		for i := first; i < nChunks; i++ {
			if err := c.recvColl(nil, 0, datatype.Byte, child, tagCollOSA+i); err != nil {
				return err
			}
		}
	}
	return nil
}

// osExchange is the one-shot window exchange behind the one-sided
// allgather and alltoall: deposit out(dst) into every peer's slot and
// notify; copy every peer's deposit out of the local window into in(src)
// and ack; drain the acks. Blocks must fit one slot (the chooser's
// eligibility check), so there is no in-operation slot reuse and deposits
// need no chunking.
func (c *Comm) osExchange(out func(dst int) []byte, in func(src int) []byte) error {
	w := c.rk.w
	size := c.Size()
	me := c.Rank()
	slot := w.protocol().CollSlot
	for step := 1; step < size; step++ {
		dst := (me + step) % size
		if err := c.osDeposit(c.worldRank(dst), int64(c.rk.id)*slot, out(dst)); err != nil {
			return err
		}
		if err := c.send(nil, 0, datatype.Byte, dst, tagCollOSN, c.ctx); err != nil {
			return err
		}
	}
	for step := 1; step < size; step++ {
		src := (me - step + size) % size
		if err := c.recvColl(nil, 0, datatype.Byte, src, tagCollOSN); err != nil {
			return err
		}
		c.osCopyOut(int64(c.worldRank(src))*slot, in(src))
		if err := c.send(nil, 0, datatype.Byte, src, tagCollOSA, c.ctx); err != nil {
			return err
		}
	}
	for step := 1; step < size; step++ {
		dst := (me + step) % size
		if err := c.recvColl(nil, 0, datatype.Byte, dst, tagCollOSA); err != nil {
			return err
		}
	}
	return nil
}

// osRingLink is the window-deposit block exchange of the one-sided ring
// allreduce: per step, deposit the outgoing block into the right
// neighbour's slot half, await the left neighbour's notify, copy its block
// out, ack. The ack of step t-2 gates the reuse of a half.
type osRingLink struct {
	cc          *Comm
	right, left int // communicator-local neighbours
	steps       int // total steps the caller will run
}

func (l *osRingLink) xfer(t int, out, in []byte) error {
	c := l.cc
	w := c.rk.w
	if t >= 2 {
		if err := c.recvColl(nil, 0, datatype.Byte, l.right, tagCollOSA+t-2); err != nil {
			return err
		}
	}
	if err := c.osDeposit(c.worldRank(l.right), w.osSlotOff(c.rk.id, t), out); err != nil {
		return err
	}
	if err := c.send(nil, 0, datatype.Byte, l.right, tagCollOSN+t, c.ctx); err != nil {
		return err
	}
	if err := c.recvColl(nil, 0, datatype.Byte, l.left, tagCollOSN+t); err != nil {
		return err
	}
	c.osCopyOut(w.osSlotOff(c.worldRank(l.left), t), in)
	return c.send(nil, 0, datatype.Byte, l.left, tagCollOSA+t, c.ctx)
}

func (l *osRingLink) finish() error {
	first := l.steps - 2
	if first < 0 {
		first = 0
	}
	for t := first; t < l.steps; t++ {
		if err := l.cc.recvColl(nil, 0, datatype.Byte, l.right, tagCollOSA+t); err != nil {
			return err
		}
	}
	return nil
}
