package mpi

import (
	"fmt"

	"scimpich/internal/datatype"
)

// Variable-count collectives (the v-variants): each rank contributes or
// receives a different number of elements.

// Tags for the v-collectives.
const (
	tagGatherv  = 10 << 20
	tagScatterv = 11 << 20
	tagAgatherv = 12 << 20
)

// checkV validates counts/displs against the communicator size.
func (c *Comm) checkV(name string, counts, displs []int) {
	if len(counts) != c.Size() || len(displs) != c.Size() {
		panic(fmt.Sprintf("mpi: %s: %d counts / %d displs for %d ranks",
			name, len(counts), len(displs), c.Size()))
	}
}

// Gatherv collects counts[r] elements from each rank r into recv at
// element displacement displs[r] on root (MPI_Gatherv).
func (c *Comm) Gatherv(send []byte, count int, dt *datatype.Type, recv []byte, counts, displs []int, root int) {
	cc := c.collective()
	es := dt.Size()
	if c.Rank() == root {
		c.checkV("Gatherv", counts, displs)
		copy(recv[int64(displs[root])*es:], send[:int64(counts[root])*es])
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			off := int64(displs[r]) * es
			cc.recv(recv[off:off+int64(counts[r])*es], counts[r], dt, r, tagGatherv, cc.ctx)
		}
		return
	}
	cc.send(send, count, dt, root, tagGatherv, cc.ctx)
}

// Scatterv distributes counts[r] elements from send (at displacement
// displs[r], on root) to each rank r's recv buffer (MPI_Scatterv).
func (c *Comm) Scatterv(send []byte, counts, displs []int, dt *datatype.Type, recv []byte, count int, root int) {
	cc := c.collective()
	es := dt.Size()
	if c.Rank() == root {
		c.checkV("Scatterv", counts, displs)
		copy(recv, send[int64(displs[root])*es:int64(displs[root])*es+int64(counts[root])*es])
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			off := int64(displs[r]) * es
			cc.send(send[off:off+int64(counts[r])*es], counts[r], dt, r, tagScatterv, cc.ctx)
		}
		return
	}
	cc.recv(recv, count, dt, root, tagScatterv, cc.ctx)
}

// Allgatherv collects counts[r] elements from every rank into every rank's
// recv buffer at displacement displs[r] (MPI_Allgatherv; ring algorithm).
func (c *Comm) Allgatherv(send []byte, count int, dt *datatype.Type, recv []byte, counts, displs []int) {
	c.checkV("Allgatherv", counts, displs)
	cc := c.collective()
	size := c.Size()
	me := c.Rank()
	es := dt.Size()
	copy(recv[int64(displs[me])*es:], send[:int64(counts[me])*es])
	if size == 1 {
		return
	}
	right := (me + 1) % size
	left := (me - 1 + size) % size
	for step := 0; step < size-1; step++ {
		sendIdx := (me - step + size) % size
		recvIdx := (me - step - 1 + size) % size
		so := int64(displs[sendIdx]) * es
		ro := int64(displs[recvIdx]) * es
		cc.Sendrecv(
			recv[so:so+int64(counts[sendIdx])*es], counts[sendIdx], dt, right, tagAgatherv+step,
			recv[ro:ro+int64(counts[recvIdx])*es], counts[recvIdx], dt, left, tagAgatherv+step,
		)
	}
}
