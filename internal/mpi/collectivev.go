package mpi

import (
	"scimpich/internal/datatype"
)

// Variable-count collectives (the v-variants): each rank contributes or
// receives a different number of elements.

// Tags for the v-collectives.
const (
	tagGatherv  = 10 << 20
	tagScatterv = 11 << 20
	tagAgatherv = 12 << 20
)

// checkV validates counts/displs against the communicator size.
func (c *Comm) checkV(call string, counts, displs []int) error {
	if len(counts) != c.Size() || len(displs) != c.Size() {
		return argErrf(call, "%d counts / %d displs for %d ranks",
			len(counts), len(displs), c.Size())
	}
	return nil
}

// Gatherv collects counts[r] elements from each rank r into recv at
// element displacement displs[r] on root (MPI_Gatherv). It panics on
// failures; use GathervChecked under fault plans.
func (c *Comm) Gatherv(send []byte, count int, dt *datatype.Type, recv []byte, counts, displs []int, root int) {
	mustColl(c.GathervChecked(send, count, dt, recv, counts, displs, root))
}

// GathervChecked is Gatherv returning failures as typed errors. The root
// posts all receives up front and then waits, so senders complete
// concurrently instead of being drained one rank at a time.
func (c *Comm) GathervChecked(send []byte, count int, dt *datatype.Type, recv []byte, counts, displs []int, root int) error {
	if err := c.checkRoot("Gatherv", root); err != nil {
		return err
	}
	cc := c.collective()
	es := dt.Size()
	op := c.collBegin(collGatherv, CollP2P, es*int64(count))
	if c.Rank() != root {
		return op.end(cc.send(send, count, dt, root, tagGatherv, cc.ctx))
	}
	if err := c.checkV("Gatherv", counts, displs); err != nil {
		return op.end(err)
	}
	copy(recv[int64(displs[root])*es:], send[:int64(counts[root])*es])
	reqs := make([]*Request, c.Size())
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		off := int64(displs[r]) * es
		reqs[r] = cc.irecv(recv[off:off+int64(counts[r])*es], counts[r], dt, r, tagGatherv, cc.ctx)
	}
	for r, req := range reqs {
		if req == nil {
			continue
		}
		if err := cc.waitColl(req, r, tagGatherv); err != nil {
			return op.end(err)
		}
	}
	return op.end(nil)
}

// Scatterv distributes counts[r] elements from send (at displacement
// displs[r], on root) to each rank r's recv buffer (MPI_Scatterv). It
// panics on failures; use ScattervChecked under fault plans.
func (c *Comm) Scatterv(send []byte, counts, displs []int, dt *datatype.Type, recv []byte, count int, root int) {
	mustColl(c.ScattervChecked(send, counts, displs, dt, recv, count, root))
}

// ScattervChecked is Scatterv returning failures as typed errors.
func (c *Comm) ScattervChecked(send []byte, counts, displs []int, dt *datatype.Type, recv []byte, count int, root int) error {
	if err := c.checkRoot("Scatterv", root); err != nil {
		return err
	}
	cc := c.collective()
	es := dt.Size()
	op := c.collBegin(collScatterv, CollP2P, es*int64(count))
	if c.Rank() != root {
		return op.end(cc.recvColl(recv, count, dt, root, tagScatterv))
	}
	if err := c.checkV("Scatterv", counts, displs); err != nil {
		return op.end(err)
	}
	copy(recv, send[int64(displs[root])*es:int64(displs[root])*es+int64(counts[root])*es])
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		off := int64(displs[r]) * es
		if err := cc.send(send[off:off+int64(counts[r])*es], counts[r], dt, r, tagScatterv, cc.ctx); err != nil {
			return op.end(err)
		}
	}
	return op.end(nil)
}

// Allgatherv collects counts[r] elements from every rank into every rank's
// recv buffer at displacement displs[r] (MPI_Allgatherv; ring algorithm).
// It panics on failures; use AllgathervChecked under fault plans.
func (c *Comm) Allgatherv(send []byte, count int, dt *datatype.Type, recv []byte, counts, displs []int) {
	mustColl(c.AllgathervChecked(send, count, dt, recv, counts, displs))
}

// AllgathervChecked is Allgatherv returning failures as typed errors.
func (c *Comm) AllgathervChecked(send []byte, count int, dt *datatype.Type, recv []byte, counts, displs []int) error {
	if err := c.checkV("Allgatherv", counts, displs); err != nil {
		return err
	}
	cc := c.collective()
	size := c.Size()
	me := c.Rank()
	es := dt.Size()
	copy(recv[int64(displs[me])*es:], send[:int64(counts[me])*es])
	if size == 1 {
		return nil
	}
	op := c.collBegin(collAgatherv, CollP2P, es*int64(count))
	right := (me + 1) % size
	left := (me - 1 + size) % size
	for step := 0; step < size-1; step++ {
		sendIdx := (me - step + size) % size
		recvIdx := (me - step - 1 + size) % size
		so := int64(displs[sendIdx]) * es
		ro := int64(displs[recvIdx]) * es
		if err := cc.sendrecvColl(
			recv[so:so+int64(counts[sendIdx])*es], counts[sendIdx], dt, right, tagAgatherv+step,
			recv[ro:ro+int64(counts[recvIdx])*es], counts[recvIdx], dt, left, tagAgatherv+step,
		); err != nil {
			return op.end(err)
		}
	}
	return op.end(nil)
}
