package mpi

import (
	"errors"
	"testing"
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/fault"
)

// Elastic-world tests: shrink-to-survivors agreement, revocation fast-fail
// semantics, and the restore-after-crash containment guarantees.

// elasticConfig is a 4-node cluster with every watchdog on the scaled
// AutoTimeout bound and a fault plan attached.
func elasticConfig(plan *fault.Plan) Config {
	cfg := DefaultConfig(4, 1)
	cfg.SCI.Fault = plan
	cfg.Protocol.CollTimeout = AutoTimeout
	cfg.Protocol.RendezvousTimeout = AutoTimeout
	return cfg
}

// shrinkWhenNeeded drives a checked collective through crash recovery: on
// error it shrinks and retries on the new communicator.
func shrinkWhenNeeded(t *testing.T, c *Comm, body func(c *Comm) error) (*Comm, error) {
	t.Helper()
	for attempt := 0; attempt < 4; attempt++ {
		err := body(c)
		if err == nil {
			return c, nil
		}
		nc, serr := c.ShrinkChecked()
		if serr != nil {
			return nil, serr
		}
		c = nc
	}
	return c, errors.New("collective never recovered")
}

func TestShrinkAfterCrashAllreduce(t *testing.T) {
	plan := fault.New(5).CrashNode(2, 400*time.Microsecond)
	type result struct {
		survivors []int
		sum       float64
		revoked   bool
	}
	results := make([]result, 4)
	Run(elasticConfig(plan), func(c *Comm) {
		me := c.Rank()
		c.Proc().Sleep(time.Millisecond) // let the crash land
		send := Float64Bytes([]float64{float64(me + 1)})
		recv := make([]byte, 8)
		nc, err := shrinkWhenNeeded(t, c, func(c *Comm) error {
			return c.AllreduceChecked(send, recv, 1, datatype.Float64, OpSum)
		})
		if err != nil {
			var rev *RevokedRankError
			if errors.As(err, &rev) && rev.Rank == me {
				results[me].revoked = true
				return
			}
			t.Errorf("rank %d: recovery failed: %v", me, err)
			return
		}
		for i := 0; i < nc.Size(); i++ {
			results[me].survivors = append(results[me].survivors, nc.GroupToWorld(i))
		}
		results[me].sum = BytesFloat64(recv)[0]
	})
	want := []int{0, 1, 3}
	for _, me := range want {
		r := results[me]
		if r.revoked {
			t.Fatalf("survivor %d saw itself revoked", me)
		}
		if len(r.survivors) != 3 {
			t.Fatalf("rank %d: survivor set %v, want %v", me, r.survivors, want)
		}
		for i, s := range want {
			if r.survivors[i] != s {
				t.Fatalf("rank %d: survivor set %v, want %v", me, r.survivors, want)
			}
		}
		// 1 + 2 + 4: contributions of world ranks 0, 1, 3.
		if r.sum != 7 {
			t.Errorf("rank %d: allreduce sum %v, want 7", me, r.sum)
		}
	}
	if !results[2].revoked {
		t.Errorf("crashed rank 2 did not observe its own revocation")
	}
}

func TestShrinkMidAgreementCrash(t *testing.T) {
	// Node 3 crashes first; node 2 crashes while the survivors are inside
	// the recovery (agreement or confirmation). The confirm-retry loop must
	// converge on {0, 1}.
	plan := fault.New(9).
		CrashNode(3, 300*time.Microsecond).
		CrashNode(2, 900*time.Microsecond)
	survivors := make([][]int, 4)
	var sums [4]float64
	Run(elasticConfig(plan), func(c *Comm) {
		me := c.Rank()
		c.Proc().Sleep(600 * time.Microsecond)
		send := Float64Bytes([]float64{float64(me + 1)})
		recv := make([]byte, 8)
		nc, err := shrinkWhenNeeded(t, c, func(c *Comm) error {
			return c.AllreduceChecked(send, recv, 1, datatype.Float64, OpSum)
		})
		if err != nil {
			var rev *RevokedRankError
			if errors.As(err, &rev) {
				return
			}
			t.Errorf("rank %d: recovery failed: %v", me, err)
			return
		}
		for i := 0; i < nc.Size(); i++ {
			survivors[me] = append(survivors[me], nc.GroupToWorld(i))
		}
		sums[me] = BytesFloat64(recv)[0]
	})
	for _, me := range []int{0, 1} {
		if len(survivors[me]) != 2 || survivors[me][0] != 0 || survivors[me][1] != 1 {
			t.Fatalf("rank %d: survivor set %v, want [0 1]", me, survivors[me])
		}
		if sums[me] != 3 {
			t.Errorf("rank %d: allreduce sum %v, want 3", me, sums[me])
		}
	}
	for _, me := range []int{2, 3} {
		if survivors[me] != nil {
			t.Errorf("crashed rank %d completed recovery with survivors %v", me, survivors[me])
		}
	}
}

func TestRevokedFastFail(t *testing.T) {
	plan := fault.New(7).CrashNode(1, 300*time.Microsecond)
	var sendElapsed time.Duration
	var sendErr, pendingErr error
	Run(elasticConfig(plan), func(c *Comm) {
		me := c.Rank()
		var pending *Request
		if me == 0 {
			// Posted before the crash; revocation must fail it without a
			// matching message ever arriving.
			pending = c.Irecv(make([]byte, 8), 8, datatype.Byte, 1, 77)
		}
		c.Proc().Sleep(time.Millisecond)
		nc, err := c.ShrinkChecked()
		if err != nil {
			var rev *RevokedRankError
			if !errors.As(err, &rev) || me != 1 {
				t.Errorf("rank %d: shrink failed: %v", me, err)
			}
			return
		}
		if me != 0 {
			return
		}
		if !c.World().RankRevoked(1) {
			t.Error("rank 1 not revoked after shrink")
		}
		_ = nc
		// The pre-posted receive must already be complete with the typed error.
		if !pending.Done() {
			t.Error("pre-posted receive from the revoked rank still pending")
		}
		_, pendingErr = pending.WaitChecked()
		// A send to the revoked world rank fails fast: no watchdog wait.
		start := c.Proc().Now()
		sendErr = c.SendChecked(make([]byte, 64<<10), 64<<10, datatype.Byte, 1, 5)
		sendElapsed = c.Proc().Now() - start
	})
	var rev *RevokedRankError
	if !errors.As(sendErr, &rev) || rev.Rank != 1 {
		t.Fatalf("send to revoked rank: got %v, want *RevokedRankError{1}", sendErr)
	}
	if !errors.As(pendingErr, &rev) || rev.Rank != 1 {
		t.Fatalf("pre-posted receive: got %v, want *RevokedRankError{1}", pendingErr)
	}
	if sendElapsed > 100*time.Microsecond {
		t.Errorf("send to revoked rank took %v, want fast failure", sendElapsed)
	}
}

// TestRestoredNodeCannotCorrupt covers fault.Plan.RestoreNode against a
// world that shrank past the crash: the restored rank's stale traffic
// (sequence numbers from before the crash, fresh sends, collective
// deposits) must never corrupt the survivors, and its own operations must
// fail with the typed revocation error.
func TestRestoredNodeCannotCorrupt(t *testing.T) {
	plan := fault.New(11).
		CrashNode(1, 300*time.Microsecond).
		RestoreNode(1, 1500*time.Microsecond)
	var restoredSendErr, restoredCollErr error
	var survivorSums [4]float64
	Run(elasticConfig(plan), func(c *Comm) {
		me := c.Rank()
		c.Proc().Sleep(700 * time.Microsecond) // crash landed, restore pending
		nc, err := c.ShrinkChecked()
		if err != nil {
			var rev *RevokedRankError
			if !errors.As(err, &rev) || me != 1 {
				t.Errorf("rank %d: shrink failed: %v", me, err)
				return
			}
			// The revoked rank waits out its restore, then attacks the world.
			c.Proc().Sleep(time.Millisecond)
			restoredSendErr = c.SendChecked(fill(256), 256, datatype.Byte, 0, 99)
			restoredCollErr = c.AllreduceChecked(
				Float64Bytes([]float64{1000}), make([]byte, 8), 1, datatype.Float64, OpSum)
			return
		}
		// Survivors keep computing well past the restore instant; the
		// reduction value proves no stale deposit or message leaked in.
		send := Float64Bytes([]float64{float64(me + 1)})
		recv := make([]byte, 8)
		for i := 0; i < 6; i++ {
			c.Proc().Sleep(300 * time.Microsecond)
			if err := nc.AllreduceChecked(send, recv, 1, datatype.Float64, OpSum); err != nil {
				t.Errorf("rank %d: post-shrink allreduce %d failed: %v", me, i, err)
				return
			}
		}
		survivorSums[me] = BytesFloat64(recv)[0]
	})
	var rev *RevokedRankError
	if !errors.As(restoredSendErr, &rev) {
		t.Errorf("restored rank send: got %v, want *RevokedRankError", restoredSendErr)
	}
	if !errors.As(restoredCollErr, &rev) {
		t.Errorf("restored rank allreduce: got %v, want *RevokedRankError", restoredCollErr)
	}
	for _, me := range []int{0, 2, 3} {
		// 1 + 3 + 4: world ranks 0, 2, 3 contribute rank+1.
		if survivorSums[me] != 8 {
			t.Errorf("rank %d: post-restore allreduce sum %v, want 8", me, survivorSums[me])
		}
	}
}

func TestShrinkDeterministicPerSeed(t *testing.T) {
	run := func() (time.Duration, [4][]int) {
		plan := fault.New(13).CrashNode(2, 450*time.Microsecond)
		var sets [4][]int
		end := Run(elasticConfig(plan), func(c *Comm) {
			me := c.Rank()
			c.Proc().Sleep(time.Millisecond)
			nc, err := c.ShrinkChecked()
			if err != nil {
				return
			}
			for i := 0; i < nc.Size(); i++ {
				sets[me] = append(sets[me], nc.GroupToWorld(i))
			}
			if err := nc.BarrierChecked(); err != nil {
				t.Errorf("rank %d: post-shrink barrier: %v", me, err)
			}
		})
		return end, sets
	}
	end1, sets1 := run()
	end2, sets2 := run()
	if end1 != end2 {
		t.Fatalf("non-deterministic recovery: end times %v vs %v", end1, end2)
	}
	for me := range sets1 {
		if len(sets1[me]) != len(sets2[me]) {
			t.Fatalf("rank %d: survivor sets differ across identical runs: %v vs %v",
				me, sets1[me], sets2[me])
		}
		for i := range sets1[me] {
			if sets1[me][i] != sets2[me][i] {
				t.Fatalf("rank %d: survivor sets differ across identical runs: %v vs %v",
					me, sets1[me], sets2[me])
			}
		}
	}
}
