package mpi

import "fmt"

// Simulation-side coordination table for collective library setup (window
// creation and similar). Ranks share one Go address space, so handles that
// cannot travel through byte messages (segment references, lock objects)
// are exchanged here; the caller brackets Deposit/Collect with a Barrier
// for correct virtual-time semantics. The simulation is single-threaded, so
// no locking is needed.

// Deposit stores rank's contribution under key.
func (w *World) Deposit(key string, rank int, v any) {
	if w.exchange == nil {
		w.exchange = make(map[string][]any)
	}
	slot, ok := w.exchange[key]
	if !ok {
		slot = make([]any, w.size)
		w.exchange[key] = slot
	}
	slot[rank] = v
}

// Collect returns all contributions under key, indexed by rank.
func (w *World) Collect(key string) []any {
	return w.exchange[key]
}

// callSeq returns this rank's 1-based invocation count of the named
// collective operation on the given context. Matched collective calls have
// equal sequence numbers on every member, making them usable as exchange
// keys without reading shared state.
func (w *World) callSeq(op string, ctx, rank int) int {
	if w.seq == nil {
		w.seq = make(map[string][]int)
	}
	key := fmt.Sprintf("%s.%d", op, ctx)
	slot, ok := w.seq[key]
	if !ok {
		slot = make([]int, w.size)
		w.seq[key] = slot
	}
	slot[rank]++
	return slot[rank]
}
