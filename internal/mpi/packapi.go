package mpi

import (
	"fmt"

	"scimpich/internal/datatype"
	"scimpich/internal/pack"
	"scimpich/internal/sim"
)

// Explicit packing (MPI_Pack / MPI_Unpack / MPI_Pack_size): applications
// that assemble heterogeneous messages by hand use these; they run the
// canonical (definition-order) engine and charge local copy costs.

// PackSize returns the buffer space needed to pack count elements of dt
// (MPI_Pack_size). The canonical packed form carries no headers, so this
// equals the type's data size.
func PackSize(count int, dt *datatype.Type) int64 {
	return dt.Size() * int64(count)
}

// Pack appends count elements of dt from buf to out at *position,
// advancing the position (MPI_Pack). out must have space for
// PackSize(count, dt) bytes at the position.
func (c *Comm) Pack(buf []byte, count int, dt *datatype.Type, out []byte, position *int64) {
	if !dt.Committed() {
		panic(fmt.Sprintf("mpi: Pack with uncommitted datatype %s", dt))
	}
	need := PackSize(count, dt)
	if *position < 0 || *position+need > int64(len(out)) {
		panic(fmt.Sprintf("mpi: Pack of %d bytes at position %d overflows buffer of %d",
			need, *position, len(out)))
	}
	n, st := pack.GenericPack(out[*position:], buf, dt, count, 0, -1)
	c.chargePackBlocks(st, false)
	*position += n
}

// Unpack consumes count elements of dt from in at *position into buf,
// advancing the position (MPI_Unpack).
func (c *Comm) Unpack(in []byte, position *int64, buf []byte, count int, dt *datatype.Type) {
	if !dt.Committed() {
		panic(fmt.Sprintf("mpi: Unpack with uncommitted datatype %s", dt))
	}
	need := PackSize(count, dt)
	if *position < 0 || *position+need > int64(len(in)) {
		panic(fmt.Sprintf("mpi: Unpack of %d bytes at position %d exceeds buffer of %d",
			need, *position, len(in)))
	}
	n, st := pack.GenericUnpack(buf, in[*position:*position+need], dt, count, 0, -1)
	c.chargePackBlocks(st, false)
	*position += n
}

// Probe blocks until a message matching (src, tag) is available and
// returns its status without receiving it (MPI_Probe). src may be
// AnySource, tag AnyTag. The status Source is communicator-local.
func (c *Comm) Probe(src, tag int) *Status {
	c.p.Sleep(c.rk.w.protocol().CallOverhead)
	if src != AnySource {
		src = c.worldRank(src)
	}
	req := &probeReq{ctx: c.ctx, src: src, tag: tag, done: sim.NewFuture()}
	sim.Post(c.rk.dev.inbox, &envelope{kind: envLocalProbe, probe: req})
	st := *c.p.Await(req.done).(*Status)
	st.Source = c.localRank(st.Source)
	return &st
}

// Iprobe reports whether a matching message is available, without blocking
// (MPI_Iprobe). Returns (status, true) when one is queued.
func (c *Comm) Iprobe(src, tag int) (*Status, bool) {
	c.p.Sleep(c.rk.w.protocol().CallOverhead)
	if src != AnySource {
		src = c.worldRank(src)
	}
	req := &probeReq{ctx: c.ctx, src: src, tag: tag, immediate: true, done: sim.NewFuture()}
	sim.Post(c.rk.dev.inbox, &envelope{kind: envLocalProbe, probe: req})
	v := c.p.Await(req.done)
	if v == nil {
		return nil, false
	}
	st := *v.(*Status)
	st.Source = c.localRank(st.Source)
	return &st, true
}
