package mpi

import (
	"testing"

	"scimpich/internal/datatype"
)

// vPattern builds per-rank counts (rank r contributes r+1 elements) and
// packed displacements.
func vPattern(procs int) (counts, displs []int, total int) {
	counts = make([]int, procs)
	displs = make([]int, procs)
	for r := 0; r < procs; r++ {
		counts[r] = r + 1
		displs[r] = total
		total += counts[r]
	}
	return
}

func TestGatherv(t *testing.T) {
	const procs = 4
	counts, displs, total := vPattern(procs)
	Run(DefaultConfig(procs, 1), func(c *Comm) {
		me := c.Rank()
		mine := make([]byte, counts[me])
		for i := range mine {
			mine[i] = byte(me*10 + i)
		}
		recv := make([]byte, total)
		c.Gatherv(mine, counts[me], datatype.Byte, recv, counts, displs, 1)
		if c.Rank() != 1 {
			return
		}
		for r := 0; r < procs; r++ {
			for i := 0; i < counts[r]; i++ {
				if recv[displs[r]+i] != byte(r*10+i) {
					t.Fatalf("gatherv slot (%d,%d) = %d", r, i, recv[displs[r]+i])
				}
			}
		}
	})
}

func TestScatterv(t *testing.T) {
	const procs = 4
	counts, displs, total := vPattern(procs)
	Run(DefaultConfig(procs, 1), func(c *Comm) {
		me := c.Rank()
		var send []byte
		if me == 0 {
			send = make([]byte, total)
			for r := 0; r < procs; r++ {
				for i := 0; i < counts[r]; i++ {
					send[displs[r]+i] = byte(r + 100)
				}
			}
		}
		recv := make([]byte, counts[me])
		c.Scatterv(send, counts, displs, datatype.Byte, recv, counts[me], 0)
		for i := range recv {
			if recv[i] != byte(me+100) {
				t.Fatalf("rank %d slot %d = %d, want %d", me, i, recv[i], me+100)
			}
		}
	})
}

func TestAllgatherv(t *testing.T) {
	for _, procs := range []int{1, 3, 5} {
		counts, displs, total := vPattern(procs)
		Run(DefaultConfig(procs, 1), func(c *Comm) {
			me := c.Rank()
			mine := make([]byte, counts[me])
			for i := range mine {
				mine[i] = byte(me + 1)
			}
			recv := make([]byte, total)
			c.Allgatherv(mine, counts[me], datatype.Byte, recv, counts, displs)
			for r := 0; r < procs; r++ {
				for i := 0; i < counts[r]; i++ {
					if recv[displs[r]+i] != byte(r+1) {
						t.Fatalf("procs=%d rank=%d: slot (%d,%d) = %d", procs, me, r, i, recv[displs[r]+i])
					}
				}
			}
		})
	}
}

func TestVCollectiveValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched counts did not panic")
		}
	}()
	Run(DefaultConfig(2, 1), func(c *Comm) {
		if c.Rank() == 0 {
			c.Gatherv(nil, 0, datatype.Byte, nil, []int{1}, []int{0}, 0)
		} else {
			c.Gatherv(nil, 0, datatype.Byte, nil, []int{1, 1}, []int{0, 1}, 0)
		}
	})
}

func TestGathervWithFloat64(t *testing.T) {
	const procs = 3
	counts, displs, total := vPattern(procs)
	Run(DefaultConfig(procs, 1), func(c *Comm) {
		me := c.Rank()
		vals := make([]float64, counts[me])
		for i := range vals {
			vals[i] = float64(me) + float64(i)/10
		}
		recv := make([]byte, total*8)
		c.Gatherv(Float64Bytes(vals), counts[me], datatype.Float64, recv, counts, displs, 0)
		if me == 0 {
			all := BytesFloat64(recv)
			for r := 0; r < procs; r++ {
				for i := 0; i < counts[r]; i++ {
					want := float64(r) + float64(i)/10
					if all[displs[r]+i] != want {
						t.Fatalf("element (%d,%d) = %g, want %g", r, i, all[displs[r]+i], want)
					}
				}
			}
		}
	})
}
