package mpi

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"scimpich/internal/datatype"
	"scimpich/internal/fault"
	"scimpich/internal/obs"
	"scimpich/internal/sci"
)

// Tests of the collective engine: every algorithm family must produce the
// same results as the naive point-to-point algorithms across datatypes
// (including derived ones) and rank counts, the chooser must be
// deterministic across ranks, and faults mid-collective must surface as
// typed errors from the checked API instead of hangs.

var collAlgs = []CollAlg{CollP2P, CollRecDbl, CollRing, CollOneSided, CollAuto}

func collConfig(procs int, alg CollAlg) Config {
	cfg := DefaultConfig(procs, 1)
	cfg.Protocol.Coll = alg
	return cfg
}

// runAllreduce runs one Allreduce under the given forced algorithm and
// returns rank 0's result.
func runAllreduce(t *testing.T, procs int, alg CollAlg, count int, dt *datatype.Type, op Op,
	mkSend func(rank int, buf []byte)) []byte {
	t.Helper()
	var out []byte
	Run(collConfig(procs, alg), func(c *Comm) {
		n := dt.Extent() * int64(count)
		if dt.Contiguous() {
			n = dt.Size() * int64(count)
		}
		send := make([]byte, n)
		mkSend(c.Rank(), send)
		recv := make([]byte, n)
		if err := c.AllreduceChecked(send, recv, count, dt, op); err != nil {
			t.Errorf("procs=%d alg=%s: Allreduce failed: %v", procs, alg, err)
			return
		}
		if c.Rank() == 0 {
			out = recv
		}
	})
	return out
}

// TestAllreduceAlgorithmEquivalence: the property at the heart of the
// engine — every algorithm family (and the adaptive chooser) computes the
// same reduction as the naive P2P reduce+bcast, across rank counts and
// datatypes. Integer sums are exact everywhere; float64 sums may
// re-associate between algorithms, so those compare with a tolerance.
func TestAllreduceAlgorithmEquivalence(t *testing.T) {
	for _, procs := range []int{2, 3, 4, 5, 8} {
		// Exact: int32 sum.
		const n = 1000
		mkInt := func(rank int, buf []byte) {
			v := make([]int32, n)
			for i := range v {
				v[i] = int32(rank*7 + i)
			}
			copy(buf, Int32Bytes(v))
		}
		ref := runAllreduce(t, procs, CollP2P, n, datatype.Int32, OpSum, mkInt)
		for _, alg := range collAlgs[1:] {
			got := runAllreduce(t, procs, alg, n, datatype.Int32, OpSum, mkInt)
			if !bytes.Equal(got, ref) {
				t.Errorf("procs=%d: int32 sum under %s differs from p2p", procs, alg)
			}
		}
		// Exact: float64 max (order-independent).
		mkMax := func(rank int, buf []byte) {
			v := make([]float64, 64)
			for i := range v {
				v[i] = float64((rank*31+i*17)%97) / 3
			}
			copy(buf, Float64Bytes(v))
		}
		refMax := runAllreduce(t, procs, CollP2P, 64, datatype.Float64, OpMax, mkMax)
		for _, alg := range collAlgs[1:] {
			got := runAllreduce(t, procs, alg, 64, datatype.Float64, OpMax, mkMax)
			if !bytes.Equal(got, refMax) {
				t.Errorf("procs=%d: float64 max under %s differs from p2p", procs, alg)
			}
		}
		// Tolerant: float64 sum (association order differs per algorithm).
		mkSum := func(rank int, buf []byte) {
			v := make([]float64, 128)
			for i := range v {
				v[i] = float64(rank+1) * (1 + float64(i)/100)
			}
			copy(buf, Float64Bytes(v))
		}
		refSum := BytesFloat64(runAllreduce(t, procs, CollP2P, 128, datatype.Float64, OpSum, mkSum))
		for _, alg := range collAlgs[1:] {
			got := BytesFloat64(runAllreduce(t, procs, alg, 128, datatype.Float64, OpSum, mkSum))
			for i := range refSum {
				if math.Abs(got[i]-refSum[i]) > 1e-9*math.Abs(refSum[i]) {
					t.Fatalf("procs=%d: float64 sum under %s off at %d: %g vs %g",
						procs, alg, i, got[i], refSum[i])
				}
			}
		}
	}
}

// TestAllreduceDerivedDatatypes: reductions on vector and indexed derived
// datatypes (the lifted basic-only restriction) work under every algorithm
// family and match the P2P result exactly, and the gaps between blocks
// stay untouched.
func TestAllreduceDerivedDatatypes(t *testing.T) {
	vec := datatype.Vector(16, 2, 4, datatype.Int32).Commit()
	idx := datatype.Indexed([]int{3, 1, 4}, []int{0, 5, 9}, datatype.Int32).Commit()
	for _, dt := range []*datatype.Type{vec, idx} {
		mk := func(rank int, buf []byte) {
			for i := range buf {
				buf[i] = 0xEE // sentinel; gaps must keep it
			}
			v := make([]int32, len(buf)/4)
			for i := range v {
				v[i] = int32(rank*5 + i)
			}
			copy(buf, Int32Bytes(v))
		}
		ref := runAllreduce(t, 4, CollP2P, 1, dt, OpSum, mk)
		if ref == nil {
			t.Fatal("no reference result")
		}
		// The typemap blocks hold sums, everything else the receive
		// buffer's prior contents (zero here, since recv starts zeroed...
		// gaps are simply not written).
		covered := make([]bool, len(ref))
		for _, b := range dt.TypeMap() {
			for o := b.Off; o < b.Off+b.Len; o++ {
				covered[o] = true
			}
		}
		refInts := BytesInt32(ref)
		for i := range refInts {
			off := int64(i * 4)
			if !covered[off] {
				continue
			}
			sum := int32(0)
			for r := 0; r < 4; r++ {
				sum += int32(r*5 + i)
			}
			if refInts[i] != sum {
				t.Fatalf("p2p derived reduce: element %d = %d, want %d", i, refInts[i], sum)
			}
		}
		for _, alg := range collAlgs[1:] {
			got := runAllreduce(t, 4, alg, 1, dt, OpSum, mk)
			if !bytes.Equal(got, ref) {
				t.Errorf("derived allreduce under %s differs from p2p", alg)
			}
		}
	}
}

// TestReduceDerivedDatatype: rooted Reduce on a vector of float64 works
// and leaves the right sums in the typemap blocks.
func TestReduceDerivedDatatype(t *testing.T) {
	dt := datatype.Vector(8, 2, 4, datatype.Float64).Commit()
	const procs = 3
	Run(DefaultConfig(procs, 1), func(c *Comm) {
		size := dt.Extent()
		send := make([]byte, size)
		v := make([]float64, int(size)/8)
		for i := range v {
			v[i] = float64(c.Rank() + i)
		}
		copy(send, Float64Bytes(v))
		recv := make([]byte, size)
		if err := c.ReduceChecked(send, recv, 1, dt, OpSum, 0); err != nil {
			t.Errorf("derived reduce failed: %v", err)
			return
		}
		if c.Rank() != 0 {
			return
		}
		got := BytesFloat64(recv)
		for _, b := range dt.TypeMap() {
			for o := b.Off; o < b.Off+b.Len; o += 8 {
				i := int(o / 8)
				want := 0.0
				for r := 0; r < procs; r++ {
					want += float64(r + i)
				}
				if got[i] != want {
					t.Errorf("element %d = %g, want %g", i, got[i], want)
				}
			}
		}
	})
}

// TestBcastAllgatherAlltoallAlgorithmEquivalence: the one-sided variants
// of the data-movement collectives deliver the same bytes as the P2P
// algorithms.
func TestBcastAllgatherAlltoallAlgorithmEquivalence(t *testing.T) {
	for _, procs := range []int{2, 3, 5, 8} {
		for _, alg := range []CollAlg{CollP2P, CollOneSided, CollAuto} {
			Run(collConfig(procs, alg), func(c *Comm) {
				me := c.Rank()
				// Bcast, large enough to exercise chunk pipelining.
				payload := fill(300 << 10)
				buf := make([]byte, len(payload))
				if me == 1%procs {
					copy(buf, payload)
				}
				if err := c.BcastChecked(buf, len(buf), datatype.Byte, 1%procs); err != nil {
					t.Errorf("procs=%d alg=%s: bcast: %v", procs, alg, err)
				} else if !bytes.Equal(buf, payload) {
					t.Errorf("procs=%d alg=%s: bcast corrupted", procs, alg)
				}
				// Allgather.
				const blk = 2048
				mine := make([]byte, blk)
				for i := range mine {
					mine[i] = byte(me*13 + i)
				}
				all := make([]byte, blk*procs)
				if err := c.AllgatherChecked(mine, blk, datatype.Byte, all); err != nil {
					t.Errorf("procs=%d alg=%s: allgather: %v", procs, alg, err)
				}
				for r := 0; r < procs; r++ {
					for i := 0; i < blk; i += 512 {
						if all[r*blk+i] != byte(r*13+i) {
							t.Fatalf("procs=%d alg=%s: allgather slot %d wrong", procs, alg, r)
						}
					}
				}
				// Alltoall.
				send := make([]byte, blk*procs)
				for i := range send {
					send[i] = byte(me*31 + i)
				}
				recvA := make([]byte, blk*procs)
				if err := c.AlltoallChecked(send, blk, datatype.Byte, recvA); err != nil {
					t.Errorf("procs=%d alg=%s: alltoall: %v", procs, alg, err)
				}
				for r := 0; r < procs; r++ {
					for i := 0; i < blk; i += 512 {
						if recvA[r*blk+i] != byte(r*31+me*blk+i) {
							t.Fatalf("procs=%d alg=%s: alltoall slot %d wrong", procs, alg, r)
						}
					}
				}
			})
		}
	}
}

// TestBcastDerivedOneSided: a non-contiguous payload travels the one-sided
// tree through its ff linearization and lands in the right blocks.
func TestBcastDerivedOneSided(t *testing.T) {
	dt := datatype.Vector(256, 4, 8, datatype.Float64).Commit()
	Run(collConfig(4, CollOneSided), func(c *Comm) {
		size := dt.Extent()
		buf := make([]byte, size)
		if c.Rank() == 0 {
			v := make([]float64, int(size)/8)
			for i := range v {
				v[i] = float64(i) * 1.5
			}
			copy(buf, Float64Bytes(v))
		}
		if err := c.BcastChecked(buf, 1, dt, 0); err != nil {
			t.Errorf("derived one-sided bcast: %v", err)
			return
		}
		got := BytesFloat64(buf)
		for _, b := range dt.TypeMap() {
			for o := b.Off; o < b.Off+b.Len; o += 8 {
				i := int(o / 8)
				if got[i] != float64(i)*1.5 {
					t.Fatalf("rank %d: element %d = %g, want %g", c.Rank(), i, got[i], float64(i)*1.5)
				}
			}
		}
	})
}

// TestCollChooserDeterministicAcrossRanks: with the adaptive chooser, all
// members of one matched collective call must pick the same algorithm (a
// divergent pick would deadlock; the metric counters expose the choice).
func TestCollChooserDeterministicAcrossRanks(t *testing.T) {
	cfg := collConfig(4, CollAuto)
	cfg.Metrics = obs.NewRegistry()
	var w *World
	Run(cfg, func(c *Comm) {
		if c.Rank() == 0 {
			w = c.World()
		}
		buf := make([]byte, 64<<10)
		for i := 0; i < 6; i++ {
			c.Bcast(buf, len(buf), datatype.Byte, 0)
			recv := make([]byte, 8)
			c.Allreduce(Float64Bytes([]float64{1}), recv, 1, datatype.Float64, OpSum)
		}
	})
	total := int64(0)
	for k := collKind(0); k < collKindCount; k++ {
		for a := CollAlg(0); a < collAlgCount; a++ {
			total += w.met.collChosen[k][a].Value()
		}
	}
	// 4 ranks × 6 iterations × 2 collectives = 48 choices; a divergent
	// pick would have deadlocked the run before we got here.
	if total != 48 {
		t.Errorf("recorded %d algorithm choices, want 48", total)
	}
}

// TestCollectiveArgumentErrors: invalid arguments surface as typed
// *ArgumentError from the checked API (and panic from the classic one).
func TestCollectiveArgumentErrors(t *testing.T) {
	Run(DefaultConfig(2, 1), func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		var argErr *ArgumentError
		buf := make([]byte, 8)
		if err := c.BcastChecked(buf, 8, datatype.Byte, 5); !errors.As(err, &argErr) {
			t.Errorf("Bcast bad root: %v, want *ArgumentError", err)
		}
		if err := c.GathervChecked(buf, 8, datatype.Byte, buf, []int{1}, []int{0}, 0); !errors.As(err, &argErr) {
			t.Errorf("Gatherv bad counts: %v, want *ArgumentError", err)
		}
		mixed := datatype.StructOf(
			datatype.Field{Type: datatype.Int32, Blocklen: 1, Disp: 0},
			datatype.Field{Type: datatype.Float64, Blocklen: 1, Disp: 8},
		).Commit()
		if err := c.AllreduceChecked(make([]byte, 16), make([]byte, 16), 1, mixed, OpSum); !errors.As(err, &argErr) {
			t.Errorf("Allreduce mixed-base datatype: %v, want *ArgumentError", err)
		} else if argErr.Call != "Allreduce" {
			t.Errorf("ArgumentError.Call = %q", argErr.Call)
		}
	})
}

// TestNodeCrashMidAllreduceTypedError: a node crash scheduled mid-window
// must surface on the survivors as a typed error from AllreduceChecked
// (connection-lost or watchdog timeout) — never a hang — under every
// algorithm family, and runs stay deterministic.
func TestNodeCrashMidAllreduceTypedError(t *testing.T) {
	for _, alg := range []CollAlg{CollP2P, CollRecDbl, CollRing, CollOneSided} {
		run := func() error {
			cfg := collConfig(4, alg)
			cfg.SCI.Fault = fault.New(3).CrashNode(1, 400*time.Microsecond)
			cfg.Protocol.CollTimeout = 2 * time.Millisecond
			cfg.Protocol.RendezvousTimeout = 2 * time.Millisecond
			var r0Err error
			Run(cfg, func(c *Comm) {
				n := 256 << 10
				send := fill(n)
				recv := make([]byte, n)
				// A couple of rounds so the crash lands mid-collective.
				var err error
				for i := 0; i < 4 && err == nil; i++ {
					err = c.AllreduceChecked(send, recv, n/8, datatype.Float64, OpSum)
				}
				if c.Rank() == 0 {
					r0Err = err
				}
			})
			return r0Err
		}
		err := run()
		if err == nil {
			t.Errorf("alg=%s: rank 0 completed all rounds despite node 1 crashing", alg)
			continue
		}
		var lost sci.ErrConnectionLost
		var fe *fault.Error
		if !errors.As(err, &lost) && !(errors.As(err, &fe) && fe.Kind == fault.Timeout) {
			t.Errorf("alg=%s: error %v, want connection-lost or timeout", alg, err)
		}
		if err2 := run(); err2 == nil || err.Error() != err2.Error() {
			t.Errorf("alg=%s: same-seed crash runs diverge: %v vs %v", alg, err, err2)
		}
	}
}

// TestLinkFaultsDontBreakOneSidedCollectives: transient injected write
// errors on the deposit path are retried; the collective still completes
// with intact data.
func TestLinkFaultsDontBreakOneSidedCollectives(t *testing.T) {
	cfg := collConfig(4, CollOneSided)
	cfg.SCI.Fault = fault.New(11).WithWriteErrors(0.2)
	cfg.SCI.RetryLatency = 20 * time.Microsecond
	payload := fill(200 << 10)
	Run(cfg, func(c *Comm) {
		buf := make([]byte, len(payload))
		if c.Rank() == 0 {
			copy(buf, payload)
		}
		if err := c.BcastChecked(buf, len(buf), datatype.Byte, 0); err != nil {
			t.Errorf("rank %d: one-sided bcast under write errors: %v", c.Rank(), err)
		} else if !bytes.Equal(buf, payload) {
			t.Errorf("rank %d: payload corrupted under write errors", c.Rank())
		}
	})
}
