package mpi

import (
	"fmt"
	"time"

	"scimpich/internal/memmodel"
	"scimpich/internal/sci"
	"scimpich/internal/sim"
	"scimpich/internal/trace"
)

// Comm is a rank's handle on the communicator (MPI_COMM_WORLD plus an
// internal context for library-level traffic).
type Comm struct {
	w       *World
	rk      *rank
	p       *sim.Proc
	ctx     int
	collCtx int
	// group holds the member world ranks of a split communicator; nil
	// means the world communicator (identity mapping).
	group []int
}

// internal contexts for library traffic, separated from user messages.
const (
	ctxUser = iota
	ctxCollective
)

// Rank returns the calling process's rank within this communicator.
func (c *Comm) Rank() int {
	if c.group == nil {
		return c.rk.id
	}
	return c.localRank(c.rk.id)
}

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int {
	if c.group == nil {
		return c.w.size
	}
	return len(c.group)
}

// WorldRank returns the calling process's rank in the world communicator.
func (c *Comm) WorldRank() int { return c.rk.id }

// GroupToWorld translates a communicator-local rank to a world rank.
func (c *Comm) GroupToWorld(r int) int { return c.worldRank(r) }

// WorldToGroup translates a world rank into this communicator (-1 if the
// rank is not a member).
func (c *Comm) WorldToGroup(world int) int { return c.localRank(world) }

// ContextID returns the communicator's context identifier (distinct per
// Dup/Split communicator; used by layered libraries to key collective
// state).
func (c *Comm) ContextID() int { return c.ctx }

// Node returns the cluster node this rank runs on.
func (c *Comm) Node() int { return c.rk.node }

// ProcsPerNode returns the SMP width of the cluster.
func (c *Comm) ProcsPerNode() int { return c.w.cfg.ProcsPerNode }

// Proc exposes the underlying simulation process (for libraries layered on
// the runtime, like one-sided communication).
func (c *Comm) Proc() *sim.Proc { return c.p }

// World returns the runtime the communicator belongs to.
func (c *Comm) World() *World { return c.w }

// Wtime returns the virtual time in seconds (MPI_Wtime).
func (c *Comm) Wtime() float64 { return c.p.Now().Seconds() }

// WtimeDuration returns the virtual time as a duration.
func (c *Comm) WtimeDuration() time.Duration { return c.p.Now() }

// Tracer returns the world's event tracer (for libraries layered on the
// runtime that record their own fault/recovery events).
func (c *Comm) Tracer() *trace.Tracer { return c.w.cfg.Tracer }

// mem returns the node's memory model.
func (c *Comm) mem() *memmodel.Model { return c.w.cfg.Shm.Mem }

// collective returns a communicator view for internal traffic.
func (c *Comm) collective() *Comm {
	cc := *c
	cc.ctx = cc.collCtx
	return &cc
}

// Run builds a cluster from cfg, runs main once per rank, and returns the
// virtual time at which the last rank finished.
func Run(cfg Config, main func(c *Comm)) time.Duration {
	e := sim.NewEngine()
	w := NewWorld(e, cfg)
	w.Spawn(main)
	return e.Run()
}

// NewWorld wires a cluster onto an existing engine (for harnesses that mix
// in extra simulation components).
func NewWorld(e *sim.Engine, cfg Config) *World {
	return newWorld(e, cfg)
}

// Engine returns the world's simulation engine.
func (w *World) Engine() *sim.Engine { return w.engine }

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Spawn starts main on every rank.
func (w *World) Spawn(main func(c *Comm)) {
	for r := 0; r < w.size; r++ {
		rk := w.ranks[r]
		w.engine.Go(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			rk.p = p
			main(&Comm{w: w, rk: rk, p: p, ctx: ctxUser, collCtx: ctxCollective})
		})
	}
}

// Stats returns the device statistics of a rank.
func (w *World) Stats(rank int) DeviceStats { return w.ranks[rank].dev.stats }

// MemModel returns the per-node memory hierarchy model.
func (w *World) MemModel() *memmodel.Model { return w.cfg.Shm.Mem }

// InterconnectStats returns the SCI adapter statistics of a node (zero
// value on single-node clusters).
func (w *World) InterconnectStats(node int) sci.Stats {
	if w.ic == nil {
		return sci.Stats{}
	}
	return w.ic.Node(node).Stats
}

// NodeAlive reports whether a rank's node is currently up (always true on
// single-node clusters with no SCI interconnect).
func (w *World) NodeAlive(rank int) bool {
	if w.ic == nil {
		return true
	}
	return w.ic.Alive(w.ranks[rank].node)
}
