package mpi

import (
	"fmt"
	"strconv"
	"time"

	"scimpich/internal/memmodel"
	"scimpich/internal/obs"
	"scimpich/internal/obs/flight"
	"scimpich/internal/pack"
	"scimpich/internal/sci"
	"scimpich/internal/sim"
	"scimpich/internal/trace"
)

// Comm is a rank's handle on the communicator (MPI_COMM_WORLD plus an
// internal context for library-level traffic).
type Comm struct {
	w       *World
	rk      *rank
	p       *sim.Proc
	ctx     int
	collCtx int
	// group holds the member world ranks of a split communicator; nil
	// means the world communicator (identity mapping).
	group []int
}

// internal contexts for library traffic, separated from user messages.
const (
	ctxUser = iota
	ctxCollective
)

// Rank returns the calling process's rank within this communicator.
func (c *Comm) Rank() int {
	if c.group == nil {
		return c.rk.id
	}
	return c.localRank(c.rk.id)
}

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int {
	if c.group == nil {
		return c.w.size
	}
	return len(c.group)
}

// WorldRank returns the calling process's rank in the world communicator.
func (c *Comm) WorldRank() int { return c.rk.id }

// GroupToWorld translates a communicator-local rank to a world rank.
func (c *Comm) GroupToWorld(r int) int { return c.worldRank(r) }

// WorldToGroup translates a world rank into this communicator (-1 if the
// rank is not a member).
func (c *Comm) WorldToGroup(world int) int { return c.localRank(world) }

// ContextID returns the communicator's context identifier (distinct per
// Dup/Split communicator; used by layered libraries to key collective
// state).
func (c *Comm) ContextID() int { return c.ctx }

// Node returns the cluster node this rank runs on.
func (c *Comm) Node() int { return c.rk.node }

// ProcsPerNode returns the SMP width of the cluster.
func (c *Comm) ProcsPerNode() int { return c.w.cfg.ProcsPerNode }

// Proc exposes the underlying simulation process (for libraries layered on
// the runtime, like one-sided communication).
func (c *Comm) Proc() *sim.Proc { return c.p }

// World returns the runtime the communicator belongs to.
func (c *Comm) World() *World { return c.w }

// Wtime returns the virtual time in seconds (MPI_Wtime).
func (c *Comm) Wtime() float64 { return c.p.Now().Seconds() }

// WtimeDuration returns the virtual time as a duration.
func (c *Comm) WtimeDuration() time.Duration { return c.p.Now() }

// Tracer returns the world's event tracer (for libraries layered on the
// runtime that record their own fault/recovery events).
func (c *Comm) Tracer() *trace.Tracer { return c.w.cfg.Tracer }

// Metrics returns the world's metrics registry (nil when none is
// configured); libraries layered on the runtime register their collectors
// here.
func (c *Comm) Metrics() *obs.Registry { return c.w.cfg.Metrics }

// Flight returns the world's flight recorder (nil when not configured;
// flight calls are nil-safe).
func (c *Comm) Flight() *flight.Recorder { return c.w.cfg.Flight }

// FlightRing returns this rank's flight-recorder ring (nil without a
// recorder). Layered libraries (one-sided windows, rmem) record their
// protocol events into the owning rank's ring so a post-mortem reads one
// interleaved timeline per rank.
func (c *Comm) FlightRing() *flight.Ring { return c.rk.fl }

// mem returns the node's memory model.
func (c *Comm) mem() *memmodel.Model { return c.w.cfg.Shm.Mem }

// collective returns a communicator view for internal traffic.
func (c *Comm) collective() *Comm {
	cc := *c
	cc.ctx = cc.collCtx
	return &cc
}

// Run builds a cluster from cfg, runs main once per rank, and returns the
// virtual time at which the last rank finished. With a metrics registry
// configured, the per-rank and per-node statistics gauges are published
// into it after the run. Cfg.Shards selects the engine: the sequential
// oracle by default, a conservative-parallel ShardedEngine for Shards > 1
// — the virtual outcome is byte-identical either way.
func Run(cfg Config, main func(c *Comm)) time.Duration {
	return RunOn(NewFabric(cfg), cfg, main)
}

// NewFabric builds the fabric Run would use for cfg: a sharded engine with
// cfg.Shards shards when Shards > 1, else a one-locale wrap of a fresh
// sequential engine. The lookahead is cfg.Lookahead, defaulting to the SCI
// segment latency.
func NewFabric(cfg Config) sim.Fabric {
	la := lookaheadFor(cfg)
	if cfg.Shards > 1 {
		return sim.NewShardedEngine(cfg.Shards, la)
	}
	return sim.NewSeqFabric(sim.NewEngine(), 1, la)
}

// lookaheadFor resolves the conservative lookahead of a run: the explicit
// override, the configured SCI segment latency, or the paper's 70 ns
// B-Link segment delay.
func lookaheadFor(cfg Config) time.Duration {
	if cfg.Lookahead > 0 {
		return cfg.Lookahead
	}
	if cfg.SCI.SegmentLatency > 0 {
		return cfg.SCI.SegmentLatency
	}
	return 70 * time.Nanosecond
}

// RunOn builds a world on an existing fabric, runs main once per rank, and
// runs the fabric to completion (for harnesses that mix in extra
// simulation components on other locales).
func RunOn(f sim.Fabric, cfg Config, main func(c *Comm)) time.Duration {
	w := NewWorldOn(f, cfg)
	w.Spawn(main)
	end := f.Run()
	if cfg.Metrics != nil {
		w.PublishMetrics(cfg.Metrics)
	}
	return end
}

// NewWorldOn wires a cluster onto one locale of an existing fabric. The
// hosting locale is cfg.Locale, or the shard cfg.Placement confines every
// rank to. The caller runs the fabric.
func NewWorldOn(f sim.Fabric, cfg Config) *World {
	return newWorld(f, cfg)
}

// NewWorld wires a cluster onto an existing sequential engine, as a
// one-locale fabric (the pre-fabric construction path, kept for harnesses
// that drive the engine directly).
func NewWorld(e *sim.Engine, cfg Config) *World {
	cfg.Shards, cfg.Locale = 0, 0
	return newWorld(sim.NewSeqFabric(e, 1, lookaheadFor(cfg)), cfg)
}

// Fabric returns the fabric the world's locale belongs to.
func (w *World) Fabric() sim.Fabric { return w.fabric }

// Host returns the scheduling surface of the locale hosting the world.
func (w *World) Host() sim.Host { return w.host }

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Run spawns main on every rank, runs the world's fabric to completion and
// publishes metrics (the single-world counterpart of RunOn for a World
// built with NewWorldOn).
func (w *World) Run(main func(c *Comm)) time.Duration {
	w.Spawn(main)
	end := w.fabric.Run()
	if w.cfg.Metrics != nil {
		w.PublishMetrics(w.cfg.Metrics)
	}
	return end
}

// Spawn starts main on every rank, as processes hosted on the world's
// locale.
func (w *World) Spawn(main func(c *Comm)) {
	for r := 0; r < w.size; r++ {
		rk := w.ranks[r]
		w.host.Go(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			rk.p = p
			main(&Comm{w: w, rk: rk, p: p, ctx: ctxUser, collCtx: ctxCollective})
		})
	}
}

// Stats returns a race-free snapshot of the device statistics of a rank.
func (w *World) Stats(rank int) DeviceStats { return w.ranks[rank].dev.stats.snapshot() }

// PublishMetrics exports the end-of-run statistics into a registry as
// labelled gauges: per-rank device counters (mpi.device.*{rank=r}) and
// per-node interconnect counters (sci.node.*{node=n}). Run calls this
// automatically when Config.Metrics is set; harnesses driving the engine
// themselves call it after Engine.Run.
func (w *World) PublishMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	for rank := range w.ranks {
		ds := w.Stats(rank)
		l := strconv.Itoa(rank)
		r.SetGauge(obs.Name("mpi.device.short_recvd", "rank", l), ds.ShortRecvd)
		r.SetGauge(obs.Name("mpi.device.eager_recvd", "rank", l), ds.EagerRecvd)
		r.SetGauge(obs.Name("mpi.device.rdv_recvd", "rank", l), ds.RdvRecvd)
		r.SetGauge(obs.Name("mpi.device.unexpected", "rank", l), ds.Unexpected)
		r.SetGauge(obs.Name("mpi.device.bytes_recvd", "rank", l), ds.BytesRecvd)
		r.SetGauge(obs.Name("mpi.device.osc_requests", "rank", l), ds.OSCRequests)
		r.SetGauge(obs.Name("mpi.device.duplicates", "rank", l), ds.Duplicates)
		r.SetGauge(obs.Name("mpi.device.send_retries", "rank", l), ds.SendRetries)
		r.SetGauge(obs.Name("mpi.device.send_timeouts", "rank", l), ds.SendTimeouts)
	}
	ff, gen := w.PackStats()
	for _, e := range []struct {
		engine string
		st     pack.CumulativeStats
	}{{"direct_pack_ff", ff}, {"generic", gen}} {
		r.SetGauge(obs.Name("pack.ops", "engine", e.engine), e.st.Ops)
		r.SetGauge(obs.Name("pack.blocks", "engine", e.engine), e.st.Blocks)
		r.SetGauge(obs.Name("pack.bytes", "engine", e.engine), e.st.Bytes)
		r.SetGauge(obs.Name("pack.max_block", "engine", e.engine), e.st.MaxBlock)
	}
	if w.ic == nil {
		return
	}
	for node := 0; node < w.cfg.Nodes; node++ {
		ns := w.InterconnectStats(node)
		l := strconv.Itoa(node)
		r.SetGauge(obs.Name("sci.node.bytes_written", "node", l), ns.BytesWritten)
		r.SetGauge(obs.Name("sci.node.bytes_read", "node", l), ns.BytesRead)
		r.SetGauge(obs.Name("sci.node.write_ops", "node", l), ns.WriteOps)
		r.SetGauge(obs.Name("sci.node.read_ops", "node", l), ns.ReadOps)
		r.SetGauge(obs.Name("sci.node.store_barriers", "node", l), ns.StoreBarriers)
		r.SetGauge(obs.Name("sci.node.retries", "node", l), ns.Retries)
		r.SetGauge(obs.Name("sci.node.dma_transfers", "node", l), ns.DMATransfers)
		r.SetGauge(obs.Name("sci.node.transfer_errors", "node", l), ns.TransferErrors)
		r.SetGauge(obs.Name("sci.node.check_retries", "node", l), ns.CheckRetries)
	}
}

// MemModel returns the per-node memory hierarchy model.
func (w *World) MemModel() *memmodel.Model { return w.cfg.Shm.Mem }

// InterconnectStats returns a race-free snapshot of the SCI adapter
// statistics of a node (zero value on single-node clusters).
func (w *World) InterconnectStats(node int) sci.Stats {
	if w.ic == nil {
		return sci.Stats{}
	}
	return w.ic.Node(node).Snapshot()
}

// NodeAlive reports whether a rank's node is currently up (always true on
// single-node clusters with no SCI interconnect).
func (w *World) NodeAlive(rank int) bool {
	if w.ic == nil {
		return true
	}
	return w.ic.Alive(w.ranks[rank].node)
}
