package mpi

import (
	"time"

	"scimpich/internal/sim"
)

// Scaled watchdog timeouts. The fault tests of earlier revisions tuned
// CollTimeout / RendezvousTimeout by hand per cluster size; those magic
// numbers stop working the moment a run uses eight nodes instead of two,
// or a slower configured link. AutoTimeout derives every watchdog bound
// from the same quantities the simulator actually bills: the control-path
// latency prior, the sender's full retransmission budget, the adapter's
// reachability retries, and the wire time of one protocol chunk.

// AutoTimeout, assigned to ProtocolConfig.CollTimeout,
// ProtocolConfig.RendezvousTimeout, the timeout argument of RecvChecked,
// or the one-sided SyncTimeout (osc.Config), selects the scaled watchdog
// bound for the world instead of a hand-tuned constant.
const AutoTimeout time.Duration = -1

// watchdogUnit is the building block of the scaled watchdogs: the worst
// plausible latency envelope of one protocol step against a struggling but
// live peer — control traffic, the sender's exhausted retransmission
// backoff, the adapter's reachability retries plus a remote interrupt, and
// one full protocol chunk on the wire.
func (w *World) watchdogUnit() time.Duration {
	p := w.protocol()
	unit := 8 * w.collCtl()
	max := p.SendRetryMax
	if max <= 0 {
		max = 6
	}
	backoff := p.SendBackoff
	if backoff <= 0 {
		backoff = 20 * time.Microsecond
	}
	for i := 0; i <= max; i++ {
		unit += backoff
		backoff *= 2
	}
	if w.ic != nil {
		unit += 3*w.cfg.SCI.RetryLatency + w.cfg.SCI.InterruptLatency
	}
	unit += sim.RateDuration(p.RendezvousChunk, w.collLinkBW())
	return unit
}

// ScaledCollTimeout is the AutoTimeout bound of one internal collective
// wait: tree algorithms forward through ceil(log2(P)) hops, so a peer's
// announcement may legitimately lag that many protocol steps behind.
func (w *World) ScaledCollTimeout() time.Duration {
	return time.Duration(ceilLog2(w.size)+2) * w.watchdogUnit()
}

// ScaledRendezvousTimeout is the AutoTimeout bound of one rendezvous
// control wait (CTS, chunk ack): a receiver-side step plus slack.
func (w *World) ScaledRendezvousTimeout() time.Duration {
	return 2 * w.watchdogUnit()
}

// ScaledSyncTimeout is the AutoTimeout bound of one one-sided
// synchronization wait: a fence collects size-1 announcements, each of
// which may lag a full protocol step behind the slowest member.
func (w *World) ScaledSyncTimeout() time.Duration {
	return time.Duration(w.size+1) * w.watchdogUnit()
}

// scaledOr resolves a configured timeout: AutoTimeout takes the scaled
// bound, positive values are used as-is, zero keeps the legacy
// wait-forever behaviour.
func scaledOr(cfg time.Duration, scaled func() time.Duration) time.Duration {
	switch {
	case cfg == AutoTimeout:
		return scaled()
	case cfg > 0:
		return cfg
	default:
		return 0
	}
}

func (w *World) collTimeoutEff() time.Duration {
	return scaledOr(w.protocol().CollTimeout, w.ScaledCollTimeout)
}

func (w *World) rendezvousTimeoutEff() time.Duration {
	return scaledOr(w.protocol().RendezvousTimeout, w.ScaledRendezvousTimeout)
}
